package ulp

// Conformance wiring: every scenario here runs with the RFC 793 checker
// (internal/conform) attached to the world's trace bus and must finish with
// zero violations. The checker is a pure observer, so these assertions ride
// along on existing scenarios without perturbing virtual time.

import (
	"testing"
	"time"

	"ulp/internal/chaos"
	"ulp/internal/conform"
	"ulp/internal/kern"
	"ulp/internal/stacks"
	"ulp/internal/wire"
)

// enableConformance attaches a conformance checker to the world and
// registers a cleanup that fails the test on any violation.
func enableConformance(t *testing.T, w *World) *conform.Checker {
	t.Helper()
	ck := w.EnableConformance()
	t.Cleanup(func() {
		for _, v := range ck.Violations() {
			t.Errorf("conformance: %v", v)
		}
		if ck.Truncated() {
			t.Error("conformance: violation report truncated")
		}
	})
	return ck
}

// TestConformanceEchoAllOrganizations checks the clean-path traces of every
// organization and network against the RFC 793 relation.
func TestConformanceEchoAllOrganizations(t *testing.T) {
	for _, org := range []Org{OrgUserLib, OrgInKernel, OrgSingleServer} {
		for _, net := range []Net{Ethernet, AN1} {
			t.Run(org.String()+"/"+net.String(), func(t *testing.T) {
				w := NewWorld(Config{Org: org, Net: net})
				ck := enableConformance(t, w)
				echoTransfer(t, w, 30000, stacks.Options{}, 5*time.Minute)
				w.Run(5 * time.Minute) // let TIME_WAIT expire under the checker
				if ck.Coverage().Count() == 0 {
					t.Error("checker observed no transitions; tracing not wired")
				}
			})
		}
	}
}

// TestConformanceUnderLoss checks that retransmission, fast-retransmit and
// RTO behaviour under seeded loss/duplication stays conformant (Karn rule,
// backoff shift ranges, estimator arithmetic).
func TestConformanceUnderLoss(t *testing.T) {
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet,
		Faults: &wire.Faults{Seed: 42, LossProb: 0.03, DupProb: 0.01},
	})
	enableConformance(t, w)
	echoTransfer(t, w, 20000, stacks.Options{}, 20*time.Minute)
	w.Run(5 * time.Minute)
}

// TestConformanceUnderCrash checks the crash-recovery path: an application
// killed mid-transfer, the registry resetting its peer. Abort edges and
// reset edges must all be legal transitions.
func TestConformanceUnderCrash(t *testing.T) {
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet,
		Chaos: &chaos.FaultPlan{
			Seed:    7,
			Crashes: []chaos.CrashPoint{{Host: 1, App: "client", At: 80 * time.Millisecond}},
		},
	})
	enableConformance(t, w)
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	srvDone := false
	srv.Go("srv", func(th *kern.Thread) {
		l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
		c, err := l.Accept(th)
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := c.Read(th, buf)
			if err != nil || n == 0 {
				break
			}
		}
		srvDone = true
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		if err != nil {
			return
		}
		for {
			if _, err := c.Write(th, pattern(512)); err != nil {
				return
			}
			th.Sleep(10 * time.Millisecond)
		}
	})
	w.RunUntil(time.Minute, func() bool { return srvDone })
	if !srvDone {
		t.Fatal("server never observed the crash reset")
	}
	w.Run(5 * time.Second)
}
