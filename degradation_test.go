package ulp

// End-to-end degradation hardening (PR 10): partitions seen from the
// application. A partition shorter than the retransmission give-up horizon
// must be invisible (the transfer stalls, then resumes — no spurious
// reset); a permanent partition must end in stacks.ErrConnTimeout on BOTH
// a blocked sender and a blocked receiver (the receiver via keepalive
// dead-peer detection); and a connection setup whose SYNs die in a
// partitioned segment must surface the registry's bounded failure without
// leaking admission slots or ports. The conformance checker rides along
// everywhere: give-ups and keepalive teardowns must be legal transitions.

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ulp/internal/kern"
	"ulp/internal/stacks"
	"ulp/internal/wire"
)

// TestConnSurvivesPartitionShorterThanGiveUp pins the healed-partition
// path: a 3-second whole-segment blackout mid-transfer stalls the stream,
// retransmission backoff rides it out, and the transfer completes intact
// with no error surfaced to either side.
func TestConnSurvivesPartitionShorterThanGiveUp(t *testing.T) {
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet,
		Conditions: &wire.LinkConditions{
			Seed: 5,
			Partitions: []wire.PartitionWindow{
				{Window: wire.Window{From: 100 * time.Millisecond, Until: 3100 * time.Millisecond}},
			},
		},
	})
	enableConformance(t, w)

	const total = 256 << 10
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	var got bytes.Buffer
	var cliErr, srvErr error
	var cliConn stacks.Conn
	srvDone := false
	srv.Go("srv", func(th *kern.Thread) {
		l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
		c, err := l.Accept(th)
		if err != nil {
			srvErr = err
			return
		}
		buf := make([]byte, 4096)
		for got.Len() < total {
			n, err := c.Read(th, buf)
			if err != nil {
				srvErr = err
				return
			}
			if n == 0 {
				return
			}
			got.Write(buf[:n])
		}
		srvDone = true
		c.Close(th)
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		if err != nil {
			cliErr = err
			return
		}
		cliConn = c
		// The stream straddles the blackout: the send buffer fills during
		// it and every write blocks until retransmission drains it.
		for sent := 0; sent < total; sent += 1024 {
			if _, err := c.Write(th, pattern(1024)); err != nil {
				cliErr = err
				return
			}
		}
	})
	w.RunUntil(5*time.Minute, func() bool { return srvDone })
	if cliErr != nil || srvErr != nil {
		t.Fatalf("healed partition surfaced errors: cli=%v srv=%v", cliErr, srvErr)
	}
	if !srvDone {
		t.Fatal("transfer did not resume after the heal")
	}
	want := make([]byte, 0, total)
	for len(want) < total {
		want = append(want, pattern(1024)...)
	}
	if !bytes.Equal(got.Bytes(), want[:total]) {
		t.Fatal("transfer corrupted across the partition")
	}
	if cliConn.Stats().Rexmits == 0 {
		t.Fatal("no retransmissions — the partition never bit")
	}
	if cliConn.Stats().RexmtGiveUps != 0 {
		t.Fatal("sender gave up across a partition shorter than R2")
	}
}

// TestPermanentPartitionTimesOutSendAndRecv pins the other half: when the
// segment never heals, the blocked writer is released by the R2 give-up
// and the blocked reader by keepalive dead-peer detection, both with
// stacks.ErrConnTimeout — a crisp error on a live thread, never a hang.
func TestPermanentPartitionTimesOutSendAndRecv(t *testing.T) {
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet,
		Conditions: &wire.LinkConditions{
			Seed: 6,
			Partitions: []wire.PartitionWindow{
				{Window: wire.Window{From: time.Second}}, // never heals
			},
		},
	})
	enableConformance(t, w)

	// R2=4 bounds the writer's retry horizon; the keepalive bounds the
	// reader's. Both sides run with both enabled.
	opts := stacks.Options{RexmtR2: 4, KeepAliveTicks: 20}
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	var cliErr, srvErr error
	cliDone, srvDone := false, false
	srv.Go("srv", func(th *kern.Thread) {
		defer func() { srvDone = true }()
		l, _ := srv.Stack.Listen(th, 80, opts)
		c, err := l.Accept(th)
		if err != nil {
			srvErr = err
			return
		}
		buf := make([]byte, 4096)
		for {
			// Blocked Recv: after the first kilobyte the wire goes dark and
			// nothing arrives again; only the keepalive can end this read.
			n, err := c.Read(th, buf)
			if err != nil {
				srvErr = err
				return
			}
			if n == 0 {
				return
			}
		}
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		defer func() { cliDone = true }()
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), opts)
		if err != nil {
			cliErr = err
			return
		}
		// Trickle until the partition starts, then keep writing: the send
		// buffer fills and the write blocks until the give-up releases it.
		for {
			if _, err := c.Write(th, pattern(1024)); err != nil {
				cliErr = err
				return
			}
			th.Sleep(100 * time.Millisecond)
		}
	})
	w.RunUntil(10*time.Minute, func() bool { return cliDone && srvDone })
	if !cliDone {
		t.Fatal("blocked Send hung across a permanent partition")
	}
	if !srvDone {
		t.Fatal("blocked Recv hung across a permanent partition")
	}
	if !errors.Is(cliErr, stacks.ErrConnTimeout) {
		t.Fatalf("blocked Send error = %v, want ErrConnTimeout", cliErr)
	}
	if !errors.Is(srvErr, stacks.ErrConnTimeout) {
		t.Fatalf("blocked Recv error = %v, want ErrConnTimeout", srvErr)
	}
	// ErrConnTimeout wraps the generic timeout, so errors.Is(_, ErrTimeout)
	// callers keep working.
	if !errors.Is(cliErr, stacks.ErrTimeout) {
		t.Fatal("ErrConnTimeout does not match ErrTimeout")
	}
}

// TestConnectThroughPartitionBoundedAndLeakFree drives a connection setup
// into a partitioned segment: the registry's handshake SYNs vanish, the
// library's control RPC hits its deadline/backoff budget and surfaces
// ErrRegistryUnavailable in bounded time, and once the registry's own R2
// give-up fires, the abandoned setup releases its admission slot and
// ephemeral port — nothing leaks from a setup whose requester gave up
// first.
func TestConnectThroughPartitionBoundedAndLeakFree(t *testing.T) {
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet, RegistryShards: 2,
		Conditions: &wire.LinkConditions{
			Seed: 7,
			Partitions: []wire.PartitionWindow{
				{Window: wire.Window{From: 500 * time.Millisecond}}, // never heals
			},
		},
	})
	enableConformance(t, w)

	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	var lis stacks.Listener
	srv.Go("srv", func(th *kern.Thread) {
		l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
		lis = l
		for {
			if _, err := l.Accept(th); err != nil {
				return
			}
		}
	})
	var err error
	var elapsed time.Duration
	done := false
	cli.GoAfter(time.Second, "cli", func(th *kern.Thread) {
		start := time.Duration(th.Now())
		// R2=4 bounds how long the registry's orphaned handshake keeps
		// retransmitting after the library has already given up on it.
		_, err = cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{RexmtR2: 4})
		elapsed = time.Duration(th.Now()) - start
		done = true
	})
	w.RunUntil(5*time.Minute, func() bool { return done })
	if !done {
		t.Fatal("connect hung through a partitioned segment")
	}
	if err != stacks.ErrRegistryUnavailable {
		t.Fatalf("connect error = %v, want ErrRegistryUnavailable", err)
	}
	if elapsed > 20*time.Second {
		t.Fatalf("gave up after %v; the RPC retry budget should bound this well under 20s", elapsed)
	}
	// The listener legitimately holds port 80 on every shard; close it so
	// the audit below sees only leaks.
	srv.Go("closer", func(th *kern.Thread) { lis.Close(th) })
	// Let the registry's abandoned handshake exhaust R2 and sweep itself.
	w.Run(3 * time.Minute)
	for host := 0; host < 2; host++ {
		n := w.Node(host)
		if got := n.Fed.PortsInUse(); got != 0 {
			t.Errorf("host %d: %d ports still allocated", host, got)
		}
		if got := n.Fed.OwnedConns(); got != 0 {
			t.Errorf("host %d: %d registry-owned pcbs remain", host, got)
		}
		if got := n.Fed.TransferredConns(); got != 0 {
			t.Errorf("host %d: %d transferred connections not reclaimed", host, got)
		}
	}
	if got := w.Node(1).Fed.Outstanding(cli.Dom); got != 0 {
		t.Errorf("client still holds %d admission slots", got)
	}
}
