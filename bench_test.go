// Benchmarks regenerating every table of the paper's evaluation (§4) plus
// the ablations DESIGN.md calls out. Each benchmark runs the corresponding
// experiment driver and reports the paper's metric through ReportMetric, so
// `go test -bench=. -benchmem` reproduces the entire evaluation.
//
// The wall-clock ns/op of these benchmarks is meaningless (they simulate
// 1993 hardware in virtual time); the custom metrics are the results.
package ulp_test

import (
	"fmt"
	"testing"

	"ulp/internal/experiments"
)

// BenchmarkTable1 — impact of the user-level mechanisms on throughput:
// maximum-sized Ethernet packets over the raw mechanisms, no transport
// protocol, against standalone link saturation.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.StandaloneMbps, "standalone-Mb/s")
		b.ReportMetric(r.MechanismMbps, "mechanisms-Mb/s")
		b.ReportMetric(r.Percent, "%of-raw")
	}
}

// BenchmarkTable2 — TCP throughput for every system, network, and user
// packet size the paper reports.
func BenchmarkTable2(b *testing.B) {
	for _, sys := range experiments.Systems {
		for _, net := range []experiments.NetSel{experiments.NetEthernet, experiments.NetAN1} {
			if sys.Org == experiments.OrgMachUX && net == experiments.NetAN1 {
				continue
			}
			for _, up := range experiments.UserPacketSizes {
				name := fmt.Sprintf("%s/%v/%dB", sys.Label, net, up)
				b.Run(name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						c := experiments.Table2CellFor(sys.Org, sys.Label, net, up, experiments.Table2Config{})
						if c.Err != nil {
							b.Fatal(c.Err)
						}
						b.ReportMetric(c.Mbps, "Mb/s")
					}
				})
			}
		}
	}
}

// BenchmarkTable3 — round-trip latency for 1/512/1460-byte exchanges.
func BenchmarkTable3(b *testing.B) {
	for _, sys := range experiments.Systems {
		for _, net := range []experiments.NetSel{experiments.NetEthernet, experiments.NetAN1} {
			if sys.Org == experiments.OrgMachUX && net == experiments.NetAN1 {
				continue
			}
			for _, size := range experiments.LatencySizes {
				name := fmt.Sprintf("%s/%v/%dB", sys.Label, net, size)
				b.Run(name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						c := experiments.Table3CellFor(sys.Org, sys.Label, net, size, nil)
						if c.Err != nil {
							b.Fatal(c.Err)
						}
						b.ReportMetric(float64(c.RTT.Microseconds())/1000, "RTT-ms")
					}
				})
			}
		}
	}
}

// BenchmarkTable4 — connection setup cost per system and network.
func BenchmarkTable4(b *testing.B) {
	for _, sys := range experiments.Systems {
		for _, net := range []experiments.NetSel{experiments.NetEthernet, experiments.NetAN1} {
			if sys.Org == experiments.OrgMachUX && net == experiments.NetAN1 {
				continue
			}
			name := fmt.Sprintf("%s/%v", sys.Label, net)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c := experiments.Table4CellFor(sys.Org, sys.Label, net, nil)
					if c.Err != nil {
						b.Fatal(c.Err)
					}
					b.ReportMetric(float64(c.Setup.Microseconds())/1000, "setup-ms")
				}
			})
		}
	}
}

// BenchmarkTable5 — hardware/software demultiplexing tradeoffs.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table5(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.SoftwareDemux.Nanoseconds())/1000, "software-µs")
		b.ReportMetric(float64(r.HardwareDemux.Nanoseconds())/1000, "hardware-µs")
	}
}

// BenchmarkAblationBatching — batched vs per-packet notifications.
func BenchmarkAblationBatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationBatching(nil)
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		b.ReportMetric(r.BatchedMbps, "batched-Mb/s")
		b.ReportMetric(r.UnbatchedMbps, "unbatched-Mb/s")
	}
}

// BenchmarkAblationAN1MTU — 1500-byte encapsulation vs 64 KB frames.
func BenchmarkAblationAN1MTU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationAN1MTU(nil)
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		b.ReportMetric(r.Encap1500Mbps, "encap1500-Mb/s")
		b.ReportMetric(r.Jumbo64KMbps, "jumbo64k-Mb/s")
	}
}

// BenchmarkAblationFilter — CSPF vs BPF vs synthesized native demux.
func BenchmarkAblationFilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationFilter(nil)
		b.ReportMetric(float64(r.CSPFTime.Nanoseconds())/1000, "cspf-µs")
		b.ReportMetric(float64(r.BPFTime.Nanoseconds())/1000, "bpf-µs")
		b.ReportMetric(float64(r.NativeTime.Nanoseconds())/1000, "native-µs")
	}
}

// BenchmarkAblationAppSpecific — stock protocol vs NoDelay variant on a
// two-write request/response workload (§5 "canned options").
func BenchmarkAblationAppSpecific(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationAppSpecific(nil)
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		b.ReportMetric(float64(r.StockPerOp.Microseconds())/1000, "stock-ms/op")
		b.ReportMetric(float64(r.NoDelayPerOp.Microseconds())/1000, "nodelay-ms/op")
	}
}

// BenchmarkAblationZeroCopy — the buffer organization's small-packet win:
// 512-byte user packets on the AN1, ours vs Ultrix (the Table 2 crossover).
func BenchmarkAblationZeroCopy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ours := experiments.Table2CellFor(experiments.OrgOurs, "ours", experiments.NetAN1, 512, experiments.Table2Config{})
		ultrix := experiments.Table2CellFor(experiments.OrgUltrix, "ultrix", experiments.NetAN1, 512, experiments.Table2Config{})
		if ours.Err != nil || ultrix.Err != nil {
			b.Fatal(ours.Err, ultrix.Err)
		}
		b.ReportMetric(ours.Mbps, "ours-Mb/s")
		b.ReportMetric(ultrix.Mbps, "ultrix-Mb/s")
	}
}

// BenchmarkAblationChecksum — software checksum cost with 64 KB frames.
func BenchmarkAblationChecksum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationChecksum(nil)
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		b.ReportMetric(r.WithMbps, "checksummed-Mb/s")
		b.ReportMetric(r.WithoutMbps, "elided-Mb/s")
	}
}

// BenchmarkAblationRPC — §5 registry bypass for connectionless traffic:
// request-response latency via the server vs the bypassed direct path.
func BenchmarkAblationRPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationRPC(nil)
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		b.ReportMetric(float64(r.ViaServerPerOp.Microseconds())/1000, "via-server-ms/op")
		b.ReportMetric(float64(r.BypassedPerOp.Microseconds())/1000, "bypassed-ms/op")
	}
}
