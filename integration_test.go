package ulp

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"ulp/internal/core"
	"ulp/internal/kern"
	"ulp/internal/stacks"
	"ulp/internal/tcp"
	"ulp/internal/udp"
	"ulp/internal/wire"
)

// pattern builds a deterministic payload.
func pattern(size int) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = byte(i*131 + i>>7)
	}
	return p
}

// echoTransfer runs a server that echoes everything and a client that
// sends data and verifies the echo, over the given world. It returns the
// established client connection's stats.
func echoTransfer(t *testing.T, w *World, size int, opts stacks.Options, budget time.Duration) tcp.Stats {
	t.Helper()
	data := pattern(size)
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	done := false
	var stats tcp.Stats

	srv.Go("srv", func(th *kern.Thread) {
		l, err := srv.Stack.Listen(th, 80, opts)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		c, err := l.Accept(th)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		buf := make([]byte, 8192)
		for {
			n, err := c.Read(th, buf)
			if err != nil {
				t.Errorf("server read: %v", err)
				return
			}
			if n == 0 {
				break // EOF
			}
			if _, err := c.Write(th, buf[:n]); err != nil {
				t.Errorf("server write: %v", err)
				return
			}
		}
		c.Close(th)
	})

	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), opts)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		var got []byte
		buf := make([]byte, 8192)
		written := 0
		for len(got) < len(data) {
			if written < len(data) {
				end := written + 2048
				if end > len(data) {
					end = len(data)
				}
				if _, err := c.Write(th, data[written:end]); err != nil {
					t.Errorf("client write: %v", err)
					return
				}
				written = end
			}
			n, err := c.Read(th, buf)
			if err != nil {
				t.Errorf("client read: %v", err)
				return
			}
			got = append(got, buf[:n]...)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("echo mismatch: %d/%d bytes", len(got), len(data))
		}
		c.Close(th)
		stats = c.Stats()
		done = true
	})

	w.RunUntil(budget, func() bool { return done })
	if !done {
		t.Fatalf("transfer did not complete within %v of virtual time", budget)
	}
	return stats
}

func TestEchoAllOrganizationsAndNetworks(t *testing.T) {
	for _, org := range []Org{OrgUserLib, OrgInKernel, OrgSingleServer} {
		for _, net := range []Net{Ethernet, AN1, AN1Jumbo} {
			name := fmt.Sprintf("%v/%v", org, net)
			t.Run(name, func(t *testing.T) {
				w := NewWorld(Config{Org: org, Net: net})
				st := echoTransfer(t, w, 60000, stacks.Options{}, 5*time.Minute)
				if st.BytesSent < 60000 {
					t.Errorf("client sent %d bytes, want >= 60000", st.BytesSent)
				}
			})
		}
	}
}

func TestTransferUnderLossAllOrganizations(t *testing.T) {
	for _, org := range []Org{OrgUserLib, OrgInKernel, OrgSingleServer} {
		t.Run(org.String(), func(t *testing.T) {
			w := NewWorld(Config{
				Org: org, Net: Ethernet,
				Faults: &wire.Faults{Seed: 42, LossProb: 0.03, DupProb: 0.01},
			})
			echoTransfer(t, w, 20000, stacks.Options{}, 20*time.Minute)
		})
	}
}

func TestConnectRefusedNoListener(t *testing.T) {
	for _, org := range []Org{OrgUserLib, OrgInKernel, OrgSingleServer} {
		t.Run(org.String(), func(t *testing.T) {
			w := NewWorld(Config{Org: org, Net: Ethernet})
			cli := w.Node(1).App("client")
			var got error
			done := false
			cli.Go("cli", func(th *kern.Thread) {
				_, got = cli.Stack.Connect(th, w.Endpoint(0, 9999), stacks.Options{})
				done = true
			})
			w.RunUntil(2*time.Minute, func() bool { return done })
			if !done {
				t.Fatal("connect did not return")
			}
			if got != stacks.ErrRefused {
				t.Fatalf("connect error = %v, want refused", got)
			}
		})
	}
}

func TestOrderlyCloseReachesTimeWait(t *testing.T) {
	for _, org := range []Org{OrgUserLib, OrgInKernel, OrgSingleServer} {
		t.Run(org.String(), func(t *testing.T) {
			w := NewWorld(Config{Org: org, Net: Ethernet})
			srv := w.Node(0).App("server")
			cli := w.Node(1).App("client")
			var srvConn, cliConn stacks.Conn
			phase := 0
			srv.Go("srv", func(th *kern.Thread) {
				l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
				c, _ := l.Accept(th)
				srvConn = c
				buf := make([]byte, 64)
				for {
					n, _ := c.Read(th, buf)
					if n == 0 {
						break
					}
				}
				c.Close(th) // passive close after EOF
				phase = 2
			})
			cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
				c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
				if err != nil {
					t.Errorf("connect: %v", err)
					phase = -1
					return
				}
				cliConn = c
				c.Write(th, []byte("bye"))
				c.Close(th) // active close
				phase = 1
			})
			w.RunUntil(time.Minute, func() bool { return phase >= 2 || phase < 0 })
			if phase < 2 {
				t.Fatalf("close sequence incomplete (phase %d)", phase)
			}
			// Let FINs settle.
			w.Run(5 * time.Second)
			if s := cliConn.State(); s != tcp.TimeWait && s != tcp.Closed {
				t.Errorf("active closer state = %v", s)
			}
			if s := srvConn.State(); s != tcp.Closed && s != tcp.LastAck {
				t.Errorf("passive closer state = %v", s)
			}
			// TIME_WAIT drains after 2*MSL (60 s).
			w.Run(2 * time.Minute)
			if s := cliConn.State(); s != tcp.Closed {
				t.Errorf("TIME_WAIT never expired: %v", s)
			}
		})
	}
}

func TestUserLibBQIExchangeOnAN1(t *testing.T) {
	w := NewWorld(Config{Org: OrgUserLib, Net: AN1})
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	var cliConn stacks.Conn
	done := false
	srv.Go("srv", func(th *kern.Thread) {
		l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
		c, _ := l.Accept(th)
		buf := make([]byte, 4096)
		for {
			n, _ := c.Read(th, buf)
			if n == 0 {
				return
			}
			c.Write(th, buf[:n])
		}
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		if err != nil {
			t.Errorf("connect: %v", err)
			done = true
			return
		}
		cliConn = c
		c.Write(th, pattern(5000))
		buf := make([]byte, 8192)
		got := 0
		for got < 5000 {
			n, _ := c.Read(th, buf)
			got += n
		}
		done = true
	})
	w.RunUntil(time.Minute, func() bool { return done })
	if !done {
		t.Fatal("transfer incomplete")
	}
	// The data phase must use hardware demultiplexing: the client's own
	// channel has a nonzero BQI, and every data segment it received was
	// steered by it.
	if bqi := cliConn.(*core.Conn).Channel().BQI(); bqi == 0 {
		t.Error("client channel has BQI 0; hardware demux not engaged")
	}
	// Device-level check: host 1's AN1 must have delivered to a nonzero
	// ring, and the registry default path must not have seen data-phase
	// segments.
	if w.Node(1).Mod.DemuxDefault > 8 {
		t.Errorf("default path saw %d packets; data phase should bypass it", w.Node(1).Mod.DemuxDefault)
	}
}

func TestUserLibAbnormalExitResetsPeer(t *testing.T) {
	w := NewWorld(Config{Org: OrgUserLib, Net: Ethernet})
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	var srvErr error
	srvDone, cliDone := false, false
	srv.Go("srv", func(th *kern.Thread) {
		l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
		c, _ := l.Accept(th)
		buf := make([]byte, 64)
		for {
			n, err := c.Read(th, buf)
			if err != nil {
				srvErr = err
				break
			}
			if n == 0 {
				break
			}
		}
		srvDone = true
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		c.Write(th, []byte("about to crash"))
		// Simulate abnormal termination: the registry inherits and resets.
		cli.Lib.Exit(th, true)
		cliDone = true
	})
	w.RunUntil(time.Minute, func() bool { return srvDone && cliDone })
	if !srvDone {
		t.Fatal("server never observed the reset")
	}
	if srvErr != stacks.ErrReset {
		t.Fatalf("server read error = %v, want reset", srvErr)
	}
}

func TestUserLibNormalExitInheritsConnection(t *testing.T) {
	w := NewWorld(Config{Org: OrgUserLib, Net: Ethernet})
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	srvSawEOF := false
	srvErr := error(nil)
	cliDone := false
	srv.Go("srv", func(th *kern.Thread) {
		l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
		c, _ := l.Accept(th)
		buf := make([]byte, 64)
		for {
			n, err := c.Read(th, buf)
			if err != nil {
				srvErr = err
				return
			}
			if n == 0 {
				srvSawEOF = true
				c.Close(th)
				return
			}
		}
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		c.Write(th, []byte("data"))
		// Orderly application exit without closing: the registry inherits
		// the connection and completes the shutdown protocol.
		cli.Lib.Exit(th, false)
		cliDone = true
	})
	w.RunUntil(2*time.Minute, func() bool { return srvSawEOF && cliDone })
	if srvErr != nil {
		t.Fatalf("server error = %v, want orderly EOF", srvErr)
	}
	if !srvSawEOF {
		t.Fatal("registry did not complete the orderly shutdown")
	}
}

func TestAppSpecificOptionsReduceLatency(t *testing.T) {
	// The §5 "canned options" idea in miniature: a request-response
	// application that emits each request as two small writes (header then
	// body) suffers badly under Nagle — the body waits for the header's
	// ACK — and a specialized NoDelay variant of the protocol fixes it.
	rtt := func(opts stacks.Options) time.Duration {
		w := NewWorld(Config{Org: OrgUserLib, Net: Ethernet})
		srv := w.Node(0).App("server")
		cli := w.Node(1).App("client")
		var total time.Duration
		done := false
		srv.Go("srv", func(th *kern.Thread) {
			l, _ := srv.Stack.Listen(th, 80, opts)
			c, _ := l.Accept(th)
			buf := make([]byte, 64)
			for {
				// Gather the full 8-byte request, then answer.
				got := 0
				for got < 8 {
					n, _ := c.Read(th, buf[got:8])
					if n == 0 {
						return
					}
					got += n
				}
				c.Write(th, []byte("response"))
			}
		})
		cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
			c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), opts)
			if err != nil {
				t.Errorf("connect: %v", err)
				done = true
				return
			}
			start := time.Duration(th.Now())
			buf := make([]byte, 64)
			for i := 0; i < 10; i++ {
				c.Write(th, []byte("hdr:")) // header
				c.Write(th, []byte("body")) // body, Nagle-delayed by default
				got := 0
				for got < 8 {
					n, _ := c.Read(th, buf[got:8])
					got += n
				}
			}
			total = time.Duration(th.Now()) - start
			done = true
		})
		w.RunUntil(10*time.Minute, func() bool { return done })
		if !done {
			t.Fatal("request-response incomplete")
		}
		return total
	}
	slow := rtt(stacks.Options{})
	fast := rtt(stacks.Options{NoDelay: true})
	if fast >= slow {
		t.Fatalf("NoDelay did not help two-write requests: fast=%v slow=%v", fast, slow)
	}
	if slow < 2*fast {
		t.Fatalf("Nagle penalty implausibly small: fast=%v slow=%v", fast, slow)
	}
}

func TestUserLibUDPDatagrams(t *testing.T) {
	// The §5 connectionless path: datagram end-points through the library,
	// registry bypassed after the address-binding phase.
	w := NewWorld(Config{Org: OrgUserLib, Net: AN1})
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	done := false
	srv.Go("srv", func(th *kern.Thread) {
		sock, err := srv.Lib.BindUDP(th, 2049)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			d := sock.Recv(th)
			if err := sock.SendTo(th, d.From, append([]byte("re:"), d.Payload...)); err != nil {
				t.Errorf("server send: %v", err)
				return
			}
		}
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		sock, err := cli.Lib.BindUDP(th, 3000)
		if err != nil {
			t.Error(err)
			done = true
			return
		}
		dst := udp.Endpoint{IP: w.Node(0).IP, Port: 2049}
		if err := sock.Resolve(th, dst.IP); err != nil {
			t.Errorf("resolve: %v", err)
			done = true
			return
		}
		for i := 0; i < 3; i++ {
			if err := sock.SendTo(th, dst, []byte("ping")); err != nil {
				t.Errorf("send: %v", err)
				done = true
				return
			}
			d := sock.Recv(th)
			if string(d.Payload) != "re:ping" {
				t.Errorf("reply = %q", d.Payload)
			}
		}
		// Oversized datagrams are rejected (the library does not fragment).
		if err := sock.SendTo(th, dst, make([]byte, 64*1024)); err == nil {
			t.Error("oversized datagram accepted")
		}
		sock.Close(th)
		done = true
	})
	w.RunUntil(time.Minute, func() bool { return done })
	if !done {
		t.Fatal("udp exchange incomplete")
	}
	// On the AN1 there is no handshake to negotiate BQIs for datagrams, so
	// they arrive at BQI zero and are demultiplexed in software by the
	// registry's default path — the paper's §5 observation about
	// connectionless protocols and hardware demultiplexing.
	if w.Node(0).Mod.DemuxDefault < 3 {
		t.Errorf("default path saw %d packets; AN1 datagrams should take the software fallback", w.Node(0).Mod.DemuxDefault)
	}
}

func TestConcurrentConnectionsIsolated(t *testing.T) {
	// Two applications on each host, two simultaneous connections: each
	// must have its own channel/capability, and the streams must not leak
	// into each other — the protection property the per-endpoint
	// demultiplexing exists to provide.
	for _, net := range []Net{Ethernet, AN1} {
		t.Run(net.String(), func(t *testing.T) {
			w := NewWorld(Config{Org: OrgUserLib, Net: net})
			srvA := w.Node(0).App("serverA")
			srvB := w.Node(0).App("serverB")
			cliA := w.Node(1).App("clientA")
			cliB := w.Node(1).App("clientB")
			okA, okB := false, false

			serve := func(app *App, port uint16, tag byte) {
				app.Go("srv", func(th *kern.Thread) {
					l, err := app.Stack.Listen(th, port, stacks.Options{})
					if err != nil {
						t.Error(err)
						return
					}
					c, err := l.Accept(th)
					if err != nil {
						t.Error(err)
						return
					}
					buf := make([]byte, 8192)
					for {
						n, _ := c.Read(th, buf)
						if n == 0 {
							return
						}
						for i := 0; i < n; i++ {
							if buf[i] != tag {
								t.Errorf("port %d received foreign byte %#x (want %#x): stream leakage", port, buf[i], tag)
								return
							}
						}
						c.Write(th, buf[:n])
					}
				})
			}
			drive := func(app *App, port uint16, tag byte, ok *bool) {
				app.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
					c, err := app.Stack.Connect(th, w.Endpoint(0, port), stacks.Options{})
					if err != nil {
						t.Error(err)
						*ok = true
						return
					}
					payload := bytes.Repeat([]byte{tag}, 20000)
					sent, rcvd := 0, 0
					buf := make([]byte, 8192)
					for rcvd < len(payload) {
						if sent < len(payload) {
							n, _ := c.Write(th, payload[sent:min(sent+4096, len(payload))])
							sent += n
						}
						n, _ := c.Read(th, buf)
						for i := 0; i < n; i++ {
							if buf[i] != tag {
								t.Errorf("client %#x echoed foreign byte %#x", tag, buf[i])
								*ok = true
								return
							}
						}
						rcvd += n
					}
					*ok = true
				})
			}
			serve(srvA, 81, 0xaa)
			serve(srvB, 82, 0xbb)
			drive(cliA, 81, 0xaa, &okA)
			drive(cliB, 82, 0xbb, &okB)
			w.RunUntil(5*time.Minute, func() bool { return okA && okB })
			if !okA || !okB {
				t.Fatal("concurrent transfers incomplete")
			}
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestThreeHostWorld(t *testing.T) {
	// A third workstation on the same segment: connections between every
	// pair, demultiplexed correctly, under the user-level organization.
	w := NewWorld(Config{Org: OrgUserLib, Net: Ethernet, Hosts: 3})
	srv := w.Node(0).App("server")
	served := 0
	srv.Go("srv", func(th *kern.Thread) {
		l, err := srv.Stack.Listen(th, 80, stacks.Options{})
		if err != nil {
			t.Error(err)
			return
		}
		for {
			c, err := l.Accept(th)
			if err != nil {
				return
			}
			// Connections arrive serially; handle inline.
			buf := make([]byte, 1024)
			n, _ := c.Read(th, buf)
			c.Write(th, buf[:n])
			served++
		}
	})
	oks := make([]bool, 2)
	for i := 1; i <= 2; i++ {
		i := i
		cli := w.Node(i).App("client")
		cli.GoAfter(time.Duration(i)*20*time.Millisecond, "cli", func(th *kern.Thread) {
			c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
			if err != nil {
				t.Errorf("host %d connect: %v", i, err)
				oks[i-1] = true
				return
			}
			msg := []byte{byte(i), byte(i), byte(i)}
			c.Write(th, msg)
			buf := make([]byte, 16)
			got := 0
			for got < len(msg) {
				n, _ := c.Read(th, buf[got:len(msg)])
				got += n
			}
			if buf[0] != byte(i) {
				t.Errorf("host %d echo corrupted: %x", i, buf[:got])
			}
			oks[i-1] = true
		})
	}
	w.RunUntil(2*time.Minute, func() bool { return oks[0] && oks[1] })
	if !oks[0] || !oks[1] {
		t.Fatalf("multi-host exchanges incomplete (served=%d)", served)
	}
}

func TestSequentialAcceptsReusePort(t *testing.T) {
	// One listener serving several connections in sequence, each with its
	// own channel and capability (userlib) or pcb (monolithic).
	for _, org := range []Org{OrgUserLib, OrgInKernel} {
		t.Run(org.String(), func(t *testing.T) {
			w := NewWorld(Config{Org: org, Net: Ethernet})
			srv := w.Node(0).App("server")
			cli := w.Node(1).App("client")
			const conns = 3
			served := 0
			srv.Go("srv", func(th *kern.Thread) {
				l, err := srv.Stack.Listen(th, 80, stacks.Options{})
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < conns; i++ {
					c, err := l.Accept(th)
					if err != nil {
						t.Error(err)
						return
					}
					buf := make([]byte, 64)
					n, _ := c.Read(th, buf)
					c.Write(th, buf[:n])
					served++
				}
			})
			ok := false
			cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
				for i := 0; i < conns; i++ {
					c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
					if err != nil {
						t.Errorf("connect %d: %v", i, err)
						ok = true
						return
					}
					c.Write(th, []byte("hi"))
					buf := make([]byte, 8)
					got := 0
					for got < 2 {
						n, _ := c.Read(th, buf[got:2])
						got += n
					}
					c.Close(th)
					th.Sleep(20 * time.Millisecond)
				}
				ok = true
			})
			w.RunUntil(5*time.Minute, func() bool { return ok && served == conns })
			if served != conns {
				t.Fatalf("served %d/%d connections", served, conns)
			}
		})
	}
}
