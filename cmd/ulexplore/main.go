// Command ulexplore runs the coverage-guided fault-schedule explorer
// against the TCP engine: a baseline pass over the scenario library (which
// alone walks every legal RFC 793 transition edge), then seeded mutation
// rounds that place extra faults — frame drops, injected resets, aborts,
// link cuts — steered toward any still-uncovered edges. Every run streams
// through the conformance checker; violations are delta-debugged down to
// minimal deterministic reproducers.
//
// Usage:
//
//	ulexplore                          # default seed/budget campaign
//	ulexplore -seed 7 -budget 500      # bigger seeded campaign
//	ulexplore -min-coverage 0.9        # fail if edge coverage falls short
//	ulexplore -out repro.json          # write reproducers as JSON artifacts
//	ulexplore -replay repro.json       # re-run a saved reproducer
//
// Exit status: 0 on a clean campaign, 1 if any violation was found or the
// coverage floor was missed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ulp/internal/explore"
)

func main() {
	seed := flag.Uint64("seed", 1, "mutation RNG seed (same seed => identical campaign)")
	budget := flag.Int("budget", 100, "total scenario executions (baseline library runs count)")
	minCov := flag.Float64("min-coverage", 0.9, "minimum fraction of legal (state, trigger) edges to exercise")
	out := flag.String("out", "", "write reproducers (JSON) to this file")
	replay := flag.String("replay", "", "replay a reproducer file instead of exploring")
	flag.Parse()

	if *replay != "" {
		os.Exit(runReplay(*replay))
	}

	rep := explore.New(*seed, *budget).Explore()
	fmt.Printf("explored %d schedules: %d/%d legal edges (%.0f%%), %d reproducers\n",
		rep.Runs, rep.Covered, rep.Total, 100*rep.Coverage, len(rep.Reproducers))
	for _, e := range rep.Missing {
		fmt.Println("  uncovered:", e)
	}
	for _, r := range rep.Reproducers {
		fmt.Printf("  VIOLATION %s in %q (%d-fault reproducer): %s\n",
			r.Violation.Rule, r.Scenario, len(r.Faults), r.Violation.Detail)
	}

	if *out != "" && len(rep.Reproducers) > 0 {
		blob, err := json.MarshalIndent(rep.Reproducers, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, blob, 0o644)
		}
		if err != nil {
			fmt.Println("write reproducers:", err)
			os.Exit(1)
		}
		fmt.Println("reproducers written to", *out)
	}

	if len(rep.Reproducers) > 0 || rep.Coverage < *minCov {
		if rep.Coverage < *minCov {
			fmt.Printf("coverage %.2f below floor %.2f\n", rep.Coverage, *minCov)
		}
		os.Exit(1)
	}
}

func runReplay(path string) int {
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Println("replay:", err)
		return 1
	}
	var repros []explore.Reproducer
	if err := json.Unmarshal(blob, &repros); err != nil {
		// Also accept a single reproducer object.
		var one explore.Reproducer
		if err2 := json.Unmarshal(blob, &one); err2 != nil {
			fmt.Println("replay:", err)
			return 1
		}
		repros = []explore.Reproducer{one}
	}
	status := 0
	for _, r := range repros {
		res, err := explore.Replay(r)
		if err != nil {
			fmt.Printf("%s: %v\n", r.Scenario, err)
			status = 1
			continue
		}
		fmt.Printf("%s: reproduced %s (%d violations, %d steps, %d frames)\n",
			r.Scenario, r.Violation.Rule, len(res.Violations), res.Steps, res.Frames)
	}
	return status
}
