// Command ultrace runs a scenario under any protocol organization and
// prints a tcpdump-style trace of every frame on the wire — link, IP and
// TCP/UDP/ARP headers decoded — so the handshake choreography (including
// the AN1 BQI exchange through the link header) can be read directly.
//
// Usage:
//
//	ultrace                      # userlib on Ethernet, echo scenario
//	ultrace -org inkernel -net an1
//	ultrace -loss 0.1            # watch retransmission machinery engage
//	ultrace -pcap out.pcap       # also write frames as a capture file
//	                             # readable by tcpdump/wireshark (Ethernet
//	                             # scenarios decode fully; AN1 uses DLT_USER0)
//	ultrace -conform             # check the run against the RFC 793 state
//	                             # machine; non-zero exit on any violation
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ulp"
	"ulp/internal/arp"
	"ulp/internal/conform"
	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/pkt"
	"ulp/internal/stacks"
	"ulp/internal/tcp"
	"ulp/internal/trace"
	"ulp/internal/udp"
	"ulp/internal/wire"
)

func main() {
	orgName := flag.String("org", "userlib", "organization: userlib | inkernel | singleserver")
	netName := flag.String("net", "ethernet", "network: ethernet | an1 | an1-64k")
	loss := flag.Float64("loss", 0, "wire loss probability")
	bytes := flag.Int("bytes", 3000, "payload bytes to echo")
	pcapPath := flag.String("pcap", "", "write every transmitted frame to this pcap file")
	conformFlag := flag.Bool("conform", false, "check the trace against the RFC 793 state machine; exit 1 on violations")
	flag.Parse()

	cfg := ulp.Config{}
	switch *orgName {
	case "userlib":
		cfg.Org = ulp.OrgUserLib
	case "inkernel":
		cfg.Org = ulp.OrgInKernel
	case "singleserver":
		cfg.Org = ulp.OrgSingleServer
	default:
		fmt.Println("unknown organization", *orgName)
		return
	}
	switch *netName {
	case "ethernet":
		cfg.Net = ulp.Ethernet
	case "an1":
		cfg.Net = ulp.AN1
	case "an1-64k":
		cfg.Net = ulp.AN1Jumbo
	default:
		fmt.Println("unknown network", *netName)
		return
	}
	if *loss > 0 {
		cfg.Faults = &wire.Faults{Seed: 1, LossProb: *loss}
	}

	w := ulp.NewWorld(cfg)
	var checker *conform.Checker
	if *conformFlag {
		checker = w.EnableConformance()
	}
	an1 := cfg.Net != ulp.Ethernet
	w.TraceFrames(func(at time.Duration, frame *pkt.Buf) {
		fmt.Printf("%12v  %s\n", at, renderFrame(frame, an1))
	})

	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			fmt.Println("pcap:", err)
			return
		}
		defer f.Close()
		linkType := trace.LinkTypeEthernet
		if an1 {
			linkType = trace.LinkTypeUser0
		}
		pw, err := trace.NewPcapWriter(f, linkType)
		if err != nil {
			fmt.Println("pcap:", err)
			return
		}
		w.EnableTrace().Subscribe(func(e trace.Event) {
			if e.Kind == trace.FrameTx {
				pw.WritePacket(e.At, e.Frame)
			}
		})
	}

	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	done := false
	srv.Go("srv", func(t *kern.Thread) {
		l, err := srv.Stack.Listen(t, 80, stacks.Options{})
		if err != nil {
			return
		}
		c, err := l.Accept(t)
		if err != nil {
			return
		}
		buf := make([]byte, 65536)
		for {
			n, _ := c.Read(t, buf)
			if n == 0 {
				c.Close(t)
				return
			}
			c.Write(t, buf[:n])
		}
	})
	cli.GoAfter(time.Millisecond, "cli", func(t *kern.Thread) {
		c, err := cli.Stack.Connect(t, w.Endpoint(0, 80), stacks.Options{})
		if err != nil {
			fmt.Println("connect:", err)
			done = true
			return
		}
		payload := make([]byte, *bytes)
		c.Write(t, payload)
		got := 0
		buf := make([]byte, 65536)
		for got < *bytes {
			n, _ := c.Read(t, buf)
			got += n
		}
		c.Close(t)
		done = true
	})
	w.RunUntil(5*time.Minute, func() bool { return done })
	w.Run(100 * time.Millisecond) // drain the close exchange

	if checker != nil {
		cov := checker.Coverage()
		fmt.Printf("conformance: %d violations, %d/%d legal transition edges exercised\n",
			len(checker.Violations()), cov.Count(), cov.Total())
		for _, v := range checker.Violations() {
			fmt.Println("  ", v)
		}
		if len(checker.Violations()) > 0 {
			os.Exit(1)
		}
	}
}

// renderFrame decodes one frame for display.
func renderFrame(b *pkt.Buf, an1 bool) string {
	f := b.Clone()
	var et link.EtherType
	prefix := ""
	if an1 {
		h, err := link.DecodeAN1(f)
		if err != nil {
			return "malformed AN1 frame"
		}
		et = h.Type
		prefix = fmt.Sprintf("%v > %v bqi=%d", h.Src, h.Dst, h.BQI)
		if h.AdvBQI != 0 {
			prefix += fmt.Sprintf(" adv-bqi=%d", h.AdvBQI)
		}
	} else {
		h, err := link.DecodeEth(f)
		if err != nil {
			return "malformed Ethernet frame"
		}
		et = h.Type
		prefix = fmt.Sprintf("%v > %v", h.Src, h.Dst)
	}
	switch et {
	case link.TypeARP:
		p, err := arp.Decode(f)
		if err != nil {
			return prefix + " malformed ARP"
		}
		if p.Op == arp.OpRequest {
			return fmt.Sprintf("%s ARP who-has %v tell %v", prefix, p.TargetIP, p.SenderIP)
		}
		return fmt.Sprintf("%s ARP reply %v is-at %v", prefix, p.SenderIP, p.SenderHW)
	case link.TypeIPv4:
		ih, err := ipv4.Decode(f)
		if err != nil {
			return prefix + " malformed IP"
		}
		switch ih.Proto {
		case ipv4.ProtoTCP:
			th, err := tcp.Decode(f, ih.Src, ih.Dst)
			if err != nil {
				return fmt.Sprintf("%s %v > %v TCP [bad checksum]", prefix, ih.Src, ih.Dst)
			}
			extra := ""
			if th.MSS != 0 {
				extra = fmt.Sprintf(" mss=%d", th.MSS)
			}
			if n := f.Len(); n > 0 {
				extra += fmt.Sprintf(" len=%d", n)
			}
			return fmt.Sprintf("%s %v:%d > %v:%d %s%s", prefix, ih.Src, th.SrcPort, ih.Dst, th.DstPort, th, extra)
		case ipv4.ProtoUDP:
			uh, err := udp.Decode(f, ih.Src, ih.Dst)
			if err != nil {
				return fmt.Sprintf("%s %v > %v UDP [bad checksum]", prefix, ih.Src, ih.Dst)
			}
			return fmt.Sprintf("%s %v:%d > %v:%d UDP len=%d", prefix, ih.Src, uh.SrcPort, ih.Dst, uh.DstPort, f.Len())
		}
		return fmt.Sprintf("%s %s", prefix, ih)
	case link.TypeRaw:
		return fmt.Sprintf("%s RAW len=%d", prefix, f.Len())
	}
	return fmt.Sprintf("%s ethertype %#04x len=%d", prefix, uint16(et), f.Len())
}
