// Command ulbench regenerates the evaluation of "Implementing Network
// Protocols at User Level" (Thekkath, Nguyen, Moy, Lazowska; SIGCOMM 1993)
// on the simulated testbed and renders each table in the paper's layout,
// side by side with the paper's published numbers.
//
// Usage:
//
//	ulbench            # all tables
//	ulbench -table 2   # one table
//	ulbench -ablations # the extension/ablation experiments
//	ulbench -orgs      # print the Figure 1 organization map
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ulp/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "render only this table (1-5); 0 = all")
	ablations := flag.Bool("ablations", false, "run the ablation experiments")
	orgs := flag.Bool("orgs", false, "print the organization map (Figure 1)")
	stats := flag.Bool("stats", false, "run a 1 MB transfer per organization and dump per-layer counters")
	churn := flag.Bool("churn", false, "run the connection-churn experiment (legacy vs fast path)")
	churnConns := flag.Int("churn-conns", 1000, "churn: total connection setups")
	churnClients := flag.Int("churn-clients", 4, "churn: number of client hosts")
	churnWorkers := flag.Int("churn-workers", 8, "churn: concurrent connect loops per client")
	shards := flag.Int("shards", 0, "churn: federate each host's registry into N shards (0/1 = single registry)")
	zerocopy := flag.Bool("zerocopy", false, "deliver received frames by reference (refcounted zero-copy rings) in -stats and -churn")
	degrade := flag.Bool("degrade", false, "run the degradation experiment (bursty loss, link flaps, bufferbloat)")
	degradeBytes := flag.Int("degrade-bytes", 256<<10, "degrade: payload bytes per transfer")
	flag.Parse()

	if *degrade {
		runDegrade(*degradeBytes)
		return
	}
	if *churn {
		runChurn(*churnConns, *churnClients, *churnWorkers, *shards, *zerocopy)
		return
	}

	if *orgs {
		printOrgs()
		return
	}
	if *stats {
		runStats(*zerocopy)
		return
	}
	if *ablations {
		runAblations()
		return
	}
	run := func(n int) bool { return *table == 0 || *table == n }
	if run(1) {
		table1()
	}
	if run(2) {
		table2()
	}
	if run(3) {
		table3()
	}
	if run(4) {
		table4()
	}
	if run(5) {
		table5()
	}
}

func header(title string) {
	fmt.Printf("\n%s\n", title)
	for range title {
		fmt.Print("=")
	}
	fmt.Println()
}

func table1() {
	header("Table 1: Impact of Our Mechanisms on Throughput (Ethernet, max-sized packets)")
	r, err := experiments.Table1(nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		return
	}
	fmt.Printf("%-44s %10s %10s\n", "Configuration", "Mb/s", "% of raw")
	fmt.Printf("%-44s %10.2f %10.1f\n", "Standalone (link saturation)", r.StandaloneMbps, 100.0)
	fmt.Printf("%-44s %10.2f %10.1f\n", "With user-level mechanisms", r.MechanismMbps, r.Percent)
	fmt.Printf("(%d packets, %d notifications; per-packet CPU: sender %v, receiver %v —\n"+
		" the mechanisms pipeline completely under the 1.2 ms wire time)\n",
		r.Packets, r.Notifications, r.SenderCPUPerPkt, r.ReceiverCPUPerPkt)
	fmt.Println("Paper: \"our mechanisms introduce only very modest overhead\".")
}

// paperT2 holds the published Table 2 values for side-by-side rendering.
var paperT2 = map[string]map[experiments.NetSel][4]float64{
	"Ultrix 4.2A": {
		experiments.NetEthernet: {5.8, 7.6, 7.6, 7.6},
		experiments.NetAN1:      {4.8, 10.2, 11.9, 11.9},
	},
	"Mach 3.0/UX (mapped)": {
		experiments.NetEthernet: {2.1, 2.5, 3.2, 3.5},
	},
	"Our (Mach) Implementation": {
		experiments.NetEthernet: {4.3, 4.6, 4.8, 5.0},
		experiments.NetAN1:      {6.7, 8.1, 9.4, 11.9},
	},
}

func table2() {
	header("Table 2: Throughput Measurements (Mb/s), user packet sizes 512/1024/2048/4096")
	cells := experiments.Table2(experiments.Table2Config{})
	fmt.Printf("%-27s %-13s %26s   %26s\n", "System", "Network", "simulated", "paper")
	byKey := map[string][]experiments.Table2Cell{}
	var order []string
	for _, c := range cells {
		k := c.System + "|" + c.Net.String()
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], c)
	}
	for _, k := range order {
		row := byKey[k]
		fmt.Printf("%-27s %-13v ", row[0].System, row[0].Net)
		for _, c := range row {
			if c.Err != nil {
				fmt.Printf("%6s ", "ERR")
				continue
			}
			fmt.Printf("%6.1f ", c.Mbps)
		}
		fmt.Print("  ")
		if p, ok := paperT2[row[0].System][row[0].Net]; ok {
			for _, v := range p {
				fmt.Printf("%6.1f ", v)
			}
		}
		fmt.Println()
	}
}

var paperT3 = map[string]map[experiments.NetSel][3]float64{
	"Ultrix 4.2A": {
		experiments.NetEthernet: {1.6, 3.5, 6.2},
		experiments.NetAN1:      {1.8, 2.7, 3.2},
	},
	"Mach 3.0/UX (mapped)": {
		experiments.NetEthernet: {7.8, 10.8, 16.0},
	},
	"Our (Mach) Implementation": {
		experiments.NetEthernet: {2.8, 5.2, 9.9},
		experiments.NetAN1:      {2.7, 3.4, 4.7},
	},
}

func table3() {
	header("Table 3: Round Trip Latencies (ms), payload sizes 1/512/1460")
	fmt.Printf("%-27s %-13s %20s   %20s\n", "System", "Network", "simulated", "paper")
	for _, sys := range experiments.Systems {
		for _, net := range []experiments.NetSel{experiments.NetEthernet, experiments.NetAN1} {
			if sys.Org == experiments.OrgMachUX && net == experiments.NetAN1 {
				continue
			}
			fmt.Printf("%-27s %-13v ", sys.Label, net)
			for _, size := range experiments.LatencySizes {
				c := experiments.Table3CellFor(sys.Org, sys.Label, net, size, nil)
				if c.Err != nil {
					fmt.Printf("%6s ", "ERR")
					continue
				}
				fmt.Printf("%6.1f ", float64(c.RTT.Microseconds())/1000)
			}
			fmt.Print("  ")
			if p, ok := paperT3[sys.Label][net]; ok {
				for _, v := range p {
					fmt.Printf("%6.1f ", v)
				}
			}
			fmt.Println()
		}
	}
}

var paperT4 = map[string]map[experiments.NetSel]float64{
	"Ultrix 4.2A": {
		experiments.NetEthernet: 2.6,
		experiments.NetAN1:      2.9,
	},
	"Mach 3.0/UX (mapped)": {
		experiments.NetEthernet: 6.8,
	},
	"Our (Mach) Implementation": {
		experiments.NetEthernet: 11.9,
		experiments.NetAN1:      12.3,
	},
}

func table4() {
	header("Table 4: Connection Setup Cost (ms)")
	fmt.Printf("%-27s %-13s %10s %10s\n", "System", "Network", "simulated", "paper")
	for _, c := range experiments.Table4(nil) {
		if c.Err != nil {
			fmt.Printf("%-27s %-13v %10s\n", c.System, c.Net, "ERR")
			continue
		}
		fmt.Printf("%-27s %-13v %10.1f %10.1f\n",
			c.System, c.Net, float64(c.Setup.Microseconds())/1000, paperT4[c.System][c.Net])
	}
	fmt.Println("\nBreakdown of the user-level library's Ethernet setup cost:")
	paperBreakdown := []float64{4.6, 1.5, 3.4, 0.9, 1.4}
	var sum time.Duration
	for i, r := range experiments.Table4Breakdown(nil) {
		fmt.Printf("  %-56s %6.1f ms   (paper %.1f ms)\n",
			r.Component, float64(r.Cost.Microseconds())/1000, paperBreakdown[i])
		sum += r.Cost
	}
	fmt.Printf("  %-56s %6.1f ms   (paper 11.9 ms)\n", "total", float64(sum.Microseconds())/1000)
}

func table5() {
	header("Table 5: Hardware/Software Demultiplexing Tradeoffs (µs per packet)")
	r, err := experiments.Table5(nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table5:", err)
		return
	}
	fmt.Printf("%-34s %10s %10s\n", "Network Interface", "simulated", "paper")
	fmt.Printf("%-34s %10.0f %10.0f\n", "Lance Ethernet (Software)", float64(r.SoftwareDemux.Nanoseconds())/1000, 52.0)
	fmt.Printf("%-34s %10.0f %10.0f\n", "AN1 (Hardware BQI)", float64(r.HardwareDemux.Nanoseconds())/1000, 50.0)
}

func runAblations() {
	header("Ablation: notification batching")
	if r := experiments.AblationBatching(nil); r.Err == nil {
		fmt.Printf("  batched: %.2f Mb/s    per-packet notifications: %.2f Mb/s\n", r.BatchedMbps, r.UnbatchedMbps)
	}
	header("Ablation: AN1 64 KB frames (lifting the 1500-byte encapsulation)")
	if r := experiments.AblationAN1MTU(nil); r.Err == nil {
		fmt.Printf("  1500-byte encapsulation: %.2f Mb/s    64 KB frames: %.2f Mb/s\n", r.Encap1500Mbps, r.Jumbo64KMbps)
	}
	header("Ablation: demultiplexing architecture (per matching packet)")
	r := experiments.AblationFilter(nil)
	fmt.Printf("  CSPF stack machine: %d instructions, %v\n", r.CSPFInstrs, r.CSPFTime)
	fmt.Printf("  BPF register machine: %d instructions, %v\n", r.BPFInstrs, r.BPFTime)
	fmt.Printf("  synthesized native predicate: %v\n", r.NativeTime)
	header("Ablation: application-specific variant (two-write requests)")
	if a := experiments.AblationAppSpecific(nil); a.Err == nil {
		fmt.Printf("  stock protocol: %v/op    NoDelay variant: %v/op\n", a.StockPerOp, a.NoDelayPerOp)
	}
	header("Ablation: registry bypass for connectionless/RPC traffic (§5)")
	if rr := experiments.AblationRPC(nil); rr.Err == nil {
		fmt.Printf("  every datagram via registry: %v/op    bypassed after binding: %v/op\n",
			rr.ViaServerPerOp, rr.BypassedPerOp)
	}
	header("Ablation: checksum elision on 64 KB AN1 frames")
	if c := experiments.AblationChecksum(nil); c.Err == nil {
		fmt.Printf("  with software checksum: %.2f Mb/s    elided: %.2f Mb/s\n", c.WithMbps, c.WithoutMbps)
	}
}

func runStats(zerocopy bool) {
	mode := ""
	if zerocopy {
		mode = ", zero-copy rx"
	}
	for _, sys := range experiments.Systems {
		header(fmt.Sprintf("Per-layer counters: %s (Ethernet, 1 MB bulk transfer%s)", sys.Label, mode))
		report, err := experiments.StatsReportZC(sys.Org, experiments.NetEthernet, nil, zerocopy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stats:", err)
			continue
		}
		fmt.Print(report)
	}
}

func printOrgs() {
	fmt.Print(`Figure 1 — Alternative Organizations of Protocols, as realized here:

  In-Kernel (e.g., UNIX/Ultrix)          internal/stacks  (InKernel)
      protocol + device management in the kernel; socket calls trap.

  Single Server (e.g., Mach 3.0 + UX)    internal/stacks  (SingleServer)
      protocol suite in one trusted server with a mapped device; every
      socket call is a Mach IPC round trip.

  Dedicated Servers (rare case)          discussed in DESIGN.md; the
      per-protocol-server organization the paper rejects for its extra
      domain crossings.

  User-Level Library (proposed)          internal/core + internal/registry
      + internal/netio: protocol library in the application, registry
      server for setup, network I/O module for protected access. The
      server is bypassed on the data path (Figure 2).
`)
}

// runChurn renders the connection-churn experiment (PR 7): the same
// setup/teardown workload through the classic configuration and the
// many-host fast path (switched fabric, steered demux, timing wheels).
// With -zerocopy both modes also deliver received frames by reference.
// With -shards N a third row federates each host's registry into N
// pinned-CPU shards, the sharded control plane that parallelizes setup.
func runChurn(conns, clients, workers, shards int, zerocopy bool) {
	zc := ""
	if zerocopy {
		zc = ", zero-copy rx"
	}
	header(fmt.Sprintf("Connection churn: %d setups, %d clients x %d workers%s", conns, clients, workers, zc))
	fmt.Printf("%-10s %10s %10s %10s %12s %12s %10s %14s\n",
		"Config", "p50", "p99", "p999", "setups/vsec", "virtual", "wall", "events/wsec")
	modes := []struct {
		name   string
		fast   bool
		shards int
	}{{"legacy", false, 0}, {"fast", true, 0}}
	if shards >= 2 {
		modes = append(modes, struct {
			name   string
			fast   bool
			shards int
		}{fmt.Sprintf("sharded%d", shards), true, shards})
	}
	for _, mode := range modes {
		r := experiments.Churn(experiments.ChurnConfig{
			Conns: conns, Clients: clients, Workers: workers, FastPath: mode.fast,
			Shards: mode.shards, ZeroCopyRx: zerocopy,
		})
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "churn (%s): %v\n", mode.name, r.Err)
			continue
		}
		fmt.Printf("%-10s %10v %10v %10v %12.1f %12v %10v %14.0f\n",
			mode.name, r.P50.Round(time.Millisecond), r.P99.Round(time.Millisecond),
			r.P999.Round(time.Millisecond), r.SetupsPerVSec,
			r.Virtual.Round(time.Millisecond), r.Wall.Round(time.Millisecond),
			r.EventsPerWSec)
	}
	fmt.Println("(virtual percentiles are dominated by the modeled 1993 registry setup cost;")
	fmt.Println(" the fast path's win is wall-clock events/sec and flat per-conn demux/timer cost;")
	fmt.Println(" sharding parallelizes the registry CPU itself, lifting setups/vsec)")
}

// runDegrade renders the degradation experiment (PR 10): a fixed transfer
// through the time-scripted link-condition layer, sweeping loss-burst
// length, flap period and bufferbloat queue depth. "gave-up" marks rows
// where a side abandoned the connection (RFC 1122 R2 / keepalive) and the
// blocked caller saw a crisp timeout instead of a hang.
func runDegrade(bytes int) {
	header(fmt.Sprintf("End-to-end degradation: %d KiB transfer, user-level stack, AN1", bytes>>10))
	fmt.Printf("%-12s %-18s %-9s %9s %10s %8s %6s %4s %8s %8s %8s\n",
		"Profile", "Knob", "Outcome", "Mb/s", "virtual", "rexmit", "fast", "R1", "give-ups", "drops", "q-drops")
	for _, r := range experiments.Degrade(experiments.DegradeConfig{Bytes: bytes}) {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "degrade (%s/%s): %v\n", r.Profile, r.Knob, r.Err)
			continue
		}
		outcome := "ok"
		if !r.Completed {
			outcome = "gave-up"
		}
		fmt.Printf("%-12s %-18s %-9s %9.2f %10v %8d %6d %4d %8d %8d %8d\n",
			r.Profile, r.Knob, outcome, r.Goodput, r.Virtual.Round(time.Millisecond),
			r.Rexmits, r.FastRexmits, r.R1, r.GiveUps, r.CondDrops, r.QueueDrops)
	}
	fmt.Println("(goodput is delivered payload over virtual time; the partition row must")
	fmt.Println(" end in a give-up — a hang there is a bug, not a degradation)")
}
