package ulp

// Chaos harness: seeded, deterministic full-system fault scenarios against
// the user-level library organization. These tests exercise the system's
// crash-failure story (paper §3.2–§3.4): an application torn down with no
// exit path must leave no orphaned ports, no live capabilities, no pinned
// shared regions, and its peers must observe resets — with all recovery
// driven by the trusted registry and network I/O module.

import (
	"testing"
	"time"

	"ulp/internal/chaos"
	"ulp/internal/filter"
	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/netio"
	"ulp/internal/pkt"
	"ulp/internal/stacks"
	"ulp/internal/tcp"
	"ulp/internal/wire"
)

// trackPoolLeaks arms the packet-pool leak tracker for the duration of a
// test. assertNoPoolLeaks then requires that every pkt.Buf acquired since
// arming has been released — a crashed domain must not strand frames in
// channel queues, the wire fan-out, or the input batch.
func trackPoolLeaks(t *testing.T) {
	t.Helper()
	pkt.SetLeakTracking(true)
	t.Cleanup(func() { pkt.SetLeakTracking(false) })
}

func assertNoPoolLeaks(t *testing.T) {
	t.Helper()
	if n := pkt.OutstandingCount(); n != 0 {
		t.Errorf("%d pkt.Bufs outstanding at scenario end:\n%s", n, pkt.FormatLeakReport())
	}
}

// assertNoOrphans checks that a crashed or exited application left nothing
// behind on its node: no allocated ports, no transferred or registry-owned
// connections, no listeners, no live capabilities, no pinned regions.
func assertNoOrphans(t *testing.T, w *World, node int, dom *kern.Domain) {
	t.Helper()
	n := w.Node(node)
	r := n.Registry
	if got := r.PortsInUse(); got != 0 {
		t.Errorf("node %d: %d ports still allocated", node, got)
	}
	if got := r.TransferredConns(); got != 0 {
		t.Errorf("node %d: %d transferred connections not reclaimed", node, got)
	}
	if got := r.OwnedConns(); got != 0 {
		t.Errorf("node %d: %d registry-owned pcbs remain", node, got)
	}
	if got := r.ListenerCount(); got != 0 {
		t.Errorf("node %d: %d listeners remain", node, got)
	}
	if got := n.Mod.LiveCapabilities(dom); got != 0 {
		t.Errorf("node %d: %d live capabilities for dead domain", node, got)
	}
	if got := n.Mod.PinnedRegions(); got != 0 {
		t.Errorf("node %d: %d shared regions still pinned", node, got)
	}
}

// A mid-transfer crash: the client dies abruptly while its connection is
// handed off and carrying data. The registry must reclaim everything and
// the server must observe a reset, with no cooperation from the client.
func TestChaosCrashMidTransferResetsPeer(t *testing.T) {
	trackPoolLeaks(t)
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet,
		Chaos: &chaos.FaultPlan{
			Seed:    7,
			Crashes: []chaos.CrashPoint{{Host: 1, App: "client", At: 80 * time.Millisecond}},
		},
	})
	enableConformance(t, w)
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	var srvErr error
	srvDone := false
	srv.Go("srv", func(th *kern.Thread) {
		l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
		c, err := l.Accept(th)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := c.Read(th, buf)
			if err != nil {
				srvErr = err
				break
			}
			if n == 0 {
				break
			}
		}
		srvDone = true
		l.Close(th)
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		// Write past the handoff-time sequence numbers, then keep writing
		// slowly until the crash point kills the domain mid-stream.
		for {
			if _, err := c.Write(th, pattern(512)); err != nil {
				return
			}
			th.Sleep(10 * time.Millisecond)
		}
	})
	w.RunUntil(time.Minute, func() bool { return srvDone })
	if !srvDone {
		t.Fatal("server never unblocked: no reset observed at the peer")
	}
	if srvErr != stacks.ErrReset {
		t.Fatalf("server error = %v, want ErrReset from the registry's crash reset", srvErr)
	}
	if !cli.Dom.Dead() {
		t.Fatal("crash point did not fire")
	}
	// Let teardown messages drain, then audit the crashed node.
	w.Run(5 * time.Second)
	assertNoOrphans(t, w, 1, cli.Dom)
	assertNoPoolLeaks(t)
}

// A crash while the handshake is still in the registry's hands: the
// registry-owned pcb is aborted and the reserved channel reclaimed. The
// control-plane delay holds the ConnectReq until after the crash, which
// also exercises reclamation of requests issued by already-dead domains.
func TestChaosCrashDuringHandshake(t *testing.T) {
	trackPoolLeaks(t)
	w := NewWorld(Config{
		Org: OrgUserLib, Net: AN1, // AN1 reserves the channel before the SYN
		Chaos: &chaos.FaultPlan{
			Seed:    11,
			Control: chaos.ControlFaults{DelayProb: 1.0, Delay: 50 * time.Millisecond},
			Crashes: []chaos.CrashPoint{{Host: 1, App: "client", At: 20 * time.Millisecond}},
		},
	})
	enableConformance(t, w)
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	srv.Go("srv", func(th *kern.Thread) {
		l, err := srv.Stack.Listen(th, 80, stacks.Options{})
		if err != nil {
			return // listen itself is delayed; may race the run budget
		}
		for {
			if _, err := l.Accept(th); err != nil {
				return
			}
		}
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		// The domain dies while this call is outstanding.
		_, _ = cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		t.Error("connect returned in a crashed domain")
	})
	w.Run(30 * time.Second)
	if !cli.Dom.Dead() {
		t.Fatal("crash point did not fire")
	}
	r := w.Node(1).Registry
	if got := r.OwnedConns(); got != 0 {
		t.Errorf("%d handshake pcbs not aborted", got)
	}
	if got := r.TransferredConns(); got != 0 {
		t.Errorf("%d transferred connections for a dead domain", got)
	}
	if got := r.PortsInUse(); got != 0 {
		t.Errorf("%d ports leaked by the aborted handshake", got)
	}
	if got := w.Node(1).Mod.LiveCapabilities(cli.Dom); got != 0 {
		t.Errorf("%d capabilities leaked", got)
	}
	if got := w.Node(1).Mod.PinnedRegions(); got != 0 {
		t.Errorf("%d regions still pinned", got)
	}
	assertNoPoolLeaks(t)
}

// Regression for the orderly path: an application that exits cleanly
// (InheritReq) must also leave zero ports and bindings once the registry
// has driven TIME_WAIT to completion.
func TestChaosOrderlyExitLeavesNoState(t *testing.T) {
	trackPoolLeaks(t)
	w := NewWorld(Config{Org: OrgUserLib, Net: Ethernet})
	enableConformance(t, w)
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	srvSawEOF, cliDone := false, false
	srv.Go("srv", func(th *kern.Thread) {
		l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
		c, _ := l.Accept(th)
		buf := make([]byte, 256)
		for {
			n, err := c.Read(th, buf)
			if err != nil {
				return
			}
			if n == 0 {
				srvSawEOF = true
				c.Close(th)
				l.Close(th)
				return
			}
		}
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		c.Write(th, []byte("orderly"))
		cli.Lib.Exit(th, false) // inherit: registry drives FIN + TIME_WAIT
		cliDone = true
	})
	w.RunUntil(2*time.Minute, func() bool { return srvSawEOF && cliDone })
	if !srvSawEOF || !cliDone {
		t.Fatalf("orderly shutdown incomplete: eof=%v done=%v", srvSawEOF, cliDone)
	}
	// TIME_WAIT is 2*MSL = 60 s of virtual time; run well past it.
	w.Run(2 * time.Minute)
	assertNoOrphans(t, w, 1, cli.Dom)
	assertNoPoolLeaks(t)
}

// A dead registry turns into a clean error, not a hung application: with
// every service request dropped, Connect must fail with
// ErrRegistryUnavailable within its bounded retry budget.
func TestChaosRegistryUnavailable(t *testing.T) {
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet,
		Chaos: &chaos.FaultPlan{
			Seed:    3,
			Control: chaos.ControlFaults{DropRequestProb: 1.0},
		},
	})
	cli := w.Node(1).App("client")
	var err error
	var elapsed time.Duration
	done := false
	cli.Go("cli", func(th *kern.Thread) {
		start := time.Duration(th.Now())
		_, err = cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		elapsed = time.Duration(th.Now()) - start
		done = true
	})
	w.RunUntil(5*time.Minute, func() bool { return done })
	if !done {
		t.Fatal("connect hung against a dead registry")
	}
	if err != stacks.ErrRegistryUnavailable {
		t.Fatalf("connect error = %v, want ErrRegistryUnavailable", err)
	}
	// 4 attempts with doubling deadlines and jittered backoff: bounded.
	if elapsed > 20*time.Second {
		t.Fatalf("gave up after %v; retry budget should bound this well under 20s", elapsed)
	}
}

// Data transfer completes under combined wire loss and control-plane
// delays; the delays stretch connection setup but must not break it.
func TestChaosTransferSurvivesCombinedFaults(t *testing.T) {
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet,
		Chaos: &chaos.FaultPlan{
			Seed:    42,
			Wire:    wire.Faults{LossProb: 0.03, DupProb: 0.01},
			Control: chaos.ControlFaults{DelayProb: 0.5, Delay: 30 * time.Millisecond},
		},
	})
	enableConformance(t, w)
	echoTransfer(t, w, 64*1024, stacks.Options{}, 5*time.Minute)
}

// The same fault plan must produce the identical execution: chaos tests
// stay stable in CI because every draw is seeded.
func TestChaosDeterministic(t *testing.T) {
	run := func() (time.Duration, int, int) {
		w := NewWorld(Config{
			Org: OrgUserLib, Net: Ethernet,
			Chaos: &chaos.FaultPlan{
				Seed:    99,
				Wire:    wire.Faults{LossProb: 0.05},
				Control: chaos.ControlFaults{DelayProb: 0.3, Delay: 10 * time.Millisecond},
				Crashes: []chaos.CrashPoint{{Host: 1, At: 200 * time.Millisecond}},
			},
		})
		srv := w.Node(0).App("server")
		cli := w.Node(1).App("client")
		srvDone := false
		srv.Go("srv", func(th *kern.Thread) {
			l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
			c, err := l.Accept(th)
			if err != nil {
				return
			}
			buf := make([]byte, 4096)
			for {
				n, err := c.Read(th, buf)
				if err != nil || n == 0 {
					break
				}
			}
			srvDone = true
		})
		cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
			c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
			if err != nil {
				return
			}
			for {
				if _, err := c.Write(th, pattern(1024)); err != nil {
					return
				}
				th.Sleep(5 * time.Millisecond)
			}
		})
		end := w.RunUntil(time.Minute, func() bool { return srvDone })
		return end, w.Node(0).Mod.SendOK, w.Node(1).Mod.DemuxDefault
	}
	e1, s1, d1 := run()
	e2, s2, d2 := run()
	if e1 != e2 || s1 != s2 || d1 != d2 {
		t.Fatalf("same seed diverged: (%v,%d,%d) vs (%v,%d,%d)", e1, s1, d1, e2, s2, d2)
	}
}

// The tentpole scenario: the SERVER's registry is killed mid-transfer and
// restarted within the lease TTL. The data path never touches the registry,
// so the transfer keeps moving through the outage; the reborn registry
// rebuilds its port table and connection map from the module's installed
// templates, and — because the restart beat the lease clock — nothing is
// ever quarantined.
func TestChaosRegistryCrashRestartMidTransfer(t *testing.T) {
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet,
		Chaos: &chaos.FaultPlan{
			Seed: 21,
			RegistryCrashes: []chaos.RegistryCrash{
				{Host: 0, At: 100 * time.Millisecond, RestartAfter: 200 * time.Millisecond},
			},
		},
	})
	enableConformance(t, w)
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	const chunks, chunk = 50, 512
	received := 0
	srvDone := false
	srv.Go("srv", func(th *kern.Thread) {
		l, err := srv.Stack.Listen(th, 80, stacks.Options{})
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		c, err := l.Accept(th)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := c.Read(th, buf)
			if err != nil {
				t.Errorf("server read: %v", err)
				return
			}
			if n == 0 {
				break
			}
			received += n
		}
		srvDone = true
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		// Slow writes straddle the crash window [100ms, 300ms].
		for i := 0; i < chunks; i++ {
			if _, err := c.Write(th, pattern(chunk)); err != nil {
				t.Errorf("client write: %v", err)
				return
			}
			th.Sleep(10 * time.Millisecond)
		}
		c.Close(th)
	})
	w.RunUntil(time.Minute, func() bool { return srvDone })
	if !srvDone {
		t.Fatal("transfer did not survive the registry crash")
	}
	if received != chunks*chunk {
		t.Fatalf("server received %d bytes, want %d", received, chunks*chunk)
	}
	r := w.Node(0).Registry
	if r.Epoch() != 2 {
		t.Fatalf("server registry epoch = %d, want 2 (one restart)", r.Epoch())
	}
	if r.RebuiltEndpoints() < 1 {
		t.Fatal("reborn registry rebuilt nothing from the module's templates")
	}
	// Restart within the lease TTL: the quarantine machinery must stay cold.
	if n := w.Node(0).Mod.QuarantineDrops + w.Node(1).Mod.QuarantineDrops; n != 0 {
		t.Fatalf("%d frames quarantined despite the restart beating the lease TTL", n)
	}
}

// The outage outlasts the lease TTL: the client host's module quarantines
// the endpoint (sends rejected with ErrLeaseExpired, delivery suppressed),
// the library's reconnect loop backs off and re-registers once the registry
// is reborn, and the transfer then completes — a terminal error never
// surfaces to the application.
func TestChaosLeaseExpiryReregisterResumes(t *testing.T) {
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet,
		Chaos: &chaos.FaultPlan{
			Seed: 23,
			RegistryCrashes: []chaos.RegistryCrash{
				{Host: 1, At: 100 * time.Millisecond, RestartAfter: 4 * time.Second},
			},
		},
	})
	enableConformance(t, w)
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	const chunks, chunk = 300, 512
	received := 0
	srvDone := false
	srv.Go("srv", func(th *kern.Thread) {
		l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
		c, err := l.Accept(th)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := c.Read(th, buf)
			if err != nil {
				t.Errorf("server read: %v", err)
				return
			}
			if n == 0 {
				break
			}
			received += n
		}
		srvDone = true
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		// ~6s of writes: the lease lapses at ~3.1s (crash + TTL), the
		// registry returns at ~4.1s, and the stream must ride through both.
		for i := 0; i < chunks; i++ {
			if _, err := c.Write(th, pattern(chunk)); err != nil {
				t.Errorf("client write: %v", err)
				return
			}
			th.Sleep(20 * time.Millisecond)
		}
		c.Close(th)
	})
	w.RunUntil(2*time.Minute, func() bool { return srvDone })
	if !srvDone {
		t.Fatal("transfer did not resume after lease expiry and re-registration")
	}
	if received != chunks*chunk {
		t.Fatalf("server received %d bytes, want %d", received, chunks*chunk)
	}
	if got := w.Node(1).Mod.SendRejected; got < 1 {
		t.Fatal("no send was ever rejected: the lease never expired, scenario is not testing quarantine")
	}
	r := w.Node(1).Registry
	if r.Epoch() != 2 {
		t.Fatalf("client registry epoch = %d, want 2", r.Epoch())
	}
	if r.ReRegistered() < 1 {
		t.Fatal("library never re-registered its connection with the reborn registry")
	}
}

// Satellite: the chaos injector's delayed-reply path. Every control-plane
// request is delayed past the library's first RPC timeout, so every request
// is retried while the original is still in flight — without request-ID
// dedup the retried listen would see ErrPortInUse from its own first
// attempt and the retried connect would run a second handshake.
func TestChaosDelayedReplyDeduped(t *testing.T) {
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet,
		Chaos: &chaos.FaultPlan{
			Seed:    13,
			Control: chaos.ControlFaults{DelayProb: 1.0, Delay: 400 * time.Millisecond},
		},
	})
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	received := ""
	srvDone, cliDone := false, false
	srv.Go("srv", func(th *kern.Thread) {
		l, err := srv.Stack.Listen(th, 80, stacks.Options{})
		if err != nil {
			t.Errorf("listen under delayed replies: %v", err)
			return
		}
		c, err := l.Accept(th)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		buf := make([]byte, 64)
		for {
			n, err := c.Read(th, buf)
			if err != nil || n == 0 {
				break
			}
			received += string(buf[:n])
		}
		srvDone = true
	})
	// Start the client late enough that the (delayed) listen is registered
	// before the SYN can arrive.
	cli.GoAfter(600*time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		if err != nil {
			t.Errorf("connect under delayed replies: %v", err)
			return
		}
		if _, err := c.Write(th, []byte("deduped")); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		c.Close(th)
		cliDone = true
	})
	w.RunUntil(time.Minute, func() bool { return srvDone && cliDone })
	if !srvDone || !cliDone {
		t.Fatalf("incomplete under delayed replies: srv=%v cli=%v", srvDone, cliDone)
	}
	if received != "deduped" {
		t.Fatalf("server received %q", received)
	}
	// At least one retried request must have been answered from the cache.
	if hits := w.Node(0).Registry.DedupHits() + w.Node(1).Registry.DedupHits(); hits < 1 {
		t.Fatal("no dedup hits: the delayed-reply path never exercised the request-ID cache")
	}
}

// rawTCPFrame builds a complete Ethernet/IPv4/TCP frame for module-level
// injection, bypassing any stack — the hostile-tenant scenarios need
// traffic aimed at a channel no library is draining.
func rawTCPFrame(srcIP, dstIP ipv4.Addr, src, dst link.Addr, srcPort, dstPort uint16, payload []byte) *pkt.Buf {
	b := pkt.FromBytes(link.EthHeaderLen+ipv4.HeaderLen+tcp.HeaderLen, payload)
	th := tcp.Header{SrcPort: srcPort, DstPort: dstPort, Flags: tcp.FlagACK, Window: 1024}
	th.Encode(b, srcIP, dstIP)
	ih := ipv4.Header{TTL: 64, Proto: ipv4.ProtoTCP, Src: srcIP, Dst: dstIP}
	ih.Encode(b)
	lh := link.EthHeader{Dst: dst, Src: src, Type: link.TypeIPv4}
	lh.Encode(b)
	return b
}

// Zero-copy safety among nontrusting tenants, half 1: a hostile tenant
// claims a receive ring and never drains it while a flood is aimed at it.
// By-reference delivery must not let that pin unbounded pool storage — once
// the ring is full, further frames are dropped at delivery with buffer and
// ring slot released on the spot, so the flood's footprint is bounded by
// the hostile tenant's own ring capacity and a well-behaved neighbor's
// transfer through the same module proceeds untouched.
func TestChaosZeroCopyHostileFloodBounded(t *testing.T) {
	trackPoolLeaks(t)
	w := NewWorld(Config{Org: OrgUserLib, Net: Ethernet, ZeroCopyRx: true})
	n0, n1 := w.Node(0), w.Node(1)

	// The hostile tenant: a ring of 8 frames, never drained.
	const ring = 8
	hostile := n0.Host.NewDomain("hostile", true)
	spec := filter.Spec{
		LinkHdrLen: link.EthHeaderLen, Proto: ipv4.ProtoTCP,
		LocalIP: n0.IP, LocalPort: 9,
		RemoteIP: n1.IP, RemotePort: 1999,
	}
	tmpl := netio.Template{
		LinkSrc: link.MakeAddr(1), LinkDst: link.MakeAddr(2), Type: link.TypeIPv4,
		Proto: ipv4.ProtoTCP, LocalIP: n0.IP, LocalPort: 9,
		RemoteIP: n1.IP, RemotePort: 1999,
	}
	hcap, hch, err := n0.Mod.CreateChannel(hostile, spec, tmpl, ring)
	if err != nil {
		t.Fatal(err)
	}
	pinnedWithHostile := n0.Mod.PinnedRegions()

	// The flood: far more frames than the ring holds, paced to overlap the
	// neighbor's whole transfer.
	const floodFrames = 120
	flooder := n1.Host.NewDomain("flooder", true)
	flooder.Spawn("flood", func(th *kern.Thread) {
		for i := 0; i < floodFrames; i++ {
			b := rawTCPFrame(n1.IP, n0.IP, link.MakeAddr(2), link.MakeAddr(1),
				1999, 9, pattern(1024))
			n1.Mod.SendKernel(th, b)
			th.Sleep(500 * time.Microsecond)
		}
	})

	// The well-behaved neighbor: a full echo through the same two modules,
	// in flight while the flood saturates the hostile ring.
	echoTransfer(t, w, 64*1024, stacks.Options{}, 5*time.Minute)
	w.Run(5 * time.Second) // drain the close handshake and flood tail

	if hch.Overflows == 0 || hch.Dropped == 0 {
		t.Fatalf("flood never overflowed the hostile ring (overflows=%d dropped=%d) — scenario is not exercising saturation",
			hch.Overflows, hch.Dropped)
	}
	if hch.Delivered != ring {
		t.Fatalf("hostile ring queued %d frames, want exactly its capacity %d", hch.Delivered, ring)
	}
	// The flood's entire pool footprint is the hostile ring: every other
	// buffer in the world has been released (the neighbor's liens settle
	// when its input threads go back to Wait).
	if n := pkt.OutstandingCount(); n != ring {
		t.Fatalf("%d pkt.Bufs outstanding with the hostile ring full, want %d:\n%s",
			n, ring, pkt.FormatLeakReport())
	}
	// Destroying the hostile channel reclaims the queued references.
	if err := n0.Mod.DestroyChannel(hostile, hcap); err != nil {
		t.Fatalf("destroy hostile channel: %v", err)
	}
	if got := n0.Mod.PinnedRegions(); got != pinnedWithHostile-1 {
		t.Fatalf("pinned regions = %d after destroy, want %d", got, pinnedWithHostile-1)
	}
	assertNoPoolLeaks(t)
}

// Zero-copy safety among nontrusting tenants, half 2: an application
// crashes while the module still holds by-reference deliveries on its
// behalf — frames queued in its ring and liens on the batch its input
// thread was processing. The kill path must sweep every reference (no
// pinned regions, no live capabilities, no stranded pool buffers) and the
// peer must observe a reset, all without the dead application's help.
func TestChaosZeroCopyCrashSweepsReferences(t *testing.T) {
	trackPoolLeaks(t)
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet, ZeroCopyRx: true,
		Chaos: &chaos.FaultPlan{
			Seed: 7,
			// The receiver dies mid-stream: it is the side holding
			// zero-copy references when the crash lands.
			Crashes: []chaos.CrashPoint{{Host: 0, App: "server", At: 80 * time.Millisecond}},
		},
	})
	enableConformance(t, w)
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	var cliErr error
	cliDone := false
	srv.Go("srv", func(th *kern.Thread) {
		l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
		c, err := l.Accept(th)
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			if _, err := c.Read(th, buf); err != nil {
				return
			}
		}
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		// Stream into the receiver until its crash turns into a reset.
		for {
			if _, cliErr = c.Write(th, pattern(1024)); cliErr != nil {
				cliDone = true
				return
			}
			th.Sleep(2 * time.Millisecond)
		}
	})
	w.RunUntil(time.Minute, func() bool { return cliDone })
	if !cliDone {
		t.Fatal("client never unblocked: no reset observed from the crashed receiver")
	}
	if cliErr != stacks.ErrReset {
		t.Fatalf("client error = %v, want ErrReset", cliErr)
	}
	if !srv.Dom.Dead() {
		t.Fatal("crash point did not fire")
	}
	// Drain the teardown, then audit the crashed node: the sweep must have
	// reclaimed the dead receiver's rings, liens, and capabilities.
	w.Run(5 * time.Second)
	assertNoOrphans(t, w, 0, srv.Dom)
	assertNoPoolLeaks(t)
}

// Shards crash independently — on both hosts — while a dozen connections
// churn through setup, echo, and teardown. The control plane must keep
// admitting and completing setups (dead shards are routed around via
// successor steering and replicated listeners), migrated connections must
// finish their transfers, and when the dust settles nothing may leak: no
// ports, no transferred-connection records, no capabilities, no pinned
// regions, no pool buffers — on either host — with the RFC 793 conformance
// checker watching every frame.
func TestChaosShardCrashesUnderChurnLeaveNoLeaks(t *testing.T) {
	trackPoolLeaks(t)
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet, RegistryShards: 2,
		Chaos: &chaos.FaultPlan{
			Seed: 11,
			Wire: wire.Faults{LossProb: 0.02},
			ShardCrashes: []chaos.ShardCrash{
				{Host: 0, Shard: 0, At: 1 * time.Second, RestartAfter: 5 * time.Second},
				{Host: 1, Shard: 1, At: 3 * time.Second, RestartAfter: 5 * time.Second},
				{Host: 0, Shard: 1, At: 8 * time.Second, RestartAfter: 5 * time.Second},
			},
		},
	})
	enableConformance(t, w)
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	const conns = 12
	served := 0
	srv.Go("srv", func(th *kern.Thread) {
		l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
		for i := 0; i < conns; i++ {
			c, err := l.Accept(th)
			if err != nil {
				return
			}
			served++
			srv.Go("echo", func(th *kern.Thread) {
				buf := make([]byte, 1024)
				for {
					n, err := c.Read(th, buf)
					if err != nil {
						return
					}
					if n == 0 {
						c.Close(th)
						return
					}
					if _, err := c.Write(th, buf[:n]); err != nil {
						return
					}
				}
			})
		}
		l.Close(th)
	})
	okConns, doneConns := 0, 0
	for i := 0; i < conns; i++ {
		// Staggered starts straddle all three shard outages.
		cli.GoAfter(time.Duration(i)*900*time.Millisecond, "cli", func(th *kern.Thread) {
			defer func() { doneConns++ }()
			c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
			if err != nil {
				t.Errorf("connect: %v", err)
				return
			}
			msg := pattern(256)
			if _, err := c.Write(th, msg); err != nil {
				return
			}
			buf := make([]byte, 512)
			got := 0
			for got < len(msg) {
				n, err := c.Read(th, buf)
				if err != nil || n == 0 {
					break
				}
				got += n
			}
			c.Close(th)
			if got == len(msg) {
				okConns++
			}
		})
	}
	w.RunUntil(3*time.Minute, func() bool { return doneConns == conns })
	if doneConns != conns || okConns != conns || served != conns {
		t.Fatalf("churn incomplete: done=%d ok=%d served=%d want %d", doneConns, okConns, served, conns)
	}
	// Ride out the last restart and TIME_WAIT (2*MSL = 60 s), then audit.
	w.Run(2 * time.Minute)
	// Every crashed shard reborn, siblings untouched.
	wantEpoch := map[[2]int]int{{0, 0}: 2, {0, 1}: 2, {1, 0}: 1, {1, 1}: 2}
	for host := 0; host < 2; host++ {
		fed := w.Node(host).Fed
		for i := 0; i < fed.Shards(); i++ {
			if !fed.Live(i) {
				t.Errorf("host %d shard %d not live at end", host, i)
			}
			if got := fed.Shard(i).Epoch(); got != wantEpoch[[2]int{host, i}] {
				t.Errorf("host %d shard %d epoch = %d, want %d", host, i, got, wantEpoch[[2]int{host, i}])
			}
		}
	}
	for host := 0; host < 2; host++ {
		n := w.Node(host)
		fed := n.Fed
		if got := fed.PortsInUse(); got != 0 {
			t.Errorf("host %d: %d ports still allocated", host, got)
		}
		if got := fed.TransferredConns(); got != 0 {
			t.Errorf("host %d: %d transferred connections not reclaimed", host, got)
		}
		if got := fed.OwnedConns(); got != 0 {
			t.Errorf("host %d: %d registry-owned pcbs remain", host, got)
		}
		if got := n.Mod.PinnedRegions(); got != 0 {
			t.Errorf("host %d: %d shared regions still pinned", host, got)
		}
	}
	assertNoPoolLeaks(t)
}

// A scripted partition under connection churn: the whole segment goes dark
// for three seconds in the middle of a staggered run of short echo
// connections. SYNs and data sent into the outage vanish silently (no
// RST), so everything rides on retransmission; after the heal every
// connection — including those started mid-partition — must complete, and
// the control plane must come out clean: no leaked ports, no stranded
// transferred or registry-owned pcbs, no pinned regions, no pool buffers.
func TestChaosPartitionUnderChurnHealsWithoutLeaks(t *testing.T) {
	trackPoolLeaks(t)
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet,
		Chaos: &chaos.FaultPlan{
			Seed: 29,
			Wire: wire.Faults{LossProb: 0.02},
			Partitions: []chaos.Partition{
				{At: 2 * time.Second, HealAfter: 3 * time.Second},
			},
		},
	})
	enableConformance(t, w)
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	const conns = 10
	served := 0
	srv.Go("srv", func(th *kern.Thread) {
		l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
		for i := 0; i < conns; i++ {
			c, err := l.Accept(th)
			if err != nil {
				return
			}
			served++
			srv.Go("echo", func(th *kern.Thread) {
				buf := make([]byte, 1024)
				for {
					n, err := c.Read(th, buf)
					if err != nil {
						return
					}
					if n == 0 {
						c.Close(th)
						return
					}
					if _, err := c.Write(th, buf[:n]); err != nil {
						return
					}
				}
			})
		}
		l.Close(th)
	})
	okConns, doneConns := 0, 0
	for i := 0; i < conns; i++ {
		// Staggered starts: early connections carry data into the outage,
		// middle ones open into it, late ones open right after the heal.
		cli.GoAfter(time.Duration(i)*500*time.Millisecond, "cli", func(th *kern.Thread) {
			defer func() { doneConns++ }()
			c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
			if err != nil {
				t.Errorf("connect: %v", err)
				return
			}
			msg := pattern(256)
			if _, err := c.Write(th, msg); err != nil {
				return
			}
			buf := make([]byte, 512)
			got := 0
			for got < len(msg) {
				n, err := c.Read(th, buf)
				if err != nil || n == 0 {
					break
				}
				got += n
			}
			c.Close(th)
			if got == len(msg) {
				okConns++
			}
		})
	}
	w.RunUntil(3*time.Minute, func() bool { return doneConns == conns })
	if doneConns != conns || okConns != conns || served != conns {
		t.Fatalf("churn incomplete: done=%d ok=%d served=%d want %d", doneConns, okConns, served, conns)
	}
	// Ride out TIME_WAIT (2*MSL = 60 s), then audit both hosts.
	w.Run(2 * time.Minute)
	for host := 0; host < 2; host++ {
		n := w.Node(host)
		r := n.Registry
		if got := r.PortsInUse(); got != 0 {
			t.Errorf("host %d: %d ports still allocated", host, got)
		}
		if got := r.TransferredConns(); got != 0 {
			t.Errorf("host %d: %d transferred connections not reclaimed", host, got)
		}
		if got := r.OwnedConns(); got != 0 {
			t.Errorf("host %d: %d registry-owned pcbs remain", host, got)
		}
		if got := n.Mod.PinnedRegions(); got != 0 {
			t.Errorf("host %d: %d shared regions still pinned", host, got)
		}
	}
	assertNoPoolLeaks(t)
}
