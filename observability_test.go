package ulp

// Integration coverage for the observability layer: the per-layer stats
// registry must reproduce the Table-style breakdowns from a live run, the
// pcap export must parse back frame-for-frame, and the trace bus must
// respect the registry's crash-sweep ordering (no channel activity after a
// capability is revoked).

import (
	"bytes"
	"testing"
	"time"

	"ulp/internal/chaos"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/pkt"
	"ulp/internal/stacks"
	"ulp/internal/trace"
)

// TestStatsReportPerLayer runs a 64 KB echo under the user-level library and
// asserts the per-layer counters a Table 2/3-style breakdown depends on.
func TestStatsReportPerLayer(t *testing.T) {
	w := NewWorld(Config{Org: OrgUserLib, Net: Ethernet})
	echoTransfer(t, w, 64*1024, stacks.Options{}, 2*time.Minute)
	// echoTransfer stops the world the instant the client returns from
	// Close, which can leave its FIN mid-flight (wire propagation plus the
	// receive interrupt are simulated events). Drain so the close handshake
	// completes and every in-flight frame reaches a releasing consumer.
	w.Run(5 * time.Second)

	snap := w.StatsRegistry().Snapshot()
	atLeast := func(name string, min int64) int64 {
		t.Helper()
		v, ok := snap[name]
		if !ok {
			t.Fatalf("counter %q missing from snapshot", name)
		}
		if v < min {
			t.Errorf("%s = %d, want >= %d", name, v, min)
		}
		return v
	}

	atLeast("wire.frames_sent", 10)
	atLeast("wire.bytes_sent", 2*64*1024) // 64 KB each way plus headers
	atLeast("netdev.h0.tx_frames", 5)
	atLeast("netdev.h1.rx_frames", 5)

	// The user-level library receives data over per-connection channels:
	// software demux must have matched, deliveries must have been posted,
	// and batching means notifications never exceed deliveries.
	atLeast("netio.h1.demux_matched", 5)
	delivered := atLeast("netio.h1.delivered", 5)
	notifs := atLeast("netio.h1.notifications", 1)
	if notifs > delivered {
		t.Errorf("notifications (%d) > deliveries (%d): batching counter inverted", notifs, delivered)
	}
	// The LANCE stages packets in kernel memory; moving them into the
	// channel's shared region is a counted copy.
	atLeast("netio.h1.copied_bytes", 64*1024)

	// Both directions checksum the payload at sender and receiver.
	atLeast("checksum.bytes_summed", 2*2*64*1024)

	// The pool served the run and nothing leaked.
	atLeast("pkt.gets", 10)
	if out := snap["pkt.outstanding"]; out != 0 {
		t.Errorf("pkt.outstanding = %d, want 0 after a clean run", out)
	}
	atLeast("sim.events_fired", 100)

	if rep := w.StatsReport(); !bytes.Contains([]byte(rep), []byte("wire.frames_sent")) {
		t.Errorf("StatsReport missing wire namespace:\n%s", rep)
	}
}

// TestPcapExportParses captures a traced run to a pcap stream and reads it
// back: the header must identify Ethernet, timestamps must be nondecreasing
// virtual time, and every packet must decode as a link frame.
func TestPcapExportParses(t *testing.T) {
	w := NewWorld(Config{Org: OrgUserLib, Net: Ethernet})
	var buf bytes.Buffer
	pw, err := trace.NewPcapWriter(&buf, trace.LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	w.EnableTrace().Subscribe(func(e trace.Event) {
		if e.Kind == trace.FrameTx {
			if err := pw.WritePacket(e.At, e.Frame); err != nil {
				t.Errorf("pcap write: %v", err)
			}
		}
	})
	echoTransfer(t, w, 16*1024, stacks.Options{}, 2*time.Minute)

	linkType, packets, err := trace.ReadPcap(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("pcap read-back: %v", err)
	}
	if linkType != trace.LinkTypeEthernet {
		t.Fatalf("link type = %d, want %d", linkType, trace.LinkTypeEthernet)
	}
	if len(packets) < 10 {
		t.Fatalf("only %d packets captured", len(packets))
	}
	var prev time.Duration
	ipFrames := 0
	for i, p := range packets {
		if p.At < prev {
			t.Fatalf("packet %d: timestamp %v before %v", i, p.At, prev)
		}
		prev = p.At
		f := pkt.FromBytes(0, p.Data)
		h, err := link.DecodeEth(f)
		if err != nil {
			t.Fatalf("packet %d: not an Ethernet frame: %v", i, err)
		}
		if h.Type == link.TypeIPv4 {
			ipFrames++
		}
		f.Release()
	}
	if ipFrames == 0 {
		t.Fatal("capture contains no IPv4 frames")
	}
}

// TestCrashSweepRevokesBeforeSilence kills a domain mid-stream with a trace
// subscriber attached and asserts the crash sweep's ordering contract: once
// the network I/O module emits CapRevoked for a capability, no further
// demux or channel events may reference that channel — a hit after
// revocation would mean packets were still being steered into a torn-down
// shared region.
func TestCrashSweepRevokesBeforeSilence(t *testing.T) {
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet,
		Chaos: &chaos.FaultPlan{
			Seed:    7,
			Crashes: []chaos.CrashPoint{{Host: 1, App: "client", At: 80 * time.Millisecond}},
		},
	})
	var events []trace.Event
	w.EnableTrace().Subscribe(func(e trace.Event) {
		e.Frame = nil // Frame is only valid during the callback
		events = append(events, e)
	})

	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	srvDone := false
	srv.Go("srv", func(th *kern.Thread) {
		l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
		c, err := l.Accept(th)
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			if n, err := c.Read(th, buf); err != nil || n == 0 {
				break
			}
		}
		srvDone = true
		l.Close(th)
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		if err != nil {
			return
		}
		for {
			if _, err := c.Write(th, pattern(512)); err != nil {
				return
			}
			th.Sleep(10 * time.Millisecond)
		}
	})
	w.RunUntil(time.Minute, func() bool { return srvDone })
	w.Run(5 * time.Second) // drain resets and teardown

	if !cli.Dom.Dead() {
		t.Fatal("crash point did not fire")
	}
	type chanKey struct {
		node string
		id   int64
	}
	revokedAt := map[chanKey]int{}
	for i, e := range events {
		if e.Kind == trace.CapRevoked {
			if _, dup := revokedAt[chanKey{e.Node, e.A}]; !dup {
				revokedAt[chanKey{e.Node, e.A}] = i
			}
		}
	}
	crashedNode := w.Node(1).Mod.Device().Name()
	sawCrashRevoke := false
	for k := range revokedAt {
		if k.node == crashedNode {
			sawCrashRevoke = true
		}
	}
	if !sawCrashRevoke {
		t.Fatalf("no CapRevoked emitted on %s: crash sweep untraced (revocations: %v)",
			crashedNode, revokedAt)
	}
	for i, e := range events {
		switch e.Kind {
		case trace.DemuxHit, trace.ChanDeliver, trace.ChanNotify, trace.ChanDrop:
			if at, ok := revokedAt[chanKey{e.Node, e.A}]; ok && i > at {
				t.Errorf("event %d %s on %s channel %d after its revocation at event %d",
					i, e.Kind, e.Node, e.A, at)
			}
		}
	}
}
