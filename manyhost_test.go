package ulp

// Many-host fast-path integration: the switched fabric, the O(1) demux
// steering, and the timing-wheel timer backend all active at once, under
// seeded faults, with the RFC 793 conformance checker attached. These
// scenarios join the seeded replay matrix: each must be bit-identical
// across replays and finish with zero conformance violations.

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"ulp/internal/chaos"
	"ulp/internal/kern"
	"ulp/internal/pkt"
	"ulp/internal/stacks"
	"ulp/internal/tcp"
	"ulp/internal/wire"
)

// runManyHostScenario builds a 6-host switched-AN1 world (one server, five
// clients) with the timer wheel enabled, runs five concurrent lossy
// transfers, and returns the frame trace.
func runManyHostScenario(t *testing.T, seed uint64) []string {
	t.Helper()
	const clients = 5
	w := NewWorld(Config{
		Org: OrgUserLib, Net: AN1, Hosts: clients + 1,
		Switch:     &wire.SwitchConfig{Latency: time.Microsecond},
		TimerWheel: true,
		Chaos: &chaos.FaultPlan{
			Seed: seed,
			Wire: wire.Faults{LossProb: 0.02, DupProb: 0.01},
		},
	})
	enableConformance(t, w)
	var frames []string
	w.TraceFrames(func(at time.Duration, frame *pkt.Buf) {
		h := fnv.New64a()
		h.Write(frame.Bytes())
		frames = append(frames, fmt.Sprintf("%d %d %016x", at, len(frame.Bytes()), h.Sum64()))
	})

	srv := w.Node(0).App("server")
	served := 0
	srv.Go("srv", func(th *kern.Thread) {
		l, err := srv.Stack.Listen(th, 80, stacks.Options{Backlog: clients})
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		for i := 0; i < clients; i++ {
			c, err := l.Accept(th)
			if err != nil {
				t.Errorf("accept %d: %v", i, err)
				return
			}
			// One reader thread per accepted connection, so transfers
			// overlap and exercise disjoint switch ports concurrently.
			srv.Go(fmt.Sprintf("srv-conn%d", i), func(th *kern.Thread) {
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(th, buf)
					if err != nil || n == 0 {
						break
					}
				}
				c.Close(th)
				served++
			})
		}
	})
	for ci := 1; ci <= clients; ci++ {
		cli := w.Node(ci).App("client")
		cli.GoAfter(time.Duration(ci)*time.Millisecond, "cli", func(th *kern.Thread) {
			c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
			if err != nil {
				t.Errorf("connect: %v", err)
				return
			}
			for k := 0; k < 4; k++ {
				if _, err := c.Write(th, pattern(1024)); err != nil {
					return
				}
			}
			c.Close(th)
		})
	}
	w.RunUntil(time.Minute, func() bool { return served == clients })
	if served != clients {
		t.Fatalf("served %d/%d transfers", served, clients)
	}
	w.Run(2 * time.Second) // drain FINs
	if len(frames) == 0 {
		t.Fatal("scenario produced no frames")
	}
	// ARP broadcasts populate the learning table before the first unicast,
	// so real worlds never flood-on-miss (the wire unit tests cover that
	// path); every data frame must have been unicast-switched.
	learned, switched, _ := w.Seg.SwitchStats()
	if learned < clients+1 || switched == 0 {
		t.Fatalf("switch stats learned/switched = %d/%d — fabric not exercised",
			learned, switched)
	}
	return frames
}

// TestManyHostSwitchedReplayDeterministic is the many-host member of the
// seeded replay matrix: switched fabric + steering + wheel must replay
// bit-identically (and, via runManyHostScenario, with zero conformance
// violations).
func TestManyHostSwitchedReplayDeterministic(t *testing.T) {
	seed := uint64(23)
	a := runManyHostScenario(t, seed)
	b := runManyHostScenario(t, seed)
	diffTraces(t, seed, a, b)
}

// TestTimerWheelLossyTransfer drives the wheel backend through its full
// repertoire on a two-host world: retransmission timers under 5% loss,
// delayed ACKs, and TIME_WAIT expiry returning the ephemeral port.
func TestTimerWheelLossyTransfer(t *testing.T) {
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet,
		TimerWheel: true,
		Faults:     &wire.Faults{Seed: 5, LossProb: 0.05},
	})
	enableConformance(t, w)
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	var cliConn stacks.Conn
	phase := 0
	srv.Go("srv", func(th *kern.Thread) {
		l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
		c, err := l.Accept(th)
		if err != nil {
			return
		}
		buf := make([]byte, 8192)
		total := 0
		for {
			n, err := c.Read(th, buf)
			if err != nil || n == 0 {
				break
			}
			total += n
		}
		c.Close(th)
		if total != 64*1024 {
			t.Errorf("server received %d bytes, want %d", total, 64*1024)
		}
		phase = 2
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		if err != nil {
			t.Errorf("connect: %v", err)
			phase = -1
			return
		}
		cliConn = c
		for sent := 0; sent < 64*1024; sent += 4096 {
			if _, err := c.Write(th, pattern(4096)); err != nil {
				t.Errorf("write: %v", err)
				phase = -1
				return
			}
		}
		c.Close(th)
		phase = 1
	})
	w.RunUntil(2*time.Minute, func() bool { return phase >= 2 || phase < 0 })
	if phase < 2 {
		t.Fatalf("transfer incomplete (phase %d)", phase)
	}
	// The active closer sits in TIME_WAIT; the wheel must fire its 2MSL
	// timer (a cross-level cascade: 120 slow ticks) and the library's
	// teardown must return the ephemeral port to the registry.
	w.Run(3 * time.Minute)
	if s := cliConn.State(); s != tcp.Closed {
		t.Fatalf("client state after 2MSL = %v, want Closed", s)
	}
	if n := w.Node(1).Registry.PortsInUse(); n != 0 {
		t.Fatalf("client registry still holds %d ports after teardown", n)
	}
	if n := w.Node(0).Registry.PortsInUse(); n != 1 {
		t.Fatalf("server registry holds %d ports, want 1 (the listener)", n)
	}
}
