package ulp

// Determinism regression for the wall-clock fast path. The pooled event
// records, recycled packet buffers, compiled demux predicates, and
// word-at-a-time checksum are all wall-clock optimizations of the
// simulator itself: virtual-time behaviour must be bit-identical to the
// reference implementations, and identical from run to run. This test
// pins that invariant the strongest way available short of checked-in
// golden files — it executes a seeded chaos scenario (loss, duplication,
// corruption, reordering, and a mid-stream crash all active) twice and
// requires the two frame-level event traces to match exactly: same
// frames, same bytes, same virtual timestamps, same order.
//
// Anything order-sensitive that the optimizations touch feeds this trace:
// event-heap pops decide frame timing, buffer recycling could leak stale
// bytes into frames, and a compiled predicate that disagreed with its
// interpreter would steer packets — and therefore retransmissions — down
// a different path.

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"ulp/internal/chaos"
	"ulp/internal/kern"
	"ulp/internal/pkt"
	"ulp/internal/stacks"
	"ulp/internal/trace"
	"ulp/internal/wire"
)

// runSeededScenario executes one full client-server transfer under an
// aggressive fault plan and returns the frame trace: one line per frame on
// the wire with its virtual timestamp, length, and payload hash. With
// withTrace set the full observability bus is enabled with a subscriber
// attached, so every emission hook executes during the run — the returned
// trace must be identical either way.
func runSeededScenario(t *testing.T, seed uint64, withTrace bool) []string {
	t.Helper()
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet,
		Chaos: &chaos.FaultPlan{
			Seed: seed,
			Wire: wire.Faults{
				LossProb:     0.05,
				DupProb:      0.03,
				CorruptProb:  0.02,
				ReorderProb:  0.05,
				ReorderDelay: 2 * time.Millisecond,
			},
			Crashes: []chaos.CrashPoint{{Host: 1, App: "client", At: 400 * time.Millisecond}},
		},
	})
	if withTrace {
		w.EnableTrace().Subscribe(func(trace.Event) {})
		// Traced runs also stream through the RFC 793 conformance checker:
		// the chaos schedule must never push an engine through an illegal
		// transition, and the checker must not perturb the trace.
		enableConformance(t, w)
	}
	var frames []string
	w.TraceFrames(func(at time.Duration, frame *pkt.Buf) {
		h := fnv.New64a()
		h.Write(frame.Bytes())
		frames = append(frames, fmt.Sprintf("%d %d %016x", at, len(frame.Bytes()), h.Sum64()))
	})

	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	srvDone := false
	srv.Go("srv", func(th *kern.Thread) {
		l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
		c, err := l.Accept(th)
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := c.Read(th, buf)
			if err != nil || n == 0 {
				break
			}
		}
		srvDone = true
		l.Close(th)
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		if err != nil {
			return
		}
		// Stream until the crash point tears the domain down mid-transfer.
		for {
			if _, err := c.Write(th, pattern(1024)); err != nil {
				return
			}
			th.Sleep(5 * time.Millisecond)
		}
	})
	w.RunUntil(time.Minute, func() bool { return srvDone })
	// Drain the crash teardown so the trace covers resets too.
	w.Run(5 * time.Second)
	if len(frames) == 0 {
		t.Fatal("scenario produced no frames — trace hook not firing")
	}
	return frames
}

// TestDeterministicReplay runs the same seeded chaos scenario twice and
// diffs the frame traces. The suite's tables depend on this property; the
// trace-level check localizes a violation to the first diverging frame.
func TestDeterministicReplay(t *testing.T) {
	seeds := []uint64{7, 42}
	if testing.Short() {
		seeds = seeds[:1] // CI's quick determinism gate
	}
	for _, seed := range seeds {
		a := runSeededScenario(t, seed, false)
		b := runSeededScenario(t, seed, false)
		diffTraces(t, seed, a, b)
	}
}

// TestTracingPreservesDeterminism pins the observability layer's core
// invariant: enabling the trace bus (with a live subscriber, so every
// emission hook actually runs) must not consume virtual time, sequence
// numbers, or randomness. A traced run's frame trace must be bit-identical
// to an untraced run of the same seed.
func TestTracingPreservesDeterminism(t *testing.T) {
	seed := uint64(7)
	plain := runSeededScenario(t, seed, false)
	traced := runSeededScenario(t, seed, true)
	diffTraces(t, seed, plain, traced)
}

func diffTraces(t *testing.T, seed uint64, a, b []string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("seed %d: trace lengths differ: %d vs %d frames", seed, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d: traces diverge at frame %d:\n  run 1: %s\n  run 2: %s",
				seed, i, a[i], b[i])
		}
	}
}

// runRegistryCrashScenario is the crash-recovery member of the replay
// matrix: wire faults plus a kill-and-restart of the server's registry
// mid-transfer. Rebuild order (sorted module enumeration), lease renewals,
// and the reborn server's perturbed ISS all feed the frame trace, so any
// nondeterminism in the recovery path shows up as a diverging frame.
func runRegistryCrashScenario(t *testing.T, seed uint64) []string {
	t.Helper()
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet,
		Chaos: &chaos.FaultPlan{
			Seed: seed,
			Wire: wire.Faults{LossProb: 0.03, DupProb: 0.02},
			RegistryCrashes: []chaos.RegistryCrash{
				{Host: 0, At: 150 * time.Millisecond, RestartAfter: 200 * time.Millisecond},
			},
		},
	})
	var frames []string
	w.TraceFrames(func(at time.Duration, frame *pkt.Buf) {
		h := fnv.New64a()
		h.Write(frame.Bytes())
		frames = append(frames, fmt.Sprintf("%d %d %016x", at, len(frame.Bytes()), h.Sum64()))
	})

	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	srvDone := false
	srv.Go("srv", func(th *kern.Thread) {
		l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
		c, err := l.Accept(th)
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := c.Read(th, buf)
			if err != nil || n == 0 {
				break
			}
		}
		srvDone = true
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		if err != nil {
			return
		}
		// Slow writes straddle the crash window, then an orderly close.
		for i := 0; i < 60; i++ {
			if _, err := c.Write(th, pattern(512)); err != nil {
				return
			}
			th.Sleep(5 * time.Millisecond)
		}
		c.Close(th)
	})
	w.RunUntil(time.Minute, func() bool { return srvDone })
	w.Run(2 * time.Second) // drain the close and any recovery stragglers
	if !srvDone {
		t.Fatal("crash-recovery scenario did not complete")
	}
	if w.Node(0).Registry.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", w.Node(0).Registry.Epoch())
	}
	if len(frames) == 0 {
		t.Fatal("scenario produced no frames")
	}
	return frames
}

// TestRegistryCrashReplayDeterministic pins the acceptance criterion for
// the recovery path: the same seeded kill-and-restart scenario must be
// bit-identical across two replays.
func TestRegistryCrashReplayDeterministic(t *testing.T) {
	seed := uint64(17)
	a := runRegistryCrashScenario(t, seed)
	b := runRegistryCrashScenario(t, seed)
	diffTraces(t, seed, a, b)
}

// runZeroCopyScenario is the zero-copy member of the replay matrix: the
// same aggressive fault plan as runSeededScenario but with by-reference
// delivery and batched doorbells on. Lien settlement, refcounted flood
// clones, and the descriptor-post cost all feed frame timing here, so any
// nondeterminism in the zero-copy machinery diverges the trace.
func runZeroCopyScenario(t *testing.T, seed uint64) []string {
	t.Helper()
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet,
		ZeroCopyRx: true,
		Chaos: &chaos.FaultPlan{
			Seed: seed,
			Wire: wire.Faults{
				LossProb:     0.05,
				DupProb:      0.03,
				CorruptProb:  0.02,
				ReorderProb:  0.05,
				ReorderDelay: 2 * time.Millisecond,
			},
			Crashes: []chaos.CrashPoint{{Host: 1, App: "client", At: 400 * time.Millisecond}},
		},
	})
	var frames []string
	w.TraceFrames(func(at time.Duration, frame *pkt.Buf) {
		h := fnv.New64a()
		h.Write(frame.Bytes())
		frames = append(frames, fmt.Sprintf("%d %d %016x", at, len(frame.Bytes()), h.Sum64()))
	})

	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	srvDone := false
	srv.Go("srv", func(th *kern.Thread) {
		l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
		c, err := l.Accept(th)
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := c.Read(th, buf)
			if err != nil || n == 0 {
				break
			}
		}
		srvDone = true
		l.Close(th)
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		if err != nil {
			return
		}
		for {
			if _, err := c.Write(th, pattern(1024)); err != nil {
				return
			}
			th.Sleep(5 * time.Millisecond)
		}
	})
	// Like runSeededScenario, completion is not asserted: the server is a
	// pure receiver, so when the crash teardown's reset is lost to the
	// fault plan nothing re-elicits it and the read blocks — by design.
	// The property under test is bit-identical replay, not delivery.
	w.RunUntil(time.Minute, func() bool { return srvDone })
	w.Run(5 * time.Second)
	if len(frames) == 0 {
		t.Fatal("scenario produced no frames")
	}
	return frames
}

// TestZeroCopyReplayDeterministic runs the zero-copy chaos scenario twice
// and requires bit-identical frame traces — the seeded replay matrix's
// zero-copy row.
func TestZeroCopyReplayDeterministic(t *testing.T) {
	seed := uint64(7)
	a := runZeroCopyScenario(t, seed)
	b := runZeroCopyScenario(t, seed)
	diffTraces(t, seed, a, b)
}

// runShardCrashScenario is the sharded-control-plane member of the replay
// matrix: a 2-shard federation on each host, wire faults, and staggered
// kill-and-restart of both server-side shards. Each outage (8 s) outlives
// the 3 s lease TTL, so the shard that issued the server connection's lease
// dies long enough for the module to quarantine the endpoint. The server is
// the writer: its paced Write hits the quarantine (ErrLeaseExpired) and
// triggers reconnect — the library re-registers with the surviving shard
// (cross-shard migration, asserted below), and the reborn shard's
// ownership-filtered rebuild, dropForeign sweep, and listener replication
// all feed the frame trace. Any map-order or steering nondeterminism in the
// federation diverges a frame.
func runShardCrashScenario(t *testing.T, seed uint64) []string {
	t.Helper()
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet,
		RegistryShards: 2,
		Chaos: &chaos.FaultPlan{
			Seed: seed,
			Wire: wire.Faults{LossProb: 0.03, DupProb: 0.02},
			ShardCrashes: []chaos.ShardCrash{
				{Host: 0, Shard: 0, At: 500 * time.Millisecond, RestartAfter: 8 * time.Second},
				{Host: 0, Shard: 1, At: 9 * time.Second, RestartAfter: 8 * time.Second},
			},
		},
	})
	var frames []string
	w.TraceFrames(func(at time.Duration, frame *pkt.Buf) {
		h := fnv.New64a()
		h.Write(frame.Bytes())
		frames = append(frames, fmt.Sprintf("%d %d %016x", at, len(frame.Bytes()), h.Sum64()))
	})

	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	cliDone := false
	got := 0
	srv.Go("srv", func(th *kern.Thread) {
		l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
		c, err := l.Accept(th)
		if err != nil {
			return
		}
		// Slow writes straddle both shard outages: the first crash
		// quarantines this endpoint mid-stream, and the next Write after
		// lease expiry is the migration trigger.
		for i := 0; i < 60; i++ {
			if _, err := c.Write(th, pattern(512)); err != nil {
				return
			}
			th.Sleep(200 * time.Millisecond)
		}
		c.Close(th)
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := c.Read(th, buf)
			if err != nil || n == 0 {
				break
			}
			got += n
		}
		cliDone = true
	})
	// Sample the migration counter before shard 1's crash resets visibility
	// (counters are per-Server-incarnation).
	migrated := 0
	srv.GoAfter(8900*time.Millisecond, "sample", func(th *kern.Thread) {
		migrated = w.Node(0).Fed.ReRegistered()
	})
	w.RunUntil(time.Minute, func() bool { return cliDone })
	w.Run(8 * time.Second) // ride out shard 1's restart + heartbeat
	if !cliDone || got != 60*512 {
		t.Fatalf("shard-crash scenario incomplete: done=%v got=%d want=%d", cliDone, got, 60*512)
	}
	if migrated == 0 {
		t.Fatal("lease expiry did not drive a cross-shard migration")
	}
	fed := w.Node(0).Fed
	for i := 0; i < fed.Shards(); i++ {
		if !fed.Live(i) {
			t.Fatalf("shard %d not live after restarts", i)
		}
		if fed.Shard(i).Epoch() != 2 {
			t.Fatalf("shard %d epoch = %d, want 2 (crashed and reborn)", i, fed.Shard(i).Epoch())
		}
	}
	if len(frames) == 0 {
		t.Fatal("scenario produced no frames")
	}
	return frames
}

// TestShardCrashReplayDeterministic pins the sharded control plane into the
// replay matrix: the same seeded shard kill-and-restart scenario — lease
// expiry racing cross-shard migration included — must be bit-identical
// across two replays.
func TestShardCrashReplayDeterministic(t *testing.T) {
	seed := uint64(23)
	a := runShardCrashScenario(t, seed)
	b := runShardCrashScenario(t, seed)
	diffTraces(t, seed, a, b)
}

// runDegradationScenario is the link-conditions member of the replay
// matrix: the probabilistic wire faults stay on while a LinkConditions
// plan layers Gilbert–Elliott bursty loss, a flap schedule, and a
// rate-limited bounded queue on top. The condition layer draws from its
// own RNG after the fault layer's draws, so this scenario pins both that
// the layer is internally deterministic and that its presence does not
// shift a single fault-layer draw (the composition contract).
func runDegradationScenario(t *testing.T, seed uint64) []string {
	t.Helper()
	w := NewWorld(Config{
		Org: OrgUserLib, Net: Ethernet,
		Chaos: &chaos.FaultPlan{
			Seed: seed,
			Wire: wire.Faults{
				LossProb:     0.03,
				DupProb:      0.02,
				ReorderProb:  0.03,
				ReorderDelay: 2 * time.Millisecond,
			},
		},
		Conditions: &wire.LinkConditions{
			Seed:  seed + 1,
			Burst: &wire.GilbertElliott{PGoodBad: 0.02, PBadGood: 0.3, LossBad: 1},
			Flaps: []wire.Window{
				{From: 80 * time.Millisecond, Until: 120 * time.Millisecond},
				{From: 300 * time.Millisecond, Until: 340 * time.Millisecond},
			},
			Queue: &wire.QueueModel{RateBitsPerSec: 8_000_000, MaxFrames: 12},
		},
	})
	var frames []string
	w.TraceFrames(func(at time.Duration, frame *pkt.Buf) {
		h := fnv.New64a()
		h.Write(frame.Bytes())
		frames = append(frames, fmt.Sprintf("%d %d %016x", at, len(frame.Bytes()), h.Sum64()))
	})

	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	srvDone := false
	srv.Go("srv", func(th *kern.Thread) {
		l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
		c, err := l.Accept(th)
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := c.Read(th, buf)
			if err != nil || n == 0 {
				break
			}
		}
		srvDone = true
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		if err != nil {
			return
		}
		for i := 0; i < 40; i++ {
			if _, err := c.Write(th, pattern(1024)); err != nil {
				return
			}
			th.Sleep(5 * time.Millisecond)
		}
		c.Close(th)
	})
	w.RunUntil(time.Minute, func() bool { return srvDone })
	w.Run(2 * time.Second)
	if !srvDone {
		t.Fatal("degradation scenario did not complete")
	}
	if len(frames) == 0 {
		t.Fatal("scenario produced no frames")
	}
	return frames
}

// TestDegradationReplayDeterministic pins the acceptance criterion for the
// link-condition layer: the same seeded bursty-loss + flap + bufferbloat
// scenario must be bit-identical across two replays.
func TestDegradationReplayDeterministic(t *testing.T) {
	seed := uint64(23)
	a := runDegradationScenario(t, seed)
	b := runDegradationScenario(t, seed)
	diffTraces(t, seed, a, b)
}
