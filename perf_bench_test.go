// Wall-clock performance benchmarks for the simulator's hot layers: the
// event engine, the packet buffer lifecycle, the Internet checksum, and
// input demultiplexing.
//
// Unlike the BenchmarkTable*/BenchmarkAblation* suite (whose ns/op is
// meaningless — those report *virtual-time* metrics through ReportMetric),
// these benchmarks measure real CPU time and allocation counts: how fast
// the simulation itself executes. BENCH_PR3.json records the before/after
// trajectory; CI runs the Engine benchmarks as a smoke test.
package ulp_test

import (
	"testing"
	"time"

	"ulp"
	"ulp/internal/checksum"
	"ulp/internal/experiments"
	"ulp/internal/filter"
	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/pkt"
	"ulp/internal/sim"
	"ulp/internal/stacks"
	"ulp/internal/wire"
)

// ---------------------------------------------------------------------------
// Event engine
// ---------------------------------------------------------------------------

// BenchmarkEngineEvents measures raw event scheduling and dispatch: each
// iteration schedules a batch of events with scattered deadlines and drains
// the heap.
func BenchmarkEngineEvents(b *testing.B) {
	const batch = 4096
	s := sim.New()
	n := 0
	fn := func() { n++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := s.Now()
		for k := 0; k < batch; k++ {
			// Deterministic scatter so the heap sees realistic sift work.
			off := sim.Dur((uint64(k) * 2654435761) % 1000003)
			s.At(now.Add(off), fn)
		}
		s.Run(0)
	}
	b.StopTimer()
	if n != b.N*batch {
		b.Fatalf("ran %d events, want %d", n, b.N*batch)
	}
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineTimerChurn measures the TCP retransmit pattern: a timer
// armed and cancelled over and over, with only a rare fire. With lazy
// cancellation the dead events pile up in the heap until their deadlines
// pass; eager removal keeps the heap bounded.
func BenchmarkEngineTimerChurn(b *testing.B) {
	const batch = 4096
	s := sim.New()
	fired := 0
	fn := func() { fired++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < batch; k++ {
			tm := s.After(10*time.Millisecond, fn)
			tm.Cancel()
		}
		// One live event per batch so the run advances past the cancelled
		// deadlines and the baseline pays for popping its dead events.
		s.After(20*time.Millisecond, fn)
		s.Run(0)
	}
	b.StopTimer()
	if fired != b.N {
		b.Fatalf("fired %d, want %d", fired, b.N)
	}
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "cancels/sec")
}

// BenchmarkEngineProcSleep measures the proc park/resume handoff: one proc
// sleeping in a tight loop, i.e. two channel operations plus the timer
// machinery per park.
func BenchmarkEngineProcSleep(b *testing.B) {
	const parks = 4096
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		s := sim.New()
		s.Spawn("sleeper", func(p *sim.Proc) {
			for k := 0; k < parks; k++ {
				p.Sleep(time.Microsecond)
				total++
			}
		})
		s.Run(0)
	}
	b.StopTimer()
	if total != b.N*parks {
		b.Fatalf("parked %d times, want %d", total, b.N*parks)
	}
	b.ReportMetric(float64(b.N*parks)/b.Elapsed().Seconds(), "parks/sec")
}

// ---------------------------------------------------------------------------
// Packet path
// ---------------------------------------------------------------------------

// BenchmarkHotPathPacketAlloc measures the pure packet buffer lifecycle of
// one maximum-sized Ethernet data segment: allocate with layered headroom,
// fill, prepend transport/IP/link headers, checksum, release.
func BenchmarkHotPathPacketAlloc(b *testing.B) {
	payload := make([]byte, 1460)
	for i := range payload {
		payload[i] = byte(i)
	}
	headroom := link.EthHeaderLen + ipv4.HeaderLen + 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := pkt.FromBytes(headroom, payload)
		copy(buf.Prepend(20), payload[:20]) // transport header
		h := ipv4.Header{TTL: 64, Proto: ipv4.ProtoTCP,
			Src: ipv4.Addr{10, 0, 0, 1}, Dst: ipv4.Addr{10, 0, 0, 2}}
		h.Encode(buf)
		copy(buf.Prepend(link.EthHeaderLen), payload[:link.EthHeaderLen])
		if !checksum.Verify(buf.Bytes()[link.EthHeaderLen : link.EthHeaderLen+ipv4.HeaderLen]) {
			b.Fatal("bad IP header checksum")
		}
		buf.Release()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "packets/sec")
}

// benchStation is a wire endpoint that consumes and releases every frame.
type benchStation struct {
	addr link.Addr
	rx   int
}

func (st *benchStation) Addr() link.Addr { return st.addr }
func (st *benchStation) Deliver(f *pkt.Buf) {
	st.rx++
	f.Release()
}

// BenchmarkHotPathWire measures the end-to-end simulated packet path: frames
// allocated, serialized onto a shared Ethernet segment, propagated through
// the event engine, delivered, and released.
func BenchmarkHotPathWire(b *testing.B) {
	const batch = 256
	s := sim.New()
	g := wire.New(s, wire.EthernetConfig())
	src := &benchStation{addr: link.MakeAddr(1)}
	dst := &benchStation{addr: link.MakeAddr(2)}
	g.Attach(src)
	g.Attach(dst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < batch; k++ {
			g.Transmit(src.addr, dst.addr, pkt.New(0, 1500))
		}
		s.Run(0)
	}
	b.StopTimer()
	if dst.rx != b.N*batch {
		b.Fatalf("delivered %d frames, want %d", dst.rx, b.N*batch)
	}
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "packets/sec")
}

// ---------------------------------------------------------------------------
// Checksum
// ---------------------------------------------------------------------------

// BenchmarkHotPathChecksum measures the Internet checksum inner loop over a
// maximum-sized TCP payload.
func BenchmarkHotPathChecksum(b *testing.B) {
	buf := make([]byte, 1460)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	var acc uint16
	for i := 0; i < b.N; i++ {
		acc += checksum.Checksum(buf)
	}
	b.StopTimer()
	_ = acc
}

// BenchmarkHotPathChecksumShort measures the header-sized case (20 bytes),
// where setup overhead dominates.
func BenchmarkHotPathChecksumShort(b *testing.B) {
	buf := make([]byte, 20)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	var acc uint16
	for i := 0; i < b.N; i++ {
		acc += checksum.Checksum(buf)
	}
	b.StopTimer()
	_ = acc
}

// ---------------------------------------------------------------------------
// Demultiplexing
// ---------------------------------------------------------------------------

// demuxSpec is the standard connected-TCP-endpoint predicate.
var demuxSpec = filter.Spec{
	LinkHdrLen: 14, Proto: ipv4.ProtoTCP,
	LocalIP: [4]byte{10, 0, 0, 2}, LocalPort: 80,
	RemoteIP: [4]byte{10, 0, 0, 1}, RemotePort: 1025,
}

// demuxFrame builds a frame matching demuxSpec (IHL=5).
func demuxFrame() []byte {
	s := demuxSpec
	f := make([]byte, s.LinkHdrLen+20+8)
	f[s.LinkHdrLen-2] = 0x08
	ip := f[s.LinkHdrLen:]
	ip[0] = 0x45
	ip[9] = s.Proto
	copy(ip[12:16], s.RemoteIP[:])
	copy(ip[16:20], s.LocalIP[:])
	ip[20] = byte(s.RemotePort >> 8)
	ip[21] = byte(s.RemotePort)
	ip[22] = byte(s.LocalPort >> 8)
	ip[23] = byte(s.LocalPort)
	return f
}

// BenchmarkHotPathDemuxBPFInterp measures the interpreted BPF predicate.
func BenchmarkHotPathDemuxBPFInterp(b *testing.B) {
	prog := demuxSpec.CompileBPF()
	frame := demuxFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := prog.Run(frame); !ok {
			b.Fatal("predicate rejected matching frame")
		}
	}
}

// BenchmarkHotPathDemuxCSPFInterp measures the interpreted CSPF predicate.
func BenchmarkHotPathDemuxCSPFInterp(b *testing.B) {
	prog := demuxSpec.CompileCSPF()
	frame := demuxFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := prog.Run(frame); !ok {
			b.Fatal("predicate rejected matching frame")
		}
	}
}

// BenchmarkHotPathDemuxBPFCompiled measures the BPF predicate compiled to
// threaded native closures (same executed counts as the interpreter).
func BenchmarkHotPathDemuxBPFCompiled(b *testing.B) {
	prog := demuxSpec.CompileBPF().Compile()
	frame := demuxFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := prog.Run(frame); !ok {
			b.Fatal("predicate rejected matching frame")
		}
	}
}

// BenchmarkHotPathDemuxCSPFCompiled measures the CSPF predicate compiled to
// threaded native closures.
func BenchmarkHotPathDemuxCSPFCompiled(b *testing.B) {
	prog := demuxSpec.CompileCSPF().Compile()
	frame := demuxFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := prog.Run(frame); !ok {
			b.Fatal("predicate rejected matching frame")
		}
	}
}

// BenchmarkHotPathDemuxNative measures the synthesized native predicate
// method (uncompiled form).
func BenchmarkHotPathDemuxNative(b *testing.B) {
	frame := demuxFrame()
	match := demuxSpec.Match
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !match(frame) {
			b.Fatal("predicate rejected matching frame")
		}
	}
}

// BenchmarkHotPathDemuxNativeCompiled measures the hoisted-constant closure
// netio installs for its software demux bindings.
func BenchmarkHotPathDemuxNativeCompiled(b *testing.B) {
	frame := demuxFrame()
	match := demuxSpec.Compile()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !match(frame) {
			b.Fatal("predicate rejected matching frame")
		}
	}
}

// ---------------------------------------------------------------------------
// Connection churn (many-host fast path)
// ---------------------------------------------------------------------------

// BenchmarkChurn runs the connection-churn experiment end to end in both
// configurations and reports simulator throughput (events/wall-second). The
// fast sub-benchmark exercises the PR 7 path — switched fabric, steered
// demux, timing wheels — against the classic configuration scaled up as-is.
// ns/op here is the wall-clock cost of the whole experiment; events/sec is
// the honest cross-mode comparison (the virtual-time results are asserted
// separately in TestChurnSmoke).
func BenchmarkChurn(b *testing.B) {
	for _, mode := range []struct {
		name string
		fast bool
	}{{"legacy", false}, {"fast", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var events float64
			for i := 0; i < b.N; i++ {
				r := experiments.Churn(experiments.ChurnConfig{
					Conns: 400, Clients: 4, Workers: 8, FastPath: mode.fast,
				})
				if r.Err != nil {
					b.Fatal(r.Err)
				}
				events += r.EventsPerWSec
			}
			b.ReportMetric(events/float64(b.N), "events/sec")
		})
	}
}

// ---------------------------------------------------------------------------
// Zero-copy receive rings
// ---------------------------------------------------------------------------

// rxTransfer streams size bytes one-way into a reading server and returns
// the virtual time consumed plus the receive module's copied/referenced
// byte split — the benchmark's evidence that the zero-copy run really took
// the by-reference path. Ethernet, because that is where the contrast
// lives: the Lance has no hardware demux, so matched frames cross the
// software path that charges the per-byte copy (or, zero-copy, the fixed
// descriptor post); the AN1's rings already DMA into the region.
func rxTransfer(b *testing.B, zeroCopy bool, size int) (virt, rxBusy time.Duration, copied, referenced int64) {
	b.Helper()
	w := ulp.NewWorld(ulp.Config{Org: ulp.OrgUserLib, Net: ulp.Ethernet, ZeroCopyRx: zeroCopy})
	srv := w.Node(0).App("server")
	cli := w.Node(1).App("client")
	chunk := make([]byte, 2048)
	for i := range chunk {
		chunk[i] = byte(i * 31)
	}
	got, done := 0, false
	srv.Go("srv", func(th *kern.Thread) {
		l, _ := srv.Stack.Listen(th, 80, stacks.Options{})
		c, err := l.Accept(th)
		if err != nil {
			b.Error(err)
			return
		}
		buf := make([]byte, 8192)
		for got < size {
			n, err := c.Read(th, buf)
			if err != nil || n == 0 {
				break
			}
			got += n
		}
		done = true
	})
	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.Endpoint(0, 80), stacks.Options{})
		if err != nil {
			b.Error(err)
			return
		}
		for sent := 0; sent < size; sent += len(chunk) {
			if _, err := c.Write(th, chunk); err != nil {
				return
			}
		}
		c.Close(th)
	})
	w.RunUntil(time.Minute, func() bool { return done })
	if !done {
		b.Fatal("rx transfer did not complete")
	}
	mod := w.Node(0).Mod
	rxBusy = time.Duration(w.Node(0).Host.CPU.Busy())
	return w.Now(), rxBusy, mod.CopiedBytes, mod.ReferencedBytes
}

// BenchmarkZeroCopyRx measures the by-reference receive path against the
// copying baseline: the same one-way 256 KB stream over the Ethernet, same cost
// model, only Config.ZeroCopyRx differing. The flow is window-bound, so
// the modeled win — a fixed descriptor post replacing the per-byte
// kernel→region copy on every received frame — lands in the receive
// host's CPU busy time (rx-cpu-ms) more than in virtual-Mb/s; ns/op
// tracks what each mode costs the simulator itself in wall-clock terms.
func BenchmarkZeroCopyRx(b *testing.B) {
	const size = 256 << 10
	run := func(b *testing.B, zeroCopy bool) {
		b.ReportAllocs()
		var virt, rxBusy time.Duration
		var copied, referenced int64
		for i := 0; i < b.N; i++ {
			virt, rxBusy, copied, referenced = rxTransfer(b, zeroCopy, size)
		}
		b.ReportMetric(float64(size)*8/virt.Seconds()/1e6, "virtual-Mb/s")
		b.ReportMetric(float64(rxBusy.Microseconds())/1000, "rx-cpu-ms")
		b.ReportMetric(float64(copied), "copied-bytes")
		b.ReportMetric(float64(referenced), "referenced-bytes")
	}
	b.Run("copy", func(b *testing.B) { run(b, false) })
	b.Run("zerocopy", func(b *testing.B) { run(b, true) })
}
