// Package stats is a small counter/gauge registry with per-layer
// namespaces ("wire", "netio.h0", "tcp", "pkt", ...). It exists so
// ulbench and the examples can print Table-style per-layer breakdowns —
// checksum bytes, copies, demux decisions, notifications batched —
// without every layer growing its own ad-hoc dump.
//
// Hot paths stay lock-free: a Counter or Gauge is a single atomic word,
// and a nil *Counter/*Gauge is a no-op, so producers can hold
// unconditioned fields that cost one predictable branch when stats are
// off. Layers that already keep plain ints (guarded by their own
// serialization) instead register a provider function that is polled only
// at Snapshot time, leaving their hot paths untouched.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods are
// nil-receiver safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value. All methods are nil-receiver
// safe.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// SetMax raises the gauge to v if v is larger (high-water marks).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (zero on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry maps "namespace.name" keys to counters, gauges, and polled
// providers. Registration takes a mutex; reads and updates of registered
// counters do not.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	providers []provider
}

type provider struct {
	ns string
	fn func(emit func(name string, v int64))
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the counter registered under ns.name, creating it on
// first use. Returns nil on a nil registry (and nil counters are no-ops),
// so callers can wire stats unconditionally.
func (r *Registry) Counter(ns, name string) *Counter {
	if r == nil {
		return nil
	}
	key := ns + "." + name
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[key]
	if c == nil {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns the gauge registered under ns.name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Gauge(ns, name string) *Gauge {
	if r == nil {
		return nil
	}
	key := ns + "." + name
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[key]
	if g == nil {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// RegisterFunc registers a provider polled at Snapshot time. The provider
// calls emit once per metric with the bare name (the registry prefixes the
// namespace). Providers let layers that already count under their own
// serialization export those values without touching their hot paths.
func (r *Registry) RegisterFunc(ns string, fn func(emit func(name string, v int64))) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.providers = append(r.providers, provider{ns: ns, fn: fn})
}

// Snapshot returns all metrics as a flat "ns.name" → value map, polling
// providers as of now.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for k, c := range r.counters {
		out[k] = c.Value()
	}
	for k, g := range r.gauges {
		out[k] = g.Value()
	}
	provs := make([]provider, len(r.providers))
	copy(provs, r.providers)
	r.mu.Unlock()
	for _, p := range provs {
		ns := p.ns
		p.fn(func(name string, v int64) {
			out[ns+"."+name] = v
		})
	}
	return out
}

// Render formats a snapshot as sorted "ns.name value" lines, one metric
// per line — deterministic, so reports diff cleanly.
func (r *Registry) Render() string {
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-40s %d\n", k, snap[k])
	}
	return b.String()
}
