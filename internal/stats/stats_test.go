package stats

import (
	"strings"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("ns", "x")
	if c != nil {
		t.Fatal("nil registry must hand out nil counters")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read zero")
	}
	g := r.Gauge("ns", "y")
	g.Set(3)
	g.SetMax(9)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read zero")
	}
	r.RegisterFunc("ns", func(emit func(string, int64)) { emit("z", 1) })
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestCountersGaugesProviders(t *testing.T) {
	r := New()
	c := r.Counter("tcp", "segs_sent")
	c.Inc()
	c.Add(4)
	if got := r.Counter("tcp", "segs_sent"); got != c {
		t.Fatal("Counter must return the same instance for the same key")
	}
	g := r.Gauge("netio", "high_water")
	g.SetMax(7)
	g.SetMax(3) // must not lower
	r.RegisterFunc("pkt", func(emit func(string, int64)) {
		emit("gets", 11)
		emit("puts", 10)
	})
	snap := r.Snapshot()
	want := map[string]int64{
		"tcp.segs_sent":    5,
		"netio.high_water": 7,
		"pkt.gets":         11,
		"pkt.puts":         10,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("snapshot[%q] = %d, want %d", k, snap[k], v)
		}
	}
}

func TestRenderSortedDeterministic(t *testing.T) {
	r := New()
	r.Counter("b", "two").Add(2)
	r.Counter("a", "one").Add(1)
	out := r.Render()
	if strings.Index(out, "a.one") > strings.Index(out, "b.two") {
		t.Fatalf("render not sorted:\n%s", out)
	}
	if out != r.Render() {
		t.Fatal("render must be deterministic")
	}
}

func TestCounterAddAllocFree(t *testing.T) {
	r := New()
	c := r.Counter("ns", "hot")
	if n := testing.AllocsPerRun(100, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v times per op", n)
	}
	var nilC *Counter
	if n := testing.AllocsPerRun(100, func() { nilC.Add(1) }); n != 0 {
		t.Fatalf("nil Counter.Add allocates %v times per op", n)
	}
}
