// Package trace is the structured event bus behind the observability layer.
// It generalizes what cmd/ultrace used to do with an ad-hoc frame callback:
// every layer of the stack — wire segment, network devices, the in-kernel
// network I/O module, TCP engines, the registry server, and the packet
// buffer pool — publishes typed events to a single bus, and consumers
// (pcap writers, test assertions, decoders) subscribe to the stream.
//
// Two invariants make the bus safe to leave wired in everywhere:
//
//  1. Disabled hooks are free. A nil *Bus, or a bus with no subscribers,
//     makes Emit a no-op that performs zero allocations. Producers guard
//     any string building with Enabled().
//  2. Tracing never perturbs the simulation. Emit stamps events with the
//     current virtual time via a read-only clock callback; it never
//     schedules simulator events, consumes event sequence numbers, or
//     draws from any RNG. Virtual-time behaviour is bit-identical with
//     tracing on or off.
package trace

import "time"

// Kind identifies the event type. The numeric A/B fields and the Text
// field are kind-specific; see the comments on each constant.
type Kind uint8

const (
	KindInvalid Kind = iota

	// Wire-level frame events. Frame holds the raw bytes (valid only for
	// the duration of the callback), A is the frame length in bytes.
	FrameTx      // frame queued for transmission on the segment
	FrameRx      // frame delivered to a station; Conn = destination address
	FrameDrop    // frame dropped; Text = reason (loss, addr-filter, ring-overflow, ...)
	FrameDup     // fault injection duplicated the frame
	FrameCorrupt // fault injection flipped a bit; A = corrupted byte offset
	FrameReorder // fault injection delayed the frame so later frames overtake it; B = extra delay ns

	// TCP engine events. Conn labels the connection.
	TCPState    // state transition; Text = "OLD->NEW", A/B = old/new state ordinals, C = trigger class
	TCPRexmit   // retransmission; Text = "timeout" or "fast", A = backoff shift, B = RTO ticks
	TCPRTO      // RTO updated from an RTT sample; A = sample ticks, B = new RTO ticks
	TCPPersist  // zero-window probe sent; A = persist shift, B = interval ticks
	TCPTimeWait // 2*MSL timer armed or re-armed; A = ticks until release

	// Network I/O module demultiplex and protection events.
	DemuxHit     // frame matched a channel binding; A = capability id
	DemuxMiss    // frame fell through to the kernel default path
	VerifyReject // send rejected; A = capability id (0 = unknown), Text = reason
	ChanDeliver  // buffer queued on a channel; A = capability id, B = queue depth after
	ChanDrop     // channel queue overflow; A = capability id
	ChanNotify   // notification semaphore posted; A = capability id, B = batch size
	CapRevoked   // capability destroyed/revoked; A = capability id

	// Registry server events. Text = operation, Conn = requesting domain.
	RegistryRPC

	// Packet pool events. A = requested size in bytes.
	PoolGet
	PoolPut
	PoolLeak // leak report found outstanding buffers; A = count

	// Crash-recovery events.
	ListenDrop      // SYN dropped by a full listen backlog; A = listener port, B = pending handshakes
	ChanQuarantine  // delivery suppressed: capability lease expired; A = capability id
	RegistryRestart // reborn registry rebuilt state from the module; A = epoch, B = endpoints re-adopted

	// Zero-copy receive events.
	ChanSweep // in-flight buffer references reclaimed; A = capability id, B = count, Text = reason
)

var kindNames = [...]string{
	KindInvalid:  "invalid",
	FrameTx:      "frame-tx",
	FrameRx:      "frame-rx",
	FrameDrop:    "frame-drop",
	FrameDup:     "frame-dup",
	FrameCorrupt: "frame-corrupt",
	FrameReorder: "frame-reorder",
	TCPState:     "tcp-state",
	TCPRexmit:    "tcp-rexmit",
	TCPRTO:       "tcp-rto",
	TCPPersist:   "tcp-persist",
	TCPTimeWait:  "tcp-timewait",
	DemuxHit:     "demux-hit",
	DemuxMiss:    "demux-miss",
	VerifyReject: "verify-reject",
	ChanDeliver:  "chan-deliver",
	ChanDrop:     "chan-drop",
	ChanNotify:   "chan-notify",
	CapRevoked:   "cap-revoked",
	RegistryRPC:  "registry-rpc",
	PoolGet:      "pool-get",
	PoolPut:      "pool-put",
	PoolLeak:     "pool-leak",

	ListenDrop:      "listen-drop",
	ChanQuarantine:  "chan-quarantine",
	RegistryRestart: "registry-restart",

	ChanSweep: "chan-sweep",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one observation. It is passed by value to subscribers; the
// Frame slice, when set, aliases producer-owned storage and must not be
// retained past the callback (copy it if needed).
type Event struct {
	At   time.Duration // virtual time the event was emitted
	Kind Kind
	Node    string // producing host, device, or segment ("" when not applicable)
	Conn    string // connection / channel / domain label ("" when not applicable)
	A, B, C int64  // kind-specific numeric payload
	Text    string // kind-specific detail (state names, drop reason, RPC op)

	// Frame holds raw frame bytes for Frame* events. Read-only,
	// callback-lifetime only.
	Frame []byte
}

// Bus fans events out to subscribers. All methods are nil-receiver safe,
// so producers can hold an unconditioned *Bus field.
type Bus struct {
	now  func() time.Duration
	subs []func(Event)
}

// NewBus creates a bus that stamps events using the given virtual clock.
// The clock must be a pure read (e.g. the simulator's Now); the bus never
// advances it.
func NewBus(now func() time.Duration) *Bus {
	return &Bus{now: now}
}

// Subscribe registers a callback invoked synchronously for every event.
// Subscribers run in registration order on the emitting goroutine; since
// the simulator serializes all procs, no additional locking is needed.
func (b *Bus) Subscribe(fn func(Event)) {
	b.subs = append(b.subs, fn)
}

// Enabled reports whether any subscriber is attached. Producers use it to
// skip event construction (and any string building) entirely when nobody
// is listening.
func (b *Bus) Enabled() bool {
	return b != nil && len(b.subs) > 0
}

// Emit stamps the event with the current virtual time and delivers it to
// every subscriber. No-op (and allocation-free) on a nil or subscriber-less
// bus.
func (b *Bus) Emit(e Event) {
	if b == nil || len(b.subs) == 0 {
		return
	}
	if b.now != nil {
		e.At = b.now()
	}
	for _, fn := range b.subs {
		fn(e)
	}
}
