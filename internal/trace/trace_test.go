package trace

import (
	"bytes"
	"testing"
	"time"
)

func TestNilBusSafe(t *testing.T) {
	var b *Bus
	if b.Enabled() {
		t.Fatal("nil bus must not report enabled")
	}
	b.Emit(Event{Kind: FrameTx}) // must not panic
}

func TestDisabledEmitAllocFree(t *testing.T) {
	b := NewBus(func() time.Duration { return 0 })
	if b.Enabled() {
		t.Fatal("bus with no subscribers must not report enabled")
	}
	e := Event{Kind: FrameTx, A: 64}
	if n := testing.AllocsPerRun(100, func() { b.Emit(e) }); n != 0 {
		t.Fatalf("disabled Emit allocates %v times per op", n)
	}
	var nilBus *Bus
	if n := testing.AllocsPerRun(100, func() { nilBus.Emit(e) }); n != 0 {
		t.Fatalf("nil-bus Emit allocates %v times per op", n)
	}
}

func TestEmitStampsAndFansOut(t *testing.T) {
	now := 5 * time.Millisecond
	b := NewBus(func() time.Duration { return now })
	var got []Event
	b.Subscribe(func(e Event) { got = append(got, e) })
	b.Subscribe(func(e Event) { got = append(got, e) })
	if !b.Enabled() {
		t.Fatal("subscribed bus must report enabled")
	}
	b.Emit(Event{Kind: DemuxHit, A: 3})
	now = 7 * time.Millisecond
	b.Emit(Event{Kind: DemuxMiss})
	if len(got) != 4 {
		t.Fatalf("want 4 deliveries (2 events × 2 subs), got %d", len(got))
	}
	if got[0].At != 5*time.Millisecond || got[0].Kind != DemuxHit || got[0].A != 3 {
		t.Fatalf("first event wrong: %+v", got[0])
	}
	if got[2].At != 7*time.Millisecond || got[2].Kind != DemuxMiss {
		t.Fatalf("third event wrong: %+v", got[2])
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindInvalid; k <= PoolLeak; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind must stringify as unknown")
	}
}

func TestPcapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	pw, err := NewPcapWriter(&buf, LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	pkts := []Packet{
		{At: 1500 * time.Nanosecond, Data: []byte{0xde, 0xad, 0xbe, 0xef}},
		{At: 2*time.Second + 42*time.Nanosecond, Data: bytes.Repeat([]byte{0x55}, 60)},
	}
	for _, p := range pkts {
		if err := pw.WritePacket(p.At, p.Data); err != nil {
			t.Fatal(err)
		}
	}
	lt, got, err := ReadPcap(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if lt != LinkTypeEthernet {
		t.Fatalf("link type = %d, want %d", lt, LinkTypeEthernet)
	}
	if len(got) != len(pkts) {
		t.Fatalf("read %d packets, want %d", len(got), len(pkts))
	}
	for i := range pkts {
		if got[i].At != pkts[i].At {
			t.Errorf("packet %d: timestamp %v, want %v (nanosecond resolution lost?)", i, got[i].At, pkts[i].At)
		}
		if !bytes.Equal(got[i].Data, pkts[i].Data) {
			t.Errorf("packet %d: data mismatch", i)
		}
	}
}

func TestPcapReadRejectsGarbage(t *testing.T) {
	if _, _, err := ReadPcap(bytes.NewReader([]byte("not a pcap file, not even close"))); err == nil {
		t.Fatal("want error on bad magic")
	}
}
