package trace

// Classic pcap (libpcap) file support, so ultrace -pcap captures open in
// tcpdump and wireshark. We write the nanosecond-resolution variant
// (magic 0xa1b23c4d) because the simulator's virtual clock is in
// nanoseconds and truncating to microseconds would merge distinct events.
//
// The reader half exists for tests (and is tolerant of both endiannesses
// and both the microsecond and nanosecond magics), so the round-trip
// property is checked in-repo without external tooling.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Link types as registered with tcpdump.org.
const (
	LinkTypeEthernet uint32 = 1   // DLT_EN10MB: standard 14-byte DIX header
	LinkTypeUser0    uint32 = 147 // DLT_USER0: the AN1 18-byte header
)

const (
	magicMicros = 0xa1b2c3d4
	magicNanos  = 0xa1b23c4d
	pcapSnaplen = 65535
)

// PcapWriter streams packets into a classic pcap file.
type PcapWriter struct {
	w   io.Writer
	buf [24]byte
}

// NewPcapWriter writes the file header and returns a writer for the given
// link type.
func NewPcapWriter(w io.Writer, linkType uint32) (*PcapWriter, error) {
	pw := &PcapWriter{w: w}
	h := pw.buf[:24]
	binary.LittleEndian.PutUint32(h[0:], magicNanos)
	binary.LittleEndian.PutUint16(h[4:], 2) // version major
	binary.LittleEndian.PutUint16(h[6:], 4) // version minor
	binary.LittleEndian.PutUint32(h[8:], 0) // thiszone
	binary.LittleEndian.PutUint32(h[12:], 0)
	binary.LittleEndian.PutUint32(h[16:], pcapSnaplen)
	binary.LittleEndian.PutUint32(h[20:], linkType)
	if _, err := w.Write(h); err != nil {
		return nil, err
	}
	return pw, nil
}

// WritePacket appends one captured packet stamped with the given virtual
// time (interpreted as an offset from the Unix epoch, which is what a
// deterministic simulation's t=0 maps to).
func (pw *PcapWriter) WritePacket(at time.Duration, data []byte) error {
	if len(data) > pcapSnaplen {
		data = data[:pcapSnaplen]
	}
	h := pw.buf[:16]
	binary.LittleEndian.PutUint32(h[0:], uint32(at/time.Second))
	binary.LittleEndian.PutUint32(h[4:], uint32(at%time.Second)) // nanoseconds
	binary.LittleEndian.PutUint32(h[8:], uint32(len(data)))
	binary.LittleEndian.PutUint32(h[12:], uint32(len(data)))
	if _, err := pw.w.Write(h); err != nil {
		return err
	}
	_, err := pw.w.Write(data)
	return err
}

// Packet is one record read back from a capture.
type Packet struct {
	At   time.Duration
	Data []byte
}

// ReadPcap parses a classic pcap stream, returning its link type and
// packets. Both byte orders and both timestamp resolutions are accepted.
func ReadPcap(r io.Reader) (linkType uint32, packets []Packet, err error) {
	var hdr [24]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("pcap: short file header: %w", err)
	}
	var order binary.ByteOrder = binary.LittleEndian
	nanos := false
	switch binary.LittleEndian.Uint32(hdr[0:]) {
	case magicNanos:
		nanos = true
	case magicMicros:
	default:
		order = binary.BigEndian
		switch binary.BigEndian.Uint32(hdr[0:]) {
		case magicNanos:
			nanos = true
		case magicMicros:
		default:
			return 0, nil, errors.New("pcap: bad magic")
		}
	}
	linkType = order.Uint32(hdr[20:])
	var rec [16]byte
	for {
		if _, err = io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return linkType, packets, nil
			}
			return linkType, packets, fmt.Errorf("pcap: short record header: %w", err)
		}
		sec := order.Uint32(rec[0:])
		frac := order.Uint32(rec[4:])
		capLen := order.Uint32(rec[8:])
		if capLen > pcapSnaplen {
			return linkType, packets, fmt.Errorf("pcap: record length %d exceeds snaplen", capLen)
		}
		data := make([]byte, capLen)
		if _, err = io.ReadFull(r, data); err != nil {
			return linkType, packets, fmt.Errorf("pcap: short record body: %w", err)
		}
		at := time.Duration(sec) * time.Second
		if nanos {
			at += time.Duration(frac)
		} else {
			at += time.Duration(frac) * time.Microsecond
		}
		packets = append(packets, Packet{At: at, Data: data})
	}
}
