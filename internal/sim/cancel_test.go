package sim

import (
	"testing"
	"time"
)

// TestCancelRemovesEagerly verifies the satellite bugfix: a cancelled timer
// leaves the heap immediately instead of lingering as a dead event until its
// deadline pops it.
func TestCancelRemovesEagerly(t *testing.T) {
	s := New()
	tm := s.After(time.Hour, func() { t.Fatal("cancelled event fired") })
	if s.PendingEvents() != 1 {
		t.Fatalf("pending = %d, want 1", s.PendingEvents())
	}
	if !tm.Cancel() {
		t.Fatal("Cancel reported not pending")
	}
	if s.PendingEvents() != 0 {
		t.Fatalf("pending after cancel = %d, want 0 (dead event leaked)", s.PendingEvents())
	}
	if tm.Cancel() {
		t.Fatal("second Cancel reported pending")
	}
	if tm.Pending() {
		t.Fatal("cancelled timer still Pending")
	}
}

// TestRearmCancelLoopBounded runs the TCP retransmit pattern — a long-lived
// connection arming and cancelling its retransmission timer on every
// segment — and asserts the heap stays bounded instead of accumulating one
// dead event per cancelled arm.
func TestRearmCancelLoopBounded(t *testing.T) {
	s := New()
	const rearms = 100_000
	var tm Timer
	for i := 0; i < rearms; i++ {
		tm.Cancel()
		tm = s.After(3*time.Second, func() {})
		if n := s.PendingEvents(); n > 2 {
			t.Fatalf("heap grew to %d events after %d re-arms; cancel is leaking", n, i)
		}
	}
	tm.Cancel()
	if n := s.PendingEvents(); n != 0 {
		t.Fatalf("heap holds %d events after final cancel, want 0", n)
	}
}

// TestCancelStaleTimer verifies a Timer kept across its event's recycling
// cannot cancel the unrelated event that reused the record.
func TestCancelStaleTimer(t *testing.T) {
	s := New()
	fired := 0
	tm := s.After(time.Millisecond, func() { fired++ })
	s.Run(0)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	// The record is now recycled by a fresh event.
	s.After(time.Millisecond, func() { fired++ })
	if tm.Cancel() {
		t.Fatal("stale Timer cancelled a recycled record")
	}
	if tm.Pending() {
		t.Fatal("stale Timer reports Pending")
	}
	s.Run(0)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (stale cancel killed the new event)", fired)
	}
}

// TestCancelMiddleOfHeap removes events from arbitrary heap positions and
// checks the survivors still fire in deadline order.
func TestCancelMiddleOfHeap(t *testing.T) {
	s := New()
	var fired []int
	var timers []Timer
	for i := 0; i < 64; i++ {
		i := i
		d := time.Duration((i*37)%64+1) * time.Millisecond
		timers = append(timers, s.After(d, func() { fired = append(fired, i) }))
	}
	// Cancel every third event.
	cancelled := map[int]bool{}
	for i := 0; i < 64; i += 3 {
		if !timers[i].Cancel() {
			t.Fatalf("timer %d not pending", i)
		}
		cancelled[i] = true
	}
	s.Run(0)
	if len(fired) != 64-len(cancelled) {
		t.Fatalf("fired %d events, want %d", len(fired), 64-len(cancelled))
	}
	last := Time(-1)
	seen := map[int]bool{}
	for _, i := range fired {
		if cancelled[i] {
			t.Fatalf("cancelled event %d fired", i)
		}
		if seen[i] {
			t.Fatalf("event %d fired twice", i)
		}
		seen[i] = true
		at := Time(time.Duration((i*37)%64+1) * time.Millisecond)
		if at < last {
			t.Fatalf("events fired out of deadline order")
		}
		last = at
	}
}

// TestAfterArgNoClosure checks the argument-carrying scheduling form invokes
// the callback with its argument.
func TestAfterArgNoClosure(t *testing.T) {
	s := New()
	got := 0
	fn := func(a any) { got = a.(int) }
	s.AfterArg(time.Millisecond, fn, 42)
	s.Run(0)
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}
