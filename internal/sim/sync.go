package sim

// Semaphore is a counting semaphore for procs. V may be called from any
// context (event callbacks or procs); P only from within a proc. Wakeups are
// FIFO and are delivered via scheduled events, preserving the engine's
// one-runnable-at-a-time invariant.
type Semaphore struct {
	s       *Sim
	name    string
	count   int
	waiters []*Proc
	signals int // statistics: total V operations
}

// NewSemaphore creates a semaphore with an initial count.
func (s *Sim) NewSemaphore(name string, initial int) *Semaphore {
	return &Semaphore{s: s, name: name, count: initial}
}

// P decrements the semaphore, blocking the proc while the count is zero.
func (m *Semaphore) P(p *Proc) {
	p.ensureCurrent()
	if m.count > 0 {
		m.count--
		return
	}
	m.waiters = append(m.waiters, p)
	p.park()
}

// TryP decrements without blocking; reports whether it succeeded.
func (m *Semaphore) TryP() bool {
	if m.count > 0 {
		m.count--
		return true
	}
	return false
}

// V increments the semaphore, waking the longest-waiting live proc if any.
// Waiters that died (were killed) while blocked are skipped so their lost
// wakeups do not starve the remaining waiters.
func (m *Semaphore) V() {
	m.signals++
	for len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		if w.done || w.killed {
			continue
		}
		m.s.scheduleResume(0, w)
		return
	}
	m.count++
}

// Count returns the current count (pending wakeups excluded).
func (m *Semaphore) Count() int { return m.count }

// Signals returns the total number of V operations, used by the experiments
// to measure notification batching effectiveness.
func (m *Semaphore) Signals() int { return m.signals }

// Waiters returns the number of procs blocked in P.
func (m *Semaphore) Waiters() int { return len(m.waiters) }

// Cond is a simple condition variable: procs Wait, any context may Signal
// (wake one) or Broadcast (wake all). There is no associated lock — the
// engine's sequential execution makes one unnecessary.
type Cond struct {
	s       *Sim
	waiters []*Proc
}

// NewCond creates a condition variable.
func (s *Sim) NewCond() *Cond { return &Cond{s: s} }

// Wait parks the proc until Signal or Broadcast wakes it. As with any
// condition variable, callers must re-check their predicate on wakeup.
func (c *Cond) Wait(p *Proc) {
	p.ensureCurrent()
	c.waiters = append(c.waiters, p)
	p.park()
}

// Signal wakes the longest-waiting live proc, if any. Dead (killed) waiters
// are skipped.
func (c *Cond) Signal() {
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		if w.done || w.killed {
			continue
		}
		c.s.scheduleResume(0, w)
		return
	}
}

// Broadcast wakes every waiting proc.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		c.s.scheduleResume(0, w)
	}
}

// Waiters returns the number of procs blocked in Wait.
func (c *Cond) Waiters() int { return len(c.waiters) }

// remove deletes p from the waiter list, reporting whether it was present.
func (c *Cond) remove(p *Proc) bool {
	for i, w := range c.waiters {
		if w == p {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// WaitUntil parks the proc until Signal/Broadcast wakes it or absolute time
// deadline passes, whichever is first. It reports true if the proc was
// signalled, false on timeout. As with Wait, callers must re-check their
// predicate on a true return.
func (c *Cond) WaitUntil(p *Proc, deadline Time) bool {
	p.ensureCurrent()
	if deadline <= c.s.now {
		return false
	}
	c.waiters = append(c.waiters, p)
	timedOut := false
	timer := c.s.At(deadline, func() {
		// Only fire if no Signal claimed the proc first: Signal removes
		// the waiter synchronously, so membership decides the winner.
		if c.remove(p) {
			timedOut = true
			c.s.resume(p)
		}
	})
	p.park()
	if !timedOut {
		timer.Cancel()
	}
	return !timedOut
}

// Queue is an unbounded FIFO mailbox. Push may be called from any context;
// Pop blocks the calling proc while the queue is empty.
type Queue[T any] struct {
	s     *Sim
	items []T
	cond  *Cond
}

// NewQueue creates an empty queue.
func NewQueue[T any](s *Sim) *Queue[T] {
	return &Queue[T]{s: s, cond: s.NewCond()}
}

// Push appends v and wakes one blocked Pop, if any.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	q.cond.Signal()
}

// Pop removes and returns the head, blocking while the queue is empty.
func (q *Queue[T]) Pop(p *Proc) T {
	for len(q.items) == 0 {
		q.cond.Wait(p)
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// PopTimeout removes and returns the head, blocking at most d of virtual
// time. It reports false if the deadline passed with the queue still empty.
func (q *Queue[T]) PopTimeout(p *Proc, d Dur) (T, bool) {
	deadline := q.s.now.Add(d)
	for len(q.items) == 0 {
		if !q.cond.WaitUntil(p, deadline) {
			var zero T
			return zero, false
		}
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// TryPop removes and returns the head without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }
