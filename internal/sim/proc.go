package sim

import "fmt"

// Proc is a simulated thread of control: a goroutine that the engine runs
// one-at-a-time. Code inside a proc may block using the proc's primitives
// (Sleep, Semaphore.P, Queue.Pop, ...); blocking hands control back to the
// engine, which advances virtual time and resumes whichever proc or event
// is next.
type Proc struct {
	s    *Sim
	name string
	wake chan struct{}
	done bool
}

// Name returns the debug name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation the proc belongs to.
func (p *Proc) Sim() *Sim { return p.s }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.s.now }

// Spawn starts fn as a new proc at the current virtual time. fn begins
// executing when the engine reaches the spawn event; Spawn itself returns
// immediately.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.SpawnAfter(0, name, fn)
}

// SpawnAfter starts fn as a new proc d from now.
func (s *Sim) SpawnAfter(d Dur, name string, fn func(p *Proc)) *Proc {
	p := &Proc{s: s, name: name, wake: make(chan struct{})}
	s.nprocs++
	go func() {
		<-p.wake // wait for first resume
		fn(p)
		p.done = true
		s.nprocs--
		s.parked <- struct{}{} // final park: return control to engine
	}()
	s.After(d, func() { s.resume(p) })
	return p
}

// resume transfers control from the engine (or the currently running event
// callback) to p, and blocks until p parks again. It must only be called
// from engine context (an event callback), never from inside another proc.
func (s *Sim) resume(p *Proc) {
	if p.done {
		return
	}
	prev := s.current
	s.current = p
	p.wake <- struct{}{}
	<-s.parked
	s.current = prev
}

// park returns control to the engine and blocks the proc until it is next
// resumed.
func (p *Proc) park() {
	p.s.parked <- struct{}{}
	<-p.wake
}

// ensureCurrent panics if called from outside the running proc; the blocking
// primitives require proc context.
func (p *Proc) ensureCurrent() {
	if p.s.current != p {
		panic(fmt.Sprintf("sim: blocking call on proc %q from outside its own context", p.name))
	}
}

// Sleep blocks the proc for d of virtual time.
func (p *Proc) Sleep(d Dur) {
	p.ensureCurrent()
	if d < 0 {
		d = 0
	}
	p.s.After(d, func() { p.s.resume(p) })
	p.park()
}

// SleepUntil blocks the proc until absolute time at (no-op if at <= now).
func (p *Proc) SleepUntil(at Time) {
	if at <= p.s.now {
		return
	}
	p.Sleep(at.Sub(p.s.now))
}

// Yield reschedules the proc at the current time behind already-pending
// events, letting same-time work interleave.
func (p *Proc) Yield() { p.Sleep(0) }
