package sim

import (
	"fmt"
	"runtime"
)

// Proc is a simulated thread of control: a goroutine that the engine runs
// one-at-a-time. Code inside a proc may block using the proc's primitives
// (Sleep, Semaphore.P, Queue.Pop, ...); blocking hands control back to the
// engine, which advances virtual time and resumes whichever proc or event
// is next.
type Proc struct {
	s      *Sim
	name   string
	wake   chan struct{}
	done   bool
	killed bool
}

// Name returns the debug name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation the proc belongs to.
func (p *Proc) Sim() *Sim { return p.s }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.s.now }

// Spawn starts fn as a new proc at the current virtual time. fn begins
// executing when the engine reaches the spawn event; Spawn itself returns
// immediately.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.SpawnAfter(0, name, fn)
}

// SpawnAfter starts fn as a new proc d from now.
func (s *Sim) SpawnAfter(d Dur, name string, fn func(p *Proc)) *Proc {
	p := &Proc{s: s, name: name, wake: make(chan struct{})}
	s.nprocs++
	go func() {
		// The final park runs from a defer so it executes even when the
		// proc is torn down abruptly (Kill unwinds via runtime.Goexit).
		defer func() {
			p.done = true
			s.nprocs--
			s.parked <- struct{}{} // return control to engine
		}()
		<-p.wake // wait for first resume
		if p.killed {
			return // killed before ever running
		}
		fn(p)
	}()
	s.scheduleResume(d, p)
	return p
}

// Kill tears a proc down abruptly: its goroutine unwinds at its current (or
// next) blocking point without executing any further user code — no exit
// path, no cleanup. This models a crashing process: whatever the proc had
// claimed (semaphores held, queue entries, shared state) stays exactly as it
// was at the kill point. Killing an already-dead proc is a no-op.
//
// Kill may be called from any simulation context. A proc that kills itself
// (directly or by killing its own domain) keeps running until its next
// blocking point, then dies there.
func (s *Sim) Kill(p *Proc) {
	if p.done || p.killed {
		return
	}
	p.killed = true
	if s.current == p {
		return // self-kill: dies at the next park
	}
	// Wake the parked proc so it can unwind now; any other pending resume
	// events for it become no-ops once done is set.
	s.scheduleResume(0, p)
}

// Killed reports whether the proc was torn down by Kill.
func (p *Proc) Killed() bool { return p.killed }

// Done reports whether the proc has finished (returned or been killed).
func (p *Proc) Done() bool { return p.done }

// resume transfers control from the engine (or the currently running event
// callback) to p, and blocks until p parks again. It must only be called
// from engine context (an event callback), never from inside another proc.
func (s *Sim) resume(p *Proc) {
	if p.done {
		return
	}
	prev := s.current
	s.current = p
	p.wake <- struct{}{}
	<-s.parked
	s.current = prev
}

// park returns control to the engine and blocks the proc until it is next
// resumed. A proc killed while parked unwinds here instead of returning to
// its user code (the spawn defer performs the final park bookkeeping).
func (p *Proc) park() {
	if p.killed {
		runtime.Goexit() // self-kill: die at the blocking point
	}
	p.s.parked <- struct{}{}
	<-p.wake
	if p.killed {
		runtime.Goexit()
	}
}

// ensureCurrent panics if called from outside the running proc; the blocking
// primitives require proc context.
func (p *Proc) ensureCurrent() {
	if p.s.current != p {
		panic(fmt.Sprintf("sim: blocking call on proc %q from outside its own context", p.name))
	}
}

// Sleep blocks the proc for d of virtual time.
func (p *Proc) Sleep(d Dur) {
	p.ensureCurrent()
	p.s.scheduleResume(d, p)
	p.park()
}

// SleepUntil blocks the proc until absolute time at (no-op if at <= now).
func (p *Proc) SleepUntil(at Time) {
	if at <= p.s.now {
		return
	}
	p.Sleep(at.Sub(p.s.now))
}

// Yield reschedules the proc at the current time behind already-pending
// events, letting same-time work interleave.
func (p *Proc) Yield() { p.Sleep(0) }
