package sim

// Resource models a serially reusable processor (a host CPU) as a busy-until
// horizon. Work is reserved in FIFO order: a request that arrives while the
// resource is busy is served when the horizon is reached, so queueing delay
// emerges naturally under load. Preemption is not modelled; interrupt-level
// work reserves ahead of not-yet-issued thread work simply by being issued
// first, which is the dominant effect on a uniprocessor.
type Resource struct {
	s      *Sim
	name   string
	freeAt Time
	busy   Dur // statistics: total reserved time
}

// NewResource creates an idle resource.
func (s *Sim) NewResource(name string) *Resource {
	return &Resource{s: s, name: name}
}

// Use charges d of compute to the resource on behalf of proc p, blocking p
// for any queueing delay plus d. A zero or negative d is a no-op.
func (r *Resource) Use(p *Proc, d Dur) {
	if d <= 0 {
		return
	}
	start := r.s.now
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start.Add(d)
	r.busy += d
	p.SleepUntil(r.freeAt)
}

// UseAsync reserves d of compute from event context (e.g. an interrupt
// handler) and schedules fn at the completion time. fn may be nil.
func (r *Resource) UseAsync(d Dur, fn func()) {
	if d < 0 {
		d = 0
	}
	start := r.s.now
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start.Add(d)
	r.busy += d
	if fn != nil {
		r.s.At(r.freeAt, fn)
	}
}

// UseAsyncArg is UseAsync with an argument-carrying callback: fn is
// typically a static function and arg a pooled object, so reserving compute
// on the packet hot path allocates nothing.
func (r *Resource) UseAsyncArg(d Dur, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	start := r.s.now
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start.Add(d)
	r.busy += d
	if fn != nil {
		r.s.AtArg(r.freeAt, fn, arg)
	}
}

// FreeAt returns the time at which all currently reserved work completes.
func (r *Resource) FreeAt() Time { return r.freeAt }

// Busy returns the cumulative reserved time, for utilization reporting.
func (r *Resource) Busy() Dur { return r.busy }
