// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock (nanosecond resolution) and an event heap
// ordered by (time, sequence). Simulated threads of control ("procs") are
// ordinary goroutines that the engine runs strictly one at a time: the engine
// resumes a proc and then blocks until the proc parks again (by sleeping,
// waiting on a semaphore, popping an empty queue, and so on). This yields
// fully sequential semantics — protocol and application code can be written
// in a natural blocking style with no data races and no wall-clock
// dependence — while the (time, seq) ordering makes every run reproducible.
//
// The engine is built for wall-clock speed as well as determinism: event
// records live on an internal free list (no allocation per scheduled event),
// the ready queue is a flat 4-ary array heap (no container/heap interface
// dispatch, better cache behaviour than a binary pointer heap), cancelled
// timers are removed eagerly rather than left to surface at their deadline,
// and the hot schedulings (proc resume, argument-carrying callbacks) avoid
// closure allocations entirely.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Dur is a span of virtual time. It aliases time.Duration so callers can use
// the familiar constants (time.Millisecond etc.) without importing anything
// extra.
type Dur = time.Duration

// String formats a Time using time.Duration notation (e.g. "1.5ms").
func (t Time) String() string { return time.Duration(t).String() }

// Add returns the time d after t.
func (t Time) Add(d Dur) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Dur { return Dur(t - u) }

// event is one pooled event record. Exactly one of fn, fnArg, or proc is
// set: fn is a plain callback, fnArg is called with arg (letting hot paths
// schedule static functions without a closure allocation), and proc resumes
// a parked proc. gen distinguishes a live record from a recycled one so
// stale Timers cannot cancel an unrelated event.
type event struct {
	at      Time
	seq     uint64
	fn      func()
	fnArg   func(any)
	arg     any
	proc    *Proc
	gen     uint32
	heapIdx int32 // index in Sim.heap; -1 when free or already fired
}

// heapEnt is one ready-queue entry. The ordering key is kept inline so sift
// comparisons never chase the record pointer.
type heapEnt struct {
	at  Time
	seq uint64
	rec int32
}

func entLess(a, b heapEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Sim is a discrete-event simulation instance. It is not safe for concurrent
// use from multiple OS threads; all interaction happens either before Run,
// from within event callbacks, or from within procs (which the engine
// serializes).
type Sim struct {
	now     Time
	seq     uint64
	heap    []heapEnt
	records []event
	free    []int32       // free-list of record slots (LIFO)
	parked  chan struct{} // proc -> engine: "I have parked"
	current *Proc
	nprocs  int // live procs (started, not yet finished)
	stopped bool

	// Counters (diagnostics only; never consulted by the engine).
	fired     int64
	cancelled int64
	maxHeap   int
}

// Counters reports cumulative engine activity: events fired, timers
// cancelled before firing, and the high-water mark of the event heap.
func (s *Sim) Counters() (fired, cancelled int64, maxHeap int) {
	return s.fired, s.cancelled, s.maxHeap
}

// New creates an empty simulation at time zero.
func New() *Sim {
	return &Sim{parked: make(chan struct{})}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// ---------------------------------------------------------------------------
// Event pool and 4-ary heap
// ---------------------------------------------------------------------------

// alloc takes a record from the free list (or grows the arena) and pushes it
// onto the heap, returning the slot index.
func (s *Sim) alloc(at Time) int32 {
	var rec int32
	if n := len(s.free); n > 0 {
		rec = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.records = append(s.records, event{})
		rec = int32(len(s.records) - 1)
	}
	e := &s.records[rec]
	e.at = at
	e.seq = s.seq
	s.seq++
	s.heapPush(heapEnt{at: e.at, seq: e.seq, rec: rec})
	return rec
}

// release clears a record's payload and returns the slot to the free list.
// The generation bump invalidates any Timer still holding the slot.
func (s *Sim) release(rec int32) {
	e := &s.records[rec]
	e.fn = nil
	e.fnArg = nil
	e.arg = nil
	e.proc = nil
	e.gen++
	e.heapIdx = -1
	s.free = append(s.free, rec)
}

func (s *Sim) heapPush(ent heapEnt) {
	s.heap = append(s.heap, ent)
	if len(s.heap) > s.maxHeap {
		s.maxHeap = len(s.heap)
	}
	s.siftUp(len(s.heap) - 1)
}

// heapRemove deletes the entry at heap index i, restoring heap order.
func (s *Sim) heapRemove(i int) {
	n := len(s.heap) - 1
	last := s.heap[n]
	s.heap = s.heap[:n]
	if i == n {
		return
	}
	s.heap[i] = last
	s.records[last.rec].heapIdx = int32(i)
	j := s.siftDown(i)
	s.siftUp(j)
}

func (s *Sim) siftUp(i int) {
	ent := s.heap[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !entLess(ent, s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		s.records[s.heap[i].rec].heapIdx = int32(i)
		i = p
	}
	s.heap[i] = ent
	s.records[ent.rec].heapIdx = int32(i)
}

// siftDown restores heap order below i, returning the entry's final index.
func (s *Sim) siftDown(i int) int {
	n := len(s.heap)
	ent := s.heap[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entLess(s.heap[j], s.heap[m]) {
				m = j
			}
		}
		if !entLess(s.heap[m], ent) {
			break
		}
		s.heap[i] = s.heap[m]
		s.records[s.heap[i].rec].heapIdx = int32(i)
		i = m
	}
	s.heap[i] = ent
	s.records[ent.rec].heapIdx = int32(i)
	return i
}

// ---------------------------------------------------------------------------
// Timers and scheduling
// ---------------------------------------------------------------------------

// Timer identifies a scheduled event so it can be cancelled. The zero Timer
// is inert.
type Timer struct {
	s   *Sim
	rec int32
	gen uint32
}

// Cancel prevents the timer's callback from running. The event is removed
// from the heap immediately (its record returns to the free list), so a
// cancel-heavy workload — a connection re-arming its retransmission timer on
// every segment — cannot accumulate dead events until their deadlines pass.
// Cancelling an already fired or already cancelled timer is a no-op. It
// reports whether the callback was still pending.
func (t Timer) Cancel() bool {
	if t.s == nil {
		return false
	}
	e := &t.s.records[t.rec]
	if e.gen != t.gen || e.heapIdx < 0 {
		return false
	}
	t.s.heapRemove(int(e.heapIdx))
	t.s.release(t.rec)
	t.s.cancelled++
	return true
}

// Pending reports whether the timer's callback has yet to run.
func (t Timer) Pending() bool {
	if t.s == nil {
		return false
	}
	e := &t.s.records[t.rec]
	return e.gen == t.gen && e.heapIdx >= 0
}

// checkPast panics on scheduling in the past: it would silently corrupt
// causality.
func (s *Sim) checkPast(at Time) {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
}

// At schedules fn to run at absolute virtual time at.
func (s *Sim) At(at Time, fn func()) Timer {
	s.checkPast(at)
	rec := s.alloc(at)
	e := &s.records[rec]
	e.fn = fn
	return Timer{s: s, rec: rec, gen: e.gen}
}

// AtArg schedules fn(arg) at absolute virtual time at. Because fn is
// typically a static function and arg a pooled object, this path performs no
// closure allocation — it is the form the packet hot path uses.
func (s *Sim) AtArg(at Time, fn func(any), arg any) Timer {
	s.checkPast(at)
	rec := s.alloc(at)
	e := &s.records[rec]
	e.fnArg = fn
	e.arg = arg
	return Timer{s: s, rec: rec, gen: e.gen}
}

// After schedules fn to run d from now.
func (s *Sim) After(d Dur, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// AfterArg schedules fn(arg) to run d from now, without allocating.
func (s *Sim) AfterArg(d Dur, fn func(any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	return s.AtArg(s.now.Add(d), fn, arg)
}

// scheduleResume schedules p to be resumed d from now. This is the proc
// handoff fast path: no closure, no allocation beyond the pooled record.
func (s *Sim) scheduleResume(d Dur, p *Proc) {
	if d < 0 {
		d = 0
	}
	rec := s.alloc(s.now.Add(d))
	s.records[rec].proc = p
}

// Stop terminates the run loop after the current event or proc step
// completes. Pending events are discarded.
func (s *Sim) Stop() { s.stopped = true }

// fire pops the root event and executes it.
func (s *Sim) fire() {
	s.fired++
	rec := s.heap[0].rec
	s.heapRemove(0)
	e := &s.records[rec]
	s.now = e.at
	fn, fnArg, arg, proc := e.fn, e.fnArg, e.arg, e.proc
	s.release(rec)
	switch {
	case proc != nil:
		s.resume(proc)
	case fnArg != nil:
		fnArg(arg)
	default:
		fn()
	}
}

// Run executes events until the heap is empty, the time limit is exceeded,
// or Stop is called. A limit of 0 means no limit. It returns the virtual
// time at which the run ended.
//
// Procs that are still blocked when Run returns remain parked; a subsequent
// Run continues the simulation.
func (s *Sim) Run(limit Dur) Time {
	end := Time(1<<62 - 1)
	if limit > 0 {
		end = s.now.Add(limit)
	}
	s.stopped = false
	for !s.stopped && len(s.heap) > 0 {
		if s.heap[0].at > end {
			s.now = end
			break
		}
		s.fire()
	}
	return s.now
}

// RunUntil executes events until pred() returns true (checked after every
// event), the heap drains, or the time limit passes.
func (s *Sim) RunUntil(limit Dur, pred func() bool) Time {
	end := Time(1<<62 - 1)
	if limit > 0 {
		end = s.now.Add(limit)
	}
	s.stopped = false
	for !s.stopped && !pred() && len(s.heap) > 0 {
		if s.heap[0].at > end {
			s.now = end
			break
		}
		s.fire()
	}
	return s.now
}

// Idle reports whether no events remain.
func (s *Sim) Idle() bool { return len(s.heap) == 0 }

// PendingEvents returns the number of scheduled (live) events, for tests
// asserting that cancellation keeps the heap bounded.
func (s *Sim) PendingEvents() int { return len(s.heap) }

// Procs returns the number of procs that have been started and have not yet
// returned.
func (s *Sim) Procs() int { return s.nprocs }
