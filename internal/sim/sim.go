// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock (nanosecond resolution) and an event heap
// ordered by (time, sequence). Simulated threads of control ("procs") are
// ordinary goroutines that the engine runs strictly one at a time: the engine
// resumes a proc and then blocks until the proc parks again (by sleeping,
// waiting on a semaphore, popping an empty queue, and so on). This yields
// fully sequential semantics — protocol and application code can be written
// in a natural blocking style with no data races and no wall-clock
// dependence — while the (time, seq) ordering makes every run reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Dur is a span of virtual time. It aliases time.Duration so callers can use
// the familiar constants (time.Millisecond etc.) without importing anything
// extra.
type Dur = time.Duration

// String formats a Time using time.Duration notation (e.g. "1.5ms").
func (t Time) String() string { return time.Duration(t).String() }

// Add returns the time d after t.
func (t Time) Add(d Dur) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Dur { return Dur(t - u) }

type event struct {
	at   Time
	seq  uint64
	fn   func()
	idx  int
	dead bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulation instance. It is not safe for concurrent
// use from multiple OS threads; all interaction happens either before Run,
// from within event callbacks, or from within procs (which the engine
// serializes).
type Sim struct {
	now     Time
	seq     uint64
	events  eventHeap
	parked  chan struct{} // proc -> engine: "I have parked"
	current *Proc
	nprocs  int // live procs (started, not yet finished)
	stopped bool
}

// New creates an empty simulation at time zero.
func New() *Sim {
	return &Sim{parked: make(chan struct{})}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Timer identifies a scheduled event so it can be cancelled.
type Timer struct{ e *event }

// Cancel prevents the timer's callback from running. Cancelling an already
// fired or already cancelled timer is a no-op. It reports whether the
// callback was still pending.
func (t Timer) Cancel() bool {
	if t.e == nil || t.e.dead {
		return false
	}
	t.e.dead = true
	return true
}

// Pending reports whether the timer's callback has yet to run.
func (t Timer) Pending() bool { return t.e != nil && !t.e.dead }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: it would silently corrupt causality.
func (s *Sim) At(at Time, fn func()) Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	e := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return Timer{e}
}

// After schedules fn to run d from now.
func (s *Sim) After(d Dur, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Stop terminates the run loop after the current event or proc step
// completes. Pending events are discarded.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the heap is empty, the time limit is exceeded,
// or Stop is called. A limit of 0 means no limit. It returns the virtual
// time at which the run ended.
//
// Procs that are still blocked when Run returns remain parked; a subsequent
// Run continues the simulation.
func (s *Sim) Run(limit Dur) Time {
	end := Time(1<<62 - 1)
	if limit > 0 {
		end = s.now.Add(limit)
	}
	s.stopped = false
	for !s.stopped && len(s.events) > 0 {
		e := s.events[0]
		if e.at > end {
			s.now = end
			break
		}
		heap.Pop(&s.events)
		if e.dead {
			continue
		}
		s.now = e.at
		e.fn()
	}
	return s.now
}

// RunUntil executes events until pred() returns true (checked after every
// event), the heap drains, or the time limit passes.
func (s *Sim) RunUntil(limit Dur, pred func() bool) Time {
	end := Time(1<<62 - 1)
	if limit > 0 {
		end = s.now.Add(limit)
	}
	s.stopped = false
	for !s.stopped && !pred() && len(s.events) > 0 {
		e := s.events[0]
		if e.at > end {
			s.now = end
			break
		}
		heap.Pop(&s.events)
		if e.dead {
			continue
		}
		s.now = e.at
		e.fn()
	}
	return s.now
}

// Idle reports whether no events remain.
func (s *Sim) Idle() bool { return len(s.events) == 0 }

// Procs returns the number of procs that have been started and have not yet
// returned.
func (s *Sim) Procs() int { return s.nprocs }
