package sim

import (
	"testing"
	"time"
)

// A proc killed while parked never runs again; cleanup-free teardown.
func TestKillWhileParked(t *testing.T) {
	s := New()
	resumed := false
	var victim *Proc
	victim = s.Spawn("victim", func(p *Proc) {
		p.Sleep(time.Second)
		resumed = true
	})
	s.After(time.Millisecond, func() { s.Kill(victim) })
	s.Run(0)
	if resumed {
		t.Fatal("killed proc resumed past its park point")
	}
	if !victim.Killed() || !victim.Done() {
		t.Fatalf("victim killed=%v done=%v, want true/true", victim.Killed(), victim.Done())
	}
	if s.Procs() != 0 {
		t.Fatalf("procs remaining = %d, want 0", s.Procs())
	}
}

// A proc that kills itself dies at its next blocking point, not immediately.
func TestSelfKill(t *testing.T) {
	s := New()
	var reachedPark, past bool
	var self *Proc
	self = s.Spawn("self", func(p *Proc) {
		s.Kill(p)
		reachedPark = true
		p.Sleep(time.Nanosecond) // first park after the kill: dies here
		past = true
	})
	s.Run(0)
	if !reachedPark {
		t.Fatal("self-kill should not take effect before the next park")
	}
	if past {
		t.Fatal("self-killed proc survived its park")
	}
	if !self.Done() {
		t.Fatal("self-killed proc not marked done")
	}
}

// A semaphore V whose front waiter was killed must wake the next live
// waiter, not lose the signal.
func TestSemaphoreSkipsKilledWaiter(t *testing.T) {
	s := New()
	sem := s.NewSemaphore("sem", 0)
	var deadWoke, liveWoke bool
	dead := s.Spawn("dead", func(p *Proc) {
		sem.P(p)
		deadWoke = true
	})
	s.SpawnAfter(time.Microsecond, "live", func(p *Proc) {
		sem.P(p)
		liveWoke = true
	})
	s.After(time.Millisecond, func() { s.Kill(dead) })
	s.After(2*time.Millisecond, func() { sem.V() })
	s.Run(0)
	if deadWoke {
		t.Fatal("killed waiter consumed the signal")
	}
	if !liveWoke {
		t.Fatal("live waiter starved: V was lost on the killed waiter")
	}
}

// Killing a proc blocked on a queue must not wedge the engine or other
// consumers.
func TestKillQueueConsumer(t *testing.T) {
	s := New()
	q := NewQueue[int](s)
	var got []int
	victim := s.Spawn("victim", func(p *Proc) {
		for {
			q.Pop(p)
			t.Error("killed consumer received an item")
		}
	})
	s.After(time.Microsecond, func() { s.Kill(victim) })
	s.SpawnAfter(time.Millisecond, "live", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Pop(p))
		}
	})
	s.After(2*time.Millisecond, func() {
		q.Push(1)
		q.Push(2)
		q.Push(3)
	})
	s.Run(0)
	if len(got) != 3 {
		t.Fatalf("live consumer got %v, want 3 items", got)
	}
}

func TestKillIdempotent(t *testing.T) {
	s := New()
	p := s.Spawn("p", func(p *Proc) { p.Sleep(time.Hour) })
	s.After(time.Millisecond, func() {
		s.Kill(p)
		s.Kill(p) // second kill is a no-op
	})
	s.Run(0)
	if s.Procs() != 0 {
		t.Fatalf("procs remaining = %d", s.Procs())
	}
}

func TestCondWaitUntil(t *testing.T) {
	s := New()
	c := s.NewCond()

	// Signalled before the deadline: reports true at the signal time.
	var ok1 bool
	var at1 Time
	s.Spawn("w1", func(p *Proc) {
		ok1 = c.WaitUntil(p, Time(10*time.Millisecond))
		at1 = p.Now()
	})
	s.After(time.Millisecond, c.Signal)
	s.Run(0)
	if !ok1 || at1 != Time(time.Millisecond) {
		t.Fatalf("signalled wait: ok=%v at=%v, want true at 1ms", ok1, at1)
	}

	// No signal: times out exactly at the deadline.
	var ok2 bool
	var at2 Time
	s.Spawn("w2", func(p *Proc) {
		ok2 = c.WaitUntil(p, s.Now().Add(5*time.Millisecond))
		at2 = p.Now()
	})
	s.Run(0)
	if ok2 {
		t.Fatal("wait with no signal should time out")
	}
	if at2 != Time(6*time.Millisecond) {
		t.Fatalf("timed out at %v, want 6ms", at2)
	}
	if c.Waiters() != 0 {
		t.Fatalf("waiters = %d after timeout, want 0", c.Waiters())
	}
}

func TestQueuePopTimeout(t *testing.T) {
	s := New()
	q := NewQueue[string](s)
	var v string
	var ok, ok2 bool
	s.Spawn("c", func(p *Proc) {
		v, ok = q.PopTimeout(p, 10*time.Millisecond)
		_, ok2 = q.PopTimeout(p, 10*time.Millisecond)
	})
	s.After(time.Millisecond, func() { q.Push("hello") })
	s.Run(0)
	if !ok || v != "hello" {
		t.Fatalf("PopTimeout = %q, %v; want hello, true", v, ok)
	}
	if ok2 {
		t.Fatal("empty PopTimeout should report false")
	}
	if s.Now() != Time(11*time.Millisecond) {
		t.Fatalf("final time = %v, want 11ms", s.Now())
	}
}
