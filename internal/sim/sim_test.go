package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	s.After(30*time.Nanosecond, func() { got = append(got, 3) })
	s.After(10*time.Nanosecond, func() { got = append(got, 1) })
	s.After(20*time.Nanosecond, func() { got = append(got, 2) })
	s.Run(0)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != Time(30) {
		t.Fatalf("final time = %v, want 30ns", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(5*time.Nanosecond, func() { got = append(got, i) })
	}
	s.Run(0)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.After(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(0, func() {})
	})
	s.Run(0)
}

func TestTimerCancel(t *testing.T) {
	s := New()
	fired := false
	tm := s.After(time.Millisecond, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Cancel() {
		t.Fatal("first cancel should report true")
	}
	if tm.Cancel() {
		t.Fatal("second cancel should report false")
	}
	s.Run(0)
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestRunLimit(t *testing.T) {
	s := New()
	var fired []Time
	for i := 1; i <= 5; i++ {
		d := time.Duration(i) * time.Millisecond
		s.After(d, func() { fired = append(fired, s.Now()) })
	}
	s.Run(3 * time.Millisecond) // events at 1,2,3ms fire; 4,5 remain
	if len(fired) != 3 {
		t.Fatalf("fired %d events within limit, want 3", len(fired))
	}
	s.Run(0)
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
}

func TestProcSleep(t *testing.T) {
	s := New()
	var wake Time
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(42 * time.Microsecond)
		wake = p.Now()
	})
	s.Run(0)
	if wake != Time(42*time.Microsecond) {
		t.Fatalf("woke at %v, want 42µs", wake)
	}
	if s.Procs() != 0 {
		t.Fatalf("procs remaining = %d, want 0", s.Procs())
	}
}

func TestProcInterleaving(t *testing.T) {
	s := New()
	var trace []string
	mk := func(name string, period time.Duration, n int) {
		s.Spawn(name, func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Sleep(period)
				trace = append(trace, fmt.Sprintf("%s@%v", name, p.Now()))
			}
		})
	}
	mk("a", 10*time.Nanosecond, 3)
	mk("b", 15*time.Nanosecond, 2)
	s.Run(0)
	// At t=30ns both procs wake; b's wakeup was scheduled earlier (at 15ns,
	// vs a's at 20ns), so FIFO tie-breaking runs b first.
	want := []string{"a@10ns", "b@15ns", "a@20ns", "b@30ns", "a@30ns"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSemaphoreBlocking(t *testing.T) {
	s := New()
	sem := s.NewSemaphore("sem", 0)
	var order []string
	s.Spawn("waiter", func(p *Proc) {
		order = append(order, "wait-start")
		sem.P(p)
		order = append(order, fmt.Sprintf("wait-done@%v", p.Now()))
	})
	s.Spawn("signaler", func(p *Proc) {
		p.Sleep(time.Millisecond)
		sem.V()
	})
	s.Run(0)
	if len(order) != 2 || order[1] != "wait-done@1ms" {
		t.Fatalf("order = %v", order)
	}
}

func TestSemaphoreCountingAndFIFO(t *testing.T) {
	s := New()
	sem := s.NewSemaphore("sem", 2)
	var got []string
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("w%d", i)
		s.Spawn(name, func(p *Proc) {
			sem.P(p)
			got = append(got, name)
		})
	}
	s.Spawn("v", func(p *Proc) {
		p.Sleep(time.Millisecond)
		sem.V()
		sem.V()
	})
	s.Run(0)
	want := []string{"w0", "w1", "w2", "w3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wakeup order = %v, want %v", got, want)
		}
	}
}

func TestSemaphoreTryP(t *testing.T) {
	s := New()
	sem := s.NewSemaphore("sem", 1)
	if !sem.TryP() {
		t.Fatal("TryP should succeed with count 1")
	}
	if sem.TryP() {
		t.Fatal("TryP should fail with count 0")
	}
	sem.V()
	if sem.Count() != 1 {
		t.Fatalf("count = %d, want 1", sem.Count())
	}
}

func TestCondBroadcast(t *testing.T) {
	s := New()
	c := s.NewCond()
	woken := 0
	for i := 0; i < 3; i++ {
		s.Spawn("w", func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	s.Spawn("b", func(p *Proc) {
		p.Sleep(time.Microsecond)
		if c.Waiters() != 3 {
			t.Errorf("waiters = %d, want 3", c.Waiters())
		}
		c.Broadcast()
	})
	s.Run(0)
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestQueueFIFO(t *testing.T) {
	s := New()
	q := NewQueue[int](s)
	var got []int
	s.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Pop(p))
		}
	})
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(time.Microsecond)
			q.Push(i)
		}
	})
	s.Run(0)
	for i := range got {
		if got[i] != i {
			t.Fatalf("queue order = %v", got)
		}
	}
}

func TestQueueTryPop(t *testing.T) {
	s := New()
	q := NewQueue[string](s)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue should fail")
	}
	q.Push("x")
	if q.Len() != 1 {
		t.Fatalf("len = %d", q.Len())
	}
	v, ok := q.TryPop()
	if !ok || v != "x" {
		t.Fatalf("TryPop = %q, %v", v, ok)
	}
}

func TestResourceQueueing(t *testing.T) {
	s := New()
	cpu := s.NewResource("cpu")
	var done []Time
	for i := 0; i < 3; i++ {
		s.Spawn("worker", func(p *Proc) {
			cpu.Use(p, 10*time.Microsecond)
			done = append(done, p.Now())
		})
	}
	s.Run(0)
	want := []Time{Time(10 * time.Microsecond), Time(20 * time.Microsecond), Time(30 * time.Microsecond)}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion times = %v, want %v", done, want)
		}
	}
	if cpu.Busy() != 30*time.Microsecond {
		t.Fatalf("busy = %v, want 30µs", cpu.Busy())
	}
}

func TestResourceUseAsync(t *testing.T) {
	s := New()
	cpu := s.NewResource("cpu")
	var at Time
	cpu.UseAsync(5*time.Microsecond, nil)
	cpu.UseAsync(5*time.Microsecond, func() { at = s.Now() })
	s.Run(0)
	if at != Time(10*time.Microsecond) {
		t.Fatalf("async completion at %v, want 10µs", at)
	}
}

func TestResourceMixedProcAndAsync(t *testing.T) {
	s := New()
	cpu := s.NewResource("cpu")
	var procDone Time
	s.Spawn("w", func(p *Proc) {
		p.Sleep(time.Microsecond)
		cpu.Use(p, 10*time.Microsecond)
		procDone = p.Now()
	})
	// Interrupt work issued at t=0 reserves the CPU first.
	cpu.UseAsync(20*time.Microsecond, nil)
	s.Run(0)
	if procDone != Time(30*time.Microsecond) {
		t.Fatalf("proc finished at %v, want 30µs (queued behind interrupt)", procDone)
	}
}

// runScenario executes a randomized but seeded mix of procs, semaphores and
// timers and returns the execution trace; used to verify determinism.
func runScenario(seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	s := New()
	var trace []string
	sem := s.NewSemaphore("s", 0)
	q := NewQueue[int](s)
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("p%d", i)
		delay := time.Duration(rng.Intn(1000)) * time.Nanosecond
		switch rng.Intn(3) {
		case 0:
			s.SpawnAfter(delay, name, func(p *Proc) {
				p.Sleep(time.Duration(rng.Intn(100)) * time.Nanosecond)
				sem.V()
				trace = append(trace, name+"-v@"+p.Now().String())
			})
		case 1:
			s.SpawnAfter(delay, name, func(p *Proc) {
				sem.P(p)
				trace = append(trace, name+"-p@"+p.Now().String())
				q.Push(i)
			})
		case 2:
			s.SpawnAfter(delay, name, func(p *Proc) {
				p.Sleep(delay)
				trace = append(trace, name+"-t@"+p.Now().String())
				sem.V()
			})
		}
	}
	s.Run(time.Second)
	return trace
}

func TestDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := runScenario(seed)
		b := runScenario(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at %d: %q vs %q", seed, i, a[i], b[i])
			}
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	if err := quick.Check(func(base int32, d int32) bool {
		tm := Time(base)
		dd := Dur(d)
		return tm.Add(dd).Sub(tm) == dd
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: N events scheduled at arbitrary non-negative offsets always fire
// in nondecreasing time order.
func TestEventOrderProperty(t *testing.T) {
	if err := quick.Check(func(offsets []uint16) bool {
		s := New()
		var fired []Time
		for _, o := range offsets {
			s.After(time.Duration(o)*time.Nanosecond, func() { fired = append(fired, s.Now()) })
		}
		s.Run(0)
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStop(t *testing.T) {
	s := New()
	n := 0
	s.After(time.Millisecond, func() { n++; s.Stop() })
	s.After(2*time.Millisecond, func() { n++ })
	s.Run(0)
	if n != 1 {
		t.Fatalf("events run = %d, want 1 (Stop should halt)", n)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	n := 0
	for i := 0; i < 10; i++ {
		s.After(time.Duration(i+1)*time.Millisecond, func() { n++ })
	}
	s.RunUntil(0, func() bool { return n >= 4 })
	if n != 4 {
		t.Fatalf("n = %d, want 4", n)
	}
}

func BenchmarkEventDispatch(b *testing.B) {
	s := New()
	for i := 0; i < b.N; i++ {
		s.After(time.Nanosecond, func() {})
	}
	b.ResetTimer()
	s.Run(0)
}

func BenchmarkProcSwitch(b *testing.B) {
	s := New()
	s.Spawn("switcher", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Nanosecond)
		}
	})
	b.ResetTimer()
	s.Run(0)
}

func BenchmarkSemaphorePingPong(b *testing.B) {
	s := New()
	s1 := s.NewSemaphore("a", 0)
	s2 := s.NewSemaphore("b", 0)
	s.Spawn("p1", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			s1.V()
			s2.P(p)
		}
	})
	s.Spawn("p2", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			s1.P(p)
			s2.V()
		}
	})
	b.ResetTimer()
	s.Run(0)
}
