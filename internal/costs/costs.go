// Package costs holds the virtual-time cost model for the simulated 1993
// hosts: DECstation 5000/200 workstations (25 MHz MIPS R3000) running either
// Ultrix 4.2A, Mach 3.0 + UX, or Mach 3.0 with the user-level protocol
// library, attached to a 10 Mb/s Ethernet (DEC PMADD-AA "LANCE", programmed
// I/O) and a 100 Mb/s DEC SRC AN1 segment (DMA, hardware BQI demux).
//
// Every structural operation in the simulation — traps, context switches,
// IPC, copies, checksums, interrupts, demultiplexing, timer management —
// charges one of these constants to the host CPU. The protocol engines
// themselves are pure; organization shells charge identical protocol-
// processing costs in all three organizations, so measured differences stem
// from structure alone, which is the paper's central claim ("the protocol
// stack that is executed is nearly identical in all three systems ... any
// performance difference is due to the structure and mechanisms provided").
//
// Values are calibrated against the paper's published numbers (Tables 1–5)
// and contemporary measurements of Mach 3.0 and Ultrix on this hardware
// class. They are deliberately centralized so that EXPERIMENTS.md can point
// at a single calibration surface.
package costs

import "time"

// Model is the set of per-operation costs. The zero value is unusable; use
// Default (or copy and modify it for ablations).
type Model struct {
	// ---- Traps and domain crossings -------------------------------------

	// SyscallTrap is a general-purpose kernel trap and return, including
	// argument validation and dispatch (an Ultrix or UX socket system call).
	SyscallTrap time.Duration

	// FastTrap is the specialized kernel entry point used by the user-level
	// library's send path. The paper: "a kernel crossing to access the
	// network device can be made fast because it is a specialized entry
	// point" and "the sanity checks involved in a trap can be simplified".
	FastTrap time.Duration

	// ContextSwitch is a full cross-address-space process switch including
	// scheduler work and cache/TLB disturbance.
	ContextSwitch time.Duration

	// ThreadSwitch is a same-address-space lightweight (C-Threads style)
	// switch.
	ThreadSwitch time.Duration

	// KernelWakeup is the cost of a kernel-mediated wakeup of a user thread
	// blocked on a lightweight semaphore: the signal, scheduler pass, and
	// the switch into the target address space.
	KernelWakeup time.Duration

	// SemSignal is the cost of posting a lightweight semaphore when no
	// cross-domain wakeup is needed (the waiter is already runnable or the
	// count is simply incremented).
	SemSignal time.Duration

	// MachIPCSend is a one-way Mach message send, small message, including
	// port rights checks. A null RPC is two of these plus two context
	// switches.
	MachIPCSend time.Duration

	// ---- Memory ----------------------------------------------------------

	// CopyPerByte is bcopy through the cache.
	CopyPerByte time.Duration

	// ChecksumPerByte is the Internet checksum inner loop.
	ChecksumPerByte time.Duration

	// PageRemap is the VM operation that donates a page instead of copying
	// (the "buffer organization that eliminates byte copying" both Ultrix
	// and the library use; Ultrix only invokes it for writes >= RemapMin).
	PageRemap time.Duration

	// RemapMinUltrix is the smallest user write for which Ultrix uses the
	// page-remap path ("invoked only when the user packet size is 1024
	// bytes or larger"). The user-level library uses its shared region for
	// all sizes.
	RemapMinUltrix int

	// ---- Devices and interrupts -------------------------------------------

	// InterruptDispatch is interrupt entry, device identification and
	// return (excluding handler body work).
	InterruptDispatch time.Duration

	// DeviceCSR is a single programmed control/status register access.
	DeviceCSR time.Duration

	// LancePIOPerByte is the programmed-I/O transfer between host memory
	// and the LANCE on-board staging buffers (the PMADD-AA has no DMA).
	LancePIOPerByte time.Duration

	// AN1DMASetup is writing a descriptor and ringing the doorbell for one
	// AN1 DMA transfer; the DMA itself proceeds without the CPU.
	AN1DMASetup time.Duration

	// AN1DeviceMgmt is the per-packet device-management bookkeeping
	// inherent to the AN1's buffer-queue machinery (ring replenishment,
	// descriptor recycling). Table 5 includes it in the hardware demux
	// figure: "Part of the cost of programming this machinery and
	// bookkeeping accounts for the observed times."
	AN1DeviceMgmt time.Duration

	// DescriptorPost is writing one receive descriptor (buffer reference +
	// length) into an application's shared receive ring on the zero-copy
	// delivery path. It replaces the per-byte Copy charge for matched
	// frames: the kernel posts a fixed-size descriptor instead of moving
	// the payload (cf. AN1DMASetup — same idea, host-to-app direction).
	DescriptorPost time.Duration

	// ---- Demultiplexing and protection -------------------------------------

	// FilterDemux is running the software input demultiplexer over one
	// packet's headers in the kernel (BPF-style compiled predicate; the
	// CSPF interpreter is measured separately by the filter ablation).
	FilterDemux time.Duration

	// LanceDemuxFixed is the fixed per-packet device-management work on the
	// LANCE receive path that Table 5 attributes to software
	// demultiplexing, excluding copies.
	LanceDemuxFixed time.Duration

	// TemplateCheck is the per-packet outbound header-template match in the
	// network I/O module ("the logic required ... is quite short").
	TemplateCheck time.Duration

	// ---- Protocol processing ----------------------------------------------

	// TCPSegment is per-segment TCP processing (input or output path:
	// control block work, state machine, window update, header build or
	// parse) excluding checksums, copies and timer operations, which are
	// charged separately.
	TCPSegment time.Duration

	// IPPacket is per-packet IP processing (header build/parse, route or
	// reassembly lookup), excluding checksum.
	IPPacket time.Duration

	// UDPPacket is per-datagram UDP processing.
	UDPPacket time.Duration

	// TimerOp is one timing-wheel operation (set, cancel, or fire).
	// "Practically every message arrival and departure involves timer
	// operations."
	TimerOp time.Duration

	// SockbufOp is socket-buffer append/remove bookkeeping per operation
	// (not per byte).
	SockbufOp time.Duration

	// MbufLayer is the per-packet cost of the BSD kernel buffer layer
	// (mbuf allocation, chaining, sbappend, free) paid by the monolithic
	// organizations on both transmit and receive. The user-level library's
	// preallocated shared rings avoid it — the "buffer organization" the
	// paper credits for its small-packet wins.
	MbufLayer time.Duration

	// PCBSetup is protocol-control-block creation and socket-layer setup
	// for a new connection in the monolithic organizations (socreate +
	// in_pcballoc work).
	PCBSetup time.Duration

	// ProcCall is an ordinary intra-address-space procedure call into the
	// protocol library ("user applications invoke protocol functions
	// through procedure calls").
	ProcCall time.Duration

	// ---- Registry / connection setup ---------------------------------------

	// RegistryPortAlloc is allocation of a connection end-point name and
	// the associated bookkeeping in the registry server.
	RegistryPortAlloc time.Duration

	// RegistryConnSetup is the registry's non-overlappable outbound
	// connection-establishment processing ("allocating connection
	// identifiers, executing the start of connection set up phase ...
	// accounts for about 1.5 ms", jointly with RegistryPortAlloc).
	RegistryConnSetup time.Duration

	// ChannelSetup is creating the shared-memory region, wiring it, and
	// installing the capability/template/demux binding with the network
	// I/O module ("nearly 3.4 ms are spent in setting up user channels to
	// the network device").
	ChannelSetup time.Duration

	// StateTransfer is moving established-connection TCP state from the
	// registry server to the library ("about 1.4 ms to transfer and set up
	// TCP state to user level").
	StateTransfer time.Duration

	// BQIReserve is allocating a buffer queue index with the controller
	// before the handshake ("before initiating connection the server
	// requests the network I/O module for a BQI that the remote node can
	// use") — the "machinery involved to setup the BQI" that makes AN1
	// connection setup slightly more expensive in Table 4.
	BQIReserve time.Duration

	// RegistrySendPath is the registry's un-optimized path to the network
	// device (standard Mach IPC rather than shared memory): extra cost per
	// registry-originated packet during the handshake.
	RegistrySendPath time.Duration
}

// Default is the calibrated model. See EXPERIMENTS.md for the calibration
// record (paper value vs simulated value per table).
func Default() Model {
	return Model{
		SyscallTrap:       60 * time.Microsecond,
		FastTrap:          20 * time.Microsecond,
		ContextSwitch:     140 * time.Microsecond,
		ThreadSwitch:      35 * time.Microsecond,
		KernelWakeup:      700 * time.Microsecond,
		SemSignal:         18 * time.Microsecond,
		MachIPCSend:       450 * time.Microsecond,
		CopyPerByte:       45 * time.Nanosecond,
		ChecksumPerByte:   28 * time.Nanosecond,
		PageRemap:         40 * time.Microsecond,
		RemapMinUltrix:    1024,
		InterruptDispatch: 22 * time.Microsecond,
		DeviceCSR:         2 * time.Microsecond,
		LancePIOPerByte:   75 * time.Nanosecond,
		AN1DMASetup:       12 * time.Microsecond,
		AN1DeviceMgmt:     50 * time.Microsecond,
		DescriptorPost:    2 * time.Microsecond,
		FilterDemux:       30 * time.Microsecond,
		LanceDemuxFixed:   22 * time.Microsecond,
		TemplateCheck:     12 * time.Microsecond,
		TCPSegment:        120 * time.Microsecond,
		IPPacket:          40 * time.Microsecond,
		UDPPacket:         45 * time.Microsecond,
		TimerOp:           6 * time.Microsecond,
		SockbufOp:         10 * time.Microsecond,
		MbufLayer:         100 * time.Microsecond,
		PCBSetup:          500 * time.Microsecond,
		ProcCall:          4 * time.Microsecond,
		RegistryPortAlloc: 300 * time.Microsecond,
		RegistryConnSetup: 900 * time.Microsecond,
		ChannelSetup:      3400 * time.Microsecond,
		StateTransfer:     1400 * time.Microsecond,
		BQIReserve:        400 * time.Microsecond,
		RegistrySendPath:  250 * time.Microsecond,
	}
}

// Copy returns n bytes' worth of bcopy time.
func (m *Model) Copy(n int) time.Duration {
	return time.Duration(n) * m.CopyPerByte
}

// Checksum returns n bytes' worth of Internet-checksum time.
func (m *Model) Checksum(n int) time.Duration {
	return time.Duration(n) * m.ChecksumPerByte
}

// LancePIO returns n bytes' worth of programmed-I/O time on the LANCE.
func (m *Model) LancePIO(n int) time.Duration {
	return time.Duration(n) * m.LancePIOPerByte
}
