// Package timerwheel implements hashed hierarchical timing wheels (Varghese
// & Lauck, SOSP 1987), the timer facility the paper identifies as the known
// fast mechanism for transport timers: "practically every message arrival
// and departure involves timer operations".
//
// The wheel is driven by an external tick source (the simulation clock), so
// it is pure and independently testable. Set, Cancel and per-tick advance
// are O(1) amortized; the hierarchy gives a wide range (tick granularity up
// to granularity * slots^levels) with small tables.
package timerwheel

// Timer is a schedulable callback. The zero value is an unarmed timer;
// reuse after firing or cancellation is allowed.
type Timer struct {
	fn       func()
	deadline uint64 // absolute tick
	armed    bool

	// intrusive doubly-linked list within a slot
	next, prev *Timer
	slot       *slotList
}

// Armed reports whether the timer is pending.
func (t *Timer) Armed() bool { return t.armed }

type slotList struct{ head Timer }

func (l *slotList) init() {
	l.head.next = &l.head
	l.head.prev = &l.head
}

func (l *slotList) push(t *Timer) {
	t.prev = l.head.prev
	t.next = &l.head
	l.head.prev.next = t
	l.head.prev = t
	t.slot = l
}

func (t *Timer) unlink() {
	t.prev.next = t.next
	t.next.prev = t.prev
	t.next, t.prev, t.slot = nil, nil, nil
}

// Wheel is a hierarchical timing wheel. It is not safe for concurrent use;
// in this codebase it is always driven from simulation context.
type Wheel struct {
	levels [][]slotList
	slots  uint64 // slots per level (power of two)
	mask   uint64
	shift  uint   // log2(slots)
	now    uint64 // current absolute tick
	armed  int
	ops    int // statistics: set+cancel+fire operations
}

// New creates a wheel with the given number of levels, each with slots
// entries; slots must be a power of two. A 4-level, 256-slot wheel at 1 ms
// granularity covers ~ 4.3e9 ms.
func New(levels, slots int) *Wheel {
	if slots <= 0 || slots&(slots-1) != 0 {
		panic("timerwheel: slots must be a power of two")
	}
	w := &Wheel{slots: uint64(slots), mask: uint64(slots - 1)}
	for s := slots; s > 1; s >>= 1 {
		w.shift++
	}
	w.levels = make([][]slotList, levels)
	for i := range w.levels {
		w.levels[i] = make([]slotList, slots)
		for j := range w.levels[i] {
			w.levels[i][j].init()
		}
	}
	return w
}

// Now returns the wheel's current tick.
func (w *Wheel) Now() uint64 { return w.now }

// Armed returns the number of pending timers.
func (w *Wheel) Armed() int { return w.armed }

// Ops returns the total number of timer operations performed, for cost
// accounting by the caller.
func (w *Wheel) Ops() int { return w.ops }

// place inserts t into the level/slot appropriate for its deadline.
func (w *Wheel) place(t *Timer) {
	delta := t.deadline - w.now
	if delta == 0 {
		delta = 1 // fire on the next tick at the earliest
	}
	level := 0
	span := w.slots
	for level < len(w.levels)-1 && delta >= span {
		span <<= w.shift
		level++
	}
	// Index by the deadline digits at this level.
	idx := (t.deadline >> (w.shift * uint(level))) & w.mask
	w.levels[level][idx].push(t)
}

// Set arms t to fire fn after delay ticks (minimum 1). If t is already
// armed it is rescheduled.
func (w *Wheel) Set(t *Timer, delay uint64, fn func()) {
	w.ops++
	if t.armed {
		t.unlink()
		w.armed--
	}
	if delay == 0 {
		delay = 1
	}
	maxSpan := uint64(1) << (w.shift * uint(len(w.levels)))
	if delay >= maxSpan {
		delay = maxSpan - 1
	}
	t.fn = fn
	t.deadline = w.now + delay
	t.armed = true
	w.armed++
	w.place(t)
}

// Cancel disarms t; it reports whether the timer was pending.
func (w *Wheel) Cancel(t *Timer) bool {
	w.ops++
	if !t.armed {
		return false
	}
	t.unlink()
	t.armed = false
	w.armed--
	return true
}

// Advance moves the wheel forward by n ticks, firing every timer whose
// deadline is reached, in deadline order within each tick. It returns the
// number of timers fired.
func (w *Wheel) Advance(n uint64) int {
	fired := 0
	for i := uint64(0); i < n; i++ {
		w.now++
		fired += w.tick()
	}
	return fired
}

// tick processes the slot for the current tick at level 0 and cascades
// higher levels when their digit rolls over.
func (w *Wheel) tick() int {
	fired := 0
	// Cascade: when the level-k digit becomes 0, redistribute level k+1.
	for level := 1; level < len(w.levels); level++ {
		digitBelow := (w.now >> (w.shift * uint(level-1))) & w.mask
		if digitBelow != 0 {
			break
		}
		idx := (w.now >> (w.shift * uint(level))) & w.mask
		l := &w.levels[level][idx]
		for t := l.head.next; t != &l.head; {
			next := t.next
			t.unlink()
			w.place(t)
			t = next
		}
	}
	// Fire level-0 slot entries whose deadline matches. Due timers are
	// first spliced onto a private list and then popped one at a time, so
	// an expiry callback may freely Cancel or re-Set any other timer —
	// including one due this same tick — without corrupting the walk.
	l := &w.levels[0][w.now&w.mask]
	var due slotList
	due.init()
	for t := l.head.next; t != &l.head; {
		next := t.next
		if t.deadline <= w.now {
			t.unlink()
			due.push(t)
		}
		t = next
	}
	for due.head.next != &due.head {
		t := due.head.next
		t.unlink()
		t.armed = false
		w.armed--
		w.ops++
		fired++
		t.fn()
	}
	return fired
}
