package timerwheel

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFireAtDeadline(t *testing.T) {
	w := New(3, 16)
	var firedAt uint64
	var tm Timer
	w.Set(&tm, 5, func() { firedAt = w.Now() })
	w.Advance(10)
	if firedAt != 5 {
		t.Fatalf("fired at tick %d, want 5", firedAt)
	}
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
}

func TestZeroDelayFiresNextTick(t *testing.T) {
	w := New(2, 8)
	fired := false
	var tm Timer
	w.Set(&tm, 0, func() { fired = true })
	w.Advance(1)
	if !fired {
		t.Fatal("zero-delay timer did not fire on next tick")
	}
}

func TestCancel(t *testing.T) {
	w := New(3, 16)
	fired := false
	var tm Timer
	w.Set(&tm, 5, func() { fired = true })
	if !w.Cancel(&tm) {
		t.Fatal("cancel of armed timer returned false")
	}
	if w.Cancel(&tm) {
		t.Fatal("cancel of disarmed timer returned true")
	}
	w.Advance(20)
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if w.Armed() != 0 {
		t.Fatalf("armed = %d, want 0", w.Armed())
	}
}

func TestReschedule(t *testing.T) {
	w := New(3, 16)
	var firedAt []uint64
	var tm Timer
	w.Set(&tm, 3, func() { firedAt = append(firedAt, w.Now()) })
	w.Set(&tm, 9, func() { firedAt = append(firedAt, w.Now()) })
	w.Advance(20)
	if len(firedAt) != 1 || firedAt[0] != 9 {
		t.Fatalf("firedAt = %v, want [9]", firedAt)
	}
}

func TestCascadeAcrossLevels(t *testing.T) {
	w := New(3, 8) // level 0 spans 8 ticks, level 1 spans 64, level 2 spans 512
	deadlines := []uint64{1, 7, 8, 9, 63, 64, 65, 100, 511}
	var fired []uint64
	timers := make([]Timer, len(deadlines))
	for i, d := range deadlines {
		w.Set(&timers[i], d, func() { fired = append(fired, w.Now()) })
	}
	w.Advance(512)
	if len(fired) != len(deadlines) {
		t.Fatalf("fired %d timers, want %d (fired=%v)", len(fired), len(deadlines), fired)
	}
	want := append([]uint64(nil), deadlines...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", fired, want)
		}
	}
}

func TestRepeatedReuse(t *testing.T) {
	w := New(3, 16)
	var tm Timer
	count := 0
	var rearm func()
	rearm = func() {
		count++
		if count < 5 {
			w.Set(&tm, 2, rearm)
		}
	}
	w.Set(&tm, 2, rearm)
	w.Advance(100)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestClampBeyondRange(t *testing.T) {
	w := New(2, 8) // max span 64
	fired := false
	var tm Timer
	w.Set(&tm, 1000, func() { fired = true })
	w.Advance(64)
	if !fired {
		t.Fatal("out-of-range timer should clamp to max span and fire")
	}
}

// Property: timers with arbitrary delays fire exactly once, at or after
// their deadline tick, and in nondecreasing deadline order.
func TestFireOrderProperty(t *testing.T) {
	if err := quick.Check(func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := New(4, 16)
		count := int(n%50) + 1
		type rec struct{ deadline, firedAt uint64 }
		recs := make([]rec, count)
		timers := make([]Timer, count)
		var order []int
		for i := 0; i < count; i++ {
			d := uint64(rng.Intn(4000)) + 1
			recs[i].deadline = d
			i := i
			w.Set(&timers[i], d, func() {
				recs[i].firedAt = w.Now()
				order = append(order, i)
			})
		}
		w.Advance(5000)
		if len(order) != count {
			return false
		}
		prev := uint64(0)
		for _, i := range order {
			if recs[i].firedAt != recs[i].deadline {
				return false
			}
			if recs[i].deadline < prev {
				return false
			}
			prev = recs[i].deadline
		}
		return w.Armed() == 0
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset means exactly the uncancelled ones
// fire.
func TestCancelSubsetProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := New(3, 16)
		const count = 30
		timers := make([]Timer, count)
		fired := make([]bool, count)
		for i := 0; i < count; i++ {
			i := i
			w.Set(&timers[i], uint64(rng.Intn(500))+1, func() { fired[i] = true })
		}
		cancelled := make([]bool, count)
		for i := 0; i < count; i++ {
			if rng.Intn(2) == 0 {
				cancelled[i] = w.Cancel(&timers[i])
				if !cancelled[i] {
					return false // all were armed
				}
			}
		}
		w.Advance(600)
		for i := 0; i < count; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOpsCounting(t *testing.T) {
	w := New(2, 8)
	var tm Timer
	w.Set(&tm, 1, func() {})
	w.Cancel(&tm)
	w.Set(&tm, 1, func() {})
	w.Advance(2)
	// set + cancel + set + fire = 4
	if w.Ops() != 4 {
		t.Fatalf("ops = %d, want 4", w.Ops())
	}
}

// TestLevelBoundaryRollover pins the cascade edge where a deadline sits
// exactly on a higher-level span boundary: the timer lives in level 1+, is
// redistributed by the cascade on the tick its low digit rolls to zero, and
// must still fire on that very tick (cascade runs before level-0 firing).
func TestLevelBoundaryRollover(t *testing.T) {
	w := New(3, 8) // spans: 8, 64, 512
	var fired []uint64
	note := func() { fired = append(fired, w.Now()) }
	// Arm from a mid-wheel position, not tick 0, so deadline digits and
	// delay digits disagree.
	w.Advance(56)
	var onBoundary, pastBoundary, l2Boundary Timer
	w.Set(&onBoundary, 8, note)   // deadline 64: level-1 slot that cascades at 64
	w.Set(&pastBoundary, 9, note) // deadline 65: same cascade, fires one tick later
	w.Set(&l2Boundary, 456, note) // deadline 512: level-2 boundary
	w.Advance(456)
	want := []uint64{64, 65, 512}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
	if w.Armed() != 0 {
		t.Fatalf("armed = %d after all deadlines", w.Armed())
	}
}

// TestCancelDuringCascade: a timer fired on tick T cancels a second timer
// that the same tick's cascade just redistributed into the level-0 slot.
// The cancelled timer must not fire even though it was already unlinked and
// re-placed by the cascade machinery moments earlier.
func TestCancelDuringCascade(t *testing.T) {
	w := New(3, 8)
	var victim Timer
	victimFired := false
	var killer Timer
	// Both share deadline 64, so both sit in the level-1 slot the tick-64
	// cascade drains; insertion order puts killer first in the fire order.
	w.Set(&killer, 64, func() {
		if !w.Cancel(&victim) {
			t.Error("victim was not armed when killer fired")
		}
	})
	w.Set(&victim, 64, func() { victimFired = true })
	w.Advance(100)
	if victimFired {
		t.Fatal("timer cancelled during its own cascade tick still fired")
	}
	if w.Armed() != 0 {
		t.Fatalf("armed = %d, want 0", w.Armed())
	}
}

// TestRearmFromExpiryAcrossLevels: an expiry callback re-arms its own timer
// with a delay that lands in a higher level. Each generation must fire at
// the exact re-armed deadline, exercising fire -> place(level>0) ->
// cascade -> fire chains.
func TestRearmFromExpiryAcrossLevels(t *testing.T) {
	w := New(3, 8)
	var tm Timer
	var fired []uint64
	delays := []uint64{100, 7, 64, 3} // level 2, 0, 1, 0
	i := 0
	var rearm func()
	rearm = func() {
		fired = append(fired, w.Now())
		if i < len(delays) {
			d := delays[i]
			i++
			w.Set(&tm, d, rearm)
		}
	}
	w.Set(&tm, 5, rearm)
	w.Advance(300)
	want := []uint64{5, 105, 112, 176, 179}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for j := range want {
		if fired[j] != want[j] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

// TestZeroDelayChain: Set(delay=0) clamps to the next tick, including when
// re-armed from inside the expiry callback — a self-rearming zero-delay
// timer advances exactly one tick per generation and can never fire twice
// within one tick (which would loop forever in a tick-driven shell).
func TestZeroDelayChain(t *testing.T) {
	w := New(2, 8)
	var tm Timer
	var fired []uint64
	var rearm func()
	rearm = func() {
		fired = append(fired, w.Now())
		if len(fired) < 5 {
			w.Set(&tm, 0, rearm)
		}
	}
	w.Set(&tm, 0, rearm)
	if got := w.Advance(3); got != 3 {
		t.Fatalf("Advance(3) fired %d, want 3 (one per tick)", got)
	}
	w.Advance(10)
	want := []uint64{1, 2, 3, 4, 5}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for j := range want {
		if fired[j] != want[j] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

// TestZeroDelayAtBoundary arms zero-delay timers when now sits one tick
// before a cascade boundary, so the "next tick" is itself a rollover tick.
func TestZeroDelayAtBoundary(t *testing.T) {
	w := New(3, 8)
	w.Advance(63)
	var tm Timer
	var firedAt uint64
	w.Set(&tm, 0, func() { firedAt = w.Now() })
	w.Advance(1)
	if firedAt != 64 {
		t.Fatalf("zero-delay timer armed at 63 fired at %d, want 64", firedAt)
	}
}

func BenchmarkSetCancel(b *testing.B) {
	w := New(4, 256)
	var tm Timer
	for i := 0; i < b.N; i++ {
		w.Set(&tm, uint64(i%1000)+1, func() {})
		w.Cancel(&tm)
	}
}

func BenchmarkAdvanceIdle(b *testing.B) {
	w := New(4, 256)
	var tm Timer
	w.Set(&tm, 1<<30, func() {})
	b.ResetTimer()
	w.Advance(uint64(b.N))
}

// BenchmarkSetCancelLoaded measures arm/cancel with n other timers armed:
// the O(1) property the TCP shells rely on at 10k–100k connections.
func BenchmarkSetCancelLoaded(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			w := New(2, 256)
			load := make([]Timer, n)
			for i := range load {
				w.Set(&load[i], uint64(i%60000)+1, func() {})
			}
			var tm Timer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Set(&tm, uint64(i%1000)+1, func() {})
				w.Cancel(&tm)
			}
		})
	}
}
