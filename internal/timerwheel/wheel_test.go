package timerwheel

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFireAtDeadline(t *testing.T) {
	w := New(3, 16)
	var firedAt uint64
	var tm Timer
	w.Set(&tm, 5, func() { firedAt = w.Now() })
	w.Advance(10)
	if firedAt != 5 {
		t.Fatalf("fired at tick %d, want 5", firedAt)
	}
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
}

func TestZeroDelayFiresNextTick(t *testing.T) {
	w := New(2, 8)
	fired := false
	var tm Timer
	w.Set(&tm, 0, func() { fired = true })
	w.Advance(1)
	if !fired {
		t.Fatal("zero-delay timer did not fire on next tick")
	}
}

func TestCancel(t *testing.T) {
	w := New(3, 16)
	fired := false
	var tm Timer
	w.Set(&tm, 5, func() { fired = true })
	if !w.Cancel(&tm) {
		t.Fatal("cancel of armed timer returned false")
	}
	if w.Cancel(&tm) {
		t.Fatal("cancel of disarmed timer returned true")
	}
	w.Advance(20)
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if w.Armed() != 0 {
		t.Fatalf("armed = %d, want 0", w.Armed())
	}
}

func TestReschedule(t *testing.T) {
	w := New(3, 16)
	var firedAt []uint64
	var tm Timer
	w.Set(&tm, 3, func() { firedAt = append(firedAt, w.Now()) })
	w.Set(&tm, 9, func() { firedAt = append(firedAt, w.Now()) })
	w.Advance(20)
	if len(firedAt) != 1 || firedAt[0] != 9 {
		t.Fatalf("firedAt = %v, want [9]", firedAt)
	}
}

func TestCascadeAcrossLevels(t *testing.T) {
	w := New(3, 8) // level 0 spans 8 ticks, level 1 spans 64, level 2 spans 512
	deadlines := []uint64{1, 7, 8, 9, 63, 64, 65, 100, 511}
	var fired []uint64
	timers := make([]Timer, len(deadlines))
	for i, d := range deadlines {
		w.Set(&timers[i], d, func() { fired = append(fired, w.Now()) })
	}
	w.Advance(512)
	if len(fired) != len(deadlines) {
		t.Fatalf("fired %d timers, want %d (fired=%v)", len(fired), len(deadlines), fired)
	}
	want := append([]uint64(nil), deadlines...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", fired, want)
		}
	}
}

func TestRepeatedReuse(t *testing.T) {
	w := New(3, 16)
	var tm Timer
	count := 0
	var rearm func()
	rearm = func() {
		count++
		if count < 5 {
			w.Set(&tm, 2, rearm)
		}
	}
	w.Set(&tm, 2, rearm)
	w.Advance(100)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestClampBeyondRange(t *testing.T) {
	w := New(2, 8) // max span 64
	fired := false
	var tm Timer
	w.Set(&tm, 1000, func() { fired = true })
	w.Advance(64)
	if !fired {
		t.Fatal("out-of-range timer should clamp to max span and fire")
	}
}

// Property: timers with arbitrary delays fire exactly once, at or after
// their deadline tick, and in nondecreasing deadline order.
func TestFireOrderProperty(t *testing.T) {
	if err := quick.Check(func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := New(4, 16)
		count := int(n%50) + 1
		type rec struct{ deadline, firedAt uint64 }
		recs := make([]rec, count)
		timers := make([]Timer, count)
		var order []int
		for i := 0; i < count; i++ {
			d := uint64(rng.Intn(4000)) + 1
			recs[i].deadline = d
			i := i
			w.Set(&timers[i], d, func() {
				recs[i].firedAt = w.Now()
				order = append(order, i)
			})
		}
		w.Advance(5000)
		if len(order) != count {
			return false
		}
		prev := uint64(0)
		for _, i := range order {
			if recs[i].firedAt != recs[i].deadline {
				return false
			}
			if recs[i].deadline < prev {
				return false
			}
			prev = recs[i].deadline
		}
		return w.Armed() == 0
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset means exactly the uncancelled ones
// fire.
func TestCancelSubsetProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := New(3, 16)
		const count = 30
		timers := make([]Timer, count)
		fired := make([]bool, count)
		for i := 0; i < count; i++ {
			i := i
			w.Set(&timers[i], uint64(rng.Intn(500))+1, func() { fired[i] = true })
		}
		cancelled := make([]bool, count)
		for i := 0; i < count; i++ {
			if rng.Intn(2) == 0 {
				cancelled[i] = w.Cancel(&timers[i])
				if !cancelled[i] {
					return false // all were armed
				}
			}
		}
		w.Advance(600)
		for i := 0; i < count; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOpsCounting(t *testing.T) {
	w := New(2, 8)
	var tm Timer
	w.Set(&tm, 1, func() {})
	w.Cancel(&tm)
	w.Set(&tm, 1, func() {})
	w.Advance(2)
	// set + cancel + set + fire = 4
	if w.Ops() != 4 {
		t.Fatalf("ops = %d, want 4", w.Ops())
	}
}

func BenchmarkSetCancel(b *testing.B) {
	w := New(4, 256)
	var tm Timer
	for i := 0; i < b.N; i++ {
		w.Set(&tm, uint64(i%1000)+1, func() {})
		w.Cancel(&tm)
	}
}

func BenchmarkAdvanceIdle(b *testing.B) {
	w := New(4, 256)
	var tm Timer
	w.Set(&tm, 1<<30, func() {})
	b.ResetTimer()
	w.Advance(uint64(b.N))
}
