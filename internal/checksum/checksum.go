// Package checksum implements the Internet checksum (RFC 1071): the 16-bit
// ones-complement of the ones-complement sum of the data, with support for
// incremental composition across regions (headers, pseudo-headers, payload).
package checksum

import (
	"encoding/binary"
	"sync/atomic"
)

// bytesSummed counts every byte fed through Sum, process-wide. The paper's
// Table 3 accounting attributes checksum cost per byte; consumers snapshot
// this around a scenario to report it.
var bytesSummed atomic.Int64

// BytesSummed returns the cumulative number of bytes checksummed by Sum
// since process start. Process-global: subtract a baseline taken at scenario
// start for per-run figures.
func BytesSummed() int64 { return bytesSummed.Load() }

// Sum accumulates the ones-complement sum of b into the running partial sum
// acc. The partial sum is kept un-folded in a uint32; combine regions by
// chaining Sum calls and finish with Fold.
//
// Regions must be concatenated on even-byte boundaries for straight
// chaining, which holds for all uses in this stack (headers are even-sized).
//
// The sum is computed a word at a time: 8-byte loads, four per unrolled
// iteration, each folded 64->32 before accumulating in a uint64. Any
// grouping of the byte-pair additions is congruent to the reference sum
// modulo 2^16-1 (the checksum's modulus), so the returned partial folds to
// exactly the same checksum as the byte-pair loop (sumReference, retained
// below and fuzz-checked against this implementation).
func Sum(acc uint32, b []byte) uint32 {
	bytesSummed.Add(int64(len(b)))
	sum := uint64(acc)
	for len(b) >= 32 {
		v0 := binary.BigEndian.Uint64(b)
		v1 := binary.BigEndian.Uint64(b[8:])
		v2 := binary.BigEndian.Uint64(b[16:])
		v3 := binary.BigEndian.Uint64(b[24:])
		sum += (v0 >> 32) + (v0 & 0xffffffff)
		sum += (v1 >> 32) + (v1 & 0xffffffff)
		sum += (v2 >> 32) + (v2 & 0xffffffff)
		sum += (v3 >> 32) + (v3 & 0xffffffff)
		b = b[32:]
	}
	for len(b) >= 8 {
		v := binary.BigEndian.Uint64(b)
		sum += (v >> 32) + (v & 0xffffffff)
		b = b[8:]
	}
	if len(b) >= 4 {
		sum += uint64(binary.BigEndian.Uint32(b))
		b = b[4:]
	}
	if len(b) >= 2 {
		sum += uint64(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) > 0 {
		sum += uint64(b[0]) << 8
	}
	for sum>>32 != 0 {
		sum = (sum & 0xffffffff) + (sum >> 32)
	}
	return uint32(sum)
}

// sumReference is the plain byte-pair accumulation the optimized Sum must
// agree with (after Fold) on every input; it is exercised only by tests.
func sumReference(acc uint32, b []byte) uint32 {
	i := 0
	for ; i+1 < len(b); i += 2 {
		acc += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if i < len(b) {
		acc += uint32(b[i]) << 8
	}
	return acc
}

// Fold reduces a partial sum to the final 16-bit ones-complement checksum.
func Fold(acc uint32) uint16 {
	for acc>>16 != 0 {
		acc = (acc & 0xffff) + acc>>16
	}
	return ^uint16(acc)
}

// Checksum computes the checksum of a single region.
func Checksum(b []byte) uint16 { return Fold(Sum(0, b)) }

// Verify reports whether a region that embeds its own checksum field sums to
// the all-ones pattern (i.e. checksums to zero), the standard receive check.
func Verify(b []byte) bool { return Fold(Sum(0, b)) == 0 }

// PseudoHeader accumulates the TCP/UDP pseudo-header (RFC 793 §3.1): source
// and destination IPv4 addresses, the protocol number, and the transport
// segment length.
func PseudoHeader(acc uint32, src, dst [4]byte, proto uint8, length int) uint32 {
	acc += uint32(src[0])<<8 | uint32(src[1])
	acc += uint32(src[2])<<8 | uint32(src[3])
	acc += uint32(dst[0])<<8 | uint32(dst[1])
	acc += uint32(dst[2])<<8 | uint32(dst[3])
	acc += uint32(proto)
	acc += uint32(length)
	return acc
}

// Update incrementally adjusts an existing checksum old for a 16-bit field
// change from oldVal to newVal (RFC 1624 eqn. 3), avoiding recomputation.
// Used when rewriting single header fields (e.g. TTL+checksum updates).
func Update(old uint16, oldVal, newVal uint16) uint16 {
	// HC' = ~(~HC + ~m + m')
	acc := uint32(^old&0xffff) + uint32(^oldVal&0xffff) + uint32(newVal)
	for acc>>16 != 0 {
		acc = (acc & 0xffff) + acc>>16
	}
	return ^uint16(acc)
}
