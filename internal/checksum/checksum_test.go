package checksum

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refChecksum is an independent straightforward reference implementation
// used to cross-check the production one.
func refChecksum(b []byte) uint16 {
	var sum uint64
	for i := 0; i < len(b); i += 2 {
		if i+1 < len(b) {
			sum += uint64(b[i])<<8 + uint64(b[i+1])
		} else {
			sum += uint64(b[i]) << 8
		}
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

func TestKnownVectors(t *testing.T) {
	// RFC 1071 §3 worked example: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2,
	// checksum ^0xddf2 = 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != 0x220d {
		t.Fatalf("Checksum = %#04x, want 0x220d", got)
	}
	if got := Checksum(nil); got != 0xffff {
		t.Fatalf("Checksum(nil) = %#04x, want 0xffff", got)
	}
	// A classic IPv4 header example (from RFC 1071 erratum community
	// vector): verify a header embedding its checksum verifies.
	hdr := []byte{
		0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
		0x40, 0x11, 0xb8, 0x61, 0xc0, 0xa8, 0x00, 0x01,
		0xc0, 0xa8, 0x00, 0xc7,
	}
	if !Verify(hdr) {
		t.Fatal("known-good IPv4 header failed Verify")
	}
}

func TestOddLength(t *testing.T) {
	b := []byte{0x12, 0x34, 0x56}
	if got, want := Checksum(b), refChecksum(b); got != want {
		t.Fatalf("odd-length checksum = %#04x, want %#04x", got, want)
	}
}

func TestMatchesReference(t *testing.T) {
	if err := quick.Check(func(b []byte) bool {
		return Checksum(b) == refChecksum(b)
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: embedding the computed checksum makes the region verify, for
// even-length regions with a dedicated checksum field.
func TestEmbedVerifyProperty(t *testing.T) {
	if err := quick.Check(func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 2 + 2*int(n%64) // even, >= 2
		b := make([]byte, size)
		rng.Read(b)
		b[0], b[1] = 0, 0 // checksum field at offset 0
		ck := Checksum(b)
		b[0], b[1] = byte(ck>>8), byte(ck)
		return Verify(b)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: chained Sum over even-boundary splits equals Sum over the whole.
func TestChainingProperty(t *testing.T) {
	if err := quick.Check(func(b []byte, cut uint8) bool {
		k := int(cut) % (len(b) + 1)
		k &^= 1 // even boundary
		whole := Fold(Sum(0, b))
		split := Fold(Sum(Sum(0, b[:k]), b[k:]))
		return whole == split
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: RFC 1624 incremental update equals recomputation when a 16-bit
// field changes.
func TestIncrementalUpdateProperty(t *testing.T) {
	if err := quick.Check(func(seed int64, newVal uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		b := make([]byte, 20)
		rng.Read(b)
		b[10], b[11] = 0, 0
		ck := Checksum(b)
		b[10], b[11] = byte(ck>>8), byte(ck)

		oldVal := uint16(b[2])<<8 | uint16(b[3])
		updated := Update(ck, oldVal, newVal)

		b[2], b[3] = byte(newVal>>8), byte(newVal)
		b[10], b[11] = 0, 0
		recomputed := Checksum(b)
		// Ones-complement arithmetic has two representations of zero
		// (0x0000 and 0xffff); they are equivalent as checksums.
		eq := updated == recomputed ||
			(updated == 0xffff && recomputed == 0) || (updated == 0 && recomputed == 0xffff)
		return eq
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPseudoHeader(t *testing.T) {
	src := [4]byte{192, 168, 0, 1}
	dst := [4]byte{10, 0, 0, 2}
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	acc := PseudoHeader(0, src, dst, 6, len(payload))
	got := Fold(Sum(acc, payload))

	// Reference: serialize the pseudo-header explicitly.
	ph := []byte{
		192, 168, 0, 1,
		10, 0, 0, 2,
		0, 6,
		0, byte(len(payload)),
	}
	want := refChecksum(append(ph, payload...))
	if got != want {
		t.Fatalf("pseudo-header checksum = %#04x, want %#04x", got, want)
	}
}
