package checksum

import (
	"math/rand"
	"testing"
)

// TestFastSumEquivalence drives the word-at-a-time Sum against the byte-pair
// reference across lengths that exercise every tail combination of the
// unrolled loop (0..64 covers the 32/8/4/2/1-byte paths and their splits),
// plus large random regions, odd/even alignment offsets into a shared
// backing array, and nonzero starting accumulators.
func TestFastSumEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	backing := make([]byte, 8192)
	rng.Read(backing)
	accs := []uint32{0, 1, 0xffff, 0x12345, 0xffffffff >> 1}
	for length := 0; length <= 64; length++ {
		for off := 0; off < 4; off++ {
			b := backing[off : off+length]
			for _, acc := range accs {
				got := Fold(Sum(acc, b))
				want := Fold(sumReference(acc, b))
				if got != want {
					t.Fatalf("len=%d off=%d acc=%#x: fast %#x, reference %#x", length, off, acc, got, want)
				}
			}
		}
	}
	for i := 0; i < 2000; i++ {
		off := rng.Intn(64)
		length := rng.Intn(len(backing) - off)
		acc := rng.Uint32() >> 1 // headroom so the reference cannot overflow
		b := backing[off : off+length]
		if got, want := Fold(Sum(acc, b)), Fold(sumReference(acc, b)); got != want {
			t.Fatalf("random case len=%d off=%d acc=%#x: fast %#x, reference %#x", length, off, acc, got, want)
		}
	}
}

// TestFastSumChaining verifies a region summed in arbitrary even-boundary
// splits folds identically to summing it whole — the property the stack
// relies on when chaining pseudo-header, header, and payload regions.
func TestFastSumChaining(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := make([]byte, 3000)
	rng.Read(b)
	whole := Fold(Sum(0, b))
	for i := 0; i < 200; i++ {
		cut := rng.Intn(len(b)/2) * 2 // even boundary
		split := Fold(Sum(Sum(0, b[:cut]), b[cut:]))
		if split != whole {
			t.Fatalf("split at %d: %#x, whole %#x", cut, split, whole)
		}
	}
}

// FuzzSumEquivalence is the continuous version of the equivalence check:
// arbitrary bytes and starting accumulator must fold identically through the
// optimized and reference summations, and Verify must agree with a
// reference recomputation.
func FuzzSumEquivalence(f *testing.F) {
	f.Add(uint32(0), []byte{})
	f.Add(uint32(0), []byte{0xff})
	f.Add(uint32(0xffff), []byte{0x00, 0x01, 0x02})
	f.Add(uint32(1), make([]byte, 100))
	f.Fuzz(func(t *testing.T, acc uint32, b []byte) {
		acc &= 0x7fffffff // headroom so the reference loop cannot overflow
		got := Fold(Sum(acc, b))
		want := Fold(sumReference(acc, b))
		if got != want {
			t.Fatalf("acc=%#x len=%d: fast %#x, reference %#x", acc, len(b), got, want)
		}
		if Verify(b) != (Fold(sumReference(0, b)) == 0) {
			t.Fatalf("Verify disagrees with reference for len=%d", len(b))
		}
	})
}
