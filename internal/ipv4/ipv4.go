// Package ipv4 implements the IPv4 layer used by all three protocol
// organizations: byte-exact header encode/decode with header checksums,
// fragmentation and hole-based reassembly, and identifier generation. As in
// the paper's library, gateway (forwarding) functions are not implemented:
// "our IP library does not implement the functions required for handling
// gateway traffic."
//
// The package is pure protocol logic: no time, no blocking, no costs. The
// organization shells drive it and charge the cost model.
package ipv4

import (
	"encoding/binary"
	"fmt"

	"ulp/internal/checksum"
	"ulp/internal/pkt"
)

// Addr is an IPv4 address.
type Addr [4]byte

// String formats the address in dotted-quad form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IsZero reports whether a is the unspecified address.
func (a Addr) IsZero() bool { return a == Addr{} }

// SameSubnet reports whether two addresses share the /24 prefix — the
// simulated networks are single segments, so this is the whole routing
// decision ("no gateway traffic").
func SameSubnet(a, b Addr) bool {
	return a[0] == b[0] && a[1] == b[1] && a[2] == b[2]
}

// Protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// HeaderLen is the size of a header without options; this stack never emits
// options but parses past them on receive.
const HeaderLen = 20

// Flag bits within the flags/fragment-offset field.
const (
	FlagDF = 0x4000 // don't fragment
	FlagMF = 0x2000 // more fragments
)

// MaxTotalLen is the largest datagram (16-bit total length).
const MaxTotalLen = 65535

// Header is a decoded IPv4 header.
type Header struct {
	TOS      uint8
	TotalLen int // header + payload, filled by Decode; ignored by Encode
	ID       uint16
	DF, MF   bool
	FragOff  int // byte offset (multiple of 8)
	TTL      uint8
	Proto    uint8
	Src, Dst Addr
	// Options holds raw option bytes on decode (padded to 32-bit multiple).
	Options []byte
}

// HdrLen returns the encoded header length including options.
func (h *Header) HdrLen() int { return HeaderLen + len(h.Options) }

// Encode prepends the header to the payload in b and fills in the header
// checksum. TotalLen is computed from the payload length.
func (h *Header) Encode(b *pkt.Buf) {
	if len(h.Options)%4 != 0 {
		panic("ipv4: options not 32-bit aligned")
	}
	hl := h.HdrLen()
	total := hl + b.Len()
	if total > MaxTotalLen {
		panic(fmt.Sprintf("ipv4: datagram too large (%d)", total))
	}
	w := b.Prepend(hl)
	w[0] = 0x40 | uint8(hl/4)
	w[1] = h.TOS
	binary.BigEndian.PutUint16(w[2:], uint16(total))
	binary.BigEndian.PutUint16(w[4:], h.ID)
	ff := uint16(h.FragOff / 8)
	if h.DF {
		ff |= FlagDF
	}
	if h.MF {
		ff |= FlagMF
	}
	binary.BigEndian.PutUint16(w[6:], ff)
	w[8] = h.TTL
	w[9] = h.Proto
	w[10], w[11] = 0, 0
	copy(w[12:16], h.Src[:])
	copy(w[16:20], h.Dst[:])
	copy(w[20:], h.Options)
	ck := checksum.Checksum(w[:hl])
	binary.BigEndian.PutUint16(w[10:], ck)
}

// Decode strips and validates a header from b, trimming the payload to the
// datagram's total length (link layers may have padded the frame).
func Decode(b *pkt.Buf) (Header, error) {
	if b.Len() < HeaderLen {
		return Header{}, fmt.Errorf("ipv4: short packet (%d bytes)", b.Len())
	}
	w := b.Bytes()
	if w[0]>>4 != 4 {
		return Header{}, fmt.Errorf("ipv4: bad version %d", w[0]>>4)
	}
	hl := int(w[0]&0x0f) * 4
	if hl < HeaderLen || hl > b.Len() {
		return Header{}, fmt.Errorf("ipv4: bad header length %d", hl)
	}
	if !checksum.Verify(w[:hl]) {
		return Header{}, fmt.Errorf("ipv4: header checksum mismatch")
	}
	total := int(binary.BigEndian.Uint16(w[2:]))
	if total < hl || total > b.Len() {
		return Header{}, fmt.Errorf("ipv4: bad total length %d (frame %d)", total, b.Len())
	}
	var h Header
	h.TOS = w[1]
	h.TotalLen = total
	h.ID = binary.BigEndian.Uint16(w[4:])
	ff := binary.BigEndian.Uint16(w[6:])
	h.DF = ff&FlagDF != 0
	h.MF = ff&FlagMF != 0
	h.FragOff = int(ff&0x1fff) * 8
	h.TTL = w[8]
	h.Proto = w[9]
	copy(h.Src[:], w[12:16])
	copy(h.Dst[:], w[16:20])
	if hl > HeaderLen {
		h.Options = append([]byte(nil), w[HeaderLen:hl]...)
	}
	b.Trim(total)
	b.Strip(hl)
	return h, nil
}

// Fragment splits the payload in b into link-MTU-sized fragments, each with
// a full IP header derived from h. If the datagram fits, a single packet is
// returned. Fragmentation honours DF by returning an error.
//
// Each returned buffer has headroom bytes of headroom below the IP header
// for the link layer.
func Fragment(h Header, b *pkt.Buf, mtu, headroom int) ([]*pkt.Buf, error) {
	payload := b.Bytes()
	maxSeg := mtu - h.HdrLen()
	if maxSeg <= 0 {
		return nil, fmt.Errorf("ipv4: mtu %d too small for header", mtu)
	}
	if len(payload) <= maxSeg {
		fh := h
		fh.MF = false
		fh.FragOff = 0
		out := pkt.FromBytes(headroom+h.HdrLen(), payload)
		fh.Encode(out)
		return []*pkt.Buf{out}, nil
	}
	if h.DF {
		return nil, fmt.Errorf("ipv4: fragmentation needed but DF set (len %d, mtu %d)", len(payload), mtu)
	}
	// Fragment payload sizes must be multiples of 8 except the last.
	seg := maxSeg &^ 7
	var out []*pkt.Buf
	for off := 0; off < len(payload); off += seg {
		end := off + seg
		last := false
		if end >= len(payload) {
			end = len(payload)
			last = true
		}
		fh := h
		fh.FragOff = off
		fh.MF = !last
		fb := pkt.FromBytes(headroom+h.HdrLen(), payload[off:end])
		fh.Encode(fb)
		out = append(out, fb)
	}
	return out, nil
}
