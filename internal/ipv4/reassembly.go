package ipv4

import (
	"fmt"
	"sort"
)

// reasmKey identifies a datagram being reassembled (RFC 791: the four-tuple
// plus identifier).
type reasmKey struct {
	src, dst Addr
	proto    uint8
	id       uint16
}

// fragment is one received piece.
type fragment struct {
	off  int
	data []byte
	last bool
}

// reasmEntry accumulates fragments for one datagram.
type reasmEntry struct {
	frags    []fragment
	totalLen int // payload length once the last fragment is seen; -1 until then
	deadline uint64
	hdr      Header
}

// Reassembler reconstructs fragmented datagrams. It is pure: the caller
// supplies a coarse clock (any monotone counter) for timeout expiry, and
// calls Expire periodically (the organization shells use their TCP
// slow-timeout tick).
type Reassembler struct {
	entries map[reasmKey]*reasmEntry
	ttl     uint64 // entry lifetime in clock units

	// Stats
	Completed, TimedOut int
}

// NewReassembler creates a reassembler whose partial datagrams expire ttl
// clock units after the first fragment arrives.
func NewReassembler(ttl uint64) *Reassembler {
	return &Reassembler{entries: make(map[reasmKey]*reasmEntry), ttl: ttl}
}

// Pending returns the number of datagrams awaiting completion.
func (r *Reassembler) Pending() int { return len(r.entries) }

// Insert adds a fragment. When the datagram completes, it returns the
// header (of the first fragment, with fragmentation fields cleared) and the
// full payload.
func (r *Reassembler) Insert(now uint64, h Header, payload []byte) (Header, []byte, bool) {
	key := reasmKey{h.Src, h.Dst, h.Proto, h.ID}
	e := r.entries[key]
	if e == nil {
		e = &reasmEntry{totalLen: -1, deadline: now + r.ttl}
		r.entries[key] = e
	}
	if h.FragOff == 0 {
		e.hdr = h
	}
	e.frags = append(e.frags, fragment{off: h.FragOff, data: append([]byte(nil), payload...), last: !h.MF})
	if !h.MF {
		e.totalLen = h.FragOff + len(payload)
	}
	if e.totalLen < 0 {
		return Header{}, nil, false
	}
	// Check coverage [0, totalLen) by the received fragments.
	frags := append([]fragment(nil), e.frags...)
	sort.Slice(frags, func(i, j int) bool { return frags[i].off < frags[j].off })
	covered := 0
	for _, f := range frags {
		if f.off > covered {
			return Header{}, nil, false // hole
		}
		if end := f.off + len(f.data); end > covered {
			covered = end
		}
	}
	if covered < e.totalLen {
		return Header{}, nil, false
	}
	out := make([]byte, e.totalLen)
	for _, f := range frags {
		end := f.off + len(f.data)
		if end > e.totalLen {
			end = e.totalLen
			f.data = f.data[:end-f.off]
		}
		copy(out[f.off:], f.data)
	}
	hdr := e.hdr
	hdr.MF = false
	hdr.FragOff = 0
	hdr.TotalLen = hdr.HdrLen() + e.totalLen
	delete(r.entries, key)
	r.Completed++
	return hdr, out, true
}

// Expire discards partial datagrams whose deadline has passed.
func (r *Reassembler) Expire(now uint64) {
	for k, e := range r.entries {
		if now >= e.deadline {
			delete(r.entries, k)
			r.TimedOut++
		}
	}
}

// IDGen produces datagram identifiers, one sequence per sender as in BSD.
type IDGen struct{ next uint16 }

// Next returns the next identifier.
func (g *IDGen) Next() uint16 {
	g.next++
	return g.next
}

// String renders a header compactly for diagnostics.
func (h Header) String() string {
	frag := ""
	if h.MF || h.FragOff > 0 {
		frag = fmt.Sprintf(" frag(off=%d,mf=%v)", h.FragOff, h.MF)
	}
	return fmt.Sprintf("ipv4 %s->%s proto=%d id=%d len=%d%s", h.Src, h.Dst, h.Proto, h.ID, h.TotalLen, frag)
}
