package ipv4

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ulp/internal/pkt"
)

var (
	srcA = Addr{10, 0, 0, 1}
	dstA = Addr{10, 0, 0, 2}
)

func TestHeaderGolden(t *testing.T) {
	h := Header{
		TOS: 0, ID: 0x1c46, DF: true, TTL: 64, Proto: ProtoTCP,
		Src: Addr{172, 16, 10, 99}, Dst: Addr{172, 16, 10, 12},
	}
	b := pkt.FromBytes(HeaderLen, make([]byte, 20))
	h.Encode(b)
	w := b.Bytes()
	// Verify fixed fields.
	if w[0] != 0x45 || w[8] != 64 || w[9] != 6 {
		t.Fatalf("header bytes = %x", w[:HeaderLen])
	}
	if w[6] != 0x40 || w[7] != 0x00 {
		t.Fatalf("flags/frag = %x%x, want DF", w[6], w[7])
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != h.ID || !got.DF || got.TTL != 64 || got.Proto != 6 || got.Src != h.Src || got.Dst != h.Dst {
		t.Fatalf("decoded %+v", got)
	}
	if got.TotalLen != 40 {
		t.Fatalf("total len = %d, want 40", got.TotalLen)
	}
}

func TestDecodeRejectsCorruptChecksum(t *testing.T) {
	h := Header{TTL: 64, Proto: ProtoTCP, Src: srcA, Dst: dstA}
	b := pkt.FromBytes(HeaderLen, []byte("payload"))
	h.Encode(b)
	b.Bytes()[8] ^= 0xff // clobber TTL
	if _, err := Decode(b); err == nil {
		t.Fatal("corrupt header decoded successfully")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := map[string]func() *pkt.Buf{
		"short": func() *pkt.Buf { return pkt.FromBytes(0, make([]byte, 10)) },
		"bad version": func() *pkt.Buf {
			h := Header{TTL: 1, Proto: 6, Src: srcA, Dst: dstA}
			b := pkt.FromBytes(HeaderLen, nil)
			h.Encode(b)
			b.Bytes()[0] = 0x65
			return b
		},
		"bad ihl": func() *pkt.Buf {
			h := Header{TTL: 1, Proto: 6, Src: srcA, Dst: dstA}
			b := pkt.FromBytes(HeaderLen, nil)
			h.Encode(b)
			b.Bytes()[0] = 0x44
			return b
		},
		"total exceeds frame": func() *pkt.Buf {
			h := Header{TTL: 1, Proto: 6, Src: srcA, Dst: dstA}
			b := pkt.FromBytes(HeaderLen, nil)
			h.Encode(b)
			b.Bytes()[3] = 0xff // huge total length; checksum now also wrong,
			return b            // either rejection is correct
		},
	}
	for name, mk := range cases {
		if _, err := Decode(mk()); err == nil {
			t.Errorf("%s: decoded successfully", name)
		}
	}
}

func TestDecodeTrimsLinkPadding(t *testing.T) {
	h := Header{TTL: 64, Proto: ProtoUDP, Src: srcA, Dst: dstA}
	b := pkt.FromBytes(HeaderLen, []byte("abc"))
	h.Encode(b)
	// Simulate link minimum-size padding.
	padded := pkt.FromBytes(0, append(append([]byte(nil), b.Bytes()...), make([]byte, 30)...))
	got, err := Decode(padded)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalLen != HeaderLen+3 || !bytes.Equal(padded.Bytes(), []byte("abc")) {
		t.Fatalf("payload = %q", padded.Bytes())
	}
}

func TestOptionsRoundTrip(t *testing.T) {
	h := Header{TTL: 9, Proto: 6, Src: srcA, Dst: dstA, Options: []byte{1, 1, 1, 1}}
	b := pkt.FromBytes(h.HdrLen(), []byte("xy"))
	h.Encode(b)
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Options, []byte{1, 1, 1, 1}) {
		t.Fatalf("options = %x", got.Options)
	}
}

func TestUnalignedOptionsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unaligned options")
		}
	}()
	h := Header{Options: []byte{1, 2}}
	h.Encode(pkt.FromBytes(64, nil))
}

func TestFragmentSingleWhenFits(t *testing.T) {
	h := Header{TTL: 64, Proto: ProtoUDP, Src: srcA, Dst: dstA, ID: 7}
	frags, err := Fragment(h, pkt.FromBytes(0, make([]byte, 100)), 1500, 14)
	if err != nil || len(frags) != 1 {
		t.Fatalf("frags = %d, err = %v", len(frags), err)
	}
	if frags[0].Headroom() != 14 {
		t.Fatalf("headroom = %d, want 14 below the IP header", frags[0].Headroom())
	}
	got, err := Decode(frags[0])
	if err != nil || got.MF || got.FragOff != 0 {
		t.Fatalf("single fragment header: %+v err=%v", got, err)
	}
}

func TestFragmentHonoursDF(t *testing.T) {
	h := Header{TTL: 64, Proto: ProtoUDP, Src: srcA, Dst: dstA, DF: true}
	if _, err := Fragment(h, pkt.FromBytes(0, make([]byte, 3000)), 1500, 0); err == nil {
		t.Fatal("expected DF error")
	}
}

func TestFragmentOffsetsAligned(t *testing.T) {
	h := Header{TTL: 64, Proto: ProtoUDP, Src: srcA, Dst: dstA, ID: 3}
	frags, err := Fragment(h, pkt.FromBytes(0, make([]byte, 4000)), 1500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 3 {
		t.Fatalf("fragments = %d, want 3", len(frags))
	}
	for i, f := range frags {
		fh, err := Decode(f)
		if err != nil {
			t.Fatal(err)
		}
		if fh.FragOff%8 != 0 {
			t.Fatalf("fragment %d offset %d not 8-aligned", i, fh.FragOff)
		}
		if (i < len(frags)-1) != fh.MF {
			t.Fatalf("fragment %d MF = %v", i, fh.MF)
		}
	}
}

func TestReassemblyInOrder(t *testing.T) {
	testReassembly(t, func(n int, perm []int) []int { return perm })
}

func TestReassemblyOutOfOrder(t *testing.T) {
	testReassembly(t, func(n int, perm []int) []int {
		for i := range perm {
			perm[i] = n - 1 - i
		}
		return perm
	})
}

func testReassembly(t *testing.T, order func(int, []int) []int) {
	t.Helper()
	payload := make([]byte, 5000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	h := Header{TTL: 64, Proto: ProtoUDP, Src: srcA, Dst: dstA, ID: 42}
	frags, err := Fragment(h, pkt.FromBytes(0, payload), 1500, 0)
	if err != nil {
		t.Fatal(err)
	}
	perm := make([]int, len(frags))
	for i := range perm {
		perm[i] = i
	}
	perm = order(len(frags), perm)
	r := NewReassembler(10)
	done := false
	for _, idx := range perm {
		fh, err := Decode(frags[idx])
		if err != nil {
			t.Fatal(err)
		}
		hdr, data, ok := r.Insert(0, fh, frags[idx].Bytes())
		if ok {
			if done {
				t.Fatal("completed twice")
			}
			done = true
			if !bytes.Equal(data, payload) {
				t.Fatal("reassembled payload mismatch")
			}
			if hdr.MF || hdr.FragOff != 0 || hdr.ID != 42 {
				t.Fatalf("reassembled header %+v", hdr)
			}
		}
	}
	if !done {
		t.Fatal("never completed")
	}
	if r.Pending() != 0 {
		t.Fatalf("pending = %d", r.Pending())
	}
}

func TestReassemblyTimeout(t *testing.T) {
	h := Header{TTL: 64, Proto: ProtoUDP, Src: srcA, Dst: dstA, ID: 9}
	frags, _ := Fragment(h, pkt.FromBytes(0, make([]byte, 3000)), 1500, 0)
	r := NewReassembler(5)
	fh, _ := Decode(frags[0])
	r.Insert(100, fh, frags[0].Bytes())
	r.Expire(104)
	if r.Pending() != 1 {
		t.Fatal("expired too early")
	}
	r.Expire(105)
	if r.Pending() != 0 || r.TimedOut != 1 {
		t.Fatalf("pending=%d timedout=%d", r.Pending(), r.TimedOut)
	}
}

func TestReassemblyInterleavedDatagrams(t *testing.T) {
	r := NewReassembler(100)
	mk := func(id uint16, fill byte) ([]*pkt.Buf, []byte) {
		payload := bytes.Repeat([]byte{fill}, 3000)
		h := Header{TTL: 64, Proto: ProtoUDP, Src: srcA, Dst: dstA, ID: id}
		frags, _ := Fragment(h, pkt.FromBytes(0, payload), 1500, 0)
		return frags, payload
	}
	fa, pa := mk(1, 0xaa)
	fb, pb := mk(2, 0xbb)
	var gotA, gotB []byte
	seq := []*pkt.Buf{fa[0], fb[0], fb[1], fa[1], fa[2], fb[2]}
	for _, f := range seq {
		fh, err := Decode(f)
		if err != nil {
			t.Fatal(err)
		}
		if hdr, data, ok := r.Insert(0, fh, f.Bytes()); ok {
			switch hdr.ID {
			case 1:
				gotA = data
			case 2:
				gotB = data
			}
		}
	}
	if !bytes.Equal(gotA, pa) || !bytes.Equal(gotB, pb) {
		t.Fatal("interleaved reassembly mismatch")
	}
}

// Property: header encode/decode round-trips.
func TestHeaderRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(tos uint8, id uint16, df, mf bool, fragOff uint16, ttl, proto uint8, src, dst [4]byte, n uint8) bool {
		h := Header{
			TOS: tos, ID: id, DF: df, MF: mf, FragOff: int(fragOff%1024) * 8,
			TTL: ttl, Proto: proto, Src: src, Dst: dst,
		}
		b := pkt.FromBytes(HeaderLen, make([]byte, int(n)))
		h.Encode(b)
		got, err := Decode(b)
		if err != nil {
			return false
		}
		h.TotalLen = HeaderLen + int(n)
		return got.TOS == h.TOS && got.ID == h.ID && got.DF == h.DF && got.MF == h.MF &&
			got.FragOff == h.FragOff && got.TTL == h.TTL && got.Proto == h.Proto &&
			got.Src == h.Src && got.Dst == h.Dst && got.TotalLen == h.TotalLen
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: fragment + reassemble (random order) restores the payload for
// any size and MTU.
func TestFragmentReassembleProperty(t *testing.T) {
	if err := quick.Check(func(seed int64, sz uint16, mtuSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(sz)%20000 + 1
		mtu := []int{576, 1500, 4096}[int(mtuSel)%3]
		payload := make([]byte, size)
		rng.Read(payload)
		h := Header{TTL: 64, Proto: ProtoUDP, Src: srcA, Dst: dstA, ID: uint16(seed)}
		frags, err := Fragment(h, pkt.FromBytes(0, payload), mtu, 0)
		if err != nil {
			return false
		}
		rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
		r := NewReassembler(10)
		for i, f := range frags {
			fh, err := Decode(f)
			if err != nil {
				return false
			}
			_, data, ok := r.Insert(0, fh, f.Bytes())
			if ok {
				return i == len(frags)-1 && bytes.Equal(data, payload)
			}
		}
		return false
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestReassemblyDuplicateFragments(t *testing.T) {
	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i)
	}
	h := Header{TTL: 64, Proto: ProtoUDP, Src: srcA, Dst: dstA, ID: 5}
	frags, _ := Fragment(h, pkt.FromBytes(0, payload), 1500, 0)
	r := NewReassembler(10)
	var got []byte
	seq := []*pkt.Buf{frags[0].Clone(), frags[0], frags[1].Clone(), frags[1], frags[2].Clone(), frags[2]}
	for _, f := range seq {
		fh, err := Decode(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, data, ok := r.Insert(0, fh, f.Bytes()); ok {
			got = data
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("duplicate fragments broke reassembly")
	}
}

func TestAddrHelpers(t *testing.T) {
	if (Addr{10, 1, 2, 3}).String() != "10.1.2.3" {
		t.Fatal("String broken")
	}
	if !(Addr{}).IsZero() || (Addr{1}).IsZero() {
		t.Fatal("IsZero broken")
	}
	if !SameSubnet(Addr{10, 0, 0, 1}, Addr{10, 0, 0, 200}) || SameSubnet(Addr{10, 0, 0, 1}, Addr{10, 0, 1, 1}) {
		t.Fatal("SameSubnet broken")
	}
}

func TestIDGen(t *testing.T) {
	var g IDGen
	a, b := g.Next(), g.Next()
	if a == b {
		t.Fatal("IDs not unique")
	}
}
