package explore

// Library returns the base scenario set. The scripts are chosen so that,
// together with their built-in fault placements, every edge of the legal
// transition relation in internal/conform is exercised: the full handshake
// and orderly release, simultaneous open and close, resets in every
// synchronized state, user aborts in every state, and retransmission
// give-up (timer death) wherever unacked sequence space can be outstanding.
// The explorer's mutation loop then perturbs these scripts with additional
// fault schedules looking for violations, so the library doubles as the
// seed corpus.
//
// Step timing recap: frames take 1 step (100 ms) per hop; the slow timer
// runs every 5 steps; TIME_WAIT in most scenarios is shortened to 10 slow
// ticks (50 steps) so the 2*MSL release is observed within the budget.
func Library() []Scenario {
	var lib []Scenario
	add := func(s Scenario) { lib = append(lib, s) }

	// Standard openers shared by most scripts.
	open := []Op{
		{Step: 0, Side: B, Kind: OpOpenListen},
		{Step: 0, Side: A, Kind: OpOpenActive},
	}
	withOpen := func(ops ...Op) []Op { return append(append([]Op{}, open...), ops...) }

	// Full lifecycle: active open, data, orderly release initiated by A.
	// A: SYN_SENT->EST->FIN_WAIT_1->FIN_WAIT_2->TIME_WAIT->CLOSED(timer)
	// B: LISTEN->SYN_RCVD->EST->CLOSE_WAIT->LAST_ACK->CLOSED(segment)
	add(Scenario{
		Name: "handshake-close", TimeWaitTicks: 10, MaxSteps: 200,
		Ops: withOpen(
			Op{Step: 6, Side: A, Kind: OpWrite, Arg: 1500},
			Op{Step: 20, Side: A, Kind: OpClose},
			Op{Step: 30, Side: B, Kind: OpClose},
		),
	})

	// Simultaneous open, then simultaneous close: both ends are clients.
	// Both: SYN_SENT->SYN_RCVD->EST->FIN_WAIT_1->CLOSING->TIME_WAIT->CLOSED
	add(Scenario{
		Name: "simultaneous-open-close", TimeWaitTicks: 10, MaxSteps: 250,
		Ops: []Op{
			{Step: 0, Side: A, Kind: OpOpenActive},
			{Step: 0, Side: B, Kind: OpOpenActive},
			{Step: 20, Side: A, Kind: OpClose},
			{Step: 20, Side: B, Kind: OpClose},
		},
	})

	// Local closes with nothing in flight: LISTEN->CLOSED and
	// SYN_SENT->CLOSED by user call.
	add(Scenario{
		Name: "close-before-establish", MaxSteps: 40,
		Ops: []Op{
			{Step: 0, Side: B, Kind: OpOpenListen},
			{Step: 0, Side: A, Kind: OpCut, Arg: DirBoth},
			{Step: 0, Side: A, Kind: OpOpenActive},
			{Step: 4, Side: B, Kind: OpClose},
			{Step: 6, Side: A, Kind: OpClose},
		},
	})

	// Passive end closes while stranded in SYN_RCVD (handshake ACK cut),
	// then retransmits its FIN into the void until the timer gives up:
	// SYN_RCVD->FIN_WAIT_1 (user), FIN_WAIT_1->CLOSED (timer); A's data
	// retransmissions also die: ESTABLISHED->CLOSED (timer).
	add(Scenario{
		Name: "close-synrcvd-giveup",
		Ops: withOpen(
			Op{Step: 2, Side: A, Kind: OpCut, Arg: DirBoth},
			Op{Step: 4, Side: A, Kind: OpWrite, Arg: 600},
			Op{Step: 10, Side: B, Kind: OpClose},
		),
	})

	// Abort pairs: the aborting side takes the user edge to CLOSED and its
	// RST lands the peer on the reset edge.
	add(Scenario{ // EST->CLOSED (user) + EST->CLOSED (reset)
		Name: "abort-established", MaxSteps: 60,
		Ops: withOpen(
			Op{Step: 6, Side: A, Kind: OpWrite, Arg: 600},
			Op{Step: 14, Side: A, Kind: OpAbort},
		),
	})
	add(Scenario{ // SYN_RCVD->CLOSED (user)
		Name: "abort-synrcvd", MaxSteps: 60,
		Ops: withOpen(
			Op{Step: 2, Side: A, Kind: OpCut, Arg: DirBoth},
			Op{Step: 10, Side: B, Kind: OpAbort},
		),
	})
	add(Scenario{ // FIN_WAIT_1->CLOSED (user) + CLOSE_WAIT->CLOSED (reset)
		Name: "abort-finwait1", MaxSteps: 80,
		Ops: withOpen(
			// Sever B->A so the FIN's ACK never returns; A stays FIN_WAIT_1.
			Op{Step: 10, Side: A, Kind: OpCut, Arg: DirBA},
			Op{Step: 11, Side: A, Kind: OpClose},
			Op{Step: 20, Side: A, Kind: OpAbort},
		),
	})
	add(Scenario{ // FIN_WAIT_2->CLOSED (user)
		Name: "abort-finwait2", MaxSteps: 80,
		Ops: withOpen(
			Op{Step: 10, Side: A, Kind: OpClose}, // FIN acked, B holds CLOSE_WAIT
			Op{Step: 20, Side: A, Kind: OpAbort},
		),
	})
	add(Scenario{ // CLOSE_WAIT->CLOSED (user) + FIN_WAIT_2->CLOSED (reset)
		Name: "abort-closewait", MaxSteps: 80,
		Ops: withOpen(
			Op{Step: 10, Side: A, Kind: OpClose},
			Op{Step: 20, Side: B, Kind: OpAbort},
		),
	})
	add(Scenario{ // CLOSING->CLOSED (user) + CLOSING->CLOSED (timer)
		Name: "abort-closing",
		Ops: []Op{
			{Step: 0, Side: A, Kind: OpOpenActive},
			{Step: 0, Side: B, Kind: OpOpenActive},
			// Simultaneous close; the crossing FINs arrive, the answering
			// ACKs are cut, leaving both stuck in CLOSING.
			{Step: 20, Side: A, Kind: OpClose},
			{Step: 20, Side: B, Kind: OpClose},
			{Step: 21, Side: A, Kind: OpCut, Arg: DirBoth},
			{Step: 30, Side: A, Kind: OpAbort},
			// B retransmits its FIN until the timer gives up.
		},
	})
	add(Scenario{ // LAST_ACK->CLOSED (user)
		Name: "abort-lastack", MaxSteps: 120,
		Ops: withOpen(
			Op{Step: 10, Side: A, Kind: OpClose},
			// B answers the FIN and closes; its own FIN's ACK is severed.
			Op{Step: 13, Side: A, Kind: OpCut, Arg: DirAB},
			Op{Step: 14, Side: B, Kind: OpClose},
			Op{Step: 30, Side: B, Kind: OpAbort},
		),
	})
	add(Scenario{ // TIME_WAIT->CLOSED (user)
		Name: "abort-timewait", TimeWaitTicks: 40, MaxSteps: 120,
		Ops: withOpen(
			Op{Step: 10, Side: A, Kind: OpClose},
			Op{Step: 20, Side: B, Kind: OpClose},
			Op{Step: 40, Side: A, Kind: OpAbort}, // mid-TIME_WAIT
		),
	})

	// Injected resets in states the abort pairs do not reach.
	add(Scenario{ // SYN_SENT->CLOSED (reset): connection refused
		Name: "rst-synsent", MaxSteps: 40,
		Ops: []Op{{Step: 0, Side: A, Kind: OpOpenActive}},
		Faults: []Fault{{Kind: FaultRST, At: 3, Side: A}},
	})
	add(Scenario{ // SYN_RCVD->CLOSED (reset)
		Name: "rst-synrcvd", MaxSteps: 60,
		Ops: withOpen(Op{Step: 2, Side: A, Kind: OpCut, Arg: DirBoth}),
		Faults: []Fault{{Kind: FaultRST, At: 10, Side: B}},
	})
	add(Scenario{ // FIN_WAIT_1->CLOSED (reset)
		Name: "rst-finwait1", MaxSteps: 60,
		Ops: withOpen(
			Op{Step: 10, Side: A, Kind: OpCut, Arg: DirBA},
			Op{Step: 11, Side: A, Kind: OpClose},
		),
		Faults: []Fault{{Kind: FaultRST, At: 20, Side: A}},
	})
	add(Scenario{ // CLOSING->CLOSED (reset)
		Name: "rst-closing", MaxSteps: 80,
		Ops: []Op{
			{Step: 0, Side: A, Kind: OpOpenActive},
			{Step: 0, Side: B, Kind: OpOpenActive},
			{Step: 20, Side: A, Kind: OpClose},
			{Step: 20, Side: B, Kind: OpClose},
			{Step: 21, Side: A, Kind: OpCut, Arg: DirBoth},
		},
		Faults: []Fault{
			{Kind: FaultRST, At: 30, Side: A},
			{Kind: FaultRST, At: 30, Side: B},
		},
	})
	add(Scenario{ // LAST_ACK->CLOSED (reset)
		Name: "rst-lastack", MaxSteps: 80,
		Ops: withOpen(
			Op{Step: 10, Side: A, Kind: OpClose},
			Op{Step: 13, Side: A, Kind: OpCut, Arg: DirAB},
			Op{Step: 14, Side: B, Kind: OpClose},
		),
		Faults: []Fault{{Kind: FaultRST, At: 30, Side: B}},
	})
	add(Scenario{ // TIME_WAIT->CLOSED (reset)
		Name: "rst-timewait", TimeWaitTicks: 40, MaxSteps: 120,
		Ops: withOpen(
			Op{Step: 10, Side: A, Kind: OpClose},
			Op{Step: 20, Side: B, Kind: OpClose},
		),
		Faults: []Fault{{Kind: FaultRST, At: 45, Side: A}},
	})

	// Timer deaths not covered above.
	add(Scenario{ // SYN_SENT->CLOSED (timer): SYN into the void
		Name: "timeout-synsent",
		Ops:  []Op{{Step: 0, Side: A, Kind: OpOpenActive}},
	})
	add(Scenario{ // SYN_RCVD->CLOSED (timer)
		Name: "timeout-synrcvd",
		Ops:  withOpen(Op{Step: 2, Side: A, Kind: OpCut, Arg: DirBoth}),
	})
	add(Scenario{ // CLOSE_WAIT->CLOSED (timer) + FIN_WAIT_1->CLOSED (timer)
		Name: "timeout-closewait",
		Ops: withOpen(
			Op{Step: 10, Side: A, Kind: OpClose},
			// B holds CLOSE_WAIT, keeps writing; the wire then dies with
			// its data (and A's unacked FIN) outstanding.
			Op{Step: 12, Side: B, Kind: OpWrite, Arg: 600},
			Op{Step: 13, Side: A, Kind: OpCut, Arg: DirBoth},
		),
	})
	add(Scenario{ // LAST_ACK->CLOSED (timer)
		Name: "timeout-lastack",
		Ops: withOpen(
			Op{Step: 10, Side: A, Kind: OpClose},
			Op{Step: 13, Side: A, Kind: OpCut, Arg: DirAB},
			Op{Step: 14, Side: B, Kind: OpClose},
		),
	})

	// Zero-window persist: B stops reading, A's data fills the window and
	// the persist machinery probes until B drains. Exercises the
	// TCPPersist invariants rather than new edges.
	add(Scenario{
		Name: "zero-window-persist", NoAutoRead: true, MaxSteps: 600,
		Ops: withOpen(
			Op{Step: 6, Side: A, Kind: OpWrite, Arg: 4096},
			Op{Step: 10, Side: A, Kind: OpWrite, Arg: 4096},
			Op{Step: 200, Side: B, Kind: OpRead},
			Op{Step: 210, Side: B, Kind: OpRead},
			Op{Step: 220, Side: A, Kind: OpClose},
			Op{Step: 230, Side: B, Kind: OpRead},
			Op{Step: 240, Side: B, Kind: OpClose},
		),
	})

	// Partition mid-transfer, then heal: A's data retransmits into the cut
	// and must survive (the partition is shorter than the give-up horizon);
	// after the heal both sides finish the transfer and release cleanly.
	// The FaultFlap variant replays the same script through three shorter
	// down/up cycles, stressing Karn + backoff across repeated recoveries.
	add(Scenario{
		Name: "partition-heal-resume", TimeWaitTicks: 10, MaxSteps: 500,
		Ops: withOpen(
			Op{Step: 10, Side: A, Kind: OpWrite, Arg: 2000},
			Op{Step: 120, Side: A, Kind: OpWrite, Arg: 1000},
			Op{Step: 200, Side: A, Kind: OpClose},
			Op{Step: 220, Side: B, Kind: OpClose},
		),
		Faults: []Fault{{Kind: FaultPartition, At: 12, Dur: 60}},
	})
	add(Scenario{
		Name: "flap-survive", TimeWaitTicks: 10, MaxSteps: 500,
		Ops: withOpen(
			Op{Step: 10, Side: A, Kind: OpWrite, Arg: 2000},
			Op{Step: 200, Side: A, Kind: OpClose},
			Op{Step: 220, Side: B, Kind: OpClose},
		),
		Faults: []Fault{{Kind: FaultFlap, At: 12, Dur: 12}},
	})

	// Lossy handshake and release: the scripted drops force SYN, SYN|ACK
	// and FIN retransmissions (Karn + backoff invariants under recovery).
	add(Scenario{
		Name: "retransmit-recovery", TimeWaitTicks: 10, MaxSteps: 400,
		Ops: withOpen(
			Op{Step: 20, Side: A, Kind: OpWrite, Arg: 2000},
			Op{Step: 60, Side: A, Kind: OpClose},
			Op{Step: 80, Side: B, Kind: OpClose},
		),
		Faults: []Fault{
			{Kind: FaultDrop, At: 0}, // first SYN
			{Kind: FaultDrop, At: 2}, // first SYN|ACK
			{Kind: FaultDrop, At: 6}, // a data segment
		},
	})

	return lib
}

// ScenarioByName finds a library scenario (for replaying reproducers).
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range Library() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
