// Package explore is a coverage-guided fault-schedule explorer for the TCP
// engine. It drives pairs of engine instances (and, via the world scenarios,
// whole simulated networks) through scripted lifecycles while systematically
// placing faults — per-frame-index drops, injected resets, aborts, link
// cuts — around the handshake, simultaneous open/close, retransmission and
// crash-recovery paths. Every run streams its trace through the RFC 793
// conformance checker (internal/conform); the explorer steers schedule
// mutation toward legal (state, trigger) transition edges not yet covered,
// and when a run produces a violation it delta-debugs the schedule down to
// a minimal deterministic reproducer.
package explore

import (
	"time"

	"ulp/internal/conform"
	"ulp/internal/ipv4"
	"ulp/internal/pkt"
	"ulp/internal/tcp"
	"ulp/internal/trace"
)

// stepDur is the harness scheduling quantum: 100 ms of virtual time, the
// same base unit the engine's own tests use. The BSD fast timeout runs
// every 2 steps (200 ms) and the slow timeout every 5 (500 ms).
const stepDur = 100 * time.Millisecond

// Side identifies one of the two engine instances in a pipe scenario.
type Side int

// Sides. A performs active opens in the library scenarios; B is the
// passive/responding end.
const (
	A Side = iota
	B
)

// OpKind enumerates scripted operations.
type OpKind int

// Scripted operations (the deterministic part of a scenario).
const (
	OpOpenActive OpKind = iota // active open (deterministic ISS per side)
	OpOpenListen               // passive open
	OpClose                    // orderly close
	OpAbort                    // abortive close (sends RST)
	OpWrite                    // write Arg bytes of pattern data
	OpRead                     // drain readable data once
	OpCut                      // stop carrying frames; Arg = direction mask
	OpUncut                    // clear cut directions in Arg
)

// Direction masks for OpCut/OpUncut and FaultCut.
const (
	DirAB = 1 << iota // frames from A toward B
	DirBA             // frames from B toward A
	DirBoth = DirAB | DirBA
)

// Op is one scripted operation at a fixed step.
type Op struct {
	Step int
	Side Side
	Kind OpKind
	Arg  int
}

// FaultKind enumerates schedulable faults — the part of a run the explorer
// mutates and shrinks.
type FaultKind string

// Fault kinds.
const (
	// FaultDrop drops the frame with transmit-order index At (counted
	// across both directions), mirroring wire.Faults.DropFrames.
	FaultDrop FaultKind = "drop"
	// FaultRST injects an acceptable RST into Side at step At, as a
	// connection-killing attacker or a stale peer would.
	FaultRST FaultKind = "rst"
	// FaultAbort calls Abort on Side at step At.
	FaultAbort FaultKind = "abort"
	// FaultClose calls Close on Side at step At.
	FaultClose FaultKind = "close"
	// FaultCut severs directions (mask in Side's place is not needed; the
	// At step applies Arg-less DirBoth).
	FaultCut FaultKind = "cut"
	// FaultPartition severs both directions at step At and heals them Dur
	// steps later (default 25) — a partition with a scripted heal, letting
	// the explorer reach the resume-after-outage edges FaultCut (which
	// never heals) cannot.
	FaultPartition FaultKind = "partition"
	// FaultFlap runs flapCycles down/up link cycles of Dur steps per half
	// period (default 10) starting at step At.
	FaultFlap FaultKind = "flap"

	// faultUncut is the internal heal action partition/flap expand into.
	faultUncut FaultKind = "uncut"
)

// Defaults for the timed fault kinds.
const (
	defaultPartitionSteps = 25
	defaultFlapSteps      = 10
	flapCycles            = 3
)

// Fault is one schedulable fault point.
type Fault struct {
	Kind FaultKind `json:"kind"`
	At   int       `json:"at"`   // frame index for drop; step otherwise
	Side Side      `json:"side"` // target side (ignored for cut)
	// Dur is the duration in steps for the timed kinds (partition length,
	// flap half-period); 0 selects the kind's default.
	Dur int `json:"dur,omitempty"`
}

// Scenario is a deterministic script plus engine configuration. The same
// scenario run with the same fault list always produces the identical
// trace.
type Scenario struct {
	Name          string
	Ops           []Op
	Faults        []Fault // built-in fault placements (the script's own)
	MaxSteps      int
	TimeWaitTicks int  // 2*MSL override in slow ticks (0 = engine default)
	KeepAlive     int  // keepalive ticks (0 = off)
	NoAutoRead    bool // suppress the per-step drain (zero-window scenarios)
}

// Result is one run's outcome.
type Result struct {
	Violations []conform.Violation
	Coverage   *conform.Coverage
	Steps      int
	Frames     int
	Final      [2]tcp.State
}

// inseg is one in-flight segment.
type inseg struct {
	at   int // delivery step
	h    tcp.Header
	data []byte
}

type harness struct {
	sc      Scenario
	conns   [2]*tcp.Conn
	eps     [2]tcp.Endpoint
	queue   [2][]inseg // inbound per side
	head    [2]int
	cut     int // direction mask currently severed
	step    int
	frames  int
	drops   map[int]bool // frame indices to drop
	checker *conform.Checker

	// lastAck[i] is the ACK field of side i's most recent transmission
	// (its rcv_nxt); seqEnd[i] is the end of its sent sequence space.
	// Together they let the harness forge an RST the target must accept.
	lastAck [2]tcp.Seq
	hasAck  [2]bool
	seqEnd  [2]tcp.Seq
}

// Run executes a scenario with the given fault schedule and returns the
// conformance results.
func Run(sc Scenario, faults []Fault) Result {
	h := &harness{
		sc:    sc,
		drops: make(map[int]bool),
		eps: [2]tcp.Endpoint{
			{IP: ipv4.Addr{10, 0, 0, 1}, Port: 1025},
			{IP: ipv4.Addr{10, 0, 0, 2}, Port: 80},
		},
	}
	bus := trace.NewBus(func() time.Duration {
		return time.Duration(h.step) * stepDur
	})
	h.checker = conform.New(conform.Config{})
	h.checker.Attach(bus)

	cfg := tcp.Config{MSS: 512, NoDelayedAck: true}
	if sc.TimeWaitTicks > 0 {
		cfg.TimeWaitTicks = sc.TimeWaitTicks
	}
	if sc.KeepAlive > 0 {
		cfg.KeepAliveTicks = sc.KeepAlive
	}
	for i := 0; i < 2; i++ {
		i := i
		h.conns[i] = tcp.NewConn(cfg, h.eps[i], h.eps[1-i], tcp.Callbacks{
			Send: func(b *pkt.Buf, hdr tcp.Header, pl int) { h.send(Side(i), b, hdr, pl) },
		})
		h.conns[i].SetTrace(bus, sideName(Side(i)))
	}
	h.conns[B].SetISS(500_000)

	// Index faults by kind; the scenario's built-in placements run first.
	stepFaults := map[int][]Fault{}
	all := make([]Fault, 0, len(sc.Faults)+len(faults))
	all = append(all, sc.Faults...)
	all = append(all, faults...)
	addStep := func(at int, f Fault) {
		f.At = at
		stepFaults[at] = append(stepFaults[at], f)
	}
	for _, f := range all {
		switch f.Kind {
		case FaultDrop:
			h.drops[f.At] = true
		case FaultPartition:
			// Expand into a cut and a scripted heal.
			dur := f.Dur
			if dur <= 0 {
				dur = defaultPartitionSteps
			}
			addStep(f.At, Fault{Kind: FaultCut})
			addStep(f.At+dur, Fault{Kind: faultUncut})
		case FaultFlap:
			dur := f.Dur
			if dur <= 0 {
				dur = defaultFlapSteps
			}
			for k := 0; k < flapCycles; k++ {
				down := f.At + 2*k*dur
				addStep(down, Fault{Kind: FaultCut})
				addStep(down+dur, Fault{Kind: faultUncut})
			}
		default:
			stepFaults[f.At] = append(stepFaults[f.At], f)
		}
	}
	opIdx := 0
	ops := sc.Ops
	maxSteps := sc.MaxSteps
	if maxSteps == 0 {
		maxSteps = 8000
	}

	for h.step = 0; h.step < maxSteps; h.step++ {
		// Scripted operations, then scheduled faults, for this step.
		for opIdx < len(ops) && ops[opIdx].Step <= h.step {
			h.apply(ops[opIdx])
			opIdx++
		}
		for _, f := range stepFaults[h.step] {
			h.applyFault(f)
		}
		// Deliveries due this step (new sends are due next step).
		for i := 0; i < 2; i++ {
			q := &h.queue[i]
			for h.head[i] < len(*q) && (*q)[h.head[i]].at <= h.step {
				seg := (*q)[h.head[i]]
				h.head[i]++
				h.conns[i].Input(seg.h, seg.data)
			}
		}
		// BSD tick structure.
		if h.step%2 == 1 {
			h.conns[A].FastTick()
			h.conns[B].FastTick()
		}
		if h.step%5 == 4 {
			h.conns[A].SlowTick()
			h.conns[B].SlowTick()
		}
		if !sc.NoAutoRead {
			h.drain(A)
			h.drain(B)
		}
		// Early exit once nothing can ever happen again.
		if h.conns[A].State() == tcp.Closed && h.conns[B].State() == tcp.Closed &&
			h.head[0] == len(h.queue[0]) && h.head[1] == len(h.queue[1]) &&
			opIdx == len(ops) {
			h.step++
			break
		}
	}

	return Result{
		Violations: h.checker.Violations(),
		Coverage:   h.checker.Coverage(),
		Steps:      h.step,
		Frames:     h.frames,
		Final:      [2]tcp.State{h.conns[A].State(), h.conns[B].State()},
	}
}

func sideName(s Side) string {
	if s == A {
		return "A"
	}
	return "B"
}

func (h *harness) send(from Side, b *pkt.Buf, hdr tcp.Header, pl int) {
	idx := h.frames
	h.frames++
	to := 1 - from
	h.checker.Segment(time.Duration(h.step)*stepDur, h.eps[from], h.eps[to], hdr, pl)

	h.seqEnd[from] = segEnd(hdr, pl)
	if hdr.Flags&tcp.FlagACK != 0 {
		h.lastAck[from] = hdr.Ack
		h.hasAck[from] = true
	}

	dirBit := DirAB
	if from == B {
		dirBit = DirBA
	}
	if h.cut&dirBit != 0 || h.drops[idx] {
		return
	}
	var data []byte
	if pl > 0 {
		raw := b.Bytes()
		data = append([]byte(nil), raw[len(raw)-pl:]...)
	}
	h.queue[to] = append(h.queue[to], inseg{at: h.step + 1, h: hdr, data: data})
}

func segEnd(h tcp.Header, pl int) tcp.Seq {
	n := pl
	if h.Flags&tcp.FlagSYN != 0 {
		n++
	}
	if h.Flags&tcp.FlagFIN != 0 {
		n++
	}
	return h.Seq.Add(n)
}

func (h *harness) apply(op Op) {
	c := h.conns[op.Side]
	switch op.Kind {
	case OpOpenActive:
		iss := tcp.Seq(1000)
		if op.Side == B {
			iss = 500_000
		}
		c.OpenActive(iss)
	case OpOpenListen:
		c.OpenListen()
	case OpClose:
		c.Close()
	case OpAbort:
		c.Abort()
	case OpWrite:
		c.Write(patternBytes(op.Arg))
	case OpRead:
		h.drain(op.Side)
	case OpCut:
		h.cut |= op.Arg
	case OpUncut:
		h.cut &^= op.Arg
	}
}

func (h *harness) applyFault(f Fault) {
	switch f.Kind {
	case FaultAbort:
		h.conns[f.Side].Abort()
	case FaultClose:
		h.conns[f.Side].Close()
	case FaultCut:
		h.cut = DirBoth
	case faultUncut:
		h.cut = 0
	case FaultRST:
		// Forge an RST the target must accept: seq at the target's own
		// rcv_nxt (the ACK it last advertised), ack covering everything it
		// has sent (so a SYN_SENT target passes the ackOK test).
		hdr := tcp.Header{
			SrcPort: h.eps[1-f.Side].Port,
			DstPort: h.eps[f.Side].Port,
			Seq:     h.lastAck[f.Side],
			Ack:     h.seqEnd[f.Side],
			Flags:   tcp.FlagRST | tcp.FlagACK,
		}
		h.conns[f.Side].Input(hdr, nil)
	}
}

func (h *harness) drain(s Side) {
	var buf [2048]byte
	for {
		if h.conns[s].Read(buf[:]) == 0 {
			return
		}
	}
}

// patternBytes returns deterministic payload data.
func patternBytes(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i * 7)
	}
	return p
}
