package explore

import (
	"encoding/json"
	"reflect"
	"testing"

	"ulp/internal/tcp"
)

// TestLibraryFullCoverage: the baseline scenario library alone must walk
// every edge of the legal transition relation, with zero violations on the
// healthy engine.
func TestLibraryFullCoverage(t *testing.T) {
	x := New(0, 0)
	for _, sc := range Library() {
		res := x.run(sc, nil)
		for _, v := range res.Violations {
			t.Errorf("%s: %v", sc.Name, v)
		}
	}
	if x.cov.Count() != x.cov.Total() {
		t.Errorf("library covers %d/%d legal edges; missing: %v",
			x.cov.Count(), x.cov.Total(), x.cov.Missing())
	}
}

// TestExploreSmoke is the CI exploration gate: a fixed seed and budget must
// reach at least 90%% edge coverage, find nothing on the healthy engine,
// and be bit-deterministic across runs.
func TestExploreSmoke(t *testing.T) {
	run := func() Report { return New(7, 80).Explore() }
	rep := run()
	if rep.Coverage < 0.9 {
		t.Errorf("coverage %.2f (%d/%d), want >= 0.90; missing %v",
			rep.Coverage, rep.Covered, rep.Total, rep.Missing)
	}
	if len(rep.Reproducers) != 0 {
		t.Errorf("healthy engine produced %d reproducers: %+v",
			len(rep.Reproducers), rep.Reproducers)
	}
	rep2 := run()
	if !reflect.DeepEqual(rep, rep2) {
		t.Errorf("exploration not deterministic:\n%+v\nvs\n%+v", rep, rep2)
	}
}

// TestRunDeterministic: the harness itself consumes no randomness.
func TestRunDeterministic(t *testing.T) {
	sc, _ := ScenarioByName("retransmit-recovery")
	r1 := Run(sc, []Fault{{Kind: FaultDrop, At: 4}})
	r2 := Run(sc, []Fault{{Kind: FaultDrop, At: 4}})
	if r1.Steps != r2.Steps || r1.Frames != r2.Frames ||
		!reflect.DeepEqual(r1.Violations, r2.Violations) ||
		r1.Coverage.Count() != r2.Coverage.Count() {
		t.Errorf("identical schedules diverged: %+v vs %+v", r1, r2)
	}
}

// TestInjectedBugCaughtAndShrunk seeds the engine with a deliberate
// protocol bug (skipping TIME_WAIT entirely) and checks the full loop: the
// explorer catches it, delta-debugs the schedule to at most 3 fault points,
// and the emitted reproducer replays deterministically.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	tcp.TestHookSkipTimeWait = true
	defer func() { tcp.TestHookSkipTimeWait = false }()

	rep := New(7, 40).Explore()
	if len(rep.Reproducers) == 0 {
		t.Fatal("explorer did not catch the injected skip-TIME_WAIT bug")
	}
	r := rep.Reproducers[0]
	if len(r.Faults) > 3 {
		t.Errorf("reproducer not shrunk: %d fault points (want <= 3): %+v",
			len(r.Faults), r.Faults)
	}
	// The bug's signature: a segment-triggered transition to CLOSED from a
	// state that should have entered TIME_WAIT.
	if r.Violation.Edge == nil || r.Violation.Edge.To != tcp.Closed ||
		r.Violation.Edge.Via != tcp.TrigSegment {
		t.Errorf("unexpected violation signature: %+v", r.Violation)
	}
	if r.Violation.Edge != nil &&
		r.Violation.Edge.From != tcp.FinWait2 && r.Violation.Edge.From != tcp.Closing {
		t.Errorf("violation edge from %v, want FIN_WAIT_2 or CLOSING", r.Violation.Edge.From)
	}

	// The reproducer must survive a JSON round trip (it is the replay
	// artifact cmd/ulexplore writes) and replay to the same violation.
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal reproducer: %v", err)
	}
	var back Reproducer
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal reproducer: %v", err)
	}
	res1, err := Replay(back)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	res2, _ := Replay(back)
	if !reflect.DeepEqual(res1.Violations, res2.Violations) {
		t.Errorf("replay not deterministic:\n%v\nvs\n%v", res1.Violations, res2.Violations)
	}
}

// TestShrinkRemovesIrrelevantFaults: when the violation reproduces without
// any of the extra faults, shrinking must strip the schedule to nothing.
func TestShrinkRemovesIrrelevantFaults(t *testing.T) {
	tcp.TestHookSkipTimeWait = true
	defer func() { tcp.TestHookSkipTimeWait = false }()

	sc, _ := ScenarioByName("handshake-close")
	noisy := []Fault{
		{Kind: FaultDrop, At: 30},
		{Kind: FaultDrop, At: 31},
		{Kind: FaultDrop, At: 32},
	}
	res := Run(sc, noisy)
	if len(res.Violations) == 0 {
		t.Fatal("injected bug not visible in handshake-close")
	}
	min := Shrink(sc, noisy, res.Violations[0].Rule)
	if len(min) != 0 {
		t.Errorf("shrink kept %d irrelevant faults: %+v", len(min), min)
	}
}

// TestReplayUnknownScenario: corrupted artifacts fail loudly.
func TestReplayUnknownScenario(t *testing.T) {
	if _, err := Replay(Reproducer{Scenario: "no-such"}); err == nil {
		t.Error("expected error for unknown scenario")
	}
}
