package explore

import (
	"fmt"
	"math/rand"

	"ulp/internal/conform"
	"ulp/internal/tcp"
)

// Reproducer is a minimal, deterministic recipe for a conformance
// violation: scenario name, the shrunk extra fault schedule, and the
// violation it produces. Feeding it to Replay reproduces the violation
// bit-for-bit (the harness consumes no randomness).
type Reproducer struct {
	Scenario  string            `json:"scenario"`
	Faults    []Fault           `json:"faults"`
	Seed      uint64            `json:"seed"` // explorer seed that found it
	Violation conform.Violation `json:"violation"`
}

// Report summarizes an exploration campaign.
type Report struct {
	Runs        int             `json:"runs"`
	Coverage    float64         `json:"coverage"` // fraction of legal edges hit
	Covered     int             `json:"covered"`
	Total       int             `json:"total"`
	Missing     []conform.Edge  `json:"missing,omitempty"`
	Reproducers []Reproducer    `json:"reproducers,omitempty"`
}

// Explorer runs the campaign: a baseline pass over the scenario library,
// then seeded mutation rounds that place extra faults, steered toward
// whatever legal edges remain uncovered.
type Explorer struct {
	Seed   uint64
	Budget int // scenario executions (mutation rounds; shrinking is extra)

	rng    *rand.Rand
	cov    *conform.Coverage
	runs   int
	repros []Reproducer
	seen   map[string]bool
}

// New creates an explorer with a deterministic seed and run budget.
func New(seed uint64, budget int) *Explorer {
	return &Explorer{
		Seed:   seed,
		Budget: budget,
		rng:    rand.New(rand.NewSource(int64(seed))),
		cov:    conform.NewCoverage(),
		seen:   make(map[string]bool),
	}
}

// Explore runs the campaign and returns the report.
func (x *Explorer) Explore() Report {
	lib := Library()

	// Baseline: every library scenario with no extra faults. The library
	// alone is built to cover the full legal relation; baselines also
	// surface violations reachable without any scheduled fault at all.
	for _, sc := range lib {
		x.run(sc, nil)
	}

	// Mutation rounds: spend the remaining budget perturbing scenarios,
	// picking fault kinds from the trigger classes of still-missing edges.
	for x.runs < x.Budget {
		sc := lib[x.rng.Intn(len(lib))]
		x.run(sc, x.mutate(sc))
	}

	return Report{
		Runs:        x.runs,
		Coverage:    x.cov.Frac(),
		Covered:     x.cov.Count(),
		Total:       x.cov.Total(),
		Missing:     x.cov.Missing(),
		Reproducers: x.repros,
	}
}

// run executes one schedule, merges coverage, and shrinks any violation
// into a reproducer (deduplicated by scenario and rule/edge signature).
func (x *Explorer) run(sc Scenario, faults []Fault) Result {
	x.runs++
	res := Run(sc, faults)
	x.cov.Merge(res.Coverage)
	for _, v := range res.Violations {
		key := sc.Name + "|" + violationKey(v)
		if x.seen[key] {
			continue
		}
		x.seen[key] = true
		min := Shrink(sc, faults, v.Rule)
		rerun := Run(sc, min)
		if len(rerun.Violations) == 0 {
			continue // shrink invariant broken; keep the unshrunk schedule
		}
		x.repros = append(x.repros, Reproducer{
			Scenario:  sc.Name,
			Faults:    min,
			Seed:      x.Seed,
			Violation: rerun.Violations[0],
		})
	}
	return res
}

func violationKey(v conform.Violation) string {
	if v.Edge != nil {
		return v.Rule + "|" + v.Edge.String()
	}
	return v.Rule
}

// mutate builds an extra fault schedule of 1-3 points. When legal edges are
// still uncovered, the fault kind is drawn from a missing edge's trigger
// class (a reset edge wants an injected RST, a user edge an abort or close,
// a timer edge a wire cut); otherwise kinds are drawn uniformly, with
// frame-index drops aimed at the early frames where the handshake and
// close live.
func (x *Explorer) mutate(sc Scenario) []Fault {
	n := 1 + x.rng.Intn(3)
	faults := make([]Fault, 0, n)
	missing := x.cov.Missing()
	maxStep := sc.MaxSteps
	if maxStep == 0 || maxStep > 120 {
		maxStep = 120
	}
	for i := 0; i < n; i++ {
		side := Side(x.rng.Intn(2))
		step := x.rng.Intn(maxStep)
		var f Fault
		if len(missing) > 0 && x.rng.Intn(2) == 0 {
			e := missing[x.rng.Intn(len(missing))]
			switch e.Via {
			case tcp.TrigReset:
				f = Fault{Kind: FaultRST, At: step, Side: side}
			case tcp.TrigUser:
				if x.rng.Intn(2) == 0 {
					f = Fault{Kind: FaultAbort, At: step, Side: side}
				} else {
					f = Fault{Kind: FaultClose, At: step, Side: side}
				}
			case tcp.TrigTimer:
				// Timer edges fire when the wire dies; a permanent cut, a
				// healing partition and a flap schedule all get there by
				// different retransmission histories.
				switch x.rng.Intn(3) {
				case 0:
					f = Fault{Kind: FaultCut, At: step}
				case 1:
					f = Fault{Kind: FaultPartition, At: step, Dur: 5 + x.rng.Intn(40)}
				default:
					f = Fault{Kind: FaultFlap, At: step, Dur: 2 + x.rng.Intn(15)}
				}
			default:
				f = Fault{Kind: FaultDrop, At: x.rng.Intn(40)}
			}
		} else {
			switch x.rng.Intn(7) {
			case 0:
				f = Fault{Kind: FaultDrop, At: x.rng.Intn(40)}
			case 1:
				f = Fault{Kind: FaultRST, At: step, Side: side}
			case 2:
				f = Fault{Kind: FaultAbort, At: step, Side: side}
			case 3:
				f = Fault{Kind: FaultClose, At: step, Side: side}
			case 4:
				f = Fault{Kind: FaultPartition, At: step, Dur: 5 + x.rng.Intn(40)}
			case 5:
				f = Fault{Kind: FaultFlap, At: step, Dur: 2 + x.rng.Intn(15)}
			default:
				f = Fault{Kind: FaultCut, At: step}
			}
		}
		faults = append(faults, f)
	}
	return faults
}

// Shrink delta-debugs a fault schedule to a minimal list that still
// produces a violation of the given rule: repeatedly drop any single fault
// whose removal preserves the violation, to a fixed point. Schedules here
// are small (<= a handful of points), so the greedy loop is the whole of
// ddmin that is needed.
func Shrink(sc Scenario, faults []Fault, rule string) []Fault {
	cur := append([]Fault(nil), faults...)
	for {
		removed := false
		for i := range cur {
			cand := make([]Fault, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if hasRule(Run(sc, cand), rule) {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			return cur
		}
	}
}

func hasRule(res Result, rule string) bool {
	for _, v := range res.Violations {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

// Replay re-executes a reproducer and reports whether the recorded
// violation rule recurs.
func Replay(r Reproducer) (Result, error) {
	sc, ok := ScenarioByName(r.Scenario)
	if !ok {
		return Result{}, fmt.Errorf("explore: unknown scenario %q", r.Scenario)
	}
	res := Run(sc, r.Faults)
	if !hasRule(res, r.Violation.Rule) {
		return res, fmt.Errorf("explore: reproducer for %q did not reproduce (got %d violations)",
			r.Violation.Rule, len(res.Violations))
	}
	return res, nil
}
