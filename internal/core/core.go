// Package core implements the paper's primary contribution: the user-level
// protocol library. TCP, IP and (implicitly, via setup-time resolution) ARP
// functionality is linked into the application's address space. The library
//
//   - asks the registry server to allocate end-points and complete the
//     three-way handshake, then receives the established connection's TCP
//     state, a send capability, and a shared-memory channel;
//   - thereafter runs the entire data path itself: "the server is bypassed
//     in the common path of data transmission and reception";
//   - is multithreaded: a per-connection input thread is upcalled from the
//     channel's lightweight semaphore ("protocol control block lookups are
//     eliminated by having separate threads per connection"), and fast/slow
//     timer threads drive the BSD tick machinery;
//   - moves user data through the shared region, avoiding per-byte copies
//     on the send path ("a buffer organization that eliminates byte
//     copying");
//   - on exit hands open connections back to the registry, which preserves
//     TIME_WAIT semantics or resets the peer on abnormal termination.
package core

import (
	"hash/fnv"
	"sort"
	"time"

	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/netio"
	"ulp/internal/pkt"
	"ulp/internal/registry"
	"ulp/internal/sim"
	"ulp/internal/stacks"
	"ulp/internal/tcp"
)

// Library is one application's protocol library instance.
type Library struct {
	s    *sim.Sim
	host *kern.Host
	app  *kern.Domain
	reg  *registry.Server
	mod  *netio.Module

	conns map[*Conn]struct{}
	ids   ipv4.IDGen

	// wheel, when non-nil, replaces the per-tick scan of every connection
	// with timing-wheel timers: connections are touched only when a timer
	// actually fires. Enabled before any connection exists (many-host
	// worlds); nil keeps the classic per-tick loops.
	wheel *stacks.TCPWheel

	// backoff drives control-plane retry delays (capped exponential with
	// seeded jitter, shared schedule with the reconnect path).
	backoff *stacks.Backoff

	// idBase/reqSeq generate request IDs: the per-app hash base keeps IDs
	// from different libraries on one registry distinct, the counter keeps
	// them unique within the app. A retry reuses its request's ID, which
	// is what lets the registry deduplicate.
	idBase, reqSeq uint64

	// reconnecting guards the single reconnect thread.
	reconnecting bool
}

// Control-plane RPC hardening: every registry call carries a deadline and a
// bounded retry budget, so a dead or wedged registry turns into a clean
// ErrRegistryUnavailable instead of a hung application. Backoff doubles per
// attempt up to a cap with jitter so concurrent retriers do not
// re-synchronize.
const (
	rpcAttempts    = 4
	rpcBaseTimeout = 250 * time.Millisecond
	rpcTimeoutCap  = 2 * time.Second

	// reconnectAttempts bounds how long a library keeps trying to re-adopt
	// its connections with a reborn registry before surfacing a terminal
	// error. With the shared backoff schedule this spans several lease
	// TTLs — long enough for any scheduled restart, finite so a registry
	// that never returns yields ErrRegistryUnavailable, not a hang.
	reconnectAttempts = 10
)

// nextReqID issues a fresh request id (never zero).
func (l *Library) nextReqID() uint64 {
	l.reqSeq++
	return l.idBase | l.reqSeq
}

// callRegistry issues one control-plane RPC under the deadline/retry policy.
// All attempts carry the same request ID, so a retry whose original was
// executed (reply lost) is answered from the registry's dedup cache rather
// than re-executed.
func (l *Library) callRegistry(t *kern.Thread, m kern.Msg) (kern.Msg, error) {
	m.ID = l.nextReqID()
	timeout := rpcBaseTimeout
	for attempt := 0; attempt < rpcAttempts; attempt++ {
		if reply, ok := l.reg.Svc.CallTimeout(t, m, timeout); ok {
			return reply, nil
		}
		if attempt < rpcAttempts-1 {
			t.Sleep(l.backoff.Next(attempt))
		}
		if timeout < rpcTimeoutCap {
			timeout *= 2
		}
	}
	return kern.Msg{}, stacks.ErrRegistryUnavailable
}

// NewLibrary links the protocol library into an application domain.
func NewLibrary(s *sim.Sim, app *kern.Domain, reg *registry.Server) *Library {
	h := fnv.New64a()
	h.Write([]byte(app.String()))
	l := &Library{
		s:       s,
		host:    app.Host,
		app:     app,
		reg:     reg,
		mod:     reg.Netif().Mod,
		conns:   make(map[*Conn]struct{}),
		backoff: stacks.NewBackoff(seedFrom(app.Host.Name), rpcBaseTimeout/2, rpcTimeoutCap),
		idBase:  h.Sum64() &^ 0xFFFFF, // low 20 bits carry the counter
	}
	app.Spawn("lib-fast", l.fastTimer)
	app.Spawn("lib-slow", l.slowTimer)
	return l
}

// seedFrom derives a per-host jitter seed so retry schedules differ across
// hosts but are identical across runs.
func seedFrom(name string) int64 {
	s := int64(17)
	for _, ch := range name {
		s = s*31 + int64(ch)
	}
	return s
}

// Name identifies the organization.
func (l *Library) Name() string { return "userlib" }

// Host returns the host the library runs on.
func (l *Library) Host() *kern.Host { return l.host }

// Conn is a library-owned connection: the engine, its channel, capability,
// and the framing parameters negotiated at setup.
type Conn struct {
	lib  *Library
	sock *stacks.Sock
	tc   *tcp.Conn
	cap  *netio.Capability
	ch   *netio.Channel
	opts stacks.Options

	peerHW  link.Addr
	peerBQI uint16

	went *stacks.WheelEnt // timing-wheel registration (nil in tick mode)

	cur  *kern.Thread
	lock *sim.Semaphore
	done bool
}

// EnableTimerWheel switches the library's timer backend from per-tick
// scans to timing wheels. Must be called before the first connection is
// adopted.
func (l *Library) EnableTimerWheel() {
	if l.wheel == nil {
		l.wheel = stacks.NewTCPWheel()
	}
}

// Connect implements the stacks.Stack interface: active open via the
// registry, then adopt the established connection.
func (l *Library) Connect(t *kern.Thread, remote tcp.Endpoint, opts stacks.Options) (stacks.Conn, error) {
	t.Compute(t.Cost().ProcCall)
	reply, err := l.callRegistry(t, kern.Msg{Op: "connect", Body: registry.ConnectReq{Remote: remote, Opts: opts, Owner: l.app}})
	if err != nil {
		return nil, err
	}
	ho, ok := reply.Body.(registry.Handoff)
	if !ok {
		return nil, stacks.ErrClosed
	}
	if ho.Err != nil {
		return nil, ho.Err
	}
	return l.adopt(t, ho, opts), nil
}

// Listener is the library side of a passive open.
type Listener struct {
	lib    *Library
	port   uint16
	opts   stacks.Options
	accept *kern.Port
}

// Listen implements stacks.Stack.
func (l *Library) Listen(t *kern.Thread, port uint16, opts stacks.Options) (stacks.Listener, error) {
	t.Compute(t.Cost().ProcCall)
	acceptPort := kern.NewPort(l.host, "accept")
	reply, err := l.callRegistry(t, kern.Msg{Op: "listen", Body: registry.ListenReq{Port: port, Opts: opts, AcceptPort: acceptPort, Owner: l.app}})
	if err != nil {
		return nil, err
	}
	if err, _ := reply.Body.(error); err != nil {
		return nil, err
	}
	return &Listener{lib: l, port: port, opts: opts, accept: acceptPort}, nil
}

// Accept blocks for the next established connection handed off by the
// registry.
func (ln *Listener) Accept(t *kern.Thread) (stacks.Conn, error) {
	m := ln.accept.Receive(t)
	t.Compute(t.Cost().ContextSwitch) // handoff message receipt
	ho := m.Body.(registry.Handoff)
	if ho.Err != nil {
		return nil, ho.Err
	}
	return ln.lib.adopt(t, ho, ln.opts), nil
}

// Close stops listening. A registry that has become unavailable is
// tolerated: the endpoint is abandoned and reclaimed by crash cleanup.
func (ln *Listener) Close(t *kern.Thread) {
	t.Compute(t.Cost().ProcCall)
	_, _ = ln.lib.callRegistry(t, kern.Msg{Op: "unlisten", Body: registry.UnlistenReq{Port: ln.port}})
}

// adopt turns a registry handoff into a live library connection.
func (l *Library) adopt(t *kern.Thread, ho registry.Handoff, opts stacks.Options) *Conn {
	c := &Conn{
		lib:     l,
		cap:     ho.Cap,
		ch:      ho.Channel,
		opts:    opts,
		peerHW:  ho.PeerHW,
		peerBQI: ho.PeerBQI,
		lock:    l.s.NewSemaphore("conn-engine", 1),
	}
	tc := tcp.Restore(ho.Snap, tcp.Callbacks{})
	c.tc = tc
	if bus := l.reg.Bus(); bus.Enabled() {
		tc.SetTrace(bus, l.app.String()+" "+tc.Local().String()+">"+tc.Peer().String())
	}
	sock := stacks.NewSock(l.s, tc)
	cost := &l.host.Cost
	sock.Entry = func(t *kern.Thread) { t.Compute(cost.ProcCall) }
	sock.Run = c.runEngine
	// Send-side data enters the shared region without a per-byte copy.
	sock.WriteMove = func(t *kern.Thread, n int) { t.Compute(cost.SockbufOp) }
	sock.ReadMove = func(t *kern.Thread, n int) { t.Compute(cost.Copy(n) + cost.SockbufOp) }
	c.sock = sock

	cb := sock.Callbacks(func(seg *stacks.Seg) { c.transmit(seg) })
	innerClosed := cb.OnClosed
	cb.OnClosed = func(err error) {
		innerClosed(err)
		c.teardown()
	}
	tc.SetCallbacks(cb)
	sock.MarkEstablished()

	l.conns[c] = struct{}{}
	if l.wheel != nil {
		c.went = l.wheel.Add(tc, c)
		// An empty engine pass syncs the restored counters (the handshake
		// may have left the keepalive or retransmit timer armed) onto the
		// wheel.
		c.runEngine(t, func() {})
	}
	l.app.Spawn("conn-input", c.inputThread)
	return c
}

// transmit is the library's data-path output: protocol processing in the
// calling thread, headers built in the shared region, then the specialized
// kernel entry with the send capability.
func (c *Conn) transmit(seg *stacks.Seg) {
	t := c.cur
	if t == nil {
		panic("core: engine transmit outside runEngine")
	}
	t.Compute(stacks.SegCost(c.lib.host, seg.PayloadLen, c.opts.NoChecksum))
	ih := ipv4.Header{
		ID: c.lib.ids.Next(), DF: true, TTL: 64,
		Proto: ipv4.ProtoTCP, Src: c.tc.Local().IP, Dst: c.tc.Peer().IP,
	}
	ih.Encode(seg.Buf)
	if c.lib.reg.Netif().IsAN1() {
		lh := link.AN1Header{Dst: c.peerHW, Src: c.lib.reg.Netif().HW, BQI: c.peerBQI, Type: link.TypeIPv4}
		lh.Encode(seg.Buf)
	} else {
		lh := link.EthHeader{Dst: c.peerHW, Src: c.lib.reg.Netif().HW, Type: link.TypeIPv4}
		lh.Encode(seg.Buf)
	}
	// Template violations cannot happen from this code path; a buggy or
	// malicious library would be stopped here by the kernel. A lease
	// rejection is different: it means the control plane died and our
	// endpoint is quarantined — kick off re-registration with the (to-be-)
	// reborn registry. The rejected segment is recovered by ordinary TCP
	// retransmission once the quarantine lifts.
	if err := c.lib.mod.Send(t, c.cap, seg.Buf); err == netio.ErrLeaseExpired {
		c.lib.scheduleReconnect()
	}
}

// scheduleReconnect starts the (single) reconnect thread. Called from
// engine context, so it only spawns; the loop does the blocking work.
func (l *Library) scheduleReconnect() {
	if l.reconnecting {
		return
	}
	l.reconnecting = true
	l.app.Spawn("reconnect", l.reconnectLoop)
}

// reconnectLoop retries re-registration of every live connection with
// capped exponential backoff + seeded jitter (the schedule shared with
// callRegistry). When the budget is spent without reaching a registry, a
// terminal ErrRegistryUnavailable is surfaced on every connection.
func (l *Library) reconnectLoop(t *kern.Thread) {
	defer func() { l.reconnecting = false }()
	for attempt := 0; attempt < reconnectAttempts; attempt++ {
		t.Sleep(l.backoff.Next(attempt))
		if l.reregisterAll(t) {
			return
		}
		if len(l.conns) == 0 {
			return // nothing left to re-adopt
		}
	}
	for _, c := range l.sortedConns() {
		c.fail(stacks.ErrRegistryUnavailable)
	}
}

// reregisterAll re-claims every live connection with the registry. It
// reports whether the registry answered; a refused claim (capability
// revoked, template mismatch) fails that connection but counts as contact.
func (l *Library) reregisterAll(t *kern.Thread) bool {
	for _, c := range l.sortedConns() {
		snap := c.tc.Snapshot()
		m := kern.Msg{Op: "reregister", ID: l.nextReqID(), Body: registry.ReRegisterReq{
			Local: c.tc.Local(), Peer: c.tc.Peer(), Cap: c.cap,
			PeerHW: c.peerHW, PeerBQI: c.peerBQI,
			SndNxt: snap.SndNxt, RcvNxt: snap.RcvNxt,
			Owner: l.app,
		}}
		reply, ok := l.reg.Svc.CallTimeout(t, m, rpcBaseTimeout)
		if !ok {
			return false
		}
		if err, _ := reply.Body.(error); err != nil {
			// The reborn registry refused the claim: this endpoint no
			// longer exists as far as the kernel is concerned.
			c.fail(stacks.ErrReset)
		}
	}
	return true
}

// sortedConns returns the live connections in local-port order, so map
// iteration cannot perturb the deterministic schedule.
func (l *Library) sortedConns() []*Conn {
	out := make([]*Conn, 0, len(l.conns))
	for c := range l.conns {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].tc.Local().Port < out[j].tc.Local().Port
	})
	return out
}

// fail terminates a connection without driving the engine: the control
// plane is unreachable (or repudiated the connection), so there is nothing
// orderly left to do. Blocked readers and writers wake with err.
func (c *Conn) fail(err error) {
	if c.done {
		return
	}
	c.done = true
	c.ch.Poke()
	delete(c.lib.conns, c)
	c.lib.wheel.Drop(c.went)
	c.tc.SetCallbacks(tcp.Callbacks{})
	c.sock.Fail(err)
}

// inputThread is the per-connection upcalled thread: it waits on the
// channel's lightweight semaphore and feeds batches to the engine.
//
// Zero-copy interplay: on a ZeroCopyRx channel the batch frames are the
// module's pool buffers handed over by reference, with the channel holding
// a lien that settles at the next Wait. The contract this loop satisfies is
// that a batch is fully consumed before Wait is called again — inputFrame
// releases each frame after TCP reassembly copies what it keeps, and the
// deferred sweep below covers a mid-batch kill — so the lien settling
// underneath us can never free storage we still read.
func (c *Conn) inputThread(t *kern.Thread) {
	cost := &c.lib.host.Cost
	// If the domain is killed mid-batch (Kill runs deferred functions via
	// Goexit), the frame being processed is released by inputFrame's own
	// defer — but the rest of the drained batch would leak: it has already
	// left the channel, so no sweep can see it. Hold the batch in
	// function scope and release the unprocessed tail on the way out.
	var batch []*pkt.Buf
	next := 0
	defer func() {
		for _, b := range batch[next:] {
			b.Release()
		}
	}()
	for !c.done {
		batch = c.ch.Wait(t)
		next = 0
		if len(batch) == 0 {
			continue // poked for shutdown or spurious wakeup
		}
		for i, b := range batch {
			next = i + 1
			c.inputFrame(t, b)
		}
		if c.sock.ReadableWaiters() > 0 {
			// Hand off to the blocked application thread.
			t.Compute(cost.ThreadSwitch)
		}
	}
}

// inputFrame processes one frame from the shared region. The frame dies
// here on every path — tcp.Conn.Input copies the payload bytes it keeps —
// so the buffer goes back to the free list when processing completes.
func (c *Conn) inputFrame(t *kern.Thread, b *pkt.Buf) {
	defer b.Release()
	var et link.EtherType
	if c.lib.reg.Netif().IsAN1() {
		h, err := link.DecodeAN1(b)
		if err != nil {
			return
		}
		et = h.Type
	} else {
		h, err := link.DecodeEth(b)
		if err != nil {
			return
		}
		et = h.Type
	}
	if et != link.TypeIPv4 {
		return
	}
	ih, err := ipv4.Decode(b)
	if err != nil || ih.Proto != ipv4.ProtoTCP || ih.Dst != c.tc.Local().IP {
		return
	}
	th, err := tcp.Decode(b, ih.Src, ih.Dst)
	if err != nil {
		return // checksum failure: drop, retransmission recovers
	}
	t.Compute(stacks.SegCost(c.lib.host, b.Len(), c.opts.NoChecksum))
	c.runEngine(t, func() { c.tc.Input(th, b.Bytes()) })
}

func (c *Conn) runEngine(t *kern.Thread, fn func()) {
	c.lock.P(t.Proc)
	c.cur = t
	if c.went != nil {
		// Catch the tick counters up to the wheel clock before the engine
		// reads them, and put whatever fn arms onto the wheel afterwards.
		c.lib.wheel.Sync(c.went)
		fn()
		c.lib.wheel.Sync(c.went)
	} else {
		fn()
	}
	c.cur = nil
	c.lock.V()
}

// teardown releases registry-held resources once the engine fully closes.
func (c *Conn) teardown() {
	c.done = true
	c.ch.Poke()
	delete(c.lib.conns, c)
	c.lib.wheel.Drop(c.went)
	c.lib.reg.Svc.SendAsync(kern.Msg{Op: "teardown", ID: c.lib.nextReqID(),
		Body: registry.TeardownReq{
			Local: c.tc.Local(), Peer: c.tc.Peer(), Cap: c.cap,
		}})
}

// Read implements stacks.Conn.
func (c *Conn) Read(t *kern.Thread, p []byte) (int, error) { return c.sock.Read(t, p) }

// Write implements stacks.Conn.
func (c *Conn) Write(t *kern.Thread, p []byte) (int, error) {
	return c.sock.Write(t, p)
}

// Close implements stacks.Conn: the orderly release runs entirely in the
// library ("under normal operation, connection shutdown is done by the
// protocol library").
func (c *Conn) Close(t *kern.Thread) error {
	c.runEngineFrom(t, func() { c.tc.Close() })
	return nil
}

// runEngineFrom charges the socket-call entry then runs the engine.
func (c *Conn) runEngineFrom(t *kern.Thread, fn func()) {
	t.Compute(t.Cost().ProcCall)
	c.runEngine(t, fn)
}

// Stats implements stacks.Conn.
func (c *Conn) Stats() tcp.Stats { return c.tc.Stats() }

// State implements stacks.Conn.
func (c *Conn) State() tcp.State { return c.tc.State() }

// Channel exposes the netio channel (experiments measure batching).
func (c *Conn) Channel() *netio.Channel { return c.ch }

// Exit hands every open connection back to the registry. With abnormal set
// the registry resets the peers; otherwise it shepherds the orderly-close
// states (including TIME_WAIT) on the application's behalf.
func (l *Library) Exit(t *kern.Thread, abnormal bool) {
	for _, c := range l.sortedConns() {
		c.done = true
		c.ch.Poke()
		delete(l.conns, c)
		l.wheel.Drop(c.went)
		snap := c.tc.Snapshot()
		c.tc.SetCallbacks(tcp.Callbacks{}) // detach: the registry owns it now
		l.reg.Svc.Send(t, kern.Msg{
			Op:   "inherit",
			ID:   l.nextReqID(),
			Size: snap.Size(),
			Body: registry.InheritReq{
				Snap: snap, Cap: c.cap, Abort: abnormal,
				PeerHW: c.peerHW, PeerBQI: c.peerBQI,
			},
		})
	}
}

// fastTimer drives delayed ACKs for all library connections. In wheel
// mode only connections with a pending delayed ACK are touched; the
// classic mode walks every connection (in deterministic port order — raw
// map ranging would let two connections swap their tick-driven
// transmissions between runs).
func (l *Library) fastTimer(t *kern.Thread) {
	cost := &l.host.Cost
	for {
		t.Sleep(200 * time.Millisecond)
		if l.wheel != nil {
			l.wheel.AdvanceFast(func(e *stacks.WheelEnt, fn func()) {
				t.Compute(cost.TimerOp)
				e.Owner.(*Conn).runWheelFire(t, fn)
			})
			continue
		}
		for _, c := range l.sortedConns() {
			t.Compute(cost.TimerOp)
			c.runEngine(t, func() { c.tc.FastTick() })
		}
	}
}

// slowTimer drives the 500 ms protocol timers.
func (l *Library) slowTimer(t *kern.Thread) {
	cost := &l.host.Cost
	for {
		t.Sleep(500 * time.Millisecond)
		if l.wheel != nil {
			l.wheel.AdvanceSlow(func(e *stacks.WheelEnt, fn func()) {
				t.Compute(cost.TimerOp)
				e.Owner.(*Conn).runWheelFire(t, fn)
			})
			continue
		}
		for _, c := range l.sortedConns() {
			t.Compute(cost.TimerOp)
			c.runEngine(t, func() { c.tc.SlowTick() })
		}
	}
}

// runWheelFire runs a wheel-fire callback under the engine lock. The fire
// fn does its own Sync, so this bypasses runEngine's Sync-wrapping (which
// would double-fire the due counter before fn observes it — harmless but
// wasteful).
func (c *Conn) runWheelFire(t *kern.Thread, fn func()) {
	c.lock.P(t.Proc)
	c.cur = t
	fn()
	c.cur = nil
	c.lock.V()
}
