// Package core implements the paper's primary contribution: the user-level
// protocol library. TCP, IP and (implicitly, via setup-time resolution) ARP
// functionality is linked into the application's address space. The library
//
//   - asks the registry server to allocate end-points and complete the
//     three-way handshake, then receives the established connection's TCP
//     state, a send capability, and a shared-memory channel;
//   - thereafter runs the entire data path itself: "the server is bypassed
//     in the common path of data transmission and reception";
//   - is multithreaded: a per-connection input thread is upcalled from the
//     channel's lightweight semaphore ("protocol control block lookups are
//     eliminated by having separate threads per connection"), and fast/slow
//     timer threads drive the BSD tick machinery;
//   - moves user data through the shared region, avoiding per-byte copies
//     on the send path ("a buffer organization that eliminates byte
//     copying");
//   - on exit hands open connections back to the registry, which preserves
//     TIME_WAIT semantics or resets the peer on abnormal termination.
package core

import (
	"hash/fnv"
	"sort"
	"time"

	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/netio"
	"ulp/internal/pkt"
	"ulp/internal/registry"
	"ulp/internal/sim"
	"ulp/internal/stacks"
	"ulp/internal/tcp"
	"ulp/internal/trace"
)

// Library is one application's protocol library instance.
type Library struct {
	s    *sim.Sim
	host *kern.Host
	app  *kern.Domain
	reg  *registry.Server
	mod  *netio.Module
	nif  *stacks.Netif

	// meta, when non-nil, is the metaregistry index of a sharded registry:
	// control-plane requests are routed to the authoritative shard and
	// coalesced into per-tick batches instead of going to one server port.
	meta *registry.Meta
	// rr sequences round-robin connect routing across live shards.
	rr uint64
	// batchq feeds the batcher thread; nil outside federation mode.
	batchq *sim.Queue[batchItem]

	// busFn resolves the current trace bus (tracing may be enabled after
	// the library is created, and registry incarnations change on restart).
	busFn func() *trace.Bus

	conns map[*Conn]struct{}
	ids   ipv4.IDGen

	// wheel, when non-nil, replaces the per-tick scan of every connection
	// with timing-wheel timers: connections are touched only when a timer
	// actually fires. Enabled before any connection exists (many-host
	// worlds); nil keeps the classic per-tick loops.
	wheel *stacks.TCPWheel

	// backoff drives control-plane retry delays (capped exponential with
	// seeded jitter, shared schedule with the reconnect path).
	backoff *stacks.Backoff

	// idBase/reqSeq generate request IDs: the per-app hash base keeps IDs
	// from different libraries on one registry distinct, the counter keeps
	// them unique within the app. A retry reuses its request's ID, which
	// is what lets the registry deduplicate.
	idBase, reqSeq uint64

	// reconnecting guards the single reconnect thread.
	reconnecting bool
}

// Control-plane RPC hardening: every registry call carries a deadline and a
// bounded retry budget, so a dead or wedged registry turns into a clean
// ErrRegistryUnavailable instead of a hung application. Backoff doubles per
// attempt up to a cap with jitter so concurrent retriers do not
// re-synchronize.
const (
	rpcAttempts    = 4
	rpcBaseTimeout = 250 * time.Millisecond
	rpcTimeoutCap  = 2 * time.Second

	// reconnectAttempts bounds how long a library keeps trying to re-adopt
	// its connections with a reborn registry before surfacing a terminal
	// error. With the shared backoff schedule this spans several lease
	// TTLs — long enough for any scheduled restart, finite so a registry
	// that never returns yields ErrRegistryUnavailable, not a hang.
	reconnectAttempts = 10

	// batchWindow is how long the batcher thread holds the first queued
	// control request to coalesce whatever else the application issues in
	// the same tick into one kernel IPC per shard.
	batchWindow = 100 * time.Microsecond

	// admissionRetries bounds how often a quota-denied connect is retried
	// (each retry is a fresh request under the shared backoff schedule —
	// the denial executed nothing, so a new id is correct and required:
	// reusing the id would replay the cached denial forever).
	admissionRetries = 12
)

// nextReqID issues a fresh request id (never zero).
func (l *Library) nextReqID() uint64 {
	l.reqSeq++
	return l.idBase | l.reqSeq
}

// callRegistry issues one control-plane RPC under the deadline/retry policy.
// All attempts carry the same request ID, so a retry whose original was
// executed (reply lost) is answered from the registry's dedup cache rather
// than re-executed.
func (l *Library) callRegistry(t *kern.Thread, m kern.Msg) (kern.Msg, error) {
	return l.callPort(t, nil, m)
}

// callPort is callRegistry aimed at an explicit shard service port. A nil
// svc re-picks the default control port per attempt, so retries fail over
// past a shard that crashed mid-call.
func (l *Library) callPort(t *kern.Thread, svc *kern.Port, m kern.Msg) (kern.Msg, error) {
	m.ID = l.nextReqID()
	timeout := rpcBaseTimeout
	for attempt := 0; attempt < rpcAttempts; attempt++ {
		p := svc
		if p == nil {
			p = l.svcDefault()
		}
		if reply, ok := p.CallTimeout(t, m, timeout); ok {
			return reply, nil
		}
		if attempt < rpcAttempts-1 {
			t.Sleep(l.backoff.Next(attempt))
		}
		if timeout < rpcTimeoutCap {
			timeout *= 2
		}
	}
	return kern.Msg{}, stacks.ErrRegistryUnavailable
}

// svcDefault returns the default control port: the lone registry, or in
// federation mode the datagram-plane shard (0) with live failover.
func (l *Library) svcDefault() *kern.Port {
	if l.meta == nil {
		return l.reg.Svc
	}
	return l.meta.Svc(l.meta.Route(0))
}

// svcOwner returns the control port of the shard that owns a tuple,
// failing over to the next live shard while the owner is down.
func (l *Library) svcOwner(local, peer tcp.Endpoint) *kern.Port {
	if l.meta == nil {
		return l.reg.Svc
	}
	return l.meta.Svc(l.meta.OwnerOrSuccessor(local, peer))
}

// NewLibrary links the protocol library into an application domain.
func NewLibrary(s *sim.Sim, app *kern.Domain, reg *registry.Server) *Library {
	l := newLibrary(s, app)
	l.reg = reg
	l.nif = reg.Netif()
	l.mod = l.nif.Mod
	l.busFn = reg.Bus
	l.spawnTimers()
	return l
}

// NewLibraryFed links the protocol library against a sharded registry: the
// library routes control RPCs through the metaregistry index and coalesces
// them into per-tick batches on a dedicated batcher thread.
func NewLibraryFed(s *sim.Sim, app *kern.Domain, fed *registry.Federation) *Library {
	l := newLibrary(s, app)
	l.meta = fed.Meta()
	l.nif = fed.Netif()
	l.mod = l.nif.Mod
	l.busFn = func() *trace.Bus { return fed.Shard(0).Bus() }
	l.batchq = sim.NewQueue[batchItem](s)
	app.Spawn("lib-batch", l.batcher)
	l.spawnTimers()
	return l
}

func newLibrary(s *sim.Sim, app *kern.Domain) *Library {
	h := fnv.New64a()
	h.Write([]byte(app.String()))
	return &Library{
		s:       s,
		host:    app.Host,
		app:     app,
		conns:   make(map[*Conn]struct{}),
		backoff: stacks.NewBackoff(seedFrom(app.Host.Name), rpcBaseTimeout/2, rpcTimeoutCap),
		idBase:  h.Sum64() &^ 0xFFFFF, // low 20 bits carry the counter
	}
}

func (l *Library) spawnTimers() {
	l.app.Spawn("lib-fast", l.fastTimer)
	l.app.Spawn("lib-slow", l.slowTimer)
}

// batchItem is one control request queued for coalescing.
type batchItem struct {
	svc *kern.Port
	m   kern.Msg
}

// enqueue hands a control request to the batcher. Callable from engine
// context (a queue push has no cost and never blocks).
func (l *Library) enqueue(svc *kern.Port, m kern.Msg) {
	l.batchq.Push(batchItem{svc: svc, m: m})
}

// batcher coalesces the control requests issued within one window into a
// single kernel IPC per destination shard: under churn, the per-request
// Mach IPC + context-switch cost is paid once per batch instead of once
// per request. Arrival order is preserved within and across batches.
func (l *Library) batcher(t *kern.Thread) {
	for {
		first := l.batchq.Pop(t.Proc)
		t.Sleep(batchWindow)
		items := []batchItem{first}
		for {
			it, ok := l.batchq.TryPop()
			if !ok {
				break
			}
			items = append(items, it)
		}
		// Group by destination shard in arrival order (first-seen shard
		// flushes first — deterministic, no map iteration).
		for len(items) > 0 {
			svc := items[0].svc
			var msgs []kern.Msg
			var rest []batchItem
			size := 0
			for _, it := range items {
				if it.svc == svc {
					msgs = append(msgs, it.m)
					size += it.m.Size
				} else {
					rest = append(rest, it)
				}
			}
			if len(msgs) == 1 {
				svc.Send(t, msgs[0])
			} else {
				svc.Send(t, kern.Msg{Op: "batch", Size: size, Body: kern.Batch{Msgs: msgs}})
			}
			items = rest
		}
	}
}

// seedFrom derives a per-host jitter seed so retry schedules differ across
// hosts but are identical across runs.
func seedFrom(name string) int64 {
	s := int64(17)
	for _, ch := range name {
		s = s*31 + int64(ch)
	}
	return s
}

// Name identifies the organization.
func (l *Library) Name() string { return "userlib" }

// Host returns the host the library runs on.
func (l *Library) Host() *kern.Host { return l.host }

// Conn is a library-owned connection: the engine, its channel, capability,
// and the framing parameters negotiated at setup.
type Conn struct {
	lib  *Library
	sock *stacks.Sock
	tc   *tcp.Conn
	cap  *netio.Capability
	ch   *netio.Channel
	opts stacks.Options

	peerHW  link.Addr
	peerBQI uint16

	went *stacks.WheelEnt // timing-wheel registration (nil in tick mode)

	cur  *kern.Thread
	lock *sim.Semaphore
	done bool
}

// EnableTimerWheel switches the library's timer backend from per-tick
// scans to timing wheels. Must be called before the first connection is
// adopted.
func (l *Library) EnableTimerWheel() {
	if l.wheel == nil {
		l.wheel = stacks.NewTCPWheel()
	}
}

// Connect implements the stacks.Stack interface: active open via the
// registry, then adopt the established connection.
func (l *Library) Connect(t *kern.Thread, remote tcp.Endpoint, opts stacks.Options) (stacks.Conn, error) {
	t.Compute(t.Cost().ProcCall)
	req := registry.ConnectReq{Remote: remote, Opts: opts, Owner: l.app}
	var reply kern.Msg
	var err error
	if l.meta != nil {
		reply, err = l.connectFed(t, req)
	} else {
		reply, err = l.callRegistry(t, kern.Msg{Op: "connect", Body: req})
	}
	if err != nil {
		return nil, err
	}
	ho, ok := reply.Body.(registry.Handoff)
	if !ok {
		return nil, stacks.ErrClosed
	}
	if ho.Err != nil {
		return nil, ho.Err
	}
	return l.adopt(t, ho, opts), nil
}

// connectFed routes an active open through the federation: round-robin over
// live shards (re-picked per retry, so a crashed shard's retries fail over),
// the request riding the coalesced batch path with a private reply port per
// attempt. A quota denial is retried as a fresh request under backoff — the
// denied attempt executed nothing, and reusing its id would only replay the
// cached denial.
func (l *Library) connectFed(t *kern.Thread, req registry.ConnectReq) (kern.Msg, error) {
	id := l.nextReqID()
	timeout := rpcBaseTimeout
	denied := 0
	for attempt := 0; attempt < rpcAttempts; {
		shard := l.meta.Route(l.rr)
		l.rr++
		replyPort := kern.NewPort(l.host, "connect-reply")
		l.enqueue(l.meta.Svc(shard),
			kern.Msg{Op: "connect", ID: id, Reply: replyPort, Body: req})
		m, ok := replyPort.ReceiveTimeout(t, timeout)
		if ok {
			if ho, isHo := m.Body.(registry.Handoff); isHo && ho.Err == stacks.ErrAdmissionDenied {
				denied++
				if denied > admissionRetries {
					return m, nil // surface the denial to the application
				}
				id = l.nextReqID()
				t.Sleep(l.backoff.Next(denied - 1))
				continue // denied retries do not burn the deadline budget
			}
			return m, nil
		}
		attempt++
		if attempt < rpcAttempts {
			t.Sleep(l.backoff.Next(attempt - 1))
		}
		if timeout < rpcTimeoutCap {
			timeout *= 2
		}
	}
	return kern.Msg{}, stacks.ErrRegistryUnavailable
}

// Listener is the library side of a passive open.
type Listener struct {
	lib    *Library
	port   uint16
	opts   stacks.Options
	accept *kern.Port
}

// Listen implements stacks.Stack. In federation mode the listener is
// replicated to every live shard — a passive tuple's handshake runs on the
// shard its hash selects, and any shard must be able to answer a SYN — so
// the effective backlog is per shard (N× the single-registry bound).
func (l *Library) Listen(t *kern.Thread, port uint16, opts stacks.Options) (stacks.Listener, error) {
	t.Compute(t.Cost().ProcCall)
	acceptPort := kern.NewPort(l.host, "accept")
	req := registry.ListenReq{Port: port, Opts: opts, AcceptPort: acceptPort, Owner: l.app}
	if l.meta != nil {
		var firstErr error
		n := 0
		for i := 0; i < l.meta.Shards(); i++ {
			if !l.meta.Live(i) {
				continue // the restarted shard re-replicates from a survivor
			}
			reply, err := l.callPort(t, l.meta.Svc(i), kern.Msg{Op: "listen", Body: req})
			if err == nil {
				err, _ = reply.Body.(error)
			}
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			n++
		}
		if n == 0 {
			if firstErr == nil {
				firstErr = stacks.ErrRegistryUnavailable
			}
			return nil, firstErr
		}
		return &Listener{lib: l, port: port, opts: opts, accept: acceptPort}, nil
	}
	reply, err := l.callRegistry(t, kern.Msg{Op: "listen", Body: req})
	if err != nil {
		return nil, err
	}
	if err, _ := reply.Body.(error); err != nil {
		return nil, err
	}
	return &Listener{lib: l, port: port, opts: opts, accept: acceptPort}, nil
}

// Accept blocks for the next established connection handed off by the
// registry.
func (ln *Listener) Accept(t *kern.Thread) (stacks.Conn, error) {
	m := ln.accept.Receive(t)
	t.Compute(t.Cost().ContextSwitch) // handoff message receipt
	ho := m.Body.(registry.Handoff)
	if ho.Err != nil {
		return nil, ho.Err
	}
	return ln.lib.adopt(t, ho, ln.opts), nil
}

// Close stops listening. A registry that has become unavailable is
// tolerated: the endpoint is abandoned and reclaimed by crash cleanup. In
// federation mode the unlisten is broadcast to every live shard, mirroring
// the replicated listen.
func (ln *Listener) Close(t *kern.Thread) {
	t.Compute(t.Cost().ProcCall)
	l := ln.lib
	m := kern.Msg{Op: "unlisten", Body: registry.UnlistenReq{Port: ln.port}}
	if l.meta != nil {
		for i := 0; i < l.meta.Shards(); i++ {
			if l.meta.Live(i) {
				_, _ = l.callPort(t, l.meta.Svc(i), m)
			}
		}
		return
	}
	_, _ = l.callRegistry(t, m)
}

// adopt turns a registry handoff into a live library connection.
func (l *Library) adopt(t *kern.Thread, ho registry.Handoff, opts stacks.Options) *Conn {
	c := &Conn{
		lib:     l,
		cap:     ho.Cap,
		ch:      ho.Channel,
		opts:    opts,
		peerHW:  ho.PeerHW,
		peerBQI: ho.PeerBQI,
		lock:    l.s.NewSemaphore("conn-engine", 1),
	}
	tc := tcp.Restore(ho.Snap, tcp.Callbacks{})
	c.tc = tc
	if bus := l.busFn(); bus.Enabled() {
		tc.SetTrace(bus, l.app.String()+" "+tc.Local().String()+">"+tc.Peer().String())
	}
	sock := stacks.NewSock(l.s, tc)
	cost := &l.host.Cost
	sock.Entry = func(t *kern.Thread) { t.Compute(cost.ProcCall) }
	sock.Run = c.runEngine
	// Send-side data enters the shared region without a per-byte copy.
	sock.WriteMove = func(t *kern.Thread, n int) { t.Compute(cost.SockbufOp) }
	sock.ReadMove = func(t *kern.Thread, n int) { t.Compute(cost.Copy(n) + cost.SockbufOp) }
	c.sock = sock

	cb := sock.Callbacks(func(seg *stacks.Seg) { c.transmit(seg) })
	innerClosed := cb.OnClosed
	cb.OnClosed = func(err error) {
		innerClosed(err)
		c.teardown()
	}
	tc.SetCallbacks(cb)
	sock.MarkEstablished()

	l.conns[c] = struct{}{}
	if l.wheel != nil {
		c.went = l.wheel.Add(tc, c)
		// An empty engine pass syncs the restored counters (the handshake
		// may have left the keepalive or retransmit timer armed) onto the
		// wheel.
		c.runEngine(t, func() {})
	}
	l.app.Spawn("conn-input", c.inputThread)
	return c
}

// transmit is the library's data-path output: protocol processing in the
// calling thread, headers built in the shared region, then the specialized
// kernel entry with the send capability.
func (c *Conn) transmit(seg *stacks.Seg) {
	t := c.cur
	if t == nil {
		panic("core: engine transmit outside runEngine")
	}
	t.Compute(stacks.SegCost(c.lib.host, seg.PayloadLen, c.opts.NoChecksum))
	ih := ipv4.Header{
		ID: c.lib.ids.Next(), DF: true, TTL: 64,
		Proto: ipv4.ProtoTCP, Src: c.tc.Local().IP, Dst: c.tc.Peer().IP,
	}
	ih.Encode(seg.Buf)
	if c.lib.nif.IsAN1() {
		lh := link.AN1Header{Dst: c.peerHW, Src: c.lib.nif.HW, BQI: c.peerBQI, Type: link.TypeIPv4}
		lh.Encode(seg.Buf)
	} else {
		lh := link.EthHeader{Dst: c.peerHW, Src: c.lib.nif.HW, Type: link.TypeIPv4}
		lh.Encode(seg.Buf)
	}
	// Template violations cannot happen from this code path; a buggy or
	// malicious library would be stopped here by the kernel. A lease
	// rejection is different: it means the control plane died and our
	// endpoint is quarantined — kick off re-registration with the (to-be-)
	// reborn registry. The rejected segment is recovered by ordinary TCP
	// retransmission once the quarantine lifts.
	if err := c.lib.mod.Send(t, c.cap, seg.Buf); err == netio.ErrLeaseExpired {
		c.lib.scheduleReconnect()
	}
}

// scheduleReconnect starts the (single) reconnect thread. Called from
// engine context, so it only spawns; the loop does the blocking work.
func (l *Library) scheduleReconnect() {
	if l.reconnecting {
		return
	}
	l.reconnecting = true
	l.app.Spawn("reconnect", l.reconnectLoop)
}

// reconnectLoop retries re-registration of every live connection with
// capped exponential backoff + seeded jitter (the schedule shared with
// callRegistry). When the budget is spent without reaching a registry, a
// terminal ErrRegistryUnavailable is surfaced on every connection.
func (l *Library) reconnectLoop(t *kern.Thread) {
	defer func() { l.reconnecting = false }()
	for attempt := 0; attempt < reconnectAttempts; attempt++ {
		t.Sleep(l.backoff.Next(attempt))
		if l.reregisterAll(t) {
			return
		}
		if len(l.conns) == 0 {
			return // nothing left to re-adopt
		}
	}
	for _, c := range l.sortedConns() {
		c.fail(stacks.ErrRegistryUnavailable)
	}
}

// reregisterAll re-claims every live connection with the registry. It
// reports whether the registry answered; a refused claim (capability
// revoked, template mismatch) fails that connection but counts as contact.
func (l *Library) reregisterAll(t *kern.Thread) bool {
	for _, c := range l.sortedConns() {
		snap := c.tc.Snapshot()
		m := kern.Msg{Op: "reregister", ID: l.nextReqID(), Body: registry.ReRegisterReq{
			Local: c.tc.Local(), Peer: c.tc.Peer(), Cap: c.cap,
			PeerHW: c.peerHW, PeerBQI: c.peerBQI,
			SndNxt: snap.SndNxt, RcvNxt: snap.RcvNxt,
			Owner: l.app,
		}}
		reply, ok := l.svcOwner(c.tc.Local(), c.tc.Peer()).CallTimeout(t, m, rpcBaseTimeout)
		if !ok {
			return false
		}
		if err, _ := reply.Body.(error); err != nil {
			// The reborn registry refused the claim: this endpoint no
			// longer exists as far as the kernel is concerned.
			c.fail(stacks.ErrReset)
		}
	}
	return true
}

// sortedConns returns the live connections in local-port order, so map
// iteration cannot perturb the deterministic schedule.
func (l *Library) sortedConns() []*Conn {
	out := make([]*Conn, 0, len(l.conns))
	for c := range l.conns {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].tc.Local().Port < out[j].tc.Local().Port
	})
	return out
}

// fail terminates a connection without driving the engine: the control
// plane is unreachable (or repudiated the connection), so there is nothing
// orderly left to do. Blocked readers and writers wake with err.
func (c *Conn) fail(err error) {
	if c.done {
		return
	}
	c.done = true
	c.ch.Poke()
	delete(c.lib.conns, c)
	c.lib.wheel.Drop(c.went)
	c.tc.SetCallbacks(tcp.Callbacks{})
	c.sock.Fail(err)
}

// inputThread is the per-connection upcalled thread: it waits on the
// channel's lightweight semaphore and feeds batches to the engine.
//
// Zero-copy interplay: on a ZeroCopyRx channel the batch frames are the
// module's pool buffers handed over by reference, with the channel holding
// a lien that settles at the next Wait. The contract this loop satisfies is
// that a batch is fully consumed before Wait is called again — inputFrame
// releases each frame after TCP reassembly copies what it keeps, and the
// deferred sweep below covers a mid-batch kill — so the lien settling
// underneath us can never free storage we still read.
func (c *Conn) inputThread(t *kern.Thread) {
	cost := &c.lib.host.Cost
	// If the domain is killed mid-batch (Kill runs deferred functions via
	// Goexit), the frame being processed is released by inputFrame's own
	// defer — but the rest of the drained batch would leak: it has already
	// left the channel, so no sweep can see it. Hold the batch in
	// function scope and release the unprocessed tail on the way out.
	var batch []*pkt.Buf
	next := 0
	defer func() {
		for _, b := range batch[next:] {
			b.Release()
		}
	}()
	for !c.done {
		batch = c.ch.Wait(t)
		next = 0
		if len(batch) == 0 {
			continue // poked for shutdown or spurious wakeup
		}
		for i, b := range batch {
			next = i + 1
			c.inputFrame(t, b)
		}
		if c.sock.ReadableWaiters() > 0 {
			// Hand off to the blocked application thread.
			t.Compute(cost.ThreadSwitch)
		}
	}
}

// inputFrame processes one frame from the shared region. The frame dies
// here on every path — tcp.Conn.Input copies the payload bytes it keeps —
// so the buffer goes back to the free list when processing completes.
func (c *Conn) inputFrame(t *kern.Thread, b *pkt.Buf) {
	defer b.Release()
	var et link.EtherType
	if c.lib.nif.IsAN1() {
		h, err := link.DecodeAN1(b)
		if err != nil {
			return
		}
		et = h.Type
	} else {
		h, err := link.DecodeEth(b)
		if err != nil {
			return
		}
		et = h.Type
	}
	if et != link.TypeIPv4 {
		return
	}
	ih, err := ipv4.Decode(b)
	if err != nil || ih.Proto != ipv4.ProtoTCP || ih.Dst != c.tc.Local().IP {
		return
	}
	th, err := tcp.Decode(b, ih.Src, ih.Dst)
	if err != nil {
		return // checksum failure: drop, retransmission recovers
	}
	t.Compute(stacks.SegCost(c.lib.host, b.Len(), c.opts.NoChecksum))
	c.runEngine(t, func() { c.tc.Input(th, b.Bytes()) })
}

func (c *Conn) runEngine(t *kern.Thread, fn func()) {
	c.lock.P(t.Proc)
	c.cur = t
	if c.went != nil {
		// Catch the tick counters up to the wheel clock before the engine
		// reads them, and put whatever fn arms onto the wheel afterwards.
		c.lib.wheel.Sync(c.went)
		fn()
		c.lib.wheel.Sync(c.went)
	} else {
		fn()
	}
	c.cur = nil
	c.lock.V()
}

// teardown releases registry-held resources once the engine fully closes.
// Fire-and-forget; in federation mode it is routed to the owning shard and
// rides the coalesced batch path.
func (c *Conn) teardown() {
	c.done = true
	c.ch.Poke()
	l := c.lib
	delete(l.conns, c)
	l.wheel.Drop(c.went)
	m := kern.Msg{Op: "teardown", ID: l.nextReqID(),
		Body: registry.TeardownReq{
			Local: c.tc.Local(), Peer: c.tc.Peer(), Cap: c.cap,
		}}
	if l.meta != nil {
		l.enqueue(l.svcOwner(c.tc.Local(), c.tc.Peer()), m)
		return
	}
	l.reg.Svc.SendAsync(m)
}

// Read implements stacks.Conn.
func (c *Conn) Read(t *kern.Thread, p []byte) (int, error) { return c.sock.Read(t, p) }

// Write implements stacks.Conn.
func (c *Conn) Write(t *kern.Thread, p []byte) (int, error) {
	return c.sock.Write(t, p)
}

// Close implements stacks.Conn: the orderly release runs entirely in the
// library ("under normal operation, connection shutdown is done by the
// protocol library").
func (c *Conn) Close(t *kern.Thread) error {
	c.runEngineFrom(t, func() { c.tc.Close() })
	return nil
}

// runEngineFrom charges the socket-call entry then runs the engine.
func (c *Conn) runEngineFrom(t *kern.Thread, fn func()) {
	t.Compute(t.Cost().ProcCall)
	c.runEngine(t, fn)
}

// Stats implements stacks.Conn.
func (c *Conn) Stats() tcp.Stats { return c.tc.Stats() }

// State implements stacks.Conn.
func (c *Conn) State() tcp.State { return c.tc.State() }

// Channel exposes the netio channel (experiments measure batching).
func (c *Conn) Channel() *netio.Channel { return c.ch }

// Exit hands every open connection back to the registry. With abnormal set
// the registry resets the peers; otherwise it shepherds the orderly-close
// states (including TIME_WAIT) on the application's behalf.
func (l *Library) Exit(t *kern.Thread, abnormal bool) {
	for _, c := range l.sortedConns() {
		c.done = true
		c.ch.Poke()
		delete(l.conns, c)
		l.wheel.Drop(c.went)
		snap := c.tc.Snapshot()
		c.tc.SetCallbacks(tcp.Callbacks{}) // detach: the registry owns it now
		l.svcOwner(c.tc.Local(), c.tc.Peer()).Send(t, kern.Msg{
			Op:   "inherit",
			ID:   l.nextReqID(),
			Size: snap.Size(),
			Body: registry.InheritReq{
				Snap: snap, Cap: c.cap, Abort: abnormal,
				PeerHW: c.peerHW, PeerBQI: c.peerBQI,
			},
		})
	}
}

// fastTimer drives delayed ACKs for all library connections. In wheel
// mode only connections with a pending delayed ACK are touched; the
// classic mode walks every connection (in deterministic port order — raw
// map ranging would let two connections swap their tick-driven
// transmissions between runs).
func (l *Library) fastTimer(t *kern.Thread) {
	cost := &l.host.Cost
	for {
		t.Sleep(200 * time.Millisecond)
		if l.wheel != nil {
			l.wheel.AdvanceFast(func(e *stacks.WheelEnt, fn func()) {
				t.Compute(cost.TimerOp)
				e.Owner.(*Conn).runWheelFire(t, fn)
			})
			continue
		}
		for _, c := range l.sortedConns() {
			t.Compute(cost.TimerOp)
			c.runEngine(t, func() { c.tc.FastTick() })
		}
	}
}

// slowTimer drives the 500 ms protocol timers.
func (l *Library) slowTimer(t *kern.Thread) {
	cost := &l.host.Cost
	for {
		t.Sleep(500 * time.Millisecond)
		if l.wheel != nil {
			l.wheel.AdvanceSlow(func(e *stacks.WheelEnt, fn func()) {
				t.Compute(cost.TimerOp)
				e.Owner.(*Conn).runWheelFire(t, fn)
			})
			continue
		}
		for _, c := range l.sortedConns() {
			t.Compute(cost.TimerOp)
			c.runEngine(t, func() { c.tc.SlowTick() })
		}
	}
}

// runWheelFire runs a wheel-fire callback under the engine lock. The fire
// fn does its own Sync, so this bypasses runEngine's Sync-wrapping (which
// would double-fire the due counter before fn observes it — harmless but
// wasteful).
func (c *Conn) runWheelFire(t *kern.Thread, fn func()) {
	c.lock.P(t.Proc)
	c.cur = t
	fn()
	c.cur = nil
	c.lock.V()
}
