package core

import (
	"fmt"

	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/netio"
	"ulp/internal/pkt"
	"ulp/internal/registry"
	"ulp/internal/stacks"
	"ulp/internal/udp"
)

// UDPConn is a user-level datagram end-point: a channel and capability
// obtained from the registry at bind time, after which datagram traffic
// bypasses the server entirely — the §5 connectionless/RPC case. Resolve
// is the address-binding phase; SendTo is the bypassed fast path; SendVia
// is the pre-binding relayed path (kept for the ablation that measures
// what bypassing saves).
type UDPConn struct {
	lib   *Library
	cap   *netio.Capability
	ch    *netio.Channel
	local udp.Endpoint

	// peers maps resolved addresses from the binding phase.
	peers map[ipv4.Addr]link.Addr
	// queue holds datagrams parsed but not yet consumed.
	queue []udp.Datagram
}

// BindUDP allocates a datagram end-point through the registry.
func (l *Library) BindUDP(t *kern.Thread, port uint16) (*UDPConn, error) {
	t.Compute(t.Cost().ProcCall)
	reply, err := l.callRegistry(t, kern.Msg{Op: "bind-udp", Body: registry.BindUDPReq{Port: port, Owner: l.app}})
	if err != nil {
		return nil, err
	}
	ho, ok := reply.Body.(registry.UDPHandoff)
	if !ok {
		return nil, stacks.ErrClosed
	}
	if ho.Err != nil {
		return nil, ho.Err
	}
	return &UDPConn{
		lib:   l,
		cap:   ho.Cap,
		ch:    ho.Channel,
		local: udp.Endpoint{IP: l.nif.IP, Port: port},
		peers: make(map[ipv4.Addr]link.Addr),
	}, nil
}

// Local returns the bound end-point.
func (u *UDPConn) Local() udp.Endpoint { return u.local }

// Resolve performs the address-binding phase for a peer. Subsequent
// SendTo calls to that peer bypass the registry.
func (u *UDPConn) Resolve(t *kern.Thread, ip ipv4.Addr) error {
	if _, ok := u.peers[ip]; ok {
		return nil
	}
	t.Compute(t.Cost().ProcCall)
	reply, err := u.lib.callRegistry(t, kern.Msg{Op: "resolve", Body: registry.ResolveReq{IP: ip}})
	if err != nil {
		return err
	}
	rr, ok := reply.Body.(registry.ResolveReply)
	if !ok {
		return stacks.ErrClosed
	}
	if rr.Err != nil {
		return rr.Err
	}
	u.peers[ip] = rr.HW
	return nil
}

// maxDatagram returns the largest payload a single link frame carries (the
// library path does not fragment; the paper's request-response workloads
// are small).
func (u *UDPConn) maxDatagram() int {
	return u.lib.nif.Mod.Device().MTU() - ipv4.HeaderLen - udp.HeaderLen
}

// buildFrame assembles the complete link frame for a datagram.
func (u *UDPConn) buildFrame(dst udp.Endpoint, hw link.Addr, payload []byte) *pkt.Buf {
	nif := u.lib.nif
	b := pkt.FromBytes(nif.Headroom()+udp.HeaderLen, payload)
	uh := udp.Header{SrcPort: u.local.Port, DstPort: dst.Port}
	uh.Encode(b, u.local.IP, dst.IP)
	ih := ipv4.Header{ID: u.lib.ids.Next(), DF: true, TTL: 64, Proto: ipv4.ProtoUDP, Src: u.local.IP, Dst: dst.IP}
	ih.Encode(b)
	if nif.IsAN1() {
		lh := link.AN1Header{Dst: hw, Src: nif.HW, Type: link.TypeIPv4}
		lh.Encode(b)
	} else {
		lh := link.EthHeader{Dst: hw, Src: nif.HW, Type: link.TypeIPv4}
		lh.Encode(b)
	}
	return b
}

// SendTo transmits a datagram on the bypassed fast path; the peer must
// have been resolved (implicitly resolving on first use).
func (u *UDPConn) SendTo(t *kern.Thread, dst udp.Endpoint, payload []byte) error {
	if len(payload) > u.maxDatagram() {
		return fmt.Errorf("core: datagram %d exceeds link maximum %d", len(payload), u.maxDatagram())
	}
	hw, ok := u.peers[dst.IP]
	if !ok {
		if err := u.Resolve(t, dst.IP); err != nil {
			return err
		}
		hw = u.peers[dst.IP]
	}
	c := t.Cost()
	t.Compute(c.ProcCall + c.UDPPacket + c.Checksum(len(payload)) + c.SockbufOp)
	return u.lib.mod.Send(t, u.cap, u.buildFrame(dst, hw, payload))
}

// SendVia relays a datagram through the registry — the pre-binding path a
// dedicated-server organization pays on every send. The RPC ablation
// measures SendTo against it.
func (u *UDPConn) SendVia(t *kern.Thread, dst udp.Endpoint, payload []byte) error {
	if len(payload) > u.maxDatagram() {
		return fmt.Errorf("core: datagram %d exceeds link maximum %d", len(payload), u.maxDatagram())
	}
	hw, ok := u.peers[dst.IP]
	if !ok {
		if err := u.Resolve(t, dst.IP); err != nil {
			return err
		}
		hw = u.peers[dst.IP]
	}
	c := t.Cost()
	t.Compute(c.ProcCall + c.UDPPacket + c.Checksum(len(payload)) + c.SockbufOp)
	_, err := u.lib.callRegistry(t, kern.Msg{
		Op:   "udp-send",
		Size: len(payload),
		Body: registry.UDPSendReq{SrcPort: u.local.Port, Dst: dst.IP, Frame: u.buildFrame(dst, hw, payload)},
	})
	return err
}

// Recv blocks for the next datagram.
func (u *UDPConn) Recv(t *kern.Thread) udp.Datagram {
	c := t.Cost()
	for len(u.queue) == 0 {
		batch := u.ch.Wait(t)
		for _, b := range batch {
			if d, ok := u.parse(b); ok {
				t.Compute(c.UDPPacket + c.Checksum(len(d.Payload)))
				u.queue = append(u.queue, d)
			}
			// parse copied the payload it kept; the frame dies here, so
			// the pool (and a zero-copy channel's lien) can recycle it.
			b.Release()
		}
	}
	d := u.queue[0]
	u.queue = u.queue[1:]
	t.Compute(c.Copy(len(d.Payload)))
	return d
}

// parse decodes a channel frame into a datagram.
func (u *UDPConn) parse(b *pkt.Buf) (udp.Datagram, bool) {
	nif := u.lib.nif
	if nif.IsAN1() {
		if _, err := link.DecodeAN1(b); err != nil {
			return udp.Datagram{}, false
		}
	} else {
		if _, err := link.DecodeEth(b); err != nil {
			return udp.Datagram{}, false
		}
	}
	ih, err := ipv4.Decode(b)
	if err != nil || ih.Proto != ipv4.ProtoUDP || ih.Dst != u.local.IP {
		return udp.Datagram{}, false
	}
	uh, err := udp.Decode(b, ih.Src, ih.Dst)
	if err != nil {
		return udp.Datagram{}, false
	}
	return udp.Datagram{
		From:    udp.Endpoint{IP: ih.Src, Port: uh.SrcPort},
		Payload: append([]byte(nil), b.Bytes()...),
	}, true
}

// Close releases the end-point.
func (u *UDPConn) Close(t *kern.Thread) {
	t.Compute(t.Cost().ProcCall)
	u.lib.svcDefault().Send(t, kern.Msg{Op: "unbind-udp", Body: registry.UnbindUDPReq{Port: u.local.Port, Cap: u.cap}})
}
