package registry

import (
	"time"

	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/pkt"
	"ulp/internal/stacks"
	"ulp/internal/tcp"
	"ulp/internal/trace"
)

// inputLoop is the registry's default-path receive thread: everything the
// per-connection demultiplexing did not claim arrives here — handshake
// segments, ARP, strays for transferred connections, and segments for
// nonexistent endpoints (answered with RST).
func (r *Server) inputLoop(t *kern.Thread) {
	c := &r.host.Cost
	for {
		b := r.rxq.Pop(t.Proc)
		t.Compute(c.ThreadSwitch)
		r.input(t, b)
	}
}

func (r *Server) input(t *kern.Thread, b *pkt.Buf) {
	// The frame dies here on every path: ARP replies and forwarded segments
	// are built in fresh buffers, reassembly and tcp.Conn.Input copy the
	// bytes they keep.
	defer b.Release()
	var et link.EtherType
	advBQI := uint16(0)
	if r.nif.IsAN1() {
		h, err := link.DecodeAN1(b)
		if err != nil {
			return
		}
		et = h.Type
		advBQI = h.AdvBQI
	} else {
		h, err := link.DecodeEth(b)
		if err != nil {
			return
		}
		et = h.Type
	}
	switch et {
	case link.TypeARP:
		r.nif.InputARP(t, b, r.nif.Mod.SendKernel)
		return
	case link.TypeIPv4:
	default:
		return
	}
	h, data, ok := r.nif.InputIP(b)
	if !ok {
		return
	}
	switch h.Proto {
	case ipv4.ProtoTCP:
		r.inputTCP(t, h, data, advBQI)
	case ipv4.ProtoUDP:
		r.inputUDP(t, h, data)
	}
}

// inputUDP demultiplexes default-path datagrams to bound library
// end-points (the software fallback when BQIs cannot be negotiated).
func (r *Server) inputUDP(t *kern.Thread, h ipv4.Header, data []byte) {
	if len(data) < 4 {
		return
	}
	dstPort := uint16(data[2])<<8 | uint16(data[3])
	ub, ok := r.udpChannels[dstPort]
	if !ok {
		return // port unreachable: the simplified IP library drops
	}
	ih := ipv4.Header{ID: h.ID, TTL: h.TTL, Proto: ipv4.ProtoUDP, Src: h.Src, Dst: h.Dst}
	fwd := pkt.FromBytes(r.nif.Mod.Device().HdrLen()+ipv4.HeaderLen, data)
	ih.Encode(fwd)
	if r.nif.IsAN1() {
		lh := link.AN1Header{Dst: r.nif.HW, Src: r.nif.HW, Type: link.TypeIPv4}
		lh.Encode(fwd)
	} else {
		lh := link.EthHeader{Dst: r.nif.HW, Src: r.nif.HW, Type: link.TypeIPv4}
		lh.Encode(fwd)
	}
	ub.ch.Inject(fwd)
}

func (r *Server) inputTCP(t *kern.Thread, h ipv4.Header, data []byte, advBQI uint16) {
	seg := pkt.FromBytes(0, data)
	defer seg.Release()
	th, err := tcp.Decode(seg, h.Src, h.Dst)
	if err != nil {
		return
	}
	local := tcp.Endpoint{IP: h.Dst, Port: th.DstPort}
	peer := tcp.Endpoint{IP: h.Src, Port: th.SrcPort}
	t.Compute(stacks.SegCost(r.host, seg.Len(), false))

	// Registry-owned pcb (handshaking or inherited)?
	if tc, ok := r.owned.LookupExact(local, peer); ok {
		hc := r.conns[tc]
		if hc != nil && advBQI != 0 {
			// Learn the peer's data-phase BQI from the link header.
			hc.peerBQI = advBQI
		}
		r.runConn(t, hc, func() { tc.Input(th, seg.Bytes()) })
		return
	}

	// Stray default-path segment of a transferred connection (e.g. a
	// retransmitted handshake ACK on the AN1): forward into its channel by
	// rebuilding the frame bytes the channel consumer expects.
	if xc, ok := r.transferred[tcp.FourTuple{Local: local, Peer: peer}]; ok {
		// Re-encode IP + link headers so the library-side input path can
		// parse the frame uniformly.
		ih := ipv4.Header{ID: h.ID, TTL: h.TTL, Proto: ipv4.ProtoTCP, Src: h.Src, Dst: h.Dst}
		fwd := pkt.FromBytes(r.nif.Mod.Device().HdrLen()+ipv4.HeaderLen, data)
		ih.Encode(fwd)
		if r.nif.IsAN1() {
			lh := link.AN1Header{Dst: r.nif.HW, Src: r.nif.HW, Type: link.TypeIPv4}
			lh.Encode(fwd)
		} else {
			lh := link.EthHeader{Dst: r.nif.HW, Src: r.nif.HW, Type: link.TypeIPv4}
			lh.Encode(fwd)
		}
		xc.ch.Inject(fwd)
		return
	}

	// SYN for a registered listener: clone a pcb and let the handshake
	// proceed; setup of the user channel happens before the SYN|ACK goes
	// out so the BQI can ride its link header.
	if l, ok := r.listeners[local.Port]; ok &&
		th.Flags&tcp.FlagSYN != 0 && th.Flags&(tcp.FlagACK|tcp.FlagRST) == 0 {
		if l.pending >= l.backlog {
			// Backlog full: drop the SYN deterministically instead of
			// growing hsConn state without bound under a SYN flood. The
			// legitimate client's retransmission retries once a slot
			// frees; the flood's segments die here.
			r.synDrops++
			if r.bus.Enabled() {
				r.bus.Emit(trace.Event{Kind: trace.ListenDrop, Node: r.host.Name,
					A: int64(local.Port), B: int64(l.pending)})
			}
			return
		}
		hc := &hsConn{opts: l.opts, owner: l.owner, l: l, peerBQI: advBQI}
		if r.nif.IsAN1() {
			t.Compute(t.Cost().BQIReserve)
			bqi, err := r.nif.Mod.ReserveBQI(r.dom)
			if err != nil {
				return
			}
			hc.ourBQI = bqi
		}
		tc := tcp.NewConn(r.tcpConfig(l.opts), local, peer, tcp.Callbacks{})
		tc.SetISS(r.nextISS())
		hc.tc = tc
		r.attach(tc, hc)
		tc.OpenListen()
		if err := r.owned.Insert(tc); err != nil {
			// Duplicate tuple: drop, and unwind everything attach and the
			// BQI reservation allocated — the wheel entry and ring index
			// would otherwise leak on every colliding SYN.
			delete(r.conns, tc)
			r.wheel.Drop(hc.went)
			r.dropBQI(hc)
			return
		}
		l.pending++
		hc.inBacklog = true
		r.runConn(t, hc, func() { tc.Input(th, seg.Bytes()) })
		return
	}

	// No endpoint: reset. A federation shard only resets tuples it
	// authoritatively owns — a stray steered here because its owner shard
	// is down must be dropped, not answered: the connection it belongs to
	// is alive in some library, and an RST from a non-owner would kill it.
	if r.fed != nil && !r.fed.authoritative(r, local, peer) {
		return
	}
	if rst, rb := tcp.MakeRST(th, seg.Len(), r.nif.Headroom(), local, peer); rst != nil {
		r.nif.WrapIP(rb, ipv4.ProtoTCP, peer.IP)
		r.resolveAndSend(t, rb, peer.IP, 0, 0)
	}
}

// fastTimer drives delayed ACKs for registry-owned pcbs. In wheel mode
// only pcbs with a pending delayed ACK are touched; the classic mode
// scans every owned pcb each tick.
func (r *Server) fastTimer(t *kern.Thread) {
	c := &r.host.Cost
	for {
		t.Sleep(200 * time.Millisecond)
		if r.wheel != nil {
			r.runEngine(t, func() {
				r.wheel.AdvanceFast(func(e *stacks.WheelEnt, fn func()) {
					t.Compute(c.TimerOp)
					fn()
				})
			})
			continue
		}
		r.runEngine(t, func() {
			r.owned.Each(func(tc *tcp.Conn) {
				t.Compute(c.TimerOp)
				tc.FastTick()
			})
		})
	}
}

// slowTimer drives protocol timers (including inherited TIME_WAIT pcbs)
// plus ARP and reassembly expiry.
func (r *Server) slowTimer(t *kern.Thread) {
	c := &r.host.Cost
	for {
		t.Sleep(500 * time.Millisecond)
		if r.wheel != nil {
			r.runEngine(t, func() {
				r.wheel.AdvanceSlow(func(e *stacks.WheelEnt, fn func()) {
					t.Compute(c.TimerOp)
					fn()
				})
			})
		} else {
			r.runEngine(t, func() {
				r.owned.Each(func(tc *tcp.Conn) {
					t.Compute(c.TimerOp)
					tc.SlowTick()
				})
			})
		}
		r.nif.Rsm.Expire(r.nifNow())
	}
}
