package registry

import (
	"time"

	"ulp/internal/filter"
	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/netio"
	"ulp/internal/pkt"
	"ulp/internal/stacks"
)

// The paper's §5 observation for connectionless protocols: "typical
// request-response protocols do not require an initial connection setup,
// yet require authorized connection identifiers ... these protocols are
// often used in an overall context that has a connection setup (or address
// binding) phase, e.g., in an RPC system. In these cases, after the address
// binding phase, the dedicated server can be bypassed." This file is that
// binding phase: the registry allocates UDP end-points, builds their
// channels and capabilities, and resolves peer link addresses; datagram
// traffic then flows directly between library and network I/O module.

// BindUDPReq asks the registry to allocate a datagram end-point. Owner, as
// in ConnectReq, enables crash reclamation; nil opts out.
type BindUDPReq struct {
	Port  uint16
	Owner *kern.Domain
}

// UDPHandoff conveys the datagram end-point's channel and capability.
type UDPHandoff struct {
	Cap     *netio.Capability
	Channel *netio.Channel
	Err     error
}

// ResolveReq asks the registry to resolve a peer's link address (the
// address-binding phase of an RPC system).
type ResolveReq struct {
	IP ipv4.Addr
}

// ResolveReply carries the resolution result.
type ResolveReply struct {
	HW  link.Addr
	Err error
}

// UDPSendReq relays one datagram through the registry (the un-optimized
// pre-binding path a dedicated-server organization would use for every
// datagram; the RPC ablation measures what bypassing it saves).
type UDPSendReq struct {
	SrcPort uint16
	Dst     ipv4.Addr
	Frame   *pkt.Buf // complete link frame, built by the library
}

// UnbindUDPReq releases a datagram end-point.
type UnbindUDPReq struct {
	Port uint16
	Cap  *netio.Capability
}

// handleBindUDP allocates the port and builds the channel.
func (r *Server) handleBindUDP(t *kern.Thread, m kern.Msg, req BindUDPReq) {
	c := t.Cost()
	t.Compute(c.RegistryPortAlloc + c.ChannelSetup)
	if !r.udpPorts.Reserve(req.Port) {
		r.finish(t, m, kern.Msg{Op: "udp-handoff", Body: UDPHandoff{Err: stacks.ErrPortInUse}})
		return
	}
	spec := filter.Spec{
		LinkHdrLen: r.nif.Mod.Device().HdrLen(),
		Proto:      ipv4.ProtoUDP,
		LocalIP:    r.nif.IP, LocalPort: req.Port,
	}
	tmpl := netio.Template{
		LinkSrc: r.nif.HW, Type: link.TypeIPv4,
		Proto:   ipv4.ProtoUDP,
		LocalIP: r.nif.IP, LocalPort: req.Port,
	}
	var bqi uint16
	if r.nif.IsAN1() {
		t.Compute(c.BQIReserve)
		bqi, _ = r.nif.Mod.ReserveBQI(r.dom)
	}
	cap, ch, err := r.nif.Mod.CreateChannelBQI(r.dom, spec, tmpl, 32, bqi)
	if err != nil {
		r.udpPorts.Release(req.Port)
		r.finish(t, m, kern.Msg{Op: "udp-handoff", Body: UDPHandoff{Err: err}})
		return
	}
	if req.Owner != nil {
		_ = r.nif.Mod.AssignOwner(r.dom, cap, req.Owner)
		r.watch(req.Owner)
	}
	r.udpChannels[req.Port] = &udpBinding{owner: req.Owner, ch: ch, cap: cap}
	r.finish(t, m, kern.Msg{Op: "udp-handoff", Body: UDPHandoff{Cap: cap, Channel: ch}})
}

// handleResolve performs the address-binding resolution, driving ARP as
// needed.
func (r *Server) handleResolve(t *kern.Thread, m kern.Msg, req ResolveReq) {
	if !ipv4.SameSubnet(r.nif.IP, req.IP) {
		r.finish(t, m, kern.Msg{Op: "resolve-reply", Body: ResolveReply{Err: stacks.ErrUnreachable}})
		return
	}
	for attempt := 0; attempt < 5; attempt++ {
		if hw, ok := r.nif.ARP.Lookup(r.nifNow(), req.IP); ok {
			r.finish(t, m, kern.Msg{Op: "resolve-reply", Body: ResolveReply{HW: hw}})
			return
		}
		r.txARPRequest(t, req.IP)
		t.Sleep(2 * time.Millisecond)
	}
	r.finish(t, m, kern.Msg{Op: "resolve-reply", Body: ResolveReply{Err: stacks.ErrUnreachable}})
}

// txARPRequest broadcasts an ARP request for ip.
func (r *Server) txARPRequest(t *kern.Thread, ip ipv4.Addr) {
	req := r.nif.ARP.MakeRequest(ip)
	b := req.Encode(r.nif.Mod.Device().HdrLen())
	if r.nif.IsAN1() {
		h := link.AN1Header{Dst: link.Broadcast, Src: r.nif.HW, Type: link.TypeARP}
		h.Encode(b)
	} else {
		h := link.EthHeader{Dst: link.Broadcast, Src: r.nif.HW, Type: link.TypeARP}
		h.Encode(b)
	}
	r.nif.Mod.SendKernel(t, b)
}

// handleUDPSend relays a datagram through the registry's kernel path.
func (r *Server) handleUDPSend(t *kern.Thread, m kern.Msg, req UDPSendReq) {
	c := t.Cost()
	t.Compute(c.RegistrySendPath)
	r.nif.Mod.SendKernel(t, req.Frame)
	r.finish(t, m, kern.Msg{Op: "udp-send-ack"})
}

// handleUnbindUDP reclaims a datagram end-point.
func (r *Server) handleUnbindUDP(t *kern.Thread, req UnbindUDPReq) {
	if req.Cap != nil {
		_ = r.nif.Mod.DestroyChannel(r.dom, req.Cap)
	}
	delete(r.udpChannels, req.Port)
	r.udpPorts.Release(req.Port)
}
