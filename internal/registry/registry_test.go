package registry

import (
	"testing"
	"time"

	"ulp/internal/costs"
	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/netdev"
	"ulp/internal/netio"
	"ulp/internal/pkt"
	"ulp/internal/sim"
	"ulp/internal/stacks"
	"ulp/internal/tcp"
	"ulp/internal/wire"
)

// rig is a two-host world with a registry on each host and raw access to
// the registry service ports (tests speak the library protocol directly).
type rig struct {
	s      *sim.Sim
	r0, r1 *Server
	ips    []ipv4.Addr
	apps   []*kern.Domain
}

func newRig(an1 bool) *rig {
	s := sim.New()
	var seg *wire.Segment
	if an1 {
		seg = wire.New(s, wire.AN1Config())
	} else {
		seg = wire.New(s, wire.EthernetConfig())
	}
	rg := &rig{s: s, ips: []ipv4.Addr{{10, 0, 0, 1}, {10, 0, 0, 2}}}
	mk := func(i int) *Server {
		h := kern.NewHost(s, []string{"h0", "h1"}[i], costs.Default())
		var dev netdev.Device
		if an1 {
			dev = netdev.NewAN1(h, seg, link.MakeAddr(i+1), 0)
		} else {
			dev = netdev.NewLance(h, seg, link.MakeAddr(i+1))
		}
		mod := netio.New(h, dev)
		rg.apps = append(rg.apps, h.NewDomain("app", false))
		return New(s, mod, rg.ips[i])
	}
	rg.r0 = mk(0)
	rg.r1 = mk(1)
	return rg
}

// listenOn registers a listener on r0:port through the service protocol and
// returns the accept port.
func (rg *rig) listenOn(t *testing.T, port uint16) *kern.Port {
	t.Helper()
	accept := kern.NewPort(rg.r0.Host(), "accept")
	done := false
	var failure error
	rg.apps[0].Spawn("listen", func(th *kern.Thread) {
		reply := rg.r0.Svc.Call(th, kern.Msg{Op: "listen", Body: ListenReq{Port: port, AcceptPort: accept}})
		if err, _ := reply.Body.(error); err != nil {
			failure = err
		}
		done = true
	})
	rg.s.RunUntil(time.Second, func() bool { return done })
	if failure != nil {
		t.Fatalf("listen: %v", failure)
	}
	return accept
}

// connectFrom performs an active open from host 1 to host 0.
func (rg *rig) connectFrom(t *testing.T, port uint16, budget time.Duration) (Handoff, bool) {
	t.Helper()
	var ho Handoff
	got := false
	rg.apps[1].Spawn("connect", func(th *kern.Thread) {
		reply := rg.r1.Svc.Call(th, kern.Msg{
			Op:   "connect",
			Body: ConnectReq{Remote: tcp.Endpoint{IP: rg.ips[0], Port: port}},
		})
		ho, _ = reply.Body.(Handoff)
		got = true
	})
	rg.s.RunUntil(budget, func() bool { return got })
	return ho, got
}

func TestHandshakeAndHandoff(t *testing.T) {
	rg := newRig(false)
	accept := rg.listenOn(t, 80)
	ho, got := rg.connectFrom(t, 80, time.Minute)
	if !got || ho.Err != nil {
		t.Fatalf("connect: got=%v err=%v", got, ho.Err)
	}
	if ho.Snap.State != tcp.Established {
		t.Fatalf("handoff state = %v", ho.Snap.State)
	}
	if ho.Cap == nil || ho.Channel == nil {
		t.Fatal("handoff missing capability or channel")
	}
	if ho.PeerHW != link.MakeAddr(1) {
		t.Fatalf("peer hw = %v", ho.PeerHW)
	}
	// The passive side must hand off through the accept port.
	var srvHo Handoff
	gotSrv := false
	rg.apps[0].Spawn("accept", func(th *kern.Thread) {
		m := accept.Receive(th)
		srvHo = m.Body.(Handoff)
		gotSrv = true
	})
	rg.s.RunUntil(time.Minute, func() bool { return gotSrv })
	if !gotSrv || srvHo.Err != nil {
		t.Fatalf("server handoff: got=%v err=%v", gotSrv, srvHo.Err)
	}
	if srvHo.Snap.State != tcp.Established {
		t.Fatalf("server handoff state = %v", srvHo.Snap.State)
	}
	// Registries no longer own any pcbs.
	if rg.r0.owned.Len() != 0 || rg.r1.owned.Len() != 0 {
		t.Fatalf("registries still own pcbs: %d/%d", rg.r0.owned.Len(), rg.r1.owned.Len())
	}
}

func TestBQIExchangedThroughLinkHeader(t *testing.T) {
	rg := newRig(true)
	rg.listenOn(t, 80)
	ho, got := rg.connectFrom(t, 80, time.Minute)
	if !got || ho.Err != nil {
		t.Fatalf("connect: %v", ho.Err)
	}
	if ho.PeerBQI == 0 {
		t.Fatal("active side did not learn the peer's BQI from the SYN|ACK link header")
	}
	if ho.Channel.BQI() == 0 {
		t.Fatal("active side channel has no hardware ring")
	}
}

func TestListenPortConflict(t *testing.T) {
	rg := newRig(false)
	rg.listenOn(t, 80)
	var second error
	done := false
	rg.apps[0].Spawn("listen2", func(th *kern.Thread) {
		reply := rg.r0.Svc.Call(th, kern.Msg{Op: "listen", Body: ListenReq{Port: 80, AcceptPort: kern.NewPort(rg.r0.Host(), "a2")}})
		second, _ = reply.Body.(error)
		done = true
	})
	rg.s.RunUntil(time.Second, func() bool { return done })
	if second != stacks.ErrPortInUse {
		t.Fatalf("second listen: %v", second)
	}
}

func TestUnlistenReleases(t *testing.T) {
	rg := newRig(false)
	rg.listenOn(t, 80)
	done := false
	var relisten error
	rg.apps[0].Spawn("cycle", func(th *kern.Thread) {
		rg.r0.Svc.Call(th, kern.Msg{Op: "unlisten", Body: UnlistenReq{Port: 80}})
		reply := rg.r0.Svc.Call(th, kern.Msg{Op: "listen", Body: ListenReq{Port: 80, AcceptPort: kern.NewPort(rg.r0.Host(), "a")}})
		relisten, _ = reply.Body.(error)
		done = true
	})
	rg.s.RunUntil(time.Second, func() bool { return done })
	if relisten != nil {
		t.Fatalf("relisten after unlisten: %v", relisten)
	}
}

func TestConnectRefusedWithoutListener(t *testing.T) {
	rg := newRig(false)
	ho, got := rg.connectFrom(t, 4444, time.Minute)
	if !got {
		t.Fatal("connect never returned")
	}
	if ho.Err != stacks.ErrRefused {
		t.Fatalf("err = %v, want refused", ho.Err)
	}
	// The failed connection's resources are reclaimed.
	if rg.r1.owned.Len() != 0 {
		t.Fatal("failed pcb not reclaimed")
	}
}

func TestInheritAbortSendsRST(t *testing.T) {
	rg := newRig(false)
	rg.listenOn(t, 80)
	ho, got := rg.connectFrom(t, 80, time.Minute)
	if !got || ho.Err != nil {
		t.Fatal("setup failed")
	}
	// The "application" dies abnormally: return the connection for abort.
	done := false
	rg.apps[1].Spawn("exit", func(th *kern.Thread) {
		rg.r1.Svc.Send(th, kern.Msg{Op: "inherit", Body: InheritReq{
			Snap: ho.Snap, Cap: ho.Cap, Abort: true, PeerHW: ho.PeerHW, PeerBQI: ho.PeerBQI,
		}})
		done = true
	})
	rg.s.RunUntil(time.Minute, func() bool { return done })
	rg.s.Run(100 * time.Millisecond)
	// The peer registry owns the passive pcb? No — it was handed off. The
	// RST lands at the server app's connection if adopted; here nobody
	// adopted it, so it reaches the channel. What we can check centrally:
	// the aborting registry reclaimed everything.
	if rg.r1.owned.Len() != 0 {
		t.Fatalf("aborted pcb retained: %d", rg.r1.owned.Len())
	}
}

func TestInheritOrderlyDrivesTimeWait(t *testing.T) {
	rg := newRig(false)
	rg.listenOn(t, 80)
	ho, got := rg.connectFrom(t, 80, time.Minute)
	if !got || ho.Err != nil {
		t.Fatal("setup failed")
	}
	done := false
	rg.apps[1].Spawn("exit", func(th *kern.Thread) {
		rg.r1.Svc.Send(th, kern.Msg{Op: "inherit", Body: InheritReq{
			Snap: ho.Snap, Cap: ho.Cap, PeerHW: ho.PeerHW, PeerBQI: ho.PeerBQI,
		}})
		done = true
	})
	rg.s.RunUntil(time.Minute, func() bool { return done })
	rg.s.Run(200 * time.Millisecond)
	// The registry now owns the closing pcb and drives its FIN exchange;
	// the far side never adopted its handoff, so the close cannot complete,
	// but the registry must be retrying (owning the pcb) rather than
	// dropping it.
	if rg.r1.owned.Len() != 1 {
		t.Fatalf("registry owns %d pcbs, want 1 (inherited)", rg.r1.owned.Len())
	}
}

func TestTeardownReclaims(t *testing.T) {
	rg := newRig(false)
	rg.listenOn(t, 80)
	ho, got := rg.connectFrom(t, 80, time.Minute)
	if !got || ho.Err != nil {
		t.Fatal("setup failed")
	}
	done := false
	rg.apps[1].Spawn("teardown", func(th *kern.Thread) {
		rg.r1.Svc.Send(th, kern.Msg{Op: "teardown", Body: TeardownReq{
			Local: ho.Snap.Local, Peer: ho.Snap.Peer, Cap: ho.Cap,
		}})
		done = true
	})
	rg.s.RunUntil(time.Second, func() bool { return done })
	rg.s.Run(50 * time.Millisecond)
	if len(rg.r1.transferred) != 0 {
		t.Fatal("transferred entry not reclaimed")
	}
	// The port is reusable.
	if !rg.r1.ports.Reserve(ho.Snap.Local.Port) {
		t.Fatal("port not released by teardown")
	}
}

func TestStraySegmentAnsweredWithRST(t *testing.T) {
	rg := newRig(false)
	// Host 1 fires a data segment at a nonexistent endpoint on host 0; the
	// registry must answer with RST (observable at host 1's default path as
	// an inbound TCP segment).
	sent := false
	rg.apps[1].Host.NewDomain("k", true).Spawn("tx", func(th *kern.Thread) {
		seg := tcp.Header{SrcPort: 999, DstPort: 4000, Seq: 5, Flags: tcp.FlagACK, Window: 100}
		b := newSegBuf(rg.r1.Netif().Headroom(), nil)
		seg.Encode(b, rg.ips[1], rg.ips[0])
		rg.r1.Netif().WrapIP(b, ipv4.ProtoTCP, rg.ips[0])
		rg.r1.Netif().Resolve(th, b, rg.ips[0], 0, rg.r1.Netif().Mod.SendKernel)
		sent = true
	})
	rg.s.RunUntil(time.Second, func() bool { return sent })
	rg.s.Run(100 * time.Millisecond)
	// Host 0 transmitted an RST: observable through its device counters
	// (ARP req/reply + RST >= 2 tx frames from host 0).
	stats := rg.r0.Netif().Mod.Device().Stats()
	if stats.TxFrames < 2 {
		t.Fatalf("host 0 sent %d frames; expected ARP reply + RST", stats.TxFrames)
	}
}

// newSegBuf mirrors the tcp package's internal helper for tests.
func newSegBuf(headroom int, data []byte) *pktBuf {
	return pktFromBytes(headroom+tcp.HeaderLen, data)
}

// pktBuf/pktFromBytes keep the test terse.
type pktBuf = pkt.Buf

func pktFromBytes(headroom int, b []byte) *pktBuf { return pkt.FromBytes(headroom, b) }
