package registry

import (
	"fmt"
	"sort"

	"ulp/internal/chaos"
	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/netio"
	"ulp/internal/pkt"
	"ulp/internal/sim"
	"ulp/internal/stacks"
	"ulp/internal/tcp"
	"ulp/internal/trace"
)

// Federation shards one host's registry control plane: N registry servers,
// each pinned to its own CPU and owning a static contiguous slice of the
// ephemeral port space, share a single network interface. Connection setup
// work that a lone registry serializes on one CPU (~6.5 ms per setup)
// spreads across the shards; data-path frames never touch the federation
// at all.
//
// Ownership is static and derivable, which is what makes the control plane
// recoverable: a frame or control request for tuple (local, peer) belongs
// to the shard whose port slice contains local.Port (an active open that
// shard performed), else to FNV(local, peer) mod N (a passive open —
// listeners are replicated to every shard so any of them can run the
// handshake for the tuples it owns). Nothing about routing lives only in
// memory: the metaregistry index (Meta) is rebuilt from this rule at any
// time.
type Federation struct {
	s    *sim.Sim
	mod  *netio.Module
	host *kern.Host
	ip   ipv4.Addr
	nif  *stacks.Netif

	shards []*Server
	live   []bool
	cpus   []*sim.Resource
	slices [][2]uint16 // per-shard ephemeral [lo,hi)

	// Admission: bounded outstanding setups per application domain across
	// all shards. Serialized by the simulation scheduler, like everything
	// else on this host.
	quota       int
	outstanding map[*kern.Domain]int
	denied      int
}

// FederationConfig parameterizes NewFederation.
type FederationConfig struct {
	// Shards is the number of registry shards (>= 2; a single shard is the
	// classic New).
	Shards int
	// Quota bounds outstanding connection setups per application domain;
	// 0 uses DefaultAdmissionQuota.
	Quota int
}

// DefaultAdmissionQuota bounds outstanding setups per application domain
// when FederationConfig.Quota is zero.
const DefaultAdmissionQuota = 64

// NewFederation boots a sharded registry over a host's network I/O module.
func NewFederation(s *sim.Sim, mod *netio.Module, ip ipv4.Addr, cfg FederationConfig) *Federation {
	n := cfg.Shards
	if n < 2 {
		panic("registry: federation needs at least 2 shards")
	}
	quota := cfg.Quota
	if quota <= 0 {
		quota = DefaultAdmissionQuota
	}
	f := &Federation{
		s:           s,
		mod:         mod,
		host:        mod.Device().Host(),
		ip:          ip,
		nif:         stacks.NewNetif(s, mod, ip),
		live:        make([]bool, n),
		cpus:        make([]*sim.Resource, n),
		quota:       quota,
		outstanding: make(map[*kern.Domain]int),
	}
	// Partition the classic ephemeral window; SetEphemeralRange repartitions.
	lo, hi := tcp.NewPortAlloc().EphemeralRange()
	f.slices = partition(lo, hi, n)
	for i := 0; i < n; i++ {
		f.cpus[i] = f.host.NewCPU(shardName(i) + "-cpu")
		f.shards = append(f.shards, newServer(s, mod, ip, nil, &shardOpts{
			fed: f, index: i, nif: f.nif, cpu: f.cpus[i],
			lo: f.slices[i][0], hi: f.slices[i][1],
		}))
		f.live[i] = true
	}
	mod.SetDefaultHandler(f.steer)
	return f
}

func shardName(i int) string {
	return fmt.Sprintf("shard%d", i)
}

// partition splits [lo,hi) into n contiguous slices.
func partition(lo, hi uint16, n int) [][2]uint16 {
	out := make([][2]uint16, n)
	span := int(hi-lo) / n
	for i := 0; i < n; i++ {
		slo := lo + uint16(i*span)
		shi := slo + uint16(span)
		if i == n-1 {
			shi = hi
		}
		out[i] = [2]uint16{slo, shi}
	}
	return out
}

// ---------------------------------------------------------------------------
// Ownership and frame steering
// ---------------------------------------------------------------------------

// endpointHash is the tuple hash behind passive-open ownership (FNV-1a).
func endpointHash(local, peer tcp.Endpoint) uint32 {
	h := uint32(2166136261)
	mix := func(b byte) {
		h ^= uint32(b)
		h *= 16777619
	}
	for _, b := range local.IP {
		mix(b)
	}
	mix(byte(local.Port >> 8))
	mix(byte(local.Port))
	for _, b := range peer.IP {
		mix(b)
	}
	mix(byte(peer.Port >> 8))
	mix(byte(peer.Port))
	return h
}

// ownerEndpoints returns the statically-owning shard index for a tuple:
// slice match on the local port (active opens), else tuple hash (passive
// opens on a replicated listener port).
func (f *Federation) ownerEndpoints(local, peer tcp.Endpoint) int {
	for i, sl := range f.slices {
		if local.Port >= sl[0] && local.Port < sl[1] {
			return i
		}
	}
	return int(endpointHash(local, peer) % uint32(len(f.shards)))
}

// authoritative reports whether r is the current incarnation of the shard
// that statically owns the tuple.
func (f *Federation) authoritative(r *Server, local, peer tcp.Endpoint) bool {
	return f.shards[f.ownerEndpoints(local, peer)] == r
}

// successor returns the next live shard after i (scanning cyclically), or
// -1 when no shard is live.
func (f *Federation) successor(i int) int {
	n := len(f.shards)
	for d := 1; d <= n; d++ {
		j := (i + d) % n
		if f.live[j] {
			return j
		}
	}
	return -1
}

// steer is the module's default handler in federation mode: classify the
// frame to its authoritative shard (successor when that shard is down) and
// deliver it to the shard's receive queue, charging the wakeup to the
// shard's pinned CPU.
func (f *Federation) steer(b *pkt.Buf) {
	i := f.classify(b.Bytes())
	if !f.live[i] {
		i = f.successor(i)
		if i < 0 {
			b.Release() // whole control plane down: frame dies
			return
		}
	}
	sh := f.shards[i]
	if sh.rxq.Len() == 0 {
		sh.dom.ComputeAsync(sh.host.Cost.KernelWakeup, nil)
	}
	sh.rxq.Push(b)
}

// classify peeks at the frame and returns its owning shard index. ARP,
// datagrams and anything unparseable go to shard 0; TCP goes to the
// tuple's static owner.
func (f *Federation) classify(frame []byte) int {
	hdrLen := f.mod.Device().HdrLen()
	if len(frame) < hdrLen {
		return 0
	}
	if uint16(frame[hdrLen-2])<<8|uint16(frame[hdrLen-1]) != 0x0800 {
		return 0 // ARP and everything non-IP
	}
	ip := frame[hdrLen:]
	if len(ip) < ipv4.HeaderLen || ip[0]>>4 != 4 {
		return 0
	}
	if ip[9] != ipv4.ProtoTCP {
		return 0 // UDP and friends: shard 0 owns the datagram plane
	}
	if (uint16(ip[6])<<8|uint16(ip[7]))&0x3fff != 0 {
		// Any fragment (MF set or nonzero offset): a later fragment carries
		// no TCP header to peek at, so route the whole datagram's fragments
		// by the IP pair alone — they all land on one shard's reassembler.
		local := tcp.Endpoint{IP: ipv4.Addr(ip[16:20])}
		peer := tcp.Endpoint{IP: ipv4.Addr(ip[12:16])}
		return int(endpointHash(local, peer) % uint32(len(f.shards)))
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < ipv4.HeaderLen || len(ip) < ihl+4 {
		return 0
	}
	local := tcp.Endpoint{IP: ipv4.Addr(ip[16:20]),
		Port: uint16(ip[ihl+2])<<8 | uint16(ip[ihl+3])}
	peer := tcp.Endpoint{IP: ipv4.Addr(ip[12:16]),
		Port: uint16(ip[ihl])<<8 | uint16(ip[ihl+1])}
	return f.ownerEndpoints(local, peer)
}

// ---------------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------------

// admit charges one outstanding setup against owner's quota; false means
// the setup is refused (the library backs off and retries).
func (f *Federation) admit(owner *kern.Domain) bool {
	if owner == nil {
		return true // trusted callers and tests opt out of tracking
	}
	if f.outstanding[owner] >= f.quota {
		f.denied++
		return false
	}
	f.outstanding[owner]++
	return true
}

// release returns one outstanding-setup slot.
func (f *Federation) release(owner *kern.Domain) {
	if owner == nil {
		return
	}
	if n := f.outstanding[owner]; n > 1 {
		f.outstanding[owner] = n - 1
	} else if n == 1 {
		delete(f.outstanding, owner)
	}
}

// ---------------------------------------------------------------------------
// Shard lifecycle: crash, restart, migration support
// ---------------------------------------------------------------------------

// CrashShard kills one shard abruptly: its threads die at their next
// scheduling point, its receive queue is drained back to the pool, and the
// admission slots its in-flight setups held are returned (their owners get
// no reply; the library's RPC deadline surfaces the loss). Frames and
// requests for the dead shard's tuples steer to the successor; leases the
// dead shard issued stop being renewed, so its handed-off endpoints
// quarantine at the TTL and their libraries migrate to a survivor.
func (f *Federation) CrashShard(i int) {
	if !f.live[i] {
		return
	}
	f.live[i] = false
	sh := f.shards[i]
	for _, hc := range sh.conns {
		sh.releaseAdmit(hc)
	}
	sh.dom.Kill()
	for {
		b, ok := sh.rxq.TryPop()
		if !ok {
			break
		}
		b.Release()
	}
	if sh.bus.Enabled() {
		sh.bus.Emit(trace.Event{Kind: trace.RegistryRPC, Node: sh.host.Name,
			Text: "shard-crash", A: int64(i)})
	}
}

// RestartShard boots a fresh incarnation of a crashed shard. The service
// port is reused (libraries hold send rights), the shard rebuilds its
// statically-owned endpoints from the module's installed templates and
// re-issues their leases, and any survivor that adopted those endpoints
// during the outage drops its foreign records.
func (f *Federation) RestartShard(i int) {
	if f.live[i] {
		return
	}
	prev := f.shards[i]
	lo, hi := prev.ports.EphemeralRange()
	f.shards[i] = newServer(f.s, f.mod, f.ip, prev, &shardOpts{
		fed: f, index: i, nif: f.nif, cpu: f.cpus[i], lo: lo, hi: hi,
	})
	f.live[i] = true
	f.dropForeign(i)
	f.replicateListeners(i)
}

// replicateListeners copies the listener set from a live sibling onto the
// restarted shard. Listeners are replicated to every shard (a passive
// tuple's handshake runs wherever its hash lands), so the sibling's set is
// authoritative; without this, SYNs hashed to the reborn shard would be
// reset until the application re-listened.
func (f *Federation) replicateListeners(restarted int) {
	src := f.successor(restarted)
	if src < 0 || src == restarted {
		return
	}
	nsh, from := f.shards[restarted], f.shards[src]
	ports := make([]int, 0, len(from.listeners))
	for port := range from.listeners {
		ports = append(ports, int(port))
	}
	sort.Ints(ports) // deterministic replication order
	for _, p := range ports {
		port := uint16(p)
		ln := from.listeners[port]
		if _, ok := nsh.listeners[port]; ok {
			continue
		}
		if !nsh.ports.Reserve(port) {
			nsh.ports.Retain(port)
		}
		nsh.listeners[port] = &listener{port: ln.port, opts: ln.opts,
			accept: ln.accept, owner: ln.owner, backlog: ln.backlog}
		nsh.watch(ln.owner)
	}
}

// dropForeign removes, from every other live shard, transferred-connection
// records whose tuples statically belong to the restarted shard — the
// survivor adopted them during the outage, and keeping both records would
// double-release the port when the connection eventually tears down.
func (f *Federation) dropForeign(restarted int) {
	for j, sh := range f.shards {
		if j == restarted || !f.live[j] {
			continue
		}
		for ft := range sh.transferred {
			if f.ownerEndpoints(ft.Local, ft.Peer) == restarted {
				delete(sh.transferred, ft)
				sh.ports.Release(ft.Local.Port)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Configuration forwarding and introspection
// ---------------------------------------------------------------------------

// Shards returns the shard count.
func (f *Federation) Shards() int { return len(f.shards) }

// Shard returns shard i's current incarnation.
func (f *Federation) Shard(i int) *Server { return f.shards[i] }

// Live reports whether shard i is up.
func (f *Federation) Live(i int) bool { return f.live[i] }

// Netif exposes the shared interface wiring.
func (f *Federation) Netif() *stacks.Netif { return f.nif }

// AdmissionDenied returns how many setups the quota layer refused.
func (f *Federation) AdmissionDenied() int { return f.denied }

// Outstanding returns the admission slots currently charged to owner.
func (f *Federation) Outstanding(owner *kern.Domain) int { return f.outstanding[owner] }

// EnableTimerWheel switches every shard to timing-wheel timers.
func (f *Federation) EnableTimerWheel() {
	for _, sh := range f.shards {
		sh.EnableTimerWheel()
	}
}

// SetTrace attaches the trace bus to every shard.
func (f *Federation) SetTrace(b *trace.Bus) {
	for _, sh := range f.shards {
		sh.SetTrace(b)
	}
}

// SetControlFaults installs the chaos injector on every shard.
func (f *Federation) SetControlFaults(inj *chaos.Injector) {
	for _, sh := range f.shards {
		sh.SetControlFaults(inj)
	}
}

// SetEphemeralRange repartitions [lo,hi) into per-shard contiguous slices.
// Must be called before any traffic (ownership is derived from the slices).
func (f *Federation) SetEphemeralRange(lo, hi uint16) {
	f.slices = partition(lo, hi, len(f.shards))
	for i, sh := range f.shards {
		sh.SetEphemeralRange(f.slices[i][0], f.slices[i][1])
	}
}

// PortsInUse sums allocated ports across live shards.
func (f *Federation) PortsInUse() int {
	n := 0
	for i, sh := range f.shards {
		if f.live[i] {
			n += sh.PortsInUse()
		}
	}
	return n
}

// OwnedConns sums registry-owned pcbs across live shards.
func (f *Federation) OwnedConns() int {
	n := 0
	for i, sh := range f.shards {
		if f.live[i] {
			n += sh.OwnedConns()
		}
	}
	return n
}

// TransferredConns sums handed-off connections across live shards.
func (f *Federation) TransferredConns() int {
	n := 0
	for i, sh := range f.shards {
		if f.live[i] {
			n += sh.TransferredConns()
		}
	}
	return n
}

// DedupHits sums dedup-cache hits across shards.
func (f *Federation) DedupHits() int {
	n := 0
	for _, sh := range f.shards {
		n += sh.DedupHits()
	}
	return n
}

// ReRegistered sums migrated/re-adopted connections across shards.
func (f *Federation) ReRegistered() int {
	n := 0
	for _, sh := range f.shards {
		n += sh.ReRegistered()
	}
	return n
}

// ---------------------------------------------------------------------------
// Metaregistry
// ---------------------------------------------------------------------------

// Meta is the metaregistry: the thin routing index libraries consult to
// reach the authoritative shard. It holds no connection state — just the
// static port partition and the shard service ports, all derivable from
// the federation — so it can be discarded and rebuilt at any time
// (Rebuild does exactly that, and is all a metaregistry restart is).
type Meta struct {
	fed    *Federation
	slices [][2]uint16
	svc    []*kern.Port
}

// Meta builds (or rebuilds — it is stateless) the routing index.
func (f *Federation) Meta() *Meta {
	m := &Meta{fed: f}
	m.Rebuild()
	return m
}

// Rebuild reconstructs the index from the federation's static ownership
// map. Service ports survive shard restarts (the new incarnation reuses
// them), so a rebuilt index is valid across any crash/restart history.
func (m *Meta) Rebuild() {
	f := m.fed
	m.slices = m.slices[:0]
	m.svc = m.svc[:0]
	for _, sh := range f.shards {
		lo, hi := sh.ports.EphemeralRange()
		m.slices = append(m.slices, [2]uint16{lo, hi})
		m.svc = append(m.svc, sh.Svc)
	}
}

// Shards returns the shard count.
func (m *Meta) Shards() int { return len(m.svc) }

// Svc returns shard i's service port (stable across restarts).
func (m *Meta) Svc(i int) *kern.Port { return m.svc[i] }

// Live reports whether shard i is currently up (liveness is the one
// dynamic input; it is read through to the federation, never cached).
func (m *Meta) Live(i int) bool { return m.fed.live[i] }

// Route picks the shard for the seq-th connect: round-robin over the
// shards, advanced past dead ones.
func (m *Meta) Route(seq uint64) int {
	n := len(m.svc)
	i := int(seq % uint64(n))
	if m.fed.live[i] {
		return i
	}
	if s := m.fed.successor(i); s >= 0 {
		return s
	}
	return i // all dead: the RPC deadline handles it
}

// Owner returns the statically-owning shard for a tuple (it may be dead;
// see OwnerOrSuccessor).
func (m *Meta) Owner(local, peer tcp.Endpoint) int {
	for i, sl := range m.slices {
		if local.Port >= sl[0] && local.Port < sl[1] {
			return i
		}
	}
	return int(endpointHash(local, peer) % uint32(len(m.svc)))
}

// OwnerOrSuccessor routes to the owning shard, falling over to the next
// live shard while the owner is down (cross-shard migration).
func (m *Meta) OwnerOrSuccessor(local, peer tcp.Endpoint) int {
	i := m.Owner(local, peer)
	if m.fed.live[i] {
		return i
	}
	if s := m.fed.successor(i); s >= 0 {
		return s
	}
	return i
}
