// Package registry implements the registry server of the user-level
// library organization (paper §3.4): a trusted, privileged process that
//
//   - allocates and deallocates connection end-points (TCP ports), since
//     "having untrusted user libraries allocate these names is a security
//     and administrative concern";
//   - executes the TCP three-way handshake on the application's behalf,
//     exchanging buffer queue indexes through the AN1 link header so the
//     data phase can use hardware demultiplexing;
//   - collaborates with the network I/O module to create the shared-memory
//     channel, send capability, and header template, then transfers the
//     established connection's TCP state to the library;
//   - inherits connections when an application exits, holding them through
//     the protocol-specified quiet period, and "issues a reset message to
//     the remote peer" on abnormal termination.
//
// The registry reaches the network through the module's protected kernel
// path rather than a shared-memory channel ("the registry server does not
// access the network device using shared memory, but instead uses standard
// Mach IPCs"), which is deliberately slower — connection setup cost is paid
// once and amortized over the data transfers that bypass the server.
package registry

import (
	"fmt"
	"time"

	"ulp/internal/chaos"
	"ulp/internal/filter"
	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/netio"
	"ulp/internal/pkt"
	"ulp/internal/sim"
	"ulp/internal/stacks"
	"ulp/internal/tcp"
	"ulp/internal/trace"
)

// ConnectReq asks the registry to actively open a connection. Owner names
// the application domain the connection is for, so the registry can
// reclaim its resources if the application crashes; a nil Owner opts out
// of crash tracking (trusted callers, tests).
type ConnectReq struct {
	Remote tcp.Endpoint
	Opts   stacks.Options
	Owner  *kern.Domain
}

// ListenReq asks the registry to listen on a port; established connections
// are handed off through AcceptPort.
type ListenReq struct {
	Port       uint16
	Opts       stacks.Options
	AcceptPort *kern.Port
	Owner      *kern.Domain
}

// UnlistenReq stops listening.
type UnlistenReq struct{ Port uint16 }

// TeardownReq reclaims a handed-off connection's resources after the
// library has driven it to CLOSED ("resources allocated to the application
// and registered with the network I/O module are now reclaimed").
type TeardownReq struct {
	Local, Peer tcp.Endpoint
	Cap         *netio.Capability
}

// Handoff carries an established connection to a library: the TCP state,
// the channel and capability for the data path, and the peer's link
// address and buffer queue index for outbound framing.
type Handoff struct {
	Snap    tcp.Snapshot
	Cap     *netio.Capability
	Channel *netio.Channel
	PeerHW  link.Addr
	PeerBQI uint16
	Err     error
}

// InheritReq returns a connection to the registry when its application
// exits: the registry drives remaining timers (TIME_WAIT) or, for an
// abnormal exit, resets the peer.
type InheritReq struct {
	Snap    tcp.Snapshot
	Cap     *netio.Capability
	Abort   bool
	PeerHW  link.Addr
	PeerBQI uint16
}

// ReRegisterReq re-claims a live, handed-off connection with a reborn
// registry. The registry verifies the claim against the module's installed
// capability and template before re-adopting — the library is untrusted,
// the kernel's record is the ground truth.
type ReRegisterReq struct {
	Local, Peer    tcp.Endpoint
	Cap            *netio.Capability
	PeerHW         link.Addr
	PeerBQI        uint16
	SndNxt, RcvNxt tcp.Seq
	Owner          *kern.Domain
}

// hsConn is a connection the registry currently owns: handshaking,
// inherited, or awaiting teardown.
type hsConn struct {
	tc      *tcp.Conn
	opts    stacks.Options
	owner   *kern.Domain // application the connection is destined for
	peerHW  link.Addr
	peerBQI uint16 // peer's advertised data-phase BQI
	ourCh   *netio.Channel
	ourCap  *netio.Capability
	ourBQI  uint16           // reserved before the handshake on the AN1
	went    *stacks.WheelEnt // timing-wheel registration (nil in tick mode)
	reply   *kern.Port       // where to deliver the handoff
	l       *listener        // set for passive-side pcbs
	reqID   uint64           // originating request id (dedup cache completion)
	// inBacklog marks a passive pcb counted against its listener's
	// backlog, so exactly one decrement happens on handoff or failure.
	inBacklog bool
	// admitted marks a setup counted against its owner's admission quota
	// (federation mode), so exactly one release happens on every exit path.
	admitted bool
}

// listener is a registered passive endpoint.
type listener struct {
	port    uint16
	opts    stacks.Options
	accept  *kern.Port
	owner   *kern.Domain
	backlog int // max concurrent handshakes
	pending int // handshakes currently held
}

// xferConn records a connection handed off to a library: enough state to
// reclaim it if the owning application crashes — the channel and
// capability to revoke, the port to release, and the sequence numbers at
// handoff time for crafting a best-effort reset to the peer.
type xferConn struct {
	owner          *kern.Domain
	ch             *netio.Channel
	cap            *netio.Capability
	local, peer    tcp.Endpoint
	peerHW         link.Addr
	peerBQI        uint16
	sndNxt, rcvNxt tcp.Seq
}

// udpBinding records a datagram end-point for the same purpose.
type udpBinding struct {
	owner *kern.Domain
	ch    *netio.Channel
	cap   *netio.Capability
}

// Server is one host's registry.
type Server struct {
	host *kern.Host
	dom  *kern.Domain
	nif  *stacks.Netif
	Svc  *kern.Port

	ports     *tcp.PortAlloc
	udpPorts  *tcp.PortAlloc
	iss       tcp.Seq
	owned     *tcp.Table
	conns     map[*tcp.Conn]*hsConn
	listeners map[uint16]*listener
	// transferred routes stray default-path segments of handed-off
	// connections into their channels (e.g. a retransmitted handshake ACK
	// on the AN1 arriving at BQI zero), and remembers what the owning
	// application holds so a crash can be reclaimed.
	transferred map[tcp.FourTuple]*xferConn
	// udpChannels routes datagrams that reach the default path to their
	// bound end-points. On the AN1 this is the common case: "the hardware
	// packet demultiplexing mechanism is difficult to exploit because
	// there is no separate connection setup phase that can negotiate the
	// BQIs" — so datagrams arrive at BQI zero and are demultiplexed in
	// software here.
	udpChannels map[uint16]*udpBinding

	// watched marks application domains whose death hook is installed, so
	// a domain opening many connections registers exactly one hook.
	watched map[*kern.Domain]bool

	// epoch counts registry incarnations on this host (1 = first boot).
	epoch int
	// rebuildPending marks a restarted server that must reconstruct its
	// state from the module before serving requests.
	rebuildPending bool

	// reqCache deduplicates control-plane requests by Msg.ID, bounded FIFO
	// (reqOrder). A retried request whose original reply was lost replays
	// the cached reply instead of executing twice; a retry racing an
	// in-flight connect retargets the eventual handoff to the new reply
	// port.
	reqCache map[uint64]*pendingReq
	reqOrder []uint64

	// Counters (introspection and stats).
	synDrops     int // SYNs dropped by a full listen backlog
	dedupHits    int // duplicate requests answered from the cache
	reregistered int // connections re-adopted via ReRegisterReq
	rebuilt      int // endpoints reconstructed from module templates

	// faults is the control-plane fault injector; nil injects nothing.
	faults *chaos.Injector

	// wheel, when non-nil, replaces the per-tick scan of every owned pcb
	// with timing-wheel timers (many-host worlds). Enabled before traffic;
	// carried across Restart.
	wheel *stacks.TCPWheel

	rxq  *sim.Queue[*pkt.Buf]
	cur  *kern.Thread
	lock *sim.Semaphore

	// bus receives RegistryRPC events and is handed to every TCP engine
	// the server creates. Nil-safe.
	bus *trace.Bus

	// fed/shardIdx are set when this server is one shard of a federation:
	// it owns a static slice of the port space, shares the Netif with its
	// sibling shards, renews only the leases it issued, and runs its
	// threads on a pinned per-shard CPU. Nil fed is the classic
	// single-server registry.
	fed      *Federation
	shardIdx int
}

// SetTrace attaches the trace bus. Connections created afterwards inherit
// it; the libraries query it via Bus when adopting handed-off engines.
func (r *Server) SetTrace(b *trace.Bus) { r.bus = b }

// EnableTimerWheel switches the registry's timer backend from per-pcb
// tick scans to timing wheels. Must be called before the first connection
// is attached; survives Restart.
func (r *Server) EnableTimerWheel() {
	if r.wheel == nil {
		r.wheel = stacks.NewTCPWheel()
	}
}

// SetEphemeralRange widens (or moves) the TCP ephemeral port range —
// many-host churn worlds need more than the classic [1024,5000) window.
func (r *Server) SetEphemeralRange(lo, hi uint16) {
	r.ports = tcp.NewPortAllocRange(lo, hi)
}

// Bus returns the attached trace bus (nil when tracing is off).
func (r *Server) Bus() *trace.Bus { return r.bus }

// crashReq is the internal notification a domain-death hook posts to the
// service loop so reclamation runs on a registry thread with normal cost
// accounting (the hook itself runs in engine context and must not block).
type crashReq struct {
	dom *kern.Domain
}

// pendingReq is one dedup-cache entry: the cached reply once the request
// completed, or the in-flight handshake it is waiting on.
type pendingReq struct {
	done  bool
	reply kern.Msg
	hc    *hsConn // in-flight connect; a retry retargets hc.reply
}

// Registry failure-semantics parameters.
const (
	// LeaseTTL is how long the module serves an endpoint without the
	// registry renewing it; LeaseHeartbeat is the renewal period. The TTL
	// is three heartbeats so one delayed beat never quarantines anything.
	LeaseTTL       = 3 * time.Second
	LeaseHeartbeat = 1 * time.Second

	// DefaultBacklog bounds concurrent handshakes per listener when the
	// application does not set Options.Backlog.
	DefaultBacklog = 16

	// dedupCap bounds the request-ID cache (FIFO eviction).
	dedupCap = 512
)

// New starts a registry server over a host's network I/O module.
func New(s *sim.Sim, mod *netio.Module, ip ipv4.Addr) *Server {
	return newServer(s, mod, ip, nil, nil)
}

// Restart boots a fresh registry over the same module after a crash. The
// previous incarnation's service port is reused — libraries hold send
// rights to it, and a Mach-style port queue outlives the domain that was
// receiving from it, so requests queued across the outage drain into the
// new server. Port table and connection map are rebuilt from the module's
// installed header templates before the first request is served.
func Restart(s *sim.Sim, mod *netio.Module, ip ipv4.Addr, prev *Server) *Server {
	return newServer(s, mod, ip, prev, nil)
}

// shardOpts carries the federation-specific construction parameters of one
// shard: its index, the shared interface wiring, the pinned CPU its domain
// computes on, and the static slice of the ephemeral port space it owns.
type shardOpts struct {
	fed    *Federation
	index  int
	nif    *stacks.Netif
	cpu    *sim.Resource
	lo, hi uint16
}

func newServer(s *sim.Sim, mod *netio.Module, ip ipv4.Addr, prev *Server, so *shardOpts) *Server {
	r := &Server{
		host:        mod.Device().Host(),
		nif:         stacks.NewNetif(s, mod, ip),
		ports:       tcp.NewPortAlloc(),
		udpPorts:    tcp.NewPortAlloc(),
		iss:         tcp.Seq(30000 + 7919*uint32(ip[3])), // per-host ISS sequence
		owned:       tcp.NewTable(),
		conns:       make(map[*tcp.Conn]*hsConn),
		listeners:   make(map[uint16]*listener),
		transferred: make(map[tcp.FourTuple]*xferConn),
		udpChannels: make(map[uint16]*udpBinding),
		watched:     make(map[*kern.Domain]bool),
		reqCache:    make(map[uint64]*pendingReq),
		epoch:       1,
	}
	domName := "registry"
	if so != nil {
		// Federation shard: share one Netif (ARP cache, reassembly) with the
		// sibling shards, own a static slice of the ephemeral port space, and
		// perturb the ISS base per shard so concurrent actives from different
		// shards start in distinct sequence regions.
		r.fed = so.fed
		r.shardIdx = so.index
		r.nif = so.nif
		r.ports = tcp.NewPortAllocRange(so.lo, so.hi)
		r.iss += tcp.Seq(1000003 * uint32(so.index))
		domName = fmt.Sprintf("registry%d", so.index)
	}
	if prev != nil {
		r.epoch = prev.epoch + 1
		r.Svc = prev.Svc
		r.faults = prev.faults
		r.bus = prev.bus
		if prev.wheel != nil {
			// A fresh wheel: owned pcbs died with the old incarnation, and
			// rebuild() only reconstructs transferred endpoints.
			r.wheel = stacks.NewTCPWheel()
		}
		r.ports = tcp.NewPortAllocRange(prev.ports.EphemeralRange())
		r.rebuildPending = true
		// Perturb the ISS base per incarnation so connections the reborn
		// registry opens cannot collide with sequence space the crashed one
		// was using.
		r.iss += tcp.Seq(250007 * uint32(r.epoch-1))
	} else {
		r.Svc = kern.NewPort(r.host, domName)
	}
	r.dom = r.host.NewDomain(domName, true)
	if so != nil {
		r.dom.PinCPU(so.cpu)
	}
	r.lock = s.NewSemaphore("registry-engine", 1)
	r.rxq = sim.NewQueue[*pkt.Buf](s)
	mod.EnableLeases(LeaseTTL)
	if so == nil {
		// The federation owns the default handler (it steers frames to the
		// authoritative shard); a lone registry claims it directly.
		mod.SetDefaultHandler(func(b *pkt.Buf) {
			if r.rxq.Len() == 0 {
				r.host.ComputeAsync(r.host.Cost.KernelWakeup, nil)
			}
			r.rxq.Push(b)
		})
	}
	r.dom.Spawn("service", r.serviceLoop)
	r.dom.Spawn("input", r.inputLoop)
	r.dom.Spawn("tcp-fast", r.fastTimer)
	r.dom.Spawn("tcp-slow", r.slowTimer)
	r.dom.Spawn("lease-hb", r.leaseHeartbeat)
	return r
}

// leaseHeartbeat renews every capability lease the module tracks — or, for
// a federation shard, only the leases this shard issued, so a crashed
// sibling's endpoints expire (and migrate) instead of being kept alive by
// the survivors. It charges no CPU: the renewal models a kernel-side table
// write whose cost is negligible next to the IPC-heavy control path, and
// keeping it free leaves the fault-free experiment timings untouched.
func (r *Server) leaseHeartbeat(t *kern.Thread) {
	for {
		t.Sleep(LeaseHeartbeat)
		if r.fed != nil {
			_, _ = r.nif.Mod.RenewLeasesIssued(r.dom)
		} else {
			_, _ = r.nif.Mod.RenewLeases(r.dom)
		}
	}
}

// Crash kills the registry abruptly, as a chaos plan's RegistryCrash does:
// every thread dies at its next scheduling point with no cleanup run. The
// kernel-side consequences are modelled here: frames arriving on the
// default path for a dead domain are discarded (and returned to the pool),
// as is anything still queued for the dead input thread.
func (r *Server) Crash() {
	r.dom.Kill()
	r.nif.Mod.SetDefaultHandler(func(b *pkt.Buf) { b.Release() })
	for {
		b, ok := r.rxq.TryPop()
		if !ok {
			break
		}
		b.Release()
	}
}

// Netif exposes the registry's interface wiring (the library builds its
// data-path frames from the same parameters).
func (r *Server) Netif() *stacks.Netif { return r.nif }

// Host returns the host the registry serves.
func (r *Server) Host() *kern.Host { return r.host }

func (r *Server) nextISS() tcp.Seq {
	r.iss += 64021
	return r.iss
}

// ---------------------------------------------------------------------------
// Service loop: requests from libraries
// ---------------------------------------------------------------------------

// SetControlFaults installs a chaos injector for control-plane faults
// (dropped or delayed service requests). A nil injector is the fault-free
// fast path.
func (r *Server) SetControlFaults(inj *chaos.Injector) { r.faults = inj }

func (r *Server) serviceLoop(t *kern.Thread) {
	if r.rebuildPending {
		r.rebuildPending = false
		r.rebuild(t)
	}
	for {
		m := r.Svc.Receive(t)
		// Internal crash notifications bypass fault injection: reclamation
		// must run even (especially) when the control plane is misbehaving.
		if cr, ok := m.Body.(crashReq); ok {
			if r.bus.Enabled() {
				r.bus.Emit(trace.Event{Kind: trace.RegistryRPC, Node: r.host.Name,
					Conn: cr.dom.String(), Text: "crash-sweep"})
			}
			r.handleCrash(t, cr.dom)
			continue
		}
		if batch, ok := m.Body.(kern.Batch); ok {
			// A coalesced control-plane batch: one IPC carried several
			// requests, each with its own id and reply port. Dispatch them
			// in order as if they had arrived back to back.
			for _, bm := range batch.Msgs {
				r.dispatch(t, bm)
			}
			continue
		}
		r.dispatch(t, m)
	}
}

// dispatch runs one control-plane request through fault injection, the
// request-ID dedup cache, and the handler switch.
func (r *Server) dispatch(t *kern.Thread, m kern.Msg) {
	if r.bus.Enabled() {
		r.bus.Emit(trace.Event{Kind: trace.RegistryRPC, Node: r.host.Name, Text: m.Op})
	}
	if r.faults.DropRequest() {
		return // the library's RPC never gets a reply
	}
	if d := r.faults.RequestDelay(); d > 0 {
		t.Sleep(d)
	}
	// Request-ID dedup: a retry of a request already seen must not
	// execute twice — a re-run Connect would allocate a second port and
	// run a second handshake. Completed requests replay the cached
	// reply (the original's was lost with its abandoned reply port);
	// retries of an in-flight connect retarget the eventual handoff.
	if m.ID != 0 {
		if e, ok := r.reqCache[m.ID]; ok {
			r.dedupHits++
			if r.bus.Enabled() {
				r.bus.Emit(trace.Event{Kind: trace.RegistryRPC, Node: r.host.Name,
					Text: m.Op + "-dup"})
			}
			if e.done {
				if m.Reply != nil {
					m.ReplyTo(t, e.reply)
				}
			} else if e.hc != nil {
				e.hc.reply = m.Reply
			}
			return
		}
		r.track(m.ID)
	}
	switch req := m.Body.(type) {
	case ConnectReq:
		r.handleConnect(t, m, req)
	case ListenReq:
		r.handleListen(t, m, req)
	case UnlistenReq:
		r.handleUnlisten(t, m, req)
	case InheritReq:
		r.handleInherit(t, req)
	case TeardownReq:
		r.handleTeardown(t, req)
	case ReRegisterReq:
		r.handleReRegister(t, m, req)
	case BindUDPReq:
		r.handleBindUDP(t, m, req)
	case ResolveReq:
		r.handleResolve(t, m, req)
	case UDPSendReq:
		r.handleUDPSend(t, m, req)
	case UnbindUDPReq:
		r.handleUnbindUDP(t, req)
	}
}

// track inserts an empty dedup entry for a request id, evicting the oldest
// *completed* entry beyond the cache bound. An entry whose reply is not yet
// cached is never evicted: dropping it would let a retry of that request
// re-execute a non-idempotent connect — a second port allocation and a
// second handshake for one logical open. If every tracked entry is still in
// flight the cache grows past dedupCap temporarily; the admission layer
// bounds how many setups can be outstanding at once.
func (r *Server) track(id uint64) {
	if len(r.reqOrder) >= dedupCap {
		for i, old := range r.reqOrder {
			if e, ok := r.reqCache[old]; !ok || e.done {
				delete(r.reqCache, old)
				r.reqOrder = append(r.reqOrder[:i], r.reqOrder[i+1:]...)
				break
			}
		}
	}
	r.reqCache[id] = &pendingReq{}
	r.reqOrder = append(r.reqOrder, id)
}

// finish records a request's reply in the dedup cache and delivers it.
// One-way requests (nil Reply) are still recorded so a duplicate does not
// re-execute (a double Teardown would double-release a port).
func (r *Server) finish(t *kern.Thread, m kern.Msg, reply kern.Msg) {
	if m.ID != 0 {
		if e, ok := r.reqCache[m.ID]; ok {
			e.done, e.reply, e.hc = true, reply, nil
		}
	}
	if m.Reply != nil {
		m.ReplyTo(t, reply)
	}
}

// finishAsync is finish for replies produced outside the service loop (the
// handoff sent by the established/closed callbacks).
func (r *Server) finishAsync(reqID uint64, target *kern.Port, reply kern.Msg) {
	if reqID != 0 {
		if e, ok := r.reqCache[reqID]; ok {
			e.done, e.reply, e.hc = true, reply, nil
		}
	}
	if target != nil {
		target.SendAsync(reply)
	}
}

// handleConnect performs the active open on the library's behalf.
func (r *Server) handleConnect(t *kern.Thread, m kern.Msg, req ConnectReq) {
	// Admission (federation mode): bound how many setups one application
	// domain may have outstanding across all shards. A denied setup has no
	// side effects — the library retries it under backoff with a fresh
	// request id.
	admitted := false
	if r.fed != nil {
		if !r.fed.admit(req.Owner) {
			r.finish(t, m, kern.Msg{Op: "handoff",
				Body: Handoff{Err: stacks.ErrAdmissionDenied}})
			return
		}
		admitted = true
	}
	c := t.Cost()
	t.Compute(c.RegistryPortAlloc + c.RegistryConnSetup)
	port, err := r.ports.Ephemeral()
	if err != nil {
		if admitted {
			r.fed.release(req.Owner)
		}
		r.finish(t, m, kern.Msg{Op: "handoff", Body: Handoff{Err: err}})
		return
	}
	local := tcp.Endpoint{IP: r.nif.IP, Port: port}

	// On the AN1 the BQI is reserved before the SYN leaves so it can ride
	// the link header: "before initiating connection the server requests
	// the network I/O module for a BQI that the remote node can use." The
	// channel itself — and on Ethernet the software demultiplexing binding
	// — is activated as establishment completes, so handshake segments
	// reach the registry's default path.
	hc := &hsConn{opts: req.Opts, owner: req.Owner, reply: m.Reply, reqID: m.ID,
		admitted: admitted}
	r.watch(req.Owner)
	if r.nif.IsAN1() {
		t.Compute(t.Cost().BQIReserve)
		bqi, err := r.nif.Mod.ReserveBQI(r.dom)
		if err != nil {
			r.ports.Release(local.Port)
			r.releaseAdmit(hc)
			r.finish(t, m, kern.Msg{Op: "handoff", Body: Handoff{Err: err}})
			return
		}
		hc.ourBQI = bqi
	}
	cfg := r.tcpConfig(req.Opts)
	tc := tcp.NewConn(cfg, local, req.Remote, tcp.Callbacks{})
	hc.tc = tc
	r.attach(tc, hc)
	if err := r.owned.Insert(tc); err != nil {
		delete(r.conns, tc)
		r.wheel.Drop(hc.went)
		r.ports.Release(local.Port)
		r.dropBQI(hc)
		r.releaseAdmit(hc)
		r.finish(t, m, kern.Msg{Op: "handoff", Body: Handoff{Err: err}})
		return
	}
	if e, ok := r.reqCache[m.ID]; ok && m.ID != 0 {
		e.hc = hc // a retry of this id retargets the eventual handoff
	}
	r.runConn(t, hc, func() { tc.OpenActive(r.nextISS()) })
	// The reply is sent by the established/closed callbacks.
}

// handleListen registers a passive endpoint.
func (r *Server) handleListen(t *kern.Thread, m kern.Msg, req ListenReq) {
	c := t.Cost()
	t.Compute(c.RegistryPortAlloc)
	if !r.ports.Reserve(req.Port) {
		r.finish(t, m, kern.Msg{Op: "listen-ack", Body: stacks.ErrPortInUse})
		return
	}
	bl := req.Opts.Backlog
	if bl <= 0 {
		bl = DefaultBacklog
	}
	r.listeners[req.Port] = &listener{port: req.Port, opts: req.Opts,
		accept: req.AcceptPort, owner: req.Owner, backlog: bl}
	r.watch(req.Owner)
	r.finish(t, m, kern.Msg{Op: "listen-ack", Body: nil})
}

func (r *Server) handleUnlisten(t *kern.Thread, m kern.Msg, req UnlistenReq) {
	if _, ok := r.listeners[req.Port]; ok {
		delete(r.listeners, req.Port)
		r.ports.Release(req.Port)
	}
	r.finish(t, m, kern.Msg{Op: "unlisten-ack"})
}

// handleTeardown reclaims the channel and port of a closed connection. It
// is idempotent: the port reference is dropped only if the connection was
// still on record, so a duplicated teardown (or one racing a crash sweep)
// cannot double-release a port another holder still owns.
func (r *Server) handleTeardown(t *kern.Thread, req TeardownReq) {
	if req.Cap != nil {
		_ = r.nif.Mod.DestroyChannel(r.dom, req.Cap)
	}
	ft := tcp.FourTuple{Local: req.Local, Peer: req.Peer}
	if _, ok := r.transferred[ft]; ok {
		delete(r.transferred, ft)
		r.ports.Release(req.Local.Port)
	}
}

// handleInherit takes a connection back from an exiting application.
func (r *Server) handleInherit(t *kern.Thread, req InheritReq) {
	c := t.Cost()
	t.Compute(c.StateTransfer)
	if req.Cap != nil {
		_ = r.nif.Mod.DestroyChannel(r.dom, req.Cap)
	}
	delete(r.transferred, tcp.FourTuple{Local: req.Snap.Local, Peer: req.Snap.Peer})
	hc := &hsConn{peerHW: req.PeerHW, peerBQI: req.PeerBQI}
	tc := tcp.Restore(req.Snap, tcp.Callbacks{})
	hc.tc = tc
	r.attach(tc, hc)
	if tc.State() != tcp.Closed {
		if err := r.owned.Insert(tc); err != nil {
			return
		}
	}
	if req.Abort {
		// "To guard against an abnormal application termination, the
		// protocol server issues a reset message to the remote peer."
		r.runConn(t, hc, func() { tc.Abort() })
		return
	}
	// Orderly inheritance: close if the application had not, and drive the
	// remaining states (FIN exchange, TIME_WAIT) from the registry.
	r.runConn(t, hc, func() { tc.Close() })
}

// ---------------------------------------------------------------------------
// Channel setup and handoff
// ---------------------------------------------------------------------------

// tcpConfig mirrors the library's configuration so handshake state is
// directly transferable.
func (r *Server) tcpConfig(opts stacks.Options) tcp.Config {
	return tcp.Config{
		MSS:            r.nif.MSS(),
		SndBufSize:     opts.SndBuf,
		RcvBufSize:     opts.RcvBuf,
		Headroom:       r.nif.Headroom(),
		NoDelay:        opts.NoDelay,
		NoDelayedAck:   opts.NoDelayedAck,
		FastRetransmit: true,
		KeepAliveTicks: opts.KeepAliveTicks,
		RexmtR1:        opts.RexmtR1,
		RexmtR2:        opts.RexmtR2,
	}
}

// setupChannel creates the shared region, ring, capability, template and
// demux binding for an endpoint ("nearly 3.4 ms are spent in setting up
// user channels to the network device").
func (r *Server) setupChannel(t *kern.Thread, hc *hsConn, local, remote tcp.Endpoint) error {
	c := t.Cost()
	t.Compute(c.ChannelSetup)
	spec := filter.Spec{
		LinkHdrLen: r.nif.Mod.Device().HdrLen(),
		Proto:      ipv4.ProtoTCP,
		LocalIP:    local.IP, LocalPort: local.Port,
		RemoteIP: remote.IP, RemotePort: remote.Port,
	}
	tmpl := netio.Template{
		LinkSrc: r.nif.HW, Type: link.TypeIPv4,
		Proto:   ipv4.ProtoTCP,
		LocalIP: local.IP, LocalPort: local.Port,
		RemoteIP: remote.IP, RemotePort: remote.Port,
	}
	cap, ch, err := r.nif.Mod.CreateChannelBQI(r.dom, spec, tmpl, 32, hc.ourBQI)
	if err != nil {
		return err
	}
	hc.ourCap, hc.ourCh = cap, ch
	return nil
}

// attach wires the registry-side callbacks for a pcb it owns.
func (r *Server) attach(tc *tcp.Conn, hc *hsConn) {
	r.conns[tc] = hc
	if r.wheel != nil {
		hc.went = r.wheel.Add(tc, hc)
	}
	if r.bus.Enabled() {
		tc.SetTrace(r.bus, r.host.Name+" "+tc.Local().String()+">"+tc.Peer().String())
	}
	tc.SetCallbacks(tcp.Callbacks{
		Send: func(seg *pkt.Buf, h tcp.Header, pl int) {
			r.transmit(seg, tc, hc, h)
		},
		OnEstablished: func() { r.established(tc, hc) },
		OnClosed: func(err error) {
			r.owned.Remove(tc)
			delete(r.conns, tc)
			r.wheel.Drop(hc.went)
			if hc.inBacklog {
				hc.inBacklog = false
				hc.l.pending--
			}
			// Passive-side pcbs share the listener's port and hold no
			// reference of their own until handoff; releasing here would
			// strip the listener's reservation.
			if hc.l == nil {
				r.ports.Release(tc.Local().Port)
			}
			if hc.reply != nil && hc.ourCap != nil {
				// Handshake failed before handoff.
				_ = r.nif.Mod.DestroyChannel(r.dom, hc.ourCap)
				hc.ourCap = nil
			}
			// Complete the dedup entry even when no one is listening for
			// the reply (the crash sweep nils hc.reply before aborting):
			// an entry stuck in-flight forever would pin a slot in the
			// never-evict-in-flight cache, and a late retry of the id
			// would wait on a handoff that can no longer come.
			r.finishAsync(hc.reqID, hc.reply,
				kern.Msg{Op: "handoff", Body: Handoff{Err: stacks.MapError(err)}})
			hc.reply = nil
			r.dropBQI(hc)
			r.releaseAdmit(hc)
		},
	})
}

// releaseAdmit returns a setup's admission-quota slot (federation mode).
// The flag guards exactly-once release however many exit paths the setup
// traverses.
func (r *Server) releaseAdmit(hc *hsConn) {
	if hc != nil && hc.admitted {
		hc.admitted = false
		r.fed.release(hc.owner)
	}
}

// transmit is the registry's un-optimized send path.
func (r *Server) transmit(seg *pkt.Buf, tc *tcp.Conn, hc *hsConn, h tcp.Header) {
	t := r.cur
	if t == nil {
		panic("registry: engine transmit outside runEngine")
	}
	c := t.Cost()
	t.Compute(c.RegistrySendPath)
	t.Compute(stacks.SegCost(r.host, seg.Len(), false))
	r.nif.WrapIP(seg, ipv4.ProtoTCP, tc.Peer().IP)
	// Handshake segments advertise our data-phase BQI in the link header
	// but are themselves addressed to the peer's protected kernel queue
	// (BQI zero): only data-phase traffic uses the negotiated rings.
	r.resolveAndSend(t, seg, tc.Peer().IP, 0, hc.ourBQI)
}

// resolveAndSend frames with BQI fields and transmits via the kernel path.
func (r *Server) resolveAndSend(t *kern.Thread, ippkt *pkt.Buf, dst ipv4.Addr, dstBQI, advBQI uint16) {
	if !r.nif.IsAN1() {
		r.nif.Resolve(t, ippkt, dst, 0, r.nif.Mod.SendKernel)
		return
	}
	hw, ok := r.nif.ARP.Lookup(0, dst)
	if !ok {
		// Resolve handles the ARP exchange; BQI fields stay zero for the
		// queued copy, which is correct for handshake traffic.
		r.nif.Resolve(t, ippkt, dst, 0, r.nif.Mod.SendKernel)
		return
	}
	h := link.AN1Header{Dst: hw, Src: r.nif.HW, BQI: dstBQI, AdvBQI: advBQI, Type: link.TypeIPv4}
	h.Encode(ippkt)
	r.nif.Mod.SendKernel(t, ippkt)
}

// established completes setup: narrow the template to the negotiated peer,
// transfer the state to the library, and route future default-path strays.
func (r *Server) established(tc *tcp.Conn, hc *hsConn) {
	if tc.State() != tcp.Established {
		// The establishment notification is deferred to the end of segment
		// processing; if the connection died in the meantime (give-up,
		// reset), its OnClosed path owns the cleanup — snapshotting and
		// handing off a dying connection would transfer a corpse and
		// double-release its resources.
		return
	}
	t := r.cur
	c := t.Cost()
	// On Ethernet the channel and its demultiplexing binding are created
	// now, as establishment completes.
	if hc.ourCap == nil {
		if err := r.setupChannel(t, hc, tc.Local(), tc.Peer()); err != nil {
			r.abortSetup(tc, hc, err)
			return
		}
	}
	// Narrow the template now that the peer link address is known.
	if hw, ok := r.nif.ARP.Lookup(r.nifNow(), tc.Peer().IP); ok {
		hc.peerHW = hw
	}
	tmpl := netio.Template{
		LinkSrc: r.nif.HW, LinkDst: hc.peerHW, Type: link.TypeIPv4,
		Proto:   ipv4.ProtoTCP,
		LocalIP: tc.Local().IP, LocalPort: tc.Local().Port,
		RemoteIP: tc.Peer().IP, RemotePort: tc.Peer().Port,
	}
	_ = r.nif.Mod.UpdateTemplate(r.dom, hc.ourCap, tmpl)

	// Transfer TCP state to user level.
	t.Compute(c.StateTransfer)
	snap := tc.Snapshot()
	r.owned.Remove(tc)
	delete(r.conns, tc)
	r.wheel.Drop(hc.went)
	if hc.inBacklog {
		hc.inBacklog = false
		hc.l.pending--
	}
	if hc.l != nil {
		// The accepted connection shares its listener's port; the handoff
		// takes a reference of its own, balanced by Teardown/Inherit/crash
		// reclamation.
		r.ports.Retain(tc.Local().Port)
	}
	if hc.owner != nil {
		_ = r.nif.Mod.AssignOwner(r.dom, hc.ourCap, hc.owner)
	}
	r.transferred[tcp.FourTuple{Local: tc.Local(), Peer: tc.Peer()}] = &xferConn{
		owner:   hc.owner,
		ch:      hc.ourCh,
		cap:     hc.ourCap,
		local:   tc.Local(),
		peer:    tc.Peer(),
		peerHW:  hc.peerHW,
		peerBQI: hc.peerBQI,
		sndNxt:  snap.SndNxt,
		rcvNxt:  snap.RcvNxt,
	}

	r.releaseAdmit(hc) // setup complete: free the admission-quota slot

	ho := Handoff{
		Snap:    snap,
		Cap:     hc.ourCap,
		Channel: hc.ourCh,
		PeerHW:  hc.peerHW,
		PeerBQI: hc.peerBQI,
	}
	if hc.reply != nil {
		r.finishAsync(hc.reqID, hc.reply, kern.Msg{Op: "handoff", Body: ho, Size: snap.Size()})
		hc.reply = nil
	} else if hc.l != nil {
		hc.l.accept.SendAsync(kern.Msg{Op: "handoff", Body: ho, Size: snap.Size()})
	}
}

// dropBQI returns a reserved-but-unconsumed ring index to the module. A
// BQI that made it into a channel is recycled by DestroyChannel instead;
// this covers handshakes that die between reservation and channel
// creation, which under connection churn would otherwise drain the
// hardware index space.
func (r *Server) dropBQI(hc *hsConn) {
	if hc.ourCap == nil && hc.ourBQI != 0 {
		_ = r.nif.Mod.ReleaseBQI(r.dom, hc.ourBQI)
	}
	hc.ourBQI = 0
}

// abortSetup unwinds a connection whose channel could not be created at
// establishment time: without it the port, pcb-table entry and backlog
// slot stayed allocated forever and the client never got an answer.
func (r *Server) abortSetup(tc *tcp.Conn, hc *hsConn, err error) {
	tc.SetCallbacks(tcp.Callbacks{})
	r.owned.Remove(tc)
	delete(r.conns, tc)
	r.wheel.Drop(hc.went)
	if hc.ourCap != nil {
		// A channel that was created before the failure (e.g. the
		// template update path) would otherwise leave its lease, BQI and
		// pinned region installed forever.
		_ = r.nif.Mod.DestroyChannel(r.dom, hc.ourCap)
		hc.ourCap = nil
	}
	r.dropBQI(hc)
	r.releaseAdmit(hc)
	if hc.inBacklog {
		hc.inBacklog = false
		hc.l.pending--
	}
	if hc.l == nil {
		r.ports.Release(tc.Local().Port)
	}
	msg := kern.Msg{Op: "handoff", Body: Handoff{Err: err}}
	if hc.reply != nil {
		r.finishAsync(hc.reqID, hc.reply, msg)
		hc.reply = nil
	} else if hc.l != nil {
		hc.l.accept.SendAsync(msg)
	}
}

func (r *Server) nifNow() uint64 {
	return uint64(time.Duration(r.host.S.Now()) / (500 * time.Millisecond))
}

func (r *Server) runEngine(t *kern.Thread, fn func()) {
	r.lock.P(t.Proc)
	r.cur = t
	fn()
	r.cur = nil
	r.lock.V()
}

// runConn runs an engine operation on one owned pcb. In wheel mode the
// connection's tick counters are synced to the wheel clock before fn reads
// them, and whatever fn arms is synced back onto the wheel afterwards; the
// exit Sync is a no-op if a callback inside fn already dropped the entry
// (the engine is Closed, so nothing re-arms).
func (r *Server) runConn(t *kern.Thread, hc *hsConn, fn func()) {
	if hc == nil || hc.went == nil {
		r.runEngine(t, fn)
		return
	}
	r.runEngine(t, func() {
		r.wheel.Sync(hc.went)
		fn()
		r.wheel.Sync(hc.went)
	})
}

// ---------------------------------------------------------------------------
// Crash-failure reclamation
// ---------------------------------------------------------------------------

// watch arranges for the registry to learn of an application domain's
// death. The hook runs in whatever context performed the kill, so it only
// posts an async notification; real reclamation happens on the service
// thread. One hook per domain, however many connections it opens.
func (r *Server) watch(dom *kern.Domain) {
	if dom == nil || r.watched[dom] {
		return
	}
	r.watched[dom] = true
	dom.OnDeath(func() {
		r.Svc.SendAsync(kern.Msg{Op: "crash", Body: crashReq{dom: dom}})
	})
}

// handleCrash reclaims everything a crashed application held: handshaking
// connections are aborted (RST through the engine), transferred connections
// have their channels destroyed, ports released and a best-effort reset sent
// to the peer, listeners and UDP bindings are removed, and finally the
// network I/O module sweeps any capability still recorded against the dead
// domain. "To guard against an abnormal application termination, the
// protocol server issues a reset message to the remote peer" — here with no
// cooperation from the application at all.
func (r *Server) handleCrash(t *kern.Thread, dom *kern.Domain) {
	c := t.Cost()
	t.Compute(c.StateTransfer)
	delete(r.watched, dom)

	// Registry-owned pcbs (handshakes in flight for the dead app): abort.
	var dead []*hsConn
	for _, hc := range r.conns {
		if hc.owner == dom {
			hc.reply = nil // no one is listening for the handoff
			dead = append(dead, hc)
		}
	}
	for _, hc := range dead {
		tc := hc.tc
		r.runConn(t, hc, func() { tc.Abort() })
		if hc.ourCap != nil {
			_ = r.nif.Mod.DestroyChannel(r.dom, hc.ourCap)
			hc.ourCap = nil
		}
		r.dropBQI(hc)
	}

	// Transferred connections: revoke the channel, release the port, reset
	// the peer. The sequence numbers recorded at handoff time may be stale
	// if the application moved data afterwards; if the peer answers the
	// stale reset with a challenge ACK, that ACK lands on the (now
	// reclaimed) default path below and is answered with an exactly-aimed
	// RST by inputTCP's no-endpoint case — so the peer converges to reset
	// either way.
	for ft, xc := range r.transferred {
		if xc.owner != dom {
			continue
		}
		if xc.cap != nil {
			_ = r.nif.Mod.DestroyChannel(r.dom, xc.cap)
		}
		delete(r.transferred, ft)
		r.ports.Release(ft.Local.Port)
		r.sendCrashRST(t, xc)
	}

	// Listeners and datagram bindings.
	for port, l := range r.listeners {
		if l.owner == dom {
			delete(r.listeners, port)
			r.ports.Release(port)
		}
	}
	for port, ub := range r.udpChannels {
		if ub.owner == dom {
			if ub.cap != nil {
				_ = r.nif.Mod.DestroyChannel(r.dom, ub.cap)
			}
			delete(r.udpChannels, port)
			r.udpPorts.Release(port)
		}
	}

	// Final sweep: the module revokes anything still issued to the dead
	// domain, even if the registry's own records were incomplete.
	_, _ = r.nif.Mod.RevokeOwner(r.dom, dom)
}

// sendCrashRST issues the proactive reset for a crashed application's
// connection, from the state recorded at handoff time.
//
// The sequence numbers may be stale: the library moved data after handoff
// without the registry seeing it. A stale RST is silently discarded by the
// peer (it elicits no challenge), so the RST alone only covers a connection
// that never advanced. The bare ACK sent after it covers the rest: an
// out-of-window ACK makes the peer respond with its own ACK, which lands on
// this host's default path — the tuple is already reclaimed — and is
// answered by inputTCP's no-endpoint case with a reset aimed exactly at the
// peer's expected sequence. Either way the peer converges to a reset.
func (r *Server) sendCrashRST(t *kern.Thread, xc *xferConn) {
	for _, flags := range []uint8{tcp.FlagRST | tcp.FlagACK, tcp.FlagACK} {
		h := tcp.Header{
			SrcPort: xc.local.Port, DstPort: xc.peer.Port,
			Seq: xc.sndNxt, Ack: xc.rcvNxt,
			Flags: flags,
		}
		b := pkt.FromBytes(r.nif.Headroom()+tcp.HeaderLen, nil)
		h.Encode(b, xc.local.IP, xc.peer.IP)
		c := t.Cost()
		t.Compute(c.RegistrySendPath)
		t.Compute(stacks.SegCost(r.host, b.Len(), false))
		r.nif.WrapIP(b, ipv4.ProtoTCP, xc.peer.IP)
		r.resolveAndSend(t, b, xc.peer.IP, 0, 0)
	}
}

// ---------------------------------------------------------------------------
// Crash recovery: state rebuild and re-registration
// ---------------------------------------------------------------------------

// rebuild reconstructs the port table and connection map of a restarted
// registry from the network I/O module's installed header templates — the
// in-kernel module, not the crashed server's memory, is the authoritative
// record of what endpoints exist (the paper's trust split: the module is
// trusted, everything above it is reconstructible).
//
// What is deliberately NOT rebuilt: listeners and in-flight handshakes
// (the library's RPC retry re-creates them), inherited TIME_WAIT pcbs
// (strays for them get RSTs from the no-endpoint path, which is the
// correct terminal outcome for a half-dead connection), and the dedup
// cache (a request older than a registry crash has long exhausted its
// retry budget).
func (r *Server) rebuild(t *kern.Thread) {
	eps, err := r.nif.Mod.InstalledEndpoints(r.dom)
	if err != nil {
		return
	}
	c := t.Cost()
	n := 0
	for _, ep := range eps {
		tmpl := ep.Template
		if tmpl.LocalIP != r.nif.IP {
			continue
		}
		switch tmpl.Proto {
		case ipv4.ProtoTCP:
			if tmpl.RemotePort == 0 {
				continue // not a fully specified connection endpoint
			}
			local := tcp.Endpoint{IP: tmpl.LocalIP, Port: tmpl.LocalPort}
			peer := tcp.Endpoint{IP: tmpl.RemoteIP, Port: tmpl.RemotePort}
			if r.fed != nil {
				// A shard adopts only the endpoints it statically owns; its
				// siblings' slices are theirs to rebuild. Re-issuing moves
				// lease-renewal responsibility back here even if a survivor
				// adopted the endpoint during the outage.
				if r.fed.ownerEndpoints(local, peer) != r.shardIdx {
					continue
				}
				_ = r.nif.Mod.Reissue(r.dom, ep.Cap)
			}
			t.Compute(c.RegistryPortAlloc)
			if !r.ports.Reserve(local.Port) {
				r.ports.Retain(local.Port) // accepted conns share a port
			}
			r.transferred[tcp.FourTuple{Local: local, Peer: peer}] = &xferConn{
				owner: ep.Owner, ch: ep.Channel, cap: ep.Cap,
				local: local, peer: peer,
				peerHW: tmpl.LinkDst, peerBQI: 0,
				// Sequence numbers are unknown until the library
				// re-registers; sendCrashRST's ACK-probe half still
				// converges the peer if the owner dies before then.
			}
			r.watch(ep.Owner)
			n++
		case ipv4.ProtoUDP:
			if r.fed != nil {
				if r.shardIdx != 0 {
					continue // shard 0 owns all datagram endpoints
				}
				_ = r.nif.Mod.Reissue(r.dom, ep.Cap)
			}
			t.Compute(c.RegistryPortAlloc)
			r.udpPorts.Reserve(tmpl.LocalPort)
			r.udpChannels[tmpl.LocalPort] = &udpBinding{owner: ep.Owner, ch: ep.Channel, cap: ep.Cap}
			r.watch(ep.Owner)
			n++
		}
	}
	r.rebuilt = n
	// Resume renewing before anything can expire further: re-adopted
	// endpoints leave quarantine immediately.
	_, _ = r.nif.Mod.RenewLeases(r.dom)
	if r.bus.Enabled() {
		r.bus.Emit(trace.Event{Kind: trace.RegistryRestart, Node: r.host.Name,
			A: int64(r.epoch), B: int64(n)})
	}
}

// handleReRegister re-adopts a library's live connection after a registry
// restart. The claim is verified against the module: the capability must
// be installed and its template must name exactly the claimed four-tuple —
// a library cannot talk its way into a connection the kernel never gave
// it.
func (r *Server) handleReRegister(t *kern.Thread, m kern.Msg, req ReRegisterReq) {
	t.Compute(t.Cost().StateTransfer)
	mod := r.nif.Mod
	if !mod.Installed(req.Cap) {
		r.finish(t, m, kern.Msg{Op: "reregister-ack", Body: netio.ErrBadCapability})
		return
	}
	tmpl := req.Cap.Template()
	if tmpl.Proto != ipv4.ProtoTCP ||
		tmpl.LocalIP != req.Local.IP || tmpl.LocalPort != req.Local.Port ||
		tmpl.RemoteIP != req.Peer.IP || tmpl.RemotePort != req.Peer.Port {
		r.finish(t, m, kern.Msg{Op: "reregister-ack", Body: netio.ErrTemplateMismatch})
		return
	}
	ft := tcp.FourTuple{Local: req.Local, Peer: req.Peer}
	xc, ok := r.transferred[ft]
	if !ok {
		if !r.ports.Reserve(req.Local.Port) {
			r.ports.Retain(req.Local.Port)
		}
		xc = &xferConn{local: req.Local, peer: req.Peer}
		r.transferred[ft] = xc
	}
	xc.owner = req.Owner
	xc.ch = req.Cap.Chan()
	xc.cap = req.Cap
	xc.peerHW = req.PeerHW
	xc.peerBQI = req.PeerBQI
	xc.sndNxt, xc.rcvNxt = req.SndNxt, req.RcvNxt
	r.watch(req.Owner)
	if r.fed != nil {
		// Cross-shard migration: adopting a crashed sibling's connection
		// takes over lease renewal too, or the endpoint would quarantine
		// again at the next TTL despite being re-registered here.
		_ = mod.Reissue(r.dom, req.Cap)
	}
	_ = mod.RenewLease(r.dom, req.Cap)
	r.reregistered++
	r.finish(t, m, kern.Msg{Op: "reregister-ack", Body: nil})
}

// ---------------------------------------------------------------------------
// Introspection for tests and diagnostics
// ---------------------------------------------------------------------------

// OwnedConns returns how many pcbs the registry currently owns
// (handshaking, inherited, TIME_WAIT).
func (r *Server) OwnedConns() int { return r.owned.Len() }

// TransferredConns returns how many connections are handed off to
// libraries and not yet reclaimed.
func (r *Server) TransferredConns() int { return len(r.transferred) }

// PortsInUse returns allocated TCP plus UDP ports. Crash and orderly-exit
// tests assert this returns to zero.
func (r *Server) PortsInUse() int { return r.ports.InUse() + r.udpPorts.InUse() }

// ListenerCount returns registered passive endpoints.
func (r *Server) ListenerCount() int { return len(r.listeners) }

// Epoch returns the incarnation number (1 = first boot on this host).
func (r *Server) Epoch() int { return r.epoch }

// SynDrops returns SYNs dropped by full listen backlogs.
func (r *Server) SynDrops() int { return r.synDrops }

// DedupHits returns duplicate control-plane requests answered from the
// request-ID cache instead of being re-executed.
func (r *Server) DedupHits() int { return r.dedupHits }

// ReRegistered returns connections re-adopted after a restart.
func (r *Server) ReRegistered() int { return r.reregistered }

// RebuiltEndpoints returns endpoints reconstructed from module templates
// at restart.
func (r *Server) RebuiltEndpoints() int { return r.rebuilt }
