package registry

// Crash-recovery tests for the registry itself: restart with state rebuild
// from the network I/O module, verified re-registration, request-ID
// deduplication, idempotent teardown, bounded listen backlogs, and the
// leak audit of the connect path's error branches.

import (
	"errors"
	"testing"
	"time"

	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/pkt"
	"ulp/internal/stacks"
	"ulp/internal/tcp"
)

// restartR1 crashes host 1's registry and boots a fresh incarnation over
// the same module, running the sim long enough for the rebuild to finish.
// The settle step first lets in-flight handshake frames (the final ACK the
// crash would otherwise strand) reach both sides.
func (rg *rig) restartR1() {
	rg.s.Run(100 * time.Millisecond)
	old := rg.r1
	old.Crash()
	rg.r1 = Restart(rg.s, old.Netif().Mod, rg.ips[1], old)
	rg.s.Run(50 * time.Millisecond)
}

// A restarted registry reconstructs its port table and connection map from
// the module's installed header templates — the kernel, not the crashed
// server's memory, is the ground truth. Listeners are deliberately lost:
// the library's RPC retry re-creates them.
func TestRestartRebuildsFromModule(t *testing.T) {
	rg := newRig(false)
	rg.listenOn(t, 80)
	ho, got := rg.connectFrom(t, 80, time.Minute)
	if !got || ho.Err != nil {
		t.Fatalf("setup: got=%v err=%v", got, ho.Err)
	}

	rg.restartR1()
	if rg.r1.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", rg.r1.Epoch())
	}
	if rg.r1.RebuiltEndpoints() != 1 {
		t.Fatalf("rebuilt %d endpoints, want 1 (the transferred connection)", rg.r1.RebuiltEndpoints())
	}
	if rg.r1.TransferredConns() != 1 {
		t.Fatalf("transferred map has %d entries after rebuild, want 1", rg.r1.TransferredConns())
	}
	// The connection's local port is reserved again — a post-restart
	// allocation cannot collide with the live connection.
	if rg.r1.ports.Reserve(ho.Snap.Local.Port) {
		t.Fatal("rebuild did not re-reserve the transferred connection's port")
	}

	// The passive host: its transferred connection is rebuilt too, but the
	// listener is not — listeners have no kernel-side template to rebuild
	// from, by design.
	old := rg.r0
	old.Crash()
	rg.r0 = Restart(rg.s, old.Netif().Mod, rg.ips[0], old)
	rg.s.Run(50 * time.Millisecond)
	if rg.r0.TransferredConns() != 1 {
		t.Fatalf("passive side rebuilt %d transferred conns, want 1", rg.r0.TransferredConns())
	}
	if rg.r0.ListenerCount() != 0 {
		t.Fatal("listener survived the restart; it must be deliberately lost")
	}
}

// Re-registration claims are verified against the module: the capability
// must be installed and its template must name exactly the claimed
// four-tuple. A library cannot talk its way into someone else's port.
func TestReRegisterVerifiedAgainstModule(t *testing.T) {
	rg := newRig(false)
	rg.listenOn(t, 80)
	ho, got := rg.connectFrom(t, 80, time.Minute)
	if !got || ho.Err != nil {
		t.Fatal("setup failed")
	}
	rg.restartR1()

	call := func(req ReRegisterReq) error {
		var err error
		done := false
		rg.apps[1].Spawn("rereg", func(th *kern.Thread) {
			reply := rg.r1.Svc.Call(th, kern.Msg{Op: "reregister", Body: req})
			err, _ = reply.Body.(error)
			done = true
		})
		rg.s.RunUntil(time.Second, func() bool { return done })
		return err
	}

	// A forged claim without a capability is refused.
	if err := call(ReRegisterReq{Local: ho.Snap.Local, Peer: ho.Snap.Peer}); err == nil {
		t.Fatal("reregister without a capability accepted")
	}
	// A real capability claimed for the wrong four-tuple is refused.
	wrong := ho.Snap.Peer
	wrong.Port++
	if err := call(ReRegisterReq{Local: ho.Snap.Local, Peer: wrong, Cap: ho.Cap}); err == nil {
		t.Fatal("reregister with mismatched tuple accepted")
	}
	// The honest claim is adopted and brings the sequence numbers with it.
	err := call(ReRegisterReq{
		Local: ho.Snap.Local, Peer: ho.Snap.Peer, Cap: ho.Cap,
		PeerHW: ho.PeerHW, PeerBQI: ho.PeerBQI,
		SndNxt: ho.Snap.SndNxt, RcvNxt: ho.Snap.RcvNxt,
	})
	if err != nil {
		t.Fatalf("honest reregister refused: %v", err)
	}
	if rg.r1.ReRegistered() != 1 {
		t.Fatalf("reregistered = %d, want 1", rg.r1.ReRegistered())
	}
	xc := rg.r1.transferred[tcp.FourTuple{Local: ho.Snap.Local, Peer: ho.Snap.Peer}]
	if xc == nil || xc.sndNxt != ho.Snap.SndNxt {
		t.Fatal("re-registration did not refresh the recorded sequence numbers")
	}
}

// A retried request with the same ID replays the cached reply instead of
// executing twice: the retried listen must NOT see ErrPortInUse from its
// own first attempt.
func TestDedupReplaysCachedReply(t *testing.T) {
	rg := newRig(false)
	accept := kern.NewPort(rg.r0.Host(), "accept")
	listen := func(id uint64) error {
		var err error
		done := false
		rg.apps[0].Spawn("listen", func(th *kern.Thread) {
			reply := rg.r0.Svc.Call(th, kern.Msg{Op: "listen", ID: id,
				Body: ListenReq{Port: 80, AcceptPort: accept}})
			err, _ = reply.Body.(error)
			done = true
		})
		rg.s.RunUntil(time.Second, func() bool { return done })
		return err
	}
	if err := listen(77); err != nil {
		t.Fatalf("first listen: %v", err)
	}
	// Same ID: a retry after a lost reply. Must succeed from the cache.
	if err := listen(77); err != nil {
		t.Fatalf("retried listen re-executed and failed: %v", err)
	}
	if rg.r0.DedupHits() != 1 {
		t.Fatalf("dedup hits = %d, want 1", rg.r0.DedupHits())
	}
	if rg.r0.ListenerCount() != 1 {
		t.Fatalf("%d listeners after retry, want 1", rg.r0.ListenerCount())
	}
	// A genuinely new request still executes (and correctly fails).
	if err := listen(78); err != stacks.ErrPortInUse {
		t.Fatalf("fresh duplicate listen = %v, want ErrPortInUse", err)
	}
}

// A duplicated teardown must not double-release the connection's port: the
// release happens only if the transferred entry still existed, so a
// duplicate cannot free a port a new holder owns.
func TestTeardownIdempotent(t *testing.T) {
	rg := newRig(false)
	rg.listenOn(t, 80)
	ho, got := rg.connectFrom(t, 80, time.Minute)
	if !got || ho.Err != nil {
		t.Fatal("setup failed")
	}
	teardown := func() {
		done := false
		rg.apps[1].Spawn("td", func(th *kern.Thread) {
			rg.r1.Svc.Send(th, kern.Msg{Op: "teardown", Body: TeardownReq{
				Local: ho.Snap.Local, Peer: ho.Snap.Peer, Cap: ho.Cap,
			}})
			done = true
		})
		rg.s.RunUntil(time.Second, func() bool { return done })
		rg.s.Run(50 * time.Millisecond)
	}
	teardown()
	// The port is free; a new holder takes it.
	if !rg.r1.ports.Reserve(ho.Snap.Local.Port) {
		t.Fatal("teardown did not release the port")
	}
	// The duplicate teardown (retry, or a race with a crash sweep) must
	// leave the new holder's reservation intact.
	teardown()
	if rg.r1.ports.Reserve(ho.Snap.Local.Port) {
		t.Fatal("duplicate teardown released a port it no longer owned")
	}
}

// A SYN burst beyond the listener's backlog is dropped deterministically:
// the accepted handshakes are bounded and the excess is counted, so a SYN
// flood cannot grow registry state without bound.
func TestSynFloodBoundedByBacklog(t *testing.T) {
	rg := newRig(false)
	accept := kern.NewPort(rg.r0.Host(), "accept")
	done := false
	rg.apps[0].Spawn("listen", func(th *kern.Thread) {
		rg.r0.Svc.Call(th, kern.Msg{Op: "listen",
			Body: ListenReq{Port: 80, Opts: stacks.Options{Backlog: 4}, AcceptPort: accept}})
		done = true
	})
	rg.s.RunUntil(time.Second, func() bool { return done })

	// 12 SYNs from an unresolvable source (no host answers 10.0.0.9's ARP),
	// pushed back-to-back into the registry's default receive path: the
	// handshakes can never complete, so the backlog stays saturated.
	src := ipv4.Addr{10, 0, 0, 9}
	pushed := false
	rg.r0.Host().NewDomain("flood", true).Spawn("push", func(th *kern.Thread) {
		for i := 0; i < 12; i++ {
			hdr := tcp.Header{SrcPort: uint16(2000 + i), DstPort: 80,
				Seq: tcp.Seq(1000 * uint32(i)), Flags: tcp.FlagSYN, Window: 4096}
			b := pkt.FromBytes(link.EthHeaderLen+ipv4.HeaderLen+tcp.HeaderLen, nil)
			hdr.Encode(b, src, rg.ips[0])
			ih := ipv4.Header{TTL: 64, Proto: ipv4.ProtoTCP, Src: src, Dst: rg.ips[0]}
			ih.Encode(b)
			lh := link.EthHeader{Dst: link.MakeAddr(1), Src: link.MakeAddr(9), Type: link.TypeIPv4}
			lh.Encode(b)
			rg.r0.rxq.Push(b)
		}
		pushed = true
	})
	rg.s.RunUntil(time.Second, func() bool { return pushed })
	rg.s.Run(100 * time.Millisecond)

	if got := rg.r0.SynDrops(); got != 8 {
		t.Fatalf("dropped %d SYNs, want 8 (12 sent, backlog 4)", got)
	}
	if got := rg.r0.OwnedConns(); got != 4 {
		t.Fatalf("registry owns %d handshake pcbs, want exactly the backlog (4)", got)
	}
}

// Orphaned TIME_WAIT: an inherited closing pcb dies with the registry and
// is deliberately not rebuilt (its channel was already destroyed, so no
// kernel template exists). A stray from the peer at the orphaned tuple
// must draw a reset from the no-endpoint path.
func TestOrphanedTimeWaitStrayGetsRST(t *testing.T) {
	rg := newRig(false)
	accept := rg.listenOn(t, 80)
	ho, got := rg.connectFrom(t, 80, time.Minute)
	if !got || ho.Err != nil {
		t.Fatal("setup failed")
	}
	// Drain the passive handoff so we can watch host 0's data channel.
	var srvHo Handoff
	gotSrv := false
	rg.apps[0].Spawn("accept", func(th *kern.Thread) {
		m := accept.Receive(th)
		srvHo = m.Body.(Handoff)
		gotSrv = true
	})
	rg.s.RunUntil(time.Minute, func() bool { return gotSrv })

	// The application exits cleanly; the registry inherits the close.
	done := false
	rg.apps[1].Spawn("exit", func(th *kern.Thread) {
		rg.r1.Svc.Send(th, kern.Msg{Op: "inherit", Body: InheritReq{
			Snap: ho.Snap, Cap: ho.Cap, PeerHW: ho.PeerHW, PeerBQI: ho.PeerBQI,
		}})
		done = true
	})
	rg.s.RunUntil(time.Second, func() bool { return done })
	rg.s.Run(100 * time.Millisecond)
	if rg.r1.OwnedConns() != 1 {
		t.Fatalf("registry owns %d pcbs before crash, want 1 (inherited)", rg.r1.OwnedConns())
	}

	// Crash mid-close. The reborn registry has nothing to rebuild: inherit
	// destroyed the channel, so the kernel holds no template for the tuple.
	rg.restartR1()
	if rg.r1.OwnedConns() != 0 || rg.r1.RebuiltEndpoints() != 0 {
		t.Fatalf("owned=%d rebuilt=%d after restart, want 0/0 (TIME_WAIT deliberately lost)",
			rg.r1.OwnedConns(), rg.r1.RebuiltEndpoints())
	}

	// The peer retransmits into the orphaned tuple; host 1's no-endpoint
	// path must answer with RST, observable as a new frame arriving on host
	// 0's channel for the connection (nothing else transmits any more).
	base := srvHo.Channel.Pending()
	sent := false
	rg.r0.Host().NewDomain("k", true).Spawn("tx", func(th *kern.Thread) {
		hdr := tcp.Header{SrcPort: 80, DstPort: ho.Snap.Local.Port,
			Seq: ho.Snap.RcvNxt, Ack: ho.Snap.SndNxt, Flags: tcp.FlagACK, Window: 100}
		b := pkt.FromBytes(rg.r0.Netif().Headroom()+tcp.HeaderLen, nil)
		hdr.Encode(b, rg.ips[0], rg.ips[1])
		rg.r0.Netif().WrapIP(b, ipv4.ProtoTCP, rg.ips[1])
		rg.r0.Netif().Resolve(th, b, rg.ips[1], 0, rg.r0.Netif().Mod.SendKernel)
		sent = true
	})
	rg.s.RunUntil(time.Second, func() bool { return sent })
	rg.s.Run(100 * time.Millisecond)
	if srvHo.Channel.Pending() <= base {
		t.Fatal("no RST came back for the orphaned TIME_WAIT tuple")
	}
	for _, b := range srvHo.Channel.TryRecv() {
		b.Release()
	}
}

// Leak audit, AN1 connect path: a BQI reservation failure must release the
// ephemeral port and leave no pcb behind.
func TestConnectBQIFailureLeaksNothing(t *testing.T) {
	rg := newRig(true)
	rg.listenOn(t, 80)
	rg.r1.Netif().Mod.FailSetup = func(op string) error {
		if op == "bqi" {
			return errors.New("induced: BQI exhausted")
		}
		return nil
	}
	base := rg.r1.PortsInUse()
	ho, got := rg.connectFrom(t, 80, time.Minute)
	if !got || ho.Err == nil {
		t.Fatalf("connect should fail: got=%v err=%v", got, ho.Err)
	}
	if rg.r1.PortsInUse() != base {
		t.Fatalf("ports in use %d != baseline %d after failed connect", rg.r1.PortsInUse(), base)
	}
	if rg.r1.OwnedConns() != 0 {
		t.Fatalf("%d pcbs leaked by the failed connect", rg.r1.OwnedConns())
	}
}

// Leak audit, Ethernet connect path: a channel-creation failure at
// establishment time (abortSetup) must unwind the port, the pcb-table
// entry, and still answer the client.
func TestConnectChannelFailureLeaksNothing(t *testing.T) {
	rg := newRig(false)
	rg.listenOn(t, 80)
	rg.r1.Netif().Mod.FailSetup = func(op string) error {
		if op == "create" {
			return errors.New("induced: channel setup failed")
		}
		return nil
	}
	base := rg.r1.PortsInUse()
	ho, got := rg.connectFrom(t, 80, time.Minute)
	if !got {
		t.Fatal("failed setup never answered the client")
	}
	if ho.Err == nil {
		t.Fatal("connect should surface the channel failure")
	}
	rg.s.Run(100 * time.Millisecond)
	if rg.r1.PortsInUse() != base {
		t.Fatalf("ports in use %d != baseline %d after aborted setup", rg.r1.PortsInUse(), base)
	}
	if rg.r1.OwnedConns() != 0 || rg.r1.TransferredConns() != 0 {
		t.Fatalf("aborted setup left owned=%d transferred=%d",
			rg.r1.OwnedConns(), rg.r1.TransferredConns())
	}
}
