package registry

// Federation tests: static shard ownership, frame steering to the
// authoritative shard, the per-application admission quota, shard
// crash/restart with ownership-filtered rebuild and listener replication,
// and the two stale-state regressions the sharded control plane exposed —
// dedup-cache eviction of in-flight setups and admission/lease leaks on
// the connect path's error branches.

import (
	"errors"
	"testing"
	"time"

	"ulp/internal/costs"
	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/netdev"
	"ulp/internal/netio"
	"ulp/internal/sim"
	"ulp/internal/stacks"
	"ulp/internal/tcp"
	"ulp/internal/wire"
)

// fedRig is a two-host world: host 0 runs a classic single registry (the
// far side), host 1 runs an N-shard federation. Tests speak the service
// protocol directly to individual shards, which is legitimate exactly
// because ownership is static: a shard only ever allocates ports from its
// own slice, so a connect sent to shard k is owned by shard k.
type fedRig struct {
	s    *sim.Sim
	r0   *Server
	fed  *Federation
	ips  []ipv4.Addr
	apps []*kern.Domain
}

func newFedRig(t *testing.T, shards, quota int) *fedRig {
	t.Helper()
	s := sim.New()
	seg := wire.New(s, wire.EthernetConfig())
	rg := &fedRig{s: s, ips: []ipv4.Addr{{10, 0, 0, 1}, {10, 0, 0, 2}}}
	mkMod := func(i int) *netio.Module {
		h := kern.NewHost(s, []string{"h0", "h1"}[i], costs.Default())
		dev := netdev.NewLance(h, seg, link.MakeAddr(i+1))
		mod := netio.New(h, dev)
		rg.apps = append(rg.apps, h.NewDomain("app", false))
		return mod
	}
	rg.r0 = New(s, mkMod(0), rg.ips[0])
	rg.fed = NewFederation(s, mkMod(1), rg.ips[1], FederationConfig{Shards: shards, Quota: quota})
	return rg
}

// listenOn0 registers a listener on the far (single-registry) host.
func (rg *fedRig) listenOn0(t *testing.T, port uint16) {
	t.Helper()
	accept := kern.NewPort(rg.r0.Host(), "accept")
	done := false
	rg.apps[0].Spawn("listen", func(th *kern.Thread) {
		reply := rg.r0.Svc.Call(th, kern.Msg{Op: "listen", Body: ListenReq{Port: port, AcceptPort: accept}})
		if err, _ := reply.Body.(error); err != nil {
			t.Errorf("listen: %v", err)
		}
		done = true
	})
	rg.s.RunUntil(time.Second, func() bool { return done })
}

// connectVia performs an active open through one specific shard.
func (rg *fedRig) connectVia(t *testing.T, shard int, remote tcp.Endpoint, id uint64, budget time.Duration) (Handoff, bool) {
	t.Helper()
	var ho Handoff
	got := false
	rg.apps[1].Spawn("connect", func(th *kern.Thread) {
		reply := rg.fed.Shard(shard).Svc.Call(th, kern.Msg{
			Op: "connect", ID: id,
			Body: ConnectReq{Remote: remote, Owner: rg.apps[1]},
		})
		ho, _ = reply.Body.(Handoff)
		got = true
	})
	rg.s.RunUntil(budget, func() bool { return got })
	return ho, got
}

// Shard slices partition the ephemeral window with no gaps or overlaps,
// and every port in a shard's slice maps back to that shard.
func TestFederationPartitionsPortSpace(t *testing.T) {
	rg := newFedRig(t, 4, 0)
	lo, hi := tcp.NewPortAlloc().EphemeralRange()
	if rg.fed.slices[0][0] != lo || rg.fed.slices[3][1] != hi {
		t.Fatalf("slices %v do not span [%d,%d)", rg.fed.slices, lo, hi)
	}
	for i := 1; i < 4; i++ {
		if rg.fed.slices[i][0] != rg.fed.slices[i-1][1] {
			t.Fatalf("gap or overlap between slice %d and %d: %v", i-1, i, rg.fed.slices)
		}
	}
	peer := tcp.Endpoint{IP: rg.ips[0], Port: 80}
	for i, sl := range rg.fed.slices {
		for _, p := range []uint16{sl[0], sl[1] - 1} {
			local := tcp.Endpoint{IP: rg.ips[1], Port: p}
			if got := rg.fed.ownerEndpoints(local, peer); got != i {
				t.Fatalf("port %d owned by shard %d, want %d", p, got, i)
			}
		}
	}
}

// A connect through shard k completes the handshake: the SYN|ACK arriving
// on the shared interface is classified by tuple and steered to shard k's
// receive queue, not to shard 0.
func TestFederationSteersHandshakeToOwner(t *testing.T) {
	rg := newFedRig(t, 4, 0)
	rg.listenOn0(t, 80)
	for shard := 0; shard < 4; shard++ {
		ho, got := rg.connectVia(t, shard, tcp.Endpoint{IP: rg.ips[0], Port: 80}, 0, time.Minute)
		if !got || ho.Err != nil {
			t.Fatalf("shard %d connect: got=%v err=%v", shard, got, ho.Err)
		}
		if rg.fed.ownerEndpoints(ho.Snap.Local, ho.Snap.Peer) != shard {
			t.Fatalf("shard %d handed off a tuple it does not own: %v", shard, ho.Snap.Local)
		}
		if rg.fed.Shard(shard).TransferredConns() != 1 {
			t.Fatalf("shard %d transferred %d conns, want 1", shard, rg.fed.Shard(shard).TransferredConns())
		}
	}
	// No shard adopted another's connection.
	if rg.fed.TransferredConns() != 4 {
		t.Fatalf("federation transferred %d conns, want 4", rg.fed.TransferredConns())
	}
}

// The admission quota bounds outstanding setups per application domain:
// with quota 2 and two handshakes stalled against an unresolvable peer, a
// third connect is refused immediately with ErrAdmissionDenied and no side
// effects; completion of a setup frees its slot.
func TestFederationAdmissionQuota(t *testing.T) {
	rg := newFedRig(t, 2, 2)
	// 10.0.0.9 answers no ARP: the two admitted setups stay in flight.
	dead := tcp.Endpoint{IP: ipv4.Addr{10, 0, 0, 9}, Port: 80}
	for i := 0; i < 2; i++ {
		shard := i
		rg.apps[1].Spawn("stall", func(th *kern.Thread) {
			rg.fed.Shard(shard).Svc.Call(th, kern.Msg{
				Op: "connect", Body: ConnectReq{Remote: dead, Owner: rg.apps[1]}})
		})
	}
	rg.s.Run(10 * time.Millisecond)
	if got := rg.fed.Outstanding(rg.apps[1]); got != 2 {
		t.Fatalf("outstanding = %d, want 2", got)
	}
	portsBefore := rg.fed.PortsInUse()
	ho, got := rg.connectVia(t, 0, dead, 0, time.Second)
	if !got {
		t.Fatal("denied connect never answered")
	}
	if ho.Err != stacks.ErrAdmissionDenied {
		t.Fatalf("third connect err = %v, want ErrAdmissionDenied", ho.Err)
	}
	if rg.fed.AdmissionDenied() != 1 {
		t.Fatalf("denied = %d, want 1", rg.fed.AdmissionDenied())
	}
	// A denied setup has no side effects: no port, no pcb, no slot.
	if rg.fed.PortsInUse() != portsBefore {
		t.Fatalf("denied connect allocated a port: %d -> %d", portsBefore, rg.fed.PortsInUse())
	}
	if got := rg.fed.Outstanding(rg.apps[1]); got != 2 {
		t.Fatalf("outstanding after denial = %d, want 2", got)
	}
	// Let the stalled handshakes give up (12 SYN backoffs capped at 64 s
	// each — just over ten virtual minutes); their slots must come back.
	rg.s.Run(11 * time.Minute)
	if got := rg.fed.Outstanding(rg.apps[1]); got != 0 {
		t.Fatalf("outstanding after aborts = %d, want 0 (admission slots leaked)", got)
	}
}

// A crashed shard's incarnation is rebuilt from the module on restart, and
// only with the endpoints it statically owns: the other shards' live
// connections stay where they are (dropForeign removes nothing of theirs),
// and listeners come back via replication from a surviving sibling.
func TestFederationShardRestartRebuilds(t *testing.T) {
	rg := newFedRig(t, 2, 0)
	rg.listenOn0(t, 80)
	// One connection owned by each shard.
	for shard := 0; shard < 2; shard++ {
		if ho, got := rg.connectVia(t, shard, tcp.Endpoint{IP: rg.ips[0], Port: 80}, 0, time.Minute); !got || ho.Err != nil {
			t.Fatalf("shard %d connect failed: %v", shard, ho.Err)
		}
	}
	// Replicated listener on every shard (the library's fed Listen
	// broadcasts; here we do it by hand).
	for shard := 0; shard < 2; shard++ {
		done := false
		sh := shard
		rg.apps[1].Spawn("listen", func(th *kern.Thread) {
			rg.fed.Shard(sh).Svc.Call(th, kern.Msg{Op: "listen",
				Body: ListenReq{Port: 7070, AcceptPort: kern.NewPort(rg.fed.Shard(sh).Host(), "a"), Owner: rg.apps[1]}})
			done = true
		})
		rg.s.RunUntil(time.Second, func() bool { return done })
	}

	rg.fed.CrashShard(1)
	if rg.fed.Live(1) {
		t.Fatal("shard 1 still live after crash")
	}
	rg.s.Run(50 * time.Millisecond)
	rg.fed.RestartShard(1)
	rg.s.Run(50 * time.Millisecond)

	sh1 := rg.fed.Shard(1)
	if sh1.Epoch() != 2 {
		t.Fatalf("restarted shard epoch = %d, want 2", sh1.Epoch())
	}
	if sh1.RebuiltEndpoints() != 1 {
		t.Fatalf("restarted shard rebuilt %d endpoints, want exactly its own 1", sh1.RebuiltEndpoints())
	}
	if sh1.TransferredConns() != 1 {
		t.Fatalf("restarted shard holds %d transferred conns, want 1", sh1.TransferredConns())
	}
	// Shard 0's connection was untouched by the sweep.
	if rg.fed.Shard(0).TransferredConns() != 1 {
		t.Fatalf("surviving shard lost its connection: %d", rg.fed.Shard(0).TransferredConns())
	}
	// The replicated listener came back from the surviving sibling.
	if sh1.ListenerCount() != 1 {
		t.Fatalf("restarted shard has %d listeners, want 1 (replicated from sibling)", sh1.ListenerCount())
	}
}

// Frames for a dead shard's tuples fail over to the successor, and the
// successor must not answer tuples it is not authoritative for with RST —
// a reset would kill a live connection that is merely mid-migration.
func TestFederationDeadShardStrayDropsNotRST(t *testing.T) {
	rg := newFedRig(t, 2, 0)
	rg.listenOn0(t, 80)
	ho, got := rg.connectVia(t, 1, tcp.Endpoint{IP: rg.ips[0], Port: 80}, 0, time.Minute)
	if !got || ho.Err != nil {
		t.Fatal("setup failed")
	}
	rg.fed.CrashShard(1)
	rg.s.Run(10 * time.Millisecond)

	// The peer retransmits into the dead shard's tuple. The frame steers to
	// the successor (shard 0), which does not own it: it must drop, not RST.
	tx0 := rg.r0.Netif().Mod.Device().Stats().TxFrames
	sent := false
	rg.r0.Host().NewDomain("k", true).Spawn("tx", func(th *kern.Thread) {
		hdr := tcp.Header{SrcPort: 80, DstPort: ho.Snap.Local.Port,
			Seq: ho.Snap.RcvNxt, Ack: ho.Snap.SndNxt, Flags: tcp.FlagACK, Window: 100}
		b := pktFromBytes(rg.r0.Netif().Headroom()+tcp.HeaderLen, nil)
		hdr.Encode(b, rg.ips[0], rg.ips[1])
		rg.r0.Netif().WrapIP(b, ipv4.ProtoTCP, rg.ips[1])
		rg.r0.Netif().Resolve(th, b, rg.ips[1], 0, rg.r0.Netif().Mod.SendKernel)
		sent = true
	})
	rg.s.RunUntil(time.Second, func() bool { return sent })
	rg.s.Run(100 * time.Millisecond)
	rx0 := rg.r0.Netif().Mod.Device().Stats().RxFrames
	_ = tx0
	// Host 0 received no RST: its rx counter grew only by its own ARP
	// traffic (none expected — addresses already resolved). Allow zero.
	if rg.r0.Netif().Mod.Device().Stats().RxFrames != rx0 {
		t.Fatal("successor answered a non-authoritative stray")
	}
}

// Regression (stale-state bug #1): the dedup cache must never evict an
// in-flight entry. Pre-fix, FIFO eviction past dedupCap dropped the oldest
// entry unconditionally; a retry of a still-running connect then
// re-executed it — a second ephemeral port and a second handshake for one
// logical open. The flood here completes >cap requests while one connect
// is stalled in flight, then retries the connect's ID.
func TestDedupNeverEvictsInFlight(t *testing.T) {
	rg := newRig(false)
	// A connect to a host that answers no ARP: in flight for minutes.
	inFlightID := uint64(500)
	started := false
	rg.apps[1].Spawn("stall", func(th *kern.Thread) {
		started = true
		rg.r1.Svc.Call(th, kern.Msg{Op: "connect", ID: inFlightID,
			Body: ConnectReq{Remote: tcp.Endpoint{IP: ipv4.Addr{10, 0, 0, 9}, Port: 80}}})
	})
	rg.s.RunUntil(time.Second, func() bool { return started })
	rg.s.Run(10 * time.Millisecond)
	base := rg.r1.PortsInUse()
	if rg.r1.OwnedConns() != 1 {
		t.Fatalf("stalled connect not in flight: owned=%d", rg.r1.OwnedConns())
	}

	// Flood the cache with dedupCap+50 completed requests (idempotent
	// unlistens of a port nobody holds).
	flooded := false
	rg.apps[1].Spawn("flood", func(th *kern.Thread) {
		for i := 0; i < dedupCap+50; i++ {
			rg.r1.Svc.Call(th, kern.Msg{Op: "unlisten", ID: uint64(10000 + i),
				Body: UnlistenReq{Port: 9999}})
		}
		flooded = true
	})
	rg.s.RunUntil(time.Minute, func() bool { return flooded })

	// Retry the in-flight connect (a client whose reply timed out). The
	// entry must still be cached: the retry retargets the eventual handoff
	// instead of running a second handshake.
	hits := rg.r1.DedupHits()
	retried := false
	rg.apps[1].Spawn("retry", func(th *kern.Thread) {
		retried = true
		rg.r1.Svc.Call(th, kern.Msg{Op: "connect", ID: inFlightID,
			Body: ConnectReq{Remote: tcp.Endpoint{IP: ipv4.Addr{10, 0, 0, 9}, Port: 80}}})
	})
	rg.s.RunUntil(time.Second, func() bool { return retried })
	rg.s.Run(10 * time.Millisecond)
	if rg.r1.DedupHits() != hits+1 {
		t.Fatalf("retry of in-flight connect was not a dedup hit (hits %d -> %d): entry was evicted",
			hits, rg.r1.DedupHits())
	}
	if rg.r1.OwnedConns() != 1 {
		t.Fatalf("retry re-executed the connect: %d handshake pcbs, want 1", rg.r1.OwnedConns())
	}
	if rg.r1.PortsInUse() != base {
		t.Fatalf("retry allocated a second port: %d -> %d", base, rg.r1.PortsInUse())
	}
}

// Regression (stale-state bug #2): every error branch of the sharded
// connect path must unwind completely — admission slot, ephemeral port,
// lease/capability state. Exhausting a shard's (small) port slice and
// failing BQI reservations must both leave the module's capability and
// pinned-region audits at baseline and release their admission slots.
func TestFederationFailedSetupLeaksNothing(t *testing.T) {
	rg := newFedRig(t, 2, 0)
	rg.listenOn0(t, 80)
	// Squeeze shard 0 to a 2-port slice (shard 1 gets the rest).
	rg.fed.SetEphemeralRange(2000, 2004)
	mod := rg.fed.Netif().Mod
	capsBase := mod.LiveCapabilities(nil)
	pinsBase := mod.PinnedRegions()

	// Two setups hold shard 0's whole slice (stalled against a dead peer);
	// the third must fail with port exhaustion, leaving no state behind.
	dead := tcp.Endpoint{IP: ipv4.Addr{10, 0, 0, 9}, Port: 80}
	for i := 0; i < 2; i++ {
		rg.apps[1].Spawn("stall", func(th *kern.Thread) {
			rg.fed.Shard(0).Svc.Call(th, kern.Msg{Op: "connect",
				Body: ConnectReq{Remote: dead, Owner: rg.apps[1]}})
		})
	}
	rg.s.Run(10 * time.Millisecond)
	ho, got := rg.connectVia(t, 0, tcp.Endpoint{IP: rg.ips[0], Port: 80}, 0, time.Second)
	if !got || ho.Err == nil {
		t.Fatalf("connect on exhausted slice: got=%v err=%v, want port exhaustion", got, ho.Err)
	}
	if out := rg.fed.Outstanding(rg.apps[1]); out != 2 {
		t.Fatalf("failed setup leaked an admission slot: outstanding=%d, want 2", out)
	}

	// Induced channel-creation failure on the healthy shard: same audit.
	mod.FailSetup = func(op string) error {
		if op == "create" {
			return errors.New("induced: channel setup failed")
		}
		return nil
	}
	ho, got = rg.connectVia(t, 1, tcp.Endpoint{IP: rg.ips[0], Port: 80}, 0, time.Minute)
	if !got || ho.Err == nil {
		t.Fatal("induced channel failure did not surface")
	}
	mod.FailSetup = nil
	rg.s.Run(100 * time.Millisecond)
	if out := rg.fed.Outstanding(rg.apps[1]); out != 2 {
		t.Fatalf("aborted setup leaked an admission slot: outstanding=%d, want 2", out)
	}
	if sh1 := rg.fed.Shard(1); sh1.PortsInUse() != 0 || sh1.OwnedConns() != 0 {
		t.Fatalf("aborted setup leaked on shard 1: ports=%d owned=%d", sh1.PortsInUse(), sh1.OwnedConns())
	}
	// Let the stalled pair abort too (SYN retransmissions exhaust after
	// just over ten virtual minutes), then audit the module: no capability
	// or pinned region outlives its failed setup.
	rg.s.Run(11 * time.Minute)
	if out := rg.fed.Outstanding(rg.apps[1]); out != 0 {
		t.Fatalf("admission slots leaked after aborts: %d", out)
	}
	if rg.fed.PortsInUse() != 0 {
		t.Fatalf("ports leaked after aborts: %d", rg.fed.PortsInUse())
	}
	if mod.LiveCapabilities(nil) != capsBase {
		t.Fatalf("capabilities leaked: %d -> %d", capsBase, mod.LiveCapabilities(nil))
	}
	if mod.PinnedRegions() != pinsBase {
		t.Fatalf("pinned regions leaked: %d -> %d", pinsBase, mod.PinnedRegions())
	}
}
