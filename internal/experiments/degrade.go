package experiments

// End-to-end degradation under adversarial link conditions. The paper's
// tables measure the stacks over a clean wire; this experiment drives the
// same user-level stack through the time-scripted link-condition layer
// (wire.LinkConditions) and tabulates how gracefully throughput degrades —
// and where the stack gives up — as a function of loss-burst length, link
// flap period, and bufferbloat queue depth. The interesting outputs are
// goodput, retransmission counts, R1 advisories (RFC 1122 "delivery looks
// degraded"), and R2 give-ups (connection abandoned with a user-visible
// timeout), which together show the hardened failure behaviour: sessions
// either make progress or fail crisply, never hang.

import (
	"errors"
	"fmt"
	"time"

	"ulp"
	"ulp/internal/kern"
	"ulp/internal/stacks"
	"ulp/internal/wire"
)

// DegradeConfig parameterizes the degradation experiment.
type DegradeConfig struct {
	// Bytes is the payload per transfer (default 256 KiB).
	Bytes int
	// Seed drives the link-condition RNG (default 1).
	Seed uint64
	// R2 is the retransmission give-up threshold applied to every
	// connection (default 8: permanent outages fail in a few virtual
	// minutes instead of tens, and before the keepalive horizon, so the
	// sender's R2 give-up — not the idle probe — is what fires).
	R2 int
}

// DegradeRow is one (profile, knob) measurement.
type DegradeRow struct {
	Profile string // "bursty-loss", "flap", "partition", "bufferbloat"
	Knob    string // human-readable knob setting, e.g. "burst≈10 frames"

	Completed bool          // transfer finished intact
	GaveUp    bool          // a side abandoned the connection (R2/keepalive)
	Goodput   float64       // delivered payload Mb/s over virtual time
	Virtual   time.Duration // virtual time to completion or failure

	Rexmits     int // timeout retransmissions (sender)
	FastRexmits int // fast retransmissions (sender)
	R1          int // R1 advisories (sender)
	GiveUps     int // R2 give-ups, both sides

	CondDrops  int // frames dropped by the condition layer (all causes)
	QueueDrops int // of which bufferbloat tail drops

	Err error // unexpected failure (budget exhausted, corrupt transfer)
}

// Degrade sweeps three degradation profiles over a two-host user-level
// world: Gilbert–Elliott bursty loss (mean burst length sweep), link-flap
// schedules (half-period sweep, plus a permanent partition that must end in
// a clean give-up), and a rate-limited bufferbloat queue (depth sweep).
func Degrade(cfg DegradeConfig) []DegradeRow {
	if cfg.Bytes == 0 {
		cfg.Bytes = 256 << 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.R2 == 0 {
		cfg.R2 = 8
	}
	var rows []DegradeRow

	// Bursty loss: ~3% of frames enter a loss burst; the knob is the mean
	// burst length (1/PBadGood), with every frame inside a burst lost.
	for _, pbg := range []float64{0.5, 0.2, 0.1, 0.05} {
		lc := &wire.LinkConditions{
			Seed:  cfg.Seed,
			Burst: &wire.GilbertElliott{PGoodBad: 0.03, PBadGood: pbg, LossBad: 1},
		}
		rows = append(rows, degradeRow(cfg, "bursty-loss",
			fmt.Sprintf("burst~%.0f frames", 1/pbg), lc))
	}

	// Link flaps: the wire goes dark for a half-period, comes back for a
	// half-period, 20 cycles starting at 200 ms. Short flaps cost little;
	// long flaps push the sender deep into backoff.
	for _, hp := range []time.Duration{100 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second} {
		lc := &wire.LinkConditions{Seed: cfg.Seed}
		start := 200 * time.Millisecond
		for k := 0; k < 20; k++ {
			from := start + time.Duration(2*k)*hp
			lc.Flaps = append(lc.Flaps, wire.Window{From: from, Until: from + hp})
		}
		rows = append(rows, degradeRow(cfg, "flap",
			fmt.Sprintf("half-period %v", hp), lc))
	}

	// Permanent partition mid-transfer: no heal, so the only acceptable
	// outcome is a crisp R2 give-up surfacing a timeout to the writer.
	lc := &wire.LinkConditions{
		Seed:       cfg.Seed,
		Partitions: []wire.PartitionWindow{{Window: wire.Window{From: 200 * time.Millisecond}}},
	}
	rows = append(rows, degradeRow(cfg, "partition", "permanent @200ms", lc))

	// Bufferbloat: a 10 Mb/s bottleneck with a bounded tail-drop queue.
	// Shallow queues drop (forcing retransmissions); deep queues inflate
	// the RTT instead.
	for _, depth := range []int{4, 16, 64, 256} {
		lc := &wire.LinkConditions{
			Seed:  cfg.Seed,
			Queue: &wire.QueueModel{RateBitsPerSec: 10_000_000, MaxFrames: depth},
		}
		rows = append(rows, degradeRow(cfg, "bufferbloat",
			fmt.Sprintf("queue %d frames", depth), lc))
	}
	return rows
}

// degradeRow runs one transfer through one condition plan.
func degradeRow(cfg DegradeConfig, profile, knob string, lc *wire.LinkConditions) DegradeRow {
	w := newWorldWith(OrgOurs, NetAN1, nil, func(c *ulp.Config) { c.Conditions = lc })
	row := DegradeRow{Profile: profile, Knob: knob}

	// Keepalive lets the silent (server) side notice a dead peer too; R2
	// bounds how long the sender retries into an outage (and, at the
	// default thresholds, fires before the keepalive horizon). Large
	// socket buffers keep the window — not the BSD 8 KB default — as the
	// flight-size limit, so the bufferbloat queue actually fills.
	opts := stacks.Options{RexmtR2: cfg.R2, KeepAliveTicks: 240, SndBuf: 64 << 10, RcvBuf: 64 << 10}

	var got int
	var srvConn, cliConn stacks.Conn
	var srvErr, cliErr error
	srvDone, cliDone := false, false

	srv := w.app(0, "server")
	srv.Go("srv", func(t *kern.Thread) {
		defer func() { srvDone = true }()
		l, err := srv.Stack.Listen(t, 9000, opts)
		if err != nil {
			srvErr = err
			return
		}
		c, err := l.Accept(t)
		if err != nil {
			srvErr = err
			return
		}
		srvConn = c
		buf := make([]byte, 16384)
		for got < cfg.Bytes {
			n, err := c.Read(t, buf)
			got += n
			if err != nil {
				srvErr = err
				return
			}
			if n == 0 {
				return // premature EOF
			}
		}
		c.Close(t)
	})

	cli := w.app(1, "client")
	cli.GoAfter(time.Millisecond, "cli", func(t *kern.Thread) {
		defer func() { cliDone = true }()
		c, err := cli.Stack.Connect(t, w.endpoint(0, 9000), opts)
		if err != nil {
			cliErr = err
			return
		}
		cliConn = c
		chunk := make([]byte, 32768)
		for i := range chunk {
			chunk[i] = byte(i)
		}
		for sent := 0; sent < cfg.Bytes; {
			n := len(chunk)
			if cfg.Bytes-sent < n {
				n = cfg.Bytes - sent
			}
			if _, err := c.Write(t, chunk[:n]); err != nil {
				cliErr = err
				return
			}
			sent += n
		}
		if err := c.Close(t); err != nil {
			cliErr = err
		}
	})

	w.runUntil(20*time.Minute, func() bool {
		if got >= cfg.Bytes {
			return true
		}
		// A give-up surfaces as an error on the blocked writer (and the
		// reader, via keepalive); either ends the row.
		return cliDone && (srvDone || cliErr != nil)
	})
	row.Virtual = w.now()
	row.Completed = got >= cfg.Bytes && cliErr == nil
	row.Goodput = Mbps(int64(got), row.Virtual)

	if cliConn != nil {
		cs := cliConn.Stats()
		row.Rexmits, row.FastRexmits = cs.Rexmits, cs.FastRexmits
		row.R1, row.GiveUps = cs.R1Advisories, cs.RexmtGiveUps
	}
	if srvConn != nil {
		row.GiveUps += srvConn.Stats().RexmtGiveUps
	}
	row.GaveUp = row.GiveUps > 0 ||
		errorsIsTimeout(cliErr) || errorsIsTimeout(srvErr)

	st := w.w.Seg.ConditionStats()
	row.CondDrops = st.BurstDrops + st.PathDrops + st.PartitionDrops + st.FlapDrops + st.QueueDrops
	row.QueueDrops = st.QueueDrops

	if !row.Completed && !row.GaveUp {
		row.Err = fmt.Errorf("degrade(%s/%s): neither completed nor gave up (got %d/%d, cli=%v srv=%v)",
			profile, knob, got, cfg.Bytes, cliErr, srvErr)
	}
	return row
}

func errorsIsTimeout(err error) bool {
	return err != nil && errors.Is(err, stacks.ErrTimeout)
}
