package experiments

// Connection churn at many-host scale. The paper measures one connection
// setup (Table 4); this experiment measures thousands per second, which is
// where the linear-scan demultiplexing, the per-tick timer loops, and the
// shared wire stop being noise: every SYN crosses the fabric, every live
// or TIME_WAIT pcb is a timer client, and every established channel is a
// demux binding. The fast-path configuration (learning switch + steering
// tables + timing wheels + wide ephemeral range) keeps per-connection cost
// flat as the world scales; the classic configuration pays O(connections)
// per tick and per frame.

import (
	"errors"
	"sort"
	"time"

	"ulp"
	"ulp/internal/costs"
	"ulp/internal/kern"
	"ulp/internal/stacks"
	"ulp/internal/wire"
)

// ChurnConfig parameterizes the churn experiment.
type ChurnConfig struct {
	// Conns is the total number of connection setups (default 1000).
	Conns int
	// Clients is the number of client hosts; the server is host 0
	// (default 4).
	Clients int
	// Workers is the number of concurrent connect loops per client host
	// (default 8).
	Workers int
	// FastPath enables the many-host fast path: switched fabric, timing
	// wheels, and a wide ephemeral range. Off = the classic two-host
	// configuration scaled up as-is.
	FastPath bool
	// Shards federates each host's registry into this many shards, each
	// pinned to its own CPU and owning a static slice of the port space
	// (0 or 1 = the single-registry control plane). Connection setup is
	// registry-CPU bound, so this is the knob that lifts the setup rate.
	Shards int
	// ZeroCopyRx delivers received frames by reference (refcounted pool
	// buffers plus ring descriptors) instead of modeling the per-byte
	// kernel→region copy.
	ZeroCopyRx bool
	// Net selects the network (default NetAN1; the switch applies only
	// to non-shared networks).
	Net NetSel
	// Model overrides the cost model.
	Model *costs.Model
}

// ChurnResult reports setup-latency percentiles (virtual time) and the
// sustained churn rate.
type ChurnResult struct {
	Conns, Clients int
	P50, P99, P999 time.Duration // connection-setup latency percentiles
	Virtual        time.Duration // virtual time for all setups to complete
	Wall           time.Duration // wall-clock time the simulation took
	SetupsPerVSec  float64       // sustained churn rate in virtual time
	EventsPerWSec  float64       // simulator throughput (events / wall-second)
	Err            error
}

// Churn runs the experiment: Workers×Clients concurrent loops, each
// connecting to the server, reading until the server's immediate close
// arrives (EOF), and closing. The server closes first, so the thousands of
// TIME_WAIT incarnations accumulate server-side — exactly the timer
// population the wheel backend exists for — while client ephemeral ports
// recycle promptly.
func Churn(cfg ChurnConfig) ChurnResult {
	if cfg.Conns == 0 {
		cfg.Conns = 1000
	}
	if cfg.Clients == 0 {
		cfg.Clients = 4
	}
	if cfg.Workers == 0 {
		cfg.Workers = 8
	}
	ucfg := ulp.Config{
		Org:   ulp.OrgUserLib,
		Hosts: cfg.Clients + 1,
		Costs: cfg.Model,
	}
	switch cfg.Net {
	case NetEthernet:
		ucfg.Net = ulp.Ethernet
	case NetAN1Jumbo:
		ucfg.Net = ulp.AN1Jumbo
	default:
		ucfg.Net = ulp.AN1
	}
	if cfg.FastPath {
		ucfg.Switch = &wire.SwitchConfig{Latency: time.Microsecond}
		ucfg.TimerWheel = true
		ucfg.EphemeralLo, ucfg.EphemeralHi = 1024, 60000
	}
	if cfg.Shards >= 2 {
		ucfg.RegistryShards = cfg.Shards
	}
	ucfg.ZeroCopyRx = cfg.ZeroCopyRx
	w := ulp.NewWorld(ucfg)

	res := ChurnResult{Conns: cfg.Conns, Clients: cfg.Clients}
	srv := w.Node(0).App("server")
	accepted := 0
	srv.Go("srv", func(t *kern.Thread) {
		l, err := srv.Stack.Listen(t, 80, stacks.Options{Backlog: cfg.Clients * cfg.Workers})
		if err != nil {
			res.Err = err
			return
		}
		for {
			c, err := l.Accept(t)
			if err != nil {
				return
			}
			accepted++
			// Close immediately: the server is the active closer, keeping
			// TIME_WAIT (and its 2MSL timers) on the server host.
			c.Close(t)
		}
	})

	latencies := make([]time.Duration, 0, cfg.Conns)
	done := 0
	failed := 0
	// Deal the total count across workers; earlier workers take the
	// remainder.
	per := cfg.Conns / (cfg.Clients * cfg.Workers)
	extra := cfg.Conns % (cfg.Clients * cfg.Workers)
	for ci := 1; ci <= cfg.Clients; ci++ {
		cli := w.Node(ci).App("client")
		for wi := 0; wi < cfg.Workers; wi++ {
			n := per
			if (ci-1)*cfg.Workers+wi < extra {
				n++
			}
			quota := n
			cli.GoAfter(time.Duration(wi)*50*time.Microsecond, "worker", func(t *kern.Thread) {
				buf := make([]byte, 64)
				for k := 0; k < quota; k++ {
					start := w.Now()
					c, err := cli.Stack.Connect(t, w.Endpoint(0, 80), stacks.Options{})
					if err != nil {
						failed++
						done++
						continue
					}
					latencies = append(latencies, w.Now()-start)
					// Wait for the server's FIN, then close (passive side:
					// no client TIME_WAIT, the port recycles immediately).
					for {
						n, err := c.Read(t, buf)
						if err != nil || n == 0 {
							break
						}
					}
					c.Close(t)
					done++
				}
			})
		}
	}

	wallStart := time.Now()
	w.RunUntil(time.Hour, func() bool { return done >= cfg.Conns })
	res.Wall = time.Since(wallStart)
	res.Virtual = w.Now()
	if res.Err == nil && done < cfg.Conns {
		res.Err = errors.New("churn: virtual-time budget exhausted")
		return res
	}
	if res.Err == nil && failed > 0 {
		res.Err = errors.New("churn: connection setups failed")
		return res
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	res.P50, res.P99, res.P999 = pct(0.50), pct(0.99), pct(0.999)
	if res.Virtual > 0 {
		res.SetupsPerVSec = float64(len(latencies)) / res.Virtual.Seconds()
	}
	fired, _, _ := w.Sim.Counters()
	if res.Wall > 0 {
		res.EventsPerWSec = float64(fired) / res.Wall.Seconds()
	}
	return res
}
