package experiments

import (
	"fmt"
	"time"

	"ulp/internal/costs"
	"ulp/internal/filter"
	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/stacks"
	"ulp/internal/udp"
)

// ---------------------------------------------------------------------------
// Notification batching (paper: "network packet batching is very effective")
// ---------------------------------------------------------------------------

// BatchingResult compares bulk throughput with batched vs per-packet
// semaphore notifications.
type BatchingResult struct {
	BatchedMbps, UnbatchedMbps float64
	Err                        error
}

// AblationBatching measures the value of batching packets per notification
// on the user-level library's Ethernet receive path.
func AblationBatching(model *costs.Model) BatchingResult {
	run := func(disable bool) (float64, error) {
		w := newWorld(OrgOurs, NetEthernet, model)
		w.node(0).Mod.DisableBatching = disable
		w.node(1).Mod.DisableBatching = disable
		return bulkSend(w, 300<<10, 4096, stacks.Options{NoDelay: true}, 10*time.Minute)
	}
	batched, err1 := run(false)
	unbatched, err2 := run(true)
	err := err1
	if err == nil {
		err = err2
	}
	return BatchingResult{BatchedMbps: batched, UnbatchedMbps: unbatched, Err: err}
}

// ---------------------------------------------------------------------------
// AN1 64 KB frames (paper: "the AN1 driver does not currently use maximum
// sized AN1 packets which can be as large as 64K bytes")
// ---------------------------------------------------------------------------

// MTUResult compares the encapsulation-limited AN1 with full-size frames.
type MTUResult struct {
	Encap1500Mbps, Jumbo64KMbps float64
	Err                         error
}

// AblationAN1MTU lifts the 1500-byte encapsulation restriction.
func AblationAN1MTU(model *costs.Model) MTUResult {
	run := func(net NetSel) (float64, error) {
		w := newWorld(OrgOurs, net, model)
		// Large user packets and windows to exercise the big frames.
		opts := stacks.Options{SndBuf: 65535, RcvBuf: 65535}
		return bulkSend(w, 2<<20, 16384, opts, 10*time.Minute)
	}
	encap, err1 := run(NetAN1)
	jumbo, err2 := run(NetAN1Jumbo)
	err := err1
	if err == nil {
		err = err2
	}
	return MTUResult{Encap1500Mbps: encap, Jumbo64KMbps: jumbo, Err: err}
}

// ---------------------------------------------------------------------------
// Filter architecture (paper §2.2: CSPF interpretation "is not likely to
// scale with CPU speeds"; BPF "provides higher performance")
// ---------------------------------------------------------------------------

// FilterResult compares demultiplexing architectures on the standard
// TCP/IP endpoint predicate.
type FilterResult struct {
	// Instructions interpreted per matching packet.
	CSPFInstrs, BPFInstrs int
	// Modeled per-packet interpretation time: the stack machine touches
	// memory per operation (the paper's complaint), the register machine
	// keeps its state in registers.
	CSPFTime, BPFTime, NativeTime time.Duration
}

// Per-instruction interpretation costs on the 25 MHz R3000: the CSPF
// interpreter's stack traffic costs roughly 2.5 µs per operation; BPF's
// register loop about 1.2 µs.
const (
	cspfPerInstr = 2500 * time.Nanosecond
	bpfPerInstr  = 1200 * time.Nanosecond
)

// AblationFilter measures instruction counts of both interpreters against
// the synthesized native predicate the network I/O module actually uses.
func AblationFilter(model *costs.Model) FilterResult {
	m := model
	if m == nil {
		d := costs.Default()
		m = &d
	}
	spec := filter.Spec{
		LinkHdrLen: 14, Proto: ipv4.ProtoTCP,
		LocalIP: ipv4.Addr{10, 0, 0, 2}, LocalPort: 80,
		RemoteIP: ipv4.Addr{10, 0, 0, 1}, RemotePort: 1025,
	}
	frame := demoFrame(spec)
	_, nc := spec.CompileCSPF().Run(frame)
	_, nb := spec.CompileBPF().Run(frame)
	return FilterResult{
		CSPFInstrs: nc,
		BPFInstrs:  nb,
		CSPFTime:   time.Duration(nc) * cspfPerInstr,
		BPFTime:    time.Duration(nb) * bpfPerInstr,
		NativeTime: m.FilterDemux,
	}
}

// demoFrame builds a frame matching the spec (IHL=5).
func demoFrame(spec filter.Spec) []byte {
	f := make([]byte, spec.LinkHdrLen+20+8)
	f[spec.LinkHdrLen-2] = 0x08
	ip := f[spec.LinkHdrLen:]
	ip[0] = 0x45
	ip[9] = spec.Proto
	copy(ip[12:16], spec.RemoteIP[:])
	copy(ip[16:20], spec.LocalIP[:])
	ip[20] = byte(spec.RemotePort >> 8)
	ip[21] = byte(spec.RemotePort)
	ip[22] = byte(spec.LocalPort >> 8)
	ip[23] = byte(spec.LocalPort)
	return f
}

// ---------------------------------------------------------------------------
// Application-specific protocol variants (paper §5 "canned options")
// ---------------------------------------------------------------------------

// AppSpecificResult compares a two-write request/response workload under
// the stock protocol and a NoDelay variant.
type AppSpecificResult struct {
	StockPerOp, NoDelayPerOp time.Duration
	Err                      error
}

// AblationAppSpecific runs the header+body request pattern that suffers
// under Nagle.
func AblationAppSpecific(model *costs.Model) AppSpecificResult {
	run := func(opts stacks.Options) (time.Duration, error) {
		w := newWorld(OrgOurs, NetEthernet, model)
		srv := w.app(0, "server")
		cli := w.app(1, "client")
		var perOp time.Duration
		done := false
		var failure error
		srv.Go("srv", func(t *kern.Thread) {
			l, err := srv.Stack.Listen(t, 80, opts)
			if err != nil {
				failure = err
				done = true
				return
			}
			c, err := l.Accept(t)
			if err != nil {
				failure = err
				done = true
				return
			}
			buf := make([]byte, 64)
			for {
				got := 0
				for got < 8 {
					n, _ := c.Read(t, buf[got:8])
					if n == 0 {
						return
					}
					got += n
				}
				c.Write(t, []byte("response"))
			}
		})
		cli.GoAfter(time.Millisecond, "cli", func(t *kern.Thread) {
			c, err := cli.Stack.Connect(t, w.endpoint(0, 80), opts)
			if err != nil {
				failure = err
				done = true
				return
			}
			const ops = 10
			buf := make([]byte, 64)
			start := time.Duration(t.Now())
			for i := 0; i < ops; i++ {
				c.Write(t, []byte("hdr:"))
				c.Write(t, []byte("body"))
				got := 0
				for got < 8 {
					n, _ := c.Read(t, buf[got:8])
					got += n
				}
			}
			perOp = (time.Duration(t.Now()) - start) / ops
			done = true
		})
		w.runUntil(10*time.Minute, func() bool { return done })
		return perOp, failure
	}
	stock, err1 := run(stacks.Options{})
	nodelay, err2 := run(stacks.Options{NoDelay: true})
	err := err1
	if err == nil {
		err = err2
	}
	return AppSpecificResult{StockPerOp: stock, NoDelayPerOp: nodelay, Err: err}
}

// ---------------------------------------------------------------------------
// Trusted-link checksum elision (another §5-style specialization)
// ---------------------------------------------------------------------------

// ChecksumResult compares bulk throughput with and without charging
// checksum time (as a link with hardware checksums would permit; the paper
// speculates "if hardware checksum alone is sufficient ... we expect the
// BQI scheme to have a significant performance advantage").
type ChecksumResult struct {
	WithMbps, WithoutMbps float64
	Err                   error
}

// AblationChecksum measures checksum cost on the AN1 with full-size 64 KB
// frames, where the software checksum is a large fraction of per-segment
// processing (~460 µs of a 25 MHz CPU per segment).
func AblationChecksum(model *costs.Model) ChecksumResult {
	run := func(off bool) (float64, error) {
		w := newWorld(OrgOurs, NetAN1Jumbo, model)
		opts := stacks.Options{SndBuf: 65535, RcvBuf: 65535, NoChecksum: off}
		return bulkSend(w, 4<<20, 16384, opts, 10*time.Minute)
	}
	with, err1 := run(false)
	without, err2 := run(true)
	err := err1
	if err == nil {
		err = err2
	}
	return ChecksumResult{WithMbps: with, WithoutMbps: without, Err: err}
}

// ---------------------------------------------------------------------------
// Registry bypass for connectionless traffic (paper §5: "after the address
// binding phase, the dedicated server can be bypassed, reducing overall
// latency which is the important performance factor in such protocols")
// ---------------------------------------------------------------------------

// RPCResult compares request-response latency with every datagram relayed
// through the registry server against the bypassed direct path.
type RPCResult struct {
	ViaServerPerOp, BypassedPerOp time.Duration
	Err                           error
}

// AblationRPC runs a UDP echo workload over the user-level library both
// ways.
func AblationRPC(model *costs.Model) RPCResult {
	run := func(bypass bool) (time.Duration, error) {
		w := newWorld(OrgOurs, NetEthernet, model)
		srv := w.app(0, "server")
		cli := w.app(1, "client")
		var perOp time.Duration
		done := false
		var failure error
		srv.Go("srv", func(t *kern.Thread) {
			sock, err := srv.Lib.BindUDP(t, 111)
			if err != nil {
				failure = err
				done = true
				return
			}
			for {
				req := sock.Recv(t)
				var err error
				if bypass {
					err = sock.SendTo(t, req.From, req.Payload)
				} else {
					err = sock.SendVia(t, req.From, req.Payload)
				}
				if err != nil {
					failure = err
					done = true
					return
				}
			}
		})
		cli.GoAfter(time.Millisecond, "cli", func(t *kern.Thread) {
			sock, err := cli.Lib.BindUDP(t, 1111)
			if err != nil {
				failure = err
				done = true
				return
			}
			dst := udpEndpoint(w, 0, 111)
			// Address-binding phase, then the timed exchanges.
			if err := sock.Resolve(t, dst.IP); err != nil {
				failure = err
				done = true
				return
			}
			const ops = 20
			start := time.Duration(t.Now())
			for i := 0; i < ops; i++ {
				var err error
				if bypass {
					err = sock.SendTo(t, dst, []byte("request-payload!"))
				} else {
					err = sock.SendVia(t, dst, []byte("request-payload!"))
				}
				if err != nil {
					failure = err
					done = true
					return
				}
				sock.Recv(t)
			}
			perOp = (time.Duration(t.Now()) - start) / ops
			done = true
		})
		w.runUntil(5*time.Minute, func() bool { return done })
		if failure != nil {
			return 0, failure
		}
		if perOp == 0 {
			return 0, errIncomplete
		}
		return perOp, nil
	}
	via, err1 := run(false)
	byp, err2 := run(true)
	err := err1
	if err == nil {
		err = err2
	}
	return RPCResult{ViaServerPerOp: via, BypassedPerOp: byp, Err: err}
}

var errIncomplete = fmt.Errorf("experiments: workload incomplete")

// udpEndpoint names a UDP endpoint on a node.
func udpEndpoint(w *world, node int, port uint16) udp.Endpoint {
	return udp.Endpoint{IP: w.node(node).IP, Port: port}
}
