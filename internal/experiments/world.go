package experiments

import (
	"os"
	"time"

	"ulp"
	"ulp/internal/costs"
	"ulp/internal/kern"
	"ulp/internal/tcp"
	"ulp/internal/trace"
)

// world adapts the public facade for the experiment drivers.
type world struct {
	w *ulp.World
}

// newWorld builds a two-host world for a system/network pair. A nil model
// uses the calibrated default.
func newWorld(org OrgSel, net NetSel, model *costs.Model) *world {
	return newWorldWith(org, net, model, nil)
}

// newWorldWith is newWorld with a config hook applied before the world is
// built (zero-copy mode, doorbell budgets — anything experiments toggle).
func newWorldWith(org OrgSel, net NetSel, model *costs.Model, mut func(*ulp.Config)) *world {
	cfg := ulp.Config{Costs: model}
	switch org {
	case OrgUltrix:
		cfg.Org = ulp.OrgInKernel
	case OrgMachUX:
		cfg.Org = ulp.OrgSingleServer
	case OrgOurs:
		cfg.Org = ulp.OrgUserLib
	}
	switch net {
	case NetEthernet:
		cfg.Net = ulp.Ethernet
	case NetAN1:
		cfg.Net = ulp.AN1
	case NetAN1Jumbo:
		cfg.Net = ulp.AN1Jumbo
	}
	if mut != nil {
		mut(&cfg)
	}
	w := &world{w: ulp.NewWorld(cfg)}
	if os.Getenv("ULP_TRACE") == "1" {
		// Exercise every emission path during the run (CI diffs traced
		// against untraced tables for bit-identity). The no-op subscriber
		// matters: a bus with no subscribers reports Enabled() == false and
		// the producers skip their hooks entirely.
		w.w.EnableTrace().Subscribe(func(trace.Event) {})
	}
	return w
}

func (w *world) app(node int, name string) *ulp.App { return w.w.Node(node).App(name) }

func (w *world) endpoint(node int, port uint16) tcp.Endpoint { return w.w.Endpoint(node, port) }

func (w *world) runUntil(budget time.Duration, pred func() bool) {
	w.w.RunUntil(budget, pred)
}

func (w *world) run(budget time.Duration) { w.w.Run(budget) }

func (w *world) node(i int) *ulpNode { return w.w.Node(i) }

// ulpNode aliases the facade's node type for the drivers.
type ulpNode = ulp.Node

func (w *world) now() time.Duration { return w.w.Now() }

// spawnKernelThread runs fn in a fresh privileged domain on node i (the
// mechanism micro-benchmarks drive devices directly).
func (w *world) spawnKernelThread(i int, name string, fn func(t *kern.Thread)) {
	w.w.Node(i).Host.NewDomain(name+"-dom", true).Spawn(name, fn)
}
