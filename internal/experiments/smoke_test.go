package experiments

import (
	"testing"
	"time"
)

func TestTable1Smoke(t *testing.T) {
	r, err := Table1(nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("standalone %.2f Mb/s, mechanisms %.2f Mb/s (%.1f%%), %d notifications for %d packets",
		r.StandaloneMbps, r.MechanismMbps, r.Percent, r.Notifications, r.Packets)
	if r.Percent < 50 || r.Percent > 100.5 {
		t.Fatalf("mechanism throughput %.1f%% of standalone, outside plausible range", r.Percent)
	}
	// With the receiver keeping pace with the 10 Mb/s wire there is no
	// queueing, so each packet is individually notified; batching engages
	// under load (see TestAblationBatching).
	if r.Notifications > r.Packets {
		t.Fatalf("more notifications (%d) than packets (%d)", r.Notifications, r.Packets)
	}
}

func TestTable2Smoke(t *testing.T) {
	cfg := Table2Config{TotalBytes: 200 << 10}
	for _, sys := range Systems {
		for _, net := range []NetSel{NetEthernet, NetAN1} {
			if sys.Org == OrgMachUX && net == NetAN1 {
				continue
			}
			for _, up := range []int{512, 4096} {
				c := Table2CellFor(sys.Org, sys.Label, net, up, cfg)
				if c.Err != nil {
					t.Errorf("%s/%v/%d: %v", c.System, c.Net, c.UserPacket, c.Err)
					continue
				}
				t.Logf("%-26s %-12v %5d: %6.2f Mb/s", c.System, c.Net, c.UserPacket, c.Mbps)
			}
		}
	}
}

func TestTable3Smoke(t *testing.T) {
	for _, sys := range Systems {
		c := Table3CellFor(sys.Org, sys.Label, NetEthernet, 1, nil)
		if c.Err != nil {
			t.Errorf("%s: %v", c.System, c.Err)
			continue
		}
		t.Logf("%-26s 1B RTT: %v", c.System, c.RTT)
	}
}

func TestTable4Smoke(t *testing.T) {
	for _, c := range Table4(nil) {
		if c.Err != nil {
			t.Errorf("%s/%v: %v", c.System, c.Net, c.Err)
			continue
		}
		t.Logf("%-26s %-12v setup: %v", c.System, c.Net, c.Setup)
	}
	var sum time.Duration
	for _, r := range Table4Breakdown(nil) {
		t.Logf("breakdown: %-50s %v", r.Component, r.Cost)
		sum += r.Cost
	}
	t.Logf("breakdown sum: %v", sum)
}

func TestTable5Smoke(t *testing.T) {
	r, err := Table5(nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("software demux %v, hardware demux %v", r.SoftwareDemux, r.HardwareDemux)
}

func TestChurnSmoke(t *testing.T) {
	for _, fast := range []bool{false, true} {
		r := Churn(ChurnConfig{Conns: 200, Clients: 2, Workers: 4, FastPath: fast})
		if r.Err != nil {
			t.Fatalf("fast=%v: %v", fast, r.Err)
		}
		t.Logf("fast=%v: %d conns, p50=%v p99=%v p999=%v, %.0f setups/vsec, %v virtual, %v wall",
			fast, r.Conns, r.P50, r.P99, r.P999, r.SetupsPerVSec, r.Virtual, r.Wall)
		if r.P50 <= 0 || r.P999 < r.P50 {
			t.Fatalf("fast=%v: implausible percentiles p50=%v p999=%v", fast, r.P50, r.P999)
		}
	}
}
