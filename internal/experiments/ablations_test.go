package experiments

import "testing"

func TestAblationBatching(t *testing.T) {
	r := AblationBatching(nil)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	t.Logf("batched %.2f Mb/s, per-packet notifications %.2f Mb/s", r.BatchedMbps, r.UnbatchedMbps)
	if r.BatchedMbps < r.UnbatchedMbps {
		t.Fatalf("batching made things worse: %.2f < %.2f", r.BatchedMbps, r.UnbatchedMbps)
	}
}

func TestAblationAN1MTU(t *testing.T) {
	r := AblationAN1MTU(nil)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	t.Logf("1500B encapsulation %.2f Mb/s, 64K frames %.2f Mb/s", r.Encap1500Mbps, r.Jumbo64KMbps)
	if r.Jumbo64KMbps < 1.5*r.Encap1500Mbps {
		t.Fatalf("64K frames should be a large win: %.2f vs %.2f", r.Jumbo64KMbps, r.Encap1500Mbps)
	}
}

func TestAblationFilter(t *testing.T) {
	r := AblationFilter(nil)
	t.Logf("CSPF %d instrs = %v; BPF %d instrs = %v; native %v",
		r.CSPFInstrs, r.CSPFTime, r.BPFInstrs, r.BPFTime, r.NativeTime)
	if r.CSPFTime <= r.BPFTime {
		t.Fatal("CSPF should cost more than BPF")
	}
	if r.BPFTime <= r.NativeTime/2 {
		t.Fatal("interpreted BPF should not massively beat synthesized native code")
	}
}

func TestAblationAppSpecific(t *testing.T) {
	r := AblationAppSpecific(nil)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	t.Logf("stock %v per op, NoDelay variant %v per op", r.StockPerOp, r.NoDelayPerOp)
	if r.NoDelayPerOp >= r.StockPerOp {
		t.Fatal("the specialized variant should win on this workload")
	}
}

func TestAblationChecksum(t *testing.T) {
	r := AblationChecksum(nil)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	t.Logf("with checksum %.2f Mb/s, without %.2f Mb/s", r.WithMbps, r.WithoutMbps)
	if r.WithoutMbps <= r.WithMbps {
		t.Fatal("checksum elision should help on the fast network")
	}
}

func TestAblationRPC(t *testing.T) {
	r := AblationRPC(nil)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	t.Logf("via registry %v/op, bypassed %v/op", r.ViaServerPerOp, r.BypassedPerOp)
	if r.BypassedPerOp >= r.ViaServerPerOp {
		t.Fatal("bypassing the server must reduce request-response latency")
	}
}
