package experiments

import (
	"fmt"
	"time"

	"ulp/internal/costs"
	"ulp/internal/filter"
	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/netio"
	"ulp/internal/pkt"
	"ulp/internal/stacks"
	"ulp/internal/tcp"
)

// ---------------------------------------------------------------------------
// Table 1 — Impact of our mechanisms on throughput
// ---------------------------------------------------------------------------

// Table1Result reports the raw-mechanism micro-benchmark: maximum-sized
// Ethernet packets exchanged over the user-level mechanisms (shared memory,
// library-kernel signalling, protection checking, template matching) with
// no transport protocol, against the standalone raw-hardware saturation
// rate.
type Table1Result struct {
	StandaloneMbps float64
	MechanismMbps  float64
	Percent        float64
	Notifications  int
	Packets        int
	// Per-packet CPU cost of the mechanisms on each side: the overhead is
	// "very modest" because it pipelines completely under the 1.2 ms wire
	// time of a maximum-sized Ethernet packet.
	SenderCPUPerPkt, ReceiverCPUPerPkt time.Duration
}

// Table1 runs the mechanism micro-benchmark on the Ethernet.
func Table1(model *costs.Model) (Table1Result, error) {
	w := newWorld(OrgOurs, NetEthernet, model)
	const payload = link.EthMTU
	const packets = 400

	// Standalone: link saturation with Ethernet framing and inter-packet
	// gaps accounted for, measured on the same simulated wire.
	frameLen := link.EthHeaderLen + payload
	txTime := w.w.Seg.TxTime(frameLen)
	standalone := Mbps(int64(payload), txTime)

	// Receiver-side channel: raw EtherType demux binding created by the
	// privileged kernel domain, exactly as the registry would.
	n2 := w.node(1)
	krn := n2.Host.NewDomain("bench-kernel", true)
	tmpl2 := netio.Template{LinkSrc: n2.Mod.Device().Addr(), Type: link.TypeRaw}
	_, ch, err := n2.Mod.CreateRawChannel(krn, link.TypeRaw, tmpl2, 64)
	if err != nil {
		return Table1Result{}, err
	}

	// Sender-side capability.
	n1 := w.node(0)
	krn1 := n1.Host.NewDomain("bench-kernel", true)
	tmpl1 := netio.Template{LinkSrc: n1.Mod.Device().Addr(), Type: link.TypeRaw}
	cap, _, err := n1.Mod.CreateRawChannel(krn1, link.TypeRaw, tmpl1, 4)
	if err != nil {
		return Table1Result{}, err
	}

	var firstByte, lastByte time.Duration
	received := 0
	app1 := w.app(0, "blaster")
	app2 := w.app(1, "sink")

	app1.Go("tx", func(t *kern.Thread) {
		for i := 0; i < packets; i++ {
			// The frame is built in the shared region: no user copy.
			b := pkt.New(link.EthHeaderLen, payload)
			h := link.EthHeader{Dst: n2.Mod.Device().Addr(), Src: n1.Mod.Device().Addr(), Type: link.TypeRaw}
			h.Encode(b)
			if err := n1.Mod.Send(t, cap, b); err != nil {
				return
			}
		}
	})
	app2.Go("rx", func(t *kern.Thread) {
		for received < packets {
			batch := ch.Wait(t)
			for _, b := range batch {
				if received == 0 {
					firstByte = time.Duration(t.Now())
				}
				received++
				lastByte = time.Duration(t.Now())
				b.Release()
			}
		}
	})
	w.runUntil(5*time.Minute, func() bool { return received >= packets })
	if received < packets {
		return Table1Result{}, fmt.Errorf("table1: received %d/%d", received, packets)
	}
	got := Mbps(int64(payload)*int64(packets-1), lastByte-firstByte)
	return Table1Result{
		StandaloneMbps:    standalone,
		MechanismMbps:     got,
		Percent:           100 * got / standalone,
		Notifications:     ch.Notifications,
		Packets:           received,
		SenderCPUPerPkt:   n1.Host.CPU.Busy() / time.Duration(packets),
		ReceiverCPUPerPkt: n2.Host.CPU.Busy() / time.Duration(packets),
	}, nil
}

// ---------------------------------------------------------------------------
// Table 2 — Throughput
// ---------------------------------------------------------------------------

// UserPacketSizes are the application write sizes of Table 2.
var UserPacketSizes = []int{512, 1024, 2048, 4096}

// Table2Cell is one measurement.
type Table2Cell struct {
	System     string
	Net        NetSel
	UserPacket int
	Mbps       float64
	Err        error
}

// Table2Config tunes the bulk measurement.
type Table2Config struct {
	TotalBytes int
	Budget     time.Duration
	Model      *costs.Model
	Opts       stacks.Options
}

func (c *Table2Config) fill() {
	if c.TotalBytes == 0 {
		c.TotalBytes = 400 << 10
	}
	if c.Budget == 0 {
		c.Budget = 10 * time.Minute
	}
}

// Table2CellFor measures one system/net/size cell.
func Table2CellFor(org OrgSel, label string, net NetSel, userPacket int, cfg Table2Config) Table2Cell {
	cfg.fill()
	// One network packet per user packet (up to the link maximum): the
	// paper's observed size dependence ("network efficiency improves with
	// increased packet size up to the maximum allowable on the link")
	// requires per-write transmission rather than Nagle coalescing.
	cfg.Opts.NoDelay = true
	w := newWorld(org, net, cfg.Model)
	mbps, err := bulkSend(w, cfg.TotalBytes, userPacket, cfg.Opts, cfg.Budget)
	return Table2Cell{System: label, Net: net, UserPacket: userPacket, Mbps: mbps, Err: err}
}

// Table2 measures the full matrix: the paper reports Ultrix and ours on
// both networks, and Mach/UX on Ethernet only ("standard Mach does not
// currently support a mapped AN1 driver ... we therefore do not report
// Mach/UX performance on AN1").
func Table2(cfg Table2Config) []Table2Cell {
	var out []Table2Cell
	for _, sys := range Systems {
		for _, net := range []NetSel{NetEthernet, NetAN1} {
			if sys.Org == OrgMachUX && net == NetAN1 {
				continue
			}
			for _, up := range UserPacketSizes {
				out = append(out, Table2CellFor(sys.Org, sys.Label, net, up, cfg))
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Table 3 — Round-trip latency
// ---------------------------------------------------------------------------

// LatencySizes are the payload sizes of Table 3.
var LatencySizes = []int{1, 512, 1460}

// Table3Cell is one latency measurement.
type Table3Cell struct {
	System string
	Net    NetSel
	Size   int
	RTT    time.Duration
	Err    error
}

// Table3CellFor measures one cell. Latency tests disable the batching-
// friendly policies that hurt request-response (the paper measured simple
// ping-pong exchanges; Nagle never engages because each side has at most
// one outstanding small segment, and delayed ACKs piggyback on the echo).
func Table3CellFor(org OrgSel, label string, net NetSel, size int, model *costs.Model) Table3Cell {
	w := newWorld(org, net, model)
	rtt, err := pingPong(w, size, 32, stacks.Options{}, 10*time.Minute)
	return Table3Cell{System: label, Net: net, Size: size, RTT: rtt, Err: err}
}

// Table3 measures the full latency matrix.
func Table3(model *costs.Model) []Table3Cell {
	var out []Table3Cell
	for _, sys := range Systems {
		for _, net := range []NetSel{NetEthernet, NetAN1} {
			if sys.Org == OrgMachUX && net == NetAN1 {
				continue
			}
			for _, size := range LatencySizes {
				out = append(out, Table3CellFor(sys.Org, sys.Label, net, size, model))
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Table 4 — Connection setup
// ---------------------------------------------------------------------------

// Table4Cell is one connection-setup measurement.
type Table4Cell struct {
	System string
	Net    NetSel
	Setup  time.Duration
	Err    error
}

// Table4CellFor measures active-open latency with the passive peer already
// listening, averaged over several connections.
func Table4CellFor(org OrgSel, label string, net NetSel, model *costs.Model) Table4Cell {
	w := newWorld(org, net, model)
	srv := w.app(0, "server")
	cli := w.app(1, "client")
	const conns = 8
	var total time.Duration
	done := false
	var failure error

	srv.Go("srv", func(t *kern.Thread) {
		l, err := srv.Stack.Listen(t, 80, stacks.Options{})
		if err != nil {
			failure = err
			done = true
			return
		}
		for {
			if _, err := l.Accept(t); err != nil {
				return
			}
		}
	})
	cli.GoAfter(time.Millisecond, "cli", func(t *kern.Thread) {
		for i := 0; i < conns; i++ {
			// Space the opens out so one measurement's server-side
			// completion work does not queue behind the next (the paper
			// measured isolated setups on idle machines).
			t.Sleep(25 * time.Millisecond)
			start := time.Duration(t.Now())
			c, err := cli.Stack.Connect(t, w.endpoint(0, 80), stacks.Options{})
			if err != nil {
				failure = err
				done = true
				return
			}
			total += time.Duration(t.Now()) - start
			// Leave the connection open; Table 4 isolates setup time.
			_ = c
		}
		done = true
	})
	w.runUntil(5*time.Minute, func() bool { return done })
	if failure != nil {
		return Table4Cell{System: label, Net: net, Err: failure}
	}
	if !done {
		return Table4Cell{System: label, Net: net, Err: fmt.Errorf("setup bench incomplete")}
	}
	return Table4Cell{System: label, Net: net, Setup: total / conns}
}

// Table4 measures the configurations the paper reports: Ultrix on both
// networks, Mach/UX on Ethernet, ours on both.
func Table4(model *costs.Model) []Table4Cell {
	var out []Table4Cell
	for _, sys := range Systems {
		for _, net := range []NetSel{NetEthernet, NetAN1} {
			if sys.Org == OrgMachUX && net == NetAN1 {
				continue
			}
			out = append(out, Table4CellFor(sys.Org, sys.Label, net, model))
		}
	}
	return out
}

// Table4Breakdown reproduces the paper's decomposition of the user-level
// library's Ethernet setup cost from the calibrated cost model (the 11.9 ms
// breakdown of §4).
type Table4BreakdownRow struct {
	Component string
	Cost      time.Duration
}

// Table4Breakdown decomposes the measured user-level-library Ethernet setup
// cost the way the paper does: four components come directly from the cost
// model's charges; the first (time to the remote peer and back, including
// the registry's un-optimized device access) is the measured remainder.
func Table4Breakdown(model *costs.Model) []Table4BreakdownRow {
	m := model
	if m == nil {
		d := costs.Default()
		m = &d
	}
	total := Table4CellFor(OrgOurs, "ours", NetEthernet, m).Setup
	rpc := 2*m.MachIPCSend + 2*m.ContextSwitch
	outbound := m.RegistryPortAlloc + m.RegistryConnSetup
	remote := total - outbound - m.ChannelSetup - rpc - m.StateTransfer
	return []Table4BreakdownRow{
		{"remote peer and back (incl. registry device access)", remote},
		{"non-overlapped outbound processing", outbound},
		{"user channel setup with network I/O module", m.ChannelSetup},
		{"application to server and back (Mach IPC)", rpc},
		{"TCP state transfer to user level", m.StateTransfer},
	}
}

// ---------------------------------------------------------------------------
// Table 5 — Packet demultiplexing tradeoffs
// ---------------------------------------------------------------------------

// Table5Result reports per-packet demultiplexing cost, software (LANCE) vs
// hardware (AN1 BQI). Following the paper's methodology, "copy and DMA
// costs are not included; the cost of device management code inherent to
// packet demultiplexing in the case of the AN1 is included."
type Table5Result struct {
	SoftwareDemux time.Duration // LANCE: kernel filter run + fixed demux work
	HardwareDemux time.Duration // AN1: BQI machinery bookkeeping
	Packets       int
}

// Table5 measures both paths by observing receive-side CPU time per packet
// and subtracting the interrupt dispatch and (for the LANCE) programmed-I/O
// copy components.
func Table5(model *costs.Model) (Table5Result, error) {
	const packets = 64
	m := model
	if m == nil {
		d := costs.Default()
		m = &d
	}

	perPacketCPU := func(net NetSel) (time.Duration, int, error) {
		w := newWorld(OrgOurs, net, model)
		n1, n2 := w.node(0), w.node(1)
		krn2 := n2.Host.NewDomain("bench-kernel", true)
		spec := filter.Spec{
			LinkHdrLen: n2.Mod.Device().HdrLen(), Proto: ipv4.ProtoTCP,
			LocalIP: n2.IP, LocalPort: 7777,
			RemoteIP: n1.IP, RemotePort: 8888,
		}
		tmpl := netio.Template{LinkSrc: n2.Mod.Device().Addr(), Type: link.TypeIPv4}
		_, ch, err := n2.Mod.CreateChannel(krn2, spec, tmpl, packets+8)
		if err != nil {
			return 0, 0, err
		}
		baseline := n2.Host.CPU.Busy()
		frameLen := 0
		w.spawnKernelThread(0, "tx", func(t *kern.Thread) {
			for i := 0; i < packets; i++ {
				b := buildTCPFrame(n1, n2, ch.BQI(), 8888, 7777, 64)
				frameLen = b.Len()
				n1.Mod.SendKernel(t, b)
			}
		})
		// No consumer thread: packets pool in the ring under a single
		// batched notification, so the measured CPU is the pure delivery
		// path with no wakeups or reader switches.
		w.run(time.Second)
		if ch.Pending() < packets {
			return 0, frameLen, fmt.Errorf("table5: delivered %d/%d", ch.Pending(), packets)
		}
		perPkt := (n2.Host.CPU.Busy() - baseline) / time.Duration(packets)
		return perPkt, frameLen, nil
	}

	sw, frameLen, err := perPacketCPU(NetEthernet)
	if err != nil {
		return Table5Result{}, err
	}
	// Subtract interrupt dispatch, the PIO staging copy, and the move into
	// the shared region ("copy and DMA costs are not included"). The LANCE
	// pads short frames to its 60-byte minimum.
	pioLen := frameLen
	if min := link.EthHeaderLen + link.EthMinPayload; pioLen < min {
		pioLen = min
	}
	sw -= m.InterruptDispatch + m.LancePIO(pioLen) + m.Copy(pioLen)

	hwTotal, _, err := perPacketCPU(NetAN1)
	if err != nil {
		return Table5Result{}, err
	}
	hw := hwTotal - m.InterruptDispatch // DMA costs no CPU

	return Table5Result{SoftwareDemux: sw, HardwareDemux: hw, Packets: packets}, nil
}

// buildTCPFrame assembles a syntactically valid TCP/IP frame between bench
// endpoints (demultiplexing benchmarks need headers, not a live
// connection).
func buildTCPFrame(from, to *ulpNode, bqi uint16, srcPort, dstPort uint16, payload int) *pkt.Buf {
	hdrLen := to.Mod.Device().HdrLen()
	b := pkt.New(hdrLen+ipv4.HeaderLen+tcp.HeaderLen, payload)
	th := tcp.Header{SrcPort: srcPort, DstPort: dstPort, Flags: tcp.FlagACK, Window: 1024}
	th.Encode(b, from.IP, to.IP)
	ih := ipv4.Header{TTL: 64, Proto: ipv4.ProtoTCP, Src: from.IP, Dst: to.IP}
	ih.Encode(b)
	if hdrLen == link.AN1HeaderLen {
		lh := link.AN1Header{Dst: to.Mod.Device().Addr(), Src: from.Mod.Device().Addr(), BQI: bqi, Type: link.TypeIPv4}
		lh.Encode(b)
	} else {
		lh := link.EthHeader{Dst: to.Mod.Device().Addr(), Src: from.Mod.Device().Addr(), Type: link.TypeIPv4}
		lh.Encode(b)
	}
	return b
}
