package experiments

import (
	"time"

	"ulp/internal/costs"
	"ulp/internal/stacks"
)

// StatsReport runs a representative 1 MB bulk transfer on a fresh world and
// returns the per-layer counter breakdown (wire frames and bytes, device
// tx/rx, demux decisions, notification batching, copies, checksum bytes,
// packet-pool churn, engine activity) in the style of the paper's per-layer
// cost accounting. The report reflects the whole run including connection
// setup.
func StatsReport(org OrgSel, net NetSel, model *costs.Model) (string, error) {
	w := newWorld(org, net, model)
	if _, err := bulkSend(w, 1<<20, 8192, stacks.Options{}, 30*time.Second); err != nil {
		return "", err
	}
	return w.w.StatsReport(), nil
}
