package experiments

import (
	"time"

	"ulp"
	"ulp/internal/costs"
	"ulp/internal/stacks"
)

// StatsReport runs a representative 1 MB bulk transfer on a fresh world and
// returns the per-layer counter breakdown (wire frames and bytes, device
// tx/rx, demux decisions, notification batching, copies, checksum bytes,
// packet-pool churn, engine activity) in the style of the paper's per-layer
// cost accounting. The report reflects the whole run including connection
// setup.
func StatsReport(org OrgSel, net NetSel, model *costs.Model) (string, error) {
	return StatsReportZC(org, net, model, false)
}

// StatsReportZC is StatsReport with the zero-copy receive path toggled:
// with it on, the breakdown shows referenced_bytes/delivered_by_ref rising
// where copied_bytes would have, per channel and in aggregate.
func StatsReportZC(org OrgSel, net NetSel, model *costs.Model, zeroCopy bool) (string, error) {
	w := newWorldWith(org, net, model, func(cfg *ulp.Config) {
		cfg.ZeroCopyRx = zeroCopy
	})
	if _, err := bulkSend(w, 1<<20, 8192, stacks.Options{}, 30*time.Second); err != nil {
		return "", err
	}
	return w.w.StatsReport(), nil
}
