package experiments

import (
	"testing"
	"time"
)

// TestCalibrationShapes pins the paper's qualitative findings: orderings,
// crossovers, and magnitude bands. It is the regression net for the cost
// model — EXPERIMENTS.md records the precise paper-vs-simulated values.
func TestCalibrationShapes(t *testing.T) {
	cfg := Table2Config{TotalBytes: 300 << 10}
	cell := func(org OrgSel, net NetSel, up int) float64 {
		c := Table2CellFor(org, "x", net, up, cfg)
		if c.Err != nil {
			t.Fatalf("cell %v/%v/%d: %v", org, net, up, c.Err)
		}
		return c.Mbps
	}

	t.Run("Table2/UltrixEthernetPlateau", func(t *testing.T) {
		small := cell(OrgUltrix, NetEthernet, 512)
		large := cell(OrgUltrix, NetEthernet, 4096)
		if large <= small {
			t.Errorf("throughput must grow with user packet size: %0.1f -> %0.1f", small, large)
		}
		if large < 6.5 || large > 9.8 {
			t.Errorf("Ultrix Ethernet plateau %0.1f Mb/s outside [6.5, 9.8] (paper 7.6)", large)
		}
	})

	t.Run("Table2/MachUXWorstOnEthernet", func(t *testing.T) {
		for _, up := range []int{512, 4096} {
			ux := cell(OrgMachUX, NetEthernet, up)
			ultrix := cell(OrgUltrix, NetEthernet, up)
			ours := cell(OrgOurs, NetEthernet, up)
			if ux >= ultrix || ux >= ours {
				t.Errorf("size %d: Mach/UX (%.1f) must trail Ultrix (%.1f) and ours (%.1f)", up, ux, ultrix, ours)
			}
			// The paper's headline: ours is at least ~40% faster than the
			// single-server organization.
			if ours < 1.35*ux {
				t.Errorf("size %d: ours (%.1f) should beat Mach/UX (%.1f) by >35%%", up, ours, ux)
			}
		}
	})

	t.Run("Table2/AN1SmallPacketCrossover", func(t *testing.T) {
		ours := cell(OrgOurs, NetAN1, 512)
		ultrix := cell(OrgUltrix, NetAN1, 512)
		if ours <= ultrix {
			t.Errorf("the zero-copy buffer organization must win at 512B on AN1: ours %.1f vs Ultrix %.1f (paper 6.7 vs 4.8)", ours, ultrix)
		}
	})

	t.Run("Table2/AN1LargePacketBand", func(t *testing.T) {
		ultrix := cell(OrgUltrix, NetAN1, 4096)
		if ultrix < 9 || ultrix > 15 {
			t.Errorf("Ultrix AN1 at 4096 = %.1f Mb/s, outside [9, 15] (paper 11.9)", ultrix)
		}
	})

	rtt := func(org OrgSel, net NetSel, size int) time.Duration {
		c := Table3CellFor(org, "x", net, size, nil)
		if c.Err != nil {
			t.Fatalf("rtt %v/%v/%d: %v", org, net, size, c.Err)
		}
		return c.RTT
	}

	t.Run("Table3/LatencyOrdering", func(t *testing.T) {
		for _, size := range LatencySizes {
			ultrix := rtt(OrgUltrix, NetEthernet, size)
			ours := rtt(OrgOurs, NetEthernet, size)
			ux := rtt(OrgMachUX, NetEthernet, size)
			if !(ultrix < ours && ours < ux) {
				t.Errorf("size %d: want Ultrix < ours < Mach/UX, got %v / %v / %v", size, ultrix, ours, ux)
			}
		}
	})

	t.Run("Table3/Magnitudes", func(t *testing.T) {
		u := rtt(OrgUltrix, NetEthernet, 1)
		if u < 1200*time.Microsecond || u > 2600*time.Microsecond {
			t.Errorf("Ultrix 1B RTT %v outside [1.2ms, 2.6ms] (paper 1.6ms)", u)
		}
		o := rtt(OrgOurs, NetEthernet, 1)
		if o < 2*time.Millisecond || o > 4*time.Millisecond {
			t.Errorf("ours 1B RTT %v outside [2ms, 4ms] (paper 2.8ms)", o)
		}
		x := rtt(OrgMachUX, NetEthernet, 1)
		if x < 5*time.Millisecond || x > 10*time.Millisecond {
			t.Errorf("Mach/UX 1B RTT %v outside [5ms, 10ms] (paper 7.8ms)", x)
		}
	})

	t.Run("Table3/AN1FasterThanEthernetAtSize", func(t *testing.T) {
		if rtt(OrgOurs, NetAN1, 1460) >= rtt(OrgOurs, NetEthernet, 1460) {
			t.Error("AN1 should beat Ethernet for 1460B exchanges")
		}
	})

	t.Run("Table4/SetupOrderingAndBands", func(t *testing.T) {
		setup := func(org OrgSel, net NetSel) time.Duration {
			c := Table4CellFor(org, "x", net, nil)
			if c.Err != nil {
				t.Fatalf("setup: %v", c.Err)
			}
			return c.Setup
		}
		ultrix := setup(OrgUltrix, NetEthernet)
		ux := setup(OrgMachUX, NetEthernet)
		ours := setup(OrgOurs, NetEthernet)
		oursAN1 := setup(OrgOurs, NetAN1)
		if !(ultrix < ux && ux < ours) {
			t.Errorf("want Ultrix < Mach/UX < ours, got %v / %v / %v", ultrix, ux, ours)
		}
		if ours < 9*time.Millisecond || ours > 14*time.Millisecond {
			t.Errorf("ours setup %v outside [9ms, 14ms] (paper 11.9ms)", ours)
		}
		if oursAN1 <= ours {
			t.Errorf("AN1 setup (%v) should exceed Ethernet (%v): BQI machinery", oursAN1, ours)
		}
	})

	t.Run("Table5/DemuxParity", func(t *testing.T) {
		r, err := Table5(nil)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := 40*time.Microsecond, 65*time.Microsecond
		if r.SoftwareDemux < lo || r.SoftwareDemux > hi {
			t.Errorf("software demux %v outside [%v, %v] (paper 52µs)", r.SoftwareDemux, lo, hi)
		}
		if r.HardwareDemux < lo || r.HardwareDemux > hi {
			t.Errorf("hardware demux %v outside [%v, %v] (paper 50µs)", r.HardwareDemux, lo, hi)
		}
		// The paper's conclusion: "there is no significant difference in
		// the timing."
		diff := r.SoftwareDemux - r.HardwareDemux
		if diff < 0 {
			diff = -diff
		}
		if diff > 15*time.Microsecond {
			t.Errorf("demux costs should be comparable, differ by %v", diff)
		}
	})

	t.Run("Table4/BreakdownSumsToTotal", func(t *testing.T) {
		rows := Table4Breakdown(nil)
		if len(rows) != 5 {
			t.Fatalf("breakdown has %d rows", len(rows))
		}
		var sum time.Duration
		for _, r := range rows {
			if r.Cost <= 0 {
				t.Errorf("component %q non-positive: %v", r.Component, r.Cost)
			}
			sum += r.Cost
		}
		total := Table4CellFor(OrgOurs, "x", NetEthernet, nil).Setup
		if sum != total {
			t.Errorf("breakdown sum %v != measured total %v", sum, total)
		}
	})
}

// TestDeterministicExperiments pins reproducibility: identical runs produce
// identical measurements.
func TestDeterministicExperiments(t *testing.T) {
	a := Table2CellFor(OrgOurs, "x", NetAN1, 512, Table2Config{TotalBytes: 100 << 10})
	b := Table2CellFor(OrgOurs, "x", NetAN1, 512, Table2Config{TotalBytes: 100 << 10})
	if a.Err != nil || b.Err != nil {
		t.Fatal(a.Err, b.Err)
	}
	if a.Mbps != b.Mbps {
		t.Fatalf("nondeterministic: %.6f vs %.6f", a.Mbps, b.Mbps)
	}
	r1, err1 := Table1(nil)
	r2, err2 := Table1(nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.MechanismMbps != r2.MechanismMbps {
		t.Fatal("Table1 nondeterministic")
	}
}
