// Package experiments reproduces the paper's evaluation (§4): one driver
// per table, each building a fresh two-workstation world and measuring the
// same quantity the paper reports. cmd/ulbench renders them as text tables;
// bench_test.go wraps them as Go benchmarks. EXPERIMENTS.md records
// paper-versus-simulated values.
package experiments

import (
	"fmt"
	"time"

	"ulp/internal/kern"
	"ulp/internal/stacks"
)

// Mbps converts a payload byte count over a duration to megabits/second.
func Mbps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds() / 1e6
}

// System identifies a measured configuration in paper terms.
type System struct {
	Label string // "Ultrix 4.2A", "Mach 3.0/UX (mapped)", "Our (Mach) Implementation"
	Org   OrgSel
}

// OrgSel mirrors ulp.Org without importing the root package (which imports
// nothing from here; the root facade is for applications, the experiments
// build worlds directly).
type OrgSel int

// Organizations under their paper names.
const (
	OrgUltrix OrgSel = iota
	OrgMachUX
	OrgOurs
)

// Systems under measurement, in the paper's presentation order.
var Systems = []System{
	{Label: "Ultrix 4.2A", Org: OrgUltrix},
	{Label: "Mach 3.0/UX (mapped)", Org: OrgMachUX},
	{Label: "Our (Mach) Implementation", Org: OrgOurs},
}

// NetSel mirrors the network choice.
type NetSel int

// Networks.
const (
	NetEthernet NetSel = iota
	NetAN1
	NetAN1Jumbo
)

func (n NetSel) String() string {
	switch n {
	case NetEthernet:
		return "Ethernet"
	case NetAN1:
		return "DEC SRC AN1"
	case NetAN1Jumbo:
		return "DEC SRC AN1 (64K frames)"
	}
	return "?"
}

// bulkSend drives a one-way bulk transfer of total bytes written in
// userPacket-sized application writes from the client app to a sink server,
// returning achieved goodput measured at the receiver between the first and
// last payload byte (excluding connection setup, as the paper does).
func bulkSend(w *world, total, userPacket int, opts stacks.Options, budget time.Duration) (float64, error) {
	srv := w.app(0, "server")
	cli := w.app(1, "client")
	var firstByte, lastByte time.Duration
	received := 0
	done := false
	var failure error

	// Steady-state measurement: the first warmup bytes (slow start and the
	// initial delayed-ACK stall) are excluded from the timed span, as a
	// long-running testbed measurement would exclude them.
	const warmup = 32 << 10

	srv.Go("srv", func(th *kern.Thread) {
		l, err := srv.Stack.Listen(th, 80, opts)
		if err != nil {
			failure = err
			done = true
			return
		}
		c, err := l.Accept(th)
		if err != nil {
			failure = err
			done = true
			return
		}
		buf := make([]byte, 65536)
		for received < total {
			n, err := c.Read(th, buf)
			if err != nil {
				failure = err
				done = true
				return
			}
			if n == 0 {
				break
			}
			received += n
			if received <= warmup {
				firstByte = time.Duration(th.Now())
			}
			lastByte = time.Duration(th.Now())
		}
		done = true
	})

	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.endpoint(0, 80), opts)
		if err != nil {
			failure = err
			done = true
			return
		}
		data := make([]byte, userPacket)
		sent := 0
		for sent < total {
			n := userPacket
			if sent+n > total {
				n = total - sent
			}
			if _, err := c.Write(th, data[:n]); err != nil {
				failure = err
				done = true
				return
			}
			sent += n
		}
	})

	w.runUntil(budget, func() bool { return done })
	if failure != nil {
		return 0, failure
	}
	if !done || received < total {
		return 0, fmt.Errorf("experiments: transfer incomplete (%d/%d bytes)", received, total)
	}
	span := lastByte - firstByte
	return Mbps(int64(received-warmup), span), nil
}

// pingPong measures average round-trip time for size-byte exchanges after a
// warmup, as Table 3 does ("the first application sends data to the second,
// which in turn sends the same amount of data back").
func pingPong(w *world, size, iters int, opts stacks.Options, budget time.Duration) (time.Duration, error) {
	srv := w.app(0, "server")
	cli := w.app(1, "client")
	var avg time.Duration
	done := false
	var failure error

	srv.Go("srv", func(th *kern.Thread) {
		l, err := srv.Stack.Listen(th, 80, opts)
		if err != nil {
			failure = err
			done = true
			return
		}
		c, err := l.Accept(th)
		if err != nil {
			failure = err
			done = true
			return
		}
		buf := make([]byte, 65536)
		for {
			got := 0
			for got < size {
				n, err := c.Read(th, buf[got:size])
				if err != nil || n == 0 {
					return
				}
				got += n
			}
			if _, err := c.Write(th, buf[:size]); err != nil {
				return
			}
		}
	})

	cli.GoAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := cli.Stack.Connect(th, w.endpoint(0, 80), opts)
		if err != nil {
			failure = err
			done = true
			return
		}
		buf := make([]byte, 65536)
		exchange := func() bool {
			if _, err := c.Write(th, buf[:size]); err != nil {
				failure = err
				return false
			}
			got := 0
			for got < size {
				n, err := c.Read(th, buf[got:size])
				if err != nil {
					failure = err
					return false
				}
				got += n
			}
			return true
		}
		const warmup = 4
		for i := 0; i < warmup; i++ {
			if !exchange() {
				done = true
				return
			}
		}
		start := time.Duration(th.Now())
		for i := 0; i < iters; i++ {
			if !exchange() {
				done = true
				return
			}
		}
		avg = (time.Duration(th.Now()) - start) / time.Duration(iters)
		done = true
	})

	w.runUntil(budget, func() bool { return done })
	if failure != nil {
		return 0, failure
	}
	if !done {
		return 0, fmt.Errorf("experiments: ping-pong incomplete")
	}
	return avg, nil
}
