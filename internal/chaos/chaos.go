// Package chaos extends the wire-level fault model (wire.Faults: loss,
// duplication, corruption, reordering) into a full-system FaultPlan that
// also covers the control plane — the faults that exercise the paper's
// trust argument (§3.2–§3.3) rather than the protocol machinery:
//
//   - registry service faults: requests dropped before processing or
//     delayed before a reply is issued, so libraries see an unresponsive
//     or slow registry and must degrade gracefully instead of hanging;
//   - crash schedules: applications torn down abruptly at chosen points in
//     virtual time, with no exit path run, so the registry and network I/O
//     module must reclaim ports, capabilities and pinned regions on their
//     own.
//
// Everything is seeded and deterministic: the same plan yields the same
// fault sequence on every run, which keeps chaos tests stable in CI.
package chaos

import (
	"math/rand"
	"time"

	"ulp/internal/wire"
)

// FaultPlan is the full-system fault configuration for one scenario.
type FaultPlan struct {
	// Seed drives every random draw in the plan. A zero Wire.Seed is
	// filled from it so one number reproduces the whole scenario.
	Seed uint64

	// Wire is the data-plane fault set applied to the segment.
	Wire wire.Faults

	// Control is the registry-side control-plane fault set.
	Control ControlFaults

	// Crashes schedules abrupt application terminations.
	Crashes []CrashPoint

	// RegistryCrashes schedules crashes of registry servers themselves —
	// the control plane's single point of failure — optionally followed by
	// a restart on the same host at a later virtual time.
	RegistryCrashes []RegistryCrash

	// ShardCrashes schedules crashes of individual registry shards in a
	// federated (sharded) control plane. Worlds built without RegistryShards
	// ignore them.
	ShardCrashes []ShardCrash

	// Partitions schedules network partitions: during each window, frames
	// crossing the cut vanish silently (no reset, no error), exactly like
	// a dead route. Time-scripted, no RNG draws — adding a partition to a
	// seeded plan leaves every probabilistic fault's fate intact.
	Partitions []Partition
}

// ControlFaults describes registry service misbehaviour.
type ControlFaults struct {
	// DropRequestProb drops an incoming service request before any
	// processing — the library's RPC never gets a reply.
	DropRequestProb float64

	// DelayProb delays the handling of a request by Delay, modelling a
	// busy or wedged server (the reply, if any, arrives late).
	DelayProb float64
	Delay     time.Duration
}

func (c ControlFaults) active() bool {
	return c.DropRequestProb > 0 || c.DelayProb > 0
}

// CrashPoint kills every thread of one application domain at time At.
type CrashPoint struct {
	// Host indexes the node the application runs on.
	Host int
	// App names the application domain; empty matches any app on the host.
	App string
	// At is the virtual time of the crash.
	At time.Duration
}

// RegistryCrash kills one host's registry domain at time At. If
// RestartAfter is nonzero, a fresh registry is started on the same host
// RestartAfter later; it rebuilds its state from the network I/O module's
// installed header templates. A zero RestartAfter means the registry never
// comes back: capability leases run out and the module quarantines the
// endpoints it was serving.
type RegistryCrash struct {
	// Host indexes the node whose registry dies.
	Host int
	// At is the virtual time of the crash.
	At time.Duration
	// RestartAfter is the delay from the crash to the restart (0 = never).
	RestartAfter time.Duration
}

// ShardCrash kills one shard of a host's federated registry at time At.
// The surviving shards keep serving (requests and frames for the dead
// shard's tuples fail over to a successor); leases the dead shard issued
// expire, so its handed-off connections migrate to survivors. If
// RestartAfter is nonzero a fresh incarnation of the shard boots that much
// later, rebuilds its statically-owned endpoints from the module, and
// reclaims ownership from the survivors.
type ShardCrash struct {
	// Host indexes the node whose registry federation loses a shard.
	Host int
	// Shard indexes the shard within the federation.
	Shard int
	// At is the virtual time of the crash.
	At time.Duration
	// RestartAfter is the delay from the crash to the restart (0 = never).
	RestartAfter time.Duration
}

// Partition isolates a set of hosts from the rest of the world between At
// and At+HealAfter. Hosts on the same side of the cut still talk to each
// other; only frames crossing the cut are blackholed.
type Partition struct {
	// Hosts indexes the nodes on one side of the cut. Empty means the
	// whole segment goes dark (a full blackhole).
	Hosts []int
	// At is the virtual time the partition starts.
	At time.Duration
	// HealAfter is how long the partition lasts (0 = never heals).
	HealAfter time.Duration
}

// WireFaults returns the data-plane fault set with the seed filled in.
func (p *FaultPlan) WireFaults() wire.Faults {
	f := p.Wire
	if f.Seed == 0 {
		f.Seed = p.Seed
	}
	return f
}

// Injector is the seeded decision source a registry consults per request.
// A nil *Injector injects nothing, so callers need no guards.
type Injector struct {
	rng *rand.Rand
	cf  ControlFaults

	// Stats
	DroppedRequests, DelayedRequests int
}

// NewInjector builds an injector for a control-fault set. It returns nil
// when the set is inactive, keeping the fault-free path branch-free.
func NewInjector(seed uint64, cf ControlFaults) *Injector {
	if !cf.active() {
		return nil
	}
	return &Injector{rng: rand.New(rand.NewSource(int64(seed))), cf: cf}
}

// DropRequest decides whether to drop the next service request.
func (i *Injector) DropRequest() bool {
	if i == nil || i.cf.DropRequestProb == 0 {
		return false
	}
	if i.rng.Float64() < i.cf.DropRequestProb {
		i.DroppedRequests++
		return true
	}
	return false
}

// RequestDelay returns how long to stall before handling the next request
// (zero for no delay).
func (i *Injector) RequestDelay() time.Duration {
	if i == nil || i.cf.DelayProb == 0 {
		return 0
	}
	if i.rng.Float64() < i.cf.DelayProb {
		i.DelayedRequests++
		return i.cf.Delay
	}
	return 0
}
