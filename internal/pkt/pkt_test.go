package pkt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPrependStripRoundTrip(t *testing.T) {
	b := New(64, 4)
	copy(b.Bytes(), "data")
	hdr := b.Prepend(6)
	copy(hdr, "header")
	if b.Len() != 10 {
		t.Fatalf("len = %d, want 10", b.Len())
	}
	if !bytes.Equal(b.Bytes(), []byte("headerdata")) {
		t.Fatalf("bytes = %q", b.Bytes())
	}
	got := b.Strip(6)
	if !bytes.Equal(got, []byte("header")) {
		t.Fatalf("stripped = %q", got)
	}
	if !bytes.Equal(b.Bytes(), []byte("data")) {
		t.Fatalf("after strip = %q", b.Bytes())
	}
}

func TestPrependExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when prepending past headroom")
		}
	}()
	b := New(4, 0)
	b.Prepend(5)
}

func TestStripOverrunPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when stripping past end")
		}
	}()
	b := New(0, 3)
	b.Strip(4)
}

func TestTrim(t *testing.T) {
	b := FromBytes(8, []byte("hello world"))
	b.Trim(5)
	if !bytes.Equal(b.Bytes(), []byte("hello")) {
		t.Fatalf("trimmed = %q", b.Bytes())
	}
	if b.Headroom() != 8 {
		t.Fatalf("headroom = %d, want 8", b.Headroom())
	}
}

func TestClone(t *testing.T) {
	b := FromBytes(16, []byte("abc"))
	b.Meta.BQI = 7
	c := b.Clone()
	c.Bytes()[0] = 'z'
	if b.Bytes()[0] != 'a' {
		t.Fatal("clone aliases original")
	}
	if c.Meta.BQI != 7 {
		t.Fatal("clone dropped metadata")
	}
	c.Prepend(4)
	if b.Len() != 3 {
		t.Fatal("clone prepend affected original length")
	}
}

// Property: any sequence of prepends followed by the same strips restores
// the original payload.
func TestLayeringProperty(t *testing.T) {
	if err := quick.Check(func(payload []byte, sizes []uint8) bool {
		total := 0
		var hdrs [][]byte
		for _, s := range sizes {
			n := int(s%32) + 1
			total += n
		}
		b := FromBytes(total, payload)
		for _, s := range sizes {
			n := int(s%32) + 1
			h := b.Prepend(n)
			for i := range h {
				h[i] = byte(n)
			}
			hdrs = append(hdrs, append([]byte(nil), h...))
		}
		for i := len(hdrs) - 1; i >= 0; i-- {
			got := b.Strip(len(hdrs[i]))
			if !bytes.Equal(got, hdrs[i]) {
				return false
			}
		}
		return bytes.Equal(b.Bytes(), payload)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
