package pkt

import (
	"bytes"
	"testing"
)

// drain empties the free lists so a test observes deterministic recycling.
func drain() {
	pool.mu.Lock()
	for i := range pool.data {
		pool.data[i] = nil
	}
	pool.bufs = nil
	pool.mu.Unlock()
}

// TestReleaseRecycles verifies a released buffer's storage is reused by the
// next allocation of a compatible size.
func TestReleaseRecycles(t *testing.T) {
	drain()
	a := New(14, 100)
	stored := &a.data[0]
	a.Release()
	b := New(14, 100)
	if &b.data[0] != stored {
		t.Fatal("released storage was not recycled")
	}
	b.Release()
}

// TestRecycledStorageZeroed verifies the documented New contract — payload
// zeroed — holds for recycled storage, so a stale reference to released
// storage can never observe another packet's bytes, and a fresh packet can
// never leak a dead packet's bytes onto the wire.
func TestRecycledStorageZeroed(t *testing.T) {
	drain()
	a := New(0, 64)
	for i := range a.Bytes() {
		a.Bytes()[i] = 0xAA
	}
	a.Release()

	b := New(0, 64)
	for i, v := range b.Bytes() {
		if v != 0 {
			t.Fatalf("recycled byte %d = %#x, want 0 (stale bytes leaked)", i, v)
		}
	}
	b.Release()

	// FromBytes must likewise leave no stale bytes in its headroom region.
	c := New(0, 64)
	for i := range c.Bytes() {
		c.Bytes()[i] = 0xBB
	}
	c.Release()
	d := FromBytes(20, []byte{1, 2, 3})
	hdr := d.Prepend(20)
	for i, v := range hdr {
		if v != 0 {
			t.Fatalf("recycled headroom byte %d = %#x, want 0", i, v)
		}
	}
	if !bytes.Equal(d.Bytes()[20:], []byte{1, 2, 3}) {
		t.Fatal("payload corrupted")
	}
	d.Release()
}

// TestRetainedBufferNotAliased verifies a live (unreleased) buffer's storage
// is never handed to a new allocation: writes through the new buffer must
// not show through the retained one.
func TestRetainedBufferNotAliased(t *testing.T) {
	drain()
	retained := New(0, 128)
	for i := range retained.Bytes() {
		retained.Bytes()[i] = 0x5A
	}
	snapshot := append([]byte(nil), retained.Bytes()...)

	other := New(0, 128)
	for i := range other.Bytes() {
		other.Bytes()[i] = 0xC3
	}
	if !bytes.Equal(retained.Bytes(), snapshot) {
		t.Fatal("retained buffer mutated by an unrelated allocation")
	}
	other.Release()
	retained.Release()
}

// TestDoubleReleasePanics verifies the lifecycle guard.
func TestDoubleReleasePanics(t *testing.T) {
	b := New(0, 8)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	b.Release()
}

// TestCloneIndependent verifies a clone has its own storage and lifecycle.
func TestCloneIndependent(t *testing.T) {
	a := FromBytes(4, []byte{9, 8, 7})
	c := a.Clone()
	a.Bytes()[0] = 1
	if c.Bytes()[0] != 9 {
		t.Fatal("clone aliases original")
	}
	if c.Headroom() != 4 {
		t.Fatalf("clone headroom = %d, want 4", c.Headroom())
	}
	a.Release()
	if c.Bytes()[1] != 8 {
		t.Fatal("clone damaged by original's release")
	}
	c.Release()
}

// TestExtendInPlace verifies tail growth within spare capacity keeps the
// same storage and zeroes the new region.
func TestExtendInPlace(t *testing.T) {
	drain()
	b := FromBytes(0, []byte{1, 2, 3})
	stored := &b.data[0]
	tail := b.Extend(5)
	if len(tail) != 5 {
		t.Fatalf("tail len = %d, want 5", len(tail))
	}
	if &b.data[0] != stored {
		t.Fatal("in-capacity Extend migrated storage")
	}
	want := []byte{1, 2, 3, 0, 0, 0, 0, 0}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("Bytes = %v, want %v", b.Bytes(), want)
	}
	b.Release()
}

// TestExtendMigrates verifies growth past capacity moves to a larger size
// class, preserves contents, zeroes the tail, and recycles the old storage.
func TestExtendMigrates(t *testing.T) {
	drain()
	b := New(0, classSizes[0]) // exactly fills the smallest class
	for i := range b.Bytes() {
		b.Bytes()[i] = byte(i)
	}
	old := append([]byte(nil), b.Bytes()...)
	b.Extend(64)
	if b.Len() != classSizes[0]+64 {
		t.Fatalf("len = %d, want %d", b.Len(), classSizes[0]+64)
	}
	if !bytes.Equal(b.Bytes()[:classSizes[0]], old) {
		t.Fatal("Extend lost contents during migration")
	}
	for i, v := range b.Bytes()[classSizes[0]:] {
		if v != 0 {
			t.Fatalf("extended byte %d = %#x, want 0", i, v)
		}
	}
	// The abandoned class-0 storage must be back on its free list.
	pool.mu.Lock()
	n := len(pool.data[0])
	pool.mu.Unlock()
	if n != 1 {
		t.Fatalf("old storage not recycled: class-0 free list has %d entries, want 1", n)
	}
	b.Release()
}

// TestOversizeUnpooled verifies allocations beyond every size class still
// work and Release accepts them without recycling their storage.
func TestOversizeUnpooled(t *testing.T) {
	drain()
	huge := classSizes[len(classSizes)-1] + 1
	b := New(0, huge)
	if b.Len() != huge {
		t.Fatalf("len = %d, want %d", b.Len(), huge)
	}
	b.Bytes()[huge-1] = 0xFF
	b.Release()
	pool.mu.Lock()
	defer pool.mu.Unlock()
	for i, lst := range pool.data {
		if len(lst) != 0 {
			t.Fatalf("oversize storage landed on class %d free list", i)
		}
	}
}
