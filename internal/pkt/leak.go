package pkt

// Opt-in leak tracking: while enabled, every buffer handed out by the
// allocator is recorded with its acquisition call stack, and Outstanding
// reports the buffers that were never Released — aggregated by acquisition
// site, so a scenario-end report reads like a profiler leak summary.
//
// Tracking is process-global (like the pool) and off by default; when off
// it costs one atomic load per get/put. Call-stack capture is the
// expensive part, so tests enable it only around the scenario under
// audit. Buffers acquired before tracking was enabled are simply unknown
// to the tracker: releasing one is tolerated, and it can never appear in
// the report.

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

const leakStackDepth = 12

type leakState struct {
	mu   sync.Mutex
	live map[*Buf][leakStackDepth]uintptr
	// dead is the graveyard: the acquisition site of each released buffer,
	// kept so a double-Release or Retain-after-Release panic can name the
	// site that acquired the buffer in its previous life. Bounded by the
	// pool's Buf-struct population (structs are recycled, so a reused Buf
	// migrates back to live and its graveyard entry is dropped).
	dead map[*Buf][leakStackDepth]uintptr
}

var (
	leakOn    atomic.Bool
	leakTrack leakState
)

// SetLeakTracking turns acquisition-site tracking on or off. Enabling
// resets any previous records, so a scenario starts from a clean slate
// even if earlier tests in the same process leaked.
func SetLeakTracking(on bool) {
	leakTrack.mu.Lock()
	if on {
		leakTrack.live = make(map[*Buf][leakStackDepth]uintptr)
		leakTrack.dead = make(map[*Buf][leakStackDepth]uintptr)
	} else {
		leakTrack.live = nil
		leakTrack.dead = nil
	}
	leakTrack.mu.Unlock()
	leakOn.Store(on)
}

func leakTrackGet(b *Buf) {
	if !leakOn.Load() {
		return
	}
	var pcs [leakStackDepth]uintptr
	// Skip runtime.Callers, leakTrackGet, and getBuf: the report should
	// lead with the pkt API call (New/FromBytes/Clone/Extend) and its
	// caller.
	runtime.Callers(3, pcs[:])
	leakTrack.mu.Lock()
	if leakTrack.live != nil {
		leakTrack.live[b] = pcs
	}
	if leakTrack.dead != nil {
		delete(leakTrack.dead, b) // the struct begins a new life
	}
	leakTrack.mu.Unlock()
}

func leakTrackPut(b *Buf) {
	if !leakOn.Load() {
		return
	}
	leakTrack.mu.Lock()
	if leakTrack.live != nil {
		if pcs, ok := leakTrack.live[b]; ok {
			delete(leakTrack.live, b)
			if leakTrack.dead != nil {
				leakTrack.dead[b] = pcs
			}
		}
	}
	leakTrack.mu.Unlock()
}

// leakSiteOf returns a "; acquired at:\n..." suffix naming the buffer's
// acquisition site for lifecycle-bug panics, or "" when tracking is off or
// the buffer predates it.
func leakSiteOf(b *Buf) string {
	if !leakOn.Load() {
		return ""
	}
	leakTrack.mu.Lock()
	pcs, ok := leakTrack.live[b]
	if !ok {
		pcs, ok = leakTrack.dead[b]
	}
	leakTrack.mu.Unlock()
	if !ok {
		return ""
	}
	return "; acquired at:\n" + formatStack(pcs)
}

// LeakRecord aggregates outstanding buffers acquired at the same site.
type LeakRecord struct {
	Site  string // formatted acquisition stack (innermost frames first)
	Count int    // buffers still outstanding from this site
}

// OutstandingCount returns the number of tracked buffers not yet
// Released. Zero when tracking is disabled.
func OutstandingCount() int {
	leakTrack.mu.Lock()
	defer leakTrack.mu.Unlock()
	return len(leakTrack.live)
}

// Outstanding returns the leak report: one record per distinct
// acquisition site, sorted by descending count then site. Symbolization
// happens here, not on the hot path.
func Outstanding() []LeakRecord {
	leakTrack.mu.Lock()
	stacks := make([][leakStackDepth]uintptr, 0, len(leakTrack.live))
	for _, pcs := range leakTrack.live {
		stacks = append(stacks, pcs)
	}
	leakTrack.mu.Unlock()

	byStack := make(map[[leakStackDepth]uintptr]int)
	for _, pcs := range stacks {
		byStack[pcs]++
	}
	recs := make([]LeakRecord, 0, len(byStack))
	for pcs, n := range byStack {
		recs = append(recs, LeakRecord{Site: formatStack(pcs), Count: n})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Count != recs[j].Count {
			return recs[i].Count > recs[j].Count
		}
		return recs[i].Site < recs[j].Site
	})
	return recs
}

// FormatLeakReport renders Outstanding as a human-readable report, or ""
// when nothing is outstanding.
func FormatLeakReport() string {
	recs := Outstanding()
	if len(recs) == 0 {
		return ""
	}
	var b strings.Builder
	total := 0
	for _, r := range recs {
		total += r.Count
	}
	fmt.Fprintf(&b, "%d outstanding pkt.Buf(s) at %d site(s):\n", total, len(recs))
	for _, r := range recs {
		fmt.Fprintf(&b, "  %d × acquired at:\n%s", r.Count, r.Site)
	}
	return b.String()
}

func formatStack(pcs [leakStackDepth]uintptr) string {
	n := 0
	for n < len(pcs) && pcs[n] != 0 {
		n++
	}
	if n == 0 {
		return "      (no stack)\n"
	}
	frames := runtime.CallersFrames(pcs[:n])
	var b strings.Builder
	for {
		f, more := frames.Next()
		if f.Function != "" {
			fmt.Fprintf(&b, "      %s\n        %s:%d\n", f.Function, f.File, f.Line)
		}
		if !more {
			break
		}
	}
	return b.String()
}
