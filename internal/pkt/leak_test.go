package pkt

import (
	"strings"
	"testing"
)

func TestPoolCountersAdvance(t *testing.T) {
	base := Counters()
	b := New(14, 100)
	c := b.Clone()
	b.Release()
	c.Release()
	got := Counters()
	if got.Gets-base.Gets != 2 {
		t.Fatalf("gets advanced by %d, want 2", got.Gets-base.Gets)
	}
	if got.Puts-base.Puts != 2 {
		t.Fatalf("puts advanced by %d, want 2", got.Puts-base.Puts)
	}
	if d := (got.Recycled - base.Recycled) + (got.HeapAllocs - base.HeapAllocs); d != 2 {
		t.Fatalf("recycled+heapAllocs advanced by %d, want 2", d)
	}
}

func TestLeakTrackingReportsSiteAndClearsOnRelease(t *testing.T) {
	SetLeakTracking(true)
	defer SetLeakTracking(false)

	leaked := New(0, 64)
	fine := New(0, 64)
	fine.Release()

	if n := OutstandingCount(); n != 1 {
		t.Fatalf("outstanding = %d, want 1", n)
	}
	recs := Outstanding()
	if len(recs) != 1 || recs[0].Count != 1 {
		t.Fatalf("unexpected records: %+v", recs)
	}
	if !strings.Contains(recs[0].Site, "leak_test.go") {
		t.Fatalf("acquisition site does not point at this test:\n%s", recs[0].Site)
	}
	if rep := FormatLeakReport(); !strings.Contains(rep, "1 outstanding") {
		t.Fatalf("unexpected report:\n%s", rep)
	}

	leaked.Release()
	if n := OutstandingCount(); n != 0 {
		t.Fatalf("outstanding after release = %d, want 0", n)
	}
	if rep := FormatLeakReport(); rep != "" {
		t.Fatalf("report should be empty, got:\n%s", rep)
	}
}

func TestLeakTrackingEnableResets(t *testing.T) {
	SetLeakTracking(true)
	b := New(0, 32) // deliberately leaked
	_ = b
	SetLeakTracking(true) // re-enable must reset
	defer SetLeakTracking(false)
	if n := OutstandingCount(); n != 0 {
		t.Fatalf("re-enable did not reset: outstanding = %d", n)
	}
	// Releasing a buffer acquired before the reset must be tolerated.
	b.Release()
}

func TestLeakTrackingOffIsCheapAndSilent(t *testing.T) {
	SetLeakTracking(false)
	b := New(0, 32)
	b.Release()
	if n := OutstandingCount(); n != 0 {
		t.Fatalf("outstanding with tracking off = %d, want 0", n)
	}
	if recs := Outstanding(); len(recs) != 0 {
		t.Fatalf("records with tracking off: %+v", recs)
	}
}
