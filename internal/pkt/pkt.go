// Package pkt provides the packet buffer used throughout the stack: a flat
// byte buffer with reserved headroom so that successive protocol layers can
// prepend their headers without copying (the classic mbuf/skbuff trick), plus
// the metadata that rides along with a packet through the simulation.
//
// Buffers come from a size-classed free list (see pool.go) and are returned
// to it with Release, so the steady-state packet path allocates nothing.
package pkt

import "fmt"

// Buf is a packet buffer. The valid packet bytes are data[off:]; the region
// data[:off] is headroom available for prepending headers.
type Buf struct {
	data     []byte
	off      int
	cls      int8 // storage size class; -1 when not pool-managed
	released bool
	refs     int32 // extra references beyond the owner; 0 = sole owner

	// Meta carries simulation-side metadata; it is not part of the bytes on
	// the wire.
	Meta Meta
}

// Meta is per-packet simulation metadata.
type Meta struct {
	// BQI is the AN1 buffer queue index parsed from (or to be written into)
	// the link header. Zero is the protected kernel default queue.
	BQI uint16

	// RxDev names the device the packet arrived on, for diagnostics.
	RxDev string

	// Corrupt marks a packet damaged by fault injection after any link CRC
	// would have been computed, to exercise checksum recovery paths.
	Corrupt bool
}

// New allocates a buffer with the given headroom and payload size. The
// payload region (and headroom) is zeroed, even when the storage is recycled.
func New(headroom, size int) *Buf {
	b := getBuf(headroom + size)
	zero(b.data)
	b.off = headroom
	return b
}

// FromBytes builds a buffer around a copy of p with the given headroom.
func FromBytes(headroom int, p []byte) *Buf {
	b := getBuf(headroom + len(p))
	zero(b.data[:headroom])
	copy(b.data[headroom:], p)
	b.off = headroom
	return b
}

// Bytes returns the valid packet bytes. The slice aliases the buffer;
// mutating it mutates the packet.
func (b *Buf) Bytes() []byte { return b.data[b.off:] }

// Len returns the number of valid packet bytes.
func (b *Buf) Len() int { return len(b.data) - b.off }

// Headroom returns the bytes available for Prepend.
func (b *Buf) Headroom() int { return b.off }

// Prepend grows the packet forward by n bytes and returns the new front
// region for the caller to fill in. It panics if headroom is exhausted —
// layers are expected to size headroom correctly, and silently reallocating
// would hide layering bugs.
func (b *Buf) Prepend(n int) []byte {
	if n > b.off {
		panic(fmt.Sprintf("pkt: prepend %d exceeds headroom %d", n, b.off))
	}
	b.off -= n
	return b.data[b.off : b.off+n]
}

// Strip removes n bytes from the front (consuming a header) and returns the
// removed region.
func (b *Buf) Strip(n int) []byte {
	if n > b.Len() {
		panic(fmt.Sprintf("pkt: strip %d exceeds length %d", n, b.Len()))
	}
	h := b.data[b.off : b.off+n]
	b.off += n
	return h
}

// Trim shortens the packet to n bytes, dropping the tail.
func (b *Buf) Trim(n int) {
	if n > b.Len() {
		panic(fmt.Sprintf("pkt: trim to %d exceeds length %d", n, b.Len()))
	}
	b.data = b.data[:b.off+n]
}

// Extend grows the packet by n bytes at the tail and returns the new, zeroed
// tail region. When spare storage capacity exists (the common case for
// pooled buffers, whose storage is a full size class) the growth is in
// place; otherwise the buffer migrates to a larger size class, growing
// geometrically so repeated extension is amortized O(1) instead of the old
// copy-everything-per-growth behaviour. Slices previously obtained from the
// buffer are invalidated by a migrating Extend.
func (b *Buf) Extend(n int) []byte {
	old := len(b.data)
	want := old + n
	if want <= cap(b.data) {
		b.data = b.data[:want]
		tail := b.data[old:]
		zero(tail)
		return tail
	}
	// Migrate to larger storage: at least double, so growth is geometric.
	newCap := 2 * cap(b.data)
	if newCap < want {
		newCap = want
	}
	cls := classFor(newCap)
	var nd []byte
	if cls >= 0 {
		pool.mu.Lock()
		if lst := pool.data[cls]; len(lst) > 0 {
			nd = lst[len(lst)-1]
			lst[len(lst)-1] = nil
			pool.data[cls] = lst[:len(lst)-1]
		}
		pool.mu.Unlock()
		if nd == nil {
			nd = make([]byte, classSizes[cls])
		}
	} else {
		nd = make([]byte, newCap)
	}
	nd = nd[:want]
	copy(nd, b.data)
	zero(nd[old:])
	putData(b.data, b.cls)
	b.data = nd
	b.cls = cls
	return nd[old:]
}

// Clone deep-copies the buffer, preserving headroom and metadata. Used by
// the wire for duplication faults and by devices that must retain a packet
// across retransmission. The clone is independently owned and must be
// Released separately.
func (b *Buf) Clone() *Buf {
	nb := getBuf(len(b.data))
	nb.off = b.off
	nb.Meta = b.Meta
	copy(nb.data, b.data)
	return nb
}

// Retain adds a reference to the buffer. Each reference must be balanced
// by its own Release; the storage returns to the pool only when the last
// reference releases. Retaining a released buffer panics — it would
// resurrect storage the pool may already have handed to someone else.
func (b *Buf) Retain() {
	if b.released {
		panic("pkt: Retain after Release" + leakSiteOf(b))
	}
	b.refs++
}

// Shared reports whether references beyond the owner's exist. A shared
// buffer must not be mutated in place (Strip/Trim/Extend/Prepend) — the
// other holders see the same bytes.
func (b *Buf) Shared() bool { return b.refs > 0 }

// Refs returns the number of extra references (0 = sole owner). For
// diagnostics and tests.
func (b *Buf) Refs() int { return int(b.refs) }

// Poison zeroes the packet bytes in place. Revocation paths use it so a
// distrusting or misbehaving tenant that is stripped of a buffer reference
// can never read data that arrived after its lease ended.
func (b *Buf) Poison() {
	if b.released {
		return
	}
	zero(b.data)
}
