// Package pkt provides the packet buffer used throughout the stack: a flat
// byte buffer with reserved headroom so that successive protocol layers can
// prepend their headers without copying (the classic mbuf/skbuff trick), plus
// the metadata that rides along with a packet through the simulation.
package pkt

import "fmt"

// Buf is a packet buffer. The valid packet bytes are data[off:]; the region
// data[:off] is headroom available for prepending headers.
type Buf struct {
	data []byte
	off  int

	// Meta carries simulation-side metadata; it is not part of the bytes on
	// the wire.
	Meta Meta
}

// Meta is per-packet simulation metadata.
type Meta struct {
	// BQI is the AN1 buffer queue index parsed from (or to be written into)
	// the link header. Zero is the protected kernel default queue.
	BQI uint16

	// RxDev names the device the packet arrived on, for diagnostics.
	RxDev string

	// Corrupt marks a packet damaged by fault injection after any link CRC
	// would have been computed, to exercise checksum recovery paths.
	Corrupt bool
}

// New allocates a buffer with the given headroom and payload size. The
// payload region is zeroed.
func New(headroom, size int) *Buf {
	return &Buf{data: make([]byte, headroom+size), off: headroom}
}

// FromBytes builds a buffer around a copy of p with the given headroom.
func FromBytes(headroom int, p []byte) *Buf {
	b := New(headroom, len(p))
	copy(b.Bytes(), p)
	return b
}

// Bytes returns the valid packet bytes. The slice aliases the buffer;
// mutating it mutates the packet.
func (b *Buf) Bytes() []byte { return b.data[b.off:] }

// Len returns the number of valid packet bytes.
func (b *Buf) Len() int { return len(b.data) - b.off }

// Headroom returns the bytes available for Prepend.
func (b *Buf) Headroom() int { return b.off }

// Prepend grows the packet forward by n bytes and returns the new front
// region for the caller to fill in. It panics if headroom is exhausted —
// layers are expected to size headroom correctly, and silently reallocating
// would hide layering bugs.
func (b *Buf) Prepend(n int) []byte {
	if n > b.off {
		panic(fmt.Sprintf("pkt: prepend %d exceeds headroom %d", n, b.off))
	}
	b.off -= n
	return b.data[b.off : b.off+n]
}

// Strip removes n bytes from the front (consuming a header) and returns the
// removed region.
func (b *Buf) Strip(n int) []byte {
	if n > b.Len() {
		panic(fmt.Sprintf("pkt: strip %d exceeds length %d", n, b.Len()))
	}
	h := b.data[b.off : b.off+n]
	b.off += n
	return h
}

// Trim shortens the packet to n bytes, dropping the tail.
func (b *Buf) Trim(n int) {
	if n > b.Len() {
		panic(fmt.Sprintf("pkt: trim to %d exceeds length %d", n, b.Len()))
	}
	b.data = b.data[:b.off+n]
}

// Clone deep-copies the buffer, preserving headroom and metadata. Used by
// the wire for duplication faults and by devices that must retain a packet
// across retransmission.
func (b *Buf) Clone() *Buf {
	nb := &Buf{data: make([]byte, len(b.data)), off: b.off, Meta: b.Meta}
	copy(nb.data, b.data)
	return nb
}
