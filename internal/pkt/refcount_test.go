package pkt

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// TestRetainKeepsStorageAlive verifies the refcount contract: with an extra
// reference held, one Release only decrements, the storage stays out of the
// free lists, and the final Release recycles it.
func TestRetainKeepsStorageAlive(t *testing.T) {
	drain()
	b := New(0, 100)
	stored := &b.data[0]
	for i := range b.Bytes() {
		b.Bytes()[i] = 0x7E
	}
	b.Retain()
	if !b.Shared() || b.Refs() != 1 {
		t.Fatalf("after Retain: Shared=%v Refs=%d, want true/1", b.Shared(), b.Refs())
	}

	b.Release() // consumer's reference
	if b.Shared() {
		t.Fatal("still shared after dropping one of two references")
	}
	// Storage must not have been recycled: an allocation of the same class
	// must not alias the retained buffer.
	other := New(0, 100)
	if &other.data[0] == stored {
		t.Fatal("retained buffer's storage was recycled early")
	}
	for _, v := range b.Bytes() {
		if v != 0x7E {
			t.Fatal("retained buffer's bytes damaged while a reference was live")
		}
	}
	other.Release()

	b.Release() // final reference frees
	c := New(0, 100)
	if &c.data[0] != stored {
		t.Fatal("final Release did not return storage to the free list")
	}
	c.Release()
}

// TestDoubleReleasePanicsWithSite verifies the over-release panic names the
// buffer's acquisition site when leak tracking is on — the graveyard keeps
// the site after the final Release exactly for this message.
func TestDoubleReleasePanicsWithSite(t *testing.T) {
	SetLeakTracking(true)
	defer SetLeakTracking(false)
	b := New(0, 16)
	b.Release()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double Release did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "released twice") {
			t.Fatalf("unexpected panic: %v", r)
		}
		if !strings.Contains(msg, "refcount_test.go") {
			t.Fatalf("panic does not name the acquisition site:\n%s", msg)
		}
	}()
	b.Release()
}

// TestRetainAfterReleasePanicsWithSite verifies resurrection is rejected —
// a released buffer's storage may already belong to someone else — and the
// panic names where the buffer came from.
func TestRetainAfterReleasePanicsWithSite(t *testing.T) {
	SetLeakTracking(true)
	defer SetLeakTracking(false)
	b := New(0, 16)
	b.Release()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Retain after Release did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "Retain after Release") {
			t.Fatalf("unexpected panic: %v", r)
		}
		if !strings.Contains(msg, "refcount_test.go") {
			t.Fatalf("panic does not name the acquisition site:\n%s", msg)
		}
	}()
	b.Retain()
}

// TestPoisonScrubs verifies revocation scrubbing: the bytes go to zero in
// place (every live reference sees the scrub), and poisoning an
// already-released buffer is a tolerated no-op.
func TestPoisonScrubs(t *testing.T) {
	b := FromBytes(4, []byte{1, 2, 3, 4})
	b.Retain()
	view := b.Bytes()
	b.Poison()
	if !bytes.Equal(view, []byte{0, 0, 0, 0}) {
		t.Fatalf("poisoned bytes = %v, want zeros", view)
	}
	b.Release()
	b.Release()
	b.Poison() // released: must not touch recycled storage, must not panic
}

// TestRefcountInterleavingSeeded is the fuzz-style lifecycle test riding
// the determinism suite's seeds: a seeded schedule retains and releases a
// buffer population in random interleavings, and whatever the order, the
// leak tracker must read zero outstanding at the end and the pool's
// get/put books must balance.
func TestRefcountInterleavingSeeded(t *testing.T) {
	for _, seed := range []int64{7, 42, 17} {
		rng := rand.New(rand.NewSource(seed))
		SetLeakTracking(true)
		base := Counters()

		// pending holds one entry per obligation to Release: buffers enter
		// with one (ownership) and gain one per Retain.
		var pending []*Buf
		gets := 0
		for step := 0; step < 2000; step++ {
			switch op := rng.Intn(4); {
			case op == 0 || len(pending) == 0:
				b := New(rng.Intn(40), rng.Intn(1400))
				gets++
				pending = append(pending, b)
			case op == 1:
				i := rng.Intn(len(pending))
				pending[i].Retain()
				pending = append(pending, pending[i])
			default:
				// Release a random obligation; swap-remove keeps the
				// schedule order-free.
				i := rng.Intn(len(pending))
				b := pending[i]
				pending[i] = pending[len(pending)-1]
				pending = pending[:len(pending)-1]
				b.Release()
			}
		}
		for _, b := range pending {
			b.Release()
		}

		if n := OutstandingCount(); n != 0 {
			t.Fatalf("seed %d: %d buffers outstanding:\n%s", seed, n, FormatLeakReport())
		}
		c := Counters()
		if got := c.Gets - base.Gets; got != int64(gets) {
			t.Fatalf("seed %d: pool gets %d, want %d", seed, got, gets)
		}
		if c.Puts-base.Puts != int64(gets) {
			t.Fatalf("seed %d: pool puts %d, want %d (refcounted releases must balance)", seed, c.Puts-base.Puts, gets)
		}
		SetLeakTracking(false)
	}
}
