package pkt

import (
	"sync"
	"sync/atomic"

	"ulp/internal/trace"
)

// poolBus, when set, receives PoolGet/PoolPut events. Process-global like
// the pool itself; the last world to enable tracing wins. Atomic so that a
// world enabling tracing on one goroutine is race-free with engine procs.
var poolBus atomic.Pointer[trace.Bus]

// SetTraceBus attaches (or, with nil, detaches) the trace bus that
// receives pool get/put events.
func SetTraceBus(b *trace.Bus) { poolBus.Store(b) }

// The allocator keeps per-size-class free lists of buffer storage and of Buf
// structs, so the steady-state packet path performs no heap allocation: a
// released buffer's storage is recycled by the next New/FromBytes/Clone of a
// compatible size. Classes cover the stack's real frame population — control
// segments (bare headers), Ethernet MTU frames, and AN1 jumbo frames.
//
// Lifecycle rules (see DESIGN.md §7c "Buffer ownership and zero-copy
// lifecycle"):
//
//   - Exactly one owner at a time. Passing a buffer to Transmit/Deliver
//     transfers ownership; cloning creates an independently owned copy.
//   - Retain adds an extra reference; each reference is balanced by its own
//     Release. The storage returns to the free list only when the final
//     reference releases, so a zero-copy channel can lien a buffer while the
//     application still reads it.
//   - The holder at a packet's death point calls Release. Releasing more
//     times than references exist, or touching a buffer (or any slice
//     obtained from it) after the final Release, is a lifecycle bug; the
//     extra release panics with the buffer's acquisition site when leak
//     tracking is on.
//   - Recycled storage is zeroed on reallocation, so a leaked reference can
//     never observe another packet's bytes and New's documented "payload
//     region is zeroed" contract holds.
//
// The free lists are guarded by a mutex (cheap, uncontended in the
// single-threaded engine; safe for parallel tests running multiple sims).

// classSizes are the storage capacities, smallest first. The largest covers
// a 64 KB AN1 jumbo frame plus link/IP/TCP headers and headroom slack.
var classSizes = [...]int{256, 2048, 16384, 66560}

type freeLists struct {
	mu   sync.Mutex
	data [len(classSizes)][][]byte
	bufs []*Buf

	// Lifetime counters for the stats layer, guarded by mu. Process-wide
	// (the pool is shared by every world in a process); consumers that
	// want per-scenario numbers snapshot a baseline and subtract.
	gets       int64
	puts       int64
	recycled   int64 // gets served from a free list
	heapAllocs int64 // gets that had to allocate storage
}

var pool freeLists

// PoolCounters is a snapshot of the allocator's lifetime activity.
type PoolCounters struct {
	Gets       int64 // buffers handed out
	Puts       int64 // buffers released
	Recycled   int64 // gets served by recycling free-list storage
	HeapAllocs int64 // gets that allocated fresh storage
}

// Counters returns the allocator's lifetime counters.
func Counters() PoolCounters {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	return PoolCounters{Gets: pool.gets, Puts: pool.puts, Recycled: pool.recycled, HeapAllocs: pool.heapAllocs}
}

// classFor returns the smallest class index fitting n bytes, or -1 when n
// exceeds every class (the buffer is then heap-allocated and not recycled).
func classFor(n int) int8 {
	for i, c := range classSizes {
		if n <= c {
			return int8(i)
		}
	}
	return -1
}

// getBuf produces a Buf whose storage holds at least size bytes, recycled
// when possible. data is sized to exactly size bytes and is NOT zeroed;
// callers overwrite or zero it.
func getBuf(size int) *Buf {
	cls := classFor(size)
	var b *Buf
	var data []byte
	pool.mu.Lock()
	pool.gets++
	if n := len(pool.bufs); n > 0 {
		b = pool.bufs[n-1]
		pool.bufs[n-1] = nil
		pool.bufs = pool.bufs[:n-1]
	}
	if cls >= 0 {
		if lst := pool.data[cls]; len(lst) > 0 {
			data = lst[len(lst)-1]
			lst[len(lst)-1] = nil
			pool.data[cls] = lst[:len(lst)-1]
		}
	}
	if data != nil {
		pool.recycled++
	} else {
		pool.heapAllocs++
	}
	pool.mu.Unlock()
	if data == nil {
		if cls >= 0 {
			data = make([]byte, classSizes[cls])
		} else {
			data = make([]byte, size)
		}
	}
	if b == nil {
		b = &Buf{}
	}
	*b = Buf{data: data[:size], cls: cls}
	leakTrackGet(b)
	if bus := poolBus.Load(); bus.Enabled() {
		bus.Emit(trace.Event{Kind: trace.PoolGet, A: int64(size)})
	}
	return b
}

// putData returns a storage slice of class cls to its free list.
func putData(data []byte, cls int8) {
	if cls < 0 {
		return
	}
	data = data[:cap(data)]
	pool.mu.Lock()
	pool.data[cls] = append(pool.data[cls], data)
	pool.mu.Unlock()
}

// Release drops one reference. While extra references exist (Retain), it
// only decrements; the final Release returns the storage to the allocator,
// after which the caller must not touch the buffer (or any slice obtained
// from it). Releasing past the final reference panics: it would hand the
// same storage to two owners.
func (b *Buf) Release() {
	if b.released {
		panic("pkt: buffer released twice" + leakSiteOf(b))
	}
	if b.refs > 0 {
		b.refs--
		return
	}
	b.released = true
	data, cls := b.data, b.cls
	size := len(data)
	b.data = nil
	leakTrackPut(b)
	pool.mu.Lock()
	pool.puts++
	if cls >= 0 {
		pool.data[cls] = append(pool.data[cls], data[:cap(data)])
	}
	pool.bufs = append(pool.bufs, b)
	pool.mu.Unlock()
	if bus := poolBus.Load(); bus.Enabled() {
		bus.Emit(trace.Event{Kind: trace.PoolPut, A: int64(size)})
	}
}

// zero clears p (the compiler lowers this loop to memclr).
func zero(p []byte) {
	for i := range p {
		p[i] = 0
	}
}
