// Package link defines the byte-exact link-layer frame formats of the two
// simulated networks:
//
//   - Ethernet II (DIX) framing for the 10 Mb/s Ethernet: destination and
//     source station addresses plus an EtherType. As the paper notes, "the
//     link-level Ethernet header only identifies the station address and the
//     packet type", which is why software demultiplexing is required.
//   - AN1 framing for the 100 Mb/s DEC SRC AN1: Ethernet-style addressing
//     plus a 16-bit buffer queue index (BQI) carried in an otherwise unused
//     link-header field. The BQI indexes a table of receive rings in the
//     controller, providing protocol-independent hardware demultiplexing.
package link

import (
	"encoding/binary"
	"fmt"

	"ulp/internal/pkt"
)

// Addr is a 48-bit station address, shared by both networks (the AN1 driver
// in the paper encapsulates Ethernet-format datagrams).
type Addr [6]byte

// Broadcast is the all-stations address.
var Broadcast = Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String formats the address in the usual colon-separated hex form.
func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// IsBroadcast reports whether a is the broadcast address.
func (a Addr) IsBroadcast() bool { return a == Broadcast }

// EtherType identifies the encapsulated protocol.
type EtherType uint16

// EtherTypes used by this stack.
const (
	TypeIPv4 EtherType = 0x0800
	TypeARP  EtherType = 0x0806
	// TypeRaw is used by the Table 1 mechanism micro-benchmark, which
	// exchanges data over the raw mechanisms with no higher-level protocol.
	TypeRaw EtherType = 0x88b5 // IEEE local experimental
)

// Frame header sizes and payload limits.
const (
	EthHeaderLen = 14
	// AN1HeaderLen covers dst(6) src(6) bqi(2) advbqi(2) type(2). BQI
	// selects the destination receive ring; AdvBQI is the otherwise unused
	// field the registry servers use to exchange data-phase BQIs during
	// connection setup ("it then inserts the BQI into an unused field in
	// the AN1 link header which is extracted by the remote server").
	AN1HeaderLen = 18

	// EthMTU is the maximum Ethernet payload.
	EthMTU = 1500
	// EthMinPayload is the minimum payload (frames are padded to 60 bytes
	// before the FCS).
	EthMinPayload = 46

	// AN1EncapMTU is the AN1 payload limit with the paper's driver, which
	// "encapsulates data into an Ethernet datagram and restricts network
	// transmissions to 1500-byte packets".
	AN1EncapMTU = 1500
	// AN1MaxMTU is the hardware limit ("maximum sized AN1 packets ... can
	// be as large as 64K bytes"), available as an extension/ablation.
	AN1MaxMTU = 65535
)

// EthHeader is a decoded Ethernet II header.
type EthHeader struct {
	Dst, Src Addr
	Type     EtherType
}

// Encode prepends the header onto b.
func (h *EthHeader) Encode(b *pkt.Buf) {
	w := b.Prepend(EthHeaderLen)
	copy(w[0:6], h.Dst[:])
	copy(w[6:12], h.Src[:])
	binary.BigEndian.PutUint16(w[12:14], uint16(h.Type))
}

// DecodeEth strips and decodes an Ethernet header from b.
func DecodeEth(b *pkt.Buf) (EthHeader, error) {
	if b.Len() < EthHeaderLen {
		return EthHeader{}, fmt.Errorf("link: short ethernet frame (%d bytes)", b.Len())
	}
	w := b.Strip(EthHeaderLen)
	var h EthHeader
	copy(h.Dst[:], w[0:6])
	copy(h.Src[:], w[6:12])
	h.Type = EtherType(binary.BigEndian.Uint16(w[12:14]))
	return h, nil
}

// PeekEth decodes without consuming, for in-kernel demultiplexers that must
// leave the frame intact for delivery.
func PeekEth(b *pkt.Buf) (EthHeader, error) {
	if b.Len() < EthHeaderLen {
		return EthHeader{}, fmt.Errorf("link: short ethernet frame (%d bytes)", b.Len())
	}
	w := b.Bytes()
	var h EthHeader
	copy(h.Dst[:], w[0:6])
	copy(h.Src[:], w[6:12])
	h.Type = EtherType(binary.BigEndian.Uint16(w[12:14]))
	return h, nil
}

// AN1Header is a decoded AN1 link header. BQI rides in the link header so
// the controller can demultiplex without understanding higher layers.
type AN1Header struct {
	Dst, Src Addr
	BQI      uint16
	// AdvBQI advertises the sender's own data-phase receive ring during
	// connection setup; zero otherwise.
	AdvBQI uint16
	Type   EtherType
}

// Encode prepends the header onto b.
func (h *AN1Header) Encode(b *pkt.Buf) {
	w := b.Prepend(AN1HeaderLen)
	copy(w[0:6], h.Dst[:])
	copy(w[6:12], h.Src[:])
	binary.BigEndian.PutUint16(w[12:14], h.BQI)
	binary.BigEndian.PutUint16(w[14:16], h.AdvBQI)
	binary.BigEndian.PutUint16(w[16:18], uint16(h.Type))
}

// DecodeAN1 strips and decodes an AN1 header from b.
func DecodeAN1(b *pkt.Buf) (AN1Header, error) {
	if b.Len() < AN1HeaderLen {
		return AN1Header{}, fmt.Errorf("link: short AN1 frame (%d bytes)", b.Len())
	}
	w := b.Strip(AN1HeaderLen)
	var h AN1Header
	copy(h.Dst[:], w[0:6])
	copy(h.Src[:], w[6:12])
	h.BQI = binary.BigEndian.Uint16(w[12:14])
	h.AdvBQI = binary.BigEndian.Uint16(w[14:16])
	h.Type = EtherType(binary.BigEndian.Uint16(w[16:18]))
	return h, nil
}

// PeekAN1 decodes without consuming.
func PeekAN1(b *pkt.Buf) (AN1Header, error) {
	if b.Len() < AN1HeaderLen {
		return AN1Header{}, fmt.Errorf("link: short AN1 frame (%d bytes)", b.Len())
	}
	w := b.Bytes()
	var h AN1Header
	copy(h.Dst[:], w[0:6])
	copy(h.Src[:], w[6:12])
	h.BQI = binary.BigEndian.Uint16(w[12:14])
	h.AdvBQI = binary.BigEndian.Uint16(w[14:16])
	h.Type = EtherType(binary.BigEndian.Uint16(w[16:18]))
	return h, nil
}

// MakeAddr builds a deterministic station address from a small host index,
// used when constructing simulated networks.
func MakeAddr(index int) Addr {
	return Addr{0x08, 0x00, 0x2b, 0x00, byte(index >> 8), byte(index)} // DEC OUI
}
