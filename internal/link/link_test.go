package link

import (
	"bytes"
	"testing"
	"testing/quick"

	"ulp/internal/pkt"
)

func TestEthGolden(t *testing.T) {
	h := EthHeader{
		Dst:  Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		Src:  Addr{0x08, 0x00, 0x2b, 0x01, 0x02, 0x03},
		Type: TypeARP,
	}
	b := pkt.FromBytes(EthHeaderLen, []byte{0xde, 0xad})
	h.Encode(b)
	want := []byte{
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
		0x08, 0x00, 0x2b, 0x01, 0x02, 0x03,
		0x08, 0x06,
		0xde, 0xad,
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("encoded frame = %x, want %x", b.Bytes(), want)
	}
	got, err := DecodeEth(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("decoded %+v, want %+v", got, h)
	}
	if !bytes.Equal(b.Bytes(), []byte{0xde, 0xad}) {
		t.Fatalf("payload after decode = %x", b.Bytes())
	}
}

func TestAN1Golden(t *testing.T) {
	h := AN1Header{
		Dst:    MakeAddr(2),
		Src:    MakeAddr(1),
		BQI:    0x0102,
		AdvBQI: 0x0a0b,
		Type:   TypeIPv4,
	}
	b := pkt.FromBytes(AN1HeaderLen, []byte{1, 2, 3})
	h.Encode(b)
	want := []byte{
		0x08, 0x00, 0x2b, 0x00, 0x00, 0x02,
		0x08, 0x00, 0x2b, 0x00, 0x00, 0x01,
		0x01, 0x02,
		0x0a, 0x0b,
		0x08, 0x00,
		1, 2, 3,
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("encoded frame = %x, want %x", b.Bytes(), want)
	}
	got, err := DecodeAN1(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("decoded %+v, want %+v", got, h)
	}
}

func TestShortFrames(t *testing.T) {
	if _, err := DecodeEth(pkt.FromBytes(0, make([]byte, 13))); err == nil {
		t.Fatal("expected error for short ethernet frame")
	}
	if _, err := DecodeAN1(pkt.FromBytes(0, make([]byte, 17))); err == nil {
		t.Fatal("expected error for short AN1 frame")
	}
	if _, err := PeekEth(pkt.FromBytes(0, nil)); err == nil {
		t.Fatal("expected error peeking empty frame")
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	h := EthHeader{Dst: MakeAddr(1), Src: MakeAddr(2), Type: TypeIPv4}
	b := pkt.FromBytes(EthHeaderLen, []byte("xyz"))
	h.Encode(b)
	before := b.Len()
	got, err := PeekEth(b)
	if err != nil || got != h {
		t.Fatalf("peek = %+v, %v", got, err)
	}
	if b.Len() != before {
		t.Fatal("peek consumed bytes")
	}
}

func TestEthRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(dst, src [6]byte, typ uint16, payload []byte) bool {
		h := EthHeader{Dst: dst, Src: src, Type: EtherType(typ)}
		b := pkt.FromBytes(EthHeaderLen, payload)
		h.Encode(b)
		got, err := DecodeEth(b)
		return err == nil && got == h && bytes.Equal(b.Bytes(), payload)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAN1RoundTripProperty(t *testing.T) {
	if err := quick.Check(func(dst, src [6]byte, bqi, adv, typ uint16, payload []byte) bool {
		h := AN1Header{Dst: dst, Src: src, BQI: bqi, AdvBQI: adv, Type: EtherType(typ)}
		b := pkt.FromBytes(AN1HeaderLen, payload)
		h.Encode(b)
		got, err := DecodeAN1(b)
		return err == nil && got == h && bytes.Equal(b.Bytes(), payload)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcast(t *testing.T) {
	if !Broadcast.IsBroadcast() {
		t.Fatal("Broadcast.IsBroadcast() = false")
	}
	if MakeAddr(1).IsBroadcast() {
		t.Fatal("unicast address reported as broadcast")
	}
	if MakeAddr(1) == MakeAddr(2) {
		t.Fatal("MakeAddr not unique per index")
	}
	if MakeAddr(3).String() != "08:00:2b:00:00:03" {
		t.Fatalf("String = %s", MakeAddr(3).String())
	}
}
