package wire

import (
	"time"

	"ulp/internal/link"
	"ulp/internal/sim"
	"ulp/internal/trace"
)

// SwitchConfig turns a non-shared segment into a store-and-forward
// learning switch: every station attaches to its own switch port, frames
// cross the ingress link, pay a fixed switching latency, and queue on the
// destination port's egress link. Two flows between disjoint host pairs
// no longer contend — the property that lets a many-host world scale past
// what one shared medium serializes.
//
// The switch learns source addresses as frames arrive. A unicast frame
// whose destination has not yet transmitted floods every port (the
// stations' MAC filters discard the copies they did not want), exactly
// once per miss; after the destination's first transmission its frames
// take the single learned port.
type SwitchConfig struct {
	// Latency is the per-frame store-and-forward plus lookup delay.
	Latency time.Duration

	// PortBitsPerSec is the egress port signalling rate; 0 uses the
	// segment's BitsPerSec (a non-blocking fabric with matched ports).
	PortBitsPerSec int64

	// MacTTL ages learned MAC entries: an entry whose source has not
	// transmitted for MacTTL is treated as a miss (the frame floods and
	// the address re-learns). 0 uses DefaultMacTTL. Without aging, a
	// crashed host's entry steers frames to a dead port forever.
	MacTTL time.Duration
}

// DefaultMacTTL matches the classic bridge address-table timeout.
const DefaultMacTTL = 60 * time.Second

// macEntry is one learned address: the egress station and the virtual time
// of the last frame seen from it.
type macEntry struct {
	st   Station
	seen sim.Time
}

// NewSwitched creates a switched segment. The base configuration must be
// non-shared (each station already owns its ingress serialization).
func NewSwitched(s *sim.Sim, cfg Config, sw SwitchConfig) *Segment {
	if cfg.Shared {
		panic("wire: switched fabric requires a non-shared segment")
	}
	g := New(s, cfg)
	swc := sw
	if swc.MacTTL == 0 {
		swc.MacTTL = DefaultMacTTL
	}
	g.sw = &swc
	g.macPort = make(map[link.Addr]macEntry)
	g.egress = make(map[link.Addr]*sim.Resource)
	return g
}

// Switched reports whether the segment runs a learning switch.
func (g *Segment) Switched() bool { return g.sw != nil }

// SwitchStats reports learned table size and forwarding counters:
// switched frames took a single learned port, flooded frames were unicast
// misses copied to every port.
func (g *Segment) SwitchStats() (learned, switched, flooded int) {
	return len(g.macPort), g.framesSwitched, g.framesFlooded
}

func switchCB(a any) {
	f := a.(*inflight)
	f.g.forward(f)
}

// forward runs at the switch after the ingress hop: learn (or refresh)
// the source, then unicast out the learned port or flood. Re-stamping on
// every frame keeps an active station's entry alive and re-points it when
// the address reappears behind a different port (host restart); a learned
// entry older than MacTTL is treated as a miss and lazily deleted, so the
// flood/re-learn path runs instead of steering into a dead port.
func (g *Segment) forward(f *inflight) {
	src, dst := f.src, f.dst
	now := g.s.Now()
	if st, here := g.stations[src]; here {
		g.macPort[src] = macEntry{st: st, seen: now}
	}
	if !dst.IsBroadcast() {
		if e, ok := g.macPort[dst]; ok {
			if now.Sub(e.seen) <= g.sw.MacTTL {
				g.framesSwitched++
				f.st = e.st
				g.egressSend(f)
				return
			}
			delete(g.macPort, dst) // aged out: fall through to flood
		}
		g.framesFlooded++
	}
	g.flood(f)
}

// flood copies the frame to every port except the ingress one, in attach
// order; the last recipient takes ownership of the original buffer. A
// frame someone else still references (zero-copy lien) is cloned for every
// recipient instead — stations strip headers in place, so a shared buffer
// must never be handed over — and our reference is dropped.
func (g *Segment) flood(f *inflight) {
	src, dst, b := f.src, f.dst, f.b
	f.put()
	last := -1
	for i, st := range g.order {
		if st.Addr() != src {
			last = i
		}
	}
	if last < 0 {
		b.Release()
		return
	}
	shared := b.Shared()
	for i, st := range g.order {
		if st.Addr() == src {
			continue
		}
		fb := b
		if i != last || shared {
			fb = b.Clone()
		}
		d := inflightPool.Get().(*inflight)
		*d = inflight{g: g, src: src, dst: dst, b: fb, st: st}
		g.egressSend(d)
	}
	if shared {
		b.Release()
	}
}

// egressSend serializes the frame onto the destination port's egress link
// and schedules final delivery after the port-to-station propagation.
func (g *Segment) egressSend(f *inflight) {
	rate := g.sw.PortBitsPerSec
	if rate == 0 {
		rate = g.cfg.BitsPerSec
	}
	bits := int64(f.b.Len()+g.cfg.FrameOverhead) * 8
	tx := time.Duration(bits * int64(time.Second) / rate)
	res := g.egress[f.st.Addr()]
	res.UseAsyncArg(tx, egressCB, f)
}

func egressCB(a any) {
	f := a.(*inflight)
	f.g.s.AfterArg(f.g.cfg.Propagation, switchedDeliverCB, f)
}

func switchedDeliverCB(a any) {
	f := a.(*inflight)
	g, st, b := f.g, f.st, f.b
	f.put()
	b.Meta.RxDev = g.cfg.Name
	if g.Bus.Enabled() {
		g.Bus.Emit(trace.Event{Kind: trace.FrameRx, Node: g.cfg.Name,
			Conn: st.Addr().String(), A: int64(b.Len()), Frame: b.Bytes()})
	}
	st.Deliver(b)
}
