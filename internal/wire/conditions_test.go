package wire

import (
	"testing"
	"time"

	"ulp/internal/link"
	"ulp/internal/pkt"
	"ulp/internal/sim"
)

// blast sends n small frames a→b spaced apart so the shared medium never
// queues them, and returns the delivery count.
func blast(s *sim.Sim, g *Segment, a, b *fakeStation, n int, gap time.Duration) {
	for i := 0; i < n; i++ {
		i := i
		s.After(time.Duration(i)*gap, func() {
			g.Transmit(a.addr, b.addr, pkt.FromBytes(0, []byte{byte(i)}))
		})
	}
	s.Run(0)
}

func TestConditionsNilIsPassThrough(t *testing.T) {
	s, g, a, b := setup(EthernetConfig())
	g.SetConditions(nil)
	g.SetConditions(&LinkConditions{}) // inactive plan must also clear
	blast(s, g, a, b, 10, time.Millisecond)
	if len(b.got) != 10 {
		t.Fatalf("delivered %d of 10 with no conditions", len(b.got))
	}
	if g.cond != nil {
		t.Fatal("inactive plan left a conditions layer installed")
	}
}

func TestGilbertElliottBurstsAndDeterminism(t *testing.T) {
	run := func() (delivered int, st CondStats) {
		s, g, a, b := setup(EthernetConfig())
		g.SetConditions(&LinkConditions{
			Seed: 7,
			Burst: &GilbertElliott{
				PGoodBad: 0.05, PBadGood: 0.2,
				LossGood: 0.0, LossBad: 0.9,
			},
		})
		blast(s, g, a, b, 500, 500*time.Microsecond)
		return len(b.got), g.ConditionStats()
	}
	d1, st1 := run()
	d2, st2 := run()
	if d1 != d2 || st1 != st2 {
		t.Fatalf("GE model not deterministic: %d/%+v vs %d/%+v", d1, st1, d2, st2)
	}
	if st1.BurstDrops == 0 || st1.BadStateFrames == 0 {
		t.Fatalf("no burst losses observed: %+v", st1)
	}
	if st1.BurstDrops == 500 {
		t.Fatal("every frame lost; burst model stuck in Bad state")
	}
	// Losses must be correlated: with LossGood=0, every drop happened in a
	// Bad-state visit, so drops can't exceed Bad-state frames.
	if st1.BurstDrops > st1.BadStateFrames {
		t.Fatalf("drops %d exceed Bad-state frames %d", st1.BurstDrops, st1.BadStateFrames)
	}
}

func TestAsymmetricPathShape(t *testing.T) {
	s, g, a, b := setup(EthernetConfig())
	g.SetConditions(&LinkConditions{
		Seed:    1,
		Forward: &PathShape{ExtraDelay: 5 * time.Millisecond},
		Reverse: &PathShape{LossProb: 1.0},
	})
	g.Transmit(a.addr, b.addr, pkt.FromBytes(0, []byte{1})) // forward: delayed
	g.Transmit(b.addr, a.addr, pkt.FromBytes(0, []byte{2})) // reverse: lost
	s.Run(0)
	if len(b.got) != 1 || len(a.got) != 0 {
		t.Fatalf("deliveries a=%d b=%d; want forward through, reverse lost", len(a.got), len(b.got))
	}
	if b.arrivals[0] < sim.Time(5*time.Millisecond) {
		t.Fatalf("forward frame arrived at %v, want >= 5ms extra delay", b.arrivals[0])
	}
	if st := g.ConditionStats(); st.PathDrops != 1 {
		t.Fatalf("PathDrops = %d, want 1", st.PathDrops)
	}
}

func TestPartitionWindowSeversOnlyCut(t *testing.T) {
	s := sim.New()
	g := New(s, EthernetConfig())
	a := &fakeStation{addr: link.MakeAddr(1), s: s}
	b := &fakeStation{addr: link.MakeAddr(2), s: s}
	c := &fakeStation{addr: link.MakeAddr(3), s: s}
	g.Attach(a)
	g.Attach(b)
	g.Attach(c)
	g.SetConditions(&LinkConditions{
		Partitions: []PartitionWindow{{
			Window: Window{From: 10 * time.Millisecond, Until: 20 * time.Millisecond},
			Hosts:  []link.Addr{a.addr},
		}},
	})
	at := func(d time.Duration, src, dst link.Addr, tag byte) {
		s.After(d, func() { g.Transmit(src, dst, pkt.FromBytes(0, []byte{tag})) })
	}
	at(0, a.addr, b.addr, 1)                   // before window: delivered
	at(12*time.Millisecond, a.addr, b.addr, 2) // crosses cut: dropped
	at(14*time.Millisecond, b.addr, c.addr, 3) // same side: delivered
	at(25*time.Millisecond, a.addr, b.addr, 4) // healed: delivered
	s.Run(0)
	if len(b.got) != 2 || len(c.got) != 1 {
		t.Fatalf("deliveries b=%d c=%d; want 2,1", len(b.got), len(c.got))
	}
	if b.got[0].Bytes()[0] != 1 || b.got[1].Bytes()[0] != 4 {
		t.Fatalf("b received %d,%d; want 1,4", b.got[0].Bytes()[0], b.got[1].Bytes()[0])
	}
	if st := g.ConditionStats(); st.PartitionDrops != 1 {
		t.Fatalf("PartitionDrops = %d, want 1", st.PartitionDrops)
	}
}

func TestBlackholeAndPermanentWindow(t *testing.T) {
	s, g, a, b := setup(EthernetConfig())
	// Empty Hosts = whole-segment blackhole; Until 0 = never heals.
	g.SetConditions(&LinkConditions{
		Partitions: []PartitionWindow{{Window: Window{From: 5 * time.Millisecond}}},
	})
	g.Transmit(a.addr, b.addr, pkt.FromBytes(0, []byte{1}))
	s.After(10*time.Millisecond, func() {
		g.Transmit(a.addr, b.addr, pkt.FromBytes(0, []byte{2}))
	})
	s.After(10*time.Second, func() {
		g.Transmit(b.addr, a.addr, pkt.FromBytes(0, []byte{3}))
	})
	s.Run(0)
	if len(b.got) != 1 || len(a.got) != 0 {
		t.Fatalf("deliveries a=%d b=%d; want only the pre-blackhole frame", len(a.got), len(b.got))
	}
}

func TestFlapSchedule(t *testing.T) {
	s, g, a, b := setup(EthernetConfig())
	g.SetConditions(&LinkConditions{
		Flaps: []Window{
			{From: 10 * time.Millisecond, Until: 20 * time.Millisecond},
			{From: 30 * time.Millisecond, Until: 40 * time.Millisecond},
		},
	})
	for _, d := range []time.Duration{5, 15, 25, 35, 45} {
		d := d * time.Millisecond
		s.After(d, func() { g.Transmit(a.addr, b.addr, pkt.FromBytes(0, []byte{byte(d / time.Millisecond)})) })
	}
	s.Run(0)
	if len(b.got) != 3 {
		t.Fatalf("delivered %d frames, want 3 (up/down/up/down/up)", len(b.got))
	}
	for i, want := range []byte{5, 25, 45} {
		if got := b.got[i].Bytes()[0]; got != want {
			t.Errorf("delivery %d = frame at %dms, want %dms", i, got, want)
		}
	}
	if st := g.ConditionStats(); st.FlapDrops != 2 {
		t.Fatalf("FlapDrops = %d, want 2", st.FlapDrops)
	}
}

func TestQueueModelDelaysAndTailDrops(t *testing.T) {
	s, g, a, b := setup(AN1Config())
	// 1 Mb/s bottleneck: a 100B+16B frame takes 928µs of service time.
	g.SetConditions(&LinkConditions{
		Queue: &QueueModel{RateBitsPerSec: 1_000_000, MaxFrames: 3},
	})
	for i := 0; i < 5; i++ {
		g.Transmit(a.addr, b.addr, pkt.FromBytes(0, make([]byte, 100)))
	}
	s.Run(0)
	st := g.ConditionStats()
	if len(b.got) != 3 || st.QueueDrops != 2 {
		t.Fatalf("delivered %d, tail-dropped %d; want 3 and 2", len(b.got), st.QueueDrops)
	}
	if st.QueuedFrames == 0 {
		t.Fatal("no frame recorded queueing delay")
	}
	// Departures are serialized at the bottleneck rate: consecutive
	// deliveries must be >= one service time apart.
	svc := sim.Time((100 + 16) * 8 * time.Second / 1_000_000)
	for i := 1; i < len(b.arrivals); i++ {
		if got := b.arrivals[i] - b.arrivals[i-1]; got < svc {
			t.Fatalf("deliveries %d..%d only %v apart, want >= %v", i-1, i, got, svc)
		}
	}
	// Queue occupancy must fully drain.
	if g.cond.qLen != 0 {
		t.Fatalf("queue length %d after drain, want 0", g.cond.qLen)
	}
}

// TestConditionsComposeWithFaults checks the layering contract: conditions
// see only frames that survive the Faults layer, and the Faults RNG draw
// sequence is identical with conditions on or off.
func TestConditionsComposeWithFaults(t *testing.T) {
	run := func(withCond bool) (survivors []byte) {
		s, g, a, b := setup(EthernetConfig())
		g.SetFaults(Faults{Seed: 42, LossProb: 0.3})
		if withCond {
			g.SetConditions(&LinkConditions{
				Seed:  9,
				Burst: &GilbertElliott{PGoodBad: 1.0, PBadGood: 0.0, LossBad: 0.0},
			})
		}
		blast(s, g, a, b, 50, time.Millisecond)
		for _, f := range b.got {
			survivors = append(survivors, f.Bytes()[0])
		}
		return
	}
	plain := run(false)
	layered := run(true)
	// The GE plan above transitions state but never drops, so the exact
	// same frames must survive: any difference means the conditions layer
	// perturbed the Faults draws.
	if len(plain) != len(layered) {
		t.Fatalf("survivor count %d vs %d with pass-through conditions", len(plain), len(layered))
	}
	for i := range plain {
		if plain[i] != layered[i] {
			t.Fatalf("survivor %d differs (%d vs %d): conditions shifted Faults RNG", i, plain[i], layered[i])
		}
	}
}

func TestReorderCounterAndStats(t *testing.T) {
	s, g, a, b := setup(AN1Config())
	g.SetFaults(Faults{Seed: 1, ReorderProb: 1.0, ReorderDelay: time.Millisecond})
	g.Transmit(a.addr, b.addr, pkt.FromBytes(0, []byte{1}))
	s.Run(0)
	_, _, _, _, reordered, _ := g.Stats()
	if reordered != 1 {
		t.Fatalf("framesReordered = %d, want 1", reordered)
	}
}
