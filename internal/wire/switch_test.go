package wire

import (
	"fmt"
	"testing"
	"time"

	"ulp/internal/link"
	"ulp/internal/pkt"
	"ulp/internal/sim"
)

func setupSwitch(n int, sw SwitchConfig) (*sim.Sim, *Segment, []*fakeStation) {
	s := sim.New()
	g := NewSwitched(s, AN1Config(), sw)
	sts := make([]*fakeStation, n)
	for i := range sts {
		sts[i] = &fakeStation{addr: link.MakeAddr(i + 1), s: s}
		g.Attach(sts[i])
	}
	return s, g, sts
}

// TestSwitchLearningAndFlood: the first unicast to an unseen destination
// floods every port; once the destination transmits, frames take only its
// learned port.
func TestSwitchLearningAndFlood(t *testing.T) {
	s, g, sts := setupSwitch(4, SwitchConfig{})
	a, b, c, d := sts[0], sts[1], sts[2], sts[3]

	// b has never transmitted: a's frame floods to b, c and d.
	g.Transmit(a.addr, b.addr, pkt.FromBytes(0, make([]byte, 100)))
	s.Run(0)
	for _, st := range []*fakeStation{b, c, d} {
		if len(st.got) != 1 {
			t.Fatalf("station %s got %d frames from flood, want 1", st.addr, len(st.got))
		}
	}
	if len(a.got) != 0 {
		t.Fatal("flood must not reflect back out the ingress port")
	}
	if learned, switched, flooded := g.SwitchStats(); learned != 1 || switched != 0 || flooded != 1 {
		t.Fatalf("stats learned/switched/flooded = %d/%d/%d, want 1/0/1", learned, switched, flooded)
	}

	// b replies: the switch learns b, and a's next frame goes only to b.
	g.Transmit(b.addr, a.addr, pkt.FromBytes(0, make([]byte, 100)))
	s.Run(0)
	g.Transmit(a.addr, b.addr, pkt.FromBytes(0, make([]byte, 100)))
	s.Run(0)
	if len(b.got) != 2 || len(c.got) != 1 || len(d.got) != 1 {
		t.Fatalf("after learning: b/c/d got %d/%d/%d, want 2/1/1",
			len(b.got), len(c.got), len(d.got))
	}
	if learned, switched, flooded := g.SwitchStats(); learned != 2 || switched != 2 || flooded != 1 {
		t.Fatalf("stats learned/switched/flooded = %d/%d/%d, want 2/2/1", learned, switched, flooded)
	}
}

// TestSwitchBroadcast: broadcasts reach every station except the sender
// and do not populate the learning table with the broadcast address.
func TestSwitchBroadcast(t *testing.T) {
	s, g, sts := setupSwitch(3, SwitchConfig{})
	g.Transmit(sts[0].addr, link.Broadcast, pkt.FromBytes(0, make([]byte, 64)))
	s.Run(0)
	if len(sts[0].got) != 0 || len(sts[1].got) != 1 || len(sts[2].got) != 1 {
		t.Fatalf("broadcast delivery %d/%d/%d, want 0/1/1",
			len(sts[0].got), len(sts[1].got), len(sts[2].got))
	}
	if learned, _, _ := g.SwitchStats(); learned != 1 {
		t.Fatalf("learned = %d, want 1 (source only)", learned)
	}
}

// TestSwitchNoContentionAcrossPairs: disjoint host pairs transmitting
// simultaneously see identical latency — the property the shared wire
// cannot provide and the reason many-host worlds use the switch.
func TestSwitchNoContentionAcrossPairs(t *testing.T) {
	s, g, sts := setupSwitch(4, SwitchConfig{})
	// Prime the learning table so both flows are unicast-switched.
	for i, st := range sts {
		g.Transmit(st.addr, sts[i^1].addr, pkt.FromBytes(0, make([]byte, 10)))
		s.Run(0)
	}
	for _, st := range sts {
		st.got, st.arrivals = nil, nil
	}
	g.Transmit(sts[0].addr, sts[1].addr, pkt.FromBytes(0, make([]byte, 1500)))
	g.Transmit(sts[2].addr, sts[3].addr, pkt.FromBytes(0, make([]byte, 1500)))
	s.Run(0)
	if sts[1].arrivals[0] != sts[3].arrivals[0] {
		t.Fatalf("disjoint pairs contended: %v vs %v", sts[1].arrivals[0], sts[3].arrivals[0])
	}
}

// TestSwitchEgressContention: two frames converging on one destination
// serialize on that port's egress link, arriving one tx-time apart.
func TestSwitchEgressContention(t *testing.T) {
	s, g, sts := setupSwitch(3, SwitchConfig{})
	// Let the switch learn station 0 so both frames are unicast-switched.
	g.Transmit(sts[0].addr, sts[1].addr, pkt.FromBytes(0, make([]byte, 10)))
	s.Run(0)
	sts[1].got, sts[2].got = nil, nil

	g.Transmit(sts[1].addr, sts[0].addr, pkt.FromBytes(0, make([]byte, 1500)))
	g.Transmit(sts[2].addr, sts[0].addr, pkt.FromBytes(0, make([]byte, 1500)))
	s.Run(0)
	if len(sts[0].got) != 2 {
		t.Fatalf("destination got %d frames, want 2", len(sts[0].got))
	}
	gap := sts[0].arrivals[1] - sts[0].arrivals[0]
	if gap != sim.Time(g.TxTime(1500)) {
		t.Fatalf("egress serialization gap %v, want %v", gap, g.TxTime(1500))
	}
}

// TestSwitchLatencyAndTiming: end-to-end latency of a switched unicast is
// ingress tx + propagation + switch latency + egress tx + propagation.
func TestSwitchLatencyAndTiming(t *testing.T) {
	lat := 3 * time.Microsecond
	s, g, sts := setupSwitch(2, SwitchConfig{Latency: lat})
	g.Transmit(sts[1].addr, sts[0].addr, pkt.FromBytes(0, make([]byte, 10)))
	s.Run(0)
	sts[0].got, sts[0].arrivals = nil, nil
	start := s.Now()
	g.Transmit(sts[0].addr, sts[1].addr, pkt.FromBytes(0, make([]byte, 1000)))
	s.Run(0)
	tx := g.TxTime(1000)
	want := start + sim.Time(tx+g.cfg.Propagation+lat+tx+g.cfg.Propagation)
	if sts[1].arrivals[0] != want {
		t.Fatalf("arrival %v, want %v", sts[1].arrivals[0], want)
	}
}

// TestSwitchDeterminism: the same many-station traffic pattern produces
// the same delivery timeline on every run.
func TestSwitchDeterminism(t *testing.T) {
	run := func() string {
		s, g, sts := setupSwitch(8, SwitchConfig{Latency: time.Microsecond})
		g.SetFaults(Faults{Seed: 99, LossProb: 0.05, DupProb: 0.02})
		for round := 0; round < 5; round++ {
			for i := range sts {
				dst := sts[(i+round+1)%len(sts)]
				g.Transmit(sts[i].addr, dst.addr, pkt.FromBytes(0, make([]byte, 200+10*i)))
			}
			s.Run(0)
		}
		out := ""
		for i, st := range sts {
			out += fmt.Sprintf("%d:%d@%v;", i, len(st.got), st.arrivals)
		}
		learned, switched, flooded := g.SwitchStats()
		return fmt.Sprintf("%s L%d S%d F%d", out, learned, switched, flooded)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("switched fabric not deterministic:\n%s\n%s", a, b)
	}
}

// TestSwitchMacAging: a learned entry whose station has gone silent for
// longer than MacTTL must be treated as a miss — the frame floods and the
// address re-learns — instead of steering into a possibly-dead port
// forever. Pre-fix the table never aged, so the third transmit below was
// switched rather than flooded.
func TestSwitchMacAging(t *testing.T) {
	ttl := 500 * time.Millisecond
	s, g, sts := setupSwitch(3, SwitchConfig{MacTTL: ttl})
	a, b, c := sts[0], sts[1], sts[2]

	// b announces itself (broadcast): the switch learns it, and a's frame
	// takes the learned port — no flood, c sees nothing new.
	g.Transmit(b.addr, link.Broadcast, pkt.FromBytes(0, make([]byte, 64)))
	s.Run(0)
	cBefore := len(c.got)
	g.Transmit(a.addr, b.addr, pkt.FromBytes(0, make([]byte, 64)))
	s.Run(0)
	if len(b.got) != 1 || len(c.got) != cBefore {
		t.Fatalf("fresh entry flooded: b got %d (want 1), c got %d extra",
			len(b.got), len(c.got)-cBefore)
	}

	// b stays silent past the TTL: the stale entry must age out, so a's
	// next frame floods (c now sees a copy) and b re-learns only when it
	// next transmits.
	s.After(ttl+time.Millisecond, func() {})
	s.Run(0)
	_, _, floodedBefore := g.SwitchStats()
	g.Transmit(a.addr, b.addr, pkt.FromBytes(0, make([]byte, 64)))
	s.Run(0)
	if _, _, flooded := g.SwitchStats(); flooded != floodedBefore+1 {
		t.Fatalf("aged entry did not flood: flooded = %d, want %d", flooded, floodedBefore+1)
	}
	if len(b.got) != 2 || len(c.got) != cBefore+1 {
		t.Fatalf("aged entry: b got %d (want 2), c got %d extra (want 1)",
			len(b.got), len(c.got)-cBefore)
	}
}

// TestSwitchMacRefresh: steady traffic keeps an entry alive — each frame
// from a known source re-stamps its last-seen time, so an active station
// older than one TTL in total is still unicast-switched.
func TestSwitchMacRefresh(t *testing.T) {
	ttl := 500 * time.Millisecond
	s, g, sts := setupSwitch(3, SwitchConfig{MacTTL: ttl})
	a, b := sts[0], sts[1]

	// b transmits at t0 and again at 0.8 TTL; at 1.6 TTL (past t0+TTL but
	// within TTL of the refresh) a's frame must still switch, not flood.
	g.Transmit(b.addr, link.Broadcast, pkt.FromBytes(0, make([]byte, 64)))
	s.Run(0)
	s.After(4*ttl/5, func() {})
	s.Run(0)
	g.Transmit(b.addr, link.Broadcast, pkt.FromBytes(0, make([]byte, 64)))
	s.Run(0)
	s.After(4*ttl/5, func() {})
	s.Run(0)
	_, switchedBefore, floodedBefore := g.SwitchStats()
	g.Transmit(a.addr, b.addr, pkt.FromBytes(0, make([]byte, 64)))
	s.Run(0)
	_, switched, flooded := g.SwitchStats()
	if switched != switchedBefore+1 || flooded != floodedBefore {
		t.Fatalf("refreshed entry: switched/flooded deltas = %d/%d, want 1/0",
			switched-switchedBefore, flooded-floodedBefore)
	}
}

// TestSwitchDetachInvalidatesAndRecovers is the kill-and-restart
// regression: a host dies (its station detaches), comes back behind a new
// port with the same address, and traffic must recover. Pre-fix there was
// no invalidate-on-port-removal at all — the dead station's learned entry
// steered frames into the old port forever and a re-attach panicked on
// the duplicate address.
func TestSwitchDetachInvalidatesAndRecovers(t *testing.T) {
	s, g, sts := setupSwitch(3, SwitchConfig{})
	a, b := sts[0], sts[1]

	// Learn a and b, then kill b: only b's entry may be invalidated.
	g.Transmit(a.addr, b.addr, pkt.FromBytes(0, make([]byte, 64)))
	s.Run(0)
	g.Transmit(b.addr, a.addr, pkt.FromBytes(0, make([]byte, 64)))
	s.Run(0)
	g.Detach(b.addr)
	if learned, _, _ := g.SwitchStats(); learned != 1 {
		t.Fatalf("learned = %d after detach, want 1 (only b invalidated)", learned)
	}

	// Restart: same address, different port (a fresh station object).
	b2 := &fakeStation{addr: b.addr, s: s}
	g.Attach(b2)

	// Traffic to the reborn address must reach the new port. The first
	// frame floods (the stale entry is gone); after b2 transmits, frames
	// switch straight to it.
	g.Transmit(a.addr, b2.addr, pkt.FromBytes(0, make([]byte, 64)))
	s.Run(0)
	if len(b2.got) != 1 {
		t.Fatalf("reborn station got %d frames, want 1 (flooded)", len(b2.got))
	}
	if len(b.got) != 1 {
		t.Fatalf("dead station got %d frames, want 1 (nothing after detach)", len(b.got))
	}
	g.Transmit(b2.addr, a.addr, pkt.FromBytes(0, make([]byte, 64)))
	s.Run(0)
	_, switchedBefore, _ := g.SwitchStats()
	g.Transmit(a.addr, b2.addr, pkt.FromBytes(0, make([]byte, 64)))
	s.Run(0)
	if _, switched, _ := g.SwitchStats(); switched != switchedBefore+1 {
		t.Fatalf("re-learned frame did not switch: switched = %d, want %d",
			switched, switchedBefore+1)
	}
	if len(b2.got) != 2 {
		t.Fatalf("reborn station got %d frames, want 2", len(b2.got))
	}
}
