package wire

// Link conditions: time-scripted, correlated network degradation layered on
// top of the i.i.d. Faults model. Faults answers "what if 5% of frames
// vanish"; LinkConditions answers what real degraded paths do — losses come
// in bursts (Gilbert–Elliott), impairment is asymmetric per direction, links
// flap down and up on schedules, partitions blackhole traffic silently (no
// RST, no ICMP — the frames just stop), and a rate-limited bottleneck with a
// bounded queue turns load into real queueing delay (bufferbloat) and tail
// drops.
//
// Composition order per frame: scheduled Faults (no RNG) and probabilistic
// Faults (the segment RNG, draws in the fixed loss/corrupt/dup/reorder
// order) run first, exactly as without conditions; a frame that survives
// them then passes through the conditions layer, which draws only from its
// own dedicated RNG. A nil or inactive LinkConditions therefore leaves every
// existing seeded run bit-identical, and enabling conditions never shifts a
// Faults draw.

import (
	"math/rand"
	"time"

	"ulp/internal/link"
	"ulp/internal/sim"
)

// GilbertElliott is the classic two-state Markov loss model: the channel is
// either Good or Bad, transitions are drawn per frame, and each state has
// its own loss probability. With LossBad near 1 and PBadGood small, losses
// arrive in bursts whose mean length is 1/PBadGood frames — the loss
// correlation i.i.d. LossProb cannot express.
type GilbertElliott struct {
	// PGoodBad and PBadGood are the per-frame state transition
	// probabilities (Good→Bad and Bad→Good).
	PGoodBad, PBadGood float64
	// LossGood and LossBad are the per-frame loss probabilities in each
	// state (typically LossGood ≈ 0, LossBad ≫ 0).
	LossGood, LossBad float64
}

// PathShape is a direction-specific impairment: extra i.i.d. loss and a
// fixed extra one-way delay. Forward and Reverse shapes model asymmetric
// paths (a clean downlink over a lossy uplink, or a long satellite return
// path) that a symmetric fault plan cannot.
type PathShape struct {
	LossProb   float64
	ExtraDelay time.Duration
}

func (p *PathShape) active() bool {
	return p != nil && (p.LossProb > 0 || p.ExtraDelay > 0)
}

// Window is a half-open virtual-time interval [From, Until). A zero Until
// means the window never closes.
type Window struct {
	From, Until time.Duration
}

func (w Window) contains(at sim.Time) bool {
	t := time.Duration(at)
	return t >= w.From && (w.Until == 0 || t < w.Until)
}

// PartitionWindow blackholes frames crossing a cut during the window.
// Hosts lists the stations on one side of the cut: a frame is dropped iff
// exactly one of its endpoints is in the set (traffic within either side
// still flows). An empty Hosts set blackholes the whole segment.
type PartitionWindow struct {
	Window
	Hosts []link.Addr
}

func (p PartitionWindow) severs(src, dst link.Addr) bool {
	if len(p.Hosts) == 0 {
		return true
	}
	in := func(a link.Addr) bool {
		for _, h := range p.Hosts {
			if h == a {
				return true
			}
		}
		return false
	}
	return in(src) != in(dst)
}

// QueueModel is a rate-limited bottleneck with a bounded FIFO in front of
// it: frames are serviced at RateBitsPerSec, a frame arriving while the
// queue holds MaxFrames is tail-dropped, and every queued frame picks up
// real queueing delay behind the frames ahead of it — the bufferbloat
// mechanism, producing RTT inflation under load and delay spikes that
// confuse RTO estimators.
type QueueModel struct {
	RateBitsPerSec int64
	MaxFrames      int
}

// LinkConditions is a full time-scripted degradation plan for a segment.
// The zero value (and a nil pointer) is a perfect pass-through; every
// sub-model is optional and composes with the others. Seeded: the same plan
// replays bit-identically.
type LinkConditions struct {
	// Seed drives the conditions layer's private RNG (burst transitions and
	// probabilistic losses). Independent of Faults.Seed by design.
	Seed uint64

	// Burst is the Gilbert–Elliott bursty-loss model (both directions).
	Burst *GilbertElliott

	// Forward and Reverse impair one direction each: Forward applies to
	// frames from the lower station address to the higher, Reverse to the
	// opposite direction (attach order gives hosts ascending addresses, so
	// in a two-host world Forward is h0→h1).
	Forward, Reverse *PathShape

	// Partitions scripts blackhole windows: frames crossing the cut are
	// dropped silently — no reset, no error, exactly like a dead route.
	Partitions []PartitionWindow

	// Flaps scripts whole-link outages: during each window the link is
	// down and every frame is dropped silently.
	Flaps []Window

	// Queue, when non-nil, sends every surviving frame through a
	// rate-limited bounded queue (bufferbloat).
	Queue *QueueModel
}

// Active reports whether the plan can affect any frame.
func (lc *LinkConditions) Active() bool {
	return lc != nil && (lc.Burst != nil || lc.Forward.active() || lc.Reverse.active() ||
		len(lc.Partitions) > 0 || len(lc.Flaps) > 0 || lc.Queue != nil)
}

// CondStats breaks down the conditions layer's drops and delays; all drop
// counts are also included in the segment's framesDropped total.
type CondStats struct {
	BurstDrops     int // Gilbert–Elliott losses (in either state)
	PathDrops      int // Forward/Reverse directional losses
	PartitionDrops int // frames blackholed by a partition window
	FlapDrops      int // frames lost to a link-down window
	QueueDrops     int // bottleneck tail drops
	QueuedFrames   int // frames that waited behind at least one other frame
	BadStateFrames int // frames that saw the burst model in the Bad state
}

// condState is the runtime state of a segment's conditions layer.
type condState struct {
	lc   *LinkConditions
	rng  *rand.Rand
	bad  bool // Gilbert–Elliott state (false = Good)
	qLen int
	qEnd sim.Time // bottleneck busy-until
	st   CondStats
}

// SetConditions installs a link-condition plan (nil clears). Must be set
// before the run starts; changing conditions mid-run would not be
// replay-deterministic.
func (g *Segment) SetConditions(lc *LinkConditions) {
	if !lc.Active() {
		g.cond = nil
		return
	}
	g.cond = &condState{lc: lc, rng: rand.New(rand.NewSource(int64(lc.Seed)))}
}

// ConditionStats returns the conditions layer's counters (zero value when
// no conditions are installed).
func (g *Segment) ConditionStats() CondStats {
	if g.cond == nil {
		return CondStats{}
	}
	return g.cond.st
}

// forwardDir reports whether src→dst is the plan's forward direction
// (lower station address toward higher).
func forwardDir(src, dst link.Addr) bool {
	for i := range src {
		if src[i] != dst[i] {
			return src[i] < dst[i]
		}
	}
	return false
}

// condDropKind classifies why the conditions layer dropped a frame (empty =
// keep it).
type condDropKind string

const (
	condKeep      condDropKind = ""
	condFlap      condDropKind = "flap"
	condPartition condDropKind = "partition"
	condBurst     condDropKind = "burst-loss"
	condPath      condDropKind = "path-loss"
	condQueueFull condDropKind = "queue-full"
)

// apply runs one surviving frame through the conditions pipeline. It
// returns the drop classification (condKeep to deliver) and any extra
// delay to add to the propagation time. RNG discipline: the time-scripted
// models (flaps, partitions, queue) draw nothing; the probabilistic models
// draw in a fixed order (burst transition, burst loss, path loss) and only
// when configured, so a given plan's draw sequence depends only on the
// frames that reach this layer.
func (cs *condState) apply(g *Segment, src, dst link.Addr, frameLen int) (condDropKind, time.Duration) {
	lc := cs.lc
	now := g.s.Now()

	for _, w := range lc.Flaps {
		if w.contains(now) {
			cs.st.FlapDrops++
			return condFlap, 0
		}
	}
	for _, p := range lc.Partitions {
		if p.contains(now) && p.severs(src, dst) {
			cs.st.PartitionDrops++
			return condPartition, 0
		}
	}

	if ge := lc.Burst; ge != nil {
		if cs.bad {
			if cs.rng.Float64() < ge.PBadGood {
				cs.bad = false
			}
		} else if cs.rng.Float64() < ge.PGoodBad {
			cs.bad = true
		}
		loss := ge.LossGood
		if cs.bad {
			cs.st.BadStateFrames++
			loss = ge.LossBad
		}
		if loss > 0 && cs.rng.Float64() < loss {
			cs.st.BurstDrops++
			return condBurst, 0
		}
	}

	var extra time.Duration
	shape := lc.Forward
	if !forwardDir(src, dst) {
		shape = lc.Reverse
	}
	if shape.active() {
		if shape.LossProb > 0 && cs.rng.Float64() < shape.LossProb {
			cs.st.PathDrops++
			return condPath, 0
		}
		extra += shape.ExtraDelay
	}

	if q := lc.Queue; q != nil {
		if cs.qLen >= q.MaxFrames {
			cs.st.QueueDrops++
			return condQueueFull, 0
		}
		svc := time.Duration(int64(frameLen+g.cfg.FrameOverhead) * 8 *
			int64(time.Second) / q.RateBitsPerSec)
		start := now
		if cs.qEnd > start {
			cs.st.QueuedFrames++
			start = cs.qEnd
		}
		depart := start + sim.Time(svc)
		cs.qEnd = depart
		cs.qLen++
		g.s.AfterArg(sim.Dur(depart-now), condDepartCB, cs)
		extra += time.Duration(depart - now)
	}

	return condKeep, extra
}

func condDepartCB(a any) {
	cs := a.(*condState)
	cs.qLen--
}
