package wire

import (
	"testing"
	"time"

	"ulp/internal/link"
	"ulp/internal/pkt"
	"ulp/internal/sim"
)

type fakeStation struct {
	addr     link.Addr
	got      []*pkt.Buf
	arrivals []sim.Time
	s        *sim.Sim
}

func (f *fakeStation) Addr() link.Addr { return f.addr }
func (f *fakeStation) Deliver(b *pkt.Buf) {
	f.got = append(f.got, b)
	f.arrivals = append(f.arrivals, f.s.Now())
}

func setup(cfg Config) (*sim.Sim, *Segment, *fakeStation, *fakeStation) {
	s := sim.New()
	g := New(s, cfg)
	a := &fakeStation{addr: link.MakeAddr(1), s: s}
	b := &fakeStation{addr: link.MakeAddr(2), s: s}
	g.Attach(a)
	g.Attach(b)
	return s, g, a, b
}

func TestUnicastDelivery(t *testing.T) {
	s, g, a, b := setup(EthernetConfig())
	g.Transmit(a.addr, b.addr, pkt.FromBytes(0, make([]byte, 100)))
	s.Run(0)
	if len(b.got) != 1 {
		t.Fatalf("b received %d frames, want 1", len(b.got))
	}
	if len(a.got) != 0 {
		t.Fatalf("a received %d frames, want 0", len(a.got))
	}
	// 124 bytes incl overhead at 10 Mb/s = 99.2µs + 10µs propagation.
	want := sim.Time(99200 + 10000)
	if b.arrivals[0] != want {
		t.Fatalf("arrival at %v, want %v", b.arrivals[0], want)
	}
}

func TestSharedMediumSerializes(t *testing.T) {
	s, g, a, b := setup(EthernetConfig())
	// Two 1500-byte frames transmitted at the same instant from different
	// stations must serialize on the shared medium.
	g.Transmit(a.addr, b.addr, pkt.FromBytes(0, make([]byte, 1500)))
	g.Transmit(b.addr, a.addr, pkt.FromBytes(0, make([]byte, 1500)))
	s.Run(0)
	tx := g.TxTime(1500)
	if b.arrivals[0] != sim.Time(tx+10*time.Microsecond) {
		t.Fatalf("first arrival %v, want %v", b.arrivals[0], tx+10*time.Microsecond)
	}
	if a.arrivals[0] != sim.Time(2*tx+10*time.Microsecond) {
		t.Fatalf("second arrival %v, want %v (serialized)", a.arrivals[0], 2*tx+10*time.Microsecond)
	}
}

func TestSwitchedMediumParallel(t *testing.T) {
	s, g, a, b := setup(AN1Config())
	g.Transmit(a.addr, b.addr, pkt.FromBytes(0, make([]byte, 1500)))
	g.Transmit(b.addr, a.addr, pkt.FromBytes(0, make([]byte, 1500)))
	s.Run(0)
	if a.arrivals[0] != b.arrivals[0] {
		t.Fatalf("switched transmissions should not contend: %v vs %v", a.arrivals[0], b.arrivals[0])
	}
}

func TestBroadcast(t *testing.T) {
	s, g, a, b := setup(EthernetConfig())
	c := &fakeStation{addr: link.MakeAddr(3), s: s}
	g.Attach(c)
	g.Transmit(a.addr, link.Broadcast, pkt.FromBytes(0, []byte("hello")))
	s.Run(0)
	if len(a.got) != 0 || len(b.got) != 1 || len(c.got) != 1 {
		t.Fatalf("broadcast delivery: a=%d b=%d c=%d", len(a.got), len(b.got), len(c.got))
	}
	// Broadcast copies must not alias.
	b.got[0].Bytes()[0] = 'X'
	if c.got[0].Bytes()[0] != 'h' {
		t.Fatal("broadcast deliveries alias one buffer")
	}
}

func TestUnknownDestinationVanishes(t *testing.T) {
	s, g, a, _ := setup(EthernetConfig())
	g.Transmit(a.addr, link.MakeAddr(99), pkt.FromBytes(0, []byte("x")))
	s.Run(0) // no panic, nothing delivered
	sent, _, _, _, _, _ := g.Stats()
	if sent != 1 {
		t.Fatalf("sent = %d", sent)
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	s := sim.New()
	g := New(s, EthernetConfig())
	g.Attach(&fakeStation{addr: link.MakeAddr(1), s: s})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate attach")
		}
	}()
	g.Attach(&fakeStation{addr: link.MakeAddr(1), s: s})
}

func TestLossInjection(t *testing.T) {
	s, g, a, b := setup(EthernetConfig())
	g.SetFaults(Faults{Seed: 42, LossProb: 0.5})
	const n = 200
	for i := 0; i < n; i++ {
		g.Transmit(a.addr, b.addr, pkt.FromBytes(0, make([]byte, 64)))
	}
	s.Run(0)
	_, dropped, _, _, _, _ := g.Stats()
	if dropped == 0 || dropped == n {
		t.Fatalf("dropped = %d of %d, expected partial loss", dropped, n)
	}
	if len(b.got)+dropped != n {
		t.Fatalf("delivered %d + dropped %d != sent %d", len(b.got), dropped, n)
	}
}

func TestCorruptionInjection(t *testing.T) {
	s, g, a, b := setup(EthernetConfig())
	g.SetFaults(Faults{Seed: 7, CorruptProb: 1.0})
	g.Transmit(a.addr, b.addr, pkt.FromBytes(0, make([]byte, 32)))
	s.Run(0)
	if len(b.got) != 1 || !b.got[0].Meta.Corrupt {
		t.Fatal("expected corrupted delivery")
	}
	orig := make([]byte, 32)
	diff := 0
	for i, x := range b.got[0].Bytes() {
		if x != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bytes, want exactly 1 bit in 1 byte", diff)
	}
}

func TestDuplicationInjection(t *testing.T) {
	s, g, a, b := setup(EthernetConfig())
	g.SetFaults(Faults{Seed: 3, DupProb: 1.0})
	g.Transmit(a.addr, b.addr, pkt.FromBytes(0, []byte("dup")))
	s.Run(0)
	if len(b.got) != 2 {
		t.Fatalf("received %d frames, want 2 (duplicated)", len(b.got))
	}
}

func TestReorderInjection(t *testing.T) {
	s, g, a, b := setup(AN1Config())
	g.SetFaults(Faults{Seed: 1, ReorderProb: 1.0, ReorderDelay: time.Millisecond})
	g.Transmit(a.addr, b.addr, pkt.FromBytes(0, []byte{1}))
	s.Run(0)
	if b.arrivals[0] < sim.Time(time.Millisecond) {
		t.Fatalf("reordered frame arrived at %v, want >= 1ms", b.arrivals[0])
	}
}

func TestFaultDeterminism(t *testing.T) {
	run := func() (int, int) {
		s, g, a, b := setup(EthernetConfig())
		g.SetFaults(Faults{Seed: 99, LossProb: 0.3, DupProb: 0.2})
		for i := 0; i < 100; i++ {
			g.Transmit(a.addr, b.addr, pkt.FromBytes(0, make([]byte, 64)))
		}
		s.Run(0)
		_, dropped, _, dup, _, _ := g.Stats()
		_ = dup
		return len(b.got), dropped
	}
	g1, d1 := run()
	g2, d2 := run()
	if g1 != g2 || d1 != d2 {
		t.Fatalf("fault injection not deterministic: (%d,%d) vs (%d,%d)", g1, d1, g2, d2)
	}
}

func TestTxTime(t *testing.T) {
	g := New(sim.New(), EthernetConfig())
	// 1500B + 24B overhead = 1524B = 12192 bits at 10 Mb/s = 1.2192 ms.
	if got := g.TxTime(1500); got != 1219200*time.Nanosecond {
		t.Fatalf("TxTime(1500) = %v", got)
	}
}

func TestScheduledDrop(t *testing.T) {
	s, g, a, b := setup(EthernetConfig())
	g.SetFaults(Faults{DropFrames: []int{1, 3}})
	const n = 5
	for i := 0; i < n; i++ {
		g.Transmit(a.addr, b.addr, pkt.FromBytes(0, []byte{byte(i)}))
	}
	s.Run(0)
	if len(b.got) != n-2 {
		t.Fatalf("delivered %d frames, want %d", len(b.got), n-2)
	}
	// Transmit-order indices 1 and 3 are gone; payloads identify frames.
	for i, want := range []byte{0, 2, 4} {
		if got := b.got[i].Bytes()[0]; got != want {
			t.Errorf("delivery %d carries payload %d, want %d", i, got, want)
		}
	}
	_, dropped, _, _, _, _ := g.Stats()
	if dropped != 2 {
		t.Errorf("dropped = %d, want 2", dropped)
	}
}

func TestScheduledCorrupt(t *testing.T) {
	s, g, a, b := setup(EthernetConfig())
	g.SetFaults(Faults{CorruptFrames: []int{0}})
	g.Transmit(a.addr, b.addr, pkt.FromBytes(0, make([]byte, 32)))
	g.Transmit(a.addr, b.addr, pkt.FromBytes(0, make([]byte, 32)))
	s.Run(0)
	if len(b.got) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(b.got))
	}
	if !b.got[0].Meta.Corrupt || b.got[1].Meta.Corrupt {
		t.Fatalf("corruption flags = %v,%v; want frame 0 only",
			b.got[0].Meta.Corrupt, b.got[1].Meta.Corrupt)
	}
	if b.got[0].Bytes()[16] != 1 {
		t.Errorf("expected deterministic low-bit flip at mid-frame byte")
	}
}

// TestScheduledFaultsPreserveRNGSequence checks that adding a frame-index
// schedule to a seeded probabilistic plan does not shift the plan's random
// draws for the frames the schedule does not touch.
func TestScheduledFaultsPreserveRNGSequence(t *testing.T) {
	run := func(sched []int) (survivors []byte) {
		s, g, a, b := setup(EthernetConfig())
		g.SetFaults(Faults{Seed: 42, LossProb: 0.3, DropFrames: sched})
		for i := 0; i < 50; i++ {
			g.Transmit(a.addr, b.addr, pkt.FromBytes(0, []byte{byte(i)}))
		}
		s.Run(0)
		for _, f := range b.got {
			survivors = append(survivors, f.Bytes()[0])
		}
		return
	}
	plain := run(nil)
	if len(plain) < 2 || len(plain) == 50 {
		t.Fatalf("seeded loss dropped %d of 50; bad baseline", 50-len(plain))
	}
	// Schedule a drop of one frame the probabilistic plan let through: the
	// result must be exactly the baseline minus that frame.
	victim := plain[len(plain)/2]
	with := run([]int{int(victim)})
	if len(with) != len(plain)-1 {
		t.Fatalf("scheduled drop changed survivor count to %d, want %d",
			len(with), len(plain)-1)
	}
	j := 0
	for _, p := range plain {
		if p == victim {
			continue
		}
		if with[j] != p {
			t.Fatalf("survivor %d differs: %d vs %d (RNG sequence shifted)", j, with[j], p)
		}
		j++
	}
}
