// Package wire models the physical network media: a shared 10 Mb/s Ethernet
// segment and a switched, full-duplex 100 Mb/s AN1 segment. A segment
// serializes transmissions (globally for the shared Ethernet, per source
// port for the switched AN1), charges transmission and propagation delay,
// and optionally injects faults (loss, duplication, corruption, reordering)
// for protocol robustness testing.
//
// Stations are identified by link.Addr; attached devices receive delivery
// callbacks in event context at frame-arrival time.
package wire

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ulp/internal/link"
	"ulp/internal/pkt"
	"ulp/internal/sim"
	"ulp/internal/trace"
)

// Config describes a segment's physical characteristics.
type Config struct {
	Name string

	// BitsPerSec is the raw signalling rate.
	BitsPerSec int64

	// Propagation is the one-way propagation delay.
	Propagation time.Duration

	// FrameOverhead is per-frame non-payload wire time in bytes (preamble,
	// FCS, inter-frame gap). 24 for Ethernet (8 preamble + 4 FCS + 12 IFG).
	FrameOverhead int

	// Shared serializes all transmissions on one medium (CSMA-style shared
	// Ethernet). When false the segment is switched: each source port has
	// its own transmit serialization and flows do not contend.
	Shared bool
}

// EthernetConfig returns the 10 Mb/s shared Ethernet used in the paper.
func EthernetConfig() Config {
	return Config{
		Name:          "ethernet",
		BitsPerSec:    10_000_000,
		Propagation:   10 * time.Microsecond,
		FrameOverhead: 24,
		Shared:        true,
	}
}

// AN1Config returns the switchless private 100 Mb/s AN1 segment used in the
// paper.
func AN1Config() Config {
	return Config{
		Name:          "an1",
		BitsPerSec:    100_000_000,
		Propagation:   5 * time.Microsecond,
		FrameOverhead: 16,
		Shared:        false,
	}
}

// Faults configures seeded fault injection. Zero value = perfect network.
type Faults struct {
	Seed uint64

	// LossProb drops a frame with this probability.
	LossProb float64

	// DupProb delivers a frame twice.
	DupProb float64

	// CorruptProb flips a bit in the frame payload (after link CRC would
	// have passed, to exercise transport checksums).
	CorruptProb float64

	// ReorderProb delays a frame by ReorderDelay, letting later frames
	// overtake it.
	ReorderProb  float64
	ReorderDelay time.Duration

	// DropFrames and CorruptFrames schedule faults at exact frames,
	// identified by 0-based transmit order on the segment (the order of
	// Transmit calls, which is deterministic under the simulator). They
	// need no seed, draw nothing from the RNG, and compose with the
	// probabilistic faults: the fault-schedule explorer uses them to
	// place a loss at precisely the retransmission or handshake step it
	// wants to test.
	DropFrames    []int
	CorruptFrames []int
}

func (f Faults) active() bool {
	return f.LossProb > 0 || f.DupProb > 0 || f.CorruptProb > 0 || f.ReorderProb > 0
}

func (f Faults) scheduled() bool {
	return len(f.DropFrames) > 0 || len(f.CorruptFrames) > 0
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Station is a device attached to a segment.
type Station interface {
	// Deliver is invoked in event context when a frame arrives at the
	// station. The buffer belongs to the station afterwards.
	Deliver(b *pkt.Buf)

	// Addr returns the station address.
	Addr() link.Addr
}

// Segment is one network medium instance.
type Segment struct {
	s        *sim.Sim
	cfg      Config
	stations map[link.Addr]Station
	order    []Station // broadcast delivery order (attach order, deterministic)
	shared   *sim.Resource
	perPort  map[link.Addr]*sim.Resource
	faults   Faults
	rng      *rand.Rand
	cond     *condState // link-condition layer (nil unless SetConditions)

	// Learning-switch state (nil/unused unless built with NewSwitched).
	sw      *SwitchConfig
	macPort map[link.Addr]macEntry
	egress  map[link.Addr]*sim.Resource

	// Trace, when non-nil, observes every transmission at queue time (for
	// diagnostics and protocol traces).
	Trace func(src, dst link.Addr, frameLen int, at sim.Time)

	// TraceFrame, when non-nil, additionally receives the frame itself at
	// queue time. Observers must treat the buffer as read-only.
	TraceFrame func(b *pkt.Buf, at sim.Time)

	// Bus, when set, receives FrameTx/FrameRx/FrameDrop/FrameCorrupt/
	// FrameDup events. Nil-safe; see the trace package invariants.
	Bus *trace.Bus

	// Stats
	framesSent, framesDropped, framesCorrupted, framesDuplicated int
	framesReordered                                              int
	framesSwitched, framesFlooded                                int
	bytesSent                                                    int64
}

// New creates a segment.
func New(s *sim.Sim, cfg Config) *Segment {
	g := &Segment{
		s:        s,
		cfg:      cfg,
		stations: make(map[link.Addr]Station),
		perPort:  make(map[link.Addr]*sim.Resource),
	}
	if cfg.Shared {
		g.shared = s.NewResource(cfg.Name + ".medium")
	}
	return g
}

// SetFaults installs a fault plan (seeded; deterministic).
func (g *Segment) SetFaults(f Faults) {
	g.faults = f
	g.rng = rand.New(rand.NewSource(int64(f.Seed)))
}

// Config returns the segment configuration.
func (g *Segment) Config() Config { return g.cfg }

// Attach registers a station. Attaching two stations with one address is a
// configuration error and panics.
func (g *Segment) Attach(st Station) {
	a := st.Addr()
	if _, dup := g.stations[a]; dup {
		panic(fmt.Sprintf("wire: duplicate station address %s on %s", a, g.cfg.Name))
	}
	g.stations[a] = st
	g.order = append(g.order, st)
	if !g.cfg.Shared {
		g.perPort[a] = g.s.NewResource(g.cfg.Name + "." + a.String() + ".tx")
	}
	if g.sw != nil {
		g.egress[a] = g.s.NewResource(g.cfg.Name + "." + a.String() + ".egress")
	}
}

// Detach removes a station from the segment: its address no longer
// resolves, broadcasts no longer reach it, and on a switched fabric every
// learned MAC entry steering frames to its port is invalidated, so traffic
// to a re-attached address floods and re-learns instead of black-holing
// into the dead port. Detaching an unknown address is a no-op.
func (g *Segment) Detach(addr link.Addr) {
	st, ok := g.stations[addr]
	if !ok {
		return
	}
	delete(g.stations, addr)
	for i, o := range g.order {
		if o == st {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	delete(g.perPort, addr)
	if g.sw != nil {
		delete(g.egress, addr)
		for a, e := range g.macPort {
			if e.st == st {
				delete(g.macPort, a)
			}
		}
	}
}

// TxTime returns the wire occupancy time for a frame of n bytes.
func (g *Segment) TxTime(n int) time.Duration {
	bits := int64(n+g.cfg.FrameOverhead) * 8
	return time.Duration(bits * int64(time.Second) / g.cfg.BitsPerSec)
}

// Transmit sends frame b from src to dst. The frame is serialized onto the
// medium (queueing behind in-flight frames), then delivered after
// propagation. dst == link.Broadcast delivers to every station except the
// sender. Transmit may be called from any simulation context; it does not
// block the caller (devices model any blocking themselves).
func (g *Segment) Transmit(src, dst link.Addr, b *pkt.Buf) {
	res := g.shared
	if res == nil {
		res = g.perPort[src]
		if res == nil {
			panic(fmt.Sprintf("wire: transmit from unattached station %s", src))
		}
	}
	g.framesSent++
	g.bytesSent += int64(b.Len())
	if g.Trace != nil {
		g.Trace(src, dst, b.Len(), g.s.Now())
	}
	if g.TraceFrame != nil {
		g.TraceFrame(b, g.s.Now())
	}
	if g.Bus.Enabled() {
		g.Bus.Emit(trace.Event{Kind: trace.FrameTx, Node: g.cfg.Name,
			A: int64(b.Len()), Frame: b.Bytes()})
	}
	tx := g.TxTime(b.Len())
	f := inflightPool.Get().(*inflight)
	*f = inflight{g: g, src: src, dst: dst, b: b, idx: g.framesSent - 1}
	res.UseAsyncArg(tx, propagateCB, f)
}

// inflight carries one frame through the transmit -> propagate -> deliver
// pipeline. Records are pooled and the stage callbacks are static functions,
// so a frame crossing the wire costs no closure allocations.
type inflight struct {
	g        *Segment
	src, dst link.Addr
	b        *pkt.Buf
	idx      int     // 0-based transmit-order index (for scheduled faults)
	st       Station // resolved egress station (switched fabric only)
}

var inflightPool = sync.Pool{New: func() any { return new(inflight) }}

func (f *inflight) put() {
	*f = inflight{}
	inflightPool.Put(f)
}

func propagateCB(a any) {
	f := a.(*inflight)
	f.g.propagate(f)
}

func deliverCB(a any) {
	f := a.(*inflight)
	g, src, dst, b := f.g, f.src, f.dst, f.b
	f.put()
	g.deliver(src, dst, b)
}

// propagate handles fault injection and schedules final delivery. It takes
// over ownership of f (and the frame it carries).
func (g *Segment) propagate(f *inflight) {
	b := f.b
	delay := g.cfg.Propagation
	// Scheduled (per-frame-index) faults never touch the RNG, and a
	// scheduled drop is applied *after* the probabilistic block (which
	// consumes this frame's usual draws), so adding a schedule to a seeded
	// plan leaves every other frame's probabilistic fate intact — crucial
	// for the explorer, whose shrinking loop adds and removes schedule
	// entries against a fixed chaos seed.
	schedDrop := false
	if g.faults.scheduled() {
		schedDrop = containsInt(g.faults.DropFrames, f.idx)
		if !schedDrop && containsInt(g.faults.CorruptFrames, f.idx) && b.Len() > 0 {
			g.framesCorrupted++
			off := b.Len() / 2 // deterministic: flip the low bit mid-frame
			b.Bytes()[off] ^= 1
			b.Meta.Corrupt = true
			if g.Bus.Enabled() {
				g.Bus.Emit(trace.Event{Kind: trace.FrameCorrupt, Node: g.cfg.Name,
					A: int64(off), B: int64(f.idx), Text: "sched-corrupt", Frame: b.Bytes()})
			}
		}
	}
	if g.faults.active() {
		if g.rng.Float64() < g.faults.LossProb {
			g.framesDropped++
			if g.Bus.Enabled() {
				g.Bus.Emit(trace.Event{Kind: trace.FrameDrop, Node: g.cfg.Name,
					A: int64(b.Len()), Text: "loss", Frame: b.Bytes()})
			}
			f.put()
			b.Release()
			return
		}
		if g.rng.Float64() < g.faults.CorruptProb && b.Len() > 0 {
			g.framesCorrupted++
			bit := g.rng.Intn(b.Len() * 8)
			b.Bytes()[bit/8] ^= 1 << (bit % 8)
			b.Meta.Corrupt = true
			if g.Bus.Enabled() {
				g.Bus.Emit(trace.Event{Kind: trace.FrameCorrupt, Node: g.cfg.Name,
					A: int64(bit / 8), Frame: b.Bytes()})
			}
		}
		if g.rng.Float64() < g.faults.DupProb {
			g.framesDuplicated++
			if g.Bus.Enabled() {
				g.Bus.Emit(trace.Event{Kind: trace.FrameDup, Node: g.cfg.Name,
					A: int64(b.Len()), Frame: b.Bytes()})
			}
			d := inflightPool.Get().(*inflight)
			*d = inflight{g: g, src: f.src, dst: f.dst, b: b.Clone()}
			g.s.AfterArg(delay, deliverCB, d)
		}
		if g.rng.Float64() < g.faults.ReorderProb {
			g.framesReordered++
			if g.Bus.Enabled() {
				g.Bus.Emit(trace.Event{Kind: trace.FrameReorder, Node: g.cfg.Name,
					A: int64(b.Len()), B: int64(g.faults.ReorderDelay), Frame: b.Bytes()})
			}
			delay += g.faults.ReorderDelay
		}
	}
	if schedDrop {
		g.framesDropped++
		if g.Bus.Enabled() {
			g.Bus.Emit(trace.Event{Kind: trace.FrameDrop, Node: g.cfg.Name,
				A: int64(b.Len()), B: int64(f.idx), Text: "sched-drop", Frame: b.Bytes()})
		}
		f.put()
		b.Release()
		return
	}
	if g.cond != nil {
		// Conditions run last, on frames that survived the Faults layer,
		// and draw only from their own RNG — see conditions.go for the
		// composition and determinism contract.
		kind, extra := g.cond.apply(g, f.src, f.dst, b.Len())
		if kind != condKeep {
			g.framesDropped++
			if g.Bus.Enabled() {
				g.Bus.Emit(trace.Event{Kind: trace.FrameDrop, Node: g.cfg.Name,
					A: int64(b.Len()), Text: string(kind), Frame: b.Bytes()})
			}
			f.put()
			b.Release()
			return
		}
		delay += extra
	}
	if g.sw != nil {
		// Switched fabric: the ingress hop ends at the switch, which
		// forwards (or floods) onto per-destination egress links. Faults
		// above model the ingress link, so the RNG draw order per frame is
		// identical to the point-to-point segment.
		g.s.AfterArg(delay+g.sw.Latency, switchCB, f)
		return
	}
	g.s.AfterArg(delay, deliverCB, f)
}

func (g *Segment) deliver(src, dst link.Addr, b *pkt.Buf) {
	b.Meta.RxDev = g.cfg.Name
	if g.Bus.Enabled() {
		g.Bus.Emit(trace.Event{Kind: trace.FrameRx, Node: g.cfg.Name,
			Conn: dst.String(), A: int64(b.Len()), Frame: b.Bytes()})
	}
	if dst.IsBroadcast() {
		// The final recipient takes ownership of the original frame, so a
		// broadcast to n stations costs n-1 clones rather than n. A frame
		// someone else still references (zero-copy lien, retransmission
		// hold) cannot be handed to a recipient at all — recipients strip
		// headers in place — so every copy is a clone and our reference is
		// dropped instead.
		last := -1
		for i, st := range g.order {
			if st.Addr() != src {
				last = i
			}
		}
		if last < 0 {
			b.Release()
			return
		}
		shared := b.Shared()
		for i, st := range g.order {
			if st.Addr() == src {
				continue
			}
			if i == last && !shared {
				st.Deliver(b)
			} else {
				st.Deliver(b.Clone())
			}
		}
		if shared {
			b.Release()
		}
		return
	}
	if st, ok := g.stations[dst]; ok {
		st.Deliver(b)
		return
	}
	// Frames to unknown stations vanish, as on a real wire.
	if g.Bus.Enabled() {
		g.Bus.Emit(trace.Event{Kind: trace.FrameDrop, Node: g.cfg.Name,
			A: int64(b.Len()), Text: "unknown-dst"})
	}
	b.Release()
}

// Stats reports cumulative counters.
func (g *Segment) Stats() (sent, dropped, corrupted, duplicated, reordered int, bytes int64) {
	return g.framesSent, g.framesDropped, g.framesCorrupted, g.framesDuplicated,
		g.framesReordered, g.bytesSent
}
