package arp

import (
	"testing"
	"testing/quick"

	"ulp/internal/ipv4"
	"ulp/internal/link"
	"ulp/internal/pkt"
)

var (
	hwA = link.MakeAddr(1)
	hwB = link.MakeAddr(2)
	ipA = ipv4.Addr{10, 0, 0, 1}
	ipB = ipv4.Addr{10, 0, 0, 2}
)

func TestCodecGolden(t *testing.T) {
	p := Packet{Op: OpRequest, SenderHW: hwA, SenderIP: ipA, TargetIP: ipB}
	b := p.Encode(14)
	if b.Len() != PacketLen || b.Headroom() != 14 {
		t.Fatalf("len=%d headroom=%d", b.Len(), b.Headroom())
	}
	w := b.Bytes()
	if w[0] != 0 || w[1] != 1 || w[2] != 8 || w[3] != 0 || w[4] != 6 || w[5] != 4 || w[7] != 1 {
		t.Fatalf("fixed fields = %x", w[:8])
	}
	got, err := Decode(b)
	if err != nil || got != p {
		t.Fatalf("decode = %+v, %v", got, err)
	}
}

func TestDecodeRejects(t *testing.T) {
	if _, err := Decode(pkt.FromBytes(0, make([]byte, 27))); err == nil {
		t.Fatal("short packet decoded")
	}
	p := Packet{Op: OpRequest}
	b := p.Encode(0)
	b.Bytes()[0] = 9 // bogus htype
	if _, err := Decode(b); err == nil {
		t.Fatal("bad htype decoded")
	}
}

func TestRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(op uint16, shw, thw [6]byte, sip, tip [4]byte) bool {
		p := Packet{Op: op, SenderHW: shw, SenderIP: sip, TargetHW: thw, TargetIP: tip}
		got, err := Decode(p.Encode(0))
		return err == nil && got == p
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRequestReplyExchange(t *testing.T) {
	a := NewCache(hwA, ipA, 100)
	b := NewCache(hwB, ipB, 100)

	// A wants B: enqueue a datagram, send a request.
	dg := pkt.FromBytes(0, []byte("ip datagram"))
	if !a.Enqueue(ipB, dg) {
		t.Fatal("first enqueue should request")
	}
	if a.Enqueue(ipB, pkt.FromBytes(0, []byte("second"))) {
		t.Fatal("second enqueue should not re-request")
	}
	req := a.MakeRequest(ipB)

	// B receives the request: learns A, produces a reply.
	reply, rel := b.Input(0, req)
	if reply == nil || reply.Op != OpReply || reply.TargetHW != hwA || reply.SenderHW != hwB {
		t.Fatalf("reply = %+v", reply)
	}
	if len(rel) != 0 {
		t.Fatal("B released datagrams unexpectedly")
	}
	if hw, ok := b.Lookup(0, ipA); !ok || hw != hwA {
		t.Fatal("B did not learn A from request")
	}

	// A receives the reply: learns B, releases the held datagrams.
	reply2, rel2 := a.Input(1, *reply)
	if reply2 != nil {
		t.Fatal("reply to a reply")
	}
	if len(rel2) != 2 {
		t.Fatalf("released %d datagrams, want 2", len(rel2))
	}
	if hw, ok := a.Lookup(1, ipB); !ok || hw != hwB {
		t.Fatal("A did not learn B")
	}
}

func TestRequestForOtherHostIgnored(t *testing.T) {
	b := NewCache(hwB, ipB, 100)
	req := Packet{Op: OpRequest, SenderHW: hwA, SenderIP: ipA, TargetIP: ipv4.Addr{10, 0, 0, 99}}
	reply, _ := b.Input(0, req)
	if reply != nil {
		t.Fatal("replied to a request for another host")
	}
}

func TestEntryExpiry(t *testing.T) {
	c := NewCache(hwA, ipA, 10)
	c.Insert(0, ipB, hwB)
	if _, ok := c.Lookup(9, ipB); !ok {
		t.Fatal("entry expired early")
	}
	if _, ok := c.Lookup(10, ipB); ok {
		t.Fatal("entry outlived ttl")
	}
}

func TestPendingOverflowDropsOldest(t *testing.T) {
	c := NewCache(hwA, ipA, 100)
	for i := 0; i < MaxPendingPerAddr+3; i++ {
		c.Enqueue(ipB, pkt.FromBytes(0, []byte{byte(i)}))
	}
	_, rel := c.Input(0, Packet{Op: OpReply, SenderHW: hwB, SenderIP: ipB, TargetHW: hwA, TargetIP: ipA})
	if len(rel) != MaxPendingPerAddr {
		t.Fatalf("released %d, want %d", len(rel), MaxPendingPerAddr)
	}
	if rel[0].Bytes()[0] != 3 {
		t.Fatalf("oldest surviving = %d, want 3 (0,1,2 dropped)", rel[0].Bytes()[0])
	}
}

func TestDropPending(t *testing.T) {
	c := NewCache(hwA, ipA, 100)
	c.Enqueue(ipB, pkt.FromBytes(0, []byte("x")))
	c.Enqueue(ipB, pkt.FromBytes(0, []byte("y")))
	if n := c.DropPending(ipB); n != 2 {
		t.Fatalf("dropped %d, want 2", n)
	}
	if c.Enqueue(ipB, pkt.FromBytes(0, []byte("z"))) != true {
		t.Fatal("after drop, enqueue should request again")
	}
}

func TestOpportunisticLearning(t *testing.T) {
	c := NewCache(hwA, ipA, 100)
	// Any ARP traffic teaches us the sender.
	c.Input(0, Packet{Op: OpRequest, SenderHW: hwB, SenderIP: ipB, TargetIP: ipv4.Addr{10, 0, 0, 77}})
	if hw, ok := c.Lookup(0, ipB); !ok || hw != hwB {
		t.Fatal("did not learn from overheard request")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}
