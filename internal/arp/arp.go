// Package arp implements the Address Resolution Protocol used by the IP
// libraries to map IPv4 addresses to station addresses. As in the paper's
// system, ARP is one of the protocol libraries an application links against
// ("an application using TCP will typically link to the TCP, IP, and ARP
// libraries").
//
// The package is pure protocol logic (codec + cache + pending queue); the
// organization shells drive it and own timers and transmission.
package arp

import (
	"encoding/binary"
	"fmt"

	"ulp/internal/ipv4"
	"ulp/internal/link"
	"ulp/internal/pkt"
)

// Operation codes.
const (
	OpRequest = 1
	OpReply   = 2
)

// PacketLen is the size of an Ethernet/IPv4 ARP packet.
const PacketLen = 28

// Packet is a decoded ARP packet.
type Packet struct {
	Op       uint16
	SenderHW link.Addr
	SenderIP ipv4.Addr
	TargetHW link.Addr
	TargetIP ipv4.Addr
}

// Encode appends the 28-byte wire form onto a fresh buffer with the given
// headroom for the link header.
func (p *Packet) Encode(headroom int) *pkt.Buf {
	b := pkt.New(headroom, PacketLen)
	w := b.Bytes()
	binary.BigEndian.PutUint16(w[0:], 1)      // htype: Ethernet
	binary.BigEndian.PutUint16(w[2:], 0x0800) // ptype: IPv4
	w[4], w[5] = 6, 4                         // hlen, plen
	binary.BigEndian.PutUint16(w[6:], p.Op)
	copy(w[8:14], p.SenderHW[:])
	copy(w[14:18], p.SenderIP[:])
	copy(w[18:24], p.TargetHW[:])
	copy(w[24:28], p.TargetIP[:])
	return b
}

// Decode parses an ARP packet.
func Decode(b *pkt.Buf) (Packet, error) {
	if b.Len() < PacketLen {
		return Packet{}, fmt.Errorf("arp: short packet (%d bytes)", b.Len())
	}
	w := b.Bytes()
	if binary.BigEndian.Uint16(w[0:]) != 1 || binary.BigEndian.Uint16(w[2:]) != 0x0800 ||
		w[4] != 6 || w[5] != 4 {
		return Packet{}, fmt.Errorf("arp: unsupported hardware/protocol types")
	}
	var p Packet
	p.Op = binary.BigEndian.Uint16(w[6:])
	copy(p.SenderHW[:], w[8:14])
	copy(p.SenderIP[:], w[14:18])
	copy(p.TargetHW[:], w[18:24])
	copy(p.TargetIP[:], w[24:28])
	return p, nil
}

// Cache is one interface's ARP state: resolved entries plus IP datagrams
// queued awaiting resolution.
type Cache struct {
	selfHW link.Addr
	selfIP ipv4.Addr
	ttl    uint64

	entries map[ipv4.Addr]entry
	pending map[ipv4.Addr][]*pkt.Buf
}

type entry struct {
	hw      link.Addr
	expires uint64
}

// MaxPendingPerAddr bounds the per-destination hold queue, as BSD did (it
// kept one; we keep a few to avoid gratuitous drops in bulk tests).
const MaxPendingPerAddr = 8

// NewCache creates a cache for an interface with the given addresses;
// entries live for ttl clock units.
func NewCache(selfHW link.Addr, selfIP ipv4.Addr, ttl uint64) *Cache {
	return &Cache{
		selfHW: selfHW, selfIP: selfIP, ttl: ttl,
		entries: make(map[ipv4.Addr]entry),
		pending: make(map[ipv4.Addr][]*pkt.Buf),
	}
}

// Lookup returns the station address for ip if a live entry exists.
func (c *Cache) Lookup(now uint64, ip ipv4.Addr) (link.Addr, bool) {
	e, ok := c.entries[ip]
	if !ok || now >= e.expires {
		return link.Addr{}, false
	}
	return e.hw, true
}

// Enqueue holds an IP datagram awaiting resolution of ip; it reports
// whether a request should be transmitted (true for the first queued
// packet). Overflow drops the oldest, as BSD's single-packet hold did.
func (c *Cache) Enqueue(ip ipv4.Addr, b *pkt.Buf) (sendRequest bool) {
	q := c.pending[ip]
	sendRequest = len(q) == 0
	if len(q) >= MaxPendingPerAddr {
		q = q[1:]
	}
	c.pending[ip] = append(q, b)
	return sendRequest
}

// MakeRequest builds the broadcast request for ip.
func (c *Cache) MakeRequest(ip ipv4.Addr) Packet {
	return Packet{Op: OpRequest, SenderHW: c.selfHW, SenderIP: c.selfIP, TargetIP: ip}
}

// Input processes a received ARP packet. It opportunistically learns the
// sender mapping (as BSD does), returns a reply to transmit if the packet
// is a request for our address, and returns any datagrams that were queued
// awaiting the sender's address, now resolvable.
func (c *Cache) Input(now uint64, p Packet) (reply *Packet, released []*pkt.Buf) {
	if !p.SenderIP.IsZero() {
		c.entries[p.SenderIP] = entry{hw: p.SenderHW, expires: now + c.ttl}
		if q := c.pending[p.SenderIP]; len(q) > 0 {
			released = q
			delete(c.pending, p.SenderIP)
		}
	}
	if p.Op == OpRequest && p.TargetIP == c.selfIP {
		reply = &Packet{
			Op:       OpReply,
			SenderHW: c.selfHW, SenderIP: c.selfIP,
			TargetHW: p.SenderHW, TargetIP: p.SenderIP,
		}
	}
	return reply, released
}

// DropPending discards the hold queue for ip (resolution timed out) and
// returns how many datagrams were dropped.
func (c *Cache) DropPending(ip ipv4.Addr) int {
	n := len(c.pending[ip])
	delete(c.pending, ip)
	return n
}

// Insert installs a static entry (used by tests and the quickstart example).
func (c *Cache) Insert(now uint64, ip ipv4.Addr, hw link.Addr) {
	c.entries[ip] = entry{hw: hw, expires: now + c.ttl}
}

// Len returns the number of entries (live or expired-but-unswept).
func (c *Cache) Len() int { return len(c.entries) }
