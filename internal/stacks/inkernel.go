package stacks

import (
	"time"

	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/netio"
	"ulp/internal/pkt"
	"ulp/internal/sim"
	"ulp/internal/tcp"
)

// InKernel is the Ultrix-style monolithic organization: the whole protocol
// stack executes in the kernel. Socket calls are general-purpose traps;
// data crosses the user/kernel boundary by copy for small writes and by
// page remap for writes of RemapMinUltrix bytes or more ("Ultrix uses an
// identical mechanism, but it is invoked only when the user packet size is
// 1024 bytes or larger"); input runs at software-interrupt level and wakes
// sleeping readers with a context switch.
type InKernel struct {
	host  *kern.Host
	krn   *kern.Domain
	nif   *Netif
	table *tcp.Table
	ports *tcp.PortAlloc
	iss   tcp.Seq

	cur  *kern.Thread   // thread currently driving the engine
	lock *sim.Semaphore // serializes engine entry (splnet analogue)

	rxq       *sim.Queue[*pkt.Buf]
	listeners map[uint16]*ikListener
	conns     map[*tcp.Conn]*Sock
	udp       *UDPHost
}

// NewInKernel builds the organization on a host whose netio module is mod.
func NewInKernel(s *sim.Sim, mod *netio.Module, ip ipv4.Addr) *InKernel {
	ik := &InKernel{
		host:      mod.Device().Host(),
		nif:       NewNetif(s, mod, ip),
		table:     tcp.NewTable(),
		ports:     tcp.NewPortAlloc(),
		iss:       10000,
		listeners: make(map[uint16]*ikListener),
		conns:     make(map[*tcp.Conn]*Sock),
	}
	ik.krn = ik.host.NewDomain("kernel", true)
	ik.lock = s.NewSemaphore("ik-engine", 1)
	ik.rxq = sim.NewQueue[*pkt.Buf](s)
	ik.udp = NewUDPHost(ik.nif)
	mod.SetDefaultHandler(func(b *pkt.Buf) { ik.rxq.Push(b) })
	ik.krn.Spawn("softint", ik.softint)
	ik.krn.Spawn("tcp-fast", ik.fastTimer)
	ik.krn.Spawn("tcp-slow", ik.slowTimer)
	return ik
}

func (ik *InKernel) Name() string     { return "inkernel" }
func (ik *InKernel) Host() *kern.Host { return ik.host }

// Netif exposes the interface (UDP examples, diagnostics).
func (ik *InKernel) Netif() *Netif { return ik.nif }

// UDP exposes the host's datagram service.
func (ik *InKernel) UDP() *UDPHost { return ik.udp }

func (ik *InKernel) nextISS() tcp.Seq {
	ik.iss += 64009
	return ik.iss
}

// tcpConfig derives the engine configuration from options and the link.
func tcpConfig(nif *Netif, opts Options) tcp.Config {
	return tcp.Config{
		MSS:            nif.MSS(),
		SndBufSize:     opts.SndBuf,
		RcvBufSize:     opts.RcvBuf,
		Headroom:       nif.Headroom(),
		NoDelay:        opts.NoDelay,
		NoDelayedAck:   opts.NoDelayedAck,
		FastRetransmit: true,
		KeepAliveTicks: opts.KeepAliveTicks,
		RexmtR1:        opts.RexmtR1,
		RexmtR2:        opts.RexmtR2,
	}
}

// SegCost is the per-segment protocol processing charge, identical in all
// organizations ("the protocol stack that is executed is nearly identical
// in all three systems").
func SegCost(h *kern.Host, n int, noChecksum bool) time.Duration {
	m := &h.Cost
	d := m.TCPSegment + m.IPPacket + 2*m.TimerOp
	if !noChecksum {
		d += m.Checksum(n)
	}
	return d
}

// MbufCost is the per-packet BSD buffer-layer charge the monolithic
// organizations add on top of SegCost (the library's shared rings avoid
// it).
func MbufCost(h *kern.Host) time.Duration { return h.Cost.MbufLayer }

// ikConn augments Sock with teardown bookkeeping.
type ikConn struct {
	*Sock
	ik   *InKernel
	opts Options
}

func (kc *ikConn) Read(t *kern.Thread, p []byte) (int, error)  { return kc.Sock.Read(t, p) }
func (kc *ikConn) Write(t *kern.Thread, p []byte) (int, error) { return kc.Sock.Write(t, p) }
func (kc *ikConn) Close(t *kern.Thread) error                  { return kc.Sock.Close(t) }

// newConn wires a Sock for a pcb with Ultrix cost hooks.
func (ik *InKernel) newConn(s *sim.Sim, tc *tcp.Conn, opts Options) *ikConn {
	sock := NewSock(s, tc)
	c := &ik.host.Cost
	sock.Entry = func(t *kern.Thread) { t.Trap() }
	sock.Run = ik.runEngine
	sock.WriteMove = func(t *kern.Thread, n int) {
		if n >= c.RemapMinUltrix {
			t.Compute(c.PageRemap + c.SockbufOp)
		} else {
			t.Compute(c.Copy(n) + time.Duration(1)*c.SockbufOp)
		}
	}
	sock.ReadMove = func(t *kern.Thread, n int) { t.Compute(c.Copy(n) + c.SockbufOp) }
	kc := &ikConn{Sock: sock, ik: ik, opts: opts}
	return kc
}

// attachEngine completes pcb wiring: callbacks, table registration,
// cleanup on close.
func (ik *InKernel) attachEngine(tc *tcp.Conn, kc *ikConn) {
	cb := kc.Sock.Callbacks(func(seg *Seg) { ik.transmit(seg, tc, kc.opts) })
	inner := cb.OnClosed
	cb.OnClosed = func(err error) {
		ik.table.Remove(tc)
		delete(ik.conns, tc)
		ik.ports.Release(tc.Local().Port)
		inner(err)
	}
	tc.SetCallbacks(cb)
	if bus := ik.nif.Mod.Bus; bus != nil {
		tc.SetTrace(bus, ik.host.Name+" "+tc.Local().String()+">"+tc.Peer().String())
	}
	ik.conns[tc] = kc.Sock
}

// transmit charges protocol costs and pushes a segment down IP and the
// device, in the context of whichever thread is driving the engine.
func (ik *InKernel) transmit(seg *Seg, tc *tcp.Conn, opts Options) {
	t := ik.cur
	if t == nil {
		panic("inkernel: engine transmit outside RunEngine")
	}
	t.Compute(SegCost(ik.host, seg.PayloadLen, opts.NoChecksum) + MbufCost(ik.host))
	ik.nif.WrapIP(seg.Buf, ipv4.ProtoTCP, tc.Peer().IP)
	ik.nif.Resolve(t, seg.Buf, tc.Peer().IP, 0, ik.nif.Mod.SendKernel)
}

// runEngine serializes engine entry, tracking the driving thread for
// transmit charging.
func (ik *InKernel) runEngine(t *kern.Thread, fn func()) {
	ik.lock.P(t.Proc)
	ik.cur = t
	fn()
	ik.cur = nil
	ik.lock.V()
}

// Listen implements Stack.
func (ik *InKernel) Listen(t *kern.Thread, port uint16, opts Options) (Listener, error) {
	t.Trap()
	t.Compute(t.Cost().PCBSetup)
	if !ik.ports.Reserve(port) {
		return nil, ErrPortInUse
	}
	l := &ikListener{
		ik:    ik,
		port:  port,
		opts:  opts,
		ready: sim.NewQueue[*ikConn](t.Sim()),
	}
	ik.listeners[port] = l
	return l, nil
}

// ikListener queues established connections for Accept.
type ikListener struct {
	ik     *InKernel
	port   uint16
	opts   Options
	ready  *sim.Queue[*ikConn]
	closed bool
}

// Accept implements Listener.
func (l *ikListener) Accept(t *kern.Thread) (Conn, error) {
	t.Trap()
	return l.ready.Pop(t.Proc), nil
}

// Close implements Listener.
func (l *ikListener) Close(t *kern.Thread) {
	t.Trap()
	l.closed = true
	delete(l.ik.listeners, l.port)
	l.ik.ports.Release(l.port)
}

// Connect implements Stack.
func (ik *InKernel) Connect(t *kern.Thread, remote tcp.Endpoint, opts Options) (Conn, error) {
	t.Trap()
	t.Compute(t.Cost().PCBSetup)
	port, err := ik.ports.Ephemeral()
	if err != nil {
		return nil, err
	}
	local := tcp.Endpoint{IP: ik.nif.IP, Port: port}
	tc := tcp.NewConn(tcpConfig(ik.nif, opts), local, remote, tcp.Callbacks{})
	kc := ik.newConn(t.Sim(), tc, opts)
	ik.attachEngine(tc, kc)
	if err := ik.table.Insert(tc); err != nil {
		ik.ports.Release(local.Port)
		return nil, err
	}
	ik.runEngine(t, func() { tc.OpenActive(ik.nextISS()) })
	if err := kc.WaitEstablished(t); err != nil {
		return nil, err
	}
	return kc, nil
}

// softint is the kernel protocol-input thread: the interrupt handler
// queues frames; this thread demultiplexes and runs the engine, then wakes
// any sleeping reader (the context switch the wakeup costs is charged when
// a waiter exists).
func (ik *InKernel) softint(t *kern.Thread) {
	c := &ik.host.Cost
	for {
		b := ik.rxq.Pop(t.Proc)
		t.Compute(c.ThreadSwitch) // interrupt-to-softint dispatch
		ik.input(t, b)
	}
}

// input processes one inbound frame in thread context. The frame dies here
// on every path: reassembly, the UDP datagram queue and tcp.Conn.Input all
// copy the bytes they keep.
func (ik *InKernel) input(t *kern.Thread, b *pkt.Buf) {
	defer b.Release()
	et, err := ik.nif.StripLink(b)
	if err != nil {
		return
	}
	switch et {
	case link.TypeARP:
		ik.nif.InputARP(t, b, ik.nif.Mod.SendKernel)
		return
	case link.TypeIPv4:
	default:
		return
	}
	h, data, ok := ik.nif.InputIP(b)
	if !ok {
		return
	}
	switch h.Proto {
	case ipv4.ProtoTCP:
		ik.inputTCP(t, h, data)
	case ipv4.ProtoUDP:
		ik.udp.Input(t, h, data)
	}
}

// inputTCP demultiplexes a segment through the PCB table.
func (ik *InKernel) inputTCP(t *kern.Thread, h ipv4.Header, data []byte) {
	seg := pkt.FromBytes(0, data)
	defer seg.Release()
	th, err := tcp.Decode(seg, h.Src, h.Dst)
	if err != nil {
		return // bad checksum: dropped silently, retransmission recovers
	}
	local := tcp.Endpoint{IP: h.Dst, Port: th.DstPort}
	peer := tcp.Endpoint{IP: h.Src, Port: th.SrcPort}
	t.Compute(SegCost(ik.host, seg.Len(), false) + MbufCost(ik.host))

	if tc, ok := ik.table.LookupExact(local, peer); ok {
		ik.deliverSegment(t, tc, th, seg.Bytes())
		return
	}
	if l, ok := ik.listeners[local.Port]; ok && !l.closed {
		if th.Flags&tcp.FlagSYN != 0 && th.Flags&(tcp.FlagACK|tcp.FlagRST) == 0 {
			ik.spawnFromListener(t, l, local, peer, th, seg.Bytes())
			return
		}
	}
	// No endpoint: reset.
	if r, rb := tcp.MakeRST(th, seg.Len(), ik.nif.Headroom(), local, peer); r != nil {
		ik.nif.WrapIP(rb, ipv4.ProtoTCP, peer.IP)
		ik.nif.Resolve(t, rb, peer.IP, 0, ik.nif.Mod.SendKernel)
	}
}

// deliverSegment feeds the engine and charges the reader wakeup.
func (ik *InKernel) deliverSegment(t *kern.Thread, tc *tcp.Conn, th tcp.Header, data []byte) {
	sock := ik.conns[tc]
	waiting := sock != nil && sock.ReadableWaiters() > 0
	ik.runEngine(t, func() { tc.Input(th, data) })
	if waiting {
		t.Compute(ik.host.Cost.ContextSwitch)
	}
}

// spawnFromListener clones a pcb for an inbound SYN (BSD's listen-socket
// cloning) and delivers the SYN to it.
func (ik *InKernel) spawnFromListener(t *kern.Thread, l *ikListener, local, peer tcp.Endpoint, th tcp.Header, data []byte) {
	tc := tcp.NewConn(tcpConfig(ik.nif, l.opts), local, peer, tcp.Callbacks{})
	tc.SetISS(ik.nextISS())
	kc := ik.newConn(t.Sim(), tc, l.opts)
	// Queue for Accept once established.
	base := kc.Sock.Callbacks(func(seg *Seg) { ik.transmit(seg, tc, l.opts) })
	inner := base.OnEstablished
	base.OnEstablished = func() {
		inner()
		if !l.closed {
			l.ready.Push(kc)
		}
	}
	innerClosed := base.OnClosed
	base.OnClosed = func(err error) {
		ik.table.Remove(tc)
		delete(ik.conns, tc)
		innerClosed(err)
	}
	tc.SetCallbacks(base)
	ik.conns[tc] = kc.Sock
	tc.OpenListen()
	if err := ik.table.Insert(tc); err != nil {
		return
	}
	ik.runEngine(t, func() { tc.Input(th, data) })
}

// fastTimer drives 200 ms delayed-ack processing.
func (ik *InKernel) fastTimer(t *kern.Thread) {
	c := &ik.host.Cost
	for {
		t.Sleep(200 * time.Millisecond)
		ik.runEngine(t, func() {
			ik.table.Each(func(tc *tcp.Conn) {
				t.Compute(c.TimerOp)
				tc.FastTick()
			})
		})
	}
}

// slowTimer drives 500 ms protocol timers plus ARP/reassembly expiry.
func (ik *InKernel) slowTimer(t *kern.Thread) {
	c := &ik.host.Cost
	for {
		t.Sleep(500 * time.Millisecond)
		ik.runEngine(t, func() {
			ik.table.Each(func(tc *tcp.Conn) {
				t.Compute(c.TimerOp)
				tc.SlowTick()
			})
		})
		ik.nif.Rsm.Expire(ik.nif.now())
	}
}
