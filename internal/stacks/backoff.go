package stacks

import (
	"math/rand"
	"time"
)

// Backoff computes capped exponential retry delays with seeded jitter. It
// is shared by the library's control-plane RPC retry and the registry
// reconnect path, so both follow one schedule: delay doubles per attempt up
// to a cap, and each delay is jittered into [d/2, d) so concurrent
// retriers on different hosts do not re-synchronize. The jitter stream is
// seeded, keeping runs deterministic.
type Backoff struct {
	base, cap time.Duration
	rng       *rand.Rand
}

// NewBackoff builds a schedule starting at base and capped at cap.
func NewBackoff(seed int64, base, cap time.Duration) *Backoff {
	if base <= 0 {
		base = time.Millisecond
	}
	if cap < base {
		cap = base
	}
	return &Backoff{base: base, cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the delay before retry number attempt (0-based): a jittered
// value in [d/2, d) where d = min(base<<attempt, cap).
func (b *Backoff) Next(attempt int) time.Duration {
	d := b.base
	for i := 0; i < attempt && d < b.cap; i++ {
		d *= 2
	}
	if d > b.cap {
		d = b.cap
	}
	half := d / 2
	return half + time.Duration(b.rng.Int63n(int64(half)+1))
}
