package stacks

import (
	"ulp/internal/tcp"
	"ulp/internal/timerwheel"
)

// TCPWheel is the timing-wheel backend for the BSD tick timers (Varghese &
// Lauck, the mechanism the paper names for making "practically every
// message arrival and departure involves timer operations" cheap). The
// classic shells walk every connection on every 200/500 ms tick — O(conns)
// per tick, which at 10k+ connections dominates the virtual CPU. With the
// wheel a connection is touched only when a timer actually fires:
//
//   - Each connection registers a WheelEnt holding one slow-wheel and one
//     fast-wheel timer plus lastSeen, the slow tick the connection's
//     counters were last advanced to.
//   - Sync, called with the connection's engine locked, first catches the
//     tick counters up to the wheel clock (AdvanceSlowTicks — O(fires),
//     and nothing can have fired unseen because the wheel is always armed
//     for the earliest deadline), then re-arms the slow timer for
//     NextSlowTicks and the fast timer iff a delayed ACK is pending.
//   - The shell's driver threads advance the wheels once per tick period
//     and run each due entry's Sync under that connection's engine lock,
//     charging timer cost per *fire* rather than per connection per tick.
//
// Shells call Sync on engine entry (so handlers see current counters
// before processing a segment) and on engine exit (so timers the segment
// armed get onto the wheel). Both calls are idempotent.
//
// This is a wall-clock and virtual-CPU optimization for many-connection
// worlds and is opt-in per shell; the two-host seed worlds keep the classic
// per-tick loops and their bit-identical virtual-time tables.
type TCPWheel struct {
	slow, fast *timerwheel.Wheel
	// One exec slot per wheel, live only inside the matching Advance*.
	// They must be separate: the slow and fast drivers are different
	// threads, and a fire that blocks on a connection's engine lock
	// suspends its Advance mid-tick — the other driver can run a full
	// Advance (setting and clearing a shared slot) in the gap.
	execSlow func(e *WheelEnt, fn func())
	execFast func(e *WheelEnt, fn func())
}

// WheelEnt is one connection's wheel registration. Owner carries the
// shell's connection object back to the driver's exec callback.
type WheelEnt struct {
	Owner any

	w            *TCPWheel
	tc           *tcp.Conn
	slowT, fastT timerwheel.Timer
	lastSeen     uint64
	slowDeadline uint64
}

// NewTCPWheel builds the two wheels: the slow wheel spans 2^16 ticks
// (~9 virtual hours at 500 ms), far beyond the largest BSD timer; the fast
// wheel only ever holds next-tick delayed-ACK deadlines.
func NewTCPWheel() *TCPWheel {
	return &TCPWheel{
		slow: timerwheel.New(2, 256),
		fast: timerwheel.New(1, 16),
	}
}

// TimerOps reports total wheel operations (cost accounting, diagnostics).
func (w *TCPWheel) TimerOps() int { return w.slow.Ops() + w.fast.Ops() }

// Armed reports pending timers across both wheels (diagnostics).
func (w *TCPWheel) Armed() int { return w.slow.Armed() + w.fast.Armed() }

// Add registers a connection. The returned entry starts synced to the
// current wheel clock; the caller must invoke Sync under the engine lock
// after any engine activity (Open, Input) arms timers.
func (w *TCPWheel) Add(tc *tcp.Conn, owner any) *WheelEnt {
	e := &WheelEnt{Owner: owner, w: w, tc: tc, lastSeen: w.slow.Now()}
	return e
}

// Drop deregisters a connection, cancelling any pending timers. Safe to
// call twice, and a no-op in tick mode (nil receiver or entry).
func (w *TCPWheel) Drop(e *WheelEnt) {
	if w == nil || e == nil {
		return
	}
	w.slow.Cancel(&e.slowT)
	w.fast.Cancel(&e.fastT)
}

// Sync reconciles one connection with the wheel clock. Call only with the
// connection's engine lock held. It advances the tick counters to "now"
// (firing any counter whose deadline the wheel has reached — normally none
// on engine entry, exactly one when called from a wheel fire), then
// re-arms both wheel timers from the resulting counter state.
func (w *TCPWheel) Sync(e *WheelEnt) {
	if n := w.slow.Now() - e.lastSeen; n > 0 {
		e.lastSeen = w.slow.Now()
		e.tc.AdvanceSlowTicks(int(n))
	}
	next := e.tc.NextSlowTicks()
	if next == 0 {
		w.slow.Cancel(&e.slowT)
	} else {
		deadline := w.slow.Now() + uint64(next)
		if !e.slowT.Armed() || e.slowDeadline != deadline {
			w.slow.Set(&e.slowT, uint64(next), e.fireSlow)
			e.slowDeadline = deadline
		}
	}
	if e.tc.DelAckPending() {
		if !e.fastT.Armed() {
			w.fast.Set(&e.fastT, 1, e.fireFast)
		}
	} else if e.fastT.Armed() {
		w.fast.Cancel(&e.fastT)
	}
}

// fireSlow runs when the slow wheel reaches the connection's earliest
// deadline: the driver's exec acquires the engine lock, and Sync both
// fires the due counter (through the ordinary SlowTick path) and re-arms.
// If another thread already advanced the connection past this deadline
// while we waited for the lock, Sync degenerates to a no-op re-arm.
func (e *WheelEnt) fireSlow() {
	e.w.execSlow(e, func() { e.w.Sync(e) })
}

// fireFast flushes the pending delayed ACK.
func (e *WheelEnt) fireFast() {
	e.w.execFast(e, func() {
		e.w.Sync(e)
		e.tc.FastTick()
		e.w.Sync(e)
	})
}

// AdvanceSlow moves the slow wheel one tick, dispatching each due entry
// through exec, which must run the provided fn under that connection's
// engine lock (and charge whatever per-fire cost the shell models). It
// returns the number of entries fired.
func (w *TCPWheel) AdvanceSlow(exec func(e *WheelEnt, fn func())) int {
	w.execSlow = exec
	fired := w.slow.Advance(1)
	w.execSlow = nil
	return fired
}

// AdvanceFast is AdvanceSlow for the 200 ms delayed-ACK wheel.
func (w *TCPWheel) AdvanceFast(exec func(e *WheelEnt, fn func())) int {
	w.execFast = exec
	fired := w.fast.Advance(1)
	w.execFast = nil
	return fired
}
