// Package stacks defines the organization-independent socket interface of
// Figure 1 and implements the two monolithic baselines the paper measures
// against: the Ultrix-style in-kernel organization and the Mach/UX-style
// single-server organization (with mapped device). The paper's proposed
// user-level library organization lives in internal/core and implements the
// same interface, so experiments are an "apples to apples" comparison: the
// identical TCP/IP engine runs under all three, and only the structural
// costs differ.
package stacks

import (
	"errors"
	"fmt"

	"ulp/internal/kern"
	"ulp/internal/tcp"
)

// Options carries the per-connection knobs an application may set — the
// paper's §5 "canned options that determine certain characteristics of a
// protocol" (the simple form of application-specific specialization).
type Options struct {
	// SndBuf and RcvBuf size the socket buffers (0 = BSD default 4096).
	SndBuf, RcvBuf int
	// NoDelay disables the Nagle algorithm.
	NoDelay bool
	// NoDelayedAck acknowledges every segment immediately.
	NoDelayedAck bool
	// NoChecksum skips charging checksum time (trusted-link variant; the
	// engine still computes real checksums so corruption tests stay
	// honest — only the cost model is relieved, as a hardware-checksum
	// link would).
	NoChecksum bool
	// Backlog bounds concurrent handshakes held for a listener; a SYN
	// arriving beyond it is deterministically dropped (the client's
	// retransmission retries once capacity frees up). 0 = implementation
	// default.
	Backlog int
	// KeepAliveTicks enables keepalive probing after that many idle slow
	// ticks (500 ms each); 0 disables. With it, a dead peer or permanent
	// partition surfaces as ErrConnTimeout even on an idle connection.
	KeepAliveTicks int
	// RexmtR1 and RexmtR2 tune the RFC 1122 retransmission thresholds per
	// connection (see tcp.Config); 0 selects the defaults (3 and 12).
	// Lowering R2 makes a blackholed connection fail fast with
	// ErrConnTimeout instead of retrying for minutes — the per-connection
	// robustness policy a user-level stack can offer where a kernel
	// implementation has one global knob.
	RexmtR1, RexmtR2 int
}

// Stack is one protocol organization instantiated on one host.
type Stack interface {
	// Name identifies the organization ("userlib", "inkernel",
	// "singleserver").
	Name() string

	// Host returns the host this stack instance runs on.
	Host() *kern.Host

	// Listen binds and listens on a local TCP port. Called from an
	// application thread on this host.
	Listen(t *kern.Thread, port uint16, opts Options) (Listener, error)

	// Connect actively opens a connection. Called from an application
	// thread; blocks until established or failed.
	Connect(t *kern.Thread, remote tcp.Endpoint, opts Options) (Conn, error)
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks until a connection is established.
	Accept(t *kern.Thread) (Conn, error)
	// Close stops listening.
	Close(t *kern.Thread)
}

// Conn is an established connection with blocking semantics.
type Conn interface {
	// Read blocks until at least one byte (or EOF) is available; it
	// returns 0, nil at end of stream.
	Read(t *kern.Thread, p []byte) (int, error)
	// Write blocks until all of p is accepted by the send buffer.
	Write(t *kern.Thread, p []byte) (int, error)
	// Close performs an orderly release (FIN); it does not wait for the
	// peer.
	Close(t *kern.Thread) error
	// Stats exposes the protocol counters.
	Stats() tcp.Stats
	// State exposes the protocol state (diagnostics and tests).
	State() tcp.State
}

// Errors shared by the implementations.
var (
	ErrClosed      = errors.New("stacks: connection closed")
	ErrReset       = errors.New("stacks: connection reset by peer")
	ErrRefused     = errors.New("stacks: connection refused")
	ErrTimeout     = errors.New("stacks: connection timed out")
	ErrPortInUse   = errors.New("stacks: port in use")
	ErrUnreachable = errors.New("stacks: host unreachable")

	// ErrConnTimeout reports that an established connection was abandoned
	// after exhausting its R2 retransmission budget or its keepalive
	// probes (a dead peer or an unhealed partition). It wraps ErrTimeout,
	// so errors.Is(err, ErrTimeout) continues to match; blocked Read/Write/
	// Close calls observe it through the connection's closed state.
	ErrConnTimeout = fmt.Errorf("%w (retransmission/keepalive give-up)", ErrTimeout)

	// ErrRegistryUnavailable reports that the registry server did not
	// answer a control-plane RPC within its bounded retry budget. Callers
	// degrade gracefully (fail the connect/bind) instead of blocking
	// forever on a dead or wedged server.
	ErrRegistryUnavailable = errors.New("stacks: registry unavailable")

	// ErrAdmissionDenied reports that the registry's admission layer
	// refused a setup because the application domain already has its quota
	// of outstanding setups. The library backs off and retries; it reaches
	// applications only when the retry budget is exhausted too.
	ErrAdmissionDenied = errors.New("stacks: connection setup admission denied")
)

// MapError converts engine close reasons to API errors.
func MapError(err error) error {
	switch err {
	case nil:
		return nil
	case tcp.ErrReset:
		return ErrReset
	case tcp.ErrRefused:
		return ErrRefused
	case tcp.ErrTimeout, tcp.ErrKeepalive:
		return ErrConnTimeout
	}
	return err
}
