package stacks

import (
	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/pkt"
	"ulp/internal/sim"
	"ulp/internal/udp"
)

// UDPHost is the datagram service of a host's protocol stack, shared by the
// organizations (the monolithic stacks run it kernel-side; the reqresp
// example and the registry-bypass ablation are built on it).
type UDPHost struct {
	nif   *Netif
	table *udp.Table
	conds map[uint16]*sim.Cond
}

// NewUDPHost creates the service over a network interface.
func NewUDPHost(nif *Netif) *UDPHost {
	return &UDPHost{nif: nif, table: udp.NewTable(), conds: make(map[uint16]*sim.Cond)}
}

// UDPSock is one bound endpoint with blocking receive.
type UDPSock struct {
	h    *UDPHost
	sock *udp.Sock
	cond *sim.Cond
}

// Bind claims a local port.
func (u *UDPHost) Bind(t *kern.Thread, port uint16) (*UDPSock, error) {
	t.Trap()
	s, err := u.table.Bind(udp.Endpoint{IP: u.nif.IP, Port: port}, 0)
	if err != nil {
		return nil, ErrPortInUse
	}
	c := u.nif.sim.NewCond()
	u.conds[port] = c
	return &UDPSock{h: u, sock: s, cond: c}, nil
}

// Input delivers an inbound datagram (called from the organization's input
// thread with the IP header already validated).
func (u *UDPHost) Input(t *kern.Thread, h ipv4.Header, data []byte) {
	c := &t.Dom.Host.Cost
	seg := pkt.FromBytes(0, data)
	defer seg.Release()
	uh, err := udp.Decode(seg, h.Src, h.Dst)
	if err != nil {
		return
	}
	t.Compute(c.UDPPacket + c.Checksum(seg.Len()))
	dst := udp.Endpoint{IP: h.Dst, Port: uh.DstPort}
	d := udp.Datagram{
		From:    udp.Endpoint{IP: h.Src, Port: uh.SrcPort},
		Payload: append([]byte(nil), seg.Bytes()...),
	}
	if u.table.Deliver(dst, d) {
		if cond := u.conds[uh.DstPort]; cond != nil {
			if cond.Waiters() > 0 {
				t.Compute(c.ContextSwitch)
			}
			cond.Signal()
		}
	}
	// Port unreachable would be ICMP; this stack drops silently, as the
	// paper's simplified IP library does.
}

// Recv blocks for the next datagram.
func (s *UDPSock) Recv(t *kern.Thread) udp.Datagram {
	t.Trap()
	for {
		if d, ok := s.sock.Recv(); ok {
			t.Compute(t.Cost().Copy(len(d.Payload)))
			return d
		}
		s.cond.Wait(t.Proc)
	}
}

// SendTo transmits a datagram, fragmenting when it exceeds the link MTU.
func (s *UDPSock) SendTo(t *kern.Thread, dst udp.Endpoint, payload []byte) error {
	c := t.Cost()
	t.Trap()
	t.Compute(c.Copy(len(payload)) + c.UDPPacket + c.Checksum(len(payload)))
	b := pkt.FromBytes(s.h.nif.Headroom()+udp.HeaderLen, payload)
	uh := udp.Header{SrcPort: s.sock.Local.Port, DstPort: dst.Port}
	uh.Encode(b, s.h.nif.IP, dst.IP)
	frags, err := s.h.nif.WrapIPFragments(b, ipv4.ProtoUDP, dst.IP)
	if err != nil {
		return err
	}
	for _, f := range frags {
		s.h.nif.Resolve(t, f, dst.IP, 0, s.h.nif.Mod.SendKernel)
	}
	return nil
}

// Local returns the bound endpoint.
func (s *UDPSock) Local() udp.Endpoint { return s.sock.Local }

// Close releases the port.
func (s *UDPSock) Close(t *kern.Thread) {
	t.Trap()
	s.h.table.Unbind(s.sock.Local.Port)
	delete(s.h.conds, s.sock.Local.Port)
}
