package stacks

import (
	"testing"
	"time"
)

// TestBackoffSchedule pins the retry schedule: delay number n is jittered
// into [d/2, d) for d = min(base·2ⁿ, cap).
func TestBackoffSchedule(t *testing.T) {
	b := NewBackoff(42, 100*time.Millisecond, 800*time.Millisecond)
	wants := []time.Duration{
		100 * time.Millisecond, // attempt 0
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		800 * time.Millisecond, // capped
		800 * time.Millisecond,
	}
	for attempt, want := range wants {
		d := b.Next(attempt)
		if d < want/2 || d > want {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, want/2, want)
		}
	}
}

// TestBackoffDeterministic: same seed, same jitter sequence; different
// seeds de-synchronize.
func TestBackoffDeterministic(t *testing.T) {
	a := NewBackoff(7, 50*time.Millisecond, time.Second)
	b := NewBackoff(7, 50*time.Millisecond, time.Second)
	c := NewBackoff(8, 50*time.Millisecond, time.Second)
	same, diff := true, true
	for i := 0; i < 8; i++ {
		da, db, dc := a.Next(i), b.Next(i), c.Next(i)
		if da != db {
			same = false
		}
		if da != dc {
			diff = false
		}
	}
	if !same {
		t.Fatal("same seed produced different schedules")
	}
	if diff {
		t.Fatal("different seeds produced identical schedules (jitter inert)")
	}
}
