package stacks

import (
	"fmt"
	"time"

	"ulp/internal/arp"
	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/netdev"
	"ulp/internal/netio"
	"ulp/internal/pkt"
	"ulp/internal/sim"
)

// Netif wires an IP address to a network I/O module: IP encapsulation and
// fragmentation/reassembly, ARP resolution with a pending queue, and link
// framing for either device type. All organizations share it; only the
// transmit entry (kernel path vs capability path) differs.
type Netif struct {
	Mod *netio.Module
	IP  ipv4.Addr
	HW  link.Addr
	ids ipv4.IDGen
	ARP *arp.Cache
	Rsm *ipv4.Reassembler
	an1 bool
	sim *sim.Sim
}

// NewNetif builds the interface wiring for a module.
func NewNetif(s *sim.Sim, mod *netio.Module, ip ipv4.Addr) *Netif {
	_, an1 := mod.Device().(*netdev.AN1)
	return &Netif{
		Mod: mod,
		IP:  ip,
		HW:  mod.Device().Addr(),
		ARP: arp.NewCache(mod.Device().Addr(), ip, 1200), // 10 min at 500 ms ticks
		Rsm: ipv4.NewReassembler(60),                     // 30 s at 500 ms ticks
		an1: an1,
		sim: s,
	}
}

// IsAN1 reports whether the underlying device demultiplexes in hardware.
func (n *Netif) IsAN1() bool { return n.an1 }

// MSS returns the TCP maximum segment size for this link.
func (n *Netif) MSS() int { return n.Mod.Device().MTU() - ipv4.HeaderLen - 20 }

// Headroom returns the buffer headroom needed below the TCP/UDP header.
func (n *Netif) Headroom() int { return n.Mod.Device().HdrLen() + ipv4.HeaderLen }

// now returns the ARP/reassembly coarse clock (500 ms units).
func (n *Netif) now() uint64 {
	return uint64(time.Duration(n.sim.Now()) / (500 * time.Millisecond))
}

// WrapIP prepends the IP header onto a transport segment. The caller then
// frames and transmits it (possibly after ARP).
func (n *Netif) WrapIP(seg *pkt.Buf, proto uint8, dst ipv4.Addr) {
	h := ipv4.Header{
		ID: n.ids.Next(), DF: true, TTL: 64,
		Proto: proto, Src: n.IP, Dst: dst,
	}
	h.Encode(seg)
}

// WrapIPFragments encapsulates a datagram that may exceed the MTU (UDP
// path), returning ready-to-frame IP packets.
func (n *Netif) WrapIPFragments(payload *pkt.Buf, proto uint8, dst ipv4.Addr) ([]*pkt.Buf, error) {
	h := ipv4.Header{
		ID: n.ids.Next(), TTL: 64,
		Proto: proto, Src: n.IP, Dst: dst,
	}
	return ipv4.Fragment(h, payload, n.Mod.Device().MTU(), n.Mod.Device().HdrLen())
}

// Frame prepends the link header for a resolved destination. bqi is the
// peer's negotiated buffer queue index (AN1 only; 0 = kernel default).
func (n *Netif) Frame(ippkt *pkt.Buf, dstHW link.Addr, bqi uint16) {
	if n.an1 {
		h := link.AN1Header{Dst: dstHW, Src: n.HW, BQI: bqi, Type: link.TypeIPv4}
		h.Encode(ippkt)
	} else {
		h := link.EthHeader{Dst: dstHW, Src: n.HW, Type: link.TypeIPv4}
		h.Encode(ippkt)
	}
}

// Transmit is the trusted (kernel/server mapped-device) transmit path.
type Transmit func(t *kern.Thread, frame *pkt.Buf)

// Resolve sends ippkt to dst, resolving dst's link address first if needed:
// a cache hit frames and transmits immediately; a miss queues the packet
// and broadcasts an ARP request via tx.
func (n *Netif) Resolve(t *kern.Thread, ippkt *pkt.Buf, dst ipv4.Addr, bqi uint16, tx Transmit) {
	if !ipv4.SameSubnet(n.IP, dst) {
		// No gateway functions (paper): off-subnet traffic is dropped.
		return
	}
	if hw, ok := n.ARP.Lookup(n.now(), dst); ok {
		n.Frame(ippkt, hw, bqi)
		tx(t, ippkt)
		return
	}
	ippkt.Meta.BQI = bqi // remember for transmission after resolution
	if n.ARP.Enqueue(dst, ippkt) {
		req := n.ARP.MakeRequest(dst)
		n.txARP(t, req, link.Broadcast, tx)
	}
}

// txARP frames and transmits an ARP packet.
func (n *Netif) txARP(t *kern.Thread, p arp.Packet, dstHW link.Addr, tx Transmit) {
	b := p.Encode(n.Mod.Device().HdrLen())
	if n.an1 {
		h := link.AN1Header{Dst: dstHW, Src: n.HW, BQI: 0, Type: link.TypeARP}
		h.Encode(b)
	} else {
		h := link.EthHeader{Dst: dstHW, Src: n.HW, Type: link.TypeARP}
		h.Encode(b)
	}
	tx(t, b)
}

// InputARP processes a received ARP packet (kernel side in every
// organization), replying and flushing newly deliverable queued packets.
func (n *Netif) InputARP(t *kern.Thread, b *pkt.Buf, tx Transmit) {
	p, err := arp.Decode(b)
	if err != nil {
		return
	}
	reply, released := n.ARP.Input(n.now(), p)
	if reply != nil {
		n.txARP(t, *reply, p.SenderHW, tx)
	}
	for _, q := range released {
		hw, _ := n.ARP.Lookup(n.now(), p.SenderIP)
		n.Frame(q, hw, q.Meta.BQI)
		tx(t, q)
	}
}

// StripLink removes and returns the link-level type of an inbound frame.
func (n *Netif) StripLink(b *pkt.Buf) (link.EtherType, error) {
	if n.an1 {
		h, err := link.DecodeAN1(b)
		if err != nil {
			return 0, err
		}
		return h.Type, nil
	}
	h, err := link.DecodeEth(b)
	if err != nil {
		return 0, err
	}
	return h.Type, nil
}

// InputIP decodes an inbound IP packet addressed to this host, reassembling
// fragments. It returns (header, payload bytes, true) when a complete
// datagram for us is available.
func (n *Netif) InputIP(b *pkt.Buf) (ipv4.Header, []byte, bool) {
	h, err := ipv4.Decode(b)
	if err != nil {
		return ipv4.Header{}, nil, false
	}
	if h.Dst != n.IP {
		return ipv4.Header{}, nil, false // not ours; no forwarding
	}
	if h.MF || h.FragOff > 0 {
		hh, data, done := n.Rsm.Insert(n.now(), h, b.Bytes())
		if !done {
			return ipv4.Header{}, nil, false
		}
		return hh, data, true
	}
	return h, b.Bytes(), true
}

// String identifies the interface for diagnostics.
func (n *Netif) String() string {
	return fmt.Sprintf("%s(%s,%s)", n.Mod.Device().Name(), n.IP, n.HW)
}
