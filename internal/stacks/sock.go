package stacks

import (
	"ulp/internal/kern"
	"ulp/internal/pkt"
	"ulp/internal/sim"
	"ulp/internal/tcp"
)

// pktBuf shortens the segment buffer type in callback signatures.
type pktBuf = pkt.Buf

// Sock wraps a TCP engine connection with blocking semantics for
// application threads. Each organization supplies the cost hooks that make
// its structure visible: what a socket call costs to enter (trap, procedure
// call, or IPC) and what moving n bytes between application and protocol
// costs (copy, page remap, or nothing via shared memory).
type Sock struct {
	TC *tcp.Conn

	// Entry is charged once per socket call (Read/Write/Close).
	Entry func(t *kern.Thread)
	// Run brackets engine invocations so the organization can bind the
	// driving thread for transmit charging; nil means call directly.
	Run func(t *kern.Thread, fn func())
	// WriteMove and ReadMove are charged per data movement of n bytes
	// between the application and the protocol's buffers.
	WriteMove func(t *kern.Thread, n int)
	ReadMove  func(t *kern.Thread, n int)

	readable    *sim.Cond
	writable    *sim.Cond
	established *sim.Cond
	isEst       bool
	closed      bool
	err         error
}

// NewSock builds the wrapper; callers attach Callbacks() to the engine.
func NewSock(s *sim.Sim, tc *tcp.Conn) *Sock {
	return &Sock{
		TC:          tc,
		readable:    s.NewCond(),
		writable:    s.NewCond(),
		established: s.NewCond(),
	}
}

// Callbacks returns the engine callbacks that drive the blocking
// machinery; send is the organization's transmit path.
func (s *Sock) Callbacks(send func(seg *Seg)) tcp.Callbacks {
	return tcp.Callbacks{
		Send: func(b *pktBuf, h tcp.Header, pl int) {
			send(&Seg{Buf: b, Hdr: h, PayloadLen: pl})
		},
		OnEstablished: func() {
			s.isEst = true
			s.established.Broadcast()
			s.writable.Broadcast()
		},
		OnReadable: func() { s.readable.Broadcast() },
		OnWritable: func() { s.writable.Broadcast() },
		OnClosed: func(err error) {
			s.closed = true
			s.err = MapError(err)
			s.readable.Broadcast()
			s.writable.Broadcast()
			s.established.Broadcast()
		},
	}
}

// Established reports whether the connection has completed its handshake.
func (s *Sock) Established() bool { return s.isEst }

// MarkEstablished records that the connection arrived already established
// (a registry handoff restores the engine past the handshake, so the
// OnEstablished callback never fires locally).
func (s *Sock) MarkEstablished() { s.isEst = true }

// Closed reports whether the engine reached CLOSED, with its error.
func (s *Sock) Closed() (bool, error) { return s.closed, s.err }

// Fail force-closes the socket with err without driving the engine — the
// control plane backing the connection is gone (registry reconnect budget
// spent, or the reborn registry refused the re-registration claim). Every
// blocked caller is woken and sees err.
func (s *Sock) Fail(err error) {
	if s.closed {
		return
	}
	s.closed = true
	s.err = err
	s.readable.Broadcast()
	s.writable.Broadcast()
	s.established.Broadcast()
}

// WaitEstablished blocks until the handshake completes or fails.
func (s *Sock) WaitEstablished(t *kern.Thread) error {
	for !s.isEst && !s.closed {
		s.established.Wait(t.Proc)
	}
	if s.closed && !s.isEst {
		if s.err != nil {
			return s.err
		}
		return ErrClosed
	}
	return nil
}

// ReadableWaiters reports threads blocked in Read, so input paths can
// charge their wakeup cost.
func (s *Sock) ReadableWaiters() int { return s.readable.Waiters() }

// run invokes an engine operation under the organization's bracket.
func (s *Sock) run(t *kern.Thread, fn func()) {
	if s.Run != nil {
		s.Run(t, fn)
		return
	}
	fn()
}

// Read blocks until data or EOF; EOF returns (0, nil).
func (s *Sock) Read(t *kern.Thread, p []byte) (int, error) {
	if s.Entry != nil {
		s.Entry(t)
	}
	for {
		if n := s.TC.Readable(); n > 0 {
			var got int
			s.run(t, func() { got = s.TC.Read(p) })
			if s.ReadMove != nil {
				s.ReadMove(t, got)
			}
			return got, nil
		}
		if s.TC.EOF() {
			return 0, nil
		}
		if s.closed {
			if s.err != nil {
				return 0, s.err
			}
			return 0, nil
		}
		s.readable.Wait(t.Proc)
	}
}

// Write blocks until all of p has been accepted by the send buffer.
func (s *Sock) Write(t *kern.Thread, p []byte) (int, error) {
	if s.Entry != nil {
		s.Entry(t)
	}
	total := 0
	for total < len(p) {
		if s.closed {
			if s.err != nil {
				return total, s.err
			}
			return total, ErrClosed
		}
		var n int
		s.run(t, func() { n = s.TC.Write(p[total:]) })
		if n > 0 {
			if s.WriteMove != nil {
				s.WriteMove(t, n)
			}
			total += n
			continue
		}
		s.writable.Wait(t.Proc)
	}
	return total, nil
}

// Close performs the orderly release.
func (s *Sock) Close(t *kern.Thread) error {
	if s.Entry != nil {
		s.Entry(t)
	}
	s.run(t, func() { s.TC.Close() })
	return nil
}

// Stats and State delegate to the engine.
func (s *Sock) Stats() tcp.Stats { return s.TC.Stats() }
func (s *Sock) State() tcp.State { return s.TC.State() }

// Seg is one outbound TCP segment handed to an organization's transmit
// path: the encoded segment bytes plus its parsed header for charging.
type Seg struct {
	Buf        *pktBuf
	Hdr        tcp.Header
	PayloadLen int
}
