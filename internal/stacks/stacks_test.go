package stacks

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ulp/internal/costs"
	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/netdev"
	"ulp/internal/netio"
	"ulp/internal/pkt"
	"ulp/internal/sim"
	"ulp/internal/tcp"
	"ulp/internal/udp"
	"ulp/internal/wire"
)

// twoHosts builds two hosts with the given organization constructor.
func twoHosts(an1 bool) (*sim.Sim, []*netio.Module, []ipv4.Addr) {
	s := sim.New()
	var seg *wire.Segment
	if an1 {
		seg = wire.New(s, wire.AN1Config())
	} else {
		seg = wire.New(s, wire.EthernetConfig())
	}
	var mods []*netio.Module
	var ips []ipv4.Addr
	for i := 0; i < 2; i++ {
		h := kern.NewHost(s, []string{"h0", "h1"}[i], costs.Default())
		var dev netdev.Device
		if an1 {
			dev = netdev.NewAN1(h, seg, link.MakeAddr(i+1), 0)
		} else {
			dev = netdev.NewLance(h, seg, link.MakeAddr(i+1))
		}
		mods = append(mods, netio.New(h, dev))
		ips = append(ips, ipv4.Addr{10, 0, 0, byte(i + 1)})
	}
	return s, mods, ips
}

func TestInKernelEcho(t *testing.T) {
	s, mods, ips := twoHosts(false)
	ik0 := NewInKernel(s, mods[0], ips[0])
	ik1 := NewInKernel(s, mods[1], ips[1])
	data := []byte("monolithic in-kernel organization echo test payload")
	var got []byte
	done := false
	ik0.Host().NewDomain("app", false).Spawn("srv", func(th *kern.Thread) {
		l, err := ik0.Listen(th, 80, Options{})
		if err != nil {
			t.Error(err)
			return
		}
		c, _ := l.Accept(th)
		buf := make([]byte, 256)
		n, _ := c.Read(th, buf)
		c.Write(th, buf[:n])
	})
	ik1.Host().NewDomain("app", false).SpawnAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		c, err := ik1.Connect(th, tcp.Endpoint{IP: ips[0], Port: 80}, Options{})
		if err != nil {
			t.Error(err)
			done = true
			return
		}
		c.Write(th, data)
		buf := make([]byte, 256)
		for len(got) < len(data) {
			n, _ := c.Read(th, buf)
			got = append(got, buf[:n]...)
		}
		done = true
	})
	s.RunUntil(time.Minute, func() bool { return done })
	if !bytes.Equal(got, data) {
		t.Fatalf("echo mismatch: %q", got)
	}
}

func TestListenPortConflict(t *testing.T) {
	s, mods, ips := twoHosts(false)
	ik := NewInKernel(s, mods[0], ips[0])
	_ = NewInKernel(s, mods[1], ips[1])
	var err1, err2 error
	done := false
	ik.Host().NewDomain("app", false).Spawn("a", func(th *kern.Thread) {
		_, err1 = ik.Listen(th, 80, Options{})
		_, err2 = ik.Listen(th, 80, Options{})
		done = true
	})
	s.RunUntil(time.Second, func() bool { return done })
	if err1 != nil || err2 != ErrPortInUse {
		t.Fatalf("err1=%v err2=%v", err1, err2)
	}
}

func TestListenerCloseReleasesPort(t *testing.T) {
	s, mods, ips := twoHosts(false)
	ik := NewInKernel(s, mods[0], ips[0])
	_ = NewInKernel(s, mods[1], ips[1])
	done := false
	ik.Host().NewDomain("app", false).Spawn("a", func(th *kern.Thread) {
		l, err := ik.Listen(th, 80, Options{})
		if err != nil {
			t.Error(err)
		}
		l.Close(th)
		if _, err := ik.Listen(th, 80, Options{}); err != nil {
			t.Errorf("relisten after close: %v", err)
		}
		done = true
	})
	s.RunUntil(time.Second, func() bool { return done })
	if !done {
		t.Fatal("incomplete")
	}
}

func TestSingleServerRSTForUnknownPort(t *testing.T) {
	s, mods, ips := twoHosts(false)
	_ = NewSingleServer(s, mods[0], ips[0])
	ss1 := NewSingleServer(s, mods[1], ips[1])
	var err error
	done := false
	ss1.Host().NewDomain("app", false).Spawn("cli", func(th *kern.Thread) {
		_, err = ss1.Connect(th, tcp.Endpoint{IP: ips[0], Port: 4242}, Options{})
		done = true
	})
	s.RunUntil(time.Minute, func() bool { return done })
	if err != ErrRefused {
		t.Fatalf("connect to closed port: err = %v, want refused", err)
	}
}

func TestUDPExchangeAndFragmentation(t *testing.T) {
	s, mods, ips := twoHosts(false)
	ik0 := NewInKernel(s, mods[0], ips[0])
	ik1 := NewInKernel(s, mods[1], ips[1])
	// A 5000-byte datagram must fragment over the 1500-byte Ethernet and
	// reassemble on the far side.
	payload := make([]byte, 5000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got udp.Datagram
	done := false
	ik0.Host().NewDomain("app", false).Spawn("srv", func(th *kern.Thread) {
		sock, err := ik0.UDP().Bind(th, 53)
		if err != nil {
			t.Error(err)
			return
		}
		got = sock.Recv(th)
		// Reply to the sender.
		sock.SendTo(th, got.From, []byte("ack"))
	})
	var reply udp.Datagram
	ik1.Host().NewDomain("app", false).SpawnAfter(time.Millisecond, "cli", func(th *kern.Thread) {
		sock, err := ik1.UDP().Bind(th, 1053)
		if err != nil {
			t.Error(err)
			done = true
			return
		}
		sock.SendTo(th, udp.Endpoint{IP: ips[0], Port: 53}, payload)
		reply = sock.Recv(th)
		done = true
	})
	s.RunUntil(time.Minute, func() bool { return done })
	if !done {
		t.Fatal("udp exchange incomplete")
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatalf("reassembled datagram mismatch (%d bytes)", len(got.Payload))
	}
	if got.From.Port != 1053 || string(reply.Payload) != "ack" {
		t.Fatalf("from=%v reply=%q", got.From, reply.Payload)
	}
}

func TestNetifOffSubnetDropped(t *testing.T) {
	s, mods, ips := twoHosts(false)
	nif := NewNetif(s, mods[0], ips[0])
	done := false
	sent := 0
	mods[0].Device().Host().NewDomain("k", true).Spawn("tx", func(th *kern.Thread) {
		b := pktWithIP(nif, ipv4.Addr{192, 168, 9, 9})
		nif.Resolve(th, b, ipv4.Addr{192, 168, 9, 9}, 0, func(t2 *kern.Thread, f *pktBuf) { sent++ })
		done = true
	})
	s.RunUntil(time.Second, func() bool { return done })
	if sent != 0 {
		t.Fatal("off-subnet packet transmitted despite no gateway support")
	}
}

func pktWithIP(nif *Netif, dst ipv4.Addr) *pktBuf {
	b := pktNew(nif.Headroom(), 8)
	nif.WrapIP(b, ipv4.ProtoUDP, dst)
	return b
}

func TestNetifARPResolutionFlow(t *testing.T) {
	s, mods, ips := twoHosts(false)
	nif0 := NewNetif(s, mods[0], ips[0])
	nif1 := NewNetif(s, mods[1], ips[1])
	// Wire host 1's default handler to answer ARP.
	krn1 := mods[1].Device().Host().NewDomain("kernel", true)
	mods[1].SetDefaultHandler(func(b *pktBuf) {
		krn1.Spawn("arp", func(th *kern.Thread) {
			if et, err := nif1.StripLink(b); err == nil && et == link.TypeARP {
				nif1.InputARP(th, b, nif1.Mod.SendKernel)
			}
		})
	})
	// Host 0's default handler feeds its own ARP machine.
	delivered := 0
	krn0 := mods[0].Device().Host().NewDomain("kernel", true)
	mods[0].SetDefaultHandler(func(b *pktBuf) {
		krn0.Spawn("in", func(th *kern.Thread) {
			et, err := nif0.StripLink(b)
			if err != nil {
				return
			}
			switch et {
			case link.TypeARP:
				nif0.InputARP(th, b, nif0.Mod.SendKernel)
			case link.TypeIPv4:
				delivered++
			}
		})
	})
	// Count IP frames received at host 1.
	got1 := 0
	mods[1].SetDefaultHandler(func(b *pktBuf) {
		krn1.Spawn("in", func(th *kern.Thread) {
			et, err := nif1.StripLink(b)
			if err != nil {
				return
			}
			switch et {
			case link.TypeARP:
				nif1.InputARP(th, b, nif1.Mod.SendKernel)
			case link.TypeIPv4:
				got1++
			}
		})
	})
	done := false
	krn0.Spawn("tx", func(th *kern.Thread) {
		// Two sends: the first queues pending ARP; both flush on reply.
		nif0.Resolve(th, pktWithIP(nif0, ips[1]), ips[1], 0, nif0.Mod.SendKernel)
		nif0.Resolve(th, pktWithIP(nif0, ips[1]), ips[1], 0, nif0.Mod.SendKernel)
		done = true
	})
	s.RunUntil(time.Second, func() bool { return done && got1 >= 2 })
	if got1 != 2 {
		t.Fatalf("delivered %d IP frames after ARP resolution, want 2", got1)
	}
	// The cache is now warm: direct framing without a new ARP exchange.
	if _, ok := nif0.ARP.Lookup(0, ips[1]); !ok {
		t.Fatal("ARP cache not warm after exchange")
	}
	_ = delivered
}

func TestSockBlockingSemantics(t *testing.T) {
	s := sim.New()
	h := kern.NewHost(s, "h", costs.Default())
	dom := h.NewDomain("app", false)
	local := tcp.Endpoint{IP: ipv4.Addr{10, 0, 0, 1}, Port: 1}
	peer := tcp.Endpoint{IP: ipv4.Addr{10, 0, 0, 2}, Port: 2}
	tc := tcp.NewConn(tcp.Config{}, local, peer, tcp.Callbacks{})
	sock := NewSock(s, tc)
	tc.SetCallbacks(sock.Callbacks(func(seg *Seg) {}))

	var readReturned bool
	dom.Spawn("reader", func(th *kern.Thread) {
		buf := make([]byte, 16)
		n, err := sock.Read(th, buf)
		readReturned = true
		if err != nil || n != 0 {
			t.Errorf("read after close: n=%d err=%v", n, err)
		}
	})
	// Reader blocks (no connection); closing the engine releases it with
	// EOF semantics.
	s.Run(10 * time.Millisecond)
	if readReturned {
		t.Fatal("read returned without data")
	}
	dom.Spawn("closer", func(th *kern.Thread) {
		tc.OpenListen()
		tc.Close() // LISTEN -> CLOSED
	})
	s.Run(10 * time.Millisecond)
	if !readReturned {
		t.Fatal("read not released by close")
	}
}

func TestSegCostStructure(t *testing.T) {
	h := kern.NewHost(sim.New(), "h", costs.Default())
	with := SegCost(h, 1460, false)
	without := SegCost(h, 1460, true)
	if with <= without {
		t.Fatal("checksum must add cost")
	}
	small := SegCost(h, 1, false)
	if with <= small {
		t.Fatal("per-byte component missing")
	}
	if MbufCost(h) <= 0 {
		t.Fatal("mbuf layer cost must be positive")
	}
}

func TestMapError(t *testing.T) {
	cases := map[error]error{
		nil:              nil,
		tcp.ErrReset:     ErrReset,
		tcp.ErrRefused:   ErrRefused,
		tcp.ErrTimeout:   ErrConnTimeout,
		tcp.ErrKeepalive: ErrConnTimeout,
	}
	for in, want := range cases {
		if got := MapError(in); got != want {
			t.Errorf("MapError(%v) = %v, want %v", in, got, want)
		}
	}
	// ErrConnTimeout must remain matchable as the generic timeout.
	if !errors.Is(ErrConnTimeout, ErrTimeout) {
		t.Error("ErrConnTimeout does not wrap ErrTimeout")
	}
}

// pktNew keeps the test file terse.
func pktNew(headroom, size int) *pktBuf { return pkt.New(headroom, size) }
