package stacks

import (
	"time"

	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/netio"
	"ulp/internal/pkt"
	"ulp/internal/sim"
	"ulp/internal/tcp"
)

// SingleServer is the Mach 3.0 + UX organization: the entire protocol
// suite executes in one trusted user-level server with the network device
// mapped into its address space. Every socket call is a Mach IPC round
// trip between the application and the server (request + reply, each a
// message send plus a context switch), and all data crosses in message
// bodies by copy. Inbound packets interrupt the kernel and must then wake
// the server's input thread in its own address space.
//
// This is the organization the paper's measurements show losing to both
// Ultrix and the user-level library ("the user-level library implementation
// outperforms the monolithic Mach/UX implementation ... 42% faster for the
// 4K packet case").
type SingleServer struct {
	host   *kern.Host
	server *kern.Domain
	nif    *Netif
	table  *tcp.Table
	ports  *tcp.PortAlloc
	iss    tcp.Seq

	cur  *kern.Thread
	lock *sim.Semaphore

	rxq       *sim.Queue[*pkt.Buf]
	listeners map[uint16]*ssListener
	conns     map[*tcp.Conn]*Sock
	udp       *UDPHost
}

// NewSingleServer builds the organization on a host whose netio module is
// mod.
func NewSingleServer(s *sim.Sim, mod *netio.Module, ip ipv4.Addr) *SingleServer {
	ss := &SingleServer{
		host:      mod.Device().Host(),
		nif:       NewNetif(s, mod, ip),
		table:     tcp.NewTable(),
		ports:     tcp.NewPortAlloc(),
		iss:       20000,
		listeners: make(map[uint16]*ssListener),
		conns:     make(map[*tcp.Conn]*Sock),
	}
	// The UX server is a trusted user-level process; it maps the device.
	ss.server = ss.host.NewDomain("ux-server", true)
	ss.lock = s.NewSemaphore("ss-engine", 1)
	ss.rxq = sim.NewQueue[*pkt.Buf](s)
	ss.udp = NewUDPHost(ss.nif)
	mod.SetDefaultHandler(func(b *pkt.Buf) {
		// Waking the server's input thread crosses into its address space.
		if ss.rxq.Len() == 0 {
			ss.host.ComputeAsync(ss.host.Cost.KernelWakeup, nil)
		}
		ss.rxq.Push(b)
	})
	ss.server.Spawn("input", ss.inputThread)
	ss.server.Spawn("tcp-fast", ss.fastTimer)
	ss.server.Spawn("tcp-slow", ss.slowTimer)
	return ss
}

func (ss *SingleServer) Name() string     { return "singleserver" }
func (ss *SingleServer) Host() *kern.Host { return ss.host }

// Netif exposes the interface.
func (ss *SingleServer) Netif() *Netif { return ss.nif }

// UDP exposes the host's datagram service.
func (ss *SingleServer) UDP() *UDPHost { return ss.udp }

func (ss *SingleServer) nextISS() tcp.Seq {
	ss.iss += 64013
	return ss.iss
}

// rpc charges one application<->server round trip (request send + switch
// into the server, reply send + switch back), with n bytes of in-line data.
func (ss *SingleServer) rpc(t *kern.Thread, n int) {
	c := t.Cost()
	t.Compute(2*c.MachIPCSend + 2*c.ContextSwitch + c.Copy(n))
}

// newConn wires a Sock with Mach/UX cost hooks: socket calls are RPCs and
// data is copied through messages.
func (ss *SingleServer) newConn(s *sim.Sim, tc *tcp.Conn, opts Options) *Sock {
	sock := NewSock(s, tc)
	c := &ss.host.Cost
	sock.Entry = func(t *kern.Thread) { ss.rpc(t, 0) }
	sock.Run = ss.runEngine
	sock.WriteMove = func(t *kern.Thread, n int) { t.Compute(c.Copy(n) + c.SockbufOp) }
	sock.ReadMove = func(t *kern.Thread, n int) { t.Compute(c.Copy(n) + c.SockbufOp) }
	return sock
}

func (ss *SingleServer) attach(tc *tcp.Conn, sock *Sock, opts Options, onEst func()) {
	cb := sock.Callbacks(func(seg *Seg) { ss.transmit(seg, tc, opts) })
	if onEst != nil {
		inner := cb.OnEstablished
		cb.OnEstablished = func() {
			inner()
			onEst()
		}
	}
	innerClosed := cb.OnClosed
	cb.OnClosed = func(err error) {
		ss.table.Remove(tc)
		delete(ss.conns, tc)
		ss.ports.Release(tc.Local().Port)
		innerClosed(err)
	}
	tc.SetCallbacks(cb)
	if bus := ss.nif.Mod.Bus; bus != nil {
		tc.SetTrace(bus, ss.host.Name+" "+tc.Local().String()+">"+tc.Peer().String())
	}
	ss.conns[tc] = sock
}

// transmit sends a segment through the server's mapped device.
func (ss *SingleServer) transmit(seg *Seg, tc *tcp.Conn, opts Options) {
	t := ss.cur
	if t == nil {
		panic("singleserver: engine transmit outside runEngine")
	}
	t.Compute(SegCost(ss.host, seg.PayloadLen, opts.NoChecksum) + MbufCost(ss.host))
	ss.nif.WrapIP(seg.Buf, ipv4.ProtoTCP, tc.Peer().IP)
	ss.nif.Resolve(t, seg.Buf, tc.Peer().IP, 0, ss.nif.Mod.SendKernel)
}

func (ss *SingleServer) runEngine(t *kern.Thread, fn func()) {
	ss.lock.P(t.Proc)
	ss.cur = t
	fn()
	ss.cur = nil
	ss.lock.V()
}

// Listen implements Stack.
func (ss *SingleServer) Listen(t *kern.Thread, port uint16, opts Options) (Listener, error) {
	ss.rpc(t, 0) // socket() + bind()/listen() folded into one RPC
	if !ss.ports.Reserve(port) {
		return nil, ErrPortInUse
	}
	l := &ssListener{
		ss:    ss,
		port:  port,
		opts:  opts,
		ready: sim.NewQueue[*Sock](t.Sim()),
	}
	ss.listeners[port] = l
	return l, nil
}

// ssListener queues established connections for Accept.
type ssListener struct {
	ss     *SingleServer
	port   uint16
	opts   Options
	ready  *sim.Queue[*Sock]
	closed bool
}

// Accept implements Listener.
func (l *ssListener) Accept(t *kern.Thread) (Conn, error) {
	l.ss.rpc(t, 0)
	return l.ready.Pop(t.Proc), nil
}

// Close implements Listener.
func (l *ssListener) Close(t *kern.Thread) {
	l.ss.rpc(t, 0)
	l.closed = true
	delete(l.ss.listeners, l.port)
	l.ss.ports.Release(l.port)
}

// Connect implements Stack. socket() and connect() are two RPCs.
func (ss *SingleServer) Connect(t *kern.Thread, remote tcp.Endpoint, opts Options) (Conn, error) {
	ss.rpc(t, 0) // socket()
	ss.rpc(t, 0) // connect()
	t.Compute(t.Cost().PCBSetup)
	port, err := ss.ports.Ephemeral()
	if err != nil {
		return nil, err
	}
	local := tcp.Endpoint{IP: ss.nif.IP, Port: port}
	tc := tcp.NewConn(tcpConfig(ss.nif, opts), local, remote, tcp.Callbacks{})
	sock := ss.newConn(t.Sim(), tc, opts)
	ss.attach(tc, sock, opts, nil)
	if err := ss.table.Insert(tc); err != nil {
		ss.ports.Release(local.Port)
		return nil, err
	}
	ss.runEngine(t, func() { tc.OpenActive(ss.nextISS()) })
	if err := sock.WaitEstablished(t); err != nil {
		return nil, err
	}
	return sock, nil
}

// inputThread is the server's protocol input loop.
func (ss *SingleServer) inputThread(t *kern.Thread) {
	c := &ss.host.Cost
	for {
		b := ss.rxq.Pop(t.Proc)
		t.Compute(c.ThreadSwitch)
		ss.input(t, b)
	}
}

func (ss *SingleServer) input(t *kern.Thread, b *pkt.Buf) {
	// See InKernel.input: the frame dies here on every path.
	defer b.Release()
	et, err := ss.nif.StripLink(b)
	if err != nil {
		return
	}
	switch et {
	case link.TypeARP:
		ss.nif.InputARP(t, b, ss.nif.Mod.SendKernel)
		return
	case link.TypeIPv4:
	default:
		return
	}
	h, data, ok := ss.nif.InputIP(b)
	if !ok {
		return
	}
	switch h.Proto {
	case ipv4.ProtoTCP:
		ss.inputTCP(t, h, data)
	case ipv4.ProtoUDP:
		ss.udp.Input(t, h, data)
	}
}

func (ss *SingleServer) inputTCP(t *kern.Thread, h ipv4.Header, data []byte) {
	seg := pkt.FromBytes(0, data)
	defer seg.Release()
	th, err := tcp.Decode(seg, h.Src, h.Dst)
	if err != nil {
		return
	}
	local := tcp.Endpoint{IP: h.Dst, Port: th.DstPort}
	peer := tcp.Endpoint{IP: h.Src, Port: th.SrcPort}
	t.Compute(SegCost(ss.host, seg.Len(), false) + MbufCost(ss.host))

	if tc, ok := ss.table.LookupExact(local, peer); ok {
		sock := ss.conns[tc]
		waiting := sock != nil && sock.ReadableWaiters() > 0
		ss.runEngine(t, func() { tc.Input(th, seg.Bytes()) })
		if waiting {
			// Waking the blocked application read and sending its reply
			// message crosses address spaces again.
			t.Compute(ss.host.Cost.MachIPCSend + ss.host.Cost.ContextSwitch)
		}
		return
	}
	if l, ok := ss.listeners[local.Port]; ok && !l.closed {
		if th.Flags&tcp.FlagSYN != 0 && th.Flags&(tcp.FlagACK|tcp.FlagRST) == 0 {
			ss.spawnFromListener(t, l, local, peer, th, seg.Bytes())
			return
		}
	}
	if r, rb := tcp.MakeRST(th, seg.Len(), ss.nif.Headroom(), local, peer); r != nil {
		ss.nif.WrapIP(rb, ipv4.ProtoTCP, peer.IP)
		ss.nif.Resolve(t, rb, peer.IP, 0, ss.nif.Mod.SendKernel)
	}
}

func (ss *SingleServer) spawnFromListener(t *kern.Thread, l *ssListener, local, peer tcp.Endpoint, th tcp.Header, data []byte) {
	tc := tcp.NewConn(tcpConfig(ss.nif, l.opts), local, peer, tcp.Callbacks{})
	tc.SetISS(ss.nextISS())
	sock := ss.newConn(t.Sim(), tc, l.opts)
	ss.attach(tc, sock, l.opts, func() {
		if !l.closed {
			l.ready.Push(sock)
		}
	})
	tc.OpenListen()
	if err := ss.table.Insert(tc); err != nil {
		return
	}
	ss.runEngine(t, func() { tc.Input(th, data) })
}

func (ss *SingleServer) fastTimer(t *kern.Thread) {
	c := &ss.host.Cost
	for {
		t.Sleep(200 * time.Millisecond)
		ss.runEngine(t, func() {
			ss.table.Each(func(tc *tcp.Conn) {
				t.Compute(c.TimerOp)
				tc.FastTick()
			})
		})
	}
}

func (ss *SingleServer) slowTimer(t *kern.Thread) {
	c := &ss.host.Cost
	for {
		t.Sleep(500 * time.Millisecond)
		ss.runEngine(t, func() {
			ss.table.Each(func(tc *tcp.Conn) {
				t.Compute(c.TimerOp)
				tc.SlowTick()
			})
		})
		ss.nif.Rsm.Expire(ss.nif.now())
	}
}
