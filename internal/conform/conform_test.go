package conform

import (
	"strings"
	"testing"
	"time"

	"ulp/internal/ipv4"
	"ulp/internal/link"
	"ulp/internal/pkt"
	"ulp/internal/tcp"
	"ulp/internal/trace"
)

const tick = 500 * time.Millisecond

// st builds a TCPState event.
func st(at time.Duration, conn string, from, to tcp.State, via tcp.Trigger) trace.Event {
	return trace.Event{
		At: at, Kind: trace.TCPState, Conn: conn,
		A: int64(from), B: int64(to), C: int64(via),
		Text: from.String() + "->" + to.String(),
	}
}

func feed(k *Checker, evs ...trace.Event) {
	for _, e := range evs {
		k.HandleEvent(e)
	}
}

// expectOne asserts exactly one violation with the given rule.
func expectOne(t *testing.T, k *Checker, rule string) Violation {
	t.Helper()
	vs := k.Violations()
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want exactly 1 (%s): %v", len(vs), rule, vs)
	}
	if vs[0].Rule != rule {
		t.Fatalf("violation rule = %q, want %q (%v)", vs[0].Rule, rule, vs[0])
	}
	return vs[0]
}

func TestSpecRelation(t *testing.T) {
	edges := AllLegalEdges()
	if len(edges) != 42 {
		t.Errorf("legal relation has %d edges, want 42", len(edges))
	}
	for _, e := range edges {
		if !Legal(e.From, e.To, e.Via) {
			t.Errorf("enumerated edge %v not Legal()", e)
		}
	}
	// Spot checks: the classic diagram edges and some famous non-edges.
	yes := []Edge{
		{tcp.Closed, tcp.Listen, tcp.TrigUser},
		{tcp.SynSent, tcp.SynRcvd, tcp.TrigSegment},
		{tcp.FinWait1, tcp.Closing, tcp.TrigSegment},
		{tcp.TimeWait, tcp.Closed, tcp.TrigTimer},
	}
	for _, e := range yes {
		if !Legal(e.From, e.To, e.Via) {
			t.Errorf("%v should be legal", e)
		}
	}
	no := []Edge{
		{tcp.FinWait2, tcp.Closed, tcp.TrigSegment}, // skipping TIME_WAIT
		{tcp.Closed, tcp.Established, tcp.TrigSegment},
		{tcp.TimeWait, tcp.Established, tcp.TrigSegment},
		{tcp.Listen, tcp.SynRcvd, tcp.TrigTimer}, // right edge, wrong trigger
	}
	for _, e := range no {
		if Legal(e.From, e.To, e.Via) {
			t.Errorf("%v should be illegal", e)
		}
	}
}

func TestLegalLifecycleNoViolations(t *testing.T) {
	k := New(Config{})
	base := time.Second
	feed(k,
		st(base, "c", tcp.Closed, tcp.SynSent, tcp.TrigUser),
		st(base+10*time.Millisecond, "c", tcp.SynSent, tcp.Established, tcp.TrigSegment),
		st(base+time.Second, "c", tcp.Established, tcp.FinWait1, tcp.TrigUser),
		st(base+time.Second+10*time.Millisecond, "c", tcp.FinWait1, tcp.FinWait2, tcp.TrigSegment),
		st(base+time.Second+20*time.Millisecond, "c", tcp.FinWait2, tcp.TimeWait, tcp.TrigSegment),
		trace.Event{At: base + time.Second + 20*time.Millisecond,
			Kind: trace.TCPTimeWait, Conn: "c", A: 120},
	)
	// Release exactly 120 ticks later (phase-aligned).
	feed(k, st(base+time.Second+20*time.Millisecond+120*tick,
		"c", tcp.TimeWait, tcp.Closed, tcp.TrigTimer))
	if vs := k.Violations(); len(vs) != 0 {
		t.Fatalf("legal lifecycle produced violations: %v", vs)
	}
	if got := k.Coverage().Count(); got != 6 {
		t.Errorf("coverage = %d distinct edges, want 6", got)
	}
}

func TestIllegalEdge(t *testing.T) {
	k := New(Config{})
	// ESTABLISHED->LISTEN exists under no trigger at all.
	feed(k,
		st(0, "c", tcp.Closed, tcp.SynSent, tcp.TrigUser),
		st(tick, "c", tcp.SynSent, tcp.Established, tcp.TrigSegment),
		st(2*tick, "c", tcp.Established, tcp.Listen, tcp.TrigSegment),
	)
	v := expectOne(t, k, RuleIllegalEdge)
	if v.Edge == nil || v.Edge.From != tcp.Established || v.Edge.To != tcp.Listen {
		t.Errorf("violation edge = %v, want ESTABLISHED->LISTEN", v.Edge)
	}
	if !strings.Contains(v.Detail, "LISTEN") {
		t.Errorf("detail %q does not name the edge", v.Detail)
	}
}

func TestSkipTimeWaitSignature(t *testing.T) {
	k := New(Config{})
	// The injected-bug signature: FIN_WAIT_2 closing on a segment without
	// passing through TIME_WAIT. The edge exists for abort (user) and
	// reset, so this classifies as a trigger violation.
	feed(k,
		st(0, "c", tcp.Closed, tcp.SynSent, tcp.TrigUser),
		st(tick, "c", tcp.SynSent, tcp.Established, tcp.TrigSegment),
		st(2*tick, "c", tcp.Established, tcp.FinWait1, tcp.TrigUser),
		st(3*tick, "c", tcp.FinWait1, tcp.FinWait2, tcp.TrigSegment),
		st(4*tick, "c", tcp.FinWait2, tcp.Closed, tcp.TrigSegment),
	)
	v := expectOne(t, k, RuleBadTrigger)
	if v.Edge == nil || v.Edge.From != tcp.FinWait2 || v.Edge.To != tcp.Closed {
		t.Errorf("violation edge = %v, want FIN_WAIT_2->CLOSED", v.Edge)
	}
}

func TestBadTrigger(t *testing.T) {
	k := New(Config{})
	// ESTABLISHED->CLOSE_WAIT is a real edge but only a peer FIN (segment)
	// may cause it.
	feed(k,
		st(0, "c", tcp.Closed, tcp.SynSent, tcp.TrigUser),
		st(tick, "c", tcp.SynSent, tcp.Established, tcp.TrigSegment),
		st(2*tick, "c", tcp.Established, tcp.CloseWait, tcp.TrigTimer),
	)
	expectOne(t, k, RuleBadTrigger)
}

func TestStateDiscontinuity(t *testing.T) {
	k := New(Config{})
	feed(k,
		st(0, "c", tcp.Closed, tcp.SynSent, tcp.TrigUser),
		st(tick, "c", tcp.SynSent, tcp.Established, tcp.TrigSegment),
		// Claims to leave FIN_WAIT_1, but the connection is in ESTABLISHED.
		st(2*tick, "c", tcp.FinWait1, tcp.FinWait2, tcp.TrigSegment),
	)
	expectOne(t, k, RuleDiscontinuity)
}

func TestTimeWaitCutShort(t *testing.T) {
	k := New(Config{})
	feed(k,
		st(0, "c", tcp.Closed, tcp.SynSent, tcp.TrigUser),
		st(tick, "c", tcp.SynSent, tcp.Established, tcp.TrigSegment),
		st(2*tick, "c", tcp.Established, tcp.FinWait1, tcp.TrigUser),
		st(3*tick, "c", tcp.FinWait1, tcp.FinWait2, tcp.TrigSegment),
		st(4*tick, "c", tcp.FinWait2, tcp.TimeWait, tcp.TrigSegment),
		trace.Event{At: 4 * tick, Kind: trace.TCPTimeWait, Conn: "c", A: 120},
		// Released after only 10 ticks instead of 120.
		st(14*tick, "c", tcp.TimeWait, tcp.Closed, tcp.TrigTimer),
	)
	expectOne(t, k, RuleTimeWait)
}

func TestTimeWaitRearmRestartsClock(t *testing.T) {
	k := New(Config{})
	feed(k,
		st(0, "c", tcp.Closed, tcp.SynSent, tcp.TrigUser),
		st(tick, "c", tcp.SynSent, tcp.Established, tcp.TrigSegment),
		st(2*tick, "c", tcp.Established, tcp.FinWait1, tcp.TrigUser),
		st(3*tick, "c", tcp.FinWait1, tcp.FinWait2, tcp.TrigSegment),
		st(4*tick, "c", tcp.FinWait2, tcp.TimeWait, tcp.TrigSegment),
		trace.Event{At: 4 * tick, Kind: trace.TCPTimeWait, Conn: "c", A: 120},
		// A retransmitted peer FIN 30 ticks in restarts the 2*MSL clock.
		trace.Event{At: 34 * tick, Kind: trace.TCPTimeWait, Conn: "c", A: 120},
		st(154*tick, "c", tcp.TimeWait, tcp.Closed, tcp.TrigTimer),
	)
	if vs := k.Violations(); len(vs) != 0 {
		t.Fatalf("re-armed TIME_WAIT release flagged: %v", vs)
	}
}

func TestKarnViolation(t *testing.T) {
	k := New(Config{})
	feed(k,
		st(0, "c", tcp.Closed, tcp.SynSent, tcp.TrigUser),
		st(tick, "c", tcp.SynSent, tcp.Established, tcp.TrigSegment),
		trace.Event{At: 20 * tick, Kind: trace.TCPRexmit, Conn: "c",
			A: 1, B: 12, Text: "timeout"},
		// A 10-tick sample only 1 tick after the retransmission must span it.
		trace.Event{At: 21 * tick, Kind: trace.TCPRTO, Conn: "c", A: 10, B: 11},
	)
	vs := k.Violations()
	var karn int
	for _, v := range vs {
		if v.Rule == RuleKarn {
			karn++
		}
	}
	if karn != 1 {
		t.Fatalf("got %d karn violations, want 1: %v", karn, vs)
	}
}

func TestRTOMismatch(t *testing.T) {
	k := New(Config{})
	feed(k,
		st(0, "c", tcp.Closed, tcp.SynSent, tcp.TrigUser),
		st(tick, "c", tcp.SynSent, tcp.Established, tcp.TrigSegment),
		// First sample m=2: srtt=16, rttvar=4 => RTO = 2+4 = 6. Correct.
		trace.Event{At: 10 * tick, Kind: trace.TCPRTO, Conn: "c", A: 3, B: 6},
		// Second sample m=2: delta=0, rttvar decays to 3 => RTO = 5. Lie.
		trace.Event{At: 20 * tick, Kind: trace.TCPRTO, Conn: "c", A: 3, B: 9},
	)
	expectOne(t, k, RuleRTOMismatch)
}

func TestRexmitAndPersistStateRules(t *testing.T) {
	k := New(Config{})
	feed(k,
		st(0, "c", tcp.Closed, tcp.SynSent, tcp.TrigUser),
		st(tick, "c", tcp.SynSent, tcp.Established, tcp.TrigSegment),
		st(2*tick, "c", tcp.Established, tcp.FinWait1, tcp.TrigUser),
		st(3*tick, "c", tcp.FinWait1, tcp.FinWait2, tcp.TrigSegment),
		// FIN_WAIT_2 has nothing outstanding: probing there is a bug.
		trace.Event{At: 4 * tick, Kind: trace.TCPPersist, Conn: "c", A: 1, B: 20},
	)
	expectOne(t, k, RulePersistState)

	k2 := New(Config{})
	feed(k2,
		st(0, "c", tcp.Closed, tcp.SynSent, tcp.TrigUser),
		st(tick, "c", tcp.SynSent, tcp.Established, tcp.TrigSegment),
		st(2*tick, "c", tcp.Established, tcp.FinWait1, tcp.TrigUser),
		st(3*tick, "c", tcp.FinWait1, tcp.FinWait2, tcp.TrigSegment),
		trace.Event{At: 4 * tick, Kind: trace.TCPRexmit, Conn: "c",
			A: 1, B: 12, Text: "timeout"},
	)
	expectOne(t, k2, RuleRexmitState)
}

// seg feeds a decoded segment through the direct-feed path.
func seg(k *Checker, at time.Duration, sp, dp uint16, seqn, ackn tcp.Seq, flags uint8, dataLen int) {
	src := tcp.Endpoint{IP: ipv4.Addr{10, 0, 0, 1}, Port: sp}
	dst := tcp.Endpoint{IP: ipv4.Addr{10, 0, 0, 2}, Port: dp}
	k.Segment(at, src, dst, tcp.Header{Seq: seqn, Ack: ackn, Flags: flags}, dataLen)
}

func TestAckRegression(t *testing.T) {
	k := New(Config{})
	seg(k, 0, 1000, 2000, 100, 0, tcp.FlagSYN, 0)
	seg(k, tick, 1000, 2000, 101, 5000, tcp.FlagACK, 0)
	seg(k, 2*tick, 1000, 2000, 101, 6000, tcp.FlagACK, 0)
	seg(k, 3*tick, 1000, 2000, 101, 5500, tcp.FlagACK, 0) // regress
	expectOne(t, k, RuleAckRegress)
}

func TestDataAfterFin(t *testing.T) {
	k := New(Config{})
	seg(k, 0, 1000, 2000, 100, 50, tcp.FlagACK|tcp.FlagFIN, 10) // FIN at 110
	seg(k, tick, 1000, 2000, 100, 50, tcp.FlagACK, 10)          // retransmit: fine
	seg(k, 2*tick, 1000, 2000, 111, 50, tcp.FlagACK, 5)         // beyond the FIN
	expectOne(t, k, RuleDataAfterFin)
}

func TestFinMoved(t *testing.T) {
	k := New(Config{})
	seg(k, 0, 1000, 2000, 100, 50, tcp.FlagACK|tcp.FlagFIN, 10)     // FIN at 110
	seg(k, tick, 1000, 2000, 100, 50, tcp.FlagACK|tcp.FlagFIN, 10)  // same FIN: fine
	seg(k, 2*tick, 1000, 2000, 115, 50, tcp.FlagACK|tcp.FlagFIN, 0) // FIN at 115
	expectOne(t, k, RuleFinMoved)
}

func TestRSTSegmentsExempt(t *testing.T) {
	k := New(Config{})
	seg(k, 0, 1000, 2000, 100, 6000, tcp.FlagACK, 0)
	// A shell answering a stray segment echoes its ACK as seq with an
	// arbitrary (lower) ack — legal for RST.
	seg(k, tick, 1000, 2000, 0, 50, tcp.FlagRST|tcp.FlagACK, 0)
	if vs := k.Violations(); len(vs) != 0 {
		t.Fatalf("RST flagged: %v", vs)
	}
}

// TestFrameParser drives the raw-frame path with frames built by the real
// encoders, for both link framings, and checks a violation is still caught
// through the full parse.
func TestFrameParser(t *testing.T) {
	for _, framing := range []string{"eth", "an1"} {
		t.Run(framing, func(t *testing.T) {
			k := New(Config{})
			build := func(seqn, ackn tcp.Seq, flags uint8, payload []byte) []byte {
				src, dst := ipv4.Addr{10, 0, 0, 1}, ipv4.Addr{10, 0, 0, 2}
				b := pkt.FromBytes(128, payload)
				th := tcp.Header{SrcPort: 1000, DstPort: 2000,
					Seq: seqn, Ack: ackn, Flags: flags, Window: 4096}
				th.Encode(b, src, dst)
				ih := ipv4.Header{Src: src, Dst: dst, Proto: ipv4.ProtoTCP, TTL: 64}
				ih.Encode(b)
				if framing == "eth" {
					lh := link.EthHeader{Dst: link.MakeAddr(2), Src: link.MakeAddr(1),
						Type: link.TypeIPv4}
					lh.Encode(b)
				} else {
					lh := link.AN1Header{Dst: link.MakeAddr(2), Src: link.MakeAddr(1),
						BQI: 3, AdvBQI: 7, Type: link.TypeIPv4}
					lh.Encode(b)
				}
				return append([]byte(nil), b.Bytes()...)
			}
			frame := func(at time.Duration, raw []byte) trace.Event {
				return trace.Event{At: at, Kind: trace.FrameTx, Frame: raw, A: int64(len(raw))}
			}
			feed(k,
				frame(0, build(100, 5000, tcp.FlagACK, []byte("abc"))),
				frame(tick, build(103, 6000, tcp.FlagACK, nil)),
				frame(2*tick, build(103, 5500, tcp.FlagACK, nil)), // regress
			)
			expectOne(t, k, RuleAckRegress)
		})
	}
}

// TestBusAttach checks the checker observes a live engine through a bus and
// stays silent on a conformant run.
func TestBusAttach(t *testing.T) {
	now := time.Duration(0)
	bus := trace.NewBus(func() time.Duration { return now })
	k := New(Config{})
	k.Attach(bus)
	c := tcp.NewConn(tcp.Config{MSS: 512},
		tcp.Endpoint{IP: ipv4.Addr{10, 0, 0, 1}, Port: 1},
		tcp.Endpoint{IP: ipv4.Addr{10, 0, 0, 2}, Port: 2},
		tcp.Callbacks{})
	c.SetTrace(bus, "t")
	c.OpenActive(1)
	c.Close()
	if vs := k.Violations(); len(vs) != 0 {
		t.Fatalf("open/close flagged: %v", vs)
	}
	if !k.Coverage().Covered(Edge{tcp.Closed, tcp.SynSent, tcp.TrigUser}) {
		t.Error("active open edge not covered")
	}
}
