package conform

import (
	"fmt"
	"time"

	"ulp/internal/tcp"
	"ulp/internal/trace"
)

// Config parameterizes the checker. The zero value is completed with the
// engine's defaults by New.
type Config struct {
	// Tick is the slow-timer period all tick-counter intervals are
	// expressed in (default 500 ms, the 4.3BSD slow timeout).
	Tick time.Duration
	// SlackTicks is the timing tolerance for tick-based checks: timers are
	// decremented at host tick boundaries, so an interval of N ticks armed
	// between ticks legitimately elapses in (N-1, N] tick periods. One
	// extra tick of slack on each side absorbs the arming phase.
	SlackTicks int
	// MaxViolations caps the report list so a systematically broken run
	// cannot accumulate unbounded reports; Truncated reports overflow.
	MaxViolations int
}

func (c Config) withDefaults() Config {
	if c.Tick == 0 {
		c.Tick = 500 * time.Millisecond
	}
	if c.SlackTicks == 0 {
		c.SlackTicks = 1
	}
	if c.MaxViolations == 0 {
		c.MaxViolations = 100
	}
	return c
}

// Violation is one conformance failure, with enough structure for the
// explorer to key, dedup, and shrink on it.
type Violation struct {
	Conn   string        `json:"conn"`            // connection or flow label
	Index  int           `json:"index"`           // ordinal of the offending event in the observed stream
	At     time.Duration `json:"at"`              // virtual time
	Rule   string        `json:"rule"`            // which invariant failed
	Detail string        `json:"detail"`          // human-readable specifics
	Edge   *Edge         `json:"edge,omitempty"`  // offending transition, for edge rules
}

func (v Violation) String() string {
	return fmt.Sprintf("conform: %s at %v (event %d, conn %q): %s",
		v.Rule, v.At, v.Index, v.Conn, v.Detail)
}

// Rule names.
const (
	RuleIllegalEdge      = "illegal-edge"       // transition outside the legal relation
	RuleBadTrigger       = "bad-trigger"        // legal edge, impossible trigger class
	RuleDiscontinuity    = "state-discontinuity" // event's old state != tracked state
	RuleTimeWait         = "timewait-duration"  // TIME_WAIT shorter/longer than armed 2*MSL
	RuleTimeWaitArm      = "timewait-arm-state" // 2*MSL armed outside TIME_WAIT
	RuleRexmitState      = "rexmit-state"       // retransmission in an impossible state
	RuleRexmitRange      = "rexmit-range"       // backoff shift or RTO out of range
	RulePersistState     = "persist-state"      // window probe in an impossible state
	RulePersistRange     = "persist-range"      // persist shift or interval out of range
	RuleRTOState         = "rto-state"          // RTT sample in an impossible state
	RuleKarn             = "karn-sample"        // RTT sample spans a retransmission
	RuleRTOMismatch      = "rto-mismatch"       // RTO disagrees with the Jacobson estimator
	RuleAckRegress       = "ack-regress"        // ACK field moved backward on a flow
	RuleDataAfterFin     = "data-after-fin"     // payload beyond the flow's FIN
	RuleFinMoved         = "fin-moved"          // FIN retransmitted at a different sequence
)

// connTrack is the checker's per-connection-label state.
type connTrack struct {
	seen  bool
	state tcp.State
	// birth is set when the first observed event shows the connection in
	// Closed: only then do we know the engine's estimator state from the
	// start, so estimator-mirror and Karn checks apply. Connections first
	// observed mid-life (snapshot/restore handoffs) get edge and timing
	// checks only.
	birth bool

	// TIME_WAIT duration tracking.
	twArmed    bool
	twArmedAt  time.Duration
	twTicks    int64
	sawTWEntry bool

	// Karn rule: time of the most recent retransmission.
	sawRexmit    bool
	lastRexmitAt time.Duration

	// Jacobson estimator mirror (valid only when birth).
	srtt, rttvar int
}

// flowKey identifies one direction of one four-tuple on the wire.
type flowKey struct {
	src, dst tcp.Endpoint
}

// flowTrack is per-directed-flow sequence bookkeeping.
type flowTrack struct {
	hasAck  bool
	maxAck  tcp.Seq
	finSeen bool
	finSeq  tcp.Seq // sequence number of the FIN flag itself
}

// Checker consumes TCP trace events (and transmitted frames) and verifies
// them against the RFC 793 spec in spec.go. Attach it to a trace.Bus with
// Attach, or feed it directly with HandleEvent / Segment.
type Checker struct {
	cfg   Config
	conns map[string]*connTrack
	flows map[flowKey]*flowTrack
	cov   *Coverage

	idx        int // events observed (all kinds), for violation indexing
	violations []Violation
	truncated  bool
}

// New creates a checker with the given configuration.
func New(cfg Config) *Checker {
	return &Checker{
		cfg:   cfg.withDefaults(),
		conns: make(map[string]*connTrack),
		flows: make(map[flowKey]*flowTrack),
		cov:   NewCoverage(),
	}
}

// Attach subscribes the checker to a bus.
func (k *Checker) Attach(bus *trace.Bus) { bus.Subscribe(k.HandleEvent) }

// Violations returns the accumulated reports.
func (k *Checker) Violations() []Violation { return k.violations }

// Truncated reports whether reports were dropped after MaxViolations.
func (k *Checker) Truncated() bool { return k.truncated }

// Coverage returns the legal-edge coverage accumulated so far.
func (k *Checker) Coverage() *Coverage { return k.cov }

func (k *Checker) report(conn string, at time.Duration, rule, detail string, edge *Edge) {
	if len(k.violations) >= k.cfg.MaxViolations {
		k.truncated = true
		return
	}
	k.violations = append(k.violations, Violation{
		Conn: conn, Index: k.idx, At: at, Rule: rule, Detail: detail, Edge: edge,
	})
}

func (k *Checker) conn(label string) *connTrack {
	ct := k.conns[label]
	if ct == nil {
		ct = &connTrack{}
		k.conns[label] = ct
	}
	return ct
}

// HandleEvent is the bus subscriber: it dispatches on the TCP event kinds
// and transmitted frames, ignoring everything else.
func (k *Checker) HandleEvent(e trace.Event) {
	k.idx++
	switch e.Kind {
	case trace.TCPState:
		k.onState(e)
	case trace.TCPTimeWait:
		k.onTimeWaitArm(e)
	case trace.TCPRexmit:
		k.onRexmit(e)
	case trace.TCPRTO:
		k.onRTO(e)
	case trace.TCPPersist:
		k.onPersist(e)
	case trace.FrameTx:
		// Transmit-time frames are pre-fault-injection, so flow invariants
		// hold regardless of chaos configuration.
		k.onFrame(e.At, e.Frame)
	}
}

func (k *Checker) onState(e trace.Event) {
	from, to := tcp.State(e.A), tcp.State(e.B)
	via := tcp.Trigger(e.C)
	ct := k.conn(e.Conn)

	if ct.seen && ct.state != from {
		k.report(e.Conn, e.At, RuleDiscontinuity,
			fmt.Sprintf("transition %s->%s but connection was tracked in %s",
				from, to, ct.state), nil)
		// Resynchronize on the event's own old state so one glitch does not
		// cascade into a report per subsequent event.
	}
	if !ct.seen {
		ct.seen = true
		ct.birth = from == tcp.Closed
	}

	edge := Edge{From: from, To: to, Via: via}
	switch {
	case Legal(from, to, via):
		k.cov.Hit(edge)
	case edgeKnown(from, to):
		k.report(e.Conn, e.At, RuleBadTrigger,
			fmt.Sprintf("edge %s->%s cannot be caused by %q", from, to, via), &edge)
	default:
		k.report(e.Conn, e.At, RuleIllegalEdge,
			fmt.Sprintf("no legal transition %s->%s (trigger %q)", from, to, via), &edge)
	}

	if to == tcp.TimeWait {
		ct.sawTWEntry = true
		ct.twArmed = false // the arm event follows the transition
	}
	if from == tcp.TimeWait && to == tcp.Closed && via == tcp.TrigTimer {
		k.checkTimeWaitRelease(e, ct)
	}
	ct.state = to
}

// checkTimeWaitRelease verifies the 2*MSL quiet period: the timer release
// must come the armed number of ticks after the most recent arming. A timer
// armed between host ticks legitimately fires within (N-1, N] tick periods;
// SlackTicks widens both bounds.
func (k *Checker) checkTimeWaitRelease(e trace.Event, ct *connTrack) {
	if !ct.twArmed {
		if ct.sawTWEntry {
			k.report(e.Conn, e.At, RuleTimeWait,
				"TIME_WAIT released by timer but no 2*MSL arming was observed", nil)
		}
		return
	}
	elapsed := e.At - ct.twArmedAt
	slack := time.Duration(k.cfg.SlackTicks) * k.cfg.Tick
	lo := time.Duration(ct.twTicks-1)*k.cfg.Tick - slack
	hi := time.Duration(ct.twTicks)*k.cfg.Tick + slack
	if elapsed < lo || elapsed > hi {
		k.report(e.Conn, e.At, RuleTimeWait,
			fmt.Sprintf("TIME_WAIT lasted %v since last 2*MSL arm; armed for %d ticks (want (%v, %v])",
				elapsed, ct.twTicks, lo, hi), nil)
	}
	ct.twArmed = false
}

func (k *Checker) onTimeWaitArm(e trace.Event) {
	ct := k.conn(e.Conn)
	if ct.seen && ct.state != tcp.TimeWait {
		k.report(e.Conn, e.At, RuleTimeWaitArm,
			fmt.Sprintf("2*MSL timer armed in %s", ct.state), nil)
	}
	if !ct.seen {
		ct.seen = true
		ct.state = tcp.TimeWait
	}
	ct.twArmed = true
	ct.twArmedAt = e.At
	ct.twTicks = e.A
}

func (k *Checker) onRexmit(e trace.Event) {
	ct := k.conn(e.Conn)
	fast := e.Text == "fast"
	if ct.seen {
		if fast && !inSet(fastRexmitStates, ct.state) {
			k.report(e.Conn, e.At, RuleRexmitState,
				fmt.Sprintf("fast retransmit in %s", ct.state), nil)
		} else if !fast && !inSet(rexmitStates, ct.state) {
			k.report(e.Conn, e.At, RuleRexmitState,
				fmt.Sprintf("retransmission timeout in %s", ct.state), nil)
		}
	}
	shift, rto := e.A, e.B
	minShift := int64(1) // a timeout always backs off before re-sending
	if fast {
		minShift = 0
	}
	if shift < minShift || shift > 12 || rto < 1 || rto > 128 {
		k.report(e.Conn, e.At, RuleRexmitRange,
			fmt.Sprintf("shift %d, RTO %d ticks out of range", shift, rto), nil)
	}
	ct.sawRexmit = true
	ct.lastRexmitAt = e.At
}

func (k *Checker) onRTO(e trace.Event) {
	ct := k.conn(e.Conn)
	sample, rto := int(e.A), int(e.B)
	if ct.seen && !inSet(rtoStates, ct.state) {
		k.report(e.Conn, e.At, RuleRTOState,
			fmt.Sprintf("RTT sample taken in %s", ct.state), nil)
	}

	// Karn's rule: a sample of N ticks means the timed octet was sent N-1
	// host ticks before the covering ACK — and timing only (re)starts on a
	// transmission of new data, which cannot predate the last
	// retransmission (retransmissions zero the measurement).
	if ct.sawRexmit {
		minElapsed := time.Duration(sample-1-k.cfg.SlackTicks) * k.cfg.Tick
		if e.At-ct.lastRexmitAt < minElapsed {
			k.report(e.Conn, e.At, RuleKarn,
				fmt.Sprintf("RTT sample of %d ticks taken %v after a retransmission (sample spans it)",
					sample, e.At-ct.lastRexmitAt), nil)
		}
	}

	// Mirror the Jacobson estimator (only from birth, when our state
	// matches the engine's) and check the published RTO.
	if ct.birth {
		m := sample - 1
		if ct.srtt != 0 {
			delta := m - (ct.srtt >> 3)
			ct.srtt += delta
			if ct.srtt <= 0 {
				ct.srtt = 1
			}
			if delta < 0 {
				delta = -delta
			}
			delta -= ct.rttvar >> 2
			ct.rttvar += delta
			if ct.rttvar <= 0 {
				ct.rttvar = 1
			}
		} else {
			ct.srtt = m << 3
			ct.rttvar = m << 1
		}
		want := (ct.srtt >> 3) + ct.rttvar
		if want < 2 {
			want = 2
		}
		if want > 128 {
			want = 128
		}
		if rto != want {
			k.report(e.Conn, e.At, RuleRTOMismatch,
				fmt.Sprintf("RTO %d ticks after sample %d; Jacobson estimator says %d",
					rto, sample, want), nil)
		}
	}
}

func (k *Checker) onPersist(e trace.Event) {
	ct := k.conn(e.Conn)
	if ct.seen && !inSet(persistStates, ct.state) {
		k.report(e.Conn, e.At, RulePersistState,
			fmt.Sprintf("window probe in %s", ct.state), nil)
	}
	shift, ticks := e.A, e.B
	if shift < 1 || shift > 6 || ticks < 1 || ticks > 120 {
		k.report(e.Conn, e.At, RulePersistRange,
			fmt.Sprintf("persist shift %d, interval %d ticks out of range", shift, ticks), nil)
	}
}

// Segment feeds one transmitted TCP segment directly (already decoded), for
// harnesses that run the engine without a wire underneath. dataLen is the
// payload length in bytes.
func (k *Checker) Segment(at time.Duration, src, dst tcp.Endpoint, h tcp.Header, dataLen int) {
	k.idx++
	k.checkSegment(at, src, dst, h.Seq, h.Ack, h.Flags, dataLen)
}

// checkSegment applies the wire-level flow invariants to one segment.
func (k *Checker) checkSegment(at time.Duration, src, dst tcp.Endpoint, seq, ack tcp.Seq, flags uint8, dataLen int) {
	if flags&tcp.FlagRST != 0 {
		// Resets answering stray segments echo arbitrary sequence numbers
		// (RFC 793 p.36); they carry no data and terminate the flow, so no
		// monotonicity claims apply.
		return
	}
	key := flowKey{src, dst}
	ft := k.flows[key]
	if ft == nil || flags&tcp.FlagSYN != 0 {
		// First sighting, or a SYN starting a new incarnation of the
		// four-tuple: reset the flow bookkeeping.
		ft = &flowTrack{}
		k.flows[key] = ft
	}
	label := src.String() + ">" + dst.String()

	if flags&tcp.FlagACK != 0 {
		if ft.hasAck && ack.Less(ft.maxAck) {
			k.report(label, at, RuleAckRegress,
				fmt.Sprintf("ACK moved backward: %d after %d", ack, ft.maxAck), nil)
		}
		if !ft.hasAck || ft.maxAck.Less(ack) {
			ft.hasAck = true
			ft.maxAck = ack
		}
	}

	if ft.finSeen {
		if dataLen > 0 && ft.finSeq.Less(seq.Add(dataLen)) {
			k.report(label, at, RuleDataAfterFin,
				fmt.Sprintf("payload [%d,%d) extends beyond FIN at %d",
					seq, seq.Add(dataLen), ft.finSeq), nil)
		}
		if flags&tcp.FlagFIN != 0 && seq.Add(dataLen) != ft.finSeq {
			k.report(label, at, RuleFinMoved,
				fmt.Sprintf("FIN re-sent at %d, first seen at %d",
					seq.Add(dataLen), ft.finSeq), nil)
		}
	} else if flags&tcp.FlagFIN != 0 {
		ft.finSeen = true
		ft.finSeq = seq.Add(dataLen)
	}
}
