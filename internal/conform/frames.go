package conform

import (
	"encoding/binary"
	"time"

	"ulp/internal/ipv4"
	"ulp/internal/link"
	"ulp/internal/tcp"
)

// onFrame parses a raw transmitted frame and, when it encapsulates an
// unfragmented IPv4/TCP segment, applies the flow invariants. The parser
// works on the raw bytes directly — it never touches the packet pool, so
// attaching the checker cannot perturb pool-leak accounting in tests.
func (k *Checker) onFrame(at time.Duration, w []byte) {
	ip, ok := ipPayload(w)
	if !ok {
		return
	}
	if len(ip) < ipv4.HeaderLen || ip[0]>>4 != 4 {
		return
	}
	ihl := int(ip[0]&0x0f) * 4
	total := int(binary.BigEndian.Uint16(ip[2:4]))
	if ihl < ipv4.HeaderLen || total < ihl || total > len(ip) {
		return
	}
	ff := binary.BigEndian.Uint16(ip[6:8])
	if ff&0x2000 != 0 || ff&0x1fff != 0 {
		return // fragment: a partial TCP segment proves nothing
	}
	if ip[9] != ipv4.ProtoTCP {
		return
	}
	seg := ip[ihl:total]
	if len(seg) < tcp.HeaderLen {
		return
	}
	off := int(seg[12]>>4) * 4
	if off < tcp.HeaderLen || off > len(seg) {
		return
	}
	var srcIP, dstIP ipv4.Addr
	copy(srcIP[:], ip[12:16])
	copy(dstIP[:], ip[16:20])
	src := tcp.Endpoint{IP: srcIP, Port: binary.BigEndian.Uint16(seg[0:2])}
	dst := tcp.Endpoint{IP: dstIP, Port: binary.BigEndian.Uint16(seg[2:4])}
	seq := tcp.Seq(binary.BigEndian.Uint32(seg[4:8]))
	ack := tcp.Seq(binary.BigEndian.Uint32(seg[8:12]))
	flags := seg[13]
	k.checkSegment(at, src, dst, seq, ack, flags, len(seg)-off)
}

// ipPayload sniffs the link encapsulation (Ethernet II or AN1) and returns
// the IPv4 datagram bytes. Both framings carry dst(6) src(6) addresses; the
// EtherType sits at offset 12 for Ethernet and 16 for AN1 (after the two
// BQI words), so probing for TypeIPv4 followed by an IPv4 version nibble
// disambiguates them without out-of-band knowledge of the segment flavor.
func ipPayload(w []byte) ([]byte, bool) {
	const t = uint16(link.TypeIPv4)
	if len(w) >= link.EthHeaderLen+ipv4.HeaderLen &&
		binary.BigEndian.Uint16(w[12:14]) == t && w[link.EthHeaderLen]>>4 == 4 {
		return w[link.EthHeaderLen:], true
	}
	if len(w) >= link.AN1HeaderLen+ipv4.HeaderLen &&
		binary.BigEndian.Uint16(w[16:18]) == t && w[link.AN1HeaderLen]>>4 == 4 {
		return w[link.AN1HeaderLen:], true
	}
	return nil, false
}
