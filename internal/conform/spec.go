// Package conform is an RFC 793 conformance checker for the TCP engine's
// trace stream. It encodes the legal state-transition relation — every
// (from, to) edge of the connection state machine together with the trigger
// classes (user call, segment arrival, reset, timer expiry) that may cause
// it — plus cross-event invariants the RFC and the 4.3BSD timer design
// imply: sequence-space monotonicity on the wire, no data after a FIN,
// TIME_WAIT lasting exactly the armed 2*MSL interval, and Karn-compliant
// RTT sampling (no sample may span a retransmission).
//
// The checker is a passive trace.Bus consumer: it never touches the engine,
// never consumes virtual time, and can be attached to any traced run — the
// chaos suites, the determinism replays, cmd/ultrace, or the fault-schedule
// explorer in internal/explore. Violations come out as structured reports
// (connection label, event index, offending edge) that the explorer shrinks
// into minimal reproducers.
package conform

import "ulp/internal/tcp"

// Edge is one transition of the state machine: from, to, and the trigger
// class that caused it. It doubles as the unit of transition coverage: the
// explorer steers fault schedules toward edges not yet hit.
type Edge struct {
	From tcp.State   `json:"from"`
	To   tcp.State   `json:"to"`
	Via  tcp.Trigger `json:"via"`
}

func (e Edge) String() string {
	return e.From.String() + "->" + e.To.String() + " via " + e.Via.String()
}

// numStates and numTriggers bound the relation tables.
const (
	numStates   = int(tcp.TimeWait) + 1
	numTriggers = int(tcp.TrigTimer) + 1
)

// legalMask[from][to] is a bitmask over trigger classes: bit t set means
// the edge from->to is legal when caused by trigger t.
var legalMask [numStates][numStates]uint8

// legalEdges enumerates the transition relation the engine can actually
// realize. It is deliberately tighter than a verbatim reading of the RFC 793
// diagram: edges the engine structurally cannot take (for example
// SYN_RCVD -> CLOSE_WAIT, which is dead because ACK processing always moves
// SYN_RCVD to ESTABLISHED or resets first, and the compound
// FIN_WAIT_1 -> TIME_WAIT shortcut, which this engine always takes as two
// observable steps) are omitted, so that hitting 100% edge coverage is
// possible and any edge outside the table is a real bug.
var legalEdges = func() []Edge {
	var edges []Edge
	add := func(from, to tcp.State, via tcp.Trigger) {
		edges = append(edges, Edge{from, to, via})
	}

	// --- User calls (open, close, abort) -------------------------------
	add(tcp.Closed, tcp.Listen, tcp.TrigUser)   // passive open
	add(tcp.Closed, tcp.SynSent, tcp.TrigUser)  // active open
	add(tcp.SynRcvd, tcp.FinWait1, tcp.TrigUser)     // close before handshake completes
	add(tcp.Established, tcp.FinWait1, tcp.TrigUser) // orderly close
	add(tcp.CloseWait, tcp.LastAck, tcp.TrigUser)    // close after peer's FIN
	// Close in LISTEN/SYN_SENT and Abort anywhere tear straight down.
	for s := tcp.Listen; s <= tcp.TimeWait; s++ {
		add(s, tcp.Closed, tcp.TrigUser)
	}

	// --- Segment arrivals ----------------------------------------------
	add(tcp.Listen, tcp.SynRcvd, tcp.TrigSegment)       // SYN received
	add(tcp.SynSent, tcp.Established, tcp.TrigSegment)  // SYN|ACK received
	add(tcp.SynSent, tcp.SynRcvd, tcp.TrigSegment)      // simultaneous open
	add(tcp.SynRcvd, tcp.Established, tcp.TrigSegment)  // handshake ACK
	add(tcp.Established, tcp.CloseWait, tcp.TrigSegment) // peer's FIN
	add(tcp.FinWait1, tcp.FinWait2, tcp.TrigSegment)    // our FIN acked
	add(tcp.FinWait1, tcp.Closing, tcp.TrigSegment)     // simultaneous close
	add(tcp.FinWait2, tcp.TimeWait, tcp.TrigSegment)    // peer's FIN
	add(tcp.Closing, tcp.TimeWait, tcp.TrigSegment)     // our FIN acked
	add(tcp.LastAck, tcp.Closed, tcp.TrigSegment)       // our FIN acked

	// --- Resets (received RST, or fatal in-window SYN) -----------------
	add(tcp.SynSent, tcp.Closed, tcp.TrigReset)
	for s := tcp.SynRcvd; s <= tcp.TimeWait; s++ {
		add(s, tcp.Closed, tcp.TrigReset)
	}

	// --- Timers --------------------------------------------------------
	// Retransmission give-up is possible wherever unacked sequence space
	// can be outstanding; keepalive failure only in ESTABLISHED (subsumed);
	// the 2*MSL timer releases TIME_WAIT. FIN_WAIT_2 never times out here:
	// by definition all our data and the FIN are acked, so no retransmit or
	// keepalive timer can be pending.
	for _, s := range []tcp.State{
		tcp.SynSent, tcp.SynRcvd, tcp.Established, tcp.FinWait1,
		tcp.CloseWait, tcp.Closing, tcp.LastAck, tcp.TimeWait,
	} {
		add(s, tcp.Closed, tcp.TrigTimer)
	}

	for _, e := range edges {
		legalMask[e.From][e.To] |= 1 << e.Via
	}
	return edges
}()

// AllLegalEdges returns the complete legal transition relation, in a fixed
// deterministic order. The slice is shared; callers must not mutate it.
func AllLegalEdges() []Edge { return legalEdges }

// Legal reports whether the edge from->to under the given trigger is in the
// relation.
func Legal(from, to tcp.State, via tcp.Trigger) bool {
	if int(from) >= numStates || int(to) >= numStates || int(via) >= numTriggers {
		return false
	}
	return legalMask[from][to]&(1<<via) != 0
}

// edgeKnown reports whether from->to is legal under any trigger (used to
// distinguish "illegal edge" from "legal edge, wrong trigger" in reports).
func edgeKnown(from, to tcp.State) bool {
	if int(from) >= numStates || int(to) >= numStates {
		return false
	}
	return legalMask[from][to] != 0
}

// States in which the engine may legitimately emit the non-state trace
// events. Retransmission timeouts require an armed retransmit timer; fast
// retransmits require duplicate-ACK processing in a synchronized state; RTT
// samples and persist probes require a synchronized state that can still
// carry data.
var (
	rexmitStates = stateSet(tcp.SynSent, tcp.SynRcvd, tcp.Established,
		tcp.FinWait1, tcp.CloseWait, tcp.Closing, tcp.LastAck)
	fastRexmitStates = stateSet(tcp.Established, tcp.FinWait1,
		tcp.CloseWait, tcp.Closing, tcp.LastAck)
	rtoStates = stateSet(tcp.Established, tcp.FinWait1,
		tcp.CloseWait, tcp.Closing, tcp.LastAck)
	persistStates = stateSet(tcp.Established, tcp.FinWait1,
		tcp.CloseWait, tcp.Closing, tcp.LastAck)
)

func stateSet(states ...tcp.State) uint16 {
	var m uint16
	for _, s := range states {
		m |= 1 << s
	}
	return m
}

func inSet(m uint16, s tcp.State) bool {
	return int(s) < numStates && m&(1<<s) != 0
}

// Coverage accumulates which legal edges a run has exercised.
type Coverage struct {
	hits map[Edge]int
}

// NewCoverage returns an empty coverage map.
func NewCoverage() *Coverage { return &Coverage{hits: make(map[Edge]int)} }

// Hit records one traversal of a legal edge.
func (c *Coverage) Hit(e Edge) { c.hits[e]++ }

// Count returns how many distinct legal edges have been exercised.
func (c *Coverage) Count() int { return len(c.hits) }

// Total returns the size of the legal relation.
func (c *Coverage) Total() int { return len(legalEdges) }

// Frac returns covered/total in [0,1].
func (c *Coverage) Frac() float64 {
	return float64(c.Count()) / float64(c.Total())
}

// Covered reports whether the edge has been exercised.
func (c *Coverage) Covered(e Edge) bool { return c.hits[e] > 0 }

// Missing returns the legal edges not yet exercised, in relation order.
func (c *Coverage) Missing() []Edge {
	var m []Edge
	for _, e := range legalEdges {
		if c.hits[e] == 0 {
			m = append(m, e)
		}
	}
	return m
}

// Merge folds another coverage map into this one.
func (c *Coverage) Merge(o *Coverage) {
	for e, n := range o.hits {
		c.hits[e] += n
	}
}
