// Package udp implements the User Datagram Protocol. The paper's §5
// discusses connectionless protocols: request-response traffic typically has
// an address-binding phase (as in an RPC system) after which the dedicated
// server can be bypassed exactly as for TCP; the reqresp example and the
// RPC ablation benchmark are built on this package.
package udp

import (
	"encoding/binary"
	"fmt"

	"ulp/internal/checksum"
	"ulp/internal/ipv4"
	"ulp/internal/pkt"
)

// HeaderLen is the UDP header size.
const HeaderLen = 8

// Header is a decoded UDP header.
type Header struct {
	SrcPort, DstPort uint16
	// Length is the datagram length including the header (filled on
	// decode).
	Length int
}

// Encode prepends the header and computes the checksum over the
// pseudo-header, header and payload.
func (h *Header) Encode(b *pkt.Buf, src, dst ipv4.Addr) {
	length := HeaderLen + b.Len()
	w := b.Prepend(HeaderLen)
	binary.BigEndian.PutUint16(w[0:], h.SrcPort)
	binary.BigEndian.PutUint16(w[2:], h.DstPort)
	binary.BigEndian.PutUint16(w[4:], uint16(length))
	w[6], w[7] = 0, 0
	acc := checksum.PseudoHeader(0, src, dst, ipv4.ProtoUDP, length)
	ck := checksum.Fold(checksum.Sum(acc, b.Bytes()))
	if ck == 0 {
		ck = 0xffff // transmitted zero means "no checksum"
	}
	binary.BigEndian.PutUint16(w[6:], ck)
}

// Decode strips and validates a header. A zero checksum field means the
// sender didn't checksum (legal for UDP).
func Decode(b *pkt.Buf, src, dst ipv4.Addr) (Header, error) {
	if b.Len() < HeaderLen {
		return Header{}, fmt.Errorf("udp: short datagram (%d bytes)", b.Len())
	}
	w := b.Bytes()
	length := int(binary.BigEndian.Uint16(w[4:]))
	if length < HeaderLen || length > b.Len() {
		return Header{}, fmt.Errorf("udp: bad length %d (datagram %d)", length, b.Len())
	}
	if binary.BigEndian.Uint16(w[6:]) != 0 {
		acc := checksum.PseudoHeader(0, src, dst, ipv4.ProtoUDP, length)
		if checksum.Fold(checksum.Sum(acc, w[:length])) != 0 {
			return Header{}, fmt.Errorf("udp: checksum mismatch")
		}
	}
	var h Header
	h.SrcPort = binary.BigEndian.Uint16(w[0:])
	h.DstPort = binary.BigEndian.Uint16(w[2:])
	h.Length = length
	b.Trim(length)
	b.Strip(HeaderLen)
	return h, nil
}

// Datagram is a received datagram with its source.
type Datagram struct {
	From    Endpoint
	Payload []byte
}

// Endpoint is an address/port pair.
type Endpoint struct {
	IP   ipv4.Addr
	Port uint16
}

// String formats the endpoint.
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.IP, e.Port) }

// Table demultiplexes datagrams to bound ports.
type Table struct {
	socks map[uint16]*Sock
}

// Sock is one bound UDP endpoint with a receive queue.
type Sock struct {
	Local Endpoint
	queue []Datagram
	limit int
	// Dropped counts datagrams discarded because the queue was full.
	Dropped int
}

// NewTable creates an empty table.
func NewTable() *Table { return &Table{socks: make(map[uint16]*Sock)} }

// Bind claims a port.
func (t *Table) Bind(local Endpoint, queueLimit int) (*Sock, error) {
	if _, dup := t.socks[local.Port]; dup {
		return nil, fmt.Errorf("udp: port %d in use", local.Port)
	}
	if queueLimit <= 0 {
		queueLimit = 64
	}
	s := &Sock{Local: local, limit: queueLimit}
	t.socks[local.Port] = s
	return s, nil
}

// Unbind releases a port.
func (t *Table) Unbind(port uint16) { delete(t.socks, port) }

// Deliver routes a datagram to its socket; it reports whether a socket
// existed.
func (t *Table) Deliver(dst Endpoint, d Datagram) bool {
	s, ok := t.socks[dst.Port]
	if !ok {
		return false
	}
	if len(s.queue) >= s.limit {
		s.Dropped++
		return true
	}
	s.queue = append(s.queue, d)
	return true
}

// Recv pops the next queued datagram.
func (s *Sock) Recv() (Datagram, bool) {
	if len(s.queue) == 0 {
		return Datagram{}, false
	}
	d := s.queue[0]
	s.queue = s.queue[1:]
	return d, true
}

// Pending returns the queue depth.
func (s *Sock) Pending() int { return len(s.queue) }
