package udp

import (
	"bytes"
	"testing"
	"testing/quick"

	"ulp/internal/ipv4"
	"ulp/internal/pkt"
)

var (
	src = ipv4.Addr{10, 0, 0, 1}
	dst = ipv4.Addr{10, 0, 0, 2}
)

func TestCodecRoundTrip(t *testing.T) {
	h := Header{SrcPort: 53, DstPort: 1024}
	b := pkt.FromBytes(HeaderLen, []byte("query"))
	h.Encode(b, src, dst)
	got, err := Decode(b, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 53 || got.DstPort != 1024 || got.Length != HeaderLen+5 {
		t.Fatalf("decoded %+v", got)
	}
	if string(b.Bytes()) != "query" {
		t.Fatalf("payload %q", b.Bytes())
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	h := Header{SrcPort: 1, DstPort: 2}
	b := pkt.FromBytes(HeaderLen, []byte("payload"))
	h.Encode(b, src, dst)
	b.Bytes()[9] ^= 0x40
	if _, err := Decode(b, src, dst); err == nil {
		t.Fatal("corrupted datagram decoded")
	}
}

func TestZeroChecksumAccepted(t *testing.T) {
	h := Header{SrcPort: 1, DstPort: 2}
	b := pkt.FromBytes(HeaderLen, []byte("nocheck"))
	h.Encode(b, src, dst)
	b.Bytes()[6], b.Bytes()[7] = 0, 0 // sender didn't checksum
	if _, err := Decode(b, src, dst); err != nil {
		t.Fatalf("zero-checksum datagram rejected: %v", err)
	}
}

func TestDecodeRejectsShortAndBadLength(t *testing.T) {
	if _, err := Decode(pkt.FromBytes(0, make([]byte, 7)), src, dst); err == nil {
		t.Fatal("short datagram decoded")
	}
	h := Header{SrcPort: 1, DstPort: 2}
	b := pkt.FromBytes(HeaderLen, []byte("x"))
	h.Encode(b, src, dst)
	b.Bytes()[4], b.Bytes()[5] = 0xff, 0xff
	if _, err := Decode(b, src, dst); err == nil {
		t.Fatal("bad length decoded")
	}
}

func TestTrimsPadding(t *testing.T) {
	h := Header{SrcPort: 9, DstPort: 10}
	b := pkt.FromBytes(HeaderLen, []byte("ab"))
	h.Encode(b, src, dst)
	padded := pkt.FromBytes(0, append(append([]byte(nil), b.Bytes()...), make([]byte, 40)...))
	if _, err := Decode(padded, src, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(padded.Bytes(), []byte("ab")) {
		t.Fatalf("payload = %q", padded.Bytes())
	}
}

func TestRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(sp, dp uint16, payload []byte) bool {
		h := Header{SrcPort: sp, DstPort: dp}
		b := pkt.FromBytes(HeaderLen, payload)
		h.Encode(b, src, dst)
		got, err := Decode(b, src, dst)
		return err == nil && got.SrcPort == sp && got.DstPort == dp && bytes.Equal(b.Bytes(), payload)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTableBindDeliver(t *testing.T) {
	tb := NewTable()
	local := Endpoint{IP: dst, Port: 7}
	s, err := tb.Bind(local, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Bind(local, 2); err == nil {
		t.Fatal("double bind allowed")
	}
	if !tb.Deliver(local, Datagram{From: Endpoint{IP: src, Port: 99}, Payload: []byte("a")}) {
		t.Fatal("delivery to bound port failed")
	}
	if tb.Deliver(Endpoint{IP: dst, Port: 8}, Datagram{}) {
		t.Fatal("delivery to unbound port succeeded")
	}
	tb.Deliver(local, Datagram{Payload: []byte("b")})
	tb.Deliver(local, Datagram{Payload: []byte("c")}) // over limit
	if s.Dropped != 1 || s.Pending() != 2 {
		t.Fatalf("dropped=%d pending=%d", s.Dropped, s.Pending())
	}
	d, ok := s.Recv()
	if !ok || string(d.Payload) != "a" || d.From.Port != 99 {
		t.Fatalf("recv = %+v, %v", d, ok)
	}
	s.Recv()
	if _, ok := s.Recv(); ok {
		t.Fatal("recv from empty queue succeeded")
	}
	tb.Unbind(7)
	if tb.Deliver(local, Datagram{}) {
		t.Fatal("delivery after unbind succeeded")
	}
}
