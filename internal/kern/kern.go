// Package kern simulates the operating-system substrate the paper's three
// protocol organizations run on: hosts with a single CPU, address-space
// domains, threads, traps, Mach-style message ports, lightweight semaphores
// with kernel-mediated wakeups, and shared-memory regions.
//
// The kernel charges the *structural* costs — traps, context switches, IPC,
// wakeups — to the host CPU using the calibrated cost model; protocol
// processing costs are charged by the organization shells. This split is
// what lets the three organizations run identical protocol code and differ
// only in structure, mirroring the paper's methodology.
package kern

import (
	"fmt"
	"time"

	"ulp/internal/costs"
	"ulp/internal/sim"
)

// Host is one simulated workstation (a DECstation 5000/200 in the paper's
// configuration).
type Host struct {
	S    *sim.Sim
	Name string
	CPU  *sim.Resource
	Cost costs.Model

	domains []*Domain
}

// NewHost creates a host with the given cost model.
func NewHost(s *sim.Sim, name string, model costs.Model) *Host {
	return &Host{S: s, Name: name, CPU: s.NewResource(name + ".cpu"), Cost: model}
}

// NewDomain creates an address space on the host. Privileged domains model
// the kernel and trusted servers (the registry).
func (h *Host) NewDomain(name string, privileged bool) *Domain {
	d := &Domain{Host: h, Name: name, Privileged: privileged}
	h.domains = append(h.domains, d)
	return d
}

// ComputeAsync charges d of CPU from event context (interrupt level) and
// runs fn when the CPU work completes.
func (h *Host) ComputeAsync(d time.Duration, fn func()) {
	h.CPU.UseAsync(d, fn)
}

// NewCPU adds an auxiliary processing resource to the host — a core a
// pinned domain computes on instead of the main CPU (multiprocessor hosts;
// the sharded control plane runs one registry shard per core).
func (h *Host) NewCPU(name string) *sim.Resource {
	return h.S.NewResource(h.Name + "." + name)
}

// Domain is an address space: the kernel, a server, or an application.
type Domain struct {
	Host       *Host
	Name       string
	Privileged bool

	threads    []*Thread
	dead       bool
	deathHooks []func()
	cpu        *sim.Resource // non-nil: threads compute here, not Host.CPU
}

// PinCPU dedicates a processing resource to the domain: every Compute by
// the domain's threads charges this resource instead of the host's main
// CPU, so pinned domains on one host run their work in parallel. Costs
// charged by other domains on the same host are unaffected.
func (d *Domain) PinCPU(cpu *sim.Resource) { d.cpu = cpu }

// CPU returns the resource the domain's threads compute on.
func (d *Domain) CPU() *sim.Resource {
	if d.cpu != nil {
		return d.cpu
	}
	return d.Host.CPU
}

// ComputeAsync charges dur of CPU on the domain's compute resource from
// event context (the pinned-core analogue of Host.ComputeAsync).
func (d *Domain) ComputeAsync(dur time.Duration, fn func()) {
	d.CPU().UseAsync(dur, fn)
}

func (d *Domain) String() string { return d.Host.Name + "/" + d.Name }

// Thread is a simulated thread of control bound to a domain.
type Thread struct {
	*sim.Proc
	Dom *Domain
}

// Spawn starts a thread in the domain. Spawning into a dead (crashed)
// domain returns a thread that never runs, as the address space is gone.
func (d *Domain) Spawn(name string, fn func(t *Thread)) *Thread {
	return d.SpawnAfter(0, name, fn)
}

// SpawnAfter starts a thread in the domain after a delay.
func (d *Domain) SpawnAfter(delay time.Duration, name string, fn func(t *Thread)) *Thread {
	t := &Thread{Dom: d}
	t.Proc = d.Host.S.SpawnAfter(delay, d.String()+"."+name, func(p *sim.Proc) {
		if d.dead {
			return
		}
		fn(t)
	})
	d.threads = append(d.threads, t)
	if d.dead {
		d.Host.S.Kill(t.Proc)
	}
	return t
}

// OnDeath registers a hook invoked when the domain is killed. The kernel
// uses this to notify trusted servers (the registry, the network I/O
// module) that an application crashed so its resources can be reclaimed.
// Hooks run in the kill context, after every thread has been torn down; a
// hook registered on an already-dead domain runs immediately, so observers
// cannot miss the death by racing with it.
func (d *Domain) OnDeath(fn func()) {
	if d.dead {
		fn()
		return
	}
	d.deathHooks = append(d.deathHooks, fn)
}

// Kill crashes the domain abruptly: every thread is torn down at its
// current blocking point without running any exit path, and the domain's
// death hooks fire. This models an application that segfaults or is killed
// — nothing the domain's code would have done on orderly exit happens.
// Killing an already-dead domain is a no-op.
func (d *Domain) Kill() {
	if d.dead {
		return
	}
	d.dead = true
	for _, t := range d.threads {
		d.Host.S.Kill(t.Proc)
	}
	for _, fn := range d.deathHooks {
		fn()
	}
}

// Dead reports whether the domain has been killed.
func (d *Domain) Dead() bool { return d.dead }

// Compute charges d of CPU time on behalf of the thread — to the host CPU,
// or to the domain's pinned core if one was dedicated — blocking through
// any queueing delay.
func (t *Thread) Compute(d time.Duration) {
	t.Dom.CPU().Use(t.Proc, d)
}

// Cost returns the host's cost model.
func (t *Thread) Cost() *costs.Model { return &t.Dom.Host.Cost }

// Trap charges a general-purpose system-call trap (used by the monolithic
// organizations' socket calls).
func (t *Thread) Trap() { t.Compute(t.Cost().SyscallTrap) }

// FastTrap charges the specialized kernel entry used by the library's send
// path.
func (t *Thread) FastTrap() { t.Compute(t.Cost().FastTrap) }

// Sem is a lightweight semaphore with kernel-mediated wakeups: V pays only
// SemSignal when nobody needs waking across domains, and KernelWakeup when
// it must make a blocked user thread runnable (signal + scheduler pass +
// switch into the target address space). This matches the paper's
// "lightweight semaphore that a library thread is waiting on" notification
// path, including the observation that batching packets per notification
// amortizes the signalling cost.
type Sem struct {
	host *Host
	sem  *sim.Semaphore
}

// NewSem creates a semaphore owned by (delivering wakeups on) host h.
func NewSem(h *Host, name string, initial int) *Sem {
	return &Sem{host: h, sem: h.S.NewSemaphore(name, initial)}
}

// V posts the semaphore. May be called from any context; the cost is
// charged to the host CPU asynchronously.
func (m *Sem) V() {
	c := &m.host.Cost
	if m.sem.Waiters() > 0 {
		m.host.ComputeAsync(c.KernelWakeup, m.sem.V)
		return
	}
	m.host.ComputeAsync(c.SemSignal, nil)
	m.sem.V()
}

// P blocks the thread until the semaphore is posted.
func (m *Sem) P(t *Thread) { m.sem.P(t.Proc) }

// TryP consumes a pending post without blocking.
func (m *Sem) TryP() bool { return m.sem.TryP() }

// Signals returns the number of V operations, for batching statistics.
func (m *Sem) Signals() int { return m.sem.Signals() }

// Region is a memory region shared between domains (e.g. the packet buffer
// area the network I/O module shares with a protocol library). The region
// is wired (pinned) while a connection uses it, as in the paper. Access
// control is by possession of the *Region, mirroring capability possession.
type Region struct {
	Name   string
	Buf    []byte
	pinned bool
}

// NewRegion allocates a wired shared region.
func NewRegion(name string, size int) *Region {
	return &Region{Name: name, Buf: make([]byte, size), pinned: true}
}

// Unpin releases the wiring when the owning connection is torn down — on
// orderly teardown or when the kernel reclaims a crashed application's
// resources. Pinned regions are what a leaked crash would wire forever.
func (r *Region) Unpin() { r.pinned = false }

// Pinned reports whether the region is still wired.
func (r *Region) Pinned() bool { return r.pinned }

// Msg is a Mach-style message.
type Msg struct {
	// Op names the operation for dispatch.
	Op string
	// Body carries the payload object (simulation-side; Size below is what
	// is charged for the copy through the kernel).
	Body any
	// Size is the number of bytes of in-line data the message carries.
	Size int
	// Reply, when non-nil, is the port the receiver should respond on.
	Reply *Port
	// ID, when nonzero, identifies the logical request across retries so a
	// server can deduplicate: a retried RPC whose original reply was lost
	// (timeout, dropped request) carries the same ID, and the server replays
	// the cached outcome instead of executing the operation twice.
	ID uint64
}

// Batch is a coalesced control-plane message: several requests carried by
// one IPC. The sender pays one Send for the whole batch; appending a
// request to a forming batch is modelled free (a shared-memory write next
// to the single IPC that carries it). The receiver dispatches each inner
// message — each with its own ID and Reply port — in order, as if they had
// arrived back to back.
type Batch struct {
	Msgs []Msg
}

// Port is a Mach-style message port: a kernel-protected queue with send and
// receive rights. Sends charge the one-way IPC cost plus in-line data copy;
// the receiver side charges the context switch upon wakeup (modelled at
// send time for simplicity, as the costs are serial on one CPU).
type Port struct {
	host *Host
	name string
	q    *sim.Queue[Msg]
}

// NewPort creates a port on host h.
func NewPort(h *Host, name string) *Port {
	return &Port{host: h, name: name, q: sim.NewQueue[Msg](h.S)}
}

// Send transmits m to the port from thread t, charging one-way IPC cost,
// in-line data copy, and the context switch into the receiving domain.
func (p *Port) Send(t *Thread, m Msg) {
	c := t.Cost()
	t.Compute(c.MachIPCSend + c.Copy(m.Size) + c.ContextSwitch)
	p.q.Push(m)
}

// SendAsync posts from event context (e.g. a kernel-side completion),
// charging costs asynchronously.
func (p *Port) SendAsync(m Msg) {
	c := &p.host.Cost
	p.host.ComputeAsync(c.MachIPCSend+c.Copy(m.Size), func() {
		p.q.Push(m)
	})
}

// Receive blocks until a message arrives.
func (p *Port) Receive(t *Thread) Msg {
	return p.q.Pop(t.Proc)
}

// Call performs an RPC: send m, then block for the reply on a private
// reply port. The reply path charges the return IPC and switch.
func (p *Port) Call(t *Thread, m Msg) Msg {
	reply := NewPort(t.Dom.Host, p.name+".reply")
	m.Reply = reply
	p.Send(t, m)
	r := reply.Receive(t)
	c := t.Cost()
	t.Compute(c.MachIPCSend + c.Copy(r.Size) + c.ContextSwitch)
	return r
}

// CallTimeout is Call with a deadline: it blocks for the reply at most d of
// virtual time, reporting false if the server never answered. The reply
// port is abandoned on timeout; a late reply lands in a queue nobody reads,
// exactly like a Mach RPC whose caller gave up on a dead port.
func (p *Port) CallTimeout(t *Thread, m Msg, d time.Duration) (Msg, bool) {
	reply := NewPort(t.Dom.Host, p.name+".reply")
	m.Reply = reply
	p.Send(t, m)
	r, ok := reply.q.PopTimeout(t.Proc, d)
	if !ok {
		return Msg{}, false
	}
	c := t.Cost()
	t.Compute(c.MachIPCSend + c.Copy(r.Size) + c.ContextSwitch)
	return r, true
}

// ReceiveTimeout blocks for a message at most d of virtual time, reporting
// false if none arrived. On success it charges the receive-side IPC costs,
// like Call's reply path — callers waiting on a caller-owned reply port
// (batched RPCs) pay what a plain Call would have.
func (p *Port) ReceiveTimeout(t *Thread, d time.Duration) (Msg, bool) {
	r, ok := p.q.PopTimeout(t.Proc, d)
	if !ok {
		return Msg{}, false
	}
	c := t.Cost()
	t.Compute(c.MachIPCSend + c.Copy(r.Size) + c.ContextSwitch)
	return r, true
}

// Reply responds to a received message carrying a reply port.
func (m Msg) ReplyTo(t *Thread, r Msg) {
	if m.Reply == nil {
		panic(fmt.Sprintf("kern: reply to one-way message %q", m.Op))
	}
	// The responder pays the send; the caller pays the receive-side costs
	// in Call.
	m.Reply.q.Push(r)
}
