package kern

import (
	"testing"
	"time"

	"ulp/internal/costs"
	"ulp/internal/sim"
)

func newHost(s *sim.Sim) *Host {
	return NewHost(s, "h0", costs.Default())
}

func TestThreadCompute(t *testing.T) {
	s := sim.New()
	h := newHost(s)
	d := h.NewDomain("app", false)
	var end sim.Time
	d.Spawn("w", func(th *Thread) {
		th.Compute(100 * time.Microsecond)
		end = th.Now()
	})
	s.Run(0)
	if end != sim.Time(100*time.Microsecond) {
		t.Fatalf("end = %v, want 100µs", end)
	}
}

func TestCPUContention(t *testing.T) {
	s := sim.New()
	h := newHost(s)
	d := h.NewDomain("app", false)
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		d.Spawn("w", func(th *Thread) {
			th.Compute(50 * time.Microsecond)
			ends = append(ends, th.Now())
		})
	}
	s.Run(0)
	if ends[0] != sim.Time(50*time.Microsecond) || ends[1] != sim.Time(100*time.Microsecond) {
		t.Fatalf("ends = %v, want serialized on one CPU", ends)
	}
}

func TestTwoHostsIndependentCPUs(t *testing.T) {
	s := sim.New()
	h1 := NewHost(s, "h1", costs.Default())
	h2 := NewHost(s, "h2", costs.Default())
	var ends []sim.Time
	h1.NewDomain("a", false).Spawn("w", func(th *Thread) {
		th.Compute(50 * time.Microsecond)
		ends = append(ends, th.Now())
	})
	h2.NewDomain("a", false).Spawn("w", func(th *Thread) {
		th.Compute(50 * time.Microsecond)
		ends = append(ends, th.Now())
	})
	s.Run(0)
	if ends[0] != ends[1] {
		t.Fatalf("different hosts should not contend: %v", ends)
	}
}

func TestSemWakeupCost(t *testing.T) {
	s := sim.New()
	h := newHost(s)
	d := h.NewDomain("app", false)
	sem := NewSem(h, "sem", 0)
	var wake sim.Time
	d.Spawn("waiter", func(th *Thread) {
		sem.P(th)
		wake = th.Now()
	})
	s.After(time.Millisecond, func() { sem.V() })
	s.Run(0)
	// Wakeup should cost KernelWakeup after the V at 1ms.
	want := sim.Time(time.Millisecond + costs.Default().KernelWakeup)
	if wake != want {
		t.Fatalf("woke at %v, want %v", wake, want)
	}
}

func TestSemNoWaiterCheapSignal(t *testing.T) {
	s := sim.New()
	h := newHost(s)
	sem := NewSem(h, "sem", 0)
	sem.V()
	s.Run(0)
	if h.CPU.Busy() != costs.Default().SemSignal {
		t.Fatalf("cpu busy = %v, want SemSignal only", h.CPU.Busy())
	}
	if !sem.TryP() {
		t.Fatal("post was lost")
	}
}

func TestPortRPC(t *testing.T) {
	s := sim.New()
	h := newHost(s)
	app := h.NewDomain("app", false)
	srv := h.NewDomain("server", true)
	port := NewPort(h, "svc")

	srv.Spawn("server", func(th *Thread) {
		m := port.Receive(th)
		if m.Op != "ping" {
			t.Errorf("op = %q", m.Op)
		}
		th.Compute(10 * time.Microsecond) // service time
		m.ReplyTo(th, Msg{Op: "pong", Size: 4})
	})

	var reply Msg
	var rtt sim.Time
	app.Spawn("client", func(th *Thread) {
		reply = port.Call(th, Msg{Op: "ping", Size: 8})
		rtt = th.Now()
	})
	s.Run(0)
	if reply.Op != "pong" {
		t.Fatalf("reply = %+v", reply)
	}
	c := costs.Default()
	// Two one-way IPCs + two context switches + copies + service.
	min := 2*c.MachIPCSend + 2*c.ContextSwitch + 10*time.Microsecond
	if sim.Dur(rtt) < min {
		t.Fatalf("rtt = %v, want >= %v", rtt, min)
	}
}

func TestPortFIFO(t *testing.T) {
	s := sim.New()
	h := newHost(s)
	d := h.NewDomain("a", false)
	port := NewPort(h, "p")
	var got []string
	d.Spawn("recv", func(th *Thread) {
		for i := 0; i < 3; i++ {
			got = append(got, port.Receive(th).Op)
		}
	})
	d.Spawn("send", func(th *Thread) {
		for _, op := range []string{"1", "2", "3"} {
			port.Send(th, Msg{Op: op})
		}
	})
	s.Run(0)
	if len(got) != 3 || got[0] != "1" || got[2] != "3" {
		t.Fatalf("got = %v", got)
	}
}

func TestSendAsync(t *testing.T) {
	s := sim.New()
	h := newHost(s)
	d := h.NewDomain("a", false)
	port := NewPort(h, "p")
	var got Msg
	d.Spawn("recv", func(th *Thread) { got = port.Receive(th) })
	port.SendAsync(Msg{Op: "evt", Size: 100})
	s.Run(0)
	if got.Op != "evt" {
		t.Fatalf("got = %+v", got)
	}
}

func TestReplyToOneWayPanics(t *testing.T) {
	s := sim.New()
	h := newHost(s)
	d := h.NewDomain("a", false)
	port := NewPort(h, "p")
	d.Spawn("recv", func(th *Thread) {
		m := port.Receive(th)
		defer func() {
			if recover() == nil {
				t.Error("expected panic replying to one-way message")
			}
		}()
		m.ReplyTo(th, Msg{})
	})
	d.Spawn("send", func(th *Thread) { port.Send(th, Msg{Op: "oneway"}) })
	s.Run(0)
}

func TestRegion(t *testing.T) {
	r := NewRegion("ring", 4096)
	if len(r.Buf) != 4096 {
		t.Fatalf("region size = %d", len(r.Buf))
	}
	copy(r.Buf, "shared")
	if string(r.Buf[:6]) != "shared" {
		t.Fatal("region not writable")
	}
}

func TestTrapCosts(t *testing.T) {
	s := sim.New()
	h := newHost(s)
	d := h.NewDomain("app", false)
	d.Spawn("w", func(th *Thread) {
		th.Trap()
		th.FastTrap()
	})
	s.Run(0)
	c := costs.Default()
	if h.CPU.Busy() != c.SyscallTrap+c.FastTrap {
		t.Fatalf("busy = %v", h.CPU.Busy())
	}
}
