package kern

import (
	"testing"
	"time"

	"ulp/internal/sim"
)

// Domain.Kill tears down every thread with no exit path and fires the
// death hooks exactly once.
func TestDomainKill(t *testing.T) {
	s := sim.New()
	h := newHost(s)
	d := h.NewDomain("app", false)
	var progressed int
	for i := 0; i < 3; i++ {
		d.Spawn("w", func(th *Thread) {
			th.Sleep(time.Second)
			progressed++
		})
	}
	hooks := 0
	d.OnDeath(func() { hooks++ })
	s.After(time.Millisecond, func() {
		d.Kill()
		d.Kill() // idempotent
	})
	s.Run(0)
	if progressed != 0 {
		t.Fatalf("%d threads survived the kill", progressed)
	}
	if hooks != 1 {
		t.Fatalf("death hooks ran %d times, want 1", hooks)
	}
	if !d.Dead() {
		t.Fatal("domain not marked dead")
	}
}

// Threads spawned into an already-dead domain never run.
func TestSpawnIntoDeadDomain(t *testing.T) {
	s := sim.New()
	h := newHost(s)
	d := h.NewDomain("app", false)
	d.Kill()
	ran := false
	d.Spawn("late", func(th *Thread) { ran = true })
	s.Run(0)
	if ran {
		t.Fatal("thread ran in a dead domain")
	}
}

// A hook registered on an already-dead domain runs immediately.
func TestOnDeathAfterKill(t *testing.T) {
	s := sim.New()
	h := newHost(s)
	d := h.NewDomain("app", false)
	d.Kill()
	ran := false
	d.OnDeath(func() { ran = true })
	if !ran {
		t.Fatal("late death hook did not run")
	}
}

// CallTimeout returns ok=false when the server never replies, and the
// caller resumes at the deadline.
func TestCallTimeout(t *testing.T) {
	s := sim.New()
	h := newHost(s)
	srv := h.NewDomain("server", true)
	svc := NewPort(h, "svc")
	replies := 0
	srv.Spawn("serve", func(th *Thread) {
		for {
			m := svc.Receive(th)
			if m.Op == "answer" {
				m.ReplyTo(th, Msg{Op: "ack"})
				replies++
			}
			// "ignore" requests get no reply ever.
		}
	})

	app := h.NewDomain("app", false)
	var gotAck, timedOut bool
	var elapsed sim.Dur
	app.Spawn("client", func(th *Thread) {
		if r, ok := svc.CallTimeout(th, Msg{Op: "answer"}, 100*time.Millisecond); ok && r.Op == "ack" {
			gotAck = true
		}
		start := th.Now()
		if _, ok := svc.CallTimeout(th, Msg{Op: "ignore"}, 50*time.Millisecond); !ok {
			timedOut = true
			elapsed = th.Now().Sub(start)
		}
	})
	s.Run(time.Second)
	if !gotAck {
		t.Fatal("answered call did not complete")
	}
	if !timedOut {
		t.Fatal("unanswered call did not time out")
	}
	// Elapsed is the 50 ms deadline plus the send-side IPC cost charged
	// before blocking; it must never be less than the deadline.
	if elapsed < 50*time.Millisecond || elapsed > 52*time.Millisecond {
		t.Fatalf("timeout took %v, want ~50ms of virtual time", elapsed)
	}
}

// Region pinning is released exactly once by Unpin.
func TestRegionUnpin(t *testing.T) {
	r := NewRegion("buf", 4096)
	if !r.Pinned() {
		t.Fatal("fresh region should be pinned")
	}
	r.Unpin()
	if r.Pinned() {
		t.Fatal("region still pinned after Unpin")
	}
}
