package lease

import (
	"testing"
	"time"
)

// clock is a manually advanced virtual clock.
type clock struct{ at time.Duration }

func (c *clock) now() time.Duration { return c.at }

func TestGrantRenewExpire(t *testing.T) {
	c := &clock{}
	tb := NewTable(c.now, 100*time.Millisecond)

	tb.Grant(7)
	if tb.Expired(7) {
		t.Fatal("fresh lease already expired")
	}
	c.at = 99 * time.Millisecond
	if tb.Expired(7) {
		t.Fatal("lease expired before ttl")
	}
	c.at = 100 * time.Millisecond
	if !tb.Expired(7) {
		t.Fatal("lease not expired at ttl")
	}
	if tb.ExpiredCount() != 1 {
		t.Fatalf("ExpiredCount = %d, want 1", tb.ExpiredCount())
	}

	// An expired lease can still be renewed (quarantine is a suspension).
	if !tb.Renew(7) {
		t.Fatal("renew of known id failed")
	}
	if tb.Expired(7) {
		t.Fatal("renewed lease still expired")
	}
}

func TestUnknownIDNeverExpired(t *testing.T) {
	c := &clock{at: time.Hour}
	tb := NewTable(c.now, time.Millisecond)
	if tb.Expired(42) {
		t.Fatal("unknown id reported expired")
	}
	if tb.Renew(42) {
		t.Fatal("renew of unknown id succeeded")
	}
}

func TestRenewAllAndDrop(t *testing.T) {
	c := &clock{}
	tb := NewTable(c.now, 50*time.Millisecond)
	tb.Grant(1)
	tb.Grant(2)
	tb.Grant(3)
	tb.Drop(2)
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
	c.at = 40 * time.Millisecond
	if n := tb.RenewAll(); n != 2 {
		t.Fatalf("RenewAll = %d, want 2", n)
	}
	c.at = 80 * time.Millisecond // would be past the original deadline
	if tb.Expired(1) || tb.Expired(3) {
		t.Fatal("renewed lease expired")
	}
	if tb.Expired(2) {
		t.Fatal("dropped lease reported expired")
	}
	if tb.Grants != 3 || tb.Renewals != 2 {
		t.Fatalf("counters = %d grants %d renewals, want 3/2", tb.Grants, tb.Renewals)
	}
}
