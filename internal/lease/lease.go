// Package lease implements time-bounded grants over capability ids, the
// mechanism that lets the in-kernel network I/O module outlive its control
// plane safely. The registry grants a lease when it installs a channel and
// renews all leases on a heartbeat; if the registry dies and stays dead, the
// leases run out and the module quarantines the affected endpoints instead
// of serving a dead control plane forever. A restarted registry re-adopts
// state from the module and resumes renewing, which lifts the quarantine.
//
// The table is deliberately passive: expiry is evaluated lazily against a
// read-only virtual clock on each query, so it schedules no simulator
// events, draws no randomness, and keeps fault-free runs bit-identical.
package lease

import "time"

// Table tracks one lease per id (the module keys it by capability id).
type Table struct {
	now func() time.Duration
	ttl time.Duration
	exp map[uint64]time.Duration

	// Stats.
	Grants, Renewals int
}

// NewTable builds a table over a virtual clock. Every grant and renewal
// extends the lease to now+ttl.
func NewTable(now func() time.Duration, ttl time.Duration) *Table {
	return &Table{now: now, ttl: ttl, exp: make(map[uint64]time.Duration)}
}

// TTL returns the lease lifetime.
func (t *Table) TTL() time.Duration { return t.ttl }

// Grant starts a fresh lease for id.
func (t *Table) Grant(id uint64) {
	t.exp[id] = t.now() + t.ttl
	t.Grants++
}

// Renew extends id's lease; it reports whether the id was known. An expired
// but not yet dropped lease may be renewed — quarantine is a suspension,
// not a revocation, precisely so a late-restarting registry can recover
// endpoints whose state is still live in the module.
func (t *Table) Renew(id uint64) bool {
	if _, ok := t.exp[id]; !ok {
		return false
	}
	t.exp[id] = t.now() + t.ttl
	t.Renewals++
	return true
}

// RenewAll extends every lease (the registry heartbeat) and returns how
// many were renewed.
func (t *Table) RenewAll() int {
	deadline := t.now() + t.ttl
	for id := range t.exp {
		t.exp[id] = deadline
	}
	n := len(t.exp)
	t.Renewals += n
	return n
}

// Drop forgets id's lease (channel destroyed).
func (t *Table) Drop(id uint64) { delete(t.exp, id) }

// Expired reports whether id's lease has run out. An id the table has never
// seen is NOT expired: enforcement applies only to granted leases, so a
// module running without a lease-granting control plane (monolithic
// organizations, raw channels created before EnableLeases) is unaffected.
func (t *Table) Expired(id uint64) bool {
	e, ok := t.exp[id]
	return ok && t.now() >= e
}

// Len returns the number of tracked leases.
func (t *Table) Len() int { return len(t.exp) }

// ExpiredCount returns how many tracked leases are currently expired
// (diagnostics; quarantined endpoints).
func (t *Table) ExpiredCount() int {
	n := 0
	now := t.now()
	for _, e := range t.exp {
		if now >= e {
			n++
		}
	}
	return n
}
