package tcp

import "ulp/internal/pkt"

// Output runs the send policy (the tcp_output engine): it emits as many
// segments as the send window, congestion window, Nagle rule, silly-window
// avoidance and pending control flags allow.
func (c *Conn) Output() { c.output(false) }

// outputForced emits a segment even against a closed window (persist probes
// and retransmissions).
func (c *Conn) outputForced() { c.output(true) }

func (c *Conn) output(force bool) {
	for {
		if !c.outputOne(force) {
			return
		}
		force = false
	}
}

// outputOne builds and sends at most one segment; it reports whether the
// caller should try for another.
func (c *Conn) outputOne(force bool) bool {
	switch c.state {
	case Closed, Listen:
		return false
	}

	idle := c.sndMax == c.sndUna
	win := c.sndWnd
	if c.cwnd < win {
		win = c.cwnd
	}
	if force && win == 0 {
		win = 1 // window probe
	}

	var flags uint8 = FlagACK
	sendSYN := false
	switch c.state {
	case SynSent:
		if c.sndNxt == c.iss {
			sendSYN = true
			flags = FlagSYN // no ACK on the initial SYN
		}
	case SynRcvd:
		if c.sndNxt == c.iss {
			sendSYN = true
			flags = FlagSYN | FlagACK
		}
	}

	// Sendable data.
	length := 0
	var data []byte
	if !sendSYN && c.sndNxt != c.iss {
		inFlight := c.sndNxt.Diff(c.sndUna)
		if inFlight < 0 {
			inFlight = 0
		}
		usable := win - inFlight
		if usable < 0 {
			usable = 0
		}
		avail := c.snd.len() - c.sndNxt.Diff(c.snd.start)
		if avail < 0 {
			avail = 0
		}
		length = avail
		if length > usable {
			length = usable
		}
		if length > c.sndMSS {
			length = c.sndMSS
		}
	}

	// FIN decision: all buffered data at or beyond sndNxt fits in this
	// segment and the application has closed.
	sendFIN := false
	if c.sndClosed && !sendSYN {
		switch c.state {
		case FinWait1, LastAck, Closing:
			remaining := c.snd.len() - c.sndNxt.Diff(c.snd.start)
			if remaining == length {
				if !c.finQueued || c.sndNxt.Add(length) == c.finSeq {
					sendFIN = true
				}
			}
		}
	}

	// Decide whether to transmit.
	send := false
	switch {
	case sendSYN:
		send = true
	case force && (length > 0 || sendFIN || c.snd.len() == 0):
		send = true
	case length >= c.sndMSS:
		send = true
	case length > 0 && (c.cfg.NoDelay || idle):
		send = true // Nagle permits
	case length > 0 && c.maxSndWnd > 0 && length >= c.maxSndWnd/2:
		send = true
	case length > 0 && c.sndNxt.Less(c.sndMax):
		send = true // retransmitting into a known-hole region
	case sendFIN && (!c.finQueued || c.sndNxt == c.finSeq):
		send = true
	case c.ackNow:
		send = true
	}

	// Window-update check: has the window opened enough to tell the peer?
	adv := c.advertisableWindow()
	if !send && adv > 0 {
		opened := adv - c.rcvAdv.Diff(c.rcvNxt)
		if opened >= 2*c.cfg.MSS || opened >= c.cfg.RcvBufSize/2 {
			send = true
		}
	}

	if !send {
		// Nothing to send; if data is pending against a zero window and no
		// retransmission is outstanding, run the persist machinery. Any state
		// that can still emit stream data needs the probe: a close only
		// queues a FIN behind the buffered data, so FIN_WAIT_1, CLOSING,
		// CLOSE_WAIT and LAST_ACK would otherwise deadlock against a lost
		// window update.
		if c.snd.len()-c.sndNxt.Diff(c.snd.start) > 0 && c.sndWnd == 0 &&
			c.tRexmt == 0 && c.tPersist == 0 && canSendData(c.state) {
			c.persistShift = 0
			c.setTimer(&c.tPersist, c.persistBackoff())
		}
		return false
	}

	if length > 0 {
		if sendSYN {
			length = 0
		} else {
			data = c.snd.read(c.sndNxt, length)
			length = len(data)
		}
	}
	if length > 0 && c.sndNxt.Diff(c.snd.start)+length == c.snd.len() {
		flags |= FlagPSH
	}
	if sendFIN {
		flags |= FlagFIN
	}

	// Build the segment.
	h := Header{
		SrcPort: c.local.Port,
		DstPort: c.peer.Port,
		Seq:     c.sndNxt,
		Flags:   flags,
		Window:  uint16(adv),
	}
	if flags&FlagACK != 0 {
		h.Ack = c.rcvNxt
	}
	if sendSYN {
		h.MSS = uint16(c.cfg.MSS)
	}
	b := pkt.FromBytes(c.cfg.Headroom+h.EncodedLen(), data)
	h.Encode(b, c.local.IP, c.peer.IP)

	// Advance send state.
	if c.delAck {
		c.delAck = false
	}
	c.ackNow = false
	startSeq := c.sndNxt
	if sendSYN {
		c.sndNxt = c.sndNxt.Add(1)
	}
	c.sndNxt = c.sndNxt.Add(length)
	if sendFIN {
		if !c.finQueued {
			c.finQueued = true
			c.finSeq = c.sndNxt
		}
		if c.sndNxt == c.finSeq {
			c.sndNxt = c.sndNxt.Add(1)
		}
	}
	if c.sndMax.Less(c.sndNxt) {
		// Sending new data: start an RTT measurement if none is running.
		if c.tRtt == 0 && (length > 0 || sendSYN || sendFIN) {
			c.tRtt = 1
			c.tRtseq = startSeq
		}
		c.sndMax = c.sndNxt
	}
	// Retransmission timer covers any outstanding sequence space (unless
	// the persist machinery owns the channel).
	if c.tRexmt == 0 && c.tPersist == 0 && c.sndNxt != c.sndUna {
		c.setTimer(&c.tRexmt, c.rxtCur)
	}

	if wa := c.rcvNxt.Add(adv); c.rcvAdv.Less(wa) {
		c.rcvAdv = wa
	}

	c.stats.SegsSent++
	c.stats.BytesSent += int64(length)
	if length == 0 && flags&(FlagSYN|FlagFIN) == 0 {
		c.stats.AcksSent++
	}
	if c.cb.Send != nil {
		c.cb.Send(b, h, length)
	}

	// Another full segment may be waiting.
	return true
}

// canSendData reports whether the state may still emit stream data (and
// therefore needs zero-window probing when data is pending).
func canSendData(s State) bool {
	switch s {
	case Established, FinWait1, CloseWait, Closing, LastAck:
		return true
	}
	return false
}

// advertisableWindow computes the receive window to advertise, applying
// receiver-side silly-window avoidance (never advertise a small increase)
// and never shrinking a previous advertisement.
func (c *Conn) advertisableWindow() int {
	w := c.rcv.window()
	if w > MaxWindow {
		w = MaxWindow
	}
	already := c.rcvAdv.Diff(c.rcvNxt) // previously advertised, still open
	if already < 0 {
		already = 0
	}
	// SWS: suppress dribbling increases, but never shrink.
	if w > already && w-already < c.cfg.MSS && w < c.cfg.RcvBufSize/4 {
		w = already
	}
	if w < already {
		w = already
	}
	return w
}

// sendRST emits a reset for this connection (seq = snd_nxt).
func (c *Conn) sendRST() {
	h := Header{
		SrcPort: c.local.Port, DstPort: c.peer.Port,
		Seq: c.sndNxt, Ack: c.rcvNxt,
		Flags: FlagRST | FlagACK,
	}
	b := pkt.New(c.cfg.Headroom+HeaderLen, 0)
	h.Encode(b, c.local.IP, c.peer.IP)
	c.stats.SegsSent++
	if c.cb.Send != nil {
		c.cb.Send(b, h, 0)
	}
}

// sendRSTFor answers an unacceptable segment with the appropriate reset
// (RFC 793 p.36 rules).
func (c *Conn) sendRSTFor(h Header, dataLen int) {
	r, b := MakeRST(h, dataLen, c.cfg.Headroom, c.local, c.peer)
	if r == nil {
		return
	}
	c.stats.SegsSent++
	if c.cb.Send != nil {
		c.cb.Send(b, *r, 0)
	}
}

// newSegBuf allocates a segment buffer with room for a bare TCP header.
func newSegBuf(headroom int, data []byte) *pkt.Buf {
	return pkt.FromBytes(headroom+HeaderLen, data)
}

// MakeRST builds the reset segment answering an arbitrary received segment
// (used both by connections and by shells answering segments that match no
// endpoint). It returns nil if the received segment itself carried RST.
func MakeRST(in Header, dataLen, headroom int, local, peer Endpoint) (*Header, *pkt.Buf) {
	if in.Flags&FlagRST != 0 {
		return nil, nil
	}
	var h Header
	h.SrcPort = local.Port
	h.DstPort = peer.Port
	if in.Flags&FlagACK != 0 {
		h.Seq = in.Ack
		h.Flags = FlagRST
	} else {
		n := dataLen
		if in.Flags&FlagSYN != 0 {
			n++
		}
		if in.Flags&FlagFIN != 0 {
			n++
		}
		h.Ack = in.Seq.Add(n)
		h.Flags = FlagRST | FlagACK
	}
	b := pkt.New(headroom+HeaderLen, 0)
	h.Encode(b, local.IP, peer.IP)
	return &h, b
}
