package tcp

import (
	"errors"
	"fmt"

	"ulp/internal/pkt"
	"ulp/internal/trace"
)

// State is a TCP connection state (RFC 793).
type State int

// Connection states.
const (
	Closed State = iota
	Listen
	SynSent
	SynRcvd
	Established
	FinWait1
	FinWait2
	CloseWait
	Closing
	LastAck
	TimeWait
)

var stateNames = [...]string{
	"CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
	"FIN_WAIT_1", "FIN_WAIT_2", "CLOSE_WAIT", "CLOSING", "LAST_ACK", "TIME_WAIT",
}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Trigger classifies what caused a state transition, for the conformance
// checker (internal/conform): every legal edge of the RFC 793 state machine
// is legal only for particular trigger classes, and the trace stream carries
// the class so a checker can verify e.g. that nothing but a timer or a reset
// ever takes a connection out of TIME_WAIT.
type Trigger uint8

// Trigger classes.
const (
	// TrigUser is an application or shell call: open, close, abort,
	// registry reclamation.
	TrigUser Trigger = iota
	// TrigSegment is an arriving segment processed by Input.
	TrigSegment
	// TrigReset is a received RST, or a fatal illegal segment (e.g. a SYN
	// inside the window) that resets the connection.
	TrigReset
	// TrigTimer is a slow-timer expiry: retransmission give-up, keepalive
	// failure, or the 2*MSL timer.
	TrigTimer
)

var triggerNames = [...]string{"user", "segment", "reset", "timer"}

func (tr Trigger) String() string {
	if int(tr) < len(triggerNames) {
		return triggerNames[tr]
	}
	return fmt.Sprintf("Trigger(%d)", int(tr))
}

// TestHookSkipTimeWait, when set, makes the engine skip TIME_WAIT and close
// immediately — a deliberately nonconformant variant used to validate that
// the conformance explorer (internal/explore) detects and shrinks real
// protocol bugs. Never set outside tests.
var TestHookSkipTimeWait bool

// Errors delivered through OnClosed.
var (
	ErrReset     = errors.New("tcp: connection reset by peer")
	ErrRefused   = errors.New("tcp: connection refused")
	ErrTimeout   = errors.New("tcp: retransmission timeout")
	ErrKeepalive = errors.New("tcp: keepalive timeout")
)

// Default configuration values (4.3BSD).
const (
	DefaultMSS     = 512
	DefaultBufSize = 8192
	MaxWindow      = 65535

	// Timer constants in slow-timeout ticks (500 ms each).
	minRexmtTicks = 2   // 1 s
	maxRexmtTicks = 128 // 64 s
	maxRexmtShift = 12  // give up after 12 backoffs
	mslTicks      = 60  // MSL = 30 s
	persistMin    = 10  // 5 s
	persistMax    = 120 // 60 s
	// maxPersistShift caps persist backoff growth: persistMin<<4 already
	// exceeds persistMax, so letting the shift run further only risks
	// overflow-style bugs without changing the probe cadence.
	maxPersistShift = 6
	keepIdleDflt    = 120 // probe after 60 s idle (shortened from BSD's 2h for simulation)
	keepMaxProbes   = 8

	// defaultRexmtR1 is the default RFC 1122 R1 threshold ("at least 3
	// retransmissions" before the advisory fires).
	defaultRexmtR1 = 3
)

// Config parameterizes a connection. The zero value is completed with
// 4.3BSD defaults by NewConn. The application-specific variant flags
// (NoDelay, NoDelayedAck) realize the paper's §5 "canned options" idea.
type Config struct {
	// MSS is the maximum segment size to advertise and the ceiling on what
	// we accept from the peer's option.
	MSS int
	// SndBufSize and RcvBufSize are the socket buffer sizes (8192, the
	// era's tuned BSD default).
	SndBufSize, RcvBufSize int
	// Headroom is reserved below the TCP header in output buffers for the
	// IP and link headers.
	Headroom int
	// NoDelay disables the Nagle algorithm.
	NoDelay bool
	// NoDelayedAck acknowledges every in-order segment immediately.
	NoDelayedAck bool
	// FastRetransmit enables the 3-dup-ack retransmission (4.3BSD-Tahoe).
	FastRetransmit bool
	// Reno additionally enables fast recovery (cwnd deflation instead of a
	// full slow start after a fast retransmit).
	Reno bool
	// KeepAliveTicks is the idle period before probing; 0 disables
	// keepalives.
	KeepAliveTicks int
	// RexmtR1 and RexmtR2 are the RFC 1122 §4.2.3.5 retransmission
	// thresholds, counted in consecutive retransmissions of the same data.
	// Reaching R1 is advisory (Stats.R1Advisories; a full stack would ask
	// IP to re-route); exceeding R2 abandons the connection with
	// ErrTimeout. Zero selects the defaults (R1 = 3, R2 = 12). R2 is
	// capped at 12 so give-up stays within the BSD backoff table, and R1
	// is capped at R2.
	RexmtR1, RexmtR2 int
	// TimeWaitTicks overrides the 2*MSL wait (0 = standard 120 ticks).
	TimeWaitTicks int
}

func (c *Config) fill() {
	if c.MSS == 0 {
		c.MSS = DefaultMSS
	}
	if c.SndBufSize == 0 {
		c.SndBufSize = DefaultBufSize
	}
	if c.RcvBufSize == 0 {
		c.RcvBufSize = DefaultBufSize
	}
	if c.Headroom == 0 {
		c.Headroom = 40
	}
	if c.TimeWaitTicks == 0 {
		c.TimeWaitTicks = 2 * mslTicks
	}
	if c.RexmtR2 <= 0 || c.RexmtR2 > maxRexmtShift {
		c.RexmtR2 = maxRexmtShift
	}
	if c.RexmtR1 <= 0 {
		c.RexmtR1 = defaultRexmtR1
	}
	if c.RexmtR1 > c.RexmtR2 {
		c.RexmtR1 = c.RexmtR2
	}
}

// Callbacks deliver engine events to the organization shell. All callbacks
// are optional. They are invoked synchronously from within engine calls;
// shells must not re-enter the engine from them (they queue work instead).
type Callbacks struct {
	// Send transmits a fully encoded TCP segment (checksummed, with
	// Headroom bytes reserved below it). h describes the segment;
	// payloadLen is the number of stream bytes it carries.
	Send func(seg *pkt.Buf, h Header, payloadLen int)
	// OnEstablished fires on transition into Established.
	OnEstablished func()
	// OnReadable fires when new in-order data or EOF becomes available.
	OnReadable func()
	// OnWritable fires when send-buffer space is freed by an ACK.
	OnWritable func()
	// OnClosed fires when the connection reaches Closed; err is nil for an
	// orderly release.
	OnClosed func(err error)
}

// Stats counts per-connection protocol events.
type Stats struct {
	SegsSent, SegsRcvd    int
	BytesSent, BytesRcvd  int64
	Rexmits, FastRexmits  int
	DupAcksRcvd           int
	OutOfOrder            int
	DelayedAcks, AcksSent int
	WindowProbes          int
	KeepProbes            int
	R1Advisories          int // retransmit runs that crossed the R1 threshold
	RexmtGiveUps          int // connections abandoned after exceeding R2
	BadChecksumOrTrim     int
	TimerOps              int // set/clear operations, for cost charging
	RTTSamples            int
	SndBufFullEvents      int
}

// Conn is one TCP connection ("protocol control block" plus socket
// buffers). It is pure: driven entirely by Input, user calls, and ticks.
type Conn struct {
	cfg   Config
	cb    Callbacks
	local Endpoint
	peer  Endpoint

	state State
	stats Stats

	// Send sequence space.
	iss                    Seq
	sndUna, sndNxt, sndMax Seq
	sndWnd                 int
	sndWl1, sndWl2         Seq
	maxSndWnd              int
	cwnd, ssthresh         int
	dupAcks                int

	// Receive sequence space.
	irs            Seq
	rcvNxt, rcvAdv Seq

	// Buffers.
	snd *sendBuf
	rcv *recvBuf

	// Effective MSS for sending (min of ours and peer's option).
	sndMSS int

	// FIN bookkeeping.
	sndClosed  bool // application called Close: no more writes
	finSeq     Seq  // sequence of our FIN, valid once allocated
	finQueued  bool
	rcvFinSeq  Seq // sequence of peer's FIN, valid if rcvFinSeen
	rcvFinSeen bool
	rcvEOF     bool // FIN consumed into the stream

	// Timers, in slow-timeout ticks; 0 = off.
	tRexmt, tPersist, tKeep, t2MSL int
	rxtShift                       int
	persistShift                   int
	keepProbes                     int

	// RTT estimation (fixed point: srtt<<3, rttvar<<2), in ticks.
	tRtt   int // running measurement; 0 = not timing
	tRtseq Seq
	srtt   int
	rttvar int
	rxtCur int

	// Output flags.
	ackNow bool
	delAck bool
	idleT  int // ticks since last receive (keepalive)

	closedErr  error
	closedOnce bool

	// Established-notification deferral: OnEstablished observers snapshot
	// connection state (the registry handoff), so the callback must not
	// fire mid-segment while sndUna still lags the handshake ACK.
	inInput      bool
	estabPending bool

	// Observability. bus is nil-safe; busLabel names the connection in
	// events and is built once at SetTrace time, keeping emit sites
	// allocation-free.
	bus      *trace.Bus
	busLabel string
}

// SetTrace attaches a trace bus; label names this connection in events
// (e.g. "h1:1025>h0:80"). Pass nil to detach.
func (c *Conn) SetTrace(bus *trace.Bus, label string) {
	c.bus = bus
	c.busLabel = label
}

// NewConn creates a connection in the Closed state.
func NewConn(cfg Config, local, peer Endpoint, cb Callbacks) *Conn {
	cfg.fill()
	c := &Conn{
		cfg:    cfg,
		cb:     cb,
		local:  local,
		peer:   peer,
		state:  Closed,
		snd:    newSendBuf(cfg.SndBufSize),
		rcv:    newRecvBuf(cfg.RcvBufSize),
		sndMSS: cfg.MSS,
		rxtCur: 6, // 3 s initial RTO, per BSD TCPTV_SRTTDFLT handling
	}
	return c
}

// State returns the current connection state.
func (c *Conn) State() State { return c.state }

// SetCallbacks replaces the connection's callbacks; organization shells use
// it to finish wiring a connection after construction (e.g. to hook accept
// queues). It must not be called with engine activity in flight.
func (c *Conn) SetCallbacks(cb Callbacks) { c.cb = cb }

// Callbacks returns the currently installed callbacks, letting shells wrap
// them.
func (c *Conn) Callbacks() Callbacks { return c.cb }

// Stats returns a copy of the connection's counters.
func (c *Conn) Stats() Stats { return c.stats }

// Local and Peer return the connection endpoints.
func (c *Conn) Local() Endpoint { return c.local }
func (c *Conn) Peer() Endpoint  { return c.peer }

// EffectiveMSS returns the negotiated maximum segment size.
func (c *Conn) EffectiveMSS() int { return c.sndMSS }

// setState transitions and fires notifications. why classifies the cause of
// the transition (user call, segment, reset, timer) for the trace stream.
func (c *Conn) setState(s State, why Trigger) {
	if c.state == s {
		return
	}
	prev := c.state
	c.state = s
	if c.bus.Enabled() {
		c.bus.Emit(trace.Event{
			Kind: trace.TCPState, Conn: c.busLabel,
			A: int64(prev), B: int64(s), C: int64(why),
			Text: prev.String() + "->" + s.String(),
		})
	}
	switch s {
	case Established:
		if c.cfg.KeepAliveTicks > 0 {
			c.setTimer(&c.tKeep, c.cfg.KeepAliveTicks)
		}
		if c.cb.OnEstablished != nil && prev != Established {
			if c.inInput {
				// Segment processing is mid-flight: the handshake ACK
				// has moved us to Established but sndUna/cwnd/RTT
				// bookkeeping runs after the transition. Fire once the
				// segment is fully absorbed so observers see a
				// quiescent TCB (a snapshot taken here would transfer
				// a phantom unacked SYN).
				c.estabPending = true
			} else {
				c.cb.OnEstablished()
			}
		}
	case Closed:
		c.cancelTimers()
		if !c.closedOnce {
			c.closedOnce = true
			if c.cb.OnClosed != nil {
				c.cb.OnClosed(c.closedErr)
			}
		}
	}
}

// OpenListen places the connection in LISTEN (passive open).
func (c *Conn) OpenListen() {
	if c.state != Closed {
		panic("tcp: OpenListen on non-closed connection")
	}
	c.setState(Listen, TrigUser)
}

// OpenActive starts a connection attempt (active open) with the given
// initial send sequence number; the shell supplies ISS to keep runs
// deterministic.
func (c *Conn) OpenActive(iss Seq) {
	if c.state != Closed {
		panic("tcp: OpenActive on non-closed connection")
	}
	c.iss = iss
	c.sndUna, c.sndNxt, c.sndMax = iss, iss, iss
	c.snd.start = iss.Add(1) // first data byte follows the SYN
	c.cwnd = c.sndMSS
	c.ssthresh = MaxWindow
	c.setState(SynSent, TrigUser)
	c.startRexmt()
	c.Output()
}

// Write appends application data to the send buffer and attempts output.
// It returns the number of bytes accepted (0 when the buffer is full).
func (c *Conn) Write(p []byte) int {
	switch c.state {
	case Established, CloseWait:
	case SynSent, SynRcvd:
		// Data may be buffered before the handshake completes.
	default:
		return 0
	}
	if c.sndClosed {
		return 0
	}
	n := c.snd.append(p)
	if n < len(p) {
		c.stats.SndBufFullEvents++
	}
	if n > 0 {
		c.Output()
	}
	return n
}

// Readable returns the number of in-order bytes ready for the application.
func (c *Conn) Readable() int { return c.rcv.readable() }

// EOF reports whether the peer's FIN has been consumed (end of stream).
func (c *Conn) EOF() bool { return c.rcvEOF && c.rcv.readable() == 0 }

// Read moves up to len(p) bytes into p. Freeing receive-buffer space may
// trigger a window-update segment.
func (c *Conn) Read(p []byte) int {
	n := c.rcv.read(p)
	if n > 0 {
		// Receiver-side silly window avoidance lives in Output: it decides
		// whether the window opened enough to advertise.
		c.Output()
	}
	return n
}

// Close performs an orderly release: no further writes; a FIN is sent once
// buffered data drains.
func (c *Conn) Close() {
	switch c.state {
	case Closed:
		return
	case Listen, SynSent:
		c.closedErr = nil
		c.setState(Closed, TrigUser)
		return
	}
	if c.sndClosed {
		return
	}
	c.sndClosed = true
	switch c.state {
	case SynRcvd, Established:
		c.setState(FinWait1, TrigUser)
	case CloseWait:
		c.setState(LastAck, TrigUser)
	}
	c.Output()
}

// Abort sends RST and closes immediately (abnormal termination; the
// registry uses this for applications that exit without closing).
func (c *Conn) Abort() {
	switch c.state {
	case SynRcvd, Established, FinWait1, FinWait2, CloseWait, Closing, LastAck:
		c.sendRST()
	}
	c.closedErr = ErrReset
	c.setState(Closed, TrigUser)
}

// cancelTimers clears all timers (entering Closed).
func (c *Conn) cancelTimers() {
	for _, t := range []*int{&c.tRexmt, &c.tPersist, &c.tKeep, &c.t2MSL} {
		if *t != 0 {
			*t = 0
			c.stats.TimerOps++
		}
	}
}
