package tcp

// Regression tests for Karn's rule: updateRTT must never see a sample
// measured across a retransmitted sequence. The retransmission-timeout and
// fast-retransmit paths always cleared the running measurement; the
// persist path did not — a window probe re-sends the byte at snd_una, so
// an RTT measurement surviving a persist episode would eventually be
// "completed" by an ACK of a multiply-retransmitted byte, feeding the
// estimator a sample spanning the entire episode (tens of seconds of
// probe backoff) and blowing up the RTO.

import (
	"testing"
	"time"

	"ulp/internal/trace"
)

// fillPeerWindow writes until b's advertised window is zero and the
// in-flight data is acknowledged (b never reads), leaving a with queued
// unsent data and the persist timer armed.
func fillPeerWindow(t *testing.T, n *testNet) {
	t.Helper()
	data := pattern(12000)
	written := 0
	for u := 0; u < 400; u++ {
		if written < len(data) {
			written += n.a.Write(data[written:])
		}
		n.tick()
		if n.b.rcv.window() == 0 && n.a.sndUna == n.a.sndMax && n.a.tPersist > 0 {
			return
		}
	}
	t.Fatalf("window never filled: bwin=%d persist=%d", n.b.rcv.window(), n.a.tPersist)
}

// TestPersistProbeNotTimedKarn pins the persist-path half of Karn's rule:
// after a zero-window episode with several probes, reopening the window
// must not complete an RTT measurement started at (or surviving into) the
// probe exchange.
// TestPersistProbeNotTimedKarn drives the interleaving where the bug
// bites: the first probe transmits a *new* byte (snd_nxt == snd_max) and
// starts an RTT measurement; the peer's window is still zero, so the byte
// is discarded. The persist timer then re-sends that byte just as the
// peer's window reopens — the re-sent (retransmitted) byte is accepted,
// and its ACK covers the timed sequence. Without the persist-path Karn
// clear, the estimator swallows a sample spanning the whole episode. The
// retransmission timer is parked with an inflated RTO so it cannot mask
// the bug by clearing the measurement first (its own Karn clear).
func TestPersistProbeNotTimedKarn(t *testing.T) {
	n := newTestNet(t, Config{MSS: 1460}) // no fast retransmit: only persist touches snd_una
	n.connect()

	// Record every RTT sample the estimator accepts, via the trace bus
	// (TCPRTO events carry the sample in ticks).
	var samples []int64
	bus := trace.NewBus(func() time.Duration { return 0 })
	bus.Subscribe(func(e trace.Event) {
		if e.Kind == trace.TCPRTO {
			samples = append(samples, e.A)
		}
	})
	n.a.SetTrace(bus, "a")

	// Park the retransmission timer far out: a long-delay path whose
	// estimator has already converged on a large RTO.
	n.a.srtt = 50 << 3
	n.a.rttvar = 10
	n.a.rxtCur = 90

	fillPeerWindow(t, n)

	// First probe: sends the new byte at snd_max, starts timing it.
	probesBefore := n.a.stats.WindowProbes
	for u := 0; u < 200 && n.a.stats.WindowProbes == probesBefore; u++ {
		n.tick()
	}
	if n.a.stats.WindowProbes == probesBefore {
		t.Fatal("persist probe never fired")
	}

	// Let the (would-be) measurement age several slow ticks.
	n.run(25)

	// The peer drains its buffer — its window reopens — and in the same
	// breath the persist timer re-sends the probe byte. This time the
	// byte is accepted, and the covering ACK comes back.
	buf := make([]byte, 16384)
	for n.b.Read(buf) > 0 {
	}
	unaBefore := n.a.sndUna
	n.a.persistTimeout()
	n.deliver()
	if !unaBefore.Less(n.a.sndUna) {
		t.Fatal("re-sent probe byte was not accepted — scenario did not reach the Karn window")
	}

	// Legitimate samples (fresh transmissions into the reopened window,
	// acknowledged within the same delivery round) are 1 tick here. A
	// sample measured from the probe byte's first transmission spans the
	// aged persist episode — several ticks — and must never appear.
	for _, s := range samples {
		if s > 3 {
			t.Fatalf("RTT estimator accepted a %d-tick sample spanning the persist episode (samples: %v): Karn violation",
				s, samples)
		}
	}
}

// TestRetransmitNotSampledUnderLoss drops a data segment, forces a
// retransmission timeout, and verifies the ACK of the retransmitted
// segment does not feed the RTT estimator (the classic Karn case).
func TestRetransmitNotSampledUnderLoss(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()

	// Prime the estimator with one clean round so srtt != 0.
	got := n.pump(n.a, n.b, pattern(512), 50)
	checkIntegrity(t, pattern(512), got)

	// Wait out the last ACK so the next write is not Nagle-held.
	for u := 0; u < 20 && n.a.sndUna != n.a.sndMax; u++ {
		n.tick()
	}

	// Drop the next data segment from a once.
	dropped := false
	n.drop = func(dir string, h Header, payloadLen int) bool {
		if dir == "a->b" && payloadLen > 0 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	samplesBefore := n.a.stats.RTTSamples
	if n.a.Write(pattern(256)) != 256 {
		t.Fatal("write failed")
	}
	n.deliver()
	if !dropped {
		t.Fatal("fault injection never triggered")
	}

	// Run until the retransmission timer fires and the segment is
	// re-sent and acknowledged.
	rexBefore := n.a.stats.Rexmits
	for u := 0; u < 200 && n.a.sndUna != n.a.sndMax; u++ {
		n.tick()
	}
	if n.a.sndUna != n.a.sndMax {
		t.Fatal("retransmission never recovered the loss")
	}
	if n.a.stats.Rexmits == rexBefore {
		t.Fatal("no retransmission happened — test exercised nothing")
	}
	if n.a.stats.RTTSamples != samplesBefore {
		t.Fatalf("RTT sample taken from a retransmitted segment (%d -> %d samples): Karn violation",
			samplesBefore, n.a.stats.RTTSamples)
	}
}

// TestPersistShiftCapped pins the explicit growth cap on the persist
// backoff shift.
func TestPersistShiftCapped(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	fillPeerWindow(t, n)
	for i := 0; i < 40; i++ {
		n.a.persistTimeout()
	}
	if n.a.persistShift > maxPersistShift {
		t.Fatalf("persistShift grew to %d, cap is %d", n.a.persistShift, maxPersistShift)
	}
	if got := n.a.persistBackoff(); got != persistMax {
		t.Fatalf("backoff at cap = %d ticks, want persistMax = %d", got, persistMax)
	}
}
