package tcp

import (
	"testing"

	"ulp/internal/pkt"
)

// TestRetransmissionBackoffGrows verifies exponential RTO backoff while the
// peer is unreachable.
func TestRetransmissionBackoffGrows(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	n.drop = func(dir string, h Header, pl int) bool { return true } // black hole
	n.a.Write([]byte("into the void"))
	var gaps []int
	last := -1
	prev := n.a.Stats().Rexmits
	for u := 0; u < 5000; u++ {
		n.tick()
		if r := n.a.Stats().Rexmits; r != prev {
			if last >= 0 {
				gaps = append(gaps, u-last)
			}
			last = u
			prev = r
		}
		if len(gaps) >= 5 {
			break
		}
	}
	if len(gaps) < 4 {
		t.Fatalf("only %d retransmissions observed", len(gaps))
	}
	for i := 1; i < len(gaps); i++ {
		if gaps[i] < gaps[i-1] {
			t.Fatalf("backoff not monotone: %v", gaps)
		}
	}
	if gaps[1] < 2*gaps[0]-2 {
		t.Fatalf("backoff not roughly exponential: %v", gaps)
	}
}

// TestConnectionDropsAfterMaxRetries verifies the sender eventually gives
// up with ErrTimeout.
func TestConnectionDropsAfterMaxRetries(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	n.drop = func(dir string, h Header, pl int) bool { return true }
	n.a.Write([]byte("doomed"))
	// Backoffs sum to minutes of virtual time; run generously.
	for u := 0; u < 60*60*10 && n.a.State() != Closed; u++ {
		n.tick()
	}
	if n.a.State() != Closed {
		t.Fatalf("connection never dropped: %v (rexmits %d)", n.a.State(), n.a.Stats().Rexmits)
	}
	if n.aEvents.closedErr != ErrTimeout {
		t.Fatalf("closed err = %v, want timeout", n.aEvents.closedErr)
	}
}

// TestRenoVsTahoeRecovery distinguishes the two fast-retransmit modes: Reno
// keeps cwnd at ssthresh after recovery, Tahoe collapses to one segment.
func TestRenoVsTahoeRecovery(t *testing.T) {
	run := func(reno bool) int {
		cfg := defaultCfg()
		cfg.MSS = 512
		cfg.SndBufSize = 8192
		cfg.RcvBufSize = 8192
		cfg.Reno = reno
		n := newTestNet(t, cfg)
		n.connect()
		warm := pattern(30000)
		checkIntegrity(t, warm, n.pump(n.a, n.b, warm, 8000))
		dropped := false
		n.drop = func(dir string, h Header, pl int) bool {
			if dir == "a->b" && pl > 0 && !dropped {
				dropped = true
				return true
			}
			return false
		}
		data := pattern(20000)
		checkIntegrity(t, data, n.pump(n.a, n.b, data, 8000))
		if n.a.Stats().FastRexmits == 0 {
			t.Fatal("no fast retransmit")
		}
		return n.a.cwnd
	}
	renoCwnd := run(true)
	tahoeCwnd := run(false)
	// Post-recovery Reno should operate with a larger window than Tahoe's
	// restarted slow-start at the same point in the transfer... both have
	// continued growing since, so compare against ssthresh-scale instead:
	// the check here is simply that both recovered and Reno did not end
	// smaller (it avoids the full collapse).
	if renoCwnd < tahoeCwnd/2 {
		t.Fatalf("reno cwnd %d implausibly below tahoe %d", renoCwnd, tahoeCwnd)
	}
}

// TestOutOfOrderFIN delivers the FIN before its preceding data.
func TestOutOfOrderFIN(t *testing.T) {
	cfg := defaultCfg()
	cfg.MSS = 512
	n := newTestNet(t, cfg)
	n.connect()
	// Hold back the first data segment so the FIN (and later data) arrive
	// out of order.
	held := 0
	n.drop = func(dir string, h Header, pl int) bool {
		if dir == "a->b" && pl > 0 && held == 0 {
			held++
			return true // dropped; retransmission will re-deliver
		}
		return false
	}
	n.a.Write(pattern(400))
	n.a.Close() // FIN follows the (lost) data
	n.deliver()
	if n.b.EOF() {
		t.Fatal("EOF delivered before missing data arrived")
	}
	n.drop = nil
	n.run(5000) // let retransmission fill the hole
	buf := make([]byte, 1024)
	r := n.b.Read(buf)
	checkIntegrity(t, pattern(400), buf[:r])
	if !n.b.EOF() {
		t.Fatal("EOF not delivered after hole filled")
	}
}

// TestHalfCloseTransfersBothWays exercises the shutdown(SHUT_WR) pattern.
func TestHalfCloseTransfersBothWays(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	n.a.Write([]byte("request"))
	n.a.Close()
	n.deliver()
	buf := make([]byte, 64)
	r := n.b.Read(buf)
	if string(buf[:r]) != "request" || !n.b.EOF() {
		t.Fatalf("request = %q eof=%v", buf[:r], n.b.EOF())
	}
	// b streams a response into the half-closed connection.
	resp := pattern(9000)
	got := n.pump(n.b, n.a, resp, 4000)
	checkIntegrity(t, resp, got)
	n.b.Close()
	n.deliver()
	if n.b.State() != Closed && n.b.State() != LastAck {
		t.Fatalf("b state %v", n.b.State())
	}
}

// TestZeroWindowProbeElicitsAck verifies probes are answered even with a
// closed window, so the opening is discovered.
func TestZeroWindowProbeElicitsAck(t *testing.T) {
	cfg := defaultCfg()
	cfg.MSS = 512
	n := newTestNet(t, cfg)
	n.connect()
	data := pattern(12000)
	written := n.a.Write(data)
	for u := 0; u < 300; u++ {
		if written < len(data) {
			written += n.a.Write(data[written:])
		}
		n.tick()
	}
	ackedBefore := n.a.Stats().SegsRcvd
	probesBefore := n.a.Stats().WindowProbes
	n.run(1300) // persist backoff reaches 60 s; cover at least one probe
	if n.a.Stats().WindowProbes == probesBefore {
		t.Fatal("no persist probes during observation window")
	}
	if n.a.Stats().SegsRcvd == ackedBefore {
		t.Fatal("zero-window probes not answered")
	}
	if n.a.State() != Established {
		t.Fatalf("connection degraded to %v under zero window", n.a.State())
	}
}

// TestDuplicateSYNHandling: a retransmitted SYN to an established
// connection must not corrupt it.
func TestDuplicateSYNRetransmission(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	// Drop the SYN|ACK once: client retransmits SYN, server sees dup SYN in
	// SYN_RCVD.
	dropped := false
	n.drop = func(dir string, h Header, pl int) bool {
		if dir == "b->a" && h.Flags&FlagSYN != 0 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	n.b.OpenListen()
	n.a.OpenActive(777)
	n.run(50)
	if n.a.State() != Established || n.b.State() != Established {
		t.Fatalf("states after dup SYN: %v/%v", n.a.State(), n.b.State())
	}
	data := pattern(3000)
	checkIntegrity(t, data, n.pump(n.a, n.b, data, 2000))
}

// TestAckBeyondSndMaxIgnored: an ACK for unsent data must not advance the
// send state (blind-injection robustness).
func TestAckBeyondSndMaxIgnored(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	forged := Header{
		SrcPort: n.b.Local().Port, DstPort: n.a.Local().Port,
		Seq: n.a.rcvNxt, Ack: n.a.sndMax.Add(5000),
		Flags: FlagACK, Window: 4096,
	}
	before := n.a.sndUna
	n.a.Input(forged, nil)
	if n.a.sndUna != before {
		t.Fatal("forged ACK advanced snd_una")
	}
	if n.a.State() != Established {
		t.Fatalf("state = %v", n.a.State())
	}
}

// TestBlindRSTOutsideWindowIgnored: an RST whose sequence is outside the
// receive window must not kill the connection.
func TestBlindRSTOutsideWindowIgnored(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	forged := Header{
		SrcPort: n.b.Local().Port, DstPort: n.a.Local().Port,
		Seq:   n.a.rcvNxt.Add(100000), // far outside the window
		Flags: FlagRST,
	}
	n.a.Input(forged, nil)
	if n.a.State() != Established {
		t.Fatalf("blind RST killed the connection: %v", n.a.State())
	}
	// An in-window RST is honoured.
	legit := Header{
		SrcPort: n.b.Local().Port, DstPort: n.a.Local().Port,
		Seq: n.a.rcvNxt, Flags: FlagRST,
	}
	n.a.Input(legit, nil)
	if n.a.State() != Closed {
		t.Fatalf("in-window RST ignored: %v", n.a.State())
	}
}

// TestSYNInWindowResets: a SYN appearing inside an established window is a
// protocol error that resets the connection (RFC 793).
func TestSYNInWindowResets(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	syn := Header{
		SrcPort: n.b.Local().Port, DstPort: n.a.Local().Port,
		Seq: n.a.rcvNxt, Ack: n.a.sndNxt, Flags: FlagSYN | FlagACK, Window: 1024,
	}
	n.a.Input(syn, nil)
	if n.a.State() != Closed || n.aEvents.closedErr != ErrReset {
		t.Fatalf("in-window SYN: state=%v err=%v", n.a.State(), n.aEvents.closedErr)
	}
}

// TestWriteAfterCloseRejected: the API contract.
func TestWriteAfterCloseRejected(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	n.a.Close()
	if n.a.Write([]byte("late")) != 0 {
		t.Fatal("write accepted after close")
	}
}

// TestSilentDropOfCorruptSegments: the shell drops checksum failures
// before Input; here we verify a mangled in-window segment (simulating a
// shell that skipped verification) cannot advance rcv_nxt past real data —
// i.e., sequence accounting tolerates garbage payloads without state
// corruption.
func TestGarbagePayloadDoesNotCorruptStream(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	real := pattern(2000)
	n.a.Write(real)
	n.run(20) // let slow start deliver everything
	// Inject a duplicate segment with different bytes for already-received
	// sequence space: it must be ignored as a duplicate.
	fake := Header{
		SrcPort: n.a.Local().Port, DstPort: n.b.Local().Port,
		Seq: n.b.rcvNxt.Add(-100), Ack: n.b.sndNxt, Flags: FlagACK, Window: 4096,
	}
	n.b.Input(fake, make([]byte, 100)) // zeros, not the real data
	buf := make([]byte, 4096)
	var got []byte
	for {
		r := n.b.Read(buf)
		if r == 0 {
			break
		}
		got = append(got, buf[:r]...)
	}
	checkIntegrity(t, real, got)
}

// TestListenIgnoresRSTAndAcksGetReset covers the LISTEN-state input rules.
func TestListenStateRules(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.b.OpenListen()
	sent := 0
	n.b.cb.Send = func(seg *pkt.Buf, h Header, pl int) { sent++ }
	// RST to LISTEN: ignored.
	n.b.Input(Header{SrcPort: 1, DstPort: 80, Seq: 9, Flags: FlagRST}, nil)
	if n.b.State() != Listen || sent != 0 {
		t.Fatalf("RST to LISTEN: state=%v sent=%d", n.b.State(), sent)
	}
	// Stray ACK to LISTEN: answered with RST.
	n.b.Input(Header{SrcPort: 1, DstPort: 80, Seq: 9, Ack: 55, Flags: FlagACK}, nil)
	if sent != 1 {
		t.Fatalf("ACK to LISTEN should elicit RST (sent=%d)", sent)
	}
	if n.b.State() != Listen {
		t.Fatalf("listener disturbed: %v", n.b.State())
	}
}
