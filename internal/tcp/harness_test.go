package tcp

import (
	"bytes"
	"math/rand"
	"testing"

	"ulp/internal/ipv4"
	"ulp/internal/pkt"
)

// testNet links two connections back-to-back through in-memory queues with
// optional fault injection, and drives the BSD tick structure (fast timeout
// every 2 time units of 100 ms, slow timeout every 5).
type testNet struct {
	t        *testing.T
	a, b     *Conn
	aIP, bIP ipv4.Addr
	toB, toA []*pkt.Buf
	drop     func(dir string, h Header, payloadLen int) bool
	now      int // 100 ms units
	aEvents  *events
	bEvents  *events
	rng      *rand.Rand
	reorderP float64
	dupP     float64
}

type events struct {
	established, readable, writable int
	closedErr                       error
	closed                          bool
}

func (e *events) callbacks(add Callbacks) Callbacks {
	return Callbacks{
		Send:          add.Send,
		OnEstablished: func() { e.established++ },
		OnReadable:    func() { e.readable++ },
		OnWritable:    func() { e.writable++ },
		OnClosed:      func(err error) { e.closed = true; e.closedErr = err },
	}
}

func newTestNet(t *testing.T, cfg Config) *testNet {
	n := &testNet{
		t:   t,
		aIP: ipv4.Addr{10, 0, 0, 1}, bIP: ipv4.Addr{10, 0, 0, 2},
		aEvents: &events{}, bEvents: &events{},
		rng: rand.New(rand.NewSource(1)),
	}
	aEnd := Endpoint{IP: n.aIP, Port: 1025}
	bEnd := Endpoint{IP: n.bIP, Port: 80}
	n.a = NewConn(cfg, aEnd, bEnd, n.aEvents.callbacks(Callbacks{
		Send: func(seg *pkt.Buf, h Header, pl int) {
			if n.drop != nil && n.drop("a->b", h, pl) {
				return
			}
			n.enqueue(&n.toB, seg)
		},
	}))
	n.b = NewConn(cfg, bEnd, aEnd, n.bEvents.callbacks(Callbacks{
		Send: func(seg *pkt.Buf, h Header, pl int) {
			if n.drop != nil && n.drop("b->a", h, pl) {
				return
			}
			n.enqueue(&n.toA, seg)
		},
	}))
	return n
}

func (n *testNet) enqueue(q *[]*pkt.Buf, seg *pkt.Buf) {
	c := pkt.FromBytes(0, seg.Bytes())
	if n.dupP > 0 && n.rng.Float64() < n.dupP {
		*q = append(*q, c.Clone())
	}
	if n.reorderP > 0 && n.rng.Float64() < n.reorderP && len(*q) > 0 {
		// Swap with the previous in-flight segment.
		*q = append(*q, (*q)[len(*q)-1])
		(*q)[len(*q)-2] = c
		return
	}
	*q = append(*q, c)
}

// deliver moves all queued segments (which may generate more; loop to
// quiescence, bounded to catch livelock bugs).
func (n *testNet) deliver() {
	for i := 0; i < 10000; i++ {
		if len(n.toB) == 0 && len(n.toA) == 0 {
			return
		}
		if len(n.toB) > 0 {
			seg := n.toB[0]
			n.toB = n.toB[1:]
			h, err := Decode(seg, n.aIP, n.bIP)
			if err != nil {
				n.t.Fatalf("a->b decode: %v", err)
			}
			n.b.Input(h, seg.Bytes())
		}
		if len(n.toA) > 0 {
			seg := n.toA[0]
			n.toA = n.toA[1:]
			h, err := Decode(seg, n.bIP, n.aIP)
			if err != nil {
				n.t.Fatalf("b->a decode: %v", err)
			}
			n.a.Input(h, seg.Bytes())
		}
	}
	n.t.Fatal("delivery did not quiesce (segment storm)")
}

// tick advances one 100 ms unit: deliver, then fire due timeouts.
func (n *testNet) tick() {
	n.deliver()
	n.now++
	if n.now%2 == 0 {
		n.a.FastTick()
		n.b.FastTick()
		n.deliver()
	}
	if n.now%5 == 0 {
		n.a.SlowTick()
		n.b.SlowTick()
		n.deliver()
	}
}

// run advances the given number of 100 ms units.
func (n *testNet) run(units int) {
	for i := 0; i < units; i++ {
		n.tick()
	}
}

// connect performs the three-way handshake (a active, b passive).
func (n *testNet) connect() {
	n.b.OpenListen()
	n.b.SetISS(9000)
	n.a.OpenActive(1000)
	n.deliver()
	if n.a.State() != Established || n.b.State() != Established {
		n.t.Fatalf("handshake failed: a=%v b=%v", n.a.State(), n.b.State())
	}
}

// pump writes all of data from src, reading at dst, until complete; returns
// what dst read. maxUnits bounds virtual time.
func (n *testNet) pump(src, dst *Conn, data []byte, maxUnits int) []byte {
	var got []byte
	written := 0
	buf := make([]byte, 4096)
	for u := 0; u < maxUnits; u++ {
		for written < len(data) {
			w := src.Write(data[written:])
			written += w
			if w == 0 {
				break
			}
		}
		for {
			r := dst.Read(buf)
			got = append(got, buf[:r]...)
			if r == 0 {
				break
			}
		}
		if written == len(data) && len(got) == len(data) {
			return got
		}
		n.tick()
	}
	n.t.Fatalf("pump incomplete: wrote %d/%d, read %d/%d (a=%v b=%v)",
		written, len(data), len(got), len(data), n.a.State(), n.b.State())
	return nil
}

// pattern builds a deterministic test payload.
func pattern(size int) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = byte(i*31 + i>>8)
	}
	return p
}

func defaultCfg() Config {
	return Config{MSS: 1460, FastRetransmit: true}
}

func checkIntegrity(t *testing.T, want, got []byte) {
	t.Helper()
	if !bytes.Equal(want, got) {
		i := 0
		for i < len(want) && i < len(got) && want[i] == got[i] {
			i++
		}
		t.Fatalf("data corrupted: lens %d/%d, first difference at %d", len(want), len(got), i)
	}
}
