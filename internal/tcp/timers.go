package tcp

import "ulp/internal/trace"

// Timer machinery in the 4.3BSD style: all protocol timers are tick
// counters decremented by two periodic timeouts the shell drives — SlowTick
// every 500 ms (retransmit, persist, keepalive, 2*MSL) and FastTick every
// 200 ms (delayed acknowledgments). "Practically every message arrival and
// departure involves timer operations": shells charge the cost model using
// the Stats.TimerOps counter.

// rexmtBackoff is the BSD retransmission backoff table.
var rexmtBackoff = [maxRexmtShift + 1]int{1, 2, 4, 8, 16, 32, 64, 64, 64, 64, 64, 64, 64}

// setTimer arms a tick-counter timer.
func (c *Conn) setTimer(t *int, ticks int) {
	if ticks <= 0 {
		ticks = 1
	}
	*t = ticks
	c.stats.TimerOps++
}

// clearTimer disarms a timer.
func (c *Conn) clearTimer(t *int) {
	if *t != 0 {
		*t = 0
		c.stats.TimerOps++
	}
}

// startRexmt arms the retransmission timer with the current RTO.
func (c *Conn) startRexmt() { c.setTimer(&c.tRexmt, c.rxtCur) }

// RTO returns the current retransmission timeout in ticks (diagnostics).
func (c *Conn) RTO() int { return c.rxtCur }

// SRTT returns the smoothed RTT estimate in ticks (diagnostics; fixed point
// removed).
func (c *Conn) SRTT() int { return c.srtt >> 3 }

// updateRTT folds a measured RTT (in ticks, counted from 1) into the
// Jacobson estimator: srtt is kept scaled by 8, rttvar by 4, and
// RTO = srtt + 4*rttvar, clamped to [1 s, 64 s].
func (c *Conn) updateRTT(rtt int) {
	c.stats.RTTSamples++
	m := rtt - 1
	if c.srtt != 0 {
		delta := m - (c.srtt >> 3)
		c.srtt += delta
		if c.srtt <= 0 {
			c.srtt = 1
		}
		if delta < 0 {
			delta = -delta
		}
		delta -= c.rttvar >> 2
		c.rttvar += delta
		if c.rttvar <= 0 {
			c.rttvar = 1
		}
	} else {
		c.srtt = m << 3
		c.rttvar = m << 1
	}
	c.rxtCur = (c.srtt >> 3) + c.rttvar
	if c.rxtCur < minRexmtTicks {
		c.rxtCur = minRexmtTicks
	}
	if c.rxtCur > maxRexmtTicks {
		c.rxtCur = maxRexmtTicks
	}
	c.rxtShift = 0
	if c.bus.Enabled() {
		c.bus.Emit(trace.Event{Kind: trace.TCPRTO, Conn: c.busLabel, A: int64(rtt), B: int64(c.rxtCur)})
	}
}

// persistBackoff returns the current persist interval in ticks.
func (c *Conn) persistBackoff() int {
	v := persistMin << c.persistShift
	if v > persistMax {
		v = persistMax
	}
	return v
}

// FastTick is the 200 ms timeout: it flushes pending delayed ACKs.
func (c *Conn) FastTick() {
	if c.delAck {
		c.delAck = false
		c.ackNow = true
		c.Output()
	}
}

// SlowTick is the 500 ms timeout driving all other timers.
func (c *Conn) SlowTick() {
	if c.state == Closed || c.state == Listen {
		return
	}
	if c.tRtt > 0 {
		c.tRtt++
	}
	c.idleT++

	if dec(&c.tRexmt) {
		c.rexmtTimeout()
	}
	if dec(&c.tPersist) {
		c.persistTimeout()
	}
	if dec(&c.tKeep) {
		c.keepTimeout()
	}
	if dec(&c.t2MSL) {
		c.closedErr = nil
		c.setState(Closed, TrigTimer)
	}
}

// NextSlowTicks reports how many SlowTicks from now the earliest armed
// slow timer fires, or 0 when no slow timer is armed (or the connection is
// Closed/Listen, where SlowTick is a no-op). A timer-wheel shell arms its
// wheel entry for exactly this many ticks and skips the connection until
// then.
func (c *Conn) NextSlowTicks() int {
	if c.state == Closed || c.state == Listen {
		return 0
	}
	next := 0
	for _, t := range [4]int{c.tRexmt, c.tPersist, c.tKeep, c.t2MSL} {
		if t > 0 && (next == 0 || t < next) {
			next = t
		}
	}
	return next
}

// CatchUpSlow advances the slow-timer state by k ticks during which no
// timer fires: every armed counter is bulk-decremented and the RTT/idle
// tick counters bulk-incremented, exactly as k sequential SlowTicks would
// have done. The caller must guarantee k < NextSlowTicks() (or that no
// timer is armed); AdvanceSlowTicks enforces this.
func (c *Conn) CatchUpSlow(k int) {
	if k <= 0 || c.state == Closed || c.state == Listen {
		return
	}
	if c.tRtt > 0 {
		c.tRtt += k
	}
	c.idleT += k
	for _, t := range [4]*int{&c.tRexmt, &c.tPersist, &c.tKeep, &c.t2MSL} {
		if *t > 0 {
			*t -= k
			if *t <= 0 {
				panic("tcp: CatchUpSlow skipped over an armed timer")
			}
		}
	}
}

// AdvanceSlowTicks applies n SlowTicks' worth of virtual time in O(fires)
// rather than O(n): quiet stretches are bulk-advanced with CatchUpSlow and
// each deadline that falls inside the window fires through the ordinary
// SlowTick path (so expiry handlers see exactly the state they would under
// n sequential calls, including timers they re-arm mid-window). This is
// what lets a wheel-driven shell leave idle connections untouched for
// thousands of ticks and still replay bit-identical protocol behavior.
func (c *Conn) AdvanceSlowTicks(n int) {
	for n > 0 {
		next := c.NextSlowTicks()
		if next == 0 || next > n {
			c.CatchUpSlow(n)
			return
		}
		c.CatchUpSlow(next - 1)
		c.SlowTick()
		n -= next
	}
}

// DelAckPending reports whether a delayed ACK is waiting for the next
// FastTick. A timer-wheel shell arms the fast wheel only while this holds.
func (c *Conn) DelAckPending() bool { return c.delAck }

// dec decrements a tick counter, reporting whether it just fired.
func dec(t *int) bool {
	if *t == 0 {
		return false
	}
	*t--
	return *t == 0
}

// rexmtTimeout handles expiry of the retransmission timer: exponential
// backoff, congestion collapse to one segment (slow start), go-back-N.
func (c *Conn) rexmtTimeout() {
	c.rxtShift++
	if c.rxtShift > c.cfg.RexmtR2 {
		c.stats.RexmtGiveUps++
		c.closedErr = ErrTimeout
		if c.state == SynSent || c.state == SynRcvd {
			c.closedErr = ErrRefused
		}
		c.setState(Closed, TrigTimer)
		return
	}
	if c.rxtShift == c.cfg.RexmtR1 {
		// RFC 1122 R1: delivery looks degraded; a layered stack would hint
		// IP to re-route here. We record it so applications (and the
		// degradation experiment) can observe the threshold crossing.
		c.stats.R1Advisories++
	}
	c.stats.Rexmits++
	base := (c.srtt >> 3) + c.rttvar
	if base < minRexmtTicks {
		base = minRexmtTicks
	}
	if c.srtt == 0 {
		base = 6 // pre-measurement default (3 s)
	}
	c.rxtCur = base * rexmtBackoff[c.rxtShift]
	if c.rxtCur > maxRexmtTicks {
		c.rxtCur = maxRexmtTicks
	}

	// Congestion response (Van Jacobson): half the operating window into
	// ssthresh, collapse cwnd to one segment.
	win := c.sndWnd
	if c.cwnd < win {
		win = c.cwnd
	}
	ss := win / 2
	if ss < 2*c.sndMSS {
		ss = 2 * c.sndMSS
	}
	c.ssthresh = ss
	c.cwnd = c.sndMSS
	c.dupAcks = 0

	// Karn: a retransmitted sequence must not be timed.
	c.tRtt = 0

	if c.bus.Enabled() {
		c.bus.Emit(trace.Event{Kind: trace.TCPRexmit, Conn: c.busLabel,
			A: int64(c.rxtShift), B: int64(c.rxtCur), Text: "timeout"})
	}
	c.sndNxt = c.sndUna
	c.setTimer(&c.tRexmt, c.rxtCur)
	c.outputForced()
}

// persistTimeout sends a window probe against a zero window: one byte at
// snd_una, re-sent each time (the previous probe byte was never
// acknowledged, or the window would be open).
func (c *Conn) persistTimeout() {
	c.stats.WindowProbes++
	if c.persistShift < maxPersistShift {
		c.persistShift++
	}
	c.setTimer(&c.tPersist, c.persistBackoff())
	saved := c.sndNxt
	c.sndNxt = c.sndUna
	c.outputForced()
	c.sndNxt = seqMax(saved, c.sndNxt)
	// Karn: the probe re-sends the byte at snd_una, so any running RTT
	// measurement now covers a retransmitted sequence — if the peer
	// accepts the re-sent byte (its window reopened while the probe was
	// in flight), the covering ACK is unattributable and must not feed
	// the estimator with a sample spanning the persist episode.
	c.tRtt = 0
	if c.bus.Enabled() {
		c.bus.Emit(trace.Event{Kind: trace.TCPPersist, Conn: c.busLabel,
			A: int64(c.persistShift), B: int64(c.tPersist)})
	}
}

// keepTimeout sends a keepalive probe; too many unanswered probes drop the
// connection. The probe carries seq = snd_una-1, which the peer must answer
// with an ACK because it falls below the window.
func (c *Conn) keepTimeout() {
	if c.state != Established || c.cfg.KeepAliveTicks == 0 {
		return
	}
	c.keepProbes++
	if c.keepProbes > keepMaxProbes {
		c.closedErr = ErrKeepalive
		c.setState(Closed, TrigTimer)
		return
	}
	c.stats.KeepProbes++
	h := Header{
		SrcPort: c.local.Port, DstPort: c.peer.Port,
		Seq: c.sndUna.Add(-1), Ack: c.rcvNxt,
		Flags:  FlagACK,
		Window: uint16(c.advertisableWindow()),
	}
	b := newSegBuf(c.cfg.Headroom, nil)
	h.Encode(b, c.local.IP, c.peer.IP)
	c.stats.SegsSent++
	if c.cb.Send != nil {
		c.cb.Send(b, h, 0)
	}
	c.setTimer(&c.tKeep, c.cfg.KeepAliveTicks)
}
