package tcp

import (
	"encoding/binary"
	"fmt"

	"ulp/internal/checksum"
	"ulp/internal/ipv4"
	"ulp/internal/pkt"
)

// HeaderLen is the size of a TCP header without options.
const HeaderLen = 20

// Flag bits.
const (
	FlagFIN = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// Endpoint is one end of a connection.
type Endpoint struct {
	IP   ipv4.Addr
	Port uint16
}

// String formats the endpoint as ip:port.
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.IP, e.Port) }

// Header is a decoded TCP header. The only option this stack emits or
// honours is MSS (option kind 2), as in the 4.3BSD code the paper reused;
// other received options are skipped.
type Header struct {
	SrcPort, DstPort uint16
	Seq, Ack         Seq
	Flags            uint8
	Window           uint16
	Urgent           uint16
	// MSS is the maximum-segment-size option value; 0 means absent. Only
	// meaningful on SYN segments.
	MSS uint16
}

// optLen returns the encoded options length.
func (h *Header) optLen() int {
	if h.MSS != 0 {
		return 4
	}
	return 0
}

// EncodedLen returns the full header length including options.
func (h *Header) EncodedLen() int { return HeaderLen + h.optLen() }

// flagNames renders flags for diagnostics.
func flagNames(f uint8) string {
	s := ""
	for _, fn := range []struct {
		bit  uint8
		name string
	}{{FlagSYN, "S"}, {FlagFIN, "F"}, {FlagRST, "R"}, {FlagPSH, "P"}, {FlagACK, "."}, {FlagURG, "U"}} {
		if f&fn.bit != 0 {
			s += fn.name
		}
	}
	return s
}

// String formats the header compactly, tcpdump-style.
func (h Header) String() string {
	return fmt.Sprintf("%d>%d %s seq=%d ack=%d win=%d", h.SrcPort, h.DstPort, flagNames(h.Flags), h.Seq, h.Ack, h.Window)
}

// Encode prepends the header onto the payload in b and computes the
// checksum over the pseudo-header, header and payload.
func (h *Header) Encode(b *pkt.Buf, src, dst ipv4.Addr) {
	hl := h.EncodedLen()
	segLen := hl + b.Len()
	w := b.Prepend(hl)
	binary.BigEndian.PutUint16(w[0:], h.SrcPort)
	binary.BigEndian.PutUint16(w[2:], h.DstPort)
	binary.BigEndian.PutUint32(w[4:], uint32(h.Seq))
	binary.BigEndian.PutUint32(w[8:], uint32(h.Ack))
	w[12] = uint8(hl/4) << 4
	w[13] = h.Flags
	binary.BigEndian.PutUint16(w[14:], h.Window)
	w[16], w[17] = 0, 0 // checksum
	binary.BigEndian.PutUint16(w[18:], h.Urgent)
	if h.MSS != 0 {
		w[20] = 2 // kind: MSS
		w[21] = 4 // length
		binary.BigEndian.PutUint16(w[22:], h.MSS)
	}
	acc := checksum.PseudoHeader(0, src, dst, ipv4.ProtoTCP, segLen)
	ck := checksum.Fold(checksum.Sum(acc, b.Bytes()))
	binary.BigEndian.PutUint16(w[16:], ck)
}

// Decode strips and validates a header from b (whose bytes must be exactly
// the TCP segment, i.e. the IP payload), verifying the checksum against the
// pseudo-header.
func Decode(b *pkt.Buf, src, dst ipv4.Addr) (Header, error) {
	if b.Len() < HeaderLen {
		return Header{}, fmt.Errorf("tcp: short segment (%d bytes)", b.Len())
	}
	w := b.Bytes()
	hl := int(w[12]>>4) * 4
	if hl < HeaderLen || hl > b.Len() {
		return Header{}, fmt.Errorf("tcp: bad data offset %d", hl)
	}
	acc := checksum.PseudoHeader(0, src, dst, ipv4.ProtoTCP, b.Len())
	if checksum.Fold(checksum.Sum(acc, w)) != 0 {
		return Header{}, fmt.Errorf("tcp: checksum mismatch")
	}
	var h Header
	h.SrcPort = binary.BigEndian.Uint16(w[0:])
	h.DstPort = binary.BigEndian.Uint16(w[2:])
	h.Seq = Seq(binary.BigEndian.Uint32(w[4:]))
	h.Ack = Seq(binary.BigEndian.Uint32(w[8:]))
	h.Flags = w[13]
	h.Window = binary.BigEndian.Uint16(w[14:])
	h.Urgent = binary.BigEndian.Uint16(w[18:])
	// Parse options (MSS only; skip others).
	opts := w[HeaderLen:hl]
	for i := 0; i < len(opts); {
		switch opts[i] {
		case 0: // end of options
			i = len(opts)
		case 1: // no-op
			i++
		default:
			if i+1 >= len(opts) || opts[i+1] < 2 || i+int(opts[i+1]) > len(opts) {
				return Header{}, fmt.Errorf("tcp: malformed options")
			}
			if opts[i] == 2 && opts[i+1] == 4 {
				h.MSS = binary.BigEndian.Uint16(opts[i+2:])
			}
			i += int(opts[i+1])
		}
	}
	b.Strip(hl)
	return h, nil
}
