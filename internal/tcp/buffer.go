package tcp

// sendBuf holds unacknowledged plus unsent stream bytes. Its origin tracks
// snd_una: bytes are appended by the application and dropped from the front
// as acknowledgments arrive. Retransmission reads by absolute sequence
// number.
type sendBuf struct {
	data  []byte
	start Seq // sequence number of data[0]
	limit int // capacity (socket buffer size)
}

func newSendBuf(limit int) *sendBuf { return &sendBuf{limit: limit} }

// space returns how many more bytes the application may append.
func (b *sendBuf) space() int { return b.limit - len(b.data) }

// len returns the number of buffered bytes.
func (b *sendBuf) len() int { return len(b.data) }

// append adds as much of p as fits, returning the number accepted.
func (b *sendBuf) append(p []byte) int {
	n := b.space()
	if n > len(p) {
		n = len(p)
	}
	b.data = append(b.data, p[:n]...)
	return n
}

// read copies up to n bytes starting at absolute sequence seq (used by the
// output and retransmission paths).
func (b *sendBuf) read(seq Seq, n int) []byte {
	off := seq.Diff(b.start)
	if off < 0 || off > len(b.data) {
		return nil
	}
	end := off + n
	if end > len(b.data) {
		end = len(b.data)
	}
	return b.data[off:end]
}

// ackTo drops bytes below una (they were acknowledged).
func (b *sendBuf) ackTo(una Seq) {
	drop := una.Diff(b.start)
	if drop <= 0 {
		return
	}
	if drop > len(b.data) {
		drop = len(b.data)
	}
	b.data = b.data[drop:]
	b.start = b.start.Add(drop)
}

// recvBuf holds in-order stream bytes ready for the application, plus a
// reassembly queue of out-of-order segments (the BSD seg_next queue).
type recvBuf struct {
	ready []byte // in-order data not yet read by the application
	limit int

	// ooo is the reassembly queue, kept sorted and non-overlapping.
	ooo []oooSeg
}

type oooSeg struct {
	seq  Seq
	data []byte
}

func newRecvBuf(limit int) *recvBuf { return &recvBuf{limit: limit} }

// window returns the receive window to advertise: free buffer space.
func (b *recvBuf) window() int {
	w := b.limit - len(b.ready)
	if w < 0 {
		w = 0
	}
	return w
}

// readable returns the number of in-order bytes available to the app.
func (b *recvBuf) readable() int { return len(b.ready) }

// read moves up to len(p) in-order bytes to the application.
func (b *recvBuf) read(p []byte) int {
	n := copy(p, b.ready)
	b.ready = b.ready[n:]
	return n
}

// insert accepts segment data beginning at seq, given the current rcv_nxt.
// It appends in-order data to ready, stores out-of-order data in the
// reassembly queue, and drains the queue as holes fill. It returns the new
// rcv_nxt.
func (b *recvBuf) insert(rcvNxt Seq, seq Seq, data []byte) Seq {
	if len(data) == 0 {
		return rcvNxt
	}
	if seq.Less(rcvNxt) {
		// Partial or full duplicate: trim the already-received prefix.
		dup := rcvNxt.Diff(seq)
		if dup >= len(data) {
			return rcvNxt
		}
		data = data[dup:]
		seq = rcvNxt
	}
	if seq == rcvNxt {
		data = b.capToWindow(data)
		b.ready = append(b.ready, data...)
		rcvNxt = rcvNxt.Add(len(data))
		return b.drain(rcvNxt)
	}
	// Out of order: store (bounded by a generous multiple of the window to
	// prevent pathological memory use).
	if len(b.ooo) < 64 {
		b.insertOOO(seq, data)
	}
	return rcvNxt
}

// capToWindow limits in-order appends to the advertised window; a correct
// peer never exceeds it, but a faulty or malicious one must not grow our
// memory unboundedly.
func (b *recvBuf) capToWindow(data []byte) []byte {
	w := b.window()
	if len(data) > w {
		return data[:w]
	}
	return data
}

// insertOOO adds a segment to the sorted reassembly queue, merging overlaps
// conservatively (keeping existing bytes, as BSD does).
func (b *recvBuf) insertOOO(seq Seq, data []byte) {
	// Find insertion point.
	i := 0
	for i < len(b.ooo) && b.ooo[i].seq.Less(seq) {
		i++
	}
	// Trim against predecessor.
	if i > 0 {
		prevEnd := b.ooo[i-1].seq.Add(len(b.ooo[i-1].data))
		if seq.Less(prevEnd) {
			trim := prevEnd.Diff(seq)
			if trim >= len(data) {
				return // fully contained
			}
			data = data[trim:]
			seq = prevEnd
		}
	}
	// Trim against successors.
	for i < len(b.ooo) {
		nxt := b.ooo[i]
		end := seq.Add(len(data))
		if end.Leq(nxt.seq) {
			break
		}
		if nxt.seq.Add(len(nxt.data)).Leq(end) {
			// Successor fully covered by new data: drop it.
			b.ooo = append(b.ooo[:i], b.ooo[i+1:]...)
			continue
		}
		// Partial overlap: trim our tail.
		data = data[:nxt.seq.Diff(seq)]
		break
	}
	if len(data) == 0 {
		return
	}
	b.ooo = append(b.ooo, oooSeg{})
	copy(b.ooo[i+1:], b.ooo[i:])
	b.ooo[i] = oooSeg{seq: seq, data: append([]byte(nil), data...)}
}

// drain moves now-in-order segments from the reassembly queue to ready.
func (b *recvBuf) drain(rcvNxt Seq) Seq {
	for len(b.ooo) > 0 {
		s := b.ooo[0]
		if rcvNxt.Less(s.seq) {
			break
		}
		b.ooo = b.ooo[1:]
		if end := s.seq.Add(len(s.data)); rcvNxt.Less(end) {
			d := b.capToWindow(s.data[rcvNxt.Diff(s.seq):])
			b.ready = append(b.ready, d...)
			rcvNxt = rcvNxt.Add(len(d))
		}
	}
	return rcvNxt
}

// oooCount reports queued out-of-order segments (diagnostics).
func (b *recvBuf) oooCount() int { return len(b.ooo) }
