package tcp

import (
	"testing"
)

// Tests for behavior under sustained degradation: the RFC 1122 R1/R2
// retransmission thresholds, keepalive-driven dead-peer detection across
// partitions, zero-window-probe survival across link flaps, and the
// exactly-once give-up path.

func TestConfigFillRexmtThresholds(t *testing.T) {
	cases := []struct {
		in     Config
		r1, r2 int
	}{
		{Config{}, defaultRexmtR1, maxRexmtShift},
		{Config{RexmtR2: 2}, 2, 2}, // R1 capped at R2
		{Config{RexmtR1: 5, RexmtR2: 8}, 5, 8},
		{Config{RexmtR2: 99}, defaultRexmtR1, maxRexmtShift}, // R2 capped at table size
		{Config{RexmtR1: -1, RexmtR2: -1}, defaultRexmtR1, maxRexmtShift},
	}
	for i, tc := range cases {
		tc.in.fill()
		if tc.in.RexmtR1 != tc.r1 || tc.in.RexmtR2 != tc.r2 {
			t.Errorf("case %d: fill gave R1=%d R2=%d, want %d/%d",
				i, tc.in.RexmtR1, tc.in.RexmtR2, tc.r1, tc.r2)
		}
	}
}

func TestRexmtR2GiveUp(t *testing.T) {
	cfg := defaultCfg()
	cfg.RexmtR2 = 2
	n := newTestNet(t, cfg)
	n.connect()
	n.drop = func(string, Header, int) bool { return true } // blackhole
	n.a.Write(pattern(100))
	n.run(400)
	if n.a.State() != Closed {
		t.Fatalf("connection not abandoned: %v", n.a.State())
	}
	if n.aEvents.closedErr != ErrTimeout {
		t.Fatalf("closed with %v, want ErrTimeout", n.aEvents.closedErr)
	}
	st := n.a.Stats()
	if st.RexmtGiveUps != 1 {
		t.Fatalf("RexmtGiveUps = %d, want 1", st.RexmtGiveUps)
	}
	// R2=2 means two retransmissions before the third expiry gives up.
	if st.Rexmits != 2 {
		t.Fatalf("Rexmits = %d, want 2", st.Rexmits)
	}
	// Give-up must sweep every timer (entering Closed cancels them all).
	for i, tm := range [4]int{n.a.tRexmt, n.a.tPersist, n.a.tKeep, n.a.t2MSL} {
		if tm != 0 {
			t.Fatalf("timer %d still armed (%d ticks) after give-up", i, tm)
		}
	}
}

func TestRexmtR1Advisory(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	n.drop = func(string, Header, int) bool { return true }
	n.a.Write(pattern(100))
	// Run long enough to cross R1 (3 retransmissions: RTO 6+12+24 ticks)
	// but far short of R2 give-up.
	for n.a.Stats().Rexmits < defaultRexmtR1 {
		n.run(10)
	}
	st := n.a.Stats()
	if st.R1Advisories != 1 {
		t.Fatalf("R1Advisories = %d after %d rexmits, want 1", st.R1Advisories, st.Rexmits)
	}
	if n.a.State() != Established {
		t.Fatalf("R1 must be advisory only; state = %v", n.a.State())
	}
	// Healing the path resumes the transfer without any reset.
	n.drop = nil
	n.run(100)
	if n.a.State() != Established || n.aEvents.closed {
		t.Fatalf("connection did not survive R1: %v (closed=%v)", n.a.State(), n.aEvents.closed)
	}
}

// TestGiveUpFiresOnClosedExactlyOnce drives a connection into R2 give-up and
// then keeps ticking and injecting late segments: OnClosed must fire exactly
// once and the engine must stay inert.
func TestGiveUpFiresOnClosedExactlyOnce(t *testing.T) {
	cfg := defaultCfg()
	cfg.RexmtR2 = 1
	n := newTestNet(t, cfg)
	closedCount := 0
	cb := n.a.Callbacks()
	prev := cb.OnClosed
	cb.OnClosed = func(err error) { closedCount++; prev(err) }
	n.a.SetCallbacks(cb)
	n.connect()
	// Capture the peer's last segment so we can replay it after give-up.
	var lateH Header
	var lateSeen bool
	n.drop = func(dir string, h Header, pl int) bool {
		if dir == "b->a" {
			lateH, lateSeen = h, true
		}
		return true
	}
	n.a.Write(pattern(100))
	n.run(100)
	if n.a.State() != Closed || closedCount != 1 {
		t.Fatalf("state=%v closedCount=%d, want Closed/1", n.a.State(), closedCount)
	}
	// Late timer ticks and a stale segment must not resurrect or re-close.
	n.a.SlowTick()
	n.a.FastTick()
	if lateSeen {
		n.a.Input(lateH, nil)
	}
	if closedCount != 1 {
		t.Fatalf("OnClosed fired %d times after give-up", closedCount)
	}
}

func TestKeepaliveSurvivesHealedPartition(t *testing.T) {
	cfg := defaultCfg()
	cfg.KeepAliveTicks = 4 // probe after 2 s idle
	n := newTestNet(t, cfg)
	n.connect()
	data := pattern(2000)
	got := n.pump(n.a, n.b, data, 1000)
	checkIntegrity(t, data, got)

	// Partition for long enough that several keepalive probes go
	// unanswered, but fewer than keepMaxProbes.
	n.drop = func(string, Header, int) bool { return true }
	n.run(4 * 5 * 3) // ~3 probe intervals
	if probes := n.a.Stats().KeepProbes; probes == 0 {
		t.Fatal("no keepalive probes sent during partition")
	}
	if n.a.State() != Established {
		t.Fatalf("gave up during survivable partition: %v", n.a.State())
	}

	// Heal: the next answered probe must reset the count and the
	// connection must carry fresh data with no spurious reset.
	n.drop = nil
	n.run(4 * 5)
	if n.a.keepProbes != 0 {
		t.Fatalf("answered probe did not reset keepProbes (%d)", n.a.keepProbes)
	}
	more := pattern(3000)
	got = n.pump(n.a, n.b, more, 1000)
	checkIntegrity(t, more, got)
	if n.aEvents.closed || n.bEvents.closed {
		t.Fatal("healed partition triggered a close")
	}
}

func TestKeepalivePermanentPartitionTearsDown(t *testing.T) {
	cfg := defaultCfg()
	cfg.KeepAliveTicks = 2
	n := newTestNet(t, cfg)
	n.connect()
	n.drop = func(string, Header, int) bool { return true }
	// Idle connection, permanent partition: only keepalive can notice.
	n.run(2 * 5 * (keepMaxProbes + 3))
	if n.a.State() != Closed {
		t.Fatalf("dead peer not detected: %v", n.a.State())
	}
	if n.aEvents.closedErr != ErrKeepalive {
		t.Fatalf("closed with %v, want ErrKeepalive", n.aEvents.closedErr)
	}
	if n.a.Stats().KeepProbes != keepMaxProbes {
		t.Fatalf("sent %d probes, want %d", n.a.Stats().KeepProbes, keepMaxProbes)
	}
}

// TestZeroWindowProbeSurvivesFlap closes the peer's window, flaps the link
// down across many persist intervals, then heals and reopens the window:
// the probing connection must neither give up (persist never does; tRexmt
// is off) nor lose data.
func TestZeroWindowProbeSurvivesFlap(t *testing.T) {
	cfg := defaultCfg()
	cfg.RcvBufSize = 1024
	n := newTestNet(t, cfg)
	n.connect()

	// Fill b's receive buffer without reading: a ends up against a zero
	// window and enters persist.
	data := pattern(4096)
	written := n.a.Write(data)
	for i := 0; i < 400 && n.a.Stats().WindowProbes == 0; i++ {
		if written < len(data) {
			written += n.a.Write(data[written:])
		}
		n.tick()
	}
	if n.a.Stats().WindowProbes == 0 {
		t.Fatal("never entered persist against the zero window")
	}

	// Link flaps down across several persist backoff intervals.
	n.drop = func(string, Header, int) bool { return true }
	n.run(persistMax * 5 * 2)
	if n.a.State() != Established {
		t.Fatalf("persist gave up during flap: %v (err %v)", n.a.State(), n.aEvents.closedErr)
	}

	// Heal and drain: the probe re-establishes the window exchange and the
	// full payload arrives intact.
	n.drop = nil
	var got []byte
	buf := make([]byte, 512)
	for i := 0; i < 2000 && len(got) < len(data); i++ {
		if written < len(data) {
			written += n.a.Write(data[written:])
		}
		for {
			r := n.b.Read(buf)
			got = append(got, buf[:r]...)
			if r == 0 {
				break
			}
		}
		n.tick()
	}
	checkIntegrity(t, data, got)
}

// TestRestoreArmsKeepalive hands off an established connection via
// Snapshot/Restore and then goes silent: the restored side must still
// detect the dead peer, which requires Restore to arm the keepalive timer.
func TestRestoreArmsKeepalive(t *testing.T) {
	cfg := defaultCfg()
	cfg.KeepAliveTicks = 2
	n := newTestNet(t, cfg)
	n.connect()

	var closedErr error
	closed := false
	r := Restore(n.a.Snapshot(), Callbacks{
		OnClosed: func(err error) { closed = true; closedErr = err },
	})
	if r.State() != Established {
		t.Fatalf("restored state %v", r.State())
	}
	for i := 0; i < 2*(keepMaxProbes+3) && !closed; i++ {
		r.SlowTick()
		r.SlowTick()
	}
	if !closed || closedErr != ErrKeepalive {
		t.Fatalf("restored connection never detected dead peer (closed=%v err=%v)", closed, closedErr)
	}
}
