package tcp

import (
	"testing"

	"ulp/internal/ipv4"
	"ulp/internal/pkt"
)

// These benchmarks measure the real (wall-clock) cost of the protocol
// engine itself — the Go implementation, not the simulated 1993 hardware.

func BenchmarkHeaderEncode(b *testing.B) {
	src := ipv4.Addr{10, 0, 0, 1}
	dst := ipv4.Addr{10, 0, 0, 2}
	payload := make([]byte, 1460)
	h := Header{SrcPort: 1, DstPort: 2, Seq: 100, Ack: 200, Flags: FlagACK | FlagPSH, Window: 8192}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := pkt.FromBytes(HeaderLen, payload)
		h.Encode(buf, src, dst)
	}
}

func BenchmarkHeaderDecode(b *testing.B) {
	src := ipv4.Addr{10, 0, 0, 1}
	dst := ipv4.Addr{10, 0, 0, 2}
	payload := make([]byte, 1460)
	h := Header{SrcPort: 1, DstPort: 2, Seq: 100, Ack: 200, Flags: FlagACK, Window: 8192}
	buf := pkt.FromBytes(HeaderLen, payload)
	h.Encode(buf, src, dst)
	wire := append([]byte(nil), buf.Bytes()...)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seg := pkt.FromBytes(0, wire)
		if _, err := Decode(seg, src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTransfer measures back-to-back engine throughput: two
// connections exchanging a megabyte through direct Input calls.
func BenchmarkEngineTransfer(b *testing.B) {
	const total = 1 << 20
	data := pattern(total)
	b.SetBytes(total)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := newTestNet(&testing.T{}, defaultCfg())
		n.connect()
		got := 0
		buf := make([]byte, 65536)
		written := 0
		for u := 0; u < 1_000_000 && got < total; u++ {
			if written < total {
				written += n.a.Write(data[written:])
			}
			for {
				r := n.b.Read(buf)
				got += r
				if r == 0 {
					break
				}
			}
			n.tick()
		}
		if got != total {
			b.Fatalf("transferred %d/%d", got, total)
		}
	}
}

func BenchmarkRecvBufInsertInOrder(b *testing.B) {
	seg := make([]byte, 1460)
	b.SetBytes(int64(len(seg)))
	for i := 0; i < b.N; i++ {
		buf := newRecvBuf(1 << 30)
		nxt := Seq(0)
		for j := 0; j < 16; j++ {
			nxt = buf.insert(nxt, nxt, seg)
		}
	}
}

func BenchmarkSendBufReadAck(b *testing.B) {
	buf := newSendBuf(1 << 20)
	buf.append(make([]byte, 1<<20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = buf.read(buf.start.Add(i%1000), 1460)
	}
}
