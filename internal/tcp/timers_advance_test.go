package tcp

import (
	"fmt"
	"testing"

	"ulp/internal/pkt"
)

// The bulk-advance helpers exist so a timer-wheel shell can leave an idle
// connection untouched for thousands of ticks and catch it up in O(fires).
// These tests pin the contract: AdvanceSlowTicks(n) must leave the
// connection in exactly the state n sequential SlowTicks would, including
// every segment the expiry handlers transmit, for every timer and every
// chunking of n.

// advConn builds a connection and hands it to setup for state injection.
// Each sent segment is appended to the returned log as a compact signature
// so two runs can be diffed.
func advConn(setup func(*Conn)) (*Conn, *[]string) {
	log := &[]string{}
	c := NewConn(Config{KeepAliveTicks: 20}, Endpoint{[4]byte{10, 0, 0, 1}, 2000},
		Endpoint{[4]byte{10, 0, 0, 2}, 80}, Callbacks{})
	c.cb.Send = func(seg *pkt.Buf, h Header, payloadLen int) {
		*log = append(*log, fmt.Sprintf("%d %d %d %d", h.Seq, h.Ack, h.Flags, payloadLen))
	}
	setup(c)
	return c, log
}

// slowState snapshots everything SlowTick can influence.
func slowState(c *Conn) string {
	return fmt.Sprintf("st=%v rexmt=%d persist=%d keep=%d 2msl=%d rtt=%d idle=%d shift=%d rxtcur=%d cwnd=%d ssthresh=%d pshift=%d probes=%d sndnxt=%d snduna=%d stats=%+v",
		c.state, c.tRexmt, c.tPersist, c.tKeep, c.t2MSL, c.tRtt, c.idleT,
		c.rxtShift, c.rxtCur, c.cwnd, c.ssthresh, c.persistShift, c.keepProbes,
		c.sndNxt, c.sndUna, c.stats)
}

// checkAdvance drives one clone tick-by-tick and the other through
// AdvanceSlowTicks in the given chunks (summing to the same total), then
// compares final state and transmission logs.
func checkAdvance(t *testing.T, name string, setup func(*Conn), chunks []int) {
	t.Helper()
	total := 0
	for _, k := range chunks {
		total += k
	}
	seq, seqLog := advConn(setup)
	for i := 0; i < total; i++ {
		seq.SlowTick()
	}
	blk, blkLog := advConn(setup)
	for _, k := range chunks {
		blk.AdvanceSlowTicks(k)
	}
	if a, b := slowState(seq), slowState(blk); a != b {
		t.Errorf("%s: state diverged after %d ticks\n sequential: %s\n bulk:       %s", name, total, a, b)
	}
	if a, b := fmt.Sprint(*seqLog), fmt.Sprint(*blkLog); a != b {
		t.Errorf("%s: transmissions diverged\n sequential: %s\n bulk:       %s", name, a, b)
	}
}

func TestAdvanceSlowTicksEquivalence(t *testing.T) {
	established := func(c *Conn) {
		c.state = Established
		c.cwnd = 4 * c.sndMSS
		c.ssthresh = 8 * c.sndMSS
		c.sndUna, c.sndNxt = 1000, 1000
		c.sndWnd = 8192
	}
	cases := []struct {
		name  string
		setup func(*Conn)
	}{
		{"rexmt-armed", func(c *Conn) {
			established(c)
			c.tRexmt = 7
			c.tRtt = 2
		}},
		{"rexmt-repeated-backoff", func(c *Conn) {
			// RTO 2 ticks: fires and re-arms several times inside one
			// window, exercising re-arm-from-expiry-handler.
			established(c)
			c.srtt, c.rttvar = 8, 1
			c.rxtCur = 2
			c.tRexmt = 2
		}},
		{"persist-armed", func(c *Conn) {
			established(c)
			c.sndWnd = 0
			c.tPersist = 5
		}},
		{"keepalive-probing", func(c *Conn) {
			// Keepalive fires at tick 3 and re-arms every KeepAliveTicks,
			// sending a probe segment each time.
			established(c)
			c.tKeep = 3
		}},
		{"timewait-expiry", func(c *Conn) {
			c.state = TimeWait
			c.t2MSL = 9
		}},
		{"multiple-timers", func(c *Conn) {
			established(c)
			c.tRexmt = 4
			c.tKeep = 6
			c.tRtt = 1
		}},
		{"nothing-armed", func(c *Conn) {
			established(c)
			c.tRtt = 3
		}},
		{"closed-noop", func(c *Conn) {}},
	}
	chunkings := [][]int{{25}, {1, 1, 1, 22}, {3, 5, 8, 9}, {24, 1}}
	for _, tc := range cases {
		for i, chunks := range chunkings {
			checkAdvance(t, fmt.Sprintf("%s/chunks%d", tc.name, i), tc.setup, chunks)
		}
	}
}

func TestNextSlowTicks(t *testing.T) {
	c, _ := advConn(func(c *Conn) {
		c.state = Established
		c.tRexmt = 7
		c.tKeep = 3
	})
	if got := c.NextSlowTicks(); got != 3 {
		t.Fatalf("NextSlowTicks = %d, want 3 (min of armed timers)", got)
	}
	c.tKeep = 0
	if got := c.NextSlowTicks(); got != 7 {
		t.Fatalf("NextSlowTicks = %d, want 7", got)
	}
	c.tRexmt = 0
	if got := c.NextSlowTicks(); got != 0 {
		t.Fatalf("NextSlowTicks = %d, want 0 when nothing armed", got)
	}
	c.tRexmt = 5
	c.state = Closed
	if got := c.NextSlowTicks(); got != 0 {
		t.Fatalf("NextSlowTicks = %d, want 0 for Closed", got)
	}
}

func TestDelAckPending(t *testing.T) {
	c, log := advConn(func(c *Conn) {
		c.state = Established
		c.sndUna, c.sndNxt = 1000, 1000
	})
	if c.DelAckPending() {
		t.Fatal("fresh conn claims a pending delayed ACK")
	}
	c.delAck = true
	if !c.DelAckPending() {
		t.Fatal("DelAckPending false with delAck set")
	}
	c.FastTick()
	if c.DelAckPending() {
		t.Fatal("delayed ACK still pending after FastTick")
	}
	if len(*log) != 1 {
		t.Fatalf("FastTick sent %d segments, want 1 ACK", len(*log))
	}
}
