// Package tcp implements the Transmission Control Protocol in the style of
// the 4.3BSD implementation the paper's library borrows: tick-driven timers
// (500 ms slow / 200 ms fast timeouts), Jacobson SRTT/RTTVAR estimation with
// Karn's clamp, slow start and congestion avoidance, optional fast
// retransmit, delayed acknowledgments, the Nagle algorithm, silly-window
// avoidance, keepalives, and the full connection state machine including
// simultaneous open/close and TIME_WAIT.
//
// The engine is pure protocol logic: no blocking, no virtual time, no cost
// accounting. Organization shells (user-level library, in-kernel,
// single-server) drive it through Input/Write/Read/Close and the two tick
// methods, and receive output segments and event notifications through
// callbacks. This is what lets all three organizations of the paper run the
// identical protocol, so that measured differences are structural.
package tcp

// Seq is a TCP sequence number with modular comparison semantics (RFC 793).
type Seq uint32

// Less reports s < t in sequence space.
func (s Seq) Less(t Seq) bool { return int32(s-t) < 0 }

// Leq reports s <= t in sequence space.
func (s Seq) Leq(t Seq) bool { return int32(s-t) <= 0 }

// Add advances s by n bytes.
func (s Seq) Add(n int) Seq { return s + Seq(uint32(int32(n))) }

// Diff returns the signed distance s - t.
func (s Seq) Diff(t Seq) int { return int(int32(s - t)) }

// seqMax returns the later of two sequence numbers.
func seqMax(a, b Seq) Seq {
	if a.Less(b) {
		return b
	}
	return a
}

// seqMin returns the earlier of two sequence numbers.
func seqMin(a, b Seq) Seq {
	if a.Less(b) {
		return a
	}
	return b
}
