package tcp

import "ulp/internal/trace"

// Input processes an arriving segment (header already decoded and checksum
// verified by the shell via Decode). data is the segment payload.
func (c *Conn) Input(h Header, data []byte) {
	c.inInput = true
	defer func() {
		c.inInput = false
		if c.estabPending {
			c.estabPending = false
			if c.cb.OnEstablished != nil {
				c.cb.OnEstablished()
			}
		}
	}()
	c.stats.SegsRcvd++
	c.idleT = 0
	c.keepProbes = 0
	if c.cfg.KeepAliveTicks > 0 && c.state == Established {
		c.setTimer(&c.tKeep, c.cfg.KeepAliveTicks)
	}

	switch c.state {
	case Closed:
		// The shell answers segments to closed endpoints with RST itself
		// (MakeRST); a pcb in Closed silently drops.
		return
	case Listen:
		c.inputListen(h, data)
		return
	case SynSent:
		c.inputSynSent(h, data)
		return
	}

	// --- General case (RFC 793 SEGMENT ARRIVES, states >= SYN_RCVD) -----

	// Trim the segment to the receive window.
	segSeq := h.Seq
	segLen := len(data)
	fin := h.Flags&FlagFIN != 0

	wnd := c.rcv.window()
	// Acceptability test.
	acceptable := false
	switch {
	case segLen == 0 && wnd == 0:
		acceptable = segSeq == c.rcvNxt
	case segLen == 0:
		acceptable = c.rcvNxt.Leq(segSeq) && segSeq.Less(c.rcvNxt.Add(wnd))
	case wnd == 0:
		// Zero window: only window probes at rcv_nxt are interesting; the
		// probe data is dropped but must be acknowledged so the sender
		// keeps probing and discovers the reopening.
		acceptable = segSeq == c.rcvNxt
		if acceptable {
			if segLen > 0 {
				c.ackNow = true
			}
			data = nil
			segLen = 0
			fin = false
		}
	default:
		end := segSeq.Add(segLen)
		acceptable = (c.rcvNxt.Leq(segSeq) && segSeq.Less(c.rcvNxt.Add(wnd))) ||
			(c.rcvNxt.Less(end) && end.Leq(c.rcvNxt.Add(wnd))) ||
			(segSeq.Less(c.rcvNxt) && c.rcvNxt.Add(wnd).Less(end))
	}
	if !acceptable {
		c.stats.BadChecksumOrTrim++
		if h.Flags&FlagRST == 0 {
			c.ackNow = true
			c.Output()
		}
		return
	}

	// RST processing.
	if h.Flags&FlagRST != 0 {
		switch c.state {
		case SynRcvd:
			c.closedErr = ErrRefused
		case Established, FinWait1, FinWait2, CloseWait:
			c.closedErr = ErrReset
		default:
			c.closedErr = nil
		}
		c.setState(Closed, TrigReset)
		return
	}

	// SYN in window is an error: reset the connection.
	if h.Flags&FlagSYN != 0 && c.rcvNxt.Leq(segSeq) {
		c.sendRST()
		c.closedErr = ErrReset
		c.setState(Closed, TrigReset)
		return
	}

	// ACK processing.
	if h.Flags&FlagACK == 0 {
		return // every segment past SYN must carry ACK
	}
	if !c.processAck(h) {
		return // connection closed or segment dropped
	}

	// Payload processing.
	if segLen > 0 {
		switch c.state {
		case Established, FinWait1, FinWait2:
			before := c.rcvNxt
			c.rcvNxt = c.rcv.insert(c.rcvNxt, segSeq, data)
			if c.rcvNxt == before && segSeq != before {
				// Out of order: duplicate-ack immediately so the sender's
				// fast retransmit can engage.
				c.stats.OutOfOrder++
				c.ackNow = true
			} else {
				c.stats.BytesRcvd += int64(c.rcvNxt.Diff(before))
				// Delayed ACK: first in-order segment sets the flag; a
				// second one forces an immediate ACK ("ack every other").
				if c.cfg.NoDelayedAck {
					c.ackNow = true
				} else if c.delAck {
					c.ackNow = true
				} else {
					c.delAck = true
					c.stats.DelayedAcks++
				}
				if c.cb.OnReadable != nil && c.rcv.readable() > 0 {
					c.cb.OnReadable()
				}
			}
		default:
			// Data after our FIN has been processed: just ACK.
			c.ackNow = true
		}
	}

	// FIN processing: the FIN occupies the sequence slot after the data.
	if fin {
		c.rcvFinSeen = true
		c.rcvFinSeq = segSeq.Add(segLen)
	}
	if c.rcvFinSeen && !c.rcvEOF && c.rcvNxt == c.rcvFinSeq {
		c.rcvEOF = true
		c.rcvNxt = c.rcvNxt.Add(1)
		c.ackNow = true
		switch c.state {
		case SynRcvd, Established:
			c.setState(CloseWait, TrigSegment)
		case FinWait1:
			// Our FIN not yet acked (otherwise processAck moved us to
			// FinWait2): simultaneous close.
			c.setState(Closing, TrigSegment)
		case FinWait2:
			c.enterTimeWait(TrigSegment)
		}
		if c.cb.OnReadable != nil {
			c.cb.OnReadable() // EOF is readable
		}
	}

	c.Output()
}

// inputListen handles segments in LISTEN (RFC 793 p.65).
func (c *Conn) inputListen(h Header, data []byte) {
	if h.Flags&FlagRST != 0 {
		return
	}
	if h.Flags&FlagACK != 0 {
		c.sendRSTFor(h, len(data))
		return
	}
	if h.Flags&FlagSYN == 0 {
		return
	}
	c.irs = h.Seq
	c.rcvNxt = h.Seq.Add(1)
	c.rcvAdv = c.rcvNxt
	if h.MSS != 0 && int(h.MSS) < c.sndMSS {
		c.sndMSS = int(h.MSS)
	}
	// The shell provided iss at OpenListen time? No: LISTEN pcbs receive
	// their ISS via SetISS before or at clone time; default to a
	// deterministic function of the peer's ISN if unset.
	if c.iss == 0 {
		c.iss = h.Seq + 64000
	}
	c.sndUna, c.sndNxt, c.sndMax = c.iss, c.iss, c.iss
	c.snd.start = c.iss.Add(1)
	c.cwnd = c.sndMSS
	c.ssthresh = MaxWindow
	// Take the window from the SYN directly; it predates any ACK, so the
	// wl1/wl2 freshness rule does not apply yet.
	c.sndWnd = int(h.Window)
	c.maxSndWnd = c.sndWnd
	c.sndWl1, c.sndWl2 = h.Seq, c.iss
	c.setState(SynRcvd, TrigSegment)
	c.startRexmt()
	c.Output() // emits SYN|ACK
}

// SetISS supplies the initial send sequence a LISTEN pcb will use when a
// SYN arrives (shells keep this deterministic).
func (c *Conn) SetISS(iss Seq) { c.iss = iss }

// inputSynSent handles segments in SYN_SENT (RFC 793 p.66).
func (c *Conn) inputSynSent(h Header, data []byte) {
	ackOK := false
	if h.Flags&FlagACK != 0 {
		if h.Ack.Leq(c.iss) || c.sndMax.Less(h.Ack) {
			if h.Flags&FlagRST == 0 {
				c.sendRSTFor(h, len(data))
			}
			return
		}
		ackOK = true
	}
	if h.Flags&FlagRST != 0 {
		if ackOK {
			c.closedErr = ErrRefused
			c.setState(Closed, TrigReset)
		}
		return
	}
	if h.Flags&FlagSYN == 0 {
		return
	}
	c.irs = h.Seq
	c.rcvNxt = h.Seq.Add(1)
	c.rcvAdv = c.rcvNxt
	if h.MSS != 0 && int(h.MSS) < c.sndMSS {
		c.sndMSS = int(h.MSS)
	}
	c.cwnd = c.sndMSS
	if ackOK {
		c.sndUna = h.Ack
		if c.sndNxt.Less(c.sndUna) {
			c.sndNxt = c.sndUna
		}
		c.clearTimer(&c.tRexmt)
		c.rxtShift = 0
		// Window from the SYN|ACK, installed directly (see inputListen).
		c.sndWnd = int(h.Window)
		c.maxSndWnd = c.sndWnd
		c.sndWl1, c.sndWl2 = h.Seq, h.Ack
		c.ackNow = true
		c.setState(Established, TrigSegment)
		if c.sndClosed { // Close raced the handshake
			c.setState(FinWait1, TrigUser)
		}
	} else {
		// Simultaneous open.
		c.sndWnd = int(h.Window)
		c.maxSndWnd = c.sndWnd
		c.sndWl1, c.sndWl2 = h.Seq, c.iss
		c.ackNow = true
		c.setState(SynRcvd, TrigSegment)
	}
	if len(data) > 0 {
		c.rcvNxt = c.rcv.insert(c.rcvNxt, h.Seq.Add(1), data)
	}
	c.Output()
}

// processAck implements the ESTABLISHED-and-later ACK rules; it reports
// whether processing of the segment should continue.
func (c *Conn) processAck(h Header) bool {
	// SYN_RCVD: does this ACK complete the handshake?
	if c.state == SynRcvd {
		if c.sndUna.Leq(h.Ack) && h.Ack.Leq(c.sndMax) {
			c.updateSndWnd(h)
			c.setState(Established, TrigSegment)
			if c.sndClosed && !c.finQueued {
				c.setState(FinWait1, TrigUser)
			}
		} else {
			c.sendRSTFor(h, 0)
			return false
		}
	}

	switch {
	case h.Ack.Leq(c.sndUna):
		// Duplicate ACK. Count it only if it is a "true" duplicate: no
		// data, no window change, and we have outstanding data.
		if h.Ack == c.sndUna && c.snd.len() > 0 && int(h.Window) == c.sndWnd {
			c.stats.DupAcksRcvd++
			c.dupAcks++
			if c.cfg.FastRetransmit && c.dupAcks == 3 {
				c.fastRetransmit()
				return true
			}
			if c.cfg.Reno && c.dupAcks > 3 {
				// Fast recovery inflation.
				c.cwnd += c.sndMSS
				c.Output()
				return true
			}
		}
		// Old ACK: ignore (but continue with payload processing).
		c.updateSndWnd(h)
		return true
	case c.sndMax.Less(h.Ack):
		// ACK for data we never sent.
		c.ackNow = true
		c.Output()
		return false
	}

	// New ACK.
	acked := h.Ack.Diff(c.sndUna)
	if c.dupAcks >= 3 && c.cfg.Reno {
		// Leaving fast recovery: deflate.
		if c.cwnd > c.ssthresh {
			c.cwnd = c.ssthresh
		}
	}
	c.dupAcks = 0

	// RTT sample (Karn: only if the timed sequence is covered and we did
	// not retransmit it — t_rtt is zeroed on retransmission).
	if c.tRtt > 0 && c.tRtseq.Less(h.Ack) {
		c.updateRTT(c.tRtt)
		c.tRtt = 0
	}

	// Congestion window growth (slow start / congestion avoidance).
	if c.cwnd < c.ssthresh {
		c.cwnd += c.sndMSS
	} else {
		c.cwnd += c.sndMSS * c.sndMSS / c.cwnd
	}
	if c.cwnd > MaxWindow {
		c.cwnd = MaxWindow
	}

	// Did the ACK cover our FIN?
	finAcked := c.finQueued && c.finSeq.Less(h.Ack)

	ackedData := acked
	if finAcked {
		ackedData--
	}
	if h.Ack.Diff(c.iss) > 0 && c.sndUna.Leq(c.iss) {
		ackedData-- // SYN consumed one sequence slot
	}
	if ackedData > 0 {
		c.snd.ackTo(c.sndUna.Add(ackedData)) // buffer origin excludes SYN/FIN
	}
	c.sndUna = h.Ack
	if c.sndNxt.Less(c.sndUna) {
		c.sndNxt = c.sndUna
	}

	// Retransmission timer: all data acked -> stop; else restart.
	if c.sndUna == c.sndMax {
		c.clearTimer(&c.tRexmt)
		c.rxtShift = 0
	} else {
		c.rxtShift = 0
		c.setTimer(&c.tRexmt, c.rxtCur)
	}

	c.updateSndWnd(h)

	if ackedData > 0 && c.cb.OnWritable != nil {
		c.cb.OnWritable()
	}

	// State transitions driven by our FIN being acknowledged.
	if finAcked {
		switch c.state {
		case FinWait1:
			c.setState(FinWait2, TrigSegment)
		case Closing:
			c.enterTimeWait(TrigSegment)
		case LastAck:
			c.closedErr = nil
			c.setState(Closed, TrigSegment)
			return false
		}
	}
	if c.state == TimeWait {
		// Retransmitted peer FIN: re-ack and restart 2MSL.
		c.ackNow = true
		c.setTimer(&c.t2MSL, c.cfg.TimeWaitTicks)
		c.emitTimeWaitArm()
	}
	return true
}

// updateSndWnd applies the send-window update rule (RFC 793 p.72).
func (c *Conn) updateSndWnd(h Header) {
	if h.Flags&FlagACK == 0 {
		return
	}
	if c.sndWl1.Less(h.Seq) || (c.sndWl1 == h.Seq && c.sndWl2.Leq(h.Ack)) {
		c.sndWnd = int(h.Window)
		if c.sndWnd > c.maxSndWnd {
			c.maxSndWnd = c.sndWnd
		}
		c.sndWl1 = h.Seq
		c.sndWl2 = h.Ack
		if c.sndWnd > 0 && c.tPersist != 0 {
			c.clearTimer(&c.tPersist)
			c.persistShift = 0
		}
	}
}

// fastRetransmit performs the 3-dup-ack retransmission (Tahoe, optionally
// Reno fast recovery).
func (c *Conn) fastRetransmit() {
	c.stats.FastRexmits++
	win := c.sndWnd
	if c.cwnd < win {
		win = c.cwnd
	}
	ss := win / 2
	if ss < 2*c.sndMSS {
		ss = 2 * c.sndMSS
	}
	c.ssthresh = ss
	// Retransmit the missing segment.
	savedNxt := c.sndNxt
	c.sndNxt = c.sndUna
	c.tRtt = 0 // Karn
	c.cwnd = c.sndMSS
	if c.bus.Enabled() {
		c.bus.Emit(trace.Event{Kind: trace.TCPRexmit, Conn: c.busLabel,
			A: int64(c.rxtShift), B: int64(c.rxtCur), Text: "fast"})
	}
	c.outputForced()
	c.sndNxt = seqMax(savedNxt, c.sndNxt)
	if c.cfg.Reno {
		c.cwnd = c.ssthresh + 3*c.sndMSS
	} else {
		c.cwnd = c.sndMSS // Tahoe: slow start over
	}
	c.setTimer(&c.tRexmt, c.rxtCur)
}

// enterTimeWait transitions to TIME_WAIT and starts the 2*MSL timer.
func (c *Conn) enterTimeWait(why Trigger) {
	if TestHookSkipTimeWait {
		// Injected bug for the conformance explorer's self-test: release
		// the connection without the 2*MSL quiet period.
		c.closedErr = nil
		c.setState(Closed, why)
		return
	}
	c.setState(TimeWait, why)
	c.cancelDataTimers()
	c.setTimer(&c.t2MSL, c.cfg.TimeWaitTicks)
	c.emitTimeWaitArm()
}

// emitTimeWaitArm traces an arming (or re-arming) of the 2*MSL timer, so
// the conformance checker can verify TIME_WAIT lasts exactly TimeWaitTicks
// from the most recent arming.
func (c *Conn) emitTimeWaitArm() {
	if c.bus.Enabled() {
		c.bus.Emit(trace.Event{Kind: trace.TCPTimeWait, Conn: c.busLabel,
			A: int64(c.cfg.TimeWaitTicks)})
	}
}

func (c *Conn) cancelDataTimers() {
	c.clearTimer(&c.tRexmt)
	c.clearTimer(&c.tPersist)
	c.clearTimer(&c.tKeep)
}
