package tcp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ulp/internal/ipv4"
	"ulp/internal/pkt"
)

// TestTransferUnderRandomLoss is the central robustness property: for any
// seeded combination of loss, duplication and reordering, the byte stream
// delivered equals the byte stream sent.
func TestTransferUnderRandomLoss(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		cfg := defaultCfg()
		cfg.MSS = 512
		n := newTestNet(t, cfg)
		lossP := 0.02 + rng.Float64()*0.08
		n.dupP = rng.Float64() * 0.05
		n.reorderP = rng.Float64() * 0.1
		n.rng = rand.New(rand.NewSource(seed * 77))
		n.connect() // handshake over a clean network, then inject faults
		n.drop = func(dir string, h Header, pl int) bool {
			return rng.Float64() < lossP
		}
		data := pattern(int(4000 + rng.Int63n(20000)))
		got := n.pump(n.a, n.b, data, 200000)
		if !bytes.Equal(data, got) {
			t.Fatalf("seed %d: corrupted transfer (%d/%d bytes)", seed, len(got), len(data))
		}
	}
}

// TestNoDataBeyondWindowProperty: the engine never has more unacknowledged
// data outstanding than min(peer window, cwnd) at any instant.
func TestInFlightNeverExceedsWindows(t *testing.T) {
	cfg := defaultCfg()
	cfg.MSS = 512
	n := newTestNet(t, cfg)
	n.connect()
	data := pattern(30000)
	written := 0
	buf := make([]byte, 4096)
	for u := 0; u < 4000; u++ {
		if written < len(data) {
			written += n.a.Write(data[written:])
		}
		inFlight := n.a.sndNxt.Diff(n.a.sndUna)
		lim := n.a.sndWnd
		if n.a.cwnd < lim {
			lim = n.a.cwnd
		}
		// A persist probe may exceed a zero window by one byte.
		if inFlight > lim+1 {
			t.Fatalf("in flight %d exceeds window %d at step %d", inFlight, lim, u)
		}
		for {
			r := n.b.Read(buf)
			if r == 0 {
				break
			}
		}
		n.tick()
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	src := ipv4.Addr{10, 0, 0, 1}
	dst := ipv4.Addr{10, 0, 0, 2}
	if err := quick.Check(func(sp, dp uint16, seq, ack uint32, flags uint8, win, urg, mss uint16, payload []byte) bool {
		h := Header{
			SrcPort: sp, DstPort: dp,
			Seq: Seq(seq), Ack: Seq(ack),
			Flags: flags, Window: win, Urgent: urg, MSS: mss,
		}
		b := pkt.FromBytes(h.EncodedLen(), payload)
		h.Encode(b, src, dst)
		got, err := Decode(b, src, dst)
		if err != nil {
			return false
		}
		return got == h && bytes.Equal(b.Bytes(), payload)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	src := ipv4.Addr{10, 0, 0, 1}
	dst := ipv4.Addr{10, 0, 0, 2}
	if err := quick.Check(func(payload []byte, bitSel uint16) bool {
		h := Header{SrcPort: 1, DstPort: 2, Seq: 100, Ack: 200, Flags: FlagACK, Window: 512}
		b := pkt.FromBytes(HeaderLen, payload)
		h.Encode(b, src, dst)
		w := b.Bytes()
		bit := int(bitSel) % (len(w) * 8)
		w[bit/8] ^= 1 << (bit % 8)
		_, err := Decode(b, src, dst)
		// Any single-bit flip must be detected (ones-complement checksum
		// catches all single-bit errors).
		return err != nil
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsWrongPseudoHeader(t *testing.T) {
	src := ipv4.Addr{10, 0, 0, 1}
	dst := ipv4.Addr{10, 0, 0, 2}
	h := Header{SrcPort: 1, DstPort: 2, Flags: FlagACK}
	b := pkt.FromBytes(HeaderLen, []byte("data"))
	h.Encode(b, src, dst)
	if _, err := Decode(b, src, ipv4.Addr{10, 0, 0, 3}); err == nil {
		t.Fatal("segment misdelivered to wrong address passed checksum")
	}
}

func TestSeqArithmetic(t *testing.T) {
	if err := quick.Check(func(a uint32, d int16) bool {
		s := Seq(a)
		u := s.Add(int(d))
		return u.Diff(s) == int(d)
	}, nil); err != nil {
		t.Fatal(err)
	}
	// Wraparound ordering.
	if !Seq(0xfffffff0).Less(Seq(0x10)) {
		t.Fatal("wraparound Less broken")
	}
	if Seq(0x10).Less(Seq(0xfffffff0)) {
		t.Fatal("wraparound Less inverted")
	}
	if seqMax(Seq(0xfffffff0), Seq(0x10)) != Seq(0x10) {
		t.Fatal("seqMax broken across wrap")
	}
	if seqMin(Seq(0xfffffff0), Seq(0x10)) != Seq(0xfffffff0) {
		t.Fatal("seqMin broken across wrap")
	}
	if !Seq(5).Leq(5) {
		t.Fatal("Leq not reflexive")
	}
}

func TestSendBuf(t *testing.T) {
	b := newSendBuf(10)
	b.start = 1000
	if n := b.append([]byte("hello world!!!")); n != 10 {
		t.Fatalf("append accepted %d, want 10 (limit)", n)
	}
	if b.space() != 0 {
		t.Fatalf("space = %d", b.space())
	}
	if got := string(b.read(1002, 3)); got != "llo" {
		t.Fatalf("read = %q", got)
	}
	if b.read(999, 5) != nil {
		t.Fatal("read before start should be nil")
	}
	b.ackTo(1004)
	if b.len() != 6 || b.start != 1004 {
		t.Fatalf("after ack: len=%d start=%d", b.len(), b.start)
	}
	if got := string(b.read(1004, 100)); got != "o worl" {
		t.Fatalf("post-ack read = %q", got)
	}
	b.ackTo(1000) // stale ack: no-op
	if b.start != 1004 {
		t.Fatal("stale ack moved start")
	}
}

// Property: recvBuf.insert over any permutation of segment arrivals yields
// the original stream.
func TestRecvBufReassemblyProperty(t *testing.T) {
	if err := quick.Check(func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		total := int(n)%2000 + 100
		stream := make([]byte, total)
		rng.Read(stream)
		// Split into random segments.
		type seg struct {
			off int
			d   []byte
		}
		var segs []seg
		for off := 0; off < total; {
			l := rng.Intn(300) + 1
			if off+l > total {
				l = total - off
			}
			segs = append(segs, seg{off, stream[off : off+l]})
			off += l
		}
		rng.Shuffle(len(segs), func(i, j int) { segs[i], segs[j] = segs[j], segs[i] })
		b := newRecvBuf(64 * 1024)
		base := Seq(0xffffff00) // exercise wraparound too
		nxt := base
		for _, s := range segs {
			nxt = b.insert(nxt, base.Add(s.off), s.d)
		}
		if nxt.Diff(base) != total {
			return false
		}
		out := make([]byte, total)
		if b.read(out) != total {
			return false
		}
		return bytes.Equal(out, stream)
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRecvBufOverlaps(t *testing.T) {
	b := newRecvBuf(1024)
	nxt := Seq(0)
	nxt = b.insert(nxt, 10, []byte("cdef")) // ooo
	nxt = b.insert(nxt, 8, []byte("abcd"))  // overlaps ooo head
	if b.oooCount() == 0 {
		t.Fatal("expected out-of-order segments queued")
	}
	nxt = b.insert(nxt, 0, []byte("01234567")) // fills the hole
	if nxt != 14 {
		t.Fatalf("rcvNxt = %d, want 14", nxt)
	}
	out := make([]byte, 64)
	r := b.read(out)
	if string(out[:r]) != "01234567abcdef" {
		t.Fatalf("stream = %q", out[:r])
	}
}

func TestRecvBufWindow(t *testing.T) {
	b := newRecvBuf(100)
	if b.window() != 100 {
		t.Fatalf("window = %d", b.window())
	}
	b.insert(0, 0, make([]byte, 60))
	if b.window() != 40 {
		t.Fatalf("window = %d", b.window())
	}
	// Overfill attempts are capped at the window.
	nxt := b.insert(60, 60, make([]byte, 100))
	if nxt != 100 || b.window() != 0 {
		t.Fatalf("nxt=%d window=%d", nxt, b.window())
	}
}

func TestSnapshotRestoreMidConnection(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	// Move some data so the state is non-trivial.
	data := pattern(5000)
	got := n.pump(n.a, n.b, data, 2000)
	checkIntegrity(t, data, got)

	// Hand the b side to a "new owner" (registry -> library transfer).
	snap := n.b.Snapshot()
	if snap.Size() <= 0 {
		t.Fatal("snapshot size must be positive")
	}
	bEvents := &events{}
	nb := Restore(snap, bEvents.callbacks(Callbacks{
		Send: n.b.cb.Send,
	}))
	n.b = nb
	if nb.State() != Established {
		t.Fatalf("restored state = %v", nb.State())
	}

	// The restored connection keeps working in both directions.
	data2 := pattern(8000)
	got2 := n.pump(n.a, n.b, data2, 4000)
	checkIntegrity(t, data2, got2)
	data3 := pattern(3000)
	got3 := n.pump(n.b, n.a, data3, 4000)
	checkIntegrity(t, data3, got3)
}

func TestSnapshotCarriesBufferedData(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	n.a.Write([]byte("buffered but unacked"))
	// Don't deliver: snapshot with data in the send buffer.
	snap := n.a.Snapshot()
	if len(snap.SndData) == 0 {
		t.Fatal("snapshot lost send-buffer data")
	}
	na := Restore(snap, Callbacks{Send: n.a.cb.Send})
	n.a = na
	n.run(30)
	buf := make([]byte, 64)
	r := n.b.Read(buf)
	if string(buf[:r]) != "buffered but unacked" {
		t.Fatalf("restored transfer = %q", buf[:r])
	}
}

func TestTableLookup(t *testing.T) {
	tb := NewTable()
	l1 := Endpoint{IP: ipv4.Addr{10, 0, 0, 1}, Port: 80}
	p1 := Endpoint{IP: ipv4.Addr{10, 0, 0, 2}, Port: 2000}
	c := NewConn(Config{}, l1, p1, Callbacks{})
	lst := NewConn(Config{}, Endpoint{IP: ipv4.Addr{10, 0, 0, 1}, Port: 80}, Endpoint{}, Callbacks{})

	if err := tb.InsertListener(lst); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(c); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(c); err == nil {
		t.Fatal("duplicate insert allowed")
	}
	if got, ok := tb.Lookup(l1, p1); !ok || got != c {
		t.Fatal("exact lookup failed")
	}
	other := Endpoint{IP: ipv4.Addr{10, 0, 0, 3}, Port: 999}
	if got, ok := tb.Lookup(l1, other); !ok || got != lst {
		t.Fatal("listener fallback failed")
	}
	if _, ok := tb.Lookup(Endpoint{IP: l1.IP, Port: 81}, other); ok {
		t.Fatal("lookup on unused port matched")
	}
	tb.Remove(c)
	if got, ok := tb.Lookup(l1, p1); !ok || got != lst {
		t.Fatal("after remove, should fall back to listener")
	}
	tb.RemoveListener(80)
	if _, ok := tb.Lookup(l1, p1); ok {
		t.Fatal("lookup matched after listener removal")
	}
	count := 0
	tb.Each(func(*Conn) { count++ })
	if count != 0 || tb.Len() != 0 {
		t.Fatalf("table not empty: %d", count)
	}
}

func TestPortAlloc(t *testing.T) {
	a := NewPortAlloc()
	if !a.Reserve(80) {
		t.Fatal("reserve free port failed")
	}
	if a.Reserve(80) {
		t.Fatal("double reserve allowed")
	}
	p1, err1 := a.Ephemeral()
	p2, err2 := a.Ephemeral()
	if err1 != nil || err2 != nil {
		t.Fatalf("ephemeral errors: %v, %v", err1, err2)
	}
	if p1 == p2 || p1 < 1024 || p2 < 1024 {
		t.Fatalf("ephemeral ports %d, %d", p1, p2)
	}
	a.Release(p1)
	if !a.Reserve(p1) {
		t.Fatal("released port not reusable")
	}
}

// TestPortAllocExhaustion pins the churn-world fix: an allocator whose
// whole range is in use must return ErrPortExhausted instead of spinning
// forever, and must recover once a port is released.
func TestPortAllocExhaustion(t *testing.T) {
	a := NewPortAllocRange(100, 104)
	got := map[uint16]bool{}
	for i := 0; i < 4; i++ {
		p, err := a.Ephemeral()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if p < 100 || p >= 104 || got[p] {
			t.Fatalf("alloc %d: bad or duplicate port %d", i, p)
		}
		got[p] = true
	}
	if _, err := a.Ephemeral(); err != ErrPortExhausted {
		t.Fatalf("exhausted alloc: err = %v, want ErrPortExhausted", err)
	}
	a.Release(102)
	p, err := a.Ephemeral()
	if err != nil || p != 102 {
		t.Fatalf("post-release alloc: %d, %v (want 102)", p, err)
	}
	if lo, hi := a.EphemeralRange(); lo != 100 || hi != 104 {
		t.Fatalf("range = [%d, %d)", lo, hi)
	}
}

func TestStateStrings(t *testing.T) {
	if Established.String() != "ESTABLISHED" || TimeWait.String() != "TIME_WAIT" {
		t.Fatal("state names broken")
	}
	if State(99).String() == "" {
		t.Fatal("out-of-range state name empty")
	}
	h := Header{SrcPort: 1, DstPort: 2, Flags: FlagSYN | FlagACK}
	if h.String() == "" || flagNames(h.Flags) != "S." {
		t.Fatalf("header string %q flags %q", h.String(), flagNames(h.Flags))
	}
	e := Endpoint{IP: ipv4.Addr{1, 2, 3, 4}, Port: 80}
	if e.String() != "1.2.3.4:80" {
		t.Fatalf("endpoint string %q", e.String())
	}
}

func TestMakeRSTRules(t *testing.T) {
	local := Endpoint{IP: ipv4.Addr{10, 0, 0, 1}, Port: 80}
	peer := Endpoint{IP: ipv4.Addr{10, 0, 0, 2}, Port: 5000}
	// RST in response to a SYN (no ACK): RST|ACK with ack = seq+1.
	syn := Header{SrcPort: peer.Port, DstPort: local.Port, Seq: 700, Flags: FlagSYN}
	r, b := MakeRST(syn, 0, 40, local, peer)
	if r == nil || r.Flags != FlagRST|FlagACK || r.Ack != 701 {
		t.Fatalf("rst for syn = %+v", r)
	}
	if h, err := Decode(b, local.IP, peer.IP); err != nil || h.Flags&FlagRST == 0 {
		t.Fatalf("encoded rst invalid: %v", err)
	}
	// RST in response to an ACK: seq = their ack, no ACK flag.
	ack := Header{SrcPort: peer.Port, DstPort: local.Port, Seq: 700, Ack: 4242, Flags: FlagACK}
	r, _ = MakeRST(ack, 0, 40, local, peer)
	if r == nil || r.Flags != FlagRST || r.Seq != 4242 {
		t.Fatalf("rst for ack = %+v", r)
	}
	// Never reset a reset.
	rst := Header{Flags: FlagRST}
	if r, _ := MakeRST(rst, 0, 40, local, peer); r != nil {
		t.Fatal("generated RST in response to RST")
	}
}

func TestTimeWaitAcksRetransmittedFIN(t *testing.T) {
	cfg := defaultCfg()
	cfg.TimeWaitTicks = 6
	n := newTestNet(t, cfg)
	n.connect()
	n.a.Close()
	n.deliver()
	n.b.Close()
	// Drop b's FIN once so b retransmits it into a's TIME_WAIT.
	first := true
	n.drop = func(dir string, h Header, pl int) bool {
		if dir == "b->a" && h.Flags&FlagFIN != 0 && first {
			first = false
			return true
		}
		return false
	}
	n.deliver()
	n.drop = nil
	n.run(60)
	if n.b.State() != Closed {
		t.Fatalf("b stuck in %v after FIN retransmission", n.b.State())
	}
}
