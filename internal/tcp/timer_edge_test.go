package tcp

import "testing"

// A dead peer is declared down after exactly keepMaxProbes unanswered
// keepalive probes — the close path must not emit a ninth probe.
func TestKeepaliveDropsAfterExactlyMaxProbes(t *testing.T) {
	cfg := defaultCfg()
	cfg.KeepAliveTicks = 4 // 2 s idle
	n := newTestNet(t, cfg)
	n.connect()
	// Peer falls off the network right after establishment: blackhole both
	// directions, counting a's keepalive probes on the way out (zero
	// payload, bare ACK, seq = snd_una-1 — below the window by design).
	probes := 0
	n.drop = func(dir string, h Header, pl int) bool {
		if dir == "a->b" && pl == 0 && h.Flags == FlagACK && h.Seq == n.a.sndUna.Add(-1) {
			probes++
		}
		return true
	}
	n.run(4 * 5 * (keepMaxProbes + 3))
	if n.a.State() != Closed || n.aEvents.closedErr != ErrKeepalive {
		t.Fatalf("state=%v err=%v, want Closed/ErrKeepalive", n.a.State(), n.aEvents.closedErr)
	}
	if probes != keepMaxProbes {
		t.Fatalf("observed %d probes on the wire, want exactly %d", probes, keepMaxProbes)
	}
	if got := n.a.Stats().KeepProbes; got != keepMaxProbes {
		t.Fatalf("stats.KeepProbes = %d, want %d", got, keepMaxProbes)
	}
}

// The persist backoff doubles from persistMin and caps at persistMax — it
// must neither exceed the cap nor stop re-arming once capped.
func TestPersistBackoffCapsAtPersistMax(t *testing.T) {
	cfg := defaultCfg()
	cfg.MSS = 512
	n := newTestNet(t, cfg)
	n.connect()
	// Fill b's receive buffer without reading until the window closes.
	data := pattern(12000)
	written := n.a.Write(data)
	for u := 0; u < 400; u++ {
		if written < len(data) {
			written += n.a.Write(data[written:])
		}
		n.tick()
	}
	if n.b.rcv.window() != 0 {
		t.Fatalf("receive window = %d, want 0", n.b.rcv.window())
	}
	// Blackhole the wire and fire the persist timeout directly, recording
	// each re-armed interval from a fresh shift.
	n.drop = func(dir string, h Header, pl int) bool { return true }
	n.a.persistShift = 0
	var gaps []int
	for i := 0; i < 8; i++ {
		n.a.persistTimeout()
		gaps = append(gaps, n.a.tPersist)
	}
	want := []int{20, 40, 80, 120, 120, 120, 120, 120}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("persist gaps = %v, want %v", gaps, want)
		}
		if gaps[i] > persistMax {
			t.Fatalf("gap %d exceeds persistMax", gaps[i])
		}
	}
	if n.a.tPersist == 0 {
		t.Fatal("persist timer not re-armed at the cap")
	}
}
