package tcp

import (
	"errors"
	"fmt"
	"sort"
)

// FourTuple identifies a connection.
type FourTuple struct {
	Local, Peer Endpoint
}

// Table is the protocol-control-block lookup structure the monolithic
// organizations use to demultiplex inbound segments: exact four-tuple match
// first, then a listener on the local port. (In the user-level-library
// organization this lookup is replaced by the network I/O module's per-
// endpoint filters and the AN1's BQI, which is the paper's point.)
type Table struct {
	conns     map[FourTuple]*Conn
	listeners map[uint16]*Conn
}

// NewTable creates an empty PCB table.
func NewTable() *Table {
	return &Table{
		conns:     make(map[FourTuple]*Conn),
		listeners: make(map[uint16]*Conn),
	}
}

// Insert registers a fully specified connection. It fails if the four-tuple
// is taken.
func (t *Table) Insert(c *Conn) error {
	k := FourTuple{c.Local(), c.Peer()}
	if _, dup := t.conns[k]; dup {
		return fmt.Errorf("tcp: connection %v already exists", k)
	}
	t.conns[k] = c
	return nil
}

// InsertListener registers a listening pcb on a local port.
func (t *Table) InsertListener(c *Conn) error {
	p := c.Local().Port
	if _, dup := t.listeners[p]; dup {
		return fmt.Errorf("tcp: port %d already listening", p)
	}
	t.listeners[p] = c
	return nil
}

// Remove deletes a connection.
func (t *Table) Remove(c *Conn) {
	delete(t.conns, FourTuple{c.Local(), c.Peer()})
}

// RemoveListener deletes a listener by port.
func (t *Table) RemoveListener(port uint16) {
	delete(t.listeners, port)
}

// Lookup finds the pcb for a segment received for local from peer:
// connection match first, then listener.
func (t *Table) Lookup(local, peer Endpoint) (*Conn, bool) {
	if c, ok := t.conns[FourTuple{local, peer}]; ok {
		return c, true
	}
	if c, ok := t.listeners[local.Port]; ok {
		return c, true
	}
	return nil, false
}

// LookupExact finds only a fully specified connection.
func (t *Table) LookupExact(local, peer Endpoint) (*Conn, bool) {
	c, ok := t.conns[FourTuple{local, peer}]
	return c, ok
}

// Listener returns the listening pcb on a port.
func (t *Table) Listener(port uint16) (*Conn, bool) {
	c, ok := t.listeners[port]
	return c, ok
}

// Len returns the number of registered connections (excluding listeners).
func (t *Table) Len() int { return len(t.conns) }

// Each calls fn for every registered connection in a deterministic order
// (four-tuple order for connections, port order for listeners); fn must not
// mutate the table (collect first, then act). Map-range order would let two
// connections firing timers in the same tick swap their transmissions
// between runs, which the seeded replay matrix forbids.
func (t *Table) Each(fn func(*Conn)) {
	keys := make([]FourTuple, 0, len(t.conns))
	for k := range t.conns {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	for _, k := range keys {
		fn(t.conns[k])
	}
	ports := make([]int, 0, len(t.listeners))
	for p := range t.listeners {
		ports = append(ports, int(p))
	}
	sort.Ints(ports)
	for _, p := range ports {
		fn(t.listeners[uint16(p)])
	}
}

// less orders four-tuples (local port, peer port, local IP, peer IP).
func (a FourTuple) less(b FourTuple) bool {
	if a.Local.Port != b.Local.Port {
		return a.Local.Port < b.Local.Port
	}
	if a.Peer.Port != b.Peer.Port {
		return a.Peer.Port < b.Peer.Port
	}
	if a.Local.IP != b.Local.IP {
		return ipLess(a.Local.IP, b.Local.IP)
	}
	return ipLess(a.Peer.IP, b.Peer.IP)
}

func ipLess(a, b [4]byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// ErrPortExhausted reports that every port in the ephemeral range is in
// use. Callers surface it as a setup failure; it resolves itself as
// TIME_WAIT states expire and teardowns release their references.
var ErrPortExhausted = errors.New("tcp: ephemeral port space exhausted")

// PortAlloc hands out ephemeral local ports, BSD-style ([1024, 5000) by
// default; NewPortAllocRange widens it for high-churn worlds). Ports are
// reference-counted: a listener and the passive connections accepted
// through it share the same local port, each holding one reference, and the
// port is free again only when the last holder releases it.
type PortAlloc struct {
	lo, hi uint16 // ephemeral range [lo, hi)
	next   uint16
	inUse  map[uint16]int
}

// NewPortAlloc creates an allocator over the classic BSD range.
func NewPortAlloc() *PortAlloc {
	return NewPortAllocRange(1024, 5000)
}

// NewPortAllocRange creates an allocator handing out ephemeral ports from
// [lo, hi). A 10k-connection churn world exhausts the ~4k BSD default
// immediately; such worlds configure e.g. [1024, 65535).
func NewPortAllocRange(lo, hi uint16) *PortAlloc {
	if hi <= lo {
		panic(fmt.Sprintf("tcp: bad ephemeral range [%d, %d)", lo, hi))
	}
	return &PortAlloc{lo: lo, hi: hi, next: lo, inUse: make(map[uint16]int)}
}

// EphemeralRange reports the configured [lo, hi) range.
func (a *PortAlloc) EphemeralRange() (lo, hi uint16) { return a.lo, a.hi }

// Reserve claims a specific port (bind); it reports whether it was free.
func (a *PortAlloc) Reserve(p uint16) bool {
	if a.inUse[p] > 0 {
		return false
	}
	a.inUse[p] = 1
	return true
}

// Retain adds a reference to a port (an accepted connection sharing its
// listener's port). Retaining an unallocated port allocates it.
func (a *PortAlloc) Retain(p uint16) { a.inUse[p]++ }

// Ephemeral allocates the next free ephemeral port, scanning at most one
// full cycle of the range: with every port in use it returns
// ErrPortExhausted rather than spinning forever.
func (a *PortAlloc) Ephemeral() (uint16, error) {
	for i := int(a.hi) - int(a.lo); i > 0; i-- {
		p := a.next
		a.next++
		if a.next >= a.hi {
			a.next = a.lo
		}
		if a.inUse[p] == 0 {
			a.inUse[p] = 1
			return p, nil
		}
	}
	return 0, ErrPortExhausted
}

// Release drops one reference; the port is free when the count hits zero.
func (a *PortAlloc) Release(p uint16) {
	if n := a.inUse[p]; n > 1 {
		a.inUse[p] = n - 1
	} else {
		delete(a.inUse, p)
	}
}

// InUse returns the number of allocated ports. Crash-reclamation tests
// assert this returns to zero after an application dies.
func (a *PortAlloc) InUse() int { return len(a.inUse) }
