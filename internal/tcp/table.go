package tcp

import "fmt"

// FourTuple identifies a connection.
type FourTuple struct {
	Local, Peer Endpoint
}

// Table is the protocol-control-block lookup structure the monolithic
// organizations use to demultiplex inbound segments: exact four-tuple match
// first, then a listener on the local port. (In the user-level-library
// organization this lookup is replaced by the network I/O module's per-
// endpoint filters and the AN1's BQI, which is the paper's point.)
type Table struct {
	conns     map[FourTuple]*Conn
	listeners map[uint16]*Conn
}

// NewTable creates an empty PCB table.
func NewTable() *Table {
	return &Table{
		conns:     make(map[FourTuple]*Conn),
		listeners: make(map[uint16]*Conn),
	}
}

// Insert registers a fully specified connection. It fails if the four-tuple
// is taken.
func (t *Table) Insert(c *Conn) error {
	k := FourTuple{c.Local(), c.Peer()}
	if _, dup := t.conns[k]; dup {
		return fmt.Errorf("tcp: connection %v already exists", k)
	}
	t.conns[k] = c
	return nil
}

// InsertListener registers a listening pcb on a local port.
func (t *Table) InsertListener(c *Conn) error {
	p := c.Local().Port
	if _, dup := t.listeners[p]; dup {
		return fmt.Errorf("tcp: port %d already listening", p)
	}
	t.listeners[p] = c
	return nil
}

// Remove deletes a connection.
func (t *Table) Remove(c *Conn) {
	delete(t.conns, FourTuple{c.Local(), c.Peer()})
}

// RemoveListener deletes a listener by port.
func (t *Table) RemoveListener(port uint16) {
	delete(t.listeners, port)
}

// Lookup finds the pcb for a segment received for local from peer:
// connection match first, then listener.
func (t *Table) Lookup(local, peer Endpoint) (*Conn, bool) {
	if c, ok := t.conns[FourTuple{local, peer}]; ok {
		return c, true
	}
	if c, ok := t.listeners[local.Port]; ok {
		return c, true
	}
	return nil, false
}

// LookupExact finds only a fully specified connection.
func (t *Table) LookupExact(local, peer Endpoint) (*Conn, bool) {
	c, ok := t.conns[FourTuple{local, peer}]
	return c, ok
}

// Listener returns the listening pcb on a port.
func (t *Table) Listener(port uint16) (*Conn, bool) {
	c, ok := t.listeners[port]
	return c, ok
}

// Len returns the number of registered connections (excluding listeners).
func (t *Table) Len() int { return len(t.conns) }

// Each calls fn for every registered connection; fn must not mutate the
// table (collect first, then act).
func (t *Table) Each(fn func(*Conn)) {
	for _, c := range t.conns {
		fn(c)
	}
	for _, c := range t.listeners {
		fn(c)
	}
}

// PortAlloc hands out ephemeral local ports, BSD-style (1024..5000). Ports
// are reference-counted: a listener and the passive connections accepted
// through it share the same local port, each holding one reference, and the
// port is free again only when the last holder releases it.
type PortAlloc struct {
	next  uint16
	inUse map[uint16]int
}

// NewPortAlloc creates an allocator.
func NewPortAlloc() *PortAlloc {
	return &PortAlloc{next: 1024, inUse: make(map[uint16]int)}
}

// Reserve claims a specific port (bind); it reports whether it was free.
func (a *PortAlloc) Reserve(p uint16) bool {
	if a.inUse[p] > 0 {
		return false
	}
	a.inUse[p] = 1
	return true
}

// Retain adds a reference to a port (an accepted connection sharing its
// listener's port). Retaining an unallocated port allocates it.
func (a *PortAlloc) Retain(p uint16) { a.inUse[p]++ }

// Ephemeral allocates the next free ephemeral port.
func (a *PortAlloc) Ephemeral() uint16 {
	for {
		p := a.next
		a.next++
		if a.next >= 5000 {
			a.next = 1024
		}
		if a.inUse[p] == 0 {
			a.inUse[p] = 1
			return p
		}
	}
}

// Release drops one reference; the port is free when the count hits zero.
func (a *PortAlloc) Release(p uint16) {
	if n := a.inUse[p]; n > 1 {
		a.inUse[p] = n - 1
	} else {
		delete(a.inUse, p)
	}
}

// InUse returns the number of allocated ports. Crash-reclamation tests
// assert this returns to zero after an application dies.
func (a *PortAlloc) InUse() int { return len(a.inUse) }
