package tcp

// Snapshot is the transferable state of an established connection. The
// registry server completes the three-way handshake on the application's
// behalf and then transfers the connection to the library ("it takes about
// 1.4 ms to transfer and set up TCP state to user level"); Snapshot/Restore
// realize that handoff. The same mechanism serves connection inheritance in
// the other direction when an application exits and the registry must hold
// the connection through its 2*MSL quiet period.
type Snapshot struct {
	Cfg         Config
	Local, Peer Endpoint
	State       State

	ISS, IRS               Seq
	SndUna, SndNxt, SndMax Seq
	SndWnd                 int
	SndWl1, SndWl2         Seq
	MaxSndWnd              int
	Cwnd, Ssthresh         int
	RcvNxt, RcvAdv         Seq
	SndMSS                 int
	RxtCur                 int
	SRTT, RTTVar           int

	// Unacknowledged send data and unread receive data travel with the
	// connection (normally empty at handoff time).
	SndData  []byte
	SndStart Seq
	RcvReady []byte
}

// Size returns the number of bytes the state transfer moves, for cost
// charging.
func (s *Snapshot) Size() int {
	return 96 + len(s.SndData) + len(s.RcvReady)
}

// Snapshot captures the connection state for transfer.
func (c *Conn) Snapshot() Snapshot {
	return Snapshot{
		Cfg:   c.cfg,
		Local: c.local, Peer: c.peer,
		State: c.state,
		ISS:   c.iss, IRS: c.irs,
		SndUna: c.sndUna, SndNxt: c.sndNxt, SndMax: c.sndMax,
		SndWnd: c.sndWnd, SndWl1: c.sndWl1, SndWl2: c.sndWl2,
		MaxSndWnd: c.maxSndWnd,
		Cwnd:      c.cwnd, Ssthresh: c.ssthresh,
		RcvNxt: c.rcvNxt, RcvAdv: c.rcvAdv,
		SndMSS: c.sndMSS,
		RxtCur: c.rxtCur,
		SRTT:   c.srtt, RTTVar: c.rttvar,
		SndData:  append([]byte(nil), c.snd.data...),
		SndStart: c.snd.start,
		RcvReady: append([]byte(nil), c.rcv.ready...),
	}
}

// Restore builds a live connection from transferred state, attaching the
// new owner's callbacks. Timers restart conservatively (a retransmission
// timer is armed if data is outstanding).
func Restore(s Snapshot, cb Callbacks) *Conn {
	c := NewConn(s.Cfg, s.Local, s.Peer, cb)
	c.state = s.State
	c.iss, c.irs = s.ISS, s.IRS
	c.sndUna, c.sndNxt, c.sndMax = s.SndUna, s.SndNxt, s.SndMax
	c.sndWnd, c.sndWl1, c.sndWl2 = s.SndWnd, s.SndWl1, s.SndWl2
	c.maxSndWnd = s.MaxSndWnd
	c.cwnd, c.ssthresh = s.Cwnd, s.Ssthresh
	c.rcvNxt, c.rcvAdv = s.RcvNxt, s.RcvAdv
	c.sndMSS = s.SndMSS
	c.rxtCur = s.RxtCur
	c.srtt, c.rttvar = s.SRTT, s.RTTVar
	c.snd.data = append([]byte(nil), s.SndData...)
	c.snd.start = s.SndStart
	c.rcv.ready = append([]byte(nil), s.RcvReady...)
	if c.sndNxt != c.sndUna {
		c.startRexmt()
	}
	if c.state == TimeWait {
		c.setTimer(&c.t2MSL, c.cfg.TimeWaitTicks)
	}
	if c.state == Established && c.cfg.KeepAliveTicks > 0 {
		// Restore bypasses setState, which normally arms the keepalive on
		// entering Established; without this a handed-off connection would
		// never detect a dead peer that goes silent right after transfer.
		c.setTimer(&c.tKeep, c.cfg.KeepAliveTicks)
	}
	return c
}
