package tcp

import "testing"

// The Established notification must observe a quiescent TCB. The registry
// snapshots the connection from this callback to hand it off to the
// library; on the passive side the state transition happens inside ACK
// processing, and a snapshot taken before the bookkeeping advances sndUna
// past the SYN ships a phantom unacked byte — the restored engine then
// waits forever for an ACK that can never come, wedging any server that
// writes first.
func TestEstablishedCallbackSeesQuiescentTCB(t *testing.T) {
	n := newTestNet(t, Config{})
	for _, c := range []*Conn{n.a, n.b} {
		c := c
		inner := c.cb.OnEstablished
		c.cb.OnEstablished = func() {
			snap := c.Snapshot()
			if snap.State != Established {
				t.Errorf("%v: snapshot at establishment in state %v", c.local, snap.State)
			}
			if snap.SndUna != snap.SndNxt {
				t.Errorf("%v: snapshot at establishment has sndUna=%d sndNxt=%d — phantom unacked SYN",
					c.local, snap.SndUna, snap.SndNxt)
			}
			if inner != nil {
				inner()
			}
		}
	}
	n.connect()
	if n.aEvents.established != 1 || n.bEvents.established != 1 {
		t.Fatalf("established callbacks: a=%d b=%d, want 1 each",
			n.aEvents.established, n.bEvents.established)
	}
}
