package tcp

import "testing"

// A connection that closes with data still buffered against a zero window
// must keep probing: the FIN is queued behind the data, so if the peer's
// window-update ACK is lost and no persist timer runs, FIN_WAIT_1 deadlocks
// forever. This pins the fix that extended persist arming from ESTABLISHED
// to every state that can still emit stream data (found by the conformance
// explorer's zero-window schedules).
func TestPersistProbesAfterCloseInFinWait1(t *testing.T) {
	cfg := Config{MSS: 512, RcvBufSize: 1024, NoDelayedAck: true}
	n := newTestNet(t, cfg)
	n.connect()

	// Fill the peer's receive buffer without reading, then close with data
	// still queued. The final ACK (window 0) arrives after the close, so the
	// persist timer is armed in FIN_WAIT_1, not ESTABLISHED.
	data := pattern(4096)
	written := n.a.Write(data)
	if written != len(data) {
		t.Fatalf("write: %d/%d accepted", written, len(data))
	}
	n.a.Close()
	if n.a.State() != FinWait1 {
		t.Fatalf("state after close: %v", n.a.State())
	}
	n.deliver()

	// The window is now closed and everything sent has been acked: the only
	// thing that can restart the transfer is a persist probe.
	if n.a.Stats().BytesSent >= int64(len(data)) {
		t.Fatalf("peer window never closed (sent %d)", n.a.Stats().BytesSent)
	}

	// Drain the peer — and lose the window-update ACK its read generates.
	drops := 0
	n.drop = func(dir string, h Header, pl int) bool {
		if dir == "b->a" && drops == 0 {
			drops++
			return true
		}
		return false
	}
	buf := make([]byte, 4096)
	var got []byte
	for {
		r := n.b.Read(buf)
		if r == 0 {
			break
		}
		got = append(got, buf[:r]...)
	}
	if drops != 1 {
		t.Fatalf("window update not dropped (drops=%d)", drops)
	}

	// Only the persist machinery can discover the reopened window now.
	for u := 0; u < 2000 && !n.b.EOF(); u++ {
		n.tick()
		for {
			r := n.b.Read(buf)
			if r == 0 {
				break
			}
			got = append(got, buf[:r]...)
		}
	}
	if !n.b.EOF() {
		t.Fatalf("transfer deadlocked in %v: read %d/%d, probes=%d",
			n.a.State(), len(got), len(data), n.a.Stats().WindowProbes)
	}
	checkIntegrity(t, data, got)
	if n.a.Stats().WindowProbes == 0 {
		t.Error("no window probes sent: transfer resumed some other way")
	}
	if n.a.State() != FinWait2 {
		t.Errorf("a state = %v, want FIN_WAIT_2 (FIN acked, peer not closed)", n.a.State())
	}
}
