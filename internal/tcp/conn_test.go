package tcp

import (
	"testing"

	"ulp/internal/pkt"
)

func TestHandshake(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	if n.aEvents.established != 1 || n.bEvents.established != 1 {
		t.Fatalf("established events: a=%d b=%d", n.aEvents.established, n.bEvents.established)
	}
	// Three segments: SYN, SYN|ACK, ACK.
	if got := n.a.Stats().SegsSent + n.b.Stats().SegsSent; got != 3 {
		t.Fatalf("handshake used %d segments, want 3", got)
	}
}

func TestMSSNegotiation(t *testing.T) {
	cfgA := Config{MSS: 1460}
	cfgB := Config{MSS: 512}
	n := newTestNet(t, cfgA)
	// Rebuild b with a smaller MSS.
	n.b = NewConn(cfgB, n.b.Local(), n.b.Peer(), n.bEvents.callbacks(Callbacks{
		Send: n.b.cb.Send,
	}))
	n.connect()
	if n.a.EffectiveMSS() != 512 {
		t.Fatalf("a effective MSS = %d, want 512 (peer's option)", n.a.EffectiveMSS())
	}
	if n.b.EffectiveMSS() != 512 {
		t.Fatalf("b effective MSS = %d, want 512 (own limit)", n.b.EffectiveMSS())
	}
}

func TestBulkTransfer(t *testing.T) {
	for _, size := range []int{1, 100, 1460, 1461, 4096, 50000} {
		n := newTestNet(t, defaultCfg())
		n.connect()
		data := pattern(size)
		got := n.pump(n.a, n.b, data, 10000)
		checkIntegrity(t, data, got)
	}
}

func TestBidirectionalTransfer(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	dataA, dataB := pattern(20000), pattern(15000)
	var gotA, gotB []byte
	wa, wb := 0, 0
	buf := make([]byte, 4096)
	for u := 0; u < 5000; u++ {
		if wa < len(dataA) {
			wa += n.a.Write(dataA[wa:])
		}
		if wb < len(dataB) {
			wb += n.b.Write(dataB[wb:])
		}
		for {
			r := n.b.Read(buf)
			gotA = append(gotA, buf[:r]...)
			if r == 0 {
				break
			}
		}
		for {
			r := n.a.Read(buf)
			gotB = append(gotB, buf[:r]...)
			if r == 0 {
				break
			}
		}
		if len(gotA) == len(dataA) && len(gotB) == len(dataB) {
			break
		}
		n.tick()
	}
	checkIntegrity(t, dataA, gotA)
	checkIntegrity(t, dataB, gotB)
}

func TestSequenceWraparound(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.b.OpenListen()
	n.b.SetISS(Seq(0xffffff00)) // wraps during transfer
	n.a.OpenActive(Seq(0xfffffff0))
	n.deliver()
	if n.a.State() != Established {
		t.Fatalf("state = %v", n.a.State())
	}
	data := pattern(30000)
	got := n.pump(n.a, n.b, data, 10000)
	checkIntegrity(t, data, got)
}

func TestDelayedAck(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	base := n.b.Stats().AcksSent
	n.a.Write([]byte("ping"))
	n.deliver()
	if n.b.Stats().AcksSent != base {
		t.Fatal("single segment acked immediately despite delayed-ack policy")
	}
	if n.b.Stats().DelayedAcks == 0 {
		t.Fatal("delayed ack not registered")
	}
	n.run(2) // fast timer fires within 200 ms
	if n.b.Stats().AcksSent == base {
		t.Fatal("delayed ack never flushed by fast timer")
	}
}

func TestAckEveryOtherSegment(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	// Warm the congestion window so two segments can be in flight.
	warm := pattern(20000)
	checkIntegrity(t, warm, n.pump(n.a, n.b, warm, 4000))
	// Two back-to-back full segments: the second forces an immediate ACK.
	n.a.Write(pattern(2 * 1460))
	base := n.b.Stats().AcksSent
	n.deliver()
	if n.b.Stats().AcksSent <= base {
		t.Fatal("second in-order segment did not force an ACK")
	}
}

func TestNoDelayedAckOption(t *testing.T) {
	cfg := defaultCfg()
	cfg.NoDelayedAck = true
	n := newTestNet(t, cfg)
	n.connect()
	base := n.b.Stats().AcksSent
	n.a.Write([]byte("x"))
	n.deliver()
	if n.b.Stats().AcksSent == base {
		t.Fatal("NoDelayedAck did not ack immediately")
	}
}

func TestNagleCoalescing(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	// First small write goes out (idle); subsequent small writes must
	// coalesce until the ACK returns.
	segs := func() int { return n.a.Stats().SegsSent }
	base := segs()
	n.a.Write([]byte("a"))
	if segs() != base+1 {
		t.Fatal("idle small write should transmit immediately")
	}
	n.a.Write([]byte("b"))
	n.a.Write([]byte("c"))
	if segs() != base+1 {
		t.Fatalf("Nagle violated: %d segments for pending ACK", segs()-base)
	}
	n.run(5) // ACK returns, coalesced segment flushes
	var buf [16]byte
	total := 0
	for {
		r := n.b.Read(buf[total:])
		if r == 0 {
			break
		}
		total += r
	}
	if string(buf[:total]) != "abc" {
		t.Fatalf("received %q", buf[:total])
	}
}

func TestNoDelayOption(t *testing.T) {
	cfg := defaultCfg()
	cfg.NoDelay = true
	n := newTestNet(t, cfg)
	n.connect()
	base := n.a.Stats().SegsSent
	n.a.Write([]byte("a"))
	n.a.Write([]byte("b"))
	if n.a.Stats().SegsSent != base+2 {
		t.Fatalf("NoDelay sent %d segments, want 2", n.a.Stats().SegsSent-base)
	}
}

func TestOrderlyClose(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	n.a.Close()
	n.deliver()
	if n.a.State() != FinWait2 {
		t.Fatalf("active closer state = %v, want FIN_WAIT_2", n.a.State())
	}
	if n.b.State() != CloseWait {
		t.Fatalf("passive closer state = %v, want CLOSE_WAIT", n.b.State())
	}
	if !n.b.EOF() {
		t.Fatal("passive side did not see EOF")
	}
	n.b.Close()
	n.deliver()
	if n.b.State() != Closed {
		t.Fatalf("passive state after close = %v, want CLOSED", n.b.State())
	}
	if n.a.State() != TimeWait {
		t.Fatalf("active state = %v, want TIME_WAIT", n.a.State())
	}
	if n.bEvents.closedErr != nil {
		t.Fatalf("passive side closed with error %v", n.bEvents.closedErr)
	}
	// 2*MSL drains (shorten by config in other tests; here run it out).
	n.run(2 * 60 * 5)
	if n.a.State() != Closed {
		t.Fatalf("TIME_WAIT did not expire: %v", n.a.State())
	}
	if n.aEvents.closedErr != nil {
		t.Fatalf("active side closed with error %v", n.aEvents.closedErr)
	}
}

func TestCloseWithPendingData(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	data := pattern(10000)
	written := 0
	written += n.a.Write(data)
	n.a.Close() // FIN must follow the buffered data
	var got []byte
	buf := make([]byte, 4096)
	for u := 0; u < 2000 && !(n.b.EOF() && written == len(data)); u++ {
		if written < len(data) {
			written += n.a.Write(data[written:]) // Close forbids further writes
		}
		for {
			r := n.b.Read(buf)
			got = append(got, buf[:r]...)
			if r == 0 {
				break
			}
		}
		n.tick()
	}
	// Close means no more writes accepted.
	if written != len(data) {
		// The write after Close correctly returned 0 each round; only the
		// pre-close bytes arrive.
		data = data[:written]
	}
	for {
		r := n.b.Read(buf)
		got = append(got, buf[:r]...)
		if r == 0 {
			break
		}
	}
	checkIntegrity(t, data, got)
	if !n.b.EOF() {
		t.Fatal("EOF not delivered after data")
	}
}

func TestSimultaneousClose(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	// Both close before either FIN is delivered.
	n.a.Close()
	n.b.Close()
	n.deliver()
	if n.a.State() != TimeWait && n.a.State() != Closed {
		t.Fatalf("a state = %v", n.a.State())
	}
	if n.b.State() != TimeWait && n.b.State() != Closed {
		t.Fatalf("b state = %v", n.b.State())
	}
}

func TestSimultaneousOpen(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	// Both actively open toward each other.
	n.a.OpenActive(1000)
	n.b.OpenActive(2000)
	n.deliver()
	n.run(20)
	if n.a.State() != Established || n.b.State() != Established {
		t.Fatalf("simultaneous open: a=%v b=%v", n.a.State(), n.b.State())
	}
	data := pattern(5000)
	got := n.pump(n.a, n.b, data, 2000)
	checkIntegrity(t, data, got)
}

func TestAbortSendsRST(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	n.a.Abort()
	n.deliver()
	if n.b.State() != Closed {
		t.Fatalf("peer state after RST = %v", n.b.State())
	}
	if n.bEvents.closedErr != ErrReset {
		t.Fatalf("peer closed with %v, want ErrReset", n.bEvents.closedErr)
	}
}

func TestConnectionRefused(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	// b stays Closed; simulate the shell answering the SYN with MakeRST.
	n.b = NewConn(defaultCfg(), n.b.Local(), n.b.Peer(), Callbacks{})
	sawSyn := false
	n.a.cb.Send = func(seg *pkt.Buf, h Header, pl int) {
		if h.Flags&FlagSYN != 0 && !sawSyn {
			sawSyn = true
			r, rb := MakeRST(h, pl, 40, n.b.Local(), n.b.Peer())
			hh, err := Decode(rb, n.bIP, n.aIP)
			if err != nil {
				t.Fatalf("rst decode: %v", err)
			}
			_ = r
			n.a.Input(hh, nil)
		}
	}
	n.a.OpenActive(555)
	if n.a.State() != Closed {
		t.Fatalf("state = %v, want CLOSED after RST", n.a.State())
	}
	if n.aEvents.closedErr != ErrRefused {
		t.Fatalf("closed err = %v, want ErrRefused", n.aEvents.closedErr)
	}
}

func TestSynRetransmission(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.b.OpenListen()
	dropped := 0
	n.drop = func(dir string, h Header, pl int) bool {
		if dir == "a->b" && h.Flags&FlagSYN != 0 && dropped == 0 {
			dropped++
			return true
		}
		return false
	}
	n.a.OpenActive(1000)
	n.deliver()
	if n.a.State() == Established {
		t.Fatal("established despite dropped SYN")
	}
	n.run(40) // 3 s initial RTO + slack
	if n.a.State() != Established {
		t.Fatalf("SYN retransmission did not recover: %v", n.a.State())
	}
	if n.a.Stats().Rexmits == 0 {
		t.Fatal("no retransmission counted")
	}
}

func TestDataRetransmissionOnTimeout(t *testing.T) {
	cfg := defaultCfg()
	cfg.FastRetransmit = false // force timeout-driven recovery
	n := newTestNet(t, cfg)
	n.connect()
	dropped := false
	n.drop = func(dir string, h Header, pl int) bool {
		if dir == "a->b" && pl > 0 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	data := pattern(8000)
	got := n.pump(n.a, n.b, data, 10000)
	checkIntegrity(t, data, got)
	if n.a.Stats().Rexmits == 0 {
		t.Fatal("expected a timeout retransmission")
	}
}

func TestFastRetransmit(t *testing.T) {
	cfg := defaultCfg()
	cfg.MSS = 512
	cfg.SndBufSize = 8192
	cfg.RcvBufSize = 8192
	n := newTestNet(t, cfg)
	n.connect()
	// Grow cwnd first so a window of segments is in flight.
	warm := pattern(20000)
	checkIntegrity(t, warm, n.pump(n.a, n.b, warm, 5000))

	dropped := false
	n.drop = func(dir string, h Header, pl int) bool {
		if dir == "a->b" && pl > 0 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	data := pattern(20000)
	got := n.pump(n.a, n.b, data, 10000)
	checkIntegrity(t, data, got)
	if n.a.Stats().FastRexmits == 0 {
		t.Fatalf("expected fast retransmit (dupacks=%d, rexmits=%d)",
			n.a.Stats().DupAcksRcvd, n.a.Stats().Rexmits)
	}
}

func TestZeroWindowAndPersist(t *testing.T) {
	cfg := defaultCfg()
	cfg.MSS = 512
	n := newTestNet(t, cfg)
	n.connect()
	// Fill b's receive buffer without reading.
	data := pattern(12000)
	written := n.a.Write(data)
	for u := 0; u < 400; u++ {
		if written < len(data) {
			written += n.a.Write(data[written:])
		}
		n.tick()
	}
	if n.b.rcv.window() != 0 {
		t.Fatalf("receive window = %d, want 0 (app not reading)", n.b.rcv.window())
	}
	// Sender must be probing, not deadlocked, and must not overrun.
	n.run(200) // 20 s of persist probing
	if n.a.Stats().WindowProbes == 0 {
		t.Fatal("no window probes against zero window")
	}
	// Now drain and finish.
	var got []byte
	buf := make([]byte, 2048)
	for u := 0; u < 4000 && len(got) < len(data); u++ {
		for {
			r := n.b.Read(buf)
			got = append(got, buf[:r]...)
			if r == 0 {
				break
			}
		}
		if written < len(data) {
			written += n.a.Write(data[written:])
		}
		n.tick()
	}
	checkIntegrity(t, data, got)
}

func TestKeepaliveProbesAndDeath(t *testing.T) {
	cfg := defaultCfg()
	cfg.KeepAliveTicks = 4 // 2 s idle
	n := newTestNet(t, cfg)
	n.connect()
	// Healthy peer: probes answered, connection survives.
	n.run(100)
	if n.a.State() != Established {
		t.Fatalf("state = %v with healthy peer", n.a.State())
	}
	if n.a.Stats().KeepProbes == 0 {
		t.Fatal("no keepalive probes sent")
	}
	// Dead peer: drop everything b would send.
	n.drop = func(dir string, h Header, pl int) bool { return dir == "b->a" }
	n.run(4 * 5 * (keepMaxProbes + 3))
	if n.a.State() != Closed || n.aEvents.closedErr != ErrKeepalive {
		t.Fatalf("state=%v err=%v, want keepalive death", n.a.State(), n.aEvents.closedErr)
	}
}

func TestWindowLimitsInFlight(t *testing.T) {
	cfg := defaultCfg()
	cfg.MSS = 512
	cfg.RcvBufSize = 2048 // peer advertises at most 2048
	n := newTestNet(t, cfg)
	n.connect()
	n.a.Write(pattern(100000))
	// Without delivering, a can have at most 2048 bytes in flight... but
	// enqueue happens synchronously; check against snd bookkeeping instead:
	inFlight := n.a.sndNxt.Diff(n.a.sndUna)
	if inFlight > 2048 {
		t.Fatalf("in flight %d exceeds peer window 2048", inFlight)
	}
}

func TestSlowStartGrowth(t *testing.T) {
	cfg := defaultCfg()
	cfg.MSS = 512
	n := newTestNet(t, cfg)
	n.connect()
	if n.a.cwnd != 512 {
		t.Fatalf("initial cwnd = %d, want one segment", n.a.cwnd)
	}
	data := pattern(8000)
	got := n.pump(n.a, n.b, data, 4000)
	checkIntegrity(t, data, got)
	if n.a.cwnd <= 512 {
		t.Fatalf("cwnd did not grow: %d", n.a.cwnd)
	}
}

func TestRTTEstimation(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	data := pattern(30000)
	got := n.pump(n.a, n.b, data, 10000)
	checkIntegrity(t, data, got)
	if n.a.Stats().RTTSamples == 0 {
		t.Fatal("no RTT samples collected")
	}
	if n.a.RTO() < minRexmtTicks || n.a.RTO() > maxRexmtTicks {
		t.Fatalf("RTO %d outside clamp", n.a.RTO())
	}
}

func TestReceiverDataAfterFinIgnored(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	n.a.Close()
	n.deliver()
	// b in CLOSE_WAIT can still send; a must accept it (half-close).
	n.b.Write([]byte("late data"))
	n.deliver()
	buf := make([]byte, 64)
	r := n.a.Read(buf)
	if string(buf[:r]) != "late data" {
		t.Fatalf("half-close read = %q", buf[:r])
	}
}

func TestStatsAccounting(t *testing.T) {
	n := newTestNet(t, defaultCfg())
	n.connect()
	data := pattern(10000)
	got := n.pump(n.a, n.b, data, 4000)
	checkIntegrity(t, data, got)
	st := n.a.Stats()
	if st.BytesSent != int64(len(data)) {
		t.Fatalf("bytes sent = %d, want %d", st.BytesSent, len(data))
	}
	if rb := n.b.Stats().BytesRcvd; rb != int64(len(data)) {
		t.Fatalf("bytes rcvd = %d, want %d", rb, len(data))
	}
	if st.TimerOps == 0 {
		t.Fatal("timer operations not counted")
	}
}
