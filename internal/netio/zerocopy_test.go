package netio

import (
	"testing"
	"time"

	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/netdev"
	"ulp/internal/pkt"
)

// statusOf reads the AN1 hardware ring status for slot-accounting asserts.
func statusOf(w *world, bqi uint16) (netdev.RingStatus, bool) {
	return w.m2.Device().(*netdev.AN1).RingStatus(bqi)
}

// TestZeroCopyDeliversByReference verifies the tentpole property: with
// ZeroCopyRx on, a matched frame reaches the library without the modeled
// kernel→region copy — zero copied bytes, the full frame accounted by
// reference, and only the fixed-size descriptor written into the shared
// region.
func TestZeroCopyDeliversByReference(t *testing.T) {
	w := newWorld(t, false)
	w.m2.ZeroCopyRx = true
	spec, tmpl := chanSpecAndTemplate(w, link.EthHeaderLen)
	_, ch, err := w.m2.CreateChannel(w.krn2, spec, tmpl, 8)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("zero-copy payload")
	var got []*pkt.Buf
	w.app2.Spawn("reader", func(th *kern.Thread) { got = ch.Wait(th) })
	w.app1.Spawn("sender", func(th *kern.Thread) {
		w.m1.SendKernel(th, buildTCPFrame(w, link.EthHeaderLen, 1025, 80, payload))
	})
	w.s.Run(0)

	if len(got) != 1 {
		t.Fatalf("channel got %d packets, want 1", len(got))
	}
	frameLen := got[0].Len()
	if w.m2.CopiedBytes != 0 {
		t.Fatalf("copied bytes = %d, want 0 on the zero-copy path", w.m2.CopiedBytes)
	}
	if w.m2.ReferencedBytes != int64(frameLen) || w.m2.DeliveredByRef != 1 {
		t.Fatalf("referenced=%d by_ref=%d, want %d/1", w.m2.ReferencedBytes, w.m2.DeliveredByRef, frameLen)
	}
	if ch.ReferencedBytes != int64(frameLen) || ch.DeliveredByRef != 1 || ch.CopiedBytes != 0 {
		t.Fatalf("per-channel: referenced=%d by_ref=%d copied=%d", ch.ReferencedBytes, ch.DeliveredByRef, ch.CopiedBytes)
	}
	// The descriptor ring in the shared region holds (seq=1, len=frame).
	d := ch.Region.Buf[8:16] // posted=1 → slot 1
	seq := uint32(d[0])<<24 | uint32(d[1])<<16 | uint32(d[2])<<8 | uint32(d[3])
	dlen := uint32(d[4])<<24 | uint32(d[5])<<16 | uint32(d[6])<<8 | uint32(d[7])
	if seq != 1 || dlen != uint32(frameLen) {
		t.Fatalf("descriptor = (seq %d, len %d), want (1, %d)", seq, dlen, frameLen)
	}
	// The frame was handed over with the channel's lien still attached.
	if !got[0].Shared() {
		t.Fatal("delivered frame carries no channel lien")
	}
	got[0].Release()
}

// TestZeroCopyLienSettlesAtNextDrain verifies the lien protocol: the
// channel retains each handed-out frame until the next Wait/TryRecv, and a
// consumer that released its own reference leaves nothing outstanding once
// the next drain settles.
func TestZeroCopyLienSettlesAtNextDrain(t *testing.T) {
	pkt.SetLeakTracking(true)
	t.Cleanup(func() { pkt.SetLeakTracking(false) })
	w := newWorld(t, false)
	w.m2.ZeroCopyRx = true
	spec, tmpl := chanSpecAndTemplate(w, link.EthHeaderLen)
	_, ch, err := w.m2.CreateChannel(w.krn2, spec, tmpl, 8)
	if err != nil {
		t.Fatal(err)
	}
	w.app1.Spawn("sender", func(th *kern.Thread) {
		for i := 0; i < 3; i++ {
			w.m1.SendKernel(th, buildTCPFrame(w, link.EthHeaderLen, 1025, 80, []byte("pkt")))
		}
	})
	w.app2.SpawnAfter(50_000_000, "reader", func(th *kern.Thread) {
		batch := ch.Wait(th)
		for _, b := range batch {
			b.Release() // consumer's reference; the lien remains
		}
		if n := pkt.OutstandingCount(); n != len(batch) {
			t.Errorf("outstanding = %d, want %d (liens hold storage)", n, len(batch))
		}
		if got := ch.TryRecv(); len(got) != 0 {
			t.Errorf("unexpected second batch of %d", len(got))
		}
	})
	w.s.Run(0)
	if n := pkt.OutstandingCount(); n != 0 {
		t.Fatalf("%d buffers outstanding after settle:\n%s", n, pkt.FormatLeakReport())
	}
}

// TestZeroCopyDoorbellBudget verifies batched doorbells: a burst landing on
// a sleeping reader rings once on the empty→nonempty transition and then at
// most once per budget descriptors, while DisableBatching still degrades to
// one ring per packet.
func TestZeroCopyDoorbellBudget(t *testing.T) {
	const burst = 10
	run := func(noBatch bool) (*world, int) {
		w := newWorld(t, false)
		w.m2.ZeroCopyRx = true
		w.m2.DoorbellBatch = 4
		w.m2.DisableBatching = noBatch
		spec, tmpl := chanSpecAndTemplate(w, link.EthHeaderLen)
		_, ch, err := w.m2.CreateChannel(w.krn2, spec, tmpl, 32)
		if err != nil {
			t.Fatal(err)
		}
		w.app1.Spawn("sender", func(th *kern.Thread) {
			for i := 0; i < burst; i++ {
				w.m1.SendKernel(th, buildTCPFrame(w, link.EthHeaderLen, 1025, 80, []byte("pkt")))
			}
		})
		var batch []*pkt.Buf
		w.app2.SpawnAfter(50_000_000, "reader", func(th *kern.Thread) {
			batch = ch.Wait(th)
			for _, b := range batch {
				b.Release()
			}
		})
		w.s.Run(0)
		if len(batch) != burst {
			t.Fatalf("batch = %d packets, want %d", len(batch), burst)
		}
		return w, ch.Notifications
	}

	// Budget 4 over a 10-packet burst: doorbells at packets 1, 5, 9.
	if _, n := run(false); n != 3 {
		t.Fatalf("batched doorbells = %d, want 3 (budget 4, burst %d)", n, burst)
	}
	if _, n := run(true); n != burst {
		t.Fatalf("DisableBatching doorbells = %d, want %d", n, burst)
	}
}

// TestQuarantineMidBurstReleasesSlotsAndBufs is the AN1 release-accounting
// regression: frames queued before quarantine onset hold hardware ring
// slots that the drain must return one per frame, and frames suppressed
// after onset must return slot and buffer at the drop point. Before the
// per-frame Meta.BQI accounting, the drop path leaked its slot forever —
// a quarantined endpoint permanently shrank its hardware ring.
func TestQuarantineMidBurstReleasesSlotsAndBufs(t *testing.T) {
	pkt.SetLeakTracking(true)
	t.Cleanup(func() { pkt.SetLeakTracking(false) })
	w := newWorld(t, true)
	w.m2.EnableLeases(10 * time.Millisecond)
	spec, tmpl := chanSpecAndTemplate(w, link.AN1HeaderLen)
	_, ch, err := w.m2.CreateChannel(w.krn2, spec, tmpl, 8)
	if err != nil {
		t.Fatal(err)
	}
	send := func(th *kern.Thread) {
		b := buildTCPFrame(w, link.AN1HeaderLen, 1025, 80, []byte("burst"))
		raw := b.Bytes()
		raw[12] = byte(ch.BQI() >> 8)
		raw[13] = byte(ch.BQI())
		w.m1.SendKernel(th, b)
	}
	// Three frames land before the lease expires and sit in the ring.
	w.app1.Spawn("early", func(th *kern.Thread) {
		for i := 0; i < 3; i++ {
			send(th)
		}
	})
	// Three more arrive after expiry (no renewal): quarantine-dropped.
	w.app1.SpawnAfter(50_000_000, "late", func(th *kern.Thread) {
		for i := 0; i < 3; i++ {
			send(th)
		}
	})
	w.s.Run(0)

	if ch.Quarantined != 3 {
		t.Fatalf("quarantined = %d, want 3", ch.Quarantined)
	}
	// The three queued frames still occupy their slots; the three dropped
	// ones must not.
	if st, ok := statusOf(w, ch.BQI()); !ok || st.InUse != 3 {
		t.Fatalf("ring InUse = %d before drain, want 3 (drops leaked slots?)", st.InUse)
	}
	// Drain across quarantine onset: per-frame slot release.
	batch := ch.TryRecv()
	if len(batch) != 3 {
		t.Fatalf("drained %d frames, want 3", len(batch))
	}
	if st, ok := statusOf(w, ch.BQI()); !ok || st.InUse != 0 {
		t.Fatalf("ring InUse = %d after drain, want 0", st.InUse)
	}
	for _, b := range batch {
		b.Release()
	}
	if n := pkt.OutstandingCount(); n != 0 {
		t.Fatalf("%d pkt.Buf leaked across quarantine onset:\n%s", n, pkt.FormatLeakReport())
	}
}

// TestZeroCopyQuarantineSweepsAndPoisons verifies revocation safety for a
// live but distrusting tenant: at quarantine onset the channel's liens on
// frames the application still holds are reclaimed and the bytes scrubbed,
// so an expired endpoint can keep no data it no longer has a right to.
func TestZeroCopyQuarantineSweepsAndPoisons(t *testing.T) {
	pkt.SetLeakTracking(true)
	t.Cleanup(func() { pkt.SetLeakTracking(false) })
	w := newWorld(t, false)
	w.m2.ZeroCopyRx = true
	w.m2.EnableLeases(10 * time.Millisecond)
	spec, tmpl := chanSpecAndTemplate(w, link.EthHeaderLen)
	_, ch, err := w.m2.CreateChannel(w.krn2, spec, tmpl, 8)
	if err != nil {
		t.Fatal(err)
	}
	var held []*pkt.Buf
	w.app1.Spawn("early", func(th *kern.Thread) {
		w.m1.SendKernel(th, buildTCPFrame(w, link.EthHeaderLen, 1025, 80, []byte("secret")))
	})
	w.app2.SpawnAfter(2_000_000, "reader", func(th *kern.Thread) {
		held = ch.Wait(th) // tenant keeps the references past its lease
	})
	// A frame arriving after expiry triggers the quarantine sweep.
	w.app1.SpawnAfter(50_000_000, "late", func(th *kern.Thread) {
		w.m1.SendKernel(th, buildTCPFrame(w, link.EthHeaderLen, 1025, 80, []byte("post-lease")))
	})
	w.s.Run(0)

	if len(held) != 1 {
		t.Fatalf("tenant holds %d frames, want 1", len(held))
	}
	for _, v := range held[0].Bytes() {
		if v != 0 {
			t.Fatal("quarantine sweep did not scrub the tenant's frame")
		}
	}
	if held[0].Shared() {
		t.Fatal("channel lien survived the quarantine sweep")
	}
	held[0].Release() // tenant's own reference still releases cleanly
	if n := pkt.OutstandingCount(); n != 0 {
		t.Fatalf("%d buffers outstanding after sweep:\n%s", n, pkt.FormatLeakReport())
	}
}

// TestZeroCopyDestroySweepsInflight verifies teardown reclamation: a
// channel destroyed while its last batch is still out (crashed application)
// releases both the queued frames and its liens, leaving the pool clean and
// the region unpinned.
func TestZeroCopyDestroySweepsInflight(t *testing.T) {
	pkt.SetLeakTracking(true)
	t.Cleanup(func() { pkt.SetLeakTracking(false) })
	w := newWorld(t, false)
	w.m2.ZeroCopyRx = true
	spec, tmpl := chanSpecAndTemplate(w, link.EthHeaderLen)
	cap, ch, err := w.m2.CreateChannel(w.krn2, spec, tmpl, 8)
	if err != nil {
		t.Fatal(err)
	}
	var held []*pkt.Buf
	w.app1.Spawn("sender", func(th *kern.Thread) {
		for i := 0; i < 4; i++ {
			w.m1.SendKernel(th, buildTCPFrame(w, link.EthHeaderLen, 1025, 80, []byte("pkt")))
		}
	})
	w.app2.SpawnAfter(10_000_000, "reader", func(th *kern.Thread) {
		held = ch.Wait(th)
		// The app "crashes" here: its own references go through the usual
		// kill-path deferred release, but it never drains again — so the
		// channel's liens on this batch can only be reclaimed by the
		// destroy sweep.
		for _, b := range held {
			b.Release()
		}
	})
	w.s.Run(0)
	if len(held) != 4 {
		t.Fatalf("reader got %d frames, want 4", len(held))
	}
	if err := w.m2.DestroyChannel(w.krn2, cap); err != nil {
		t.Fatal(err)
	}
	if n := pkt.OutstandingCount(); n != 0 {
		t.Fatalf("%d buffers outstanding after destroy sweep:\n%s", n, pkt.FormatLeakReport())
	}
	if w.m2.PinnedRegions() != 0 {
		t.Fatalf("pinned regions = %d after destroy", w.m2.PinnedRegions())
	}
}
