package netio

import (
	"testing"

	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/pkt"
)

// RevokeOwner reclaims everything issued to one domain — capabilities,
// demux bindings, pinned regions — and leaves other owners untouched.
func TestRevokeOwner(t *testing.T) {
	w := newWorld(t, false)
	spec, tmpl := chanSpecAndTemplate(w, link.EthHeaderLen)
	cap1, _, err := w.m2.CreateChannel(w.krn2, spec, tmpl, 8)
	if err != nil {
		t.Fatal(err)
	}
	spec2 := spec
	spec2.LocalPort = 81
	tmpl2 := tmpl
	tmpl2.LocalPort = 81
	cap2, _, err := w.m2.CreateChannel(w.krn2, spec2, tmpl2, 8)
	if err != nil {
		t.Fatal(err)
	}

	other := w.h2.NewDomain("other", false)
	if err := w.m2.AssignOwner(w.app2, cap1, w.app2); err == nil {
		t.Fatal("unprivileged owner assignment allowed")
	}
	if err := w.m2.AssignOwner(w.krn2, cap1, w.app2); err != nil {
		t.Fatal(err)
	}
	if err := w.m2.AssignOwner(w.krn2, cap2, other); err != nil {
		t.Fatal(err)
	}
	if got := w.m2.LiveCapabilities(w.app2); got != 1 {
		t.Fatalf("app2 capabilities = %d, want 1", got)
	}
	pinnedBefore := w.m2.PinnedRegions()

	n, err := w.m2.RevokeOwner(w.krn2, w.app2)
	if err != nil || n != 1 {
		t.Fatalf("RevokeOwner = %d, %v; want 1, nil", n, err)
	}
	if got := w.m2.LiveCapabilities(w.app2); got != 0 {
		t.Fatalf("app2 capabilities after revoke = %d, want 0", got)
	}
	if got := w.m2.LiveCapabilities(other); got != 1 {
		t.Fatalf("other's capabilities = %d, want 1 (must survive)", got)
	}
	if got := w.m2.PinnedRegions(); got != pinnedBefore-1 {
		t.Fatalf("pinned regions = %d, want %d", got, pinnedBefore-1)
	}
	if got := w.m2.SoftwareBindings(); got != 1 {
		t.Fatalf("software bindings = %d, want 1", got)
	}
	// The revoked capability can no longer send.
	var sendErr error
	w.app2.Spawn("s", func(th *kern.Thread) {
		sendErr = w.m2.Send(th, cap1, buildTCPFrame(w, link.EthHeaderLen, 80, 1025, nil))
	})
	w.s.Run(0)
	if sendErr != ErrBadCapability {
		t.Fatalf("revoked capability send err = %v, want ErrBadCapability", sendErr)
	}
}

// A full ring is accounted as an overflow episode and prods the consumer
// with an extra notification instead of dropping silently.
func TestOverflowAccounting(t *testing.T) {
	w := newWorld(t, false)
	spec, tmpl := chanSpecAndTemplate(w, link.EthHeaderLen)
	_, ch, err := w.m2.CreateChannel(w.krn2, spec, tmpl, 2)
	if err != nil {
		t.Fatal(err)
	}
	w.app1.Spawn("sender", func(th *kern.Thread) {
		for i := 0; i < 6; i++ {
			w.m1.SendKernel(th, buildTCPFrame(w, link.EthHeaderLen, 1025, 80, []byte("pkt")))
		}
	})
	w.s.Run(0)
	if ch.Dropped != 4 {
		t.Fatalf("dropped = %d, want 4", ch.Dropped)
	}
	if ch.Overflows != 1 {
		t.Fatalf("overflow episodes = %d, want 1 (a burst is one episode)", ch.Overflows)
	}
	if w.m2.RxDropped != 4 {
		t.Fatalf("module RxDropped = %d, want 4", w.m2.RxDropped)
	}
	if ch.HighWater != 2 {
		t.Fatalf("high-water = %d, want 2", ch.HighWater)
	}
	// The ring-full prod: one notification for the enqueue transition plus
	// one for the overflow episode.
	if ch.Notifications != 2 {
		t.Fatalf("notifications = %d, want 2", ch.Notifications)
	}

	// Draining and refilling starts a new episode.
	var batch []*pkt.Buf
	w.app2.Spawn("reader", func(th *kern.Thread) { batch = ch.TryRecv() })
	w.app1.Spawn("sender2", func(th *kern.Thread) {
		for i := 0; i < 3; i++ {
			w.m1.SendKernel(th, buildTCPFrame(w, link.EthHeaderLen, 1025, 80, []byte("pkt")))
		}
	})
	w.s.Run(0)
	if len(batch) != 2 {
		t.Fatalf("drained %d, want 2", len(batch))
	}
	if ch.Overflows != 2 {
		t.Fatalf("overflow episodes = %d, want 2 after refill", ch.Overflows)
	}
}
