// Package netio implements the network I/O module, the in-kernel component
// co-located with the device driver that gives user-level protocol libraries
// efficient *and protected* network access (paper §3.3):
//
//   - All access is through unforgeable capabilities created jointly by the
//     registry server and the module at connection-setup time.
//   - On transmission, the module verifies the packet's headers against the
//     *header template* associated with the presented send capability, which
//     prevents impersonation.
//   - On reception, packets are demultiplexed to authorized endpoints only —
//     in software on the LANCE (a synthesized native predicate; the filter
//     package reproduces the CSPF/BPF interpreters it replaces) and in
//     hardware on the AN1 via the BQI ring table.
//   - Received packets land in a memory region shared with the library,
//     pinned for the connection's lifetime, and the library is notified by a
//     lightweight semaphore; notifications are batched when packets arrive
//     faster than the library drains them.
//
// Packets matching no binding fall through to a default handler: the
// protected kernel path used by the registry server (connection setup, ARP)
// and by the monolithic organizations.
package netio

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"ulp/internal/filter"
	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/lease"
	"ulp/internal/link"
	"ulp/internal/netdev"
	"ulp/internal/pkt"
	"ulp/internal/trace"
)

// Errors returned by the send path.
var (
	ErrBadCapability    = errors.New("netio: invalid or revoked capability")
	ErrTemplateMismatch = errors.New("netio: packet header violates send template")
	// ErrLeaseExpired reports that the capability's lease ran out — the
	// control plane that should be renewing it is dead. The endpoint is
	// quarantined, not revoked: a restarted registry can re-adopt it.
	ErrLeaseExpired = errors.New("netio: capability lease expired (control plane down)")
	// ErrBQIExhausted reports that the AN1's buffer queue index space is
	// used up (the hardware table is finite; indices are recycled on
	// channel destruction, so only a genuinely huge live population hits
	// this).
	ErrBQIExhausted = errors.New("netio: buffer queue indices exhausted")
)

// Template constrains the headers of packets sent with a capability. Zero
// fields of RemoteIP/RemotePort are unconstrained (listening endpoints).
type Template struct {
	LinkSrc    link.Addr
	LinkDst    link.Addr // zero = unconstrained (e.g. before ARP completes)
	Type       link.EtherType
	Proto      uint8 // 0 = link-level only (raw channels)
	LocalIP    ipv4.Addr
	LocalPort  uint16
	RemoteIP   ipv4.Addr
	RemotePort uint16
}

// zeroAddr is the unconstrained link address.
var zeroAddr link.Addr

// Verify checks an outbound frame against the template. hdrLen is the link
// header length of the device.
func (t *Template) Verify(frame []byte, hdrLen int) bool {
	if len(frame) < hdrLen {
		return false
	}
	var dst, src link.Addr
	copy(dst[:], frame[0:6])
	copy(src[:], frame[6:12])
	et := link.EtherType(uint16(frame[hdrLen-2])<<8 | uint16(frame[hdrLen-1]))
	if src != t.LinkSrc {
		return false
	}
	if t.LinkDst != zeroAddr && dst != t.LinkDst {
		return false
	}
	if et != t.Type {
		return false
	}
	if t.Proto == 0 {
		return true
	}
	ip := frame[hdrLen:]
	if len(ip) < ipv4.HeaderLen {
		return false
	}
	if ip[9] != t.Proto {
		return false
	}
	if [4]byte(ip[12:16]) != t.LocalIP {
		return false
	}
	if t.RemoteIP != ([4]byte{}) && [4]byte(ip[16:20]) != t.RemoteIP {
		return false
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < ipv4.HeaderLen || len(ip) < ihl+4 {
		return false
	}
	srcPort := uint16(ip[ihl])<<8 | uint16(ip[ihl+1])
	dstPort := uint16(ip[ihl+2])<<8 | uint16(ip[ihl+3])
	if srcPort != t.LocalPort {
		return false
	}
	if t.RemotePort != 0 && dstPort != t.RemotePort {
		return false
	}
	return true
}

// Capability is an unforgeable send/receive right for one channel.
type Capability struct {
	id       uint64
	template Template
	ch       *Channel
	// owner is the application domain the capability was issued to; the
	// module uses it to reclaim everything a crashed application held.
	owner *kern.Domain
	// issuer is the control-plane domain that created (or re-adopted) the
	// capability. Issuer-scoped lease renewal lets several registry shards
	// share one module: each shard's heartbeat extends only the leases it
	// is responsible for, so a dead shard's endpoints expire on schedule
	// while its peers' stay fresh.
	issuer *kern.Domain
}

// Owner returns the application domain the capability was issued to (nil
// if never assigned).
func (c *Capability) Owner() *kern.Domain { return c.owner }

// ID returns the capability's id (lease key, trace correlation).
func (c *Capability) ID() uint64 { return c.id }

// Template returns the current header template. A restarted registry
// rebuilds its connection map from these — the module is the authoritative
// ground truth for what endpoints exist.
func (c *Capability) Template() Template { return c.template }

// Chan returns the channel the capability grants access to.
func (c *Capability) Chan() *Channel { return c.ch }

// Channel is the shared-memory conduit between the module and one library
// endpoint: a receive ring in pinned shared memory plus the notification
// semaphore.
type Channel struct {
	Region  *kern.Region
	sem     *kern.Sem
	rxq     []*pkt.Buf
	cap     int
	id      uint64 // owning capability's id (trace correlation)
	bqi     uint16 // nonzero on AN1
	noBatch bool
	mod     *Module
	bd      *binding // software demux entry (nil on AN1 / raw kernel)

	// Zero-copy receive mode (Module.ZeroCopyRx at creation time): deliver
	// hands buffer references to the library instead of modeling a copy
	// into the shared region; only a fixed-size descriptor is written.
	zeroCopy bool
	// budget is the doorbell batch budget: at most one semaphore post per
	// budget descriptors while the library lags (zero-copy mode only).
	budget int
	// sinceDoorbell counts descriptors posted since the last doorbell.
	sinceDoorbell int
	// posted numbers descriptors written into the shared region's ring.
	posted uint64
	// inflight holds the channel's liens: buffers handed out by the last
	// Wait/TryRecv, retained until the next drain (or a revocation sweep)
	// so the kernel can always reclaim what a dead or distrusting
	// application still references.
	inflight []*pkt.Buf

	// overflowed marks that the ring is currently in an overflow episode,
	// so repeated drops within one burst are one episode.
	overflowed bool

	// Stats. Dropped counts packets lost to a full ring; Overflows counts
	// overflow episodes (bursts); HighWater is the deepest the ring got.
	Delivered, Dropped, Notifications int
	Overflows, HighWater              int
	// Quarantined counts packets suppressed because the channel's lease
	// expired (control plane down).
	Quarantined int
	// DeliveredByRef counts packets handed over by reference (zero-copy);
	// CopiedBytes/ReferencedBytes split the payload volume by path.
	DeliveredByRef               int
	CopiedBytes, ReferencedBytes int64
}

// Wait blocks the library thread until the channel is notified, then
// drains and returns the pending batch ("our implementation attempts,
// where possible, to batch multiple network packets per semaphore
// notification"). A nil batch means a spurious wakeup (see Poke); callers
// re-check their termination condition and wait again.
func (ch *Channel) Wait(t *kern.Thread) []*pkt.Buf {
	// The previous batch's liens settle before blocking, not after: calling
	// Wait again is the consumer's declaration that it is done with the old
	// batch, so an idle consumer parked on an empty ring holds no buffer
	// references at all.
	ch.settleInflight()
	if len(ch.rxq) == 0 {
		ch.sem.P(t)
	}
	return ch.take()
}

// TryRecv drains pending packets without blocking.
func (ch *Channel) TryRecv() []*pkt.Buf {
	return ch.take()
}

// take drains the ring: it settles the liens on the previous batch (the
// library finished with it — a batch is valid only until the next drain),
// returns the hardware ring slots the drained frames held, and in zero-copy
// mode liens the new batch so revocation can always reclaim it.
//
// Slot accounting is per frame via Meta.BQI, not per channel: a batch may
// mix hardware-ring frames with kernel-injected ones (which never occupied
// a slot), and a quarantine or overflow drop returns its slot at the drop
// point — so a batch drained across quarantine onset neither leaks nor
// over-releases ring slots.
func (ch *Channel) take() []*pkt.Buf {
	ch.settleInflight()
	batch := ch.rxq
	ch.rxq = nil
	ch.sinceDoorbell = 0
	// Consume any extra pending notification so the next Wait blocks.
	for ch.sem.TryP() {
	}
	for _, b := range batch {
		ch.releaseSlot(b)
	}
	if ch.zeroCopy && len(batch) > 0 {
		for _, b := range batch {
			b.Retain()
		}
		ch.inflight = append(ch.inflight, batch...)
	}
	return batch
}

// settleInflight drops the channel's liens on the previously drained batch.
func (ch *Channel) settleInflight() {
	for _, b := range ch.inflight {
		b.Release()
	}
	ch.inflight = ch.inflight[:0]
}

// sweepInflight reclaims the channel's liens outside the normal drain
// cycle — revocation, quarantine, teardown. With poison set the packet
// bytes are zeroed in place first, so a live but distrusting tenant that
// kept references past its lease can never read data it no longer owns; a
// dead application's sweep skips the scrub (its address space is gone).
func (ch *Channel) sweepInflight(poison bool, reason string) {
	if len(ch.inflight) == 0 {
		return
	}
	n := len(ch.inflight)
	for _, b := range ch.inflight {
		if poison {
			b.Poison()
		}
		b.Release()
	}
	ch.inflight = nil
	if ch.mod.Bus.Enabled() {
		ch.mod.Bus.Emit(trace.Event{Kind: trace.ChanSweep, Node: ch.mod.dev.Name(),
			A: int64(ch.id), B: int64(n), Text: reason})
	}
}

// releaseSlot returns the hardware ring slot a frame occupies, if any.
// Kernel-injected frames (Meta.BQI zero) never held one.
func (ch *Channel) releaseSlot(b *pkt.Buf) {
	if b.Meta.BQI == 0 {
		return
	}
	if an1, ok := ch.mod.dev.(*netdev.AN1); ok {
		an1.Release(b.Meta.BQI)
	}
}

// Pending reports queued packets (diagnostics).
func (ch *Channel) Pending() int { return len(ch.rxq) }

// Poke wakes a thread blocked in Wait without delivering a packet, so the
// owner can observe a shutdown flag.
func (ch *Channel) Poke() { ch.sem.V() }

// Inject delivers a frame into the channel from the kernel's default input
// path — used by the registry to forward stray segments of a connection
// whose demultiplexing binding was installed mid-exchange. An injected
// frame never occupies a hardware ring slot, whatever its metadata said on
// arrival, so its BQI is cleared before slot accounting can see it.
func (ch *Channel) Inject(b *pkt.Buf) {
	b.Meta.BQI = 0
	ch.deliver(b)
}

// BQI returns the channel's hardware demultiplexing index (0 on Ethernet).
func (ch *Channel) BQI() uint16 { return ch.bqi }

// ID returns the id of the capability the channel was created with (trace
// correlation: ChanDeliver/DemuxHit/CapRevoked events carry it in A).
func (ch *Channel) ID() uint64 { return ch.id }

// deliver enqueues a packet and notifies the library. The semaphore is
// posted only when the queue transitions from empty, so a burst arriving
// before the library wakes is delivered under a single notification.
//
// A full ring is backpressure, not silent loss: the drop is accounted on
// the channel and the module, and the first drop of an episode posts an
// extra notification so a slow consumer is prodded to drain the ring.
func (ch *Channel) deliver(b *pkt.Buf) {
	bus := ch.mod.Bus
	if ch.mod.quarantined(ch.id) {
		// The lease on this endpoint ran out: the control plane that
		// vouched for it is dead. Deliver nothing until a reborn registry
		// re-adopts the endpoint and resumes renewing. This single check
		// covers every delivery source — software demux, the AN1 hardware
		// ring, and kernel-path Inject.
		ch.Quarantined++
		ch.mod.QuarantineDrops++
		if bus.Enabled() {
			bus.Emit(trace.Event{Kind: trace.ChanQuarantine, Node: ch.mod.dev.Name(), A: int64(ch.id)})
		}
		if ch.zeroCopy {
			// Zero-copy channels hold references a distrusting tenant can
			// still read: reclaim the liens (scrubbing the bytes) and the
			// queued-but-undrained frames at quarantine onset.
			ch.sweepInflight(true, "quarantine")
			for _, q := range ch.rxq {
				ch.releaseSlot(q)
				q.Release()
			}
			ch.rxq = nil
		}
		ch.releaseSlot(b)
		b.Release()
		return
	}
	if len(ch.rxq) >= ch.cap {
		ch.Dropped++
		ch.mod.RxDropped++
		if bus.Enabled() {
			bus.Emit(trace.Event{Kind: trace.ChanDrop, Node: ch.mod.dev.Name(), A: int64(ch.id)})
		}
		if !ch.overflowed {
			ch.overflowed = true
			ch.Overflows++
			ch.Notifications++
			ch.mod.NotificationsTotal++
			ch.sem.V()
		}
		ch.releaseSlot(b)
		b.Release()
		return
	}
	ch.overflowed = false
	ch.rxq = append(ch.rxq, b)
	ch.Delivered++
	ch.mod.DeliveredTotal++
	if len(ch.rxq) > ch.HighWater {
		ch.HighWater = len(ch.rxq)
		if ch.HighWater > ch.mod.RingHighWater {
			ch.mod.RingHighWater = ch.HighWater
		}
	}
	if bus.Enabled() {
		bus.Emit(trace.Event{Kind: trace.ChanDeliver, Node: ch.mod.dev.Name(),
			A: int64(ch.id), B: int64(len(ch.rxq))})
	}
	if ch.zeroCopy {
		ch.postDescriptor(b)
		// Batched doorbells: the empty→nonempty transition always rings
		// (the library may be asleep), and while the library lags the bell
		// rings again at most once per budget descriptors — a bounded
		// prod, not one post per packet. DisableBatching degrades to the
		// per-packet ablation as in copy mode.
		ch.sinceDoorbell++
		if len(ch.rxq) == 1 || ch.noBatch || ch.sinceDoorbell >= ch.budget {
			ch.sinceDoorbell = 0
			ch.notify(bus)
		}
		return
	}
	if len(ch.rxq) == 1 || ch.noBatch {
		ch.notify(bus)
	}
}

// notify posts the channel's semaphore and accounts the doorbell.
func (ch *Channel) notify(bus *trace.Bus) {
	ch.Notifications++
	ch.mod.NotificationsTotal++
	if bus.Enabled() {
		bus.Emit(trace.Event{Kind: trace.ChanNotify, Node: ch.mod.dev.Name(),
			A: int64(ch.id), B: int64(len(ch.rxq))})
	}
	ch.sem.V()
}

// postDescriptor writes the fixed-size receive descriptor — sequence
// number and frame length — into the channel's shared-region ring. On the
// zero-copy path these eight bytes are the only ones the kernel moves; the
// frame itself stays in the pool buffer the library reads by reference.
func (ch *Channel) postDescriptor(b *pkt.Buf) {
	ch.posted++
	slot := int(ch.posted%uint64(ch.cap)) * 8
	d := ch.Region.Buf[slot : slot+8]
	seq, n := uint32(ch.posted), uint32(b.Len())
	d[0], d[1], d[2], d[3] = byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq)
	d[4], d[5], d[6], d[7] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
}

// Placement of a software demux entry: hash-steered (exact or
// wildcard-remote key) or on the linear fallback chain.
const (
	placeChain = iota
	placeSteer
	placeSteerWild
)

// binding is one software demux entry. Indexable endpoint predicates live
// in a steering table keyed by the packet's five-tuple; everything else
// (raw EtherType channels, partially wildcarded specs) stays on a linear
// chain. where/key let DestroyChannel remove the entry without scanning.
type binding struct {
	match func([]byte) bool
	ch    *Channel
	where int
	key   steerKey
}

// steerKey is the exact-match steering index: the fields Spec.Match tests
// against an inbound IPv4 frame. The wildcard (listener) form zeroes the
// remote half.
type steerKey struct {
	proto      uint8
	localIP    ipv4.Addr
	localPort  uint16
	remoteIP   ipv4.Addr
	remotePort uint16
}

// steerKeys extracts the steering keys from an inbound frame: the fully
// specified key and its listener form (remote half zeroed). ok is false
// when the frame cannot hit any steered binding — short, non-IPv4, or a
// non-first fragment (no transport header) — in which case only the chain
// can match, mirroring Spec.Match's reject conditions exactly.
func steerKeys(hdrLen int, frame []byte) (full, wild steerKey, ok bool) {
	if len(frame) < hdrLen+20 {
		return
	}
	if uint16(frame[hdrLen-2])<<8|uint16(frame[hdrLen-1]) != 0x0800 {
		return
	}
	ip := frame[hdrLen:]
	if ip[0]>>4 != 4 {
		return
	}
	if (uint16(ip[6])<<8|uint16(ip[7]))&0x1fff != 0 {
		return // non-first fragment
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < 20 || len(ip) < ihl+4 {
		return
	}
	full = steerKey{
		proto:      ip[9],
		localIP:    ipv4.Addr(ip[16:20]),
		localPort:  uint16(ip[ihl+2])<<8 | uint16(ip[ihl+3]),
		remoteIP:   ipv4.Addr(ip[12:16]),
		remotePort: uint16(ip[ihl])<<8 | uint16(ip[ihl+1]),
	}
	wild = full
	wild.remoteIP = ipv4.Addr{}
	wild.remotePort = 0
	return full, wild, true
}

// steerable classifies a Spec: a fully specified five-tuple steers on the
// exact table, a fully wildcarded remote steers on the listener table, and
// anything else (no transport predicate, or a half-wildcarded remote,
// which the hash key cannot express) falls back to the chain.
func steerable(s *filter.Spec) (key steerKey, where int) {
	if s == nil || s.Proto == 0 || s.LocalPort == 0 || s.LocalIP == ([4]byte{}) {
		return steerKey{}, placeChain
	}
	key = steerKey{proto: s.Proto, localIP: s.LocalIP, localPort: s.LocalPort}
	if s.RemoteIP == ([4]byte{}) && s.RemotePort == 0 {
		return key, placeSteerWild
	}
	if s.RemoteIP != ([4]byte{}) && s.RemotePort != 0 {
		key.remoteIP = s.RemoteIP
		key.remotePort = s.RemotePort
		return key, placeSteer
	}
	return steerKey{}, placeChain
}

// Module is one device's network I/O module.
type Module struct {
	host *kern.Host
	dev  netdev.Device

	nextCapID uint64
	nextBQI   uint16
	freeBQI   []uint16 // recycled ring indices, reused LIFO
	caps      map[uint64]*Capability

	// Software demux is split two ways: steer holds fully specified
	// five-tuple endpoints, steerWild holds listener endpoints (remote
	// wildcarded), and chain is the linear fallback for everything the
	// hash key cannot express. An inbound frame consults steer, then
	// steerWild, then the chain — so a steered entry always beats a chain
	// entry that would also match.
	steer     map[steerKey]*binding
	steerWild map[steerKey]*binding
	chain     []*binding

	defaultRx netdev.RxHandler

	// regions records every shared region the module ever wired, so the
	// pinned population is auditable after crashes and teardowns.
	regions []*kern.Region

	// DisableBatching makes every delivered packet post its own
	// notification (the batching ablation; the paper observes "network
	// packet batching is very effective").
	DisableBatching bool

	// ZeroCopyRx makes channels created from now on deliver by reference:
	// matched frames hand the pool buffer to the library and post only a
	// fixed-size descriptor into the shared region, instead of modeling a
	// kernel→region copy. Opt-in (Config.ZeroCopyRx), like the switch and
	// the timer wheel: legacy replays never see the new cost profile.
	ZeroCopyRx bool

	// DoorbellBatch is the zero-copy doorbell budget: while the library
	// lags, at most one semaphore post per this many posted descriptors.
	// Zero means the default of 8.
	DoorbellBatch int

	// leases, when non-nil, bounds how long an endpoint may be served
	// without the control plane renewing it. The table belongs to the
	// module, not the registry: leases survive a registry crash exactly
	// like the channels they guard.
	leases *lease.Table

	// FailSetup, when non-nil, is consulted by setup-time allocations —
	// ReserveBQI ("bqi") and channel creation ("create") — and its error is
	// returned instead of proceeding. Tests use it to drive the registry's
	// setup error paths.
	FailSetup func(op string) error

	// Stats
	SendOK, SendRejected, DemuxMatched, DemuxDefault int
	RxDropped                                        int
	// QuarantineDrops counts packets suppressed on lease-expired channels.
	QuarantineDrops int
	// DeliveredTotal/NotificationsTotal aggregate the per-channel
	// counters across all channels (including destroyed ones), so the
	// notification-batching ratio survives teardown.
	DeliveredTotal, NotificationsTotal int
	// CopiedBytes counts bytes moved by the kernel→shared-region receive
	// copy on software-demux devices (Table-style "copies" breakdown).
	CopiedBytes int64
	// ReferencedBytes/DeliveredByRef count the zero-copy complement:
	// payload volume and packets handed to the library by reference.
	ReferencedBytes int64
	DeliveredByRef  int
	// RingHighWater is the deepest any channel's receive ring ever got.
	RingHighWater int

	// Bus, when set, receives demux/channel/capability events. Nil-safe.
	Bus *trace.Bus
}

// New creates the module for a device and installs its receive path. For
// the AN1, the default kernel ring (BQI 0) is installed; per-channel rings
// are added as connections are set up.
func New(h *kern.Host, dev netdev.Device) *Module {
	m := &Module{
		host:      h,
		dev:       dev,
		nextCapID: 1,
		nextBQI:   1,
		caps:      make(map[uint64]*Capability),
		steer:     make(map[steerKey]*binding),
		steerWild: make(map[steerKey]*binding),
	}
	dev.SetRxHandler(m.rxSoftware)
	return m
}

// Device returns the underlying device.
func (m *Module) Device() netdev.Device { return m.dev }

// SetDefaultHandler installs the protected kernel input path for packets
// matching no user binding (registry traffic, ARP, monolithic stacks).
func (m *Module) SetDefaultHandler(h netdev.RxHandler) { m.defaultRx = h }

// rxSoftware is the interrupt-level input path for the default ring: on the
// LANCE it demultiplexes every packet in software; on the AN1 it handles
// only BQI-0 packets (hardware already demultiplexed the rest).
func (m *Module) rxSoftware(b *pkt.Buf) {
	c := &m.host.Cost
	if _, isAN1 := m.dev.(*netdev.AN1); !isAN1 {
		// Software demultiplexing: one run of the synthesized native
		// predicate over the headers. The charged cost is fixed per frame
		// regardless of how the match is found — the steering tables are a
		// wall-clock optimization and must not perturb virtual time.
		m.host.CPU.UseAsync(c.LanceDemuxFixed+c.FilterDemux, nil)
		frame := b.Bytes()
		if bd := m.steerLookup(frame); bd != nil {
			m.deliverMatched(bd, b)
			return
		}
		for _, bd := range m.chain {
			if bd.match(frame) {
				m.deliverMatched(bd, b)
				return
			}
		}
	}
	m.DemuxDefault++
	if m.Bus.Enabled() {
		m.Bus.Emit(trace.Event{Kind: trace.DemuxMiss, Node: m.dev.Name(), B: int64(b.Len())})
	}
	if m.defaultRx != nil {
		m.defaultRx(b)
	} else {
		b.Release()
	}
}

// steerLookup finds the software binding for a frame in O(1): exact
// five-tuple first, then the listener (wildcard-remote) form. A frame that
// cannot carry a steerable key (non-IPv4, fragment) returns nil and falls
// through to the chain.
func (m *Module) steerLookup(frame []byte) *binding {
	if len(m.steer) == 0 && len(m.steerWild) == 0 {
		return nil
	}
	full, wild, ok := steerKeys(m.dev.HdrLen(), frame)
	if !ok {
		return nil
	}
	if bd := m.steer[full]; bd != nil {
		return bd
	}
	return m.steerWild[wild]
}

// deliverMatched accounts and completes a software demux hit. On the
// classic path the packet was staged into kernel memory by the PIO copy and
// moving it into the channel's shared region is a second, per-byte copy.
// On a zero-copy channel the buffer itself is handed over and the kernel
// pays only the fixed descriptor post — the per-packet cost no longer
// scales with payload size, which is the whole point.
func (m *Module) deliverMatched(bd *binding, b *pkt.Buf) {
	m.DemuxMatched++
	if m.Bus.Enabled() {
		m.Bus.Emit(trace.Event{Kind: trace.DemuxHit, Node: m.dev.Name(),
			A: int64(bd.ch.id), B: int64(b.Len())})
	}
	if bd.ch.zeroCopy {
		m.ReferencedBytes += int64(b.Len())
		m.DeliveredByRef++
		bd.ch.ReferencedBytes += int64(b.Len())
		bd.ch.DeliveredByRef++
		m.host.CPU.UseAsync(m.host.Cost.DescriptorPost, nil)
	} else {
		m.CopiedBytes += int64(b.Len())
		bd.ch.CopiedBytes += int64(b.Len())
		m.host.CPU.UseAsync(m.host.Cost.Copy(b.Len()), nil)
	}
	bd.ch.deliver(b)
}

// ReserveBQI allocates a buffer queue index ahead of channel creation, so
// the handshake can advertise it before the ring exists (data cannot
// arrive until the handshake completes). Only privileged domains may
// reserve.
func (m *Module) ReserveBQI(from *kern.Domain) (uint16, error) {
	if !from.Privileged {
		return 0, fmt.Errorf("netio: BQI reservation from unprivileged domain %s", from)
	}
	if m.FailSetup != nil {
		if err := m.FailSetup("bqi"); err != nil {
			return 0, err
		}
	}
	if _, ok := m.dev.(*netdev.AN1); !ok {
		return 0, nil // no hardware demultiplexing on this device
	}
	return m.allocBQI()
}

// allocBQI hands out a ring index, preferring recycled ones (LIFO keeps
// the hardware table dense under churn). Index 0 is the kernel ring and
// never allocated; the 16-bit space is a hardware limit, so running out is
// an error, not a wrap.
func (m *Module) allocBQI() (uint16, error) {
	if n := len(m.freeBQI); n > 0 {
		bqi := m.freeBQI[n-1]
		m.freeBQI = m.freeBQI[:n-1]
		return bqi, nil
	}
	if m.nextBQI == 0xFFFF {
		return 0, ErrBQIExhausted
	}
	bqi := m.nextBQI
	m.nextBQI++
	return bqi, nil
}

// ReleaseBQI returns a reserved-but-never-used ring index to the free
// list. Setup paths that reserve ahead of channel creation must call this
// on their failure paths, or churn leaks the index space. Indices consumed
// by a channel are recycled by DestroyChannel instead.
func (m *Module) ReleaseBQI(from *kern.Domain, bqi uint16) error {
	if !from.Privileged {
		return fmt.Errorf("netio: BQI release from unprivileged domain %s", from)
	}
	if bqi != 0 {
		m.freeBQI = append(m.freeBQI, bqi)
	}
	return nil
}

// CreateChannel builds the shared region, ring, capability and demux
// binding for one endpoint. Only a privileged domain (the registry server)
// may call it: "initially, only the privileged registry server has access
// to the network module."
//
// spec describes the endpoint for input demultiplexing; tmpl constrains
// output. ringSize is the receive ring capacity in packets.
func (m *Module) CreateChannel(from *kern.Domain, spec filter.Spec, tmpl Template, ringSize int) (*Capability, *Channel, error) {
	if !from.Privileged {
		return nil, nil, fmt.Errorf("netio: channel creation from unprivileged domain %s", from)
	}
	return m.createChannel(from, &spec, spec.Compile(), tmpl, ringSize, 0)
}

// CreateChannelBQI is CreateChannel with a previously reserved BQI.
func (m *Module) CreateChannelBQI(from *kern.Domain, spec filter.Spec, tmpl Template, ringSize int, bqi uint16) (*Capability, *Channel, error) {
	if !from.Privileged {
		return nil, nil, fmt.Errorf("netio: channel creation from unprivileged domain %s", from)
	}
	return m.createChannel(from, &spec, spec.Compile(), tmpl, ringSize, bqi)
}

// CreateRawChannel builds a channel demultiplexed by EtherType alone, for
// link-level protocols (the Table 1 mechanism micro-benchmark "used two
// applications to exchange data ... without using any higher-level
// protocols").
func (m *Module) CreateRawChannel(from *kern.Domain, et link.EtherType, tmpl Template, ringSize int) (*Capability, *Channel, error) {
	if !from.Privileged {
		return nil, nil, fmt.Errorf("netio: raw channel creation from unprivileged domain %s", from)
	}
	hdrLen := m.dev.HdrLen()
	match := func(frame []byte) bool {
		if len(frame) < hdrLen {
			return false
		}
		return link.EtherType(uint16(frame[hdrLen-2])<<8|uint16(frame[hdrLen-1])) == et
	}
	return m.createChannel(from, nil, match, tmpl, ringSize, 0)
}

// createChannel installs the channel. spec, when non-nil, describes the
// endpoint predicate structurally so software demux can steer it by hash
// key; match is the compiled predicate used when it cannot (raw channels,
// partial wildcards, or a key collision — the colliding entry chains
// behind the steered one, preserving first-installed-wins order).
func (m *Module) createChannel(from *kern.Domain, spec *filter.Spec, match func([]byte) bool, tmpl Template, ringSize int, reservedBQI uint16) (*Capability, *Channel, error) {
	if m.FailSetup != nil {
		if err := m.FailSetup("create"); err != nil {
			return nil, nil, err
		}
	}
	if ringSize <= 0 {
		ringSize = 32
	}
	ch := &Channel{
		Region:   kern.NewRegion(fmt.Sprintf("%s.ch%d", m.dev.Name(), m.nextCapID), ringSize*2048),
		sem:      kern.NewSem(m.host, "chan-sem", 0),
		cap:      ringSize,
		noBatch:  m.DisableBatching,
		zeroCopy: m.ZeroCopyRx,
		budget:   m.DoorbellBatch,
		mod:      m,
	}
	if ch.budget <= 0 {
		ch.budget = 8
	}
	cap := &Capability{id: m.nextCapID, template: tmpl, ch: ch, issuer: from}
	m.nextCapID++
	ch.id = cap.id
	m.caps[cap.id] = cap
	m.regions = append(m.regions, ch.Region)

	if an1, ok := m.dev.(*netdev.AN1); ok {
		// Hardware demultiplexing: install the ring under the reserved (or
		// a fresh) BQI.
		ch.bqi = reservedBQI
		if ch.bqi == 0 {
			bqi, err := m.allocBQI()
			if err != nil {
				delete(m.caps, cap.id)
				ch.Region.Unpin()
				return nil, nil, err
			}
			ch.bqi = bqi
		}
		an1.InstallRing(ch.bqi, ringSize, func(b *pkt.Buf) {
			m.DemuxMatched++
			if m.Bus.Enabled() {
				m.Bus.Emit(trace.Event{Kind: trace.DemuxHit, Node: m.dev.Name(),
					A: int64(ch.id), B: int64(b.Len())})
			}
			ch.deliver(b)
		})
	} else {
		bd := &binding{match: match, ch: ch}
		bd.key, bd.where = steerable(spec)
		switch bd.where {
		case placeSteer:
			if m.steer[bd.key] != nil {
				bd.where = placeChain // duplicate key: first install wins
			} else {
				m.steer[bd.key] = bd
			}
		case placeSteerWild:
			if m.steerWild[bd.key] != nil {
				bd.where = placeChain
			} else {
				m.steerWild[bd.key] = bd
			}
		}
		if bd.where == placeChain {
			m.chain = append(m.chain, bd)
		}
		ch.bd = bd
	}
	if m.leases != nil {
		m.leases.Grant(cap.id)
	}
	return cap, ch, nil
}

// DestroyChannel revokes a capability, removes its demux binding, and
// unpins its shared region (connection teardown; resources "registered
// with the network I/O module are now reclaimed").
func (m *Module) DestroyChannel(from *kern.Domain, cap *Capability) error {
	if !from.Privileged {
		return fmt.Errorf("netio: channel destruction from unprivileged domain %s", from)
	}
	if _, ok := m.caps[cap.id]; !ok {
		return ErrBadCapability
	}
	delete(m.caps, cap.id)
	if m.leases != nil {
		m.leases.Drop(cap.id)
	}
	if cap.ch.bqi != 0 {
		if an1, ok := m.dev.(*netdev.AN1); ok {
			an1.RemoveRing(cap.ch.bqi)
		}
		m.freeBQI = append(m.freeBQI, cap.ch.bqi)
	}
	if bd := cap.ch.bd; bd != nil {
		switch bd.where {
		case placeSteer:
			delete(m.steer, bd.key)
		case placeSteerWild:
			delete(m.steerWild, bd.key)
		default:
			for i, cbd := range m.chain {
				if cbd == bd {
					m.chain = append(m.chain[:i], m.chain[i+1:]...)
					break
				}
			}
		}
		cap.ch.bd = nil
	}
	// Packets still queued in the ring die with the channel: nobody will
	// ever Wait on it again, so they must be returned to the pool here or
	// they leak (found by the pool leak report under the chaos scenarios).
	// Zero-copy liens on the batch last handed out die the same way — a
	// crashed application's outstanding references must not keep pool
	// storage alive (no scrub: the owner is gone, not distrusting).
	for _, b := range cap.ch.rxq {
		b.Release()
	}
	cap.ch.rxq = nil
	cap.ch.sweepInflight(false, "destroy")
	cap.ch.Region.Unpin()
	if m.Bus.Enabled() {
		m.Bus.Emit(trace.Event{Kind: trace.CapRevoked, Node: m.dev.Name(), A: int64(cap.id)})
	}
	return nil
}

// EnableLeases arms lease enforcement: every channel created from now on
// is granted a lease of the given ttl, and an endpoint whose lease runs
// out is quarantined (no delivery, sends rejected) until renewed.
// Idempotent — a restarted registry calling it again keeps the existing
// table, so leases granted by the previous incarnation stay in force.
func (m *Module) EnableLeases(ttl time.Duration) *lease.Table {
	if m.leases == nil {
		m.leases = lease.NewTable(func() time.Duration {
			return time.Duration(m.host.S.Now())
		}, ttl)
	}
	return m.leases
}

// Leases returns the lease table (nil if EnableLeases was never called).
func (m *Module) Leases() *lease.Table { return m.leases }

// quarantined reports whether a channel's lease has expired.
func (m *Module) quarantined(id uint64) bool {
	return m.leases != nil && m.leases.Expired(id)
}

// RenewLeases extends every lease — the registry's heartbeat. Only a
// privileged domain may renew. Returns how many leases were extended.
func (m *Module) RenewLeases(from *kern.Domain) (int, error) {
	if !from.Privileged {
		return 0, fmt.Errorf("netio: lease renewal from unprivileged domain %s", from)
	}
	if m.leases == nil {
		return 0, nil
	}
	return m.leases.RenewAll(), nil
}

// RenewLeasesIssued extends only the leases of capabilities issued by (or
// reassigned to) the given domain — the per-shard heartbeat of a sharded
// control plane. A dead shard stops calling this, its endpoints' leases
// expire and quarantine, and the libraries migrate them to a live shard;
// the other shards' endpoints never miss a beat. Returns how many leases
// were extended.
func (m *Module) RenewLeasesIssued(from *kern.Domain) (int, error) {
	if !from.Privileged {
		return 0, fmt.Errorf("netio: lease renewal from unprivileged domain %s", from)
	}
	if m.leases == nil {
		return 0, nil
	}
	n := 0
	for _, cap := range m.caps {
		if cap.issuer == from {
			m.leases.Renew(cap.id)
			n++
		}
	}
	return n, nil
}

// Reissue reassigns a capability's issuer: the shard that adopts an
// endpoint after a migration (re-registration, rebuild) takes over its
// lease renewal.
func (m *Module) Reissue(from *kern.Domain, cap *Capability) error {
	if !from.Privileged {
		return fmt.Errorf("netio: reissue from unprivileged domain %s", from)
	}
	if cap == nil || m.caps[cap.id] != cap {
		return ErrBadCapability
	}
	cap.issuer = from
	return nil
}

// Issuer returns the control-plane domain currently responsible for
// renewing the capability's lease.
func (c *Capability) Issuer() *kern.Domain { return c.issuer }

// RenewLease extends one capability's lease (re-registration of a single
// endpoint by a reborn registry).
func (m *Module) RenewLease(from *kern.Domain, cap *Capability) error {
	if !from.Privileged {
		return fmt.Errorf("netio: lease renewal from unprivileged domain %s", from)
	}
	if cap == nil || m.caps[cap.id] != cap {
		return ErrBadCapability
	}
	if m.leases != nil {
		m.leases.Renew(cap.id)
	}
	return nil
}

// Installed reports whether cap is a currently valid capability of this
// module (the reborn registry verifies re-registration claims with it).
func (m *Module) Installed(cap *Capability) bool {
	return cap != nil && m.caps[cap.id] == cap
}

// InstalledEndpoint describes one live endpoint for control-plane state
// rebuild: the capability, its channel, the installed header template, the
// owning application domain, and the hardware ring (0 on Ethernet).
type InstalledEndpoint struct {
	Cap      *Capability
	Channel  *Channel
	Template Template
	Owner    *kern.Domain
	BQI      uint16
}

// InstalledEndpoints enumerates every live endpoint, ordered by capability
// id (deterministic). A restarted registry rebuilds its port table and
// connection map from this — the in-kernel module, not the crashed
// server's memory, is the authoritative record of what exists; exactly the
// paper's trust split between the module and the registry.
func (m *Module) InstalledEndpoints(from *kern.Domain) ([]InstalledEndpoint, error) {
	if !from.Privileged {
		return nil, fmt.Errorf("netio: endpoint enumeration from unprivileged domain %s", from)
	}
	ids := make([]uint64, 0, len(m.caps))
	for id := range m.caps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	eps := make([]InstalledEndpoint, 0, len(ids))
	for _, id := range ids {
		cap := m.caps[id]
		eps = append(eps, InstalledEndpoint{
			Cap:      cap,
			Channel:  cap.ch,
			Template: cap.template,
			Owner:    cap.owner,
			BQI:      cap.ch.bqi,
		})
	}
	return eps, nil
}

// AssignOwner records the application domain a capability was issued to.
// Only a privileged domain (the registry, which creates channels on behalf
// of applications) may assign ownership; the module uses it to find what a
// crashed application held.
func (m *Module) AssignOwner(from *kern.Domain, cap *Capability, owner *kern.Domain) error {
	if !from.Privileged {
		return fmt.Errorf("netio: owner assignment from unprivileged domain %s", from)
	}
	if _, ok := m.caps[cap.id]; !ok {
		return ErrBadCapability
	}
	cap.owner = owner
	return nil
}

// RevokeOwner reclaims every resource issued to a dead application: its
// capabilities are revoked, demux bindings and hardware rings removed, and
// shared regions unpinned. It returns the number of capabilities revoked.
// This is the network I/O module's half of crash-failure reclamation — it
// runs even if the registry's own records were incomplete, so a crash can
// never leak kernel resources.
func (m *Module) RevokeOwner(from *kern.Domain, owner *kern.Domain) (int, error) {
	if !from.Privileged {
		return 0, fmt.Errorf("netio: owner revocation from unprivileged domain %s", from)
	}
	revoked := 0
	for _, cap := range m.caps {
		if cap.owner == owner {
			if m.DestroyChannel(from, cap) == nil {
				revoked++
			}
		}
	}
	return revoked, nil
}

// LiveCapabilities counts valid capabilities; with a non-nil owner, only
// those issued to that domain. Chaos tests assert this reaches zero for a
// crashed application.
func (m *Module) LiveCapabilities(owner *kern.Domain) int {
	n := 0
	for _, cap := range m.caps {
		if owner == nil || cap.owner == owner {
			n++
		}
	}
	return n
}

// PinnedRegions counts shared regions still wired.
func (m *Module) PinnedRegions() int {
	n := 0
	for _, r := range m.regions {
		if r.Pinned() {
			n++
		}
	}
	return n
}

// ChannelStats is a snapshot of one live channel's receive counters, for
// the stats registry's per-channel breakdown.
type ChannelStats struct {
	ID                                int64
	BQI                               uint16
	Delivered, Dropped, Notifications int
	Overflows, HighWater, Quarantined int
	DeliveredByRef                    int
	CopiedBytes, ReferencedBytes      int64
	Pending, Inflight                 int
}

// ChannelStats enumerates per-channel receive counters for every live
// channel, ordered by capability id (deterministic). Destroyed channels'
// contributions survive only in the module aggregates.
func (m *Module) ChannelStats() []ChannelStats {
	ids := make([]uint64, 0, len(m.caps))
	for id := range m.caps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]ChannelStats, 0, len(ids))
	for _, id := range ids {
		ch := m.caps[id].ch
		out = append(out, ChannelStats{
			ID:              int64(id),
			BQI:             ch.bqi,
			Delivered:       ch.Delivered,
			Dropped:         ch.Dropped,
			Notifications:   ch.Notifications,
			Overflows:       ch.Overflows,
			HighWater:       ch.HighWater,
			Quarantined:     ch.Quarantined,
			DeliveredByRef:  ch.DeliveredByRef,
			CopiedBytes:     ch.CopiedBytes,
			ReferencedBytes: ch.ReferencedBytes,
			Pending:         len(ch.rxq),
			Inflight:        len(ch.inflight),
		})
	}
	return out
}

// SoftwareBindings counts installed software demux entries across the
// steering tables and the fallback chain (diagnostics).
func (m *Module) SoftwareBindings() int {
	return len(m.steer) + len(m.steerWild) + len(m.chain)
}

// SteeredBindings reports how many software demux entries are hash-steered
// vs on the linear fallback chain (diagnostics; scaling benchmarks assert
// the chain stays empty for endpoint-shaped specs).
func (m *Module) SteeredBindings() (steered, chained int) {
	return len(m.steer) + len(m.steerWild), len(m.chain)
}

// UpdateTemplate amends a capability's template (the registry narrows it
// once the remote endpoint and link address are known).
func (m *Module) UpdateTemplate(from *kern.Domain, cap *Capability, tmpl Template) error {
	if !from.Privileged {
		return fmt.Errorf("netio: template update from unprivileged domain %s", from)
	}
	if _, ok := m.caps[cap.id]; !ok {
		return ErrBadCapability
	}
	cap.template = tmpl
	return nil
}

// Send is the library's specialized kernel entry for transmission: the
// calling thread pays the fast trap and the per-packet template check; a
// frame whose headers violate the template is rejected.
func (m *Module) Send(t *kern.Thread, cap *Capability, frame *pkt.Buf) error {
	c := t.Cost()
	t.FastTrap()
	if cap == nil || m.caps[cap.id] != cap {
		m.SendRejected++
		if m.Bus.Enabled() {
			var id int64
			if cap != nil {
				id = int64(cap.id)
			}
			m.Bus.Emit(trace.Event{Kind: trace.VerifyReject, Node: m.dev.Name(),
				A: id, Text: "bad-capability"})
		}
		return ErrBadCapability
	}
	if m.quarantined(cap.id) {
		m.SendRejected++
		if m.Bus.Enabled() {
			m.Bus.Emit(trace.Event{Kind: trace.VerifyReject, Node: m.dev.Name(),
				A: int64(cap.id), Text: "lease-expired"})
		}
		return ErrLeaseExpired
	}
	t.Compute(c.TemplateCheck)
	if !cap.template.Verify(frame.Bytes(), m.dev.HdrLen()) {
		m.SendRejected++
		if m.Bus.Enabled() {
			m.Bus.Emit(trace.Event{Kind: trace.VerifyReject, Node: m.dev.Name(),
				A: int64(cap.id), Text: "template-mismatch"})
		}
		return ErrTemplateMismatch
	}
	m.SendOK++
	m.dev.Transmit(t, frame)
	return nil
}

// SendKernel is the in-kernel transmit path used by the registry server and
// the monolithic stacks (no capability involved; caller is trusted).
func (m *Module) SendKernel(t *kern.Thread, frame *pkt.Buf) {
	m.dev.Transmit(t, frame)
}
