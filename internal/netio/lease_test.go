package netio

import (
	"testing"
	"time"

	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/pkt"
)

// Leases gate both directions of an endpoint: once the control plane stops
// renewing, delivery is quarantined (counted, not silently lost) and sends
// are rejected with ErrLeaseExpired; a renewal lifts the quarantine without
// recreating anything.
func TestLeaseExpiryQuarantinesAndRenewalLifts(t *testing.T) {
	w := newWorld(t, false)
	ttl := 100 * time.Millisecond
	w.m2.EnableLeases(ttl)
	spec, tmpl := chanSpecAndTemplate(w, link.EthHeaderLen)
	cap, ch, err := w.m2.CreateChannel(w.krn2, spec, tmpl, 8)
	if err != nil {
		t.Fatal(err)
	}

	mkFrame := func() *pkt.Buf { return pkt.FromBytes(link.EthHeaderLen, []byte{1, 2, 3}) }

	// Within the TTL the channel behaves normally.
	ch.Inject(mkFrame())
	if ch.Pending() != 1 {
		t.Fatalf("pending = %d before expiry, want 1", ch.Pending())
	}
	for _, b := range ch.TryRecv() {
		b.Release()
	}

	// Run the clock past the TTL with no renewal: the lease lapses lazily —
	// no event fires, the next delivery attempt observes the expiry. (The
	// no-op event just carries the virtual clock forward.)
	w.s.After(2*ttl, func() {})
	w.s.Run(2 * ttl)
	if !w.m2.Leases().Expired(cap.ID()) {
		t.Fatal("lease not expired after 2*ttl without renewal")
	}
	ch.Inject(mkFrame())
	if ch.Pending() != 0 {
		t.Fatal("quarantined channel delivered a frame")
	}
	if ch.Quarantined != 1 || w.m2.QuarantineDrops != 1 {
		t.Fatalf("quarantine counters = %d/%d, want 1/1", ch.Quarantined, w.m2.QuarantineDrops)
	}

	// RenewLeases (the reborn registry's first act) lifts the quarantine.
	if n, err := w.m2.RenewLeases(w.krn2); err != nil || n != 1 {
		t.Fatalf("RenewLeases = %d, %v", n, err)
	}
	ch.Inject(mkFrame())
	if ch.Pending() != 1 {
		t.Fatal("renewed channel did not deliver")
	}
	for _, b := range ch.TryRecv() {
		b.Release()
	}
}

// Send rejects a quarantined capability with ErrLeaseExpired — the signal
// the library's reconnect path keys on.
func TestSendRejectedWhileLeaseExpired(t *testing.T) {
	w := newWorld(t, false)
	ttl := 100 * time.Millisecond
	w.m2.EnableLeases(ttl)
	spec, tmpl := chanSpecAndTemplate(w, link.EthHeaderLen)
	cap, _, err := w.m2.CreateChannel(w.krn2, spec, tmpl, 8)
	if err != nil {
		t.Fatal(err)
	}
	w.s.After(2*ttl, func() {})
	w.s.Run(2 * ttl)

	var got error
	done := false
	w.krn2.Spawn("tx", func(th *kern.Thread) {
		b := pkt.FromBytes(link.EthHeaderLen, nil)
		got = w.m2.Send(th, cap, b)
		if got != nil {
			b.Release()
		}
		done = true
	})
	w.s.RunUntil(time.Second, func() bool { return done })
	if got != ErrLeaseExpired {
		t.Fatalf("Send on expired lease = %v, want ErrLeaseExpired", got)
	}
	if w.m2.SendRejected != 1 {
		t.Fatalf("SendRejected = %d, want 1", w.m2.SendRejected)
	}
}

// InstalledEndpoints is the reborn registry's rebuild source: it must list
// every live endpoint with its template, deterministically ordered, and
// must track destruction.
func TestInstalledEndpointsEnumeration(t *testing.T) {
	w := newWorld(t, false)
	spec1, tmpl1 := chanSpecAndTemplate(w, link.EthHeaderLen)
	cap1, ch1, err := w.m2.CreateChannel(w.krn2, spec1, tmpl1, 8)
	if err != nil {
		t.Fatal(err)
	}
	spec2, tmpl2 := chanSpecAndTemplate(w, link.EthHeaderLen)
	spec2.LocalPort, tmpl2.LocalPort = 81, 81
	cap2, _, err := w.m2.CreateChannel(w.krn2, spec2, tmpl2, 8)
	if err != nil {
		t.Fatal(err)
	}

	eps, err := w.m2.InstalledEndpoints(w.krn2)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 2 {
		t.Fatalf("%d endpoints, want 2", len(eps))
	}
	// Ordered by capability id: rebuild iterates deterministically.
	if eps[0].Cap.ID() > eps[1].Cap.ID() {
		t.Fatal("endpoints not ordered by capability id")
	}
	if eps[0].Cap != cap1 || eps[0].Channel != ch1 || eps[0].Template.LocalPort != 80 {
		t.Fatal("first endpoint does not describe the first channel")
	}
	if eps[1].Template.LocalPort != 81 {
		t.Fatalf("second endpoint template port = %d", eps[1].Template.LocalPort)
	}

	// Enumeration is privileged — an application cannot map the host.
	if _, err := w.m2.InstalledEndpoints(w.app2); err == nil {
		t.Fatal("unprivileged domain enumerated endpoints")
	}

	if err := w.m2.DestroyChannel(w.krn2, cap1); err != nil {
		t.Fatal(err)
	}
	eps, _ = w.m2.InstalledEndpoints(w.krn2)
	if len(eps) != 1 || eps[0].Cap != cap2 {
		t.Fatal("destroyed endpoint still enumerated")
	}
}
