package netio

import (
	"testing"

	"ulp/internal/costs"
	"ulp/internal/filter"
	"ulp/internal/ipv4"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/netdev"
	"ulp/internal/pkt"
	"ulp/internal/sim"
	"ulp/internal/tcp"
	"ulp/internal/wire"
)

type world struct {
	s      *sim.Sim
	h1, h2 *kern.Host
	m1, m2 *Module
	krn1   *kern.Domain
	krn2   *kern.Domain
	app1   *kern.Domain
	app2   *kern.Domain
	addr1  link.Addr
	addr2  link.Addr
}

func newWorld(t testing.TB, an1 bool) *world {
	s := sim.New()
	var seg *wire.Segment
	if an1 {
		seg = wire.New(s, wire.AN1Config())
	} else {
		seg = wire.New(s, wire.EthernetConfig())
	}
	w := &world{s: s, addr1: link.MakeAddr(1), addr2: link.MakeAddr(2)}
	w.h1 = kern.NewHost(s, "h1", costs.Default())
	w.h2 = kern.NewHost(s, "h2", costs.Default())
	var d1, d2 netdev.Device
	if an1 {
		d1 = netdev.NewAN1(w.h1, seg, w.addr1, 0)
		d2 = netdev.NewAN1(w.h2, seg, w.addr2, 0)
	} else {
		d1 = netdev.NewLance(w.h1, seg, w.addr1)
		d2 = netdev.NewLance(w.h2, seg, w.addr2)
	}
	w.m1 = New(w.h1, d1)
	w.m2 = New(w.h2, d2)
	w.krn1 = w.h1.NewDomain("kernel", true)
	w.krn2 = w.h2.NewDomain("kernel", true)
	w.app1 = w.h1.NewDomain("app", false)
	w.app2 = w.h2.NewDomain("app", false)
	return w
}

var (
	ip1 = ipv4.Addr{10, 0, 0, 1}
	ip2 = ipv4.Addr{10, 0, 0, 2}
)

// buildFrame assembles link+IP+TCP bytes for endpoint tests.
func buildTCPFrame(w *world, hdrLen int, srcPort, dstPort uint16, payload []byte) *pkt.Buf {
	b := pkt.FromBytes(hdrLen+ipv4.HeaderLen+tcp.HeaderLen, payload)
	th := tcp.Header{SrcPort: srcPort, DstPort: dstPort, Flags: tcp.FlagACK, Window: 1024}
	th.Encode(b, ip1, ip2)
	ih := ipv4.Header{TTL: 64, Proto: ipv4.ProtoTCP, Src: ip1, Dst: ip2}
	ih.Encode(b)
	if hdrLen == link.AN1HeaderLen {
		lh := link.AN1Header{Dst: w.addr2, Src: w.addr1, Type: link.TypeIPv4}
		lh.Encode(b)
	} else {
		lh := link.EthHeader{Dst: w.addr2, Src: w.addr1, Type: link.TypeIPv4}
		lh.Encode(b)
	}
	return b
}

func chanSpecAndTemplate(w *world, hdrLen int) (filter.Spec, Template) {
	spec := filter.Spec{
		LinkHdrLen: hdrLen, Proto: ipv4.ProtoTCP,
		LocalIP: ip2, LocalPort: 80,
		RemoteIP: ip1, RemotePort: 1025,
	}
	tmpl := Template{
		LinkSrc: w.addr2, LinkDst: w.addr1, Type: link.TypeIPv4,
		Proto: ipv4.ProtoTCP, LocalIP: ip2, LocalPort: 80,
		RemoteIP: ip1, RemotePort: 1025,
	}
	return spec, tmpl
}

func TestChannelRequiresPrivilege(t *testing.T) {
	w := newWorld(t, false)
	spec, tmpl := chanSpecAndTemplate(w, link.EthHeaderLen)
	if _, _, err := w.m2.CreateChannel(w.app2, spec, tmpl, 8); err == nil {
		t.Fatal("unprivileged domain created a channel")
	}
	if _, _, err := w.m2.CreateChannel(w.krn2, spec, tmpl, 8); err != nil {
		t.Fatalf("privileged creation failed: %v", err)
	}
}

func TestSoftwareDemuxDelivers(t *testing.T) {
	w := newWorld(t, false)
	spec, tmpl := chanSpecAndTemplate(w, link.EthHeaderLen)
	_, ch, err := w.m2.CreateChannel(w.krn2, spec, tmpl, 8)
	if err != nil {
		t.Fatal(err)
	}
	var defaulted int
	w.m2.SetDefaultHandler(func(b *pkt.Buf) { defaulted++ })

	var got []*pkt.Buf
	w.app2.Spawn("reader", func(th *kern.Thread) {
		got = ch.Wait(th)
	})
	w.app1.Spawn("sender", func(th *kern.Thread) {
		// Matching packet goes to the channel.
		w.m1.SendKernel(th, buildTCPFrame(w, link.EthHeaderLen, 1025, 80, []byte("match")))
		// Wrong port falls through to the default handler.
		w.m1.SendKernel(th, buildTCPFrame(w, link.EthHeaderLen, 1025, 81, []byte("nomatch")))
	})
	w.s.Run(0)
	if len(got) != 1 {
		t.Fatalf("channel got %d packets, want 1", len(got))
	}
	if defaulted != 1 {
		t.Fatalf("default path got %d packets, want 1", defaulted)
	}
	if w.m2.DemuxMatched != 1 || w.m2.DemuxDefault != 1 {
		t.Fatalf("demux stats: %d/%d", w.m2.DemuxMatched, w.m2.DemuxDefault)
	}
}

func TestHardwareDemuxViaBQI(t *testing.T) {
	w := newWorld(t, true)
	spec, tmpl := chanSpecAndTemplate(w, link.AN1HeaderLen)
	_, ch, err := w.m2.CreateChannel(w.krn2, spec, tmpl, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ch.BQI() == 0 {
		t.Fatal("AN1 channel did not allocate a BQI")
	}
	var got []*pkt.Buf
	w.app2.Spawn("reader", func(th *kern.Thread) { got = ch.Wait(th) })
	w.app1.Spawn("sender", func(th *kern.Thread) {
		b := buildTCPFrame(w, link.AN1HeaderLen, 1025, 80, []byte("hw"))
		// The sender writes the peer's BQI into the link header, as
		// negotiated at connection setup.
		bytes := b.Bytes()
		bytes[12] = byte(ch.BQI() >> 8)
		bytes[13] = byte(ch.BQI())
		w.m1.SendKernel(th, b)
	})
	w.s.Run(0)
	if len(got) != 1 {
		t.Fatalf("channel got %d packets, want 1", len(got))
	}
	if got[0].Meta.BQI != ch.BQI() {
		t.Fatalf("meta BQI = %d, want %d", got[0].Meta.BQI, ch.BQI())
	}
}

func TestAN1UnboundBQIFallsToKernel(t *testing.T) {
	w := newWorld(t, true)
	var defaulted int
	w.m2.SetDefaultHandler(func(b *pkt.Buf) { defaulted++ })
	w.app1.Spawn("sender", func(th *kern.Thread) {
		b := buildTCPFrame(w, link.AN1HeaderLen, 9, 9, []byte("x"))
		bytes := b.Bytes()
		bytes[12], bytes[13] = 0x7f, 0xff // unbound BQI
		w.m1.SendKernel(th, b)
	})
	w.s.Run(0)
	if defaulted != 1 {
		t.Fatalf("default path got %d, want 1 (BQI fallback)", defaulted)
	}
}

func TestSendTemplateEnforcement(t *testing.T) {
	w := newWorld(t, false)
	// Create a send channel on host 1 (the sender's own module).
	spec := filter.Spec{LinkHdrLen: link.EthHeaderLen, Proto: ipv4.ProtoTCP, LocalIP: ip1, LocalPort: 1025, RemoteIP: ip2, RemotePort: 80}
	tmpl := Template{
		LinkSrc: w.addr1, LinkDst: w.addr2, Type: link.TypeIPv4,
		Proto: ipv4.ProtoTCP, LocalIP: ip1, LocalPort: 1025,
		RemoteIP: ip2, RemotePort: 80,
	}
	cap, _, err := w.m1.CreateChannel(w.krn1, spec, tmpl, 8)
	if err != nil {
		t.Fatal(err)
	}
	received := 0
	w.m2.SetDefaultHandler(func(b *pkt.Buf) { received++ })

	var errLegit, errSpoofIP, errSpoofPort, errBadCap error
	w.app1.Spawn("sender", func(th *kern.Thread) {
		errLegit = w.m1.Send(th, cap, buildTCPFrame(w, link.EthHeaderLen, 1025, 80, []byte("ok")))

		// Impersonation: forge another source IP.
		spoof := buildTCPFrame(w, link.EthHeaderLen, 1025, 80, []byte("bad"))
		copy(spoof.Bytes()[link.EthHeaderLen+12:], []byte{10, 0, 0, 9})
		errSpoofIP = w.m1.Send(th, cap, spoof)

		// Forge the source port.
		errSpoofPort = w.m1.Send(th, cap, buildTCPFrame(w, link.EthHeaderLen, 2222, 80, []byte("bad")))

		// Forged capability.
		fake := &Capability{id: 999, template: tmpl, ch: cap.ch}
		errBadCap = w.m1.Send(th, fake, buildTCPFrame(w, link.EthHeaderLen, 1025, 80, []byte("bad")))
	})
	w.s.Run(0)
	if errLegit != nil {
		t.Fatalf("legitimate send rejected: %v", errLegit)
	}
	if errSpoofIP != ErrTemplateMismatch {
		t.Fatalf("spoofed IP: err = %v", errSpoofIP)
	}
	if errSpoofPort != ErrTemplateMismatch {
		t.Fatalf("spoofed port: err = %v", errSpoofPort)
	}
	if errBadCap != ErrBadCapability {
		t.Fatalf("forged capability: err = %v", errBadCap)
	}
	if received != 1 {
		t.Fatalf("wire saw %d frames, want 1 (only the legitimate one)", received)
	}
	if w.m1.SendRejected != 3 || w.m1.SendOK != 1 {
		t.Fatalf("send stats: ok=%d rejected=%d", w.m1.SendOK, w.m1.SendRejected)
	}
}

func TestNotificationBatching(t *testing.T) {
	w := newWorld(t, false)
	spec, tmpl := chanSpecAndTemplate(w, link.EthHeaderLen)
	_, ch, err := w.m2.CreateChannel(w.krn2, spec, tmpl, 32)
	if err != nil {
		t.Fatal(err)
	}
	const burst = 10
	w.app1.Spawn("sender", func(th *kern.Thread) {
		for i := 0; i < burst; i++ {
			w.m1.SendKernel(th, buildTCPFrame(w, link.EthHeaderLen, 1025, 80, []byte("pkt")))
		}
	})
	// Reader wakes late: the whole burst should arrive as one batch under
	// few notifications.
	var batch []*pkt.Buf
	w.app2.SpawnAfter(50_000_000, "reader", func(th *kern.Thread) {
		batch = ch.Wait(th)
	})
	w.s.Run(0)
	if len(batch) != burst {
		t.Fatalf("batch = %d packets, want %d", len(batch), burst)
	}
	if ch.Notifications != 1 {
		t.Fatalf("notifications = %d, want 1 (batched)", ch.Notifications)
	}
}

func TestChannelOverflowDrops(t *testing.T) {
	w := newWorld(t, false)
	spec, tmpl := chanSpecAndTemplate(w, link.EthHeaderLen)
	_, ch, err := w.m2.CreateChannel(w.krn2, spec, tmpl, 2)
	if err != nil {
		t.Fatal(err)
	}
	w.app1.Spawn("sender", func(th *kern.Thread) {
		for i := 0; i < 5; i++ {
			w.m1.SendKernel(th, buildTCPFrame(w, link.EthHeaderLen, 1025, 80, []byte("pkt")))
		}
	})
	w.s.Run(0)
	if ch.Pending() != 2 || ch.Dropped != 3 {
		t.Fatalf("pending=%d dropped=%d, want 2/3", ch.Pending(), ch.Dropped)
	}
}

func TestDestroyChannelStopsDelivery(t *testing.T) {
	w := newWorld(t, false)
	spec, tmpl := chanSpecAndTemplate(w, link.EthHeaderLen)
	cap, ch, err := w.m2.CreateChannel(w.krn2, spec, tmpl, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.m2.DestroyChannel(w.app2, cap); err == nil {
		t.Fatal("unprivileged destroy allowed")
	}
	if err := w.m2.DestroyChannel(w.krn2, cap); err != nil {
		t.Fatal(err)
	}
	defaulted := 0
	w.m2.SetDefaultHandler(func(b *pkt.Buf) { defaulted++ })
	w.app1.Spawn("sender", func(th *kern.Thread) {
		w.m1.SendKernel(th, buildTCPFrame(w, link.EthHeaderLen, 1025, 80, []byte("late")))
	})
	w.s.Run(0)
	if ch.Pending() != 0 || defaulted != 1 {
		t.Fatalf("after destroy: pending=%d defaulted=%d", ch.Pending(), defaulted)
	}
	// The revoked capability no longer sends.
	var sendErr error
	w.app2.Spawn("s", func(th *kern.Thread) {
		sendErr = w.m2.Send(th, cap, buildTCPFrame(w, link.EthHeaderLen, 80, 1025, nil))
	})
	w.s.Run(0)
	if sendErr != ErrBadCapability {
		t.Fatalf("revoked capability send err = %v", sendErr)
	}
}

func TestUpdateTemplate(t *testing.T) {
	w := newWorld(t, false)
	spec, tmpl := chanSpecAndTemplate(w, link.EthHeaderLen)
	wide := tmpl
	wide.RemotePort = 0 // listening: any remote port
	cap, _, err := w.m1.CreateChannel(w.krn1, spec, Template{
		LinkSrc: w.addr1, LinkDst: w.addr2, Type: link.TypeIPv4,
		Proto: ipv4.ProtoTCP, LocalIP: ip1, LocalPort: 1025,
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	var before, after error
	w.app1.Spawn("sender", func(th *kern.Thread) {
		before = w.m1.Send(th, cap, buildTCPFrame(w, link.EthHeaderLen, 1025, 9999, nil))
		narrow := tmpl
		narrow.LinkSrc = w.addr1
		if err := w.m1.UpdateTemplate(w.krn1, cap, narrow); err != nil {
			t.Errorf("update: %v", err)
		}
		after = w.m1.Send(th, cap, buildTCPFrame(w, link.EthHeaderLen, 1025, 9999, nil))
	})
	w.s.Run(0)
	if before != nil {
		t.Fatalf("wide template rejected: %v", before)
	}
	if after != ErrTemplateMismatch {
		t.Fatalf("narrowed template accepted stray port: %v", after)
	}
	if err := w.m1.UpdateTemplate(w.app1, cap, tmpl); err == nil {
		t.Fatal("unprivileged template update allowed")
	}
}

func TestTemplateVerifyUnit(t *testing.T) {
	w := newWorld(t, false)
	_, tmpl := chanSpecAndTemplate(w, link.EthHeaderLen)
	tmpl.LinkSrc, tmpl.LinkDst = w.addr1, w.addr2
	tmpl.LocalIP, tmpl.RemoteIP = ip1, ip2
	tmpl.LocalPort, tmpl.RemotePort = 1025, 80
	good := buildTCPFrame(w, link.EthHeaderLen, 1025, 80, []byte("x"))
	if !tmpl.Verify(good.Bytes(), link.EthHeaderLen) {
		t.Fatal("matching frame rejected")
	}
	if tmpl.Verify(good.Bytes()[:10], link.EthHeaderLen) {
		t.Fatal("truncated frame accepted")
	}
	// Raw (link-only) template.
	raw := Template{LinkSrc: w.addr1, Type: link.TypeRaw}
	b := pkt.FromBytes(link.EthHeaderLen, []byte("raw payload"))
	lh := link.EthHeader{Dst: w.addr2, Src: w.addr1, Type: link.TypeRaw}
	lh.Encode(b)
	if !raw.Verify(b.Bytes(), link.EthHeaderLen) {
		t.Fatal("raw frame rejected")
	}
	lh2 := link.EthHeader{Dst: w.addr2, Src: w.addr2, Type: link.TypeRaw} // wrong src
	b2 := pkt.FromBytes(link.EthHeaderLen, nil)
	lh2.Encode(b2)
	if raw.Verify(b2.Bytes(), link.EthHeaderLen) {
		t.Fatal("forged link source accepted")
	}
}
