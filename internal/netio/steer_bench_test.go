package netio

// Wall-clock scaling benchmarks for the software demultiplexing path: the
// hash-keyed steering table must stay flat as the binding population grows
// 10× and 100×, while the chain (the pre-steering linear scan, still used
// for non-steerable specs) degrades linearly. BENCH_PR7.json records the
// trajectory.

import (
	"fmt"
	"testing"

	"ulp/internal/filter"
	"ulp/internal/ipv4"
	"ulp/internal/link"
	"ulp/internal/pkt"
)

// benchFrameRaw builds the raw bytes of a TCP frame for port pair
// (20000+i → 10000+i) once; iterations re-wrap them in pooled buffers.
func benchFrameRaw(w *world, i int) []byte {
	b := buildTCPFrame(w, link.EthHeaderLen, uint16(20000+i), uint16(10000+i), []byte("bench"))
	raw := append([]byte(nil), b.Bytes()...)
	b.Release()
	return raw
}

// BenchmarkSteeredDemux delivers frames to the last-installed of n steered
// bindings. O(1): ns/op must not grow with n.
func BenchmarkSteeredDemux(b *testing.B) {
	for _, n := range []int{10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			w := newWorld(b, false)
			chans := make([]*Channel, n)
			for i := 0; i < n; i++ {
				sp := filter.Spec{
					LinkHdrLen: link.EthHeaderLen, Proto: ipv4.ProtoTCP,
					LocalIP: ip2, LocalPort: uint16(10000 + i),
					RemoteIP: ip1, RemotePort: uint16(20000 + i),
				}
				_, ch, err := w.m2.CreateChannel(w.krn2, sp, Template{}, 8)
				if err != nil {
					b.Fatal(err)
				}
				chans[i] = ch
			}
			raw := benchFrameRaw(w, n-1)
			target := chans[n-1]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.m2.rxSoftware(pkt.FromBytes(0, raw))
				for _, d := range target.TryRecv() {
					d.Release()
				}
			}
		})
	}
}

// BenchmarkChainedDemux is the same delivery through the chain: each spec
// keeps RemotePort wild with RemoteIP set (not steerable), so every frame
// walks the linear scan the steering table replaced. ns/op grows with n —
// the before-side of the O(1) demux tentpole.
func BenchmarkChainedDemux(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			w := newWorld(b, false)
			chans := make([]*Channel, n)
			for i := 0; i < n; i++ {
				sp := filter.Spec{
					LinkHdrLen: link.EthHeaderLen, Proto: ipv4.ProtoTCP,
					LocalIP: ip2, LocalPort: uint16(10000 + i),
					RemoteIP: ip1, // RemotePort wild: chains, never steered
				}
				_, ch, err := w.m2.CreateChannel(w.krn2, sp, Template{}, 8)
				if err != nil {
					b.Fatal(err)
				}
				chans[i] = ch
			}
			if steered, chained := w.m2.SteeredBindings(); steered != 0 || chained != n {
				b.Fatalf("steered=%d chained=%d, want 0/%d", steered, chained, n)
			}
			raw := benchFrameRaw(w, n-1)
			target := chans[n-1]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.m2.rxSoftware(pkt.FromBytes(0, raw))
				for _, d := range target.TryRecv() {
					d.Release()
				}
			}
		})
	}
}
