package netio

import (
	"fmt"
	"testing"

	"ulp/internal/filter"
	"ulp/internal/ipv4"
	"ulp/internal/link"
	"ulp/internal/pkt"
)

// tcpSpec builds an endpoint spec with the given ports (remote zero =
// listener wildcard).
func tcpSpec(localPort, remotePort uint16) filter.Spec {
	s := filter.Spec{
		LinkHdrLen: link.EthHeaderLen, Proto: ipv4.ProtoTCP,
		LocalIP: ip2, LocalPort: localPort,
	}
	if remotePort != 0 {
		s.RemoteIP = ip1
		s.RemotePort = remotePort
	}
	return s
}

func TestSteeringExactAndWildcard(t *testing.T) {
	w := newWorld(t, false)
	specExact := tcpSpec(80, 1025)
	specWild := tcpSpec(81, 0)
	_, chExact, err := w.m2.CreateChannel(w.krn2, specExact, Template{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, chWild, err := w.m2.CreateChannel(w.krn2, specWild, Template{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if steered, chained := w.m2.SteeredBindings(); steered != 2 || chained != 0 {
		t.Fatalf("steered=%d chained=%d, want 2/0", steered, chained)
	}
	defaulted := 0
	w.m2.SetDefaultHandler(func(b *pkt.Buf) { defaulted++; b.Release() })

	w.m2.rxSoftware(buildTCPFrame(w, link.EthHeaderLen, 1025, 80, []byte("x")))
	if chExact.Pending() != 1 {
		t.Fatalf("exact endpoint got %d packets, want 1", chExact.Pending())
	}
	// Any source hits the wildcard endpoint.
	w.m2.rxSoftware(buildTCPFrame(w, link.EthHeaderLen, 4000, 81, []byte("y")))
	w.m2.rxSoftware(buildTCPFrame(w, link.EthHeaderLen, 4001, 81, []byte("z")))
	if chWild.Pending() != 2 {
		t.Fatalf("wildcard endpoint got %d packets, want 2", chWild.Pending())
	}
	// Wrong source port for the exact endpoint: no listener on 80 → default.
	w.m2.rxSoftware(buildTCPFrame(w, link.EthHeaderLen, 9999, 80, []byte("w")))
	if defaulted != 1 {
		t.Fatalf("defaulted=%d, want 1 (exact key must not match other sources)", defaulted)
	}
}

// TestSteeringMatchesLinearScan is the equivalence property: for a mixed
// binding population and a batch of frames, the steering tables must route
// every frame to the same channel Spec.Match scanning would.
func TestSteeringMatchesLinearScan(t *testing.T) {
	w := newWorld(t, false)
	specs := []filter.Spec{
		tcpSpec(80, 1025),
		tcpSpec(80, 0),  // listener shadowed by the exact entry above for 1025
		tcpSpec(443, 0), // pure listener
		tcpSpec(90, 2000),
	}
	chans := make([]*Channel, len(specs))
	for i, sp := range specs {
		_, ch, err := w.m2.CreateChannel(w.krn2, sp, Template{}, 8)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	defaulted := 0
	w.m2.SetDefaultHandler(func(b *pkt.Buf) { defaulted++; b.Release() })

	cases := []struct {
		srcPort, dstPort uint16
		want             int // index into chans, -1 = default path
	}{
		{1025, 80, 0},  // exact beats the port-80 listener
		{3000, 80, 1},  // other sources fall to the listener
		{5000, 443, 2}, // pure listener
		{2000, 90, 3},  // exact with no listener behind it
		{2001, 90, -1}, // wrong remote, no listener
		{1025, 81, -1}, // no endpoint at all
	}
	for _, tc := range cases {
		before := make([]int, len(chans))
		for i, ch := range chans {
			before[i] = ch.Pending()
		}
		defBefore := defaulted
		w.m2.rxSoftware(buildTCPFrame(w, link.EthHeaderLen, tc.srcPort, tc.dstPort, []byte("p")))
		for i, ch := range chans {
			wantDelta := 0
			if i == tc.want {
				wantDelta = 1
			}
			if got := ch.Pending() - before[i]; got != wantDelta {
				t.Errorf("frame %d->%d: channel %d delta=%d, want %d",
					tc.srcPort, tc.dstPort, i, got, wantDelta)
			}
		}
		wantDef := 0
		if tc.want == -1 {
			wantDef = 1
		}
		if defaulted-defBefore != wantDef {
			t.Errorf("frame %d->%d: default delta=%d, want %d",
				tc.srcPort, tc.dstPort, defaulted-defBefore, wantDef)
		}
	}
}

// TestSteeringDuplicateKeyFirstWins: installing two bindings with the same
// five-tuple must preserve linear-scan semantics — the first keeps
// receiving, the second waits on the chain and takes over when the first
// is destroyed.
func TestSteeringDuplicateKeyFirstWins(t *testing.T) {
	w := newWorld(t, false)
	spec := tcpSpec(80, 1025)
	cap1, ch1, err := w.m2.CreateChannel(w.krn2, spec, Template{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, ch2, err := w.m2.CreateChannel(w.krn2, spec, Template{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if steered, chained := w.m2.SteeredBindings(); steered != 1 || chained != 1 {
		t.Fatalf("steered=%d chained=%d, want 1/1 (duplicate key chains)", steered, chained)
	}
	w.m2.rxSoftware(buildTCPFrame(w, link.EthHeaderLen, 1025, 80, []byte("a")))
	if ch1.Pending() != 1 || ch2.Pending() != 0 {
		t.Fatalf("pending = %d/%d, want 1/0 (first install wins)", ch1.Pending(), ch2.Pending())
	}
	if err := w.m2.DestroyChannel(w.krn2, cap1); err != nil {
		t.Fatal(err)
	}
	w.m2.rxSoftware(buildTCPFrame(w, link.EthHeaderLen, 1025, 80, []byte("b")))
	if ch2.Pending() != 1 {
		t.Fatalf("chained duplicate got %d packets after first destroyed, want 1", ch2.Pending())
	}
}

// TestSteeringFragmentFallsThrough: a non-first fragment has no transport
// header, so it must bypass the steering tables and miss every endpoint
// spec, exactly as Spec.Match rejects it.
func TestSteeringFragmentFallsThrough(t *testing.T) {
	w := newWorld(t, false)
	_, ch, err := w.m2.CreateChannel(w.krn2, tcpSpec(80, 0), Template{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defaulted := 0
	w.m2.SetDefaultHandler(func(b *pkt.Buf) { defaulted++; b.Release() })
	b := buildTCPFrame(w, link.EthHeaderLen, 1025, 80, []byte("frag"))
	// Set a nonzero fragment offset in the IP header (bytes 6-7 past link).
	raw := b.Bytes()
	raw[link.EthHeaderLen+6] = 0x00
	raw[link.EthHeaderLen+7] = 0x10
	w.m2.rxSoftware(b)
	if ch.Pending() != 0 || defaulted != 1 {
		t.Fatalf("fragment: pending=%d defaulted=%d, want 0/1", ch.Pending(), defaulted)
	}
}

// TestDestroyChannelRemovesSteered verifies indexed removal across both
// tables and the chain.
func TestDestroyChannelRemovesSteered(t *testing.T) {
	w := newWorld(t, false)
	caps := make([]*Capability, 0, 3)
	for _, sp := range []filter.Spec{tcpSpec(80, 1025), tcpSpec(81, 0)} {
		cap, _, err := w.m2.CreateChannel(w.krn2, sp, Template{}, 8)
		if err != nil {
			t.Fatal(err)
		}
		caps = append(caps, cap)
	}
	rawCap, _, err := w.m2.CreateRawChannel(w.krn2, link.EtherType(0x88b5), Template{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	caps = append(caps, rawCap)
	if w.m2.SoftwareBindings() != 3 {
		t.Fatalf("bindings = %d, want 3", w.m2.SoftwareBindings())
	}
	for _, cap := range caps {
		if err := w.m2.DestroyChannel(w.krn2, cap); err != nil {
			t.Fatal(err)
		}
	}
	if w.m2.SoftwareBindings() != 0 {
		t.Fatalf("bindings = %d after destroying all, want 0", w.m2.SoftwareBindings())
	}
	if steered, chained := w.m2.SteeredBindings(); steered != 0 || chained != 0 {
		t.Fatalf("steered=%d chained=%d after teardown", steered, chained)
	}
}

// TestBQIRecycling: destroyed channels return their hardware ring index,
// so endpoint churn reuses a small dense set instead of marching the
// 16-bit space to exhaustion.
func TestBQIRecycling(t *testing.T) {
	w := newWorld(t, true)
	seen := map[uint16]bool{}
	for round := 0; round < 100; round++ {
		spec, tmpl := chanSpecAndTemplate(w, link.AN1HeaderLen)
		cap, ch, err := w.m2.CreateChannel(w.krn2, spec, tmpl, 8)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		seen[ch.BQI()] = true
		if err := w.m2.DestroyChannel(w.krn2, cap); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 1 {
		t.Fatalf("churn used %d distinct BQIs, want 1 (LIFO recycling)", len(seen))
	}
	// A reserved-then-released index is also recycled.
	bqi, err := w.m2.ReserveBQI(w.krn2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.m2.ReleaseBQI(w.krn2, bqi); err != nil {
		t.Fatal(err)
	}
	bqi2, err := w.m2.ReserveBQI(w.krn2)
	if err != nil {
		t.Fatal(err)
	}
	if bqi2 != bqi {
		t.Fatalf("released BQI %d not reused (got %d)", bqi, bqi2)
	}
}

// TestManySteeredEndpoints scales the binding population and checks every
// endpoint still receives its own traffic (the O(1) demux tentpole at
// table sizes where a linear scan would be quadratic across the batch).
func TestManySteeredEndpoints(t *testing.T) {
	w := newWorld(t, false)
	const n = 2000
	chans := make([]*Channel, n)
	for i := 0; i < n; i++ {
		sp := filter.Spec{
			LinkHdrLen: link.EthHeaderLen, Proto: ipv4.ProtoTCP,
			LocalIP: ip2, LocalPort: uint16(10000 + i),
			RemoteIP: ip1, RemotePort: uint16(20000 + i),
		}
		_, ch, err := w.m2.CreateChannel(w.krn2, sp, Template{}, 4)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	if steered, chained := w.m2.SteeredBindings(); steered != n || chained != 0 {
		t.Fatalf("steered=%d chained=%d, want %d/0", steered, chained, n)
	}
	for _, i := range []int{0, 1, n / 2, n - 2, n - 1} {
		w.m2.rxSoftware(buildTCPFrame(w, link.EthHeaderLen,
			uint16(20000+i), uint16(10000+i), []byte(fmt.Sprintf("p%d", i))))
		if chans[i].Pending() != 1 {
			t.Fatalf("endpoint %d got %d packets, want 1", i, chans[i].Pending())
		}
	}
}
