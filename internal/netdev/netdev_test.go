package netdev

import (
	"testing"
	"time"

	"ulp/internal/costs"
	"ulp/internal/kern"
	"ulp/internal/link"
	"ulp/internal/pkt"
	"ulp/internal/sim"
	"ulp/internal/trace"
	"ulp/internal/wire"
)

type world struct {
	s      *sim.Sim
	seg    *wire.Segment
	h1, h2 *kern.Host
	d1, d2 Device
}

func newEthWorld() *world {
	s := sim.New()
	seg := wire.New(s, wire.EthernetConfig())
	h1 := kern.NewHost(s, "h1", costs.Default())
	h2 := kern.NewHost(s, "h2", costs.Default())
	return &world{
		s: s, seg: seg, h1: h1, h2: h2,
		d1: NewLance(h1, seg, link.MakeAddr(1)),
		d2: NewLance(h2, seg, link.MakeAddr(2)),
	}
}

func newAN1World(mtu int) *world {
	s := sim.New()
	seg := wire.New(s, wire.AN1Config())
	h1 := kern.NewHost(s, "h1", costs.Default())
	h2 := kern.NewHost(s, "h2", costs.Default())
	return &world{
		s: s, seg: seg, h1: h1, h2: h2,
		d1: NewAN1(h1, seg, link.MakeAddr(1), mtu),
		d2: NewAN1(h2, seg, link.MakeAddr(2), mtu),
	}
}

func ethFrame(src, dst link.Addr, payload []byte) *pkt.Buf {
	b := pkt.FromBytes(link.EthHeaderLen, payload)
	h := link.EthHeader{Dst: dst, Src: src, Type: link.TypeRaw}
	h.Encode(b)
	return b
}

func an1Frame(src, dst link.Addr, bqi uint16, payload []byte) *pkt.Buf {
	b := pkt.FromBytes(link.AN1HeaderLen, payload)
	h := link.AN1Header{Dst: dst, Src: src, BQI: bqi, Type: link.TypeRaw}
	h.Encode(b)
	return b
}

func TestLanceEndToEnd(t *testing.T) {
	w := newEthWorld()
	var got *pkt.Buf
	w.d2.SetRxHandler(func(b *pkt.Buf) { got = b })
	dom := w.h1.NewDomain("app", false)
	dom.Spawn("tx", func(th *kern.Thread) {
		w.d1.Transmit(th, ethFrame(link.MakeAddr(1), link.MakeAddr(2), []byte("hello world, this is a test payload that is long enough")))
	})
	w.s.Run(0)
	if got == nil {
		t.Fatal("no delivery")
	}
	hdr, err := link.DecodeEth(got)
	if err != nil || hdr.Src != link.MakeAddr(1) {
		t.Fatalf("decode: %+v, %v", hdr, err)
	}
	if w.d1.Stats().TxFrames != 1 || w.d2.Stats().RxFrames != 1 {
		t.Fatalf("stats: tx=%+v rx=%+v", w.d1.Stats(), w.d2.Stats())
	}
}

func TestLancePadsShortFrames(t *testing.T) {
	w := newEthWorld()
	var got *pkt.Buf
	w.d2.SetRxHandler(func(b *pkt.Buf) { got = b })
	w.h1.NewDomain("app", false).Spawn("tx", func(th *kern.Thread) {
		w.d1.Transmit(th, ethFrame(link.MakeAddr(1), link.MakeAddr(2), []byte("x")))
	})
	w.s.Run(0)
	if got == nil || got.Len() != link.EthHeaderLen+link.EthMinPayload {
		t.Fatalf("padded frame len = %v", got.Len())
	}
}

func TestLanceChargesPIOBothSides(t *testing.T) {
	w := newEthWorld()
	w.d2.SetRxHandler(func(b *pkt.Buf) {})
	payload := make([]byte, 1000)
	w.h1.NewDomain("app", false).Spawn("tx", func(th *kern.Thread) {
		w.d1.Transmit(th, ethFrame(link.MakeAddr(1), link.MakeAddr(2), payload))
	})
	w.s.Run(0)
	c := costs.Default()
	frameLen := 1014
	wantTx := 2*c.DeviceCSR + c.LancePIO(frameLen)
	if w.h1.CPU.Busy() != wantTx {
		t.Fatalf("tx cpu = %v, want %v", w.h1.CPU.Busy(), wantTx)
	}
	wantRx := c.InterruptDispatch + c.LancePIO(frameLen)
	if w.h2.CPU.Busy() != wantRx {
		t.Fatalf("rx cpu = %v, want %v", w.h2.CPU.Busy(), wantRx)
	}
}

func TestLanceAddressFilter(t *testing.T) {
	w := newEthWorld()
	delivered := 0
	w.d2.SetRxHandler(func(b *pkt.Buf) { delivered++ })
	w.h1.NewDomain("app", false).Spawn("tx", func(th *kern.Thread) {
		// Wire-level broadcast carrying a unicast header for someone else
		// must be dropped by the controller's address filter.
		f := ethFrame(link.MakeAddr(1), link.MakeAddr(9), make([]byte, 64))
		w.seg.Transmit(link.MakeAddr(1), link.Broadcast, f)
	})
	w.s.Run(0)
	if delivered != 0 {
		t.Fatalf("address filter passed %d frames", delivered)
	}
}

func TestLancePadZeroedOverRecycledStorage(t *testing.T) {
	// Poison a small-class storage array with 0xFF and return it to the
	// pool; the LIFO free list hands that same storage to the next short
	// frame. The Ethernet minimum-frame pad must still arrive zeroed — a
	// non-zeroing Extend would leak the previous packet's bytes onto the
	// wire.
	poison := pkt.FromBytes(0, make([]byte, 200))
	for i, raw := 0, poison.Bytes(); i < len(raw); i++ {
		raw[i] = 0xFF
	}
	poison.Release()

	w := newEthWorld()
	var got *pkt.Buf
	w.d2.SetRxHandler(func(b *pkt.Buf) { got = b })
	w.h1.NewDomain("app", false).Spawn("tx", func(th *kern.Thread) {
		w.d1.Transmit(th, ethFrame(link.MakeAddr(1), link.MakeAddr(2), []byte{0xAA}))
	})
	w.s.Run(0)
	if got == nil {
		t.Fatal("no delivery")
	}
	f := got.Bytes()
	if len(f) != link.EthHeaderLen+link.EthMinPayload {
		t.Fatalf("frame len = %d, want %d", len(f), link.EthHeaderLen+link.EthMinPayload)
	}
	if f[link.EthHeaderLen] != 0xAA {
		t.Fatalf("payload byte = %#x, want 0xAA", f[link.EthHeaderLen])
	}
	for i := link.EthHeaderLen + 1; i < len(f); i++ {
		if f[i] != 0 {
			t.Fatalf("pad byte %d = %#x, want 0 (recycled storage leaked)", i, f[i])
		}
	}
}

func TestDeviceDropTraceEvents(t *testing.T) {
	w := newEthWorld()
	bus := trace.NewBus(func() time.Duration { return sim.Dur(w.s.Now()) })
	var drops []trace.Event
	bus.Subscribe(func(e trace.Event) {
		if e.Kind == trace.FrameDrop {
			drops = append(drops, e)
		}
	})
	w.d2.SetTrace(bus)
	w.d2.SetRxHandler(func(b *pkt.Buf) { t.Error("filtered frame delivered") })
	w.h1.NewDomain("app", false).Spawn("tx", func(th *kern.Thread) {
		f := ethFrame(link.MakeAddr(1), link.MakeAddr(9), make([]byte, 64))
		w.seg.Transmit(link.MakeAddr(1), link.Broadcast, f)
	})
	w.s.Run(0)
	if len(drops) != 1 || drops[0].Text != "addr-filter" {
		t.Fatalf("drop events = %+v, want one addr-filter drop", drops)
	}
}

func TestAN1HardwareDemux(t *testing.T) {
	w := newAN1World(0)
	an1 := w.d2.(*AN1)
	var toRing, toDefault int
	an1.InstallRing(0, 16, func(b *pkt.Buf) { toDefault++ })
	an1.InstallRing(7, 16, func(b *pkt.Buf) {
		toRing++
		if b.Meta.BQI != 7 {
			t.Errorf("meta BQI = %d", b.Meta.BQI)
		}
	})
	w.h1.NewDomain("app", false).Spawn("tx", func(th *kern.Thread) {
		w.d1.Transmit(th, an1Frame(link.MakeAddr(1), link.MakeAddr(2), 7, []byte("to ring 7")))
		w.d1.Transmit(th, an1Frame(link.MakeAddr(1), link.MakeAddr(2), 0, []byte("to kernel")))
		// Unbound BQI falls back to ring 0.
		w.d1.Transmit(th, an1Frame(link.MakeAddr(1), link.MakeAddr(2), 99, []byte("unbound")))
	})
	w.s.Run(0)
	if toRing != 1 || toDefault != 2 {
		t.Fatalf("ring=%d default=%d, want 1/2", toRing, toDefault)
	}
}

func TestAN1RingOverflow(t *testing.T) {
	w := newAN1World(0)
	an1 := w.d2.(*AN1)
	an1.InstallRing(3, 2, func(b *pkt.Buf) {})
	w.h1.NewDomain("app", false).Spawn("tx", func(th *kern.Thread) {
		for i := 0; i < 5; i++ {
			w.d1.Transmit(th, an1Frame(link.MakeAddr(1), link.MakeAddr(2), 3, []byte("x")))
		}
	})
	w.s.Run(0)
	st, ok := an1.RingStatus(3)
	if !ok || st.InUse != 2 || st.Dropped != 3 {
		t.Fatalf("ring status = %+v, ok=%v; want 2 in use, 3 dropped", st, ok)
	}
	// Releasing buffers allows more deliveries.
	an1.Release(3)
	w.h1.NewDomain("app2", false).Spawn("tx", func(th *kern.Thread) {
		w.d1.Transmit(th, an1Frame(link.MakeAddr(1), link.MakeAddr(2), 3, []byte("y")))
	})
	w.s.Run(0)
	st, _ = an1.RingStatus(3)
	if st.InUse != 2 {
		t.Fatalf("in use after release+deliver = %d, want 2", st.InUse)
	}
}

func TestAN1NoCPUPerByte(t *testing.T) {
	w := newAN1World(0)
	w.d2.SetRxHandler(func(b *pkt.Buf) {})
	w.h1.NewDomain("app", false).Spawn("tx", func(th *kern.Thread) {
		w.d1.Transmit(th, an1Frame(link.MakeAddr(1), link.MakeAddr(2), 0, make([]byte, 1400)))
	})
	w.s.Run(0)
	c := costs.Default()
	wantTx := c.AN1DMASetup + c.DeviceCSR
	if w.h1.CPU.Busy() != wantTx {
		t.Fatalf("tx cpu = %v, want %v (DMA should not cost per byte)", w.h1.CPU.Busy(), wantTx)
	}
	wantRx := c.InterruptDispatch + c.AN1DeviceMgmt
	if w.h2.CPU.Busy() != wantRx {
		t.Fatalf("rx cpu = %v, want %v", w.h2.CPU.Busy(), wantRx)
	}
}

func TestAN1MTUConfiguration(t *testing.T) {
	if d := newAN1World(0).d1; d.MTU() != link.AN1EncapMTU {
		t.Fatalf("default MTU = %d", d.MTU())
	}
	if d := newAN1World(link.AN1MaxMTU).d1; d.MTU() != link.AN1MaxMTU {
		t.Fatalf("extended MTU = %d", d.MTU())
	}
}

func TestAN1RemoveRing(t *testing.T) {
	w := newAN1World(0)
	an1 := w.d2.(*AN1)
	an1.InstallRing(5, 4, func(b *pkt.Buf) {})
	an1.RemoveRing(5)
	if _, ok := an1.RingStatus(5); ok {
		t.Fatal("ring still present after removal")
	}
}

func TestLatencyIncludesWireTime(t *testing.T) {
	w := newEthWorld()
	var arrival sim.Time
	w.d2.SetRxHandler(func(b *pkt.Buf) { arrival = w.s.Now() })
	w.h1.NewDomain("app", false).Spawn("tx", func(th *kern.Thread) {
		w.d1.Transmit(th, ethFrame(link.MakeAddr(1), link.MakeAddr(2), make([]byte, 1486)))
	})
	w.s.Run(0)
	// Arrival must be at least PIO tx + wire tx time for a 1500-byte frame.
	min := func() time.Duration { c := costs.Default(); return c.LancePIO(1500) }() + w.seg.TxTime(1500) + 10*time.Microsecond
	if sim.Dur(arrival) < min {
		t.Fatalf("arrival %v, want >= %v", arrival, min)
	}
}
